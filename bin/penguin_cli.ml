(* The penguin command-line tool.

     penguin figures [ARTIFACT]     reproduce the paper's figures/dialogs
     penguin show FIXTURE           schema, objects and instances of a fixture
     penguin sql FIXTURE STMT       run a SQL-ish statement against a fixture
     penguin dialog FIXTURE OBJECT  run the translator-choice dialog
     penguin dot FIXTURE            Graphviz rendering of the structural schema
     penguin session begin|queue|commit
                                    snapshot sessions over a saved store

   Fixtures: university | hospital | cad *)

open Cmdliner
open Viewobject

let fixtures =
  [ "university"; "hospital"; "cad" ]

(* CLI misuse is an [Invalid] on the typed error path (printed and
   exited cleanly), never an exception — a user typo must not print a
   backtrace. *)
let workspace_of = function
  | "university" -> Ok (Penguin.University.workspace ())
  | "hospital" -> Ok (Penguin.Hospital.workspace ())
  | "cad" -> Ok (Penguin.Cad.workspace ())
  | f ->
      Error
        (Penguin.Error.invalid
           (Fmt.str "unknown fixture %s (expected: %s)" f
              (String.concat ", " fixtures)))

let or_die = function
  | Ok v -> v
  | Error e ->
      Fmt.epr "error: %s@." (Penguin.Error.to_string e);
      exit 1

let fixture_arg =
  let doc = "Fixture database: university, hospital or cad." in
  Arg.(required & pos 0 (some (enum (List.map (fun f -> f, f) fixtures))) None
       & info [] ~docv:"FIXTURE" ~doc)

(* --- figures --------------------------------------------------------- *)

let figures only =
  let all = Penguin.Paper.all () in
  let selected =
    match only with
    | None -> all
    | Some n ->
        List.filter
          (fun (label, _) ->
            Relational.Strutil.contains ~sub:(String.lowercase_ascii n)
              (String.lowercase_ascii label))
          all
  in
  if selected = [] then (
    Fmt.epr "no artifact matches %a@." Fmt.(option string) only;
    exit 1);
  List.iter
    (fun (label, text) ->
      Fmt.pr "==================== %s ====================@.%s@.@." label text)
    selected

let figures_cmd =
  let only =
    let doc = "Only print artifacts whose label contains $(docv)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ARTIFACT" ~doc)
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Reproduce the paper's figures and transcripts.")
    Term.(const figures $ only)

(* --- show ------------------------------------------------------------ *)

let show fixture =
  let ws = or_die (workspace_of fixture) in
  Fmt.pr "structural schema:@.%a@.@." Structural.Schema_graph.pp
    ws.Penguin.Workspace.graph;
  List.iter
    (fun (name, vo) ->
      Fmt.pr "view object %s (complexity %d):@.%s@." name
        (Definition.complexity vo)
        (Definition.to_ascii vo);
      Fmt.pr "  island: %s@." (String.concat ", " (Island.island_labels vo));
      (match Island.peninsula_relations ws.Penguin.Workspace.graph vo with
      | [] -> Fmt.pr "  referencing peninsulas: none@."
      | ps -> Fmt.pr "  referencing peninsulas: %s@." (String.concat ", " ps));
      (match Penguin.Workspace.translator_of ws name with
      | Error _ -> ()
      | Ok spec -> (
          match
            Vo_core.Translator_spec.audit ws.Penguin.Workspace.graph vo spec
          with
          | [] -> ()
          | findings ->
              Fmt.pr "  translator audit:@.";
              List.iter (fun f -> Fmt.pr "    - %s@." f) findings));
      (match Penguin.Workspace.instances ws name with
      | Ok instances ->
          Fmt.pr "  %d instance(s):@." (List.length instances);
          List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) instances
      | Error e -> Fmt.pr "  (instances unavailable: %s)@." e);
      Fmt.pr "@.")
    ws.Penguin.Workspace.objects

let show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a fixture's schema, view objects, islands and instances.")
    Term.(const show $ fixture_arg)

(* --- sql ------------------------------------------------------------- *)

let sql fixture stmt =
  let ws = or_die (workspace_of fixture) in
  match Penguin.Workspace.run_sql ws stmt with
  | Ok (_, answers) ->
      List.iter (fun a -> Fmt.pr "%a@." Relational.Sql.pp_answer a) answers
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1

let sql_cmd =
  let stmt =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"STATEMENT" ~doc:"SQL-ish statement(s), ';'-separated.")
  in
  Cmd.v
    (Cmd.info "sql" ~doc:"Run SQL-ish statements against a fixture database.")
    Term.(const sql $ fixture_arg $ stmt)

(* --- oql ------------------------------------------------------------- *)

let oql fixture object_name query json sexp =
  let ws = or_die (workspace_of fixture) in
  match Penguin.Workspace.find_object ws object_name with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok vo -> (
      (* Queries read through the materialized cache: this process's
         first read builds the object's entries (a miss), repeated
         reads — and long-lived callers syncing the cache across
         commits — are served from the store. *)
      let cache = Penguin.Workspace.attach_cache ws in
      match Viewobject.Cache.oql cache object_name query with
      | Error e ->
          Fmt.epr "error: %s@." e;
          exit 1
      | Ok instances ->
          if json then
            Fmt.pr "%s@." (Penguin.Json_export.instances vo instances)
          else if sexp then
            List.iter
              (fun i ->
                Fmt.pr "%s@."
                  (Relational.Sexp.to_string (Penguin.Store.instance_to_sexp i)))
              instances
          else begin
            Fmt.pr "%d instance(s)@." (List.length instances);
            List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) instances
          end)

let oql_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name (see $(b,show)).")
  in
  let query =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"QUERY"
             ~doc:"Condition, e.g. \"level = 'grad' and count(STUDENT#2) < 5\".")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit instances as JSON.")
  in
  let sexp =
    Arg.(value & flag
         & info [ "sexp" ]
             ~doc:"Emit instances as S-expressions (the $(b,insert) input \
                   format).")
  in
  Cmd.v
    (Cmd.info "oql" ~doc:"Query a view object with the declarative language.")
    Term.(const oql $ fixture_arg $ object_name $ query $ json $ sexp)

(* --- dialog ---------------------------------------------------------- *)

let dialog fixture object_name assume_yes =
  let ws = or_die (workspace_of fixture) in
  match Penguin.Workspace.find_object ws object_name with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok vo ->
      let answerer =
        if assume_yes then Vo_core.Dialog.all_yes
        else Vo_core.Dialog.interactive stdin stdout
      in
      let spec, events =
        Vo_core.Dialog.choose ws.Penguin.Workspace.graph vo answerer
      in
      Fmt.pr "@.--- transcript ---@.%s@." (Vo_core.Dialog.transcript events);
      Fmt.pr "@.--- resulting translator ---@.%a@." Vo_core.Translator_spec.pp
        spec;
      match Vo_core.Translator_spec.audit ws.Penguin.Workspace.graph vo spec with
      | [] -> Fmt.pr "@.audit: clean — every allowed update can translate.@."
      | findings ->
          Fmt.pr "@.audit findings:@.";
          List.iter (fun f -> Fmt.pr "  - %s@." f) findings

let dialog_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name (see $(b,show)).")
  in
  let yes =
    Arg.(value & flag
         & info [ "yes"; "y" ] ~doc:"Answer YES to every question (no prompt).")
  in
  Cmd.v
    (Cmd.info "dialog"
       ~doc:"Run the translator-choice dialog for a view object.")
    Term.(const dialog $ fixture_arg $ object_name $ yes)

(* --- insert ------------------------------------------------------------ *)

let insert fixture object_name file =
  let ws = or_die (workspace_of fixture) in
  let content =
    try
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  in
  let result =
    Result.bind (Relational.Sexp.parse content) Penguin.Store.instance_of_sexp
  in
  match result with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok instance ->
      let _ws, outcome =
        Penguin.Workspace.update ws object_name (Vo_core.Request.insert instance)
      in
      Fmt.pr "%a@." Vo_core.Engine.pp_outcome outcome

let insert_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let file =
    Arg.(required & pos 2 (some file) None
         & info [] ~docv:"FILE"
             ~doc:"S-expression instance document (see $(b,oql --sexp)).")
  in
  Cmd.v
    (Cmd.info "insert"
       ~doc:"Complete insertion of an instance document through an object.")
    Term.(const insert $ fixture_arg $ object_name $ file)

(* --- schema ------------------------------------------------------------ *)

let schema file pivot dot =
  let content =
    try
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with Sys_error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  in
  match Structural.Schema_lang.parse content with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok g ->
      if dot then print_string (Structural.Schema_graph.to_dot g)
      else begin
        Fmt.pr "%a@." Structural.Schema_graph.pp g;
        match pivot with
        | None -> ()
        | Some p ->
            if not (Structural.Schema_graph.mem_relation g p) then begin
              Fmt.epr "error: unknown pivot relation %s@." p;
              exit 1
            end;
            let tree =
              Viewobject.Generate.tree Structural.Metric.default g ~pivot:p
            in
            Fmt.pr "@.expansion tree for pivot %s:@.%s" p
              (Structural.Expansion.to_ascii tree)
      end

let schema_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Schema script (see Schema_lang).")
  in
  let pivot =
    Arg.(value & opt (some string) None
         & info [ "pivot" ] ~docv:"RELATION"
             ~doc:"Also print the expansion tree for this pivot.")
  in
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of text.")
  in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Parse and validate a textual structural-schema script.")
    Term.(const schema $ file $ pivot $ dot)

(* --- observability ---------------------------------------------------- *)

(* [--trace FILE] on the commands that drive the update pipeline. The
   sink is installed before the command body runs and the channel is
   closed at process exit, so every span the invocation produced is on
   disk when the process ends. *)
let setup_trace trace format =
  match trace with
  | None -> ()
  | Some path ->
      let oc =
        try open_out path
        with Sys_error e ->
          Fmt.epr "error: --trace %s: %s@." path e;
          exit 1
      in
      at_exit (fun () -> try close_out oc with Sys_error _ -> ());
      Obs.Trace.set_sink (Some (Obs.Trace.channel_sink ~format oc))

let trace_term =
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write this invocation's trace spans to $(docv), one \
                   span per line (children before parents).")
  in
  let format =
    Arg.(value & opt (enum [ "sexp", `Sexp; "json", `Json ]) `Sexp
         & info [ "trace-format" ] ~docv:"FORMAT"
             ~doc:"Trace line format: $(b,sexp) (default) or $(b,json).")
  in
  Term.(const setup_trace $ trace $ format)

(* --- update ----------------------------------------------------------- *)

let update () fixture object_name stmt =
  let ws = or_die (workspace_of fixture) in
  match Penguin.Upql.apply ws ~object_name stmt with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok (_ws, outcomes) ->
      List.iter (fun o -> Fmt.pr "%a@." Vo_core.Engine.pp_outcome o) outcomes;
      Fmt.pr "%d instance(s) affected@."
        (List.length
           (List.filter
              (fun (o : Vo_core.Engine.outcome) ->
                Option.is_some (Vo_core.Engine.committed o))
              outcomes))

let update_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name (see $(b,show)).")
  in
  let stmt =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"STATEMENT"
             ~doc:"e.g. \"set units = 4 where course_id = 'CS345'\" or \
                   \"delete where level = 'undergrad'\".")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Update through a view object with the textual update language.")
    Term.(const update $ trace_term $ fixture_arg $ object_name $ stmt)

(* --- export / import -------------------------------------------------- *)

let export fixture path no_data =
  let ws = or_die (workspace_of fixture) in
  match Penguin.Store.save_file ~include_data:(not no_data) ws path with
  | Ok () -> Fmt.pr "saved %s workspace to %s@." fixture path
  | Error e ->
      Fmt.epr "error: %s@." (Penguin.Error.to_string e);
      exit 1

let export_cmd =
  let path =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"FILE" ~doc:"Destination file.")
  in
  let no_data =
    Arg.(value & flag
         & info [ "no-data" ]
             ~doc:"Save only the definitions (schemas, connections, objects, \
                   translators).")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Save a fixture workspace to a file.")
    Term.(const export $ fixture_arg $ path $ no_data)

let import path =
  match Penguin.Recovery.open_store path with
  | Error e ->
      Fmt.epr "error: %s@." (Penguin.Error.to_string e);
      exit 1
  | Ok (ws, report) ->
      Fmt.pr "loaded workspace: %d relation(s), %d tuple(s), %d object(s) (%a)@."
        (List.length (Structural.Schema_graph.relations ws.Penguin.Workspace.graph))
        (Relational.Database.total_tuples ws.Penguin.Workspace.db)
        (List.length ws.Penguin.Workspace.objects)
        Penguin.Recovery.pp_report report;
      List.iter
        (fun (name, vo) ->
          Fmt.pr "@.view object %s:@.%s" name (Definition.to_ascii vo))
        ws.Penguin.Workspace.objects;
      (match Penguin.Workspace.check_consistency ws with
      | Ok () -> Fmt.pr "@.database is consistent.@."
      | Error e -> Fmt.pr "@.WARNING: %s@." e)

let import_cmd =
  let path =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Workspace file to load.")
  in
  Cmd.v
    (Cmd.info "import" ~doc:"Load and describe a saved workspace.")
    Term.(const import $ path)

(* --- session ---------------------------------------------------------- *)

(* A session is a plain-text file: a small header (the store it was
   begun against, the store version at that moment, the queued update
   statements) and, after a "---" separator, the snapshot workspace in
   the Store document format. The store itself is a snapshot document
   plus a durable commit journal [STORE.journal] of every commit since
   (Penguin.Recovery); commit appends its entries there, so a session
   begun before another commit sees the concurrent deltas themselves
   and rebases only when footprints actually overlap — optimistic
   concurrency across processes, validated against real history.
   Commit serializes against other committers with an exclusive lock on
   [STORE.lock] (Fsio.with_lock) held across the whole reopen → rebase
   → persist sequence; begin and queue only read and take no lock. *)

let read_file path =
  match Penguin.Fsio.default.Penguin.Fsio.read path with
  | Ok (Some s) -> Ok s
  | Ok None -> Error (Penguin.Error.invalid (Fmt.str "%s: no such file" path))
  | Error e -> Error e

let write_file path content =
  Penguin.Fsio.(atomic_write default) ~path content

type session_doc = {
  sess_store : string;
  sess_base : int;
  sess_queue : (string * string) list;  (** (object, statement), oldest first *)
  sess_snapshot : string;  (** Store document of the snapshot workspace *)
}

let session_sep = "\n---\n"

let render_session doc =
  let b = Buffer.create 1024 in
  Buffer.add_string b "penguin-session 1\n";
  Buffer.add_string b (Fmt.str "store %s\n" doc.sess_store);
  Buffer.add_string b (Fmt.str "base-version %d\n" doc.sess_base);
  List.iter
    (fun (obj, stmt) -> Buffer.add_string b (Fmt.str "queue %s\t%s\n" obj stmt))
    doc.sess_queue;
  Buffer.add_string b "---\n";
  Buffer.add_string b doc.sess_snapshot;
  Buffer.contents b

let parse_session content =
  let ( let* ) = Result.bind in
  let* header, snapshot =
    let n = String.length content and m = String.length session_sep in
    let rec go i =
      if i + m > n then Error "session file: missing --- separator"
      else if String.sub content i m = session_sep then
        Ok (String.sub content 0 i, String.sub content (i + m) (n - i - m))
      else go (i + 1)
    in
    go 0
  in
  let lines = String.split_on_char '\n' header in
  match lines with
  | magic :: rest when String.trim magic = "penguin-session 1" ->
      List.fold_left
        (fun acc line ->
          let* doc = acc in
          match String.index_opt line ' ' with
          | _ when String.trim line = "" -> Ok doc
          | None -> Error (Fmt.str "session file: bad line %S" line)
          | Some i -> (
              let key = String.sub line 0 i in
              let rest = String.sub line (i + 1) (String.length line - i - 1) in
              match key with
              | "store" -> Ok { doc with sess_store = rest }
              | "base-version" -> (
                  match int_of_string_opt rest with
                  | Some v -> Ok { doc with sess_base = v }
                  | None -> Error "session file: bad base-version")
              | "queue" -> (
                  match String.index_opt rest '\t' with
                  | None -> Error "session file: bad queue line"
                  | Some t ->
                      let obj = String.sub rest 0 t in
                      let stmt =
                        String.sub rest (t + 1) (String.length rest - t - 1)
                      in
                      Ok { doc with sess_queue = doc.sess_queue @ [ obj, stmt ] })
              | _ -> Error (Fmt.str "session file: unknown key %S" key)))
        (Ok { sess_store = ""; sess_base = 0; sess_queue = []; sess_snapshot = snapshot })
        rest
  | _ -> Error "session file: not a penguin-session document"

(* Stage every queued statement of [doc] against [ws] (the snapshot at
   queue time, the current store state at commit/rebase time). Each
   request carries a retry closure that re-evaluates its statement, so
   a rebase — OCC conflict with a concurrent commit, or two session
   statements editing the same tuple — re-derives instead of replaying
   a stale instance image. *)
let stage_session ws doc =
  let ( let* ) = Result.bind in
  List.fold_left
    (fun acc (obj, stmt) ->
      let* sess = acc in
      let* reqs =
        Result.map_error Penguin.Error.invalid
          (Penguin.Upql.requests ws ~object_name:obj stmt)
      in
      let n = List.length reqs in
      List.fold_left
        (fun acc (i, req) ->
          let* sess = acc in
          let retry ws' =
            let* reqs' =
              Result.map_error Penguin.Error.invalid
                (Penguin.Upql.requests ws' ~object_name:obj stmt)
            in
            match reqs' with
            | [] -> Ok None  (* the edit already holds in the new state *)
            | l when List.length l = n -> Ok (Some (List.nth l i))
            | _ ->
                Error
                  (Penguin.Error.conflict
                     (Fmt.str
                        "rebase: %S on %s matches a different set of \
                         instances now; begin a fresh session"
                        stmt obj))
          in
          Result.map_error
            (Penguin.Error.with_context (Fmt.str "staging %S on %s" stmt obj))
            (Penguin.Session.queue sess obj ~retry req))
        (Ok sess)
        (List.mapi (fun i r -> i, r) reqs))
    (Ok (Penguin.Session.begin_ ws))
    doc.sess_queue

let session_begin store session =
  let ws, report = or_die (Penguin.Recovery.open_store store) in
  let base = Penguin.Workspace.version ws in
  let doc =
    {
      sess_store = store;
      sess_base = base;
      sess_queue = [];
      (* The snapshot document records [base], so re-loading it yields a
         workspace whose log is at the session's base version. *)
      sess_snapshot = Penguin.Store.save ws;
    }
  in
  or_die (write_file session (render_session doc));
  Fmt.pr "began session %s on %s at version %d (%a)@." session store base
    Penguin.Recovery.pp_report report

let load_snapshot doc =
  let ws =
    or_die (Result.map_error Penguin.Error.corrupt (Penguin.Store.load doc.sess_snapshot))
  in
  if Penguin.Workspace.version ws <> doc.sess_base then
    or_die
      (Error
         (Penguin.Error.corrupt
            (Fmt.str
               "session file: snapshot is at v%d but the header says v%d — \
                corrupt session file"
               (Penguin.Workspace.version ws)
               doc.sess_base)));
  ws

let session_queue session obj stmt =
  let doc =
    or_die
      (Result.bind (read_file session) (fun c ->
           Result.map_error Penguin.Error.corrupt (parse_session c)))
  in
  let ws = load_snapshot doc in
  let doc = { doc with sess_queue = doc.sess_queue @ [ obj, stmt ] } in
  let sess = or_die (stage_session ws doc) in
  or_die (write_file session (render_session doc));
  Fmt.pr "queued: %d staged update(s) against snapshot (version %d)@."
    (Penguin.Session.pending sess)
    doc.sess_base

let session_commit () deadline session =
  let doc =
    or_die
      (Result.bind (read_file session) (fun c ->
           Result.map_error Penguin.Error.corrupt (parse_session c)))
  in
  (* The whole reopen → rebase → persist sequence runs under the store's
     exclusive lock: without it, two concurrent commits can both open at
     vN and both journal a vN+1, leaving the store unopenable. or_die
     inside the locked region is safe — process exit releases the lock. *)
  (* [--deadline N] bounds the whole commit — lock wait, rebases, and
     the durable append's retries share one absolute budget instead of
     each hanging independently. 0 disables the bound. *)
  let deadline_ns =
    if deadline <= 0. then None
    else Some (Obs.Metrics.now_ns () +. (deadline *. 1e9))
  in
  or_die @@ Penguin.Fsio.with_lock ?deadline_ns doc.sess_store
  @@ fun () ->
  (* Reconstruct the current store state — snapshot plus replayed
     journal deltas — then stage the session's statements against its
     own begin-time snapshot and let the in-process Session run real
     OCC against the replayed history: concurrent commits whose
     footprints do not overlap the session's commit without a rebase. *)
  let ws_now, report = or_die (Penguin.Recovery.open_store doc.sess_store) in
  let current = Penguin.Workspace.version ws_now in
  if current <> doc.sess_base then
    Fmt.pr "store advanced (version %d -> %d) since begin@." doc.sess_base
      current;
  let sess = or_die (stage_session (load_snapshot doc) doc) in
  let ws', stats =
    or_die (Penguin.Session.commit ?deadline_ns ws_now sess)
  in
  let committed = stats.Penguin.Session.committed in
  let version = stats.Penguin.Session.version in
  let persisted =
    (* Transient disk faults on the append are retried with backoff
       under the same deadline; non-transient ones fail immediately. *)
    or_die
      (Penguin.Resilience.retry ?deadline_ns ~label:"persist" (fun () ->
           (* [expect_epoch] from the open above arms epoch fencing: if a
              follower was promoted since, this commit is refused rather
              than forking the replicated history. *)
           Penguin.Recovery.persist ~store:doc.sess_store ~since:current
             ~expect_epoch:report.Penguin.Recovery.epoch ws'))
  in
  (* The commit is durable (journal fsynced) from here on; everything
     past this point — rotation, session-file removal — must not make it
     look failed, or a re-run would replay updates the store already
     holds. *)
  (match persisted.Penguin.Recovery.rotate_error with
  | None -> ()
  | Some e ->
      Fmt.epr
        "warning: commit is durable, but folding the journal into a fresh \
         snapshot failed (%s); a later commit will retry the rotation@."
        (Penguin.Error.to_string e));
  (try Sys.remove session
   with Sys_error e ->
     Fmt.epr
       "warning: session file %s was committed but could not be removed \
        (%s); remove it manually — committing it again would replay its \
        updates@."
       session e);
  Fmt.pr
    "committed %d update(s) to %s: now at version %d (attempts %d%s%s)@."
    committed doc.sess_store version stats.Penguin.Session.attempts
    (if stats.Penguin.Session.rebased then ", rebased" else "")
    (if persisted.Penguin.Recovery.rotated then ", journal rotated into snapshot"
     else "");
  Ok ()

let session_file_arg p =
  Arg.(required & pos p (some string) None
       & info [] ~docv:"SESSION" ~doc:"Session file.")

let session_begin_cmd =
  let store =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"STORE"
             ~doc:"Saved workspace (see $(b,export)) acting as the shared \
                   store.")
  in
  Cmd.v
    (Cmd.info "begin"
       ~doc:"Snapshot a store into a new session file.")
    Term.(const session_begin $ store $ session_file_arg 1)

let session_queue_cmd =
  let obj =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let stmt =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"STATEMENT"
             ~doc:"Update statement (the $(b,update) language), evaluated \
                   against the session snapshot.")
  in
  Cmd.v
    (Cmd.info "queue"
       ~doc:"Queue an update statement in a session (staged, not committed).")
    Term.(const session_queue $ session_file_arg 0 $ obj $ stmt)

let session_commit_cmd =
  let deadline =
    Arg.(value & opt float 30.
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Overall time budget for the commit: lock acquisition, \
                   OCC rebases and durable-append retries share it; when \
                   it runs out the command fails with a deadline error \
                   instead of hanging. 0 waits forever (the pre-resilience \
                   behaviour).")
  in
  Cmd.v
    (Cmd.info "commit"
       ~doc:"Group-commit a session's staged updates onto the store, \
             rebasing if the store advanced since $(b,begin).")
    Term.(const session_commit $ trace_term $ deadline $ session_file_arg 0)

let session_cmd =
  Cmd.group
    (Cmd.info "session"
       ~doc:"Snapshot sessions with optimistic concurrency over a saved \
             store.")
    [ session_begin_cmd; session_queue_cmd; session_commit_cmd ]

(* --- stats ------------------------------------------------------------ *)

let stats () json updates =
  Obs.Metrics.enable ();
  (match Penguin.Stats.exercise ~updates () with
  | Ok () -> ()
  | Error e ->
      Fmt.epr "error: stats workload failed: %s@." e;
      exit 1);
  if json then Fmt.pr "%s@." (Obs.Json.to_string (Penguin.Stats.json ()))
  else print_string (Penguin.Stats.table ())

let stats_cmd =
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Emit the metrics registry as JSON instead of a table.")
  in
  let updates =
    Arg.(value & opt int 8
         & info [ "updates" ] ~docv:"N"
             ~doc:"Engine updates to drive through the workload.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run a representative workload through every instrumented \
             layer and print the metrics registry.")
    Term.(const stats $ trace_term $ json $ updates)

(* --- shard ------------------------------------------------------------ *)

let shard_plan fixture =
  let ws = or_die (workspace_of fixture) in
  let plan = Structural.Partition.compute ws.Penguin.Workspace.graph in
  Fmt.pr "%a@." Structural.Partition.pp plan

let shard_plan_cmd =
  Cmd.v
    (Cmd.info "plan"
       ~doc:"Print a fixture's dependency-island partition: which shard \
             each relation lives on and which relations are risky \
             (incident to a cross-shard reference).")
    Term.(const shard_plan $ fixture_arg)

let shard_root_arg =
  Arg.(required & opt (some string) None
       & info [ "root" ] ~docv:"DIR" ~doc:"Sharded store root directory.")

let shard_init fixture root max_shards =
  let ws = or_die (workspace_of fixture) in
  let plan =
    or_die (Penguin.Shard_store.init ?max_shards ~root ws)
  in
  Fmt.pr "initialized %d-shard store for %s at %s@.%a@."
    (Structural.Partition.count plan)
    fixture root Structural.Partition.pp plan

let shard_init_cmd =
  let max_shards =
    Arg.(value & opt (some int) None
         & info [ "max-shards" ] ~docv:"N"
             ~doc:"Fold the islands onto at most $(docv) shards.")
  in
  Cmd.v
    (Cmd.info "init"
       ~doc:"Create a sharded store for a fixture: per-island snapshot \
             files and journals under a common root.")
    Term.(const shard_init $ fixture_arg $ shard_root_arg $ max_shards)

let shard_info root =
  let o = or_die (Penguin.Shard_store.open_store ~root ()) in
  Fmt.pr "%a@.%a@."
    Structural.Partition.pp o.Penguin.Shard_store.plan
    Penguin.Shard_store.pp_report o.Penguin.Shard_store.report

let shard_info_cmd =
  Cmd.v
    (Cmd.info "info"
       ~doc:"Open a sharded store read-only and print its partition, \
             per-shard versions and recovery report (torn tails, \
             resolved two-phase commits).")
    Term.(const shard_info $ shard_root_arg)

let shard_update () root object_name stmt =
  let eng = or_die (Penguin.Sharded.open_store ~root ()) in
  let finish code =
    Penguin.Sharded.shutdown eng;
    exit code
  in
  (match
     Penguin.Upql.requests
       (Penguin.Sharded.to_workspace eng)
       ~object_name stmt
   with
  | Error e ->
      Fmt.epr "error: %s@." e;
      finish 1
  | Ok reqs ->
      let outcomes =
        List.map (fun r -> Penguin.Sharded.update eng object_name r) reqs
      in
      List.iter (fun o -> Fmt.pr "%a@." Vo_core.Engine.pp_outcome o) outcomes;
      Fmt.pr "%d instance(s) affected; store at global v%d@."
        (List.length
           (List.filter
              (fun (o : Vo_core.Engine.outcome) ->
                Option.is_some (Vo_core.Engine.committed o))
              outcomes))
        (Penguin.Sharded.version eng));
  List.iter
    (fun (s : Penguin.Sharded.shard_info) ->
      Fmt.pr "shard %d (lane %d): v%d, %d commit(s), %d cross@." s.shard
        s.lane s.version s.commits s.cross_commits)
    (Penguin.Sharded.shards eng);
  finish 0

let shard_update_cmd =
  let object_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let stmt =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"STATEMENT" ~doc:"Update-language statement.")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Update through a view object against a sharded store: \
             single-island updates commit on their shard's lane, \
             cross-island ones through the two-phase coordinator.")
    Term.(const shard_update $ trace_term $ shard_root_arg $ object_name
          $ stmt)

let shard_cmd =
  Cmd.group
    (Cmd.info "shard"
       ~doc:"Sharded stores: one snapshot + journal per dependency \
             island, commits on parallel per-shard lanes.")
    [ shard_plan_cmd; shard_init_cmd; shard_info_cmd; shard_update_cmd ]

(* --- replica ---------------------------------------------------------- *)

let replica_feed from sock =
  match from, sock with
  | Some store, None -> Penguin.Replica.file_feed store
  | None, Some sock -> Penguin.Shipper.feed ~sock
  | _ ->
      Fmt.epr "error: pass exactly one of --from STORE or --sock SOCK@.";
      exit 1

let from_arg =
  Arg.(value & opt (some string) None
       & info [ "from" ] ~docv:"STORE"
           ~doc:"Tail the leader store's files directly (shared \
                 filesystem).")

let sock_arg =
  Arg.(value & opt (some string) None
       & info [ "sock" ] ~docv:"SOCK"
           ~doc:"Tail a $(b,replica serve) shipper on this Unix-domain \
                 socket.")

let target_arg =
  Arg.(required & pos 0 (some string) None
       & info [] ~docv:"TARGET" ~doc:"The follower's own store path.")

let pp_replica r (p : Penguin.Replica.progress) =
  Fmt.pr
    "%s: v%d epoch %d (%d record(s) ingested, %d entr(ies) applied%s%s, \
     lag %d)@."
    (Penguin.Replica.status_label (Penguin.Replica.status r))
    (Penguin.Replica.position r) (Penguin.Replica.epoch r) p.records
    p.applied
    (if p.rotated then ", followed a rotation" else "")
    (if p.resynced then ", resynced from snapshot" else "")
    p.lag_records

let replica_serve () store sock =
  Fmt.pr "shipping %s on %s (stop with `penguin replica quit --sock %s`)@."
    store sock sock;
  let served = or_die (Penguin.Shipper.serve ~store ~sock ()) in
  Fmt.pr "served %d request(s)@." served

let replica_serve_cmd =
  let store =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"STORE" ~doc:"Leader store to ship.")
  in
  let sock =
    Arg.(required & opt (some string) None
         & info [ "sock" ] ~docv:"SOCK" ~doc:"Unix-domain socket path.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Ship a leader store's snapshot and journal to followers \
             over a Unix-domain socket (one checksummed frame exchange \
             per request).")
    Term.(const replica_serve $ trace_term $ store $ sock)

let replica_quit sock =
  or_die (Penguin.Shipper.quit ~sock);
  Fmt.pr "shipper on %s stopped@." sock

let replica_quit_cmd =
  let sock =
    Arg.(required & opt (some string) None
         & info [ "sock" ] ~docv:"SOCK" ~doc:"Unix-domain socket path.")
  in
  Cmd.v
    (Cmd.info "quit" ~doc:"Stop a $(b,replica serve) shipper cleanly.")
    Term.(const replica_quit $ sock)

let replica_sync () target from sock watch =
  let feed = replica_feed from sock in
  let r = or_die (Penguin.Replica.create ~feed ~target ()) in
  let once () = pp_replica r (or_die (Penguin.Replica.poll_until_idle r)) in
  once ();
  match watch with
  | None -> ()
  | Some interval ->
      (* Tail forever: poll, sleep, poll — ^C to stop. The replica's
         own journal makes every caught-up state durable, so killing
         the watch loses nothing. *)
      while true do
        Unix.sleepf interval;
        once ()
      done

let replica_sync_cmd =
  let watch =
    Arg.(value & opt (some float) None
         & info [ "watch" ] ~docv:"SECONDS"
             ~doc:"Keep tailing, polling every $(docv) seconds, instead \
                   of exiting once caught up.")
  in
  Cmd.v
    (Cmd.info "sync"
       ~doc:"Start (or resume) a follower at $(i,TARGET) and catch it \
             up to the leader; with $(b,--watch), keep tailing.")
    Term.(const replica_sync $ trace_term $ target_arg $ from_arg $ sock_arg
          $ watch)

let replica_status target from sock =
  let feed = replica_feed from sock in
  let r = or_die (Penguin.Replica.create ~feed ~target ()) in
  Fmt.pr "%s: v%d epoch %d, leader journal offset %d@."
    (Penguin.Replica.status_label (Penguin.Replica.status r))
    (Penguin.Replica.position r) (Penguin.Replica.epoch r)
    (Penguin.Replica.leader_offset r)

let replica_status_cmd =
  Cmd.v
    (Cmd.info "status"
       ~doc:"Open the follower at $(i,TARGET) (repairing any torn tail) \
             and print its replication position without polling.")
    Term.(const replica_status $ target_arg $ from_arg $ sock_arg)

let replica_oql () target from sock object_name query =
  let feed = replica_feed from sock in
  let r = or_die (Penguin.Replica.create ~feed ~target ()) in
  pp_replica r (or_die (Penguin.Replica.poll_until_idle r));
  match Penguin.Replica.oql r object_name query with
  | Error e ->
      Fmt.epr "error: %s@." e;
      exit 1
  | Ok instances ->
      Fmt.pr "%d instance(s) at v%d@." (List.length instances)
        (Penguin.Replica.position r);
      List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) instances

let replica_oql_cmd =
  let object_name =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let query =
    Arg.(required & pos 2 (some string) None
         & info [] ~docv:"QUERY" ~doc:"OQL condition.")
  in
  Cmd.v
    (Cmd.info "oql"
       ~doc:"Catch the follower up and serve a read-only OQL query \
             through its warm cache at the replication position.")
    Term.(const replica_oql $ trace_term $ target_arg $ from_arg $ sock_arg
          $ object_name $ query)

let replica_promote () target root =
  match target, root with
  | Some target, None ->
      let ws, epoch = or_die (Penguin.Replica.promote_store target) in
      Fmt.pr "promoted %s: writable at v%d, epoch %d@." target
        (Penguin.Workspace.version ws)
        epoch
  | None, Some root ->
      let opened, epoch = or_die (Penguin.Replica.Sharded.promote_root root) in
      Fmt.pr "promoted sharded root %s: epoch %d@.%a@." root epoch
        Penguin.Shard_store.pp_report opened.Penguin.Shard_store.report
  | _ ->
      Fmt.epr "error: pass exactly one of TARGET or --root ROOT@.";
      exit 1

let replica_promote_cmd =
  let target =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"TARGET" ~doc:"Follower store to promote.")
  in
  let root =
    Arg.(value & opt (some string) None
         & info [ "root" ] ~docv:"DIR"
             ~doc:"Promote a sharded follower root instead: repair every \
                   shard to a consistent cut (closing dangling 2PC) and \
                   bump the manifest epoch.")
  in
  Cmd.v
    (Cmd.info "promote"
       ~doc:"Promote a follower from its last durable record: repair-open \
             under the store lock, rotate into a fresh snapshot at the \
             next epoch, and come up writable. Deposed leaders persisting \
             with the old epoch are fenced.")
    Term.(const replica_promote $ trace_term $ target $ root)

let replica_cmd =
  Cmd.group
    (Cmd.info "replica"
       ~doc:"Journal-shipping replication: follower stores tailing a \
             leader's journal, read-only queries at the replication \
             position, crash-proven promotion with epoch fencing.")
    [ replica_serve_cmd; replica_quit_cmd; replica_sync_cmd;
      replica_status_cmd; replica_oql_cmd; replica_promote_cmd ]

(* --- serve ------------------------------------------------------------ *)

let serve () store sock window interval_ms no_eager max_parked =
  let config =
    {
      Penguin.Server.default_config with
      flush_window = window;
      flush_interval_ns = interval_ms *. 1e6;
      eager_flush = not no_eager;
      max_parked;
    }
  in
  Fmt.pr "serving %s on %s (window %d, interval %.1f ms%s)@." store sock
    window interval_ms
    (if no_eager then "" else ", eager flush");
  let stats = or_die (Penguin.Server.serve ~config ~store ~sock ()) in
  Fmt.pr "served %d request(s), %d commit(s) over %d window(s)@."
    stats.Penguin.Server.requests stats.Penguin.Server.commits
    stats.Penguin.Server.windows

let serve_sock_arg =
  Arg.(required & opt (some string) None
       & info [ "sock" ] ~docv:"SOCK" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let store =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"STORE"
             ~doc:"Saved workspace (see $(b,export) or $(b,client seed)) \
                   acting as the served store.")
  in
  let window =
    Arg.(value & opt int Penguin.Server.default_config.flush_window
         & info [ "window" ] ~docv:"N"
             ~doc:"Parked commits that force a flush; 1 degrades to a \
                   fsync per commit (the group-commit baseline).")
  in
  let interval_ms =
    Arg.(value & opt float 10.
         & info [ "interval-ms" ] ~docv:"MS"
             ~doc:"Age of the oldest parked commit that forces a flush — \
                   the latency bound when requests trickle in.")
  in
  let no_eager =
    Arg.(value & flag
         & info [ "no-eager" ]
             ~doc:"Batch strictly by $(b,--window) size and \
                   $(b,--interval-ms) age instead of also flushing as \
                   soon as the event loop drains its input.")
  in
  let max_parked =
    Arg.(value & opt int Penguin.Server.default_config.max_parked
         & info [ "max-parked" ] ~docv:"N"
             ~doc:"Admission bound on parked commits; beyond it, commit \
                   requests are shed with a busy error.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a store over a Unix-domain socket: concurrent client \
             sessions, conflict-free commits batched into one group \
             commit and one journal fsync per flush window, reads \
             through the materialized view-object cache.")
    Term.(const serve $ trace_term $ store $ serve_sock_arg $ window
          $ interval_ms $ no_eager $ max_parked)

(* --- client ----------------------------------------------------------- *)

let with_client sock f =
  let c = or_die (Penguin.Client.connect ~sock) in
  Fun.protect ~finally:(fun () -> Penguin.Client.close c) (fun () -> f c)

let client_ping sock =
  with_client sock @@ fun c ->
  or_die (Penguin.Client.ping c);
  Fmt.pr "pong@."

let client_stats sock =
  with_client sock @@ fun c -> print_endline (or_die (Penguin.Client.stats c))

let client_oql sock object_name query =
  with_client sock @@ fun c ->
  let n, text = or_die (Penguin.Client.oql c ~object_name query) in
  Fmt.pr "%d instance(s)@.%s" n text

let client_shutdown sock =
  with_client sock @@ fun c ->
  or_die (Penguin.Client.shutdown c);
  Fmt.pr "server on %s stopped@." sock

let client_update sock object_name stmt =
  with_client sock @@ fun c ->
  let v = or_die (Penguin.Client.begin_ c) in
  let n = or_die (Penguin.Client.queue c ~object_name stmt) in
  let versions = or_die (Penguin.Client.commit c) in
  Fmt.pr "staged %d update(s) at v%d, committed as version(s)%s@." n v
    (String.concat "" (List.map (Fmt.str " %d") versions))

(* The bench-style serving fixture: the university database plus
   [courses] disjoint course/student/grade triples, so [courses]
   concurrent clients each own a course and their grade edits batch
   into one window without conflicting. *)
let client_seed store courses =
  let ins rel bindings db =
    match Relational.Database.insert db rel (Relational.Tuple.make bindings) with
    | Ok db -> db
    | Error e ->
        Fmt.epr "error: seeding %s: %s@." rel (Relational.Database.error_to_string e);
        exit 1
  in
  let rec add db i =
    if i > courses then db
    else
      let course = Fmt.str "BENCH%03d" i in
      let pid = 2000 + i in
      db
      |> ins "COURSES"
           [ "course_id", Relational.Value.Str course;
             "title", Relational.Value.Str (Fmt.str "Bench %d" i);
             "units", Relational.Value.Int 3; "level", Relational.Value.Str "grad";
             "dept_name", Relational.Value.Str "Computer Science" ]
      |> ins "PEOPLE"
           [ "pid", Relational.Value.Int pid; "name", Relational.Value.Str (Fmt.str "S%d" i);
             "dept_name", Relational.Value.Str "Computer Science" ]
      |> ins "STUDENT"
           [ "pid", Relational.Value.Int pid; "degree_program", Relational.Value.Str "MS CS";
             "year", Relational.Value.Int ((i mod 4) + 1) ]
      |> ins "GRADES"
           [ "course_id", Relational.Value.Str course; "pid", Relational.Value.Int pid;
             "grade", Relational.Value.Str "A" ]
      |> fun db -> add db (i + 1)
  in
  let ws = Penguin.University.workspace () in
  let ws = { ws with Penguin.Workspace.db = add ws.Penguin.Workspace.db 1 } in
  or_die (write_file store (Penguin.Store.save ws));
  Fmt.pr "seeded %s with %d bench course(s)@." store courses

(* Scan a metrics-registry JSON string for [histogram]'s [field]
   (e.g. "p99_ns") without a JSON parser: find the histogram's name,
   then the field after it, then the number. *)
let histogram_field json ~histogram ~field =
  let ( let* ) = Option.bind in
  let find sub from =
    let n = String.length json and m = String.length sub in
    let rec go i =
      if i + m > n then None
      else if String.sub json i m = sub then Some (i + m)
      else go (i + 1)
    in
    go from
  in
  let* i = find (Fmt.str "%S" histogram) 0 in
  let* j = find (Fmt.str "%S:" field) i in
  let k = ref j in
  let n = String.length json in
  while
    !k < n
    && (match json.[!k] with
       | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
       | _ -> false)
  do
    incr k
  done;
  float_of_string_opt (String.sub json j (!k - j))

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

(* The open-loop load driver and zero-lost/zero-duplicated checker the
   CI smoke runs. Each of [clients] connections owns one seeded course
   (disjoint footprints: every round batches conflict-free); per round
   the driver pipelines begin+queue+commit on every connection, then
   collects the three responses from each. A probe session brackets the
   run: with the server the only writer, every version in (v0, v1] must
   be acked exactly once — fewer acks mean a lost (acked-but-untracked
   or landed-but-unacked) commit, repeated versions a duplicated one. *)
let client_load sock clients rounds report_path =
  let probe = or_die (Penguin.Client.connect ~sock) in
  let v0 = or_die (Penguin.Client.begin_ probe) in
  let conns =
    Array.init clients (fun _ -> or_die (Penguin.Client.connect ~sock))
  in
  let acked = ref [] in
  let errors = ref 0 in
  let latencies = ref [] in
  let t_start = Unix.gettimeofday () in
  for r = 1 to rounds do
    let t0 = Unix.gettimeofday () in
    Array.iteri
      (fun j c ->
        or_die (Penguin.Client.send_begin c);
        or_die
          (Penguin.Client.send_queue c ~object_name:"omega"
             (Fmt.str
                "set GRADES[pid = %d] grade = 'R%dC%d' where course_id = \
                 'BENCH%03d'"
                (2000 + j + 1) r j (j + 1)));
        or_die (Penguin.Client.send_commit c))
      conns;
    Array.iter
      (fun c ->
        (match Penguin.Client.recv_begin c with
        | Ok _ -> ()
        | Error _ -> incr errors);
        (match Penguin.Client.recv_queue c with
        | Ok _ -> ()
        | Error _ -> incr errors);
        match Penguin.Client.recv_commit c with
        | Ok versions ->
            acked := versions @ !acked;
            latencies := (Unix.gettimeofday () -. t0) :: !latencies
        | Error _ -> incr errors)
      conns;
  done;
  let elapsed = Unix.gettimeofday () -. t_start in
  let v1 = or_die (Penguin.Client.begin_ probe) in
  let server_stats = or_die (Penguin.Client.stats probe) in
  Array.iter Penguin.Client.close conns;
  Penguin.Client.close probe;
  let n_acked = List.length !acked in
  let distinct = List.sort_uniq compare !acked in
  let duplicated = n_acked - List.length distinct in
  let out_of_range = List.filter (fun v -> v <= v0 || v > v1) distinct in
  let lost = v1 - v0 - List.length distinct in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
  let server_p99_ms =
    match
      histogram_field server_stats ~histogram:"server.commit_ns"
        ~field:"p99_ns"
    with
    | Some ns -> ns /. 1e6
    | None -> -1.
  in
  let report =
    Fmt.str
      "{\"clients\": %d, \"rounds\": %d, \"acked\": %d, \"lost\": %d, \
       \"duplicated\": %d, \"out_of_range\": %d, \"errors\": %d, \
       \"versions\": [%d, %d], \"elapsed_s\": %.3f, \"commits_per_sec\": \
       %.1f, \"client_p50_ms\": %.3f, \"client_p99_ms\": %.3f, \
       \"server_commit_p99_ms\": %.3f}"
      clients rounds n_acked lost duplicated
      (List.length out_of_range)
      !errors v0 v1 elapsed
      (float_of_int n_acked /. Float.max 1e-9 elapsed)
      (p50 *. 1e3) (p99 *. 1e3) server_p99_ms
  in
  (match report_path with
  | None -> ()
  | Some path -> or_die (write_file path report));
  Fmt.pr "%s@." report;
  if lost <> 0 || duplicated <> 0 || out_of_range <> [] then begin
    Fmt.epr
      "error: commit accounting is off — %d lost, %d duplicated, %d out of \
       range@."
      lost duplicated
      (List.length out_of_range);
    exit 1
  end

let client_ping_cmd =
  Cmd.v
    (Cmd.info "ping" ~doc:"Round-trip a ping through a serving socket.")
    Term.(const client_ping $ serve_sock_arg)

let client_stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print the server's metrics registry as JSON (counters, \
             gauges, latency histograms with percentiles).")
    Term.(const client_stats $ serve_sock_arg)

let client_oql_cmd =
  let object_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let query =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"QUERY" ~doc:"OQL condition.")
  in
  Cmd.v
    (Cmd.info "oql"
       ~doc:"Query a view object through the server's materialized cache.")
    Term.(const client_oql $ serve_sock_arg $ object_name $ query)

let client_update_cmd =
  let object_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OBJECT" ~doc:"View-object name.")
  in
  let stmt =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"STATEMENT" ~doc:"Update-language statement.")
  in
  Cmd.v
    (Cmd.info "update"
       ~doc:"Begin a session on the server, queue one update statement \
             and commit it through the current flush window.")
    Term.(const client_update $ serve_sock_arg $ object_name $ stmt)

let client_seed_cmd =
  let store =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"STORE" ~doc:"Store file to write.")
  in
  let courses =
    Arg.(value & opt int 256
         & info [ "courses" ] ~docv:"N"
             ~doc:"Disjoint bench courses to add — one per concurrent \
                   load client.")
  in
  Cmd.v
    (Cmd.info "seed"
       ~doc:"Write a store seeded for the load driver: the university \
             fixture plus N disjoint courses, one per client.")
    Term.(const client_seed $ store $ courses)

let client_load_cmd =
  let clients =
    Arg.(value & opt int 16
         & info [ "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let rounds =
    Arg.(value & opt int 10
         & info [ "rounds" ] ~docv:"N"
             ~doc:"Commit rounds; each round pipelines one commit per \
                   connection.")
  in
  let report =
    Arg.(value & opt (some string) None
         & info [ "report" ] ~docv:"FILE"
             ~doc:"Also write the JSON report here.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:"Drive N concurrent commit streams against a server (seeded \
             with $(b,client seed)) and verify the ack accounting: every \
             committed version acked exactly once, none lost, none \
             duplicated. Prints a JSON report with throughput and p99; \
             exits non-zero on any accounting anomaly.")
    Term.(const client_load $ serve_sock_arg $ clients $ rounds $ report)

let client_shutdown_cmd =
  Cmd.v
    (Cmd.info "shutdown"
       ~doc:"Flush the server's window and stop it cleanly.")
    Term.(const client_shutdown $ serve_sock_arg)

let client_cmd =
  Cmd.group
    (Cmd.info "client"
       ~doc:"Clients of $(b,penguin serve): one-shot requests, a seeding \
             helper and the concurrent load driver the CI smoke runs.")
    [ client_ping_cmd; client_seed_cmd; client_load_cmd; client_update_cmd;
      client_oql_cmd; client_stats_cmd; client_shutdown_cmd ]

(* --- dot ------------------------------------------------------------- *)

let dot fixture =
  let ws = or_die (workspace_of fixture) in
  print_string (Structural.Schema_graph.to_dot ws.Penguin.Workspace.graph)

let dot_cmd =
  Cmd.v
    (Cmd.info "dot" ~doc:"Print the structural schema in Graphviz format.")
    Term.(const dot $ fixture_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "penguin" ~version:"1.0.0"
       ~doc:
         "Object-based views over relational databases, with update \
          translation (Barsalou, Keller, Siambela & Wiederhold, SIGMOD '91).")
    [ figures_cmd; show_cmd; sql_cmd; oql_cmd; update_cmd; insert_cmd;
      dialog_cmd; dot_cmd; export_cmd; import_cmd; schema_cmd; session_cmd;
      stats_cmd; shard_cmd; replica_cmd; serve_cmd; client_cmd ]

let setup_logging () =
  match Option.map String.lowercase_ascii (Sys.getenv_opt "PENGUIN_LOG") with
  | None | Some "" -> ()
  | Some level ->
      let level =
        match level with
        | "debug" -> Some Logs.Debug
        | "info" -> Some Logs.Info
        | "warning" | "warn" -> Some Logs.Warning
        | "error" -> Some Logs.Error
        | _ -> Some Logs.Info
      in
      Logs.set_level level;
      let report src lvl ~over k msgf =
        let k _ = over (); k () in
        msgf @@ fun ?header:_ ?tags:_ fmt ->
        Format.kfprintf k Format.err_formatter
          ("[%s:%s] @[" ^^ fmt ^^ "@]@.")
          (Logs.Src.name src)
          (Logs.level_to_string (Some lvl))
      in
      Logs.set_reporter { Logs.report }

let () =
  setup_logging ();
  exit (Cmd.eval main_cmd)
