(** CRC-32 (IEEE / zlib polynomial) — the per-record checksum of the
    {!Journal} framing. *)

val digest : string -> int32
(** [digest s] is zlib's [crc32(0, s)]. *)

val update : int32 -> string -> int32
(** Incremental form: [update (digest a) b = digest (a ^ b)]. *)
