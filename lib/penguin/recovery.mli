(** Crash recovery: reconstruct a workspace from its on-disk snapshot
    plus the {!Journal} of commits since, and persist new commits
    durably.

    The invariant the fault-injection tests enforce: however a process
    dies — mid-append, mid-fsync, mid-rename, mid-rotate —
    {!open_store} yields a workspace equal to either the pre-crash or
    the post-crash committed state, never a torn mixture, and every
    replayed delta is cross-checked against the structural model with
    {!Structural.Integrity.check_delta}. The commit's durability point
    is the journal append's fsync ({!persist}): before it the commit
    never happened; after it recovery always replays it. *)

type report = {
  snapshot_version : int;  (** version recorded in the store document *)
  replayed : int;  (** journal entries applied on top of it *)
  version : int;  (** resulting workspace version *)
  epoch : int;
      (** leader epoch from the journal header ([0] when no journal, or
          a pre-epoch format-1 journal) — pass it back to {!persist} as
          [expect_epoch] to be fenced off if a replica promotes *)
  torn_bytes : int;  (** torn journal tail discarded ([0] = clean) *)
  repaired : bool;  (** the torn tail was truncated on disk *)
  journal : bool;  (** a journal file was present *)
}

val pp_report : Format.formatter -> report -> unit

val apply_entry :
  ?path:string ->
  ?record:int ->
  Workspace.t ->
  Commit_log.entry ->
  (Workspace.t, Error.t) result
(** Apply one replayed commit-log entry: append it to the workspace's
    log (versions must stay dense), apply its delta, and cross-check
    the result against the structural model with
    {!Structural.Integrity.check_delta}. This is the single replay step
    both {!open_store} and a tailing {!Replica} go through — a shipped
    delta gets exactly the validation a locally recovered one does. On
    failure the {!Error.Corrupt} names the entry's version and, when
    [path]/[record] say where it came from, the journal record. *)

val open_store :
  ?io:Fsio.t ->
  ?repair:bool ->
  ?cache:Viewobject.Cache.t ->
  string ->
  (Workspace.t * report, Error.t) result
(** Load the store document at the path, then replay its journal
    ([path ^ ".journal"], if present): entries newer than the snapshot's
    recorded version are applied in order — versions must extend the
    snapshot densely — with each delta validated against the structural
    model as it lands. The returned workspace's commit log holds the
    replayed entries as real deltas (its history below the snapshot
    version is a barrier), so sessions check optimistic-concurrency
    conflicts against true footprints. A torn journal tail is discarded
    in memory; when [repair] (default [false]) it is also truncated on
    disk. Leave [repair] off on read-only paths — a "torn tail" seen
    without the store lock ({!Fsio.with_lock}) may be another process's
    append in flight, and rewriting the journal would discard its
    commit. {!persist} repairs at commit time instead.

    [cache] (an attached {!Viewobject.Cache.t}) is
    {!Workspace.sync_cache}d to the recovered workspace: since replayed
    journal entries land in the log as real deltas, a cache warmed
    before a crash is replay-warmed — patched forward entry by entry —
    instead of rebuilt (unless its position predates the snapshot, in
    which case it is invalidated and rebuilds lazily). *)

type persisted = {
  rotated : bool;  (** the journal was folded into a fresh snapshot *)
  rotate_error : Error.t option;
      (** the rotation was due but failed — the commit itself is
          durable and the journal intact; a later commit retries *)
}

val persist :
  ?io:Fsio.t ->
  ?sync:bool ->
  ?rotate_threshold:int ->
  ?breaker:Resilience.Breaker.t ->
  ?expect_epoch:int ->
  store:string ->
  since:int ->
  Workspace.t ->
  (persisted, Error.t) result
(** Durably record the workspace's commits after version [since] (which
    must be the version {!open_store} returned for this store): append
    them to the journal as one all-or-nothing record ([sync], default
    [true], fsyncs — the durability point), initializing the journal at
    [since] if the store was a plain export without one. Refuses with a
    "store advanced" error if the journal's tail version no longer
    equals [since] (a concurrent commit slipped in); call under
    {!Fsio.with_lock} on the store, as the CLI does, to rule that out
    rather than detect it. A torn journal tail is truncated before the
    append. When the journal reaches [rotate_threshold] records
    (default 64) it is folded into a fresh snapshot ({!snapshot}),
    bounding replay cost by the threshold rather than the store's
    lifetime; a rotation failure {e after} the append's fsync is
    reported as [rotate_error], not [Error] — the commit is already
    durable and must not be retried. Failures are typed: a lost race is
    {!Error.Conflict} (retryable after reopening), a stale [since] is
    {!Error.Invalid}, disk faults are {!Error.Io}. When [breaker] is
    given the whole durable path runs under
    {!Resilience.Breaker.protect}: after K consecutive non-transient
    durability failures it trips and later persists are shed with
    {!Error.Busy} (degraded read-only mode — {!open_store} is never
    gated), until a post-cooldown probe succeeds.

    [expect_epoch] (from the {!report} of the open this commit was
    prepared against) arms epoch fencing: if the journal header's epoch
    has advanced past it — a replica promoted and took over leadership —
    the persist refuses with {!Error.Invalid} ("fenced") {e before}
    appending anything. Without it (the default), no epoch check is
    made. Rotation and journal initialization preserve the epoch. *)

val snapshot :
  ?io:Fsio.t -> ?epoch:int -> store:string -> Workspace.t ->
  (unit, Error.t) result
(** Atomically rewrite the store document at the workspace's current
    state and reset the journal to extend it ({!Journal.rotate}),
    stamping [epoch] (default [0]) in the fresh journal header. *)

(** Long-lived exclusive-writer journal handle. {!persist} re-replays
    the whole journal on every call to rediscover its tail version,
    record count and epoch — correct for a commit-and-exit CLI process,
    quadratic for a server flushing hundreds of windows. An appender
    performs that validation once at {!Appender.create} and then
    appends incrementally from a trusted in-memory cursor.

    Soundness precondition: the caller holds the store's exclusive lock
    ({!Fsio.with_lock}) for the appender's {e entire} lifetime — that is
    what rules out the concurrent-writer races the per-call replay was
    detecting. After a failed append or rotation the cursor is marked
    dirty and the next append rebuilds it from disk (truncating any torn
    tail) before writing, so a fault costs one extra replay, not
    correctness. *)
module Appender : sig
  type t

  val create :
    ?io:Fsio.t ->
    ?rotate_threshold:int ->
    ?breaker:Resilience.Breaker.t ->
    ?expect_epoch:int ->
    store:string ->
    Workspace.t ->
    (t, Error.t) result
  (** Validate the journal once — epoch fence against [expect_epoch]
      (refusing with {!Error.Invalid} "fenced" if a replica promoted),
      truncate any torn tail, initialize a journal for a plain exported
      store — and capture the record count and tail version. Refuses
      with {!Error.Conflict} if the journal's tail does not match the
      workspace's version (the workspace must come from {!open_store}
      on the same store, under the same lock). [breaker] guards every
      subsequent {!append}, as {!persist}'s [breaker] does. *)

  val append : t -> since:int -> Workspace.t -> (persisted, Error.t) result
  (** Durably record the workspace's commits after version [since] with
      one journal append + one fsync — no replay. [since] must equal
      the appender's cursor (the version of the last append, or of
      {!create}); otherwise {!Error.Conflict}. Rotation at
      [rotate_threshold] and the [rotate_error] contract match
      {!persist}. Runs under the create-time [breaker], if any. *)

  val tail : t -> int
  (** The newest version the journal durably holds. *)
end
