module M = Obs.Metrics

let m_retries =
  M.counter ~help:"retry attempts taken after a retryable failure"
    "resilience.retries"

let m_giveups =
  M.counter ~help:"retry loops that exhausted their attempts"
    "resilience.giveups"

let m_deadline_hits =
  M.counter ~help:"operations abandoned at their deadline"
    "resilience.deadline_hits"

let m_shed =
  M.counter ~help:"requests shed by admission control" "resilience.shed"

let m_trips =
  M.counter ~help:"circuit breaker trips into degraded read-only mode"
    "breaker.trips"

let m_reopens =
  M.counter ~help:"failed half-open probes re-opening the breaker"
    "breaker.reopens"

let m_closes =
  M.counter ~help:"successful probes re-closing the breaker"
    "breaker.closes"

let m_rejections =
  M.counter ~help:"writes rejected while the breaker is open"
    "breaker.rejections"

let m_probes = M.counter ~help:"half-open probe attempts" "breaker.probes"

module Clock = struct
  type t = {
    now_ns : unit -> float;
    sleep_ns : float -> unit;
  }

  let real =
    {
      now_ns = M.now_ns;
      sleep_ns = (fun ns -> if ns > 0. then Unix.sleepf (ns /. 1e9));
    }

  let instant () =
    let t = ref 0. in
    {
      now_ns = (fun () -> !t);
      sleep_ns = (fun ns -> if ns > 0. then t := !t +. ns);
    }
end

module Policy = struct
  type t = {
    max_attempts : int;
    base_delay_ns : float;
    max_delay_ns : float;
    multiplier : float;
    jitter : float;
    seed : int;
  }

  let default =
    {
      max_attempts = 5;
      base_delay_ns = 1e6;
      max_delay_ns = 1e8;
      multiplier = 2.;
      jitter = 0.2;
      seed = 0;
    }

  let no_retry = { default with max_attempts = 1 }
  let occ = { default with max_attempts = 3; base_delay_ns = 0.; jitter = 0. }

  (* A deterministic unit draw in [0, 1) from (seed, attempt): a 48-bit
     LCG (the classic drand48 constants) keyed on both and iterated a
     few rounds so nearby keys decorrelate. Native-int arithmetic only —
     identical on every 64-bit platform, and independent of the global
     Random state (no hidden coupling between tests). *)
  let unit_draw seed attempt =
    let a = 25214903917 and c = 11 and mask = 0xFFFFFFFFFFFF in
    let s = ref (((seed * 0x9E3779B9) lxor (attempt * 0x85EBCA6B)) land mask) in
    for _ = 1 to 3 do
      s := ((!s * a) + c) land mask
    done;
    float_of_int (!s lsr 16) /. 4294967296.

  let backoff_ns p ~attempt =
    if p.base_delay_ns <= 0. then 0.
    else
      let raw =
        p.base_delay_ns *. (p.multiplier ** float_of_int (attempt - 1))
      in
      let capped = Float.min raw p.max_delay_ns in
      let factor = 1. -. p.jitter +. (2. *. p.jitter *. unit_draw p.seed attempt) in
      capped *. factor

  let schedule p =
    List.init (max 0 (p.max_attempts - 1)) (fun i -> backoff_ns p ~attempt:(i + 1))
end

let retry ?(policy = Policy.default) ?(clock = Clock.real) ?deadline_ns
    ?(label = "operation") f =
  let expired last =
    M.Counter.incr m_deadline_hits;
    Obs.Trace.tag "deadline" "exceeded";
    Error
      (Error.Deadline_exceeded
         (match last with
         | None -> Fmt.str "%s: deadline exceeded" label
         | Some e ->
             Fmt.str "%s: deadline exceeded after retryable error: %s" label
               (Error.to_string e)))
  in
  let past extra =
    match deadline_ns with
    | None -> false
    | Some d -> clock.Clock.now_ns () +. extra > d
  in
  let rec attempt n =
    if past 0. then expired None
    else
      match f () with
      | Ok _ as ok ->
          if n > 1 then Obs.Trace.tag "retries" (string_of_int (n - 1));
          ok
      | Error e when Error.retryable e ->
          if n >= policy.Policy.max_attempts then begin
            M.Counter.incr m_giveups;
            Obs.Trace.tag "retries_exhausted" (string_of_int (n - 1));
            Error e
          end
          else
            let delay = Policy.backoff_ns policy ~attempt:n in
            if past delay then expired (Some e)
            else begin
              clock.Clock.sleep_ns delay;
              M.Counter.incr m_retries;
              attempt (n + 1)
            end
      | Error _ as err -> err
  in
  attempt 1

module Limiter = struct
  type t = {
    label : string;
    max_in_flight : int;
    mutable in_flight : int;
  }

  let create ?(label = "limiter") ~max_in_flight () =
    if max_in_flight < 1 then
      invalid_arg "Resilience.Limiter.create: max_in_flight must be >= 1";
    { label; max_in_flight; in_flight = 0 }

  let in_flight l = l.in_flight

  let try_acquire l =
    if l.in_flight >= l.max_in_flight then begin
      M.Counter.incr m_shed;
      Obs.Trace.tag "shed" "true";
      Error
        (Error.Busy
           (Fmt.str "%s: %d operation(s) in flight (limit %d); request shed"
              l.label l.in_flight l.max_in_flight))
    end
    else begin
      l.in_flight <- l.in_flight + 1;
      Ok ()
    end

  let release l = if l.in_flight > 0 then l.in_flight <- l.in_flight - 1

  let with_slot l f =
    match try_acquire l with
    | Error _ as e -> e
    | Ok () -> Fun.protect ~finally:(fun () -> release l) f
end

module Breaker = struct
  type state = Closed | Open | Half_open

  type t = {
    label : string;
    threshold : int;
    cooldown_ns : float;
    clock : Clock.t;
    mutable st : state;
    mutable consecutive : int;
    mutable opened_at : float;
  }

  let create ?(label = "store") ?(threshold = 3) ?(cooldown_ns = 5e9)
      ?(clock = Clock.real) () =
    if threshold < 1 then
      invalid_arg "Resilience.Breaker.create: threshold must be >= 1";
    { label; threshold; cooldown_ns; clock; st = Closed;
      consecutive = 0; opened_at = 0. }

  (* Cooldown expiry is observed lazily: the state only moves Open ->
     Half_open when someone looks, which keeps the breaker free of
     timers and makes it exact under virtual clocks. *)
  let settle t =
    if t.st = Open
       && t.clock.Clock.now_ns () -. t.opened_at >= t.cooldown_ns
    then t.st <- Half_open

  let state t =
    settle t;
    t.st

  let degraded t = state t <> Closed

  let trip t =
    t.st <- Open;
    t.opened_at <- t.clock.Clock.now_ns ();
    t.consecutive <- 0

  let reset t =
    t.st <- Closed;
    t.consecutive <- 0

  let protect t f =
    settle t;
    match t.st with
    | Open ->
        M.Counter.incr m_rejections;
        Obs.Trace.tag "breaker" "open";
        Error
          (Error.Busy
             (Fmt.str
                "%s: circuit open after repeated durability failures — \
                 degraded read-only mode (writes refused; probe in %.0f ms)"
                t.label
                ((t.cooldown_ns -. (t.clock.Clock.now_ns () -. t.opened_at))
                /. 1e6)))
    | (Closed | Half_open) as before -> (
        if before = Half_open then begin
          M.Counter.incr m_probes;
          Obs.Trace.tag "breaker" "probe"
        end;
        match f () with
        | Ok _ as ok ->
            if before = Half_open then M.Counter.incr m_closes;
            t.st <- Closed;
            t.consecutive <- 0;
            ok
        | Error e as err ->
            (if Error.breaker_fault e then
               match before with
               | Half_open ->
                   M.Counter.incr m_reopens;
                   Obs.Trace.tag "breaker" "reopen";
                   trip t
               | Closed | Open ->
                   t.consecutive <- t.consecutive + 1;
                   if t.consecutive >= t.threshold then begin
                     M.Counter.incr m_trips;
                     Obs.Trace.tag "breaker" "trip";
                     trip t
                   end);
            err)
end
