(** The socket feed: serve a leader store's snapshot and journal bytes
    to followers over a Unix-domain socket, one length-prefixed,
    CRC-32-checksummed frame exchange per request.

    The protocol is deliberately stateless — each request opens a
    connection, sends one request frame ([(snapshot)], [(head)], or
    [(journal <off>)]), and reads a two-frame response (a status sexp,
    then the raw bytes) — so the follower's position lives entirely in
    the {!Replica} and a dropped connection at {e any} byte is just a
    failed fetch: the frames reuse the journal wire format, a truncated
    response fails its checksum, the client reports a transient I/O
    error, and the replica re-fetches. The [@replica-suite] kill sweep
    exercises exactly this, cutting the exchange at every I/O point. *)

val serve :
  ?io:Fsio.t ->
  ?max_requests:int ->
  store:string ->
  sock:string ->
  unit ->
  (int, Error.t) result
(** Serve [store] (and its journal) on the Unix-domain socket path
    [sock], unlinking any stale socket first. Handles connections
    sequentially; request errors are answered in-band and a client
    dying mid-exchange drops only its own connection. Returns the
    number of requests served once a [(quit)] request arrives
    ({!quit}) or [max_requests] (default: unbounded) is reached. *)

val quit : sock:string -> (unit, Error.t) result
(** Ask the server on [sock] to answer its in-flight requests and stop
    — the clean shutdown the CLI and tests use. *)

val feed : sock:string -> Replica.feed
(** A {!Replica.feed} speaking the protocol against [sock]. Fetches
    are connection-per-request; failures are typed transient I/O
    errors the replica's poll/refetch discipline absorbs. *)
