open Relational

let src = Logs.Src.create "penguin.shard_store" ~doc:"sharded store recovery"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let m_opens = M.counter ~help:"sharded stores opened" "shard.opens"

let m_open_ns =
  M.histogram ~help:"sharded open: manifest + all shards + 2PC resolution"
    "shard.open_store_ns"

let m_resolved_committed =
  M.counter ~help:"dangling cross-shard prepares resolved as committed"
    "shard.resolved_committed"

let m_resolved_aborted =
  M.counter ~help:"dangling cross-shard prepares presumed aborted"
    "shard.resolved_aborted"

let atom = Sexp.atom
let l = Sexp.list
let int_atom i = atom (string_of_int i)

let int_of_sexp e =
  let* a = Sexp.as_atom e in
  match int_of_string_opt a with
  | Some i -> Ok i
  | None -> Error (Fmt.str "shard store: bad integer %s" a)

(* --- layout ------------------------------------------------------------ *)

let shard_name i = Fmt.str "SHARD_%03d" i
let shard_path ~root i = Filename.concat root (shard_name i)
let manifest_path ~root = Filename.concat root "MANIFEST"
let defs_path ~root = Filename.concat root "DEFS"
let exists ~root = Sys.file_exists (manifest_path ~root)

(* --- manifest ---------------------------------------------------------- *)

(* The manifest's [(epoch E)] field is the sharded store's fencing
   token, the analogue of the journal-header epoch of a single store.
   Manifests written before replication carry no epoch field and read
   back as epoch 0. *)
let manifest_doc ~count ~base ~epoch plan =
  Sexp.to_string
    (l
       [ atom "penguin-shard-manifest"; atom "1";
         l [ atom "shards"; int_atom count ];
         l [ atom "base"; int_atom base ];
         l [ atom "epoch"; int_atom epoch ];
         l
           (atom "assignment"
           :: List.map
                (fun (rel, shard) -> l [ atom rel; int_atom shard ])
                (Structural.Partition.assignment plan)) ])
  ^ "\n"

let manifest_of_doc content =
  let* doc = Sexp.parse content in
  let* items = Sexp.as_list doc in
  match items with
  | Sexp.Atom "penguin-shard-manifest" :: Sexp.Atom "1" :: rest ->
      let* count =
        let* c = Sexp.keyed "shards" rest in
        match c with [ c ] -> int_of_sexp c | _ -> Error "shard store: bad shards"
      in
      let* base =
        let* b = Sexp.keyed "base" rest in
        match b with [ b ] -> int_of_sexp b | _ -> Error "shard store: bad base"
      in
      let* epoch =
        match Sexp.keyed_opt "epoch" rest with
        | None -> Ok 0
        | Some [ e ] -> int_of_sexp e
        | Some _ -> Error "shard store: bad epoch"
      in
      let* assignment_items = Sexp.keyed "assignment" rest in
      let* assignment =
        List.fold_left
          (fun acc e ->
            let* bs = acc in
            let* items = Sexp.as_list e in
            match items with
            | [ Sexp.Atom rel; shard ] ->
                let* shard = int_of_sexp shard in
                Ok ((rel, shard) :: bs)
            | _ -> Error "shard store: bad assignment entry")
          (Ok []) assignment_items
      in
      Ok (count, base, epoch, List.rev assignment)
  | _ -> Error "shard store: not a manifest document"

let read_manifest ?(io = Fsio.default) ~root () =
  let path = manifest_path ~root in
  let* c = io.Fsio.read path in
  match c with
  | None -> Error (Error.invalid (Fmt.str "no such file: %s" path))
  | Some c ->
      Result.map_error (fun m -> Error.corrupt_record ~path m)
        (manifest_of_doc c)

let read_epoch ?io ~root () =
  let* _, _, epoch, _ = read_manifest ?io ~root () in
  Ok epoch

(* --- shard snapshots --------------------------------------------------- *)

let relation_to_sexp r =
  l
    (atom "relation"
    :: atom (Relation.name r)
    :: List.map Store.tuple_to_sexp (Relation.to_list r))

let shard_doc ~shard ~version ~relations db =
  Sexp.to_string
    (l
       [ atom "penguin-shard"; atom "1";
         l [ atom "shard"; int_atom shard ];
         l [ atom "version"; int_atom version ];
         l
           (atom "data"
           :: List.map
                (fun n -> relation_to_sexp (Database.relation_exn db n))
                relations) ])
  ^ "\n"

(* Parse a shard document and insert its rows into [db]. *)
let load_shard_doc ~shard content db =
  let* doc = Sexp.parse content in
  let* items = Sexp.as_list doc in
  match items with
  | Sexp.Atom "penguin-shard" :: Sexp.Atom "1" :: rest ->
      let* recorded =
        let* s = Sexp.keyed "shard" rest in
        match s with [ s ] -> int_of_sexp s | _ -> Error "shard store: bad shard id"
      in
      let* () =
        if recorded = shard then Ok ()
        else
          Error
            (Fmt.str "shard store: file for shard %d records shard %d" shard
               recorded)
      in
      let* version =
        let* v = Sexp.keyed "version" rest in
        match v with
        | [ v ] -> int_of_sexp v
        | _ -> Error "shard store: bad version"
      in
      let* rel_items = Sexp.keyed "data" rest in
      let* db =
        List.fold_left
          (fun acc e ->
            let* db = acc in
            let* items = Sexp.as_list e in
            match items with
            | Sexp.Atom "relation" :: Sexp.Atom name :: rows ->
                List.fold_left
                  (fun acc row ->
                    let* db = acc in
                    let* t = Store.tuple_of_sexp row in
                    Result.map_error Database.error_to_string
                      (Database.insert db name t))
                  (Ok db) rows
            | _ -> Error "shard store: bad relation data")
          (Ok db) rel_items
      in
      Ok (version, db)
  | _ -> Error "shard store: not a shard document"

let save_shard ?(io = Fsio.default) ~root ~shard ~version ~relations db =
  Fsio.atomic_write io ~path:(shard_path ~root shard)
    (shard_doc ~shard ~version ~relations db)

(* --- init -------------------------------------------------------------- *)

let init ?(io = Fsio.default) ?max_shards ~root ws =
  if exists ~root then
    Error (Error.invalid (Fmt.str "sharded store already exists at %s" root))
  else
    let plan = Structural.Partition.compute ?max_shards ws.Workspace.graph in
    let count = Structural.Partition.count plan in
    if count = 0 then
      Error (Error.invalid "sharded store: the schema graph has no relations")
    else
      let base = Workspace.version ws in
      let* () =
        if Sys.file_exists root then Ok ()
        else
          try
            Unix.mkdir root 0o755;
            Ok ()
          with
          | Unix.Unix_error (e, fn, arg) ->
              Error (Error.of_unix ~op:Error.Write ~path:root ~fn ~arg e)
      in
      let defs = { ws with Workspace.log = Commit_log.of_version 0 } in
      let* () =
        Fsio.atomic_write io ~path:(defs_path ~root)
          (Store.save ~include_data:false defs)
      in
      let rec shards i =
        if i >= count then Ok ()
        else
          let* () =
            save_shard ~io ~root ~shard:i ~version:base
              ~relations:(Structural.Partition.members plan i)
              ws.Workspace.db
          in
          let* () =
            Journal.initialize
              (Journal.create ~io (Journal.journal_path (shard_path ~root i)))
              ~base
          in
          shards (i + 1)
      in
      let* () = shards 0 in
      (* The manifest lands last: its presence marks a complete store. *)
      let* () =
        Fsio.atomic_write io ~path:(manifest_path ~root)
          (manifest_doc ~count ~base ~epoch:0 plan)
      in
      Ok plan

(* Rewrite the manifest with a new epoch, preserving everything else.
   Promotion's fencing step: every later epoch-checked append under the
   old epoch refuses. Callers hold all shard locks. *)
let set_epoch ?(io = Fsio.default) ~root epoch =
  let* count, base, _old, _assignment = read_manifest ~io ~root () in
  let* manifest = io.Fsio.read (manifest_path ~root) in
  match manifest with
  | None -> Error (Error.invalid (Fmt.str "no manifest under %s" root))
  | Some _ ->
      (* Re-render from the parsed fields via the plan recomputation the
         open path uses; the assignment in the manifest is a pure
         function of DEFS, so re-deriving it cannot drift. *)
      let* defs = io.Fsio.read (defs_path ~root) in
      let* defs =
        match defs with
        | Some d -> Ok d
        | None -> Error (Error.invalid (Fmt.str "no DEFS under %s" root))
      in
      let* defs_ws = Result.map_error Error.corrupt (Store.load defs) in
      let plan =
        Structural.Partition.compute ~max_shards:count defs_ws.Workspace.graph
      in
      Fsio.atomic_write io ~path:(manifest_path ~root)
        (manifest_doc ~count ~base ~epoch plan)

(* --- recovery ---------------------------------------------------------- *)

type shard_report = {
  shard : int;
  snapshot_version : int;
  replayed : int;
  version : int;
  torn_bytes : int;
  committed_2pc : int;
  aborted_2pc : int;
}

type report = {
  shards : shard_report list;
  vector : int list;
}

let pp_report ppf r =
  Fmt.pf ppf "@[<v>version vector [%a]"
    Fmt.(list ~sep:(any "; ") int)
    r.vector;
  List.iter
    (fun s ->
      Fmt.pf ppf "@,shard %d: snapshot v%d + %d replayed = v%d%s%s" s.shard
        s.snapshot_version s.replayed s.version
        (if s.torn_bytes > 0 then
           Fmt.str " (torn tail: %d byte(s))" s.torn_bytes
         else "")
        (if s.committed_2pc + s.aborted_2pc > 0 then
           Fmt.str " (2pc: %d committed, %d aborted)" s.committed_2pc
             s.aborted_2pc
         else ""))
    r.shards;
  Fmt.pf ppf "@]"

type opened = {
  ws : Workspace.t;
  plan : Structural.Partition.plan;
  base : int;
  epoch : int;
  versions : int array;
  logs : Commit_log.t array;
  report : report;
}

(* One unit of replay work: a plain single-shard entry, or this shard's
   slice of a decided cross-shard commit. *)
type slice = {
  gid : string;
  slice_entries : Commit_log.entry list;
}

type item = Single of Commit_log.entry | Slice of slice

let corrupt fmt = Fmt.kstr (fun s -> Error (Error.corrupt s)) fmt

(* --- follower consistent cut ------------------------------------------- *)

(* A follower ships each shard's journal independently, so at any
   instant some shards may hold a cross-shard commit's records while
   others do not yet — a state a crashed {e leader} can never be in
   (the leader fsyncs every participant's prepare before the decide).
   Opening such a set naively would half-apply the commit. The
   consistent cut trims each shard's record list to the longest prefix
   under which every decided gid still has a prepare on {e every}
   participant: any record touching an "incomplete" gid, and everything
   after it on that shard, is dropped, iterated to a fixed point
   (dropping a suffix can orphan further gids). Each shard still serves
   a prefix of its own record sequence, and no two-phase commit is
   observed on only some participants. *)
let consistent_cut framed =
  let arr = Array.map Array.of_list framed in
  let cut = Array.map Array.length arr in
  let gid_of = function
    | Journal.Prepare { gid; _ } | Journal.Decide gid | Journal.Mark gid ->
        Some gid
    | Journal.Commit _ -> None
  in
  let changed = ref true in
  while !changed do
    changed := false;
    let decided = Hashtbl.create 8 in
    let participants = Hashtbl.create 8 in
    let prepared = Hashtbl.create 8 in
    Array.iteri
      (fun i a ->
        for k = 0 to cut.(i) - 1 do
          match snd a.(k) with
          | Journal.Decide gid | Journal.Mark gid ->
              Hashtbl.replace decided gid ()
          | Journal.Prepare { gid; shards; _ } ->
              Hashtbl.replace prepared (gid, i) ();
              Hashtbl.replace participants gid shards
          | Journal.Commit _ -> ()
        done)
      arr;
    let incomplete gid =
      match Hashtbl.find_opt participants gid with
      | None -> true (* decided, but no prepare shipped anywhere *)
      | Some shards ->
          List.exists (fun s -> not (Hashtbl.mem prepared (gid, s))) shards
    in
    let bad =
      Hashtbl.fold
        (fun gid () acc -> if incomplete gid then gid :: acc else acc)
        decided []
    in
    if bad <> [] then
      Array.iteri
        (fun i a ->
          let rec first k =
            if k >= cut.(i) then cut.(i)
            else
              match gid_of (snd a.(k)) with
              | Some g when List.mem g bad -> k
              | _ -> first (k + 1)
          in
          let f = first 0 in
          if f < cut.(i) then begin
            cut.(i) <- f;
            changed := true
          end)
        arr
  done;
  Array.mapi
    (fun i a ->
      let kept = Array.to_list (Array.sub a 0 cut.(i)) in
      let cut_off =
        if cut.(i) < Array.length a then Some (fst a.(cut.(i))) else None
      in
      kept, cut_off)
    arr

let apply_delta_checked graph db ~kind ~version d =
  let* db =
    Result.map_error
      (fun err ->
        Error.corrupt
          (Fmt.str "shard recovery: replaying v%d (%s): %s" version kind
             (Database.error_to_string err)))
      (Database.apply_delta db d)
  in
  match Structural.Integrity.check_delta graph db ~delta:d with
  | [] -> Ok db
  | v :: _ ->
      corrupt "shard recovery: replaying v%d (%s) breaks the structural model: %a"
        version kind Structural.Integrity.pp_violation v

let append_to_log logs shard (e : Commit_log.entry) =
  let* log =
    Result.map_error
      (fun m -> Error.corrupt (Fmt.str "shard %d: %s" shard m))
      (Commit_log.append_entry logs.(shard) e)
  in
  logs.(shard) <- log;
  Ok ()

let open_store ?(io = Fsio.default) ?(repair = false) ?(follower = false) ~root
    () =
  Obs.Trace.with_span "shard_store.open" @@ fun () ->
  M.time m_open_ns @@ fun () ->
  M.Counter.incr m_opens;
  let read path =
    let* c = io.Fsio.read path in
    match c with
    | Some c -> Ok c
    | None -> Error (Error.invalid (Fmt.str "no such file: %s" path))
  in
  let* manifest = read (manifest_path ~root) in
  let* count, base, epoch, assignment =
    Result.map_error Error.corrupt (manifest_of_doc manifest)
  in
  let* defs = read (defs_path ~root) in
  let* defs_ws = Result.map_error Error.corrupt (Store.load defs) in
  let graph = defs_ws.Workspace.graph in
  (* The partition is a pure function of the schema: recompute and
     cross-check the manifest's assignment, so a store written under a
     different schema is refused rather than mis-routed. *)
  let plan = Structural.Partition.compute ~max_shards:count graph in
  let* () =
    if Structural.Partition.count plan <> count then
      corrupt "shard store: manifest says %d shard(s), schema partitions into %d"
        count
        (Structural.Partition.count plan)
    else if Structural.Partition.assignment plan <> assignment then
      corrupt "shard store: manifest assignment disagrees with the schema's \
               island partition (schema drift?)"
    else Ok ()
  in
  (* Load every shard snapshot into one merged database and replay every
     journal's record trail. *)
  let journals =
    Array.init count (fun i ->
        Journal.create ~io (Journal.journal_path (shard_path ~root i)))
  in
  let* db, snap_versions =
    let rec go i db vs =
      if i >= count then Ok (db, List.rev vs)
      else
        let* content = read (shard_path ~root i) in
        let* v, db =
          Result.map_error Error.corrupt (load_shard_doc ~shard:i content db)
        in
        go (i + 1) db (v :: vs)
    in
    go 0 defs_ws.Workspace.db []
  in
  let snap_versions = Array.of_list snap_versions in
  let* replays =
    let rec go i acc =
      if i >= count then Ok (List.rev acc)
      else
        let* r = Journal.replay journals.(i) in
        match r with
        | None -> corrupt "shard store: shard %d has no journal" i
        | Some r -> go (i + 1) (r :: acc)
    in
    go 0 []
  in
  let replays = Array.of_list replays in
  (* Torn tails: discard in memory always; truncate on disk when this is
     a writer's (repair) open. *)
  let* () =
    if not repair then Ok ()
    else
      let rec go i =
        if i >= count then Ok ()
        else
          let r = replays.(i) in
          let* () =
            if r.Journal.torn_bytes > 0 then (
              Log.warn (fun m ->
                  m "shard %d journal has a torn tail (%d byte(s)); truncating"
                    i r.Journal.torn_bytes);
              Journal.truncate_torn journals.(i)
                ~clean_bytes:r.Journal.clean_bytes)
            else Ok ()
          in
          go (i + 1)
      in
      go 0
  in
  (* Follower opens see unevenly shipped journals: trim each shard's
     records to the consistent cut before resolution, and — when this
     is a promotion ([repair]) — make the cut physical, so the promoted
     store's journals are exactly what its state replays from. *)
  let* trails =
    if not follower then
      Ok (Array.map (fun r -> r.Journal.trail) replays)
    else begin
      let trimmed =
        consistent_cut (Array.map (fun r -> r.Journal.framed) replays)
      in
      let* () =
        if not repair then Ok ()
        else
          let rec go i =
            if i >= count then Ok ()
            else
              let* () =
                match snd trimmed.(i) with
                | None -> Ok ()
                | Some cut_off ->
                    Log.warn (fun m ->
                        m
                          "shard %d: dropping records past the consistent cut \
                           (byte %d) — incomplete cross-shard commit(s)"
                          i cut_off);
                    Journal.truncate_torn journals.(i) ~clean_bytes:cut_off
              in
              go (i + 1)
          in
          go 0
      in
      Ok (Array.map (fun (kept, _) -> List.map snd kept) trimmed)
    end
  in
  (* Two-phase resolution: a gid is decided iff any shard holds its
     [Decide] (the decision shard) or a [Mark] (a participant that
     already applied it). *)
  let decided = Hashtbl.create 8 in
  let marked = Array.init count (fun _ -> Hashtbl.create 4) in
  Array.iteri
    (fun i trail ->
      List.iter
        (function
          | Journal.Decide gid -> Hashtbl.replace decided gid ()
          | Journal.Mark gid ->
              Hashtbl.replace decided gid ();
              Hashtbl.replace marked.(i) gid ()
          | Journal.Commit _ | Journal.Prepare _ -> ())
        trail)
    trails;
  (* Build each shard's replay queue, counting resolutions. Entries at
     or below the snapshot's version are already folded into it. *)
  let committed_2pc = Array.make count 0 in
  let aborted_2pc = Array.make count 0 in
  let needs_mark = Array.make count [] in
  let queues =
    Array.init count (fun i ->
        let fresh (e : Commit_log.entry) =
          e.Commit_log.version > snap_versions.(i)
        in
        List.concat_map
          (function
            | Journal.Commit es ->
                List.map (fun e -> Single e) (List.filter fresh es)
            | Journal.Prepare { gid; entries; _ } ->
                if Hashtbl.mem decided gid then begin
                  if not (Hashtbl.mem marked.(i) gid) then begin
                    committed_2pc.(i) <- committed_2pc.(i) + 1;
                    needs_mark.(i) <- gid :: needs_mark.(i)
                  end;
                  match List.filter fresh entries with
                  | [] -> []
                  | slice_entries -> [ Slice { gid; slice_entries } ]
                end
                else begin
                  aborted_2pc.(i) <- aborted_2pc.(i) + 1;
                  []
                end
            | Journal.Decide _ | Journal.Mark _ -> [])
          trails.(i))
  in
  M.Counter.add m_resolved_committed (Array.fold_left (+) 0 committed_2pc);
  M.Counter.add m_resolved_aborted (Array.fold_left (+) 0 aborted_2pc);
  (* Apply the queues: single-shard entries drain freely in per-shard
     version order; the slices of one gid are applied together as one
     merged delta with one integrity check, so a cross-shard commit
     lands on all its participants "at once" even during replay. *)
  let logs =
    Array.init count (fun i -> Commit_log.of_version snap_versions.(i))
  in
  let replayed = Array.make count 0 in
  let* db =
    let heads = Array.map (fun q -> ref q) queues in
    let apply_single db shard (e : Commit_log.entry) =
      let* () = append_to_log logs shard e in
      replayed.(shard) <- replayed.(shard) + 1;
      match e.Commit_log.change with
      | Commit_log.Barrier _ -> Ok db
      | Commit_log.Delta d ->
          apply_delta_checked graph db ~kind:e.Commit_log.kind
            ~version:e.Commit_log.version d
    in
    let rec pass db progressed i =
      if i >= count then
        if Array.for_all (fun h -> !h = []) heads then Ok db
        else if progressed then pass db false 0
        else corrupt "shard store: cross-shard replay cannot make progress \
                      (incoherent journals)"
      else
        match !(heads.(i)) with
        | Single e :: rest ->
            heads.(i) := rest;
            let* db = apply_single db i e in
            pass db true i
        | Slice { gid; _ } :: _ ->
            (* Gather every shard whose head is this gid; they must all
               reach it before the merged slice applies. A participant
               not yet at its slice gets there by draining its own
               singles first; a participant still holding the gid deeper
               in its queue forces us to visit other shards first. *)
            let participants = List.init count Fun.id in
            let ready =
              List.filter_map
                (fun j ->
                  match !(heads.(j)) with
                  | Slice s :: _ when s.gid = gid -> Some (j, s)
                  | _ -> None)
                participants
            in
            let pending_elsewhere =
              List.exists
                (fun j ->
                  (not (List.mem_assoc j ready))
                  && List.exists
                       (function
                         | Slice s -> s.gid = gid
                         | Single _ -> false)
                       !(heads.(j)))
                participants
            in
            if pending_elsewhere then pass db progressed (i + 1)
            else
              let* merged, vmax =
                List.fold_left
                  (fun acc (j, s) ->
                    let* merged, vmax = acc in
                    (heads.(j) :=
                       match !(heads.(j)) with
                       | _ :: rest -> rest
                       | [] -> []);
                    List.fold_left
                      (fun acc (e : Commit_log.entry) ->
                        let* merged, vmax = acc in
                        let* () = append_to_log logs j e in
                        replayed.(j) <- replayed.(j) + 1;
                        let vmax = max vmax e.Commit_log.version in
                        match e.Commit_log.change with
                        | Commit_log.Barrier _ -> Ok (merged, vmax)
                        | Commit_log.Delta d ->
                            Ok (Delta.compose merged d, vmax))
                      (Ok (merged, vmax)) s.slice_entries)
                  (Ok (Delta.empty, 0))
                  ready
              in
              let* db =
                apply_delta_checked graph db ~kind:(Fmt.str "2pc %s" gid)
                  ~version:vmax merged
              in
              pass db true i
        | [] -> pass db progressed (i + 1)
    in
    pass db false 0
  in
  (* Close resolved-committed dangling prepares with a [Mark] so later
     opens need not re-consult the decision shard, and rotation on the
     decision shard cannot strand a decide a participant still needs. *)
  let* () =
    if not repair then Ok ()
    else
      let rec go i =
        if i >= count then Ok ()
        else
          let rec marks = function
            | [] -> Ok ()
            | gid :: rest ->
                let* () =
                  Journal.append_record journals.(i) (Journal.Mark gid)
                in
                marks rest
          in
          let* () = marks (List.rev needs_mark.(i)) in
          go (i + 1)
      in
      go 0
  in
  let versions = Array.map Commit_log.version logs in
  (* Version-vector cross-check: every shard must have reached at least
     the common base, and every decided gid must be applied by every
     participant whose journal still spans its slice (enforced above by
     the dense-version checks; a shard below base means a mismatched or
     rolled-back shard file). *)
  let* () =
    let rec go i =
      if i >= count then Ok ()
      else if versions.(i) < base then
        corrupt "shard store: shard %d is at v%d, below the store base v%d \
                 (mismatched shard file?)"
          i versions.(i) base
      else go (i + 1)
    in
    go 0
  in
  let global_version =
    base + Array.fold_left (fun acc v -> acc + (v - base)) 0 versions
  in
  let shard_reports =
    List.init count (fun i ->
        {
          shard = i;
          snapshot_version = snap_versions.(i);
          replayed = replayed.(i);
          version = versions.(i);
          torn_bytes = replays.(i).Journal.torn_bytes;
          committed_2pc = committed_2pc.(i);
          aborted_2pc = aborted_2pc.(i);
        })
  in
  let report = { shards = shard_reports; vector = Array.to_list versions } in
  let ws =
    {
      defs_ws with
      Workspace.db;
      log = Commit_log.of_version global_version;
    }
  in
  Log.info (fun m ->
      m "opened sharded store %s: %d shard(s), global v%d, epoch %d" root count
        global_version epoch);
  Ok { ws; plan; base; epoch; versions; logs; report }
