open Relational

let src = Logs.Src.create "penguin.recovery" ~doc:"crash recovery of stores"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let m_open_ns =
  M.histogram ~help:"open_store: snapshot load + replay + cross-check"
    "recovery.open_store_ns"

let m_persist_ns =
  M.histogram ~help:"persist: journal append (+ rotation)"
    "recovery.persist_ns"

let m_opens = M.counter ~help:"stores opened" "recovery.opens"

let m_replayed_entries =
  M.counter ~help:"journal entries replayed into opened stores"
    "recovery.replayed_entries"

type report = {
  snapshot_version : int;
  replayed : int;
  version : int;
  epoch : int;
  torn_bytes : int;
  repaired : bool;
  journal : bool;
}

let pp_report ppf r =
  if not r.journal then
    Fmt.pf ppf "snapshot v%d, no journal" r.snapshot_version
  else
    Fmt.pf ppf "snapshot v%d + %d replayed journal entr%s = v%d%s"
      r.snapshot_version r.replayed
      (if r.replayed = 1 then "y" else "ies")
      r.version
      (if r.torn_bytes > 0 then
         Fmt.str " (torn tail: %d byte(s) discarded%s)" r.torn_bytes
           (if r.repaired then ", repaired" else "")
       else "")

let apply_entry ?path ?record ws (e : Commit_log.entry) =
  (* Corruption during replay names the journal record it came from
     (when the caller knows which one) and the commit version it
     carried, so "this store is corrupt" arrives as "record N (vM) of
     this journal is corrupt". *)
  let corrupt fmt =
    Fmt.kstr
      (fun m ->
        match path with
        | Some path ->
            Error
              (Error.corrupt_record ~path ?record ~version:e.Commit_log.version
                 m)
        | None -> Error (Error.corrupt m))
      fmt
  in
  let* log =
    match Commit_log.append_entry ws.Workspace.log e with
    | Ok log -> Ok log
    | Error m -> corrupt "%s" m
  in
  match e.Commit_log.change with
  | Commit_log.Barrier _ -> Ok { ws with Workspace.log }
  | Commit_log.Delta d -> (
      let* db =
        match Database.apply_delta ws.Workspace.db d with
        | Ok db -> Ok db
        | Error err ->
            corrupt "recovery: replaying v%d (%s): %s" e.Commit_log.version
              e.Commit_log.kind
              (Database.error_to_string err)
      in
      (* Cross-check each replayed delta against the structural model of
         the state it produces: a journal that replays into an
         inconsistent database is mismatched or corrupt beyond what the
         checksums can see. *)
      match Structural.Integrity.check_delta ws.Workspace.graph db ~delta:d with
      | [] -> Ok { ws with Workspace.db; log }
      | v :: _ ->
          corrupt "recovery: replaying v%d (%s) breaks the structural model: %a"
            e.Commit_log.version e.Commit_log.kind
            Structural.Integrity.pp_violation v)

(* [repair] defaults to [false]: a "torn tail" seen by a plain reader
   may be another process's append in flight, and rewriting the journal
   from under that writer would discard a commit it is about to report
   durable. Repair happens on the write path ({!persist}), which runs
   under the store's exclusive lock in the CLI; pass [~repair:true] only
   when holding that lock (or when provably the sole process). *)
let open_store ?(io = Fsio.default) ?(repair = false) ?cache store =
  Obs.Trace.with_span "recovery.open_store" @@ fun () ->
  M.time m_open_ns @@ fun () ->
  M.Counter.incr m_opens;
  (* An attached cache is replay-warmed: the journal entries applied
     below land in the workspace's log as real deltas, so syncing the
     cache afterwards patches it forward from wherever it was — a cache
     warmed before a crash catches up incrementally instead of being
     rebuilt (it falls back to invalidation when its position predates
     the snapshot). *)
  let synced ws report =
    Option.iter (fun c -> Workspace.sync_cache ws c) cache;
    ws, report
  in
  let* content = io.Fsio.read store in
  let* content =
    match content with
    | Some c -> Ok c
    | None -> Error (Error.invalid (Fmt.str "no such store: %s" store))
  in
  let* ws = Result.map_error Error.corrupt (Store.load content) in
  let snapshot_version = Workspace.version ws in
  let jnl = Journal.create ~io (Journal.journal_path store) in
  let* r = Journal.replay jnl in
  match r with
  | None ->
      Ok
        (synced ws
           {
             snapshot_version;
             replayed = 0;
             version = snapshot_version;
             epoch = 0;
             torn_bytes = 0;
             repaired = false;
             journal = false;
           })
  | Some r ->
      let* repaired =
        if r.Journal.torn_bytes > 0 && repair then (
          Log.warn (fun m ->
              m "journal for %s has a torn tail (%d byte(s)); truncating" store
                r.Journal.torn_bytes);
          let* () = Journal.truncate_torn jnl ~clean_bytes:r.Journal.clean_bytes in
          Ok true)
        else Ok false
      in
      (* Entries at or below the snapshot's version are already folded
         into it (a rotate crash can leave such an overlap); replay the
         rest, whose versions must extend the snapshot densely. The walk
         goes record by record (not over the flattened entries) so an
         integrity failure can name the journal record it came from. *)
      let jpath = Journal.path jnl in
      let* ws, replayed =
        List.fold_left
          (fun acc (idx, record) ->
            let* ws, n = acc in
            match record with
            | Journal.Prepare _ | Journal.Decide _ | Journal.Mark _ ->
                Ok (ws, n)
            | Journal.Commit entries ->
                List.fold_left
                  (fun acc (e : Commit_log.entry) ->
                    let* ws, n = acc in
                    if e.Commit_log.version <= snapshot_version then Ok (ws, n)
                    else
                      let* ws = apply_entry ~path:jpath ~record:idx ws e in
                      Ok (ws, n + 1))
                  (Ok (ws, n)) entries)
          (Ok (ws, 0))
          (List.mapi (fun i (_off, rec_) -> i, rec_) r.Journal.framed)
      in
      let version = Workspace.version ws in
      M.Counter.add m_replayed_entries replayed;
      Obs.Trace.tag "replayed" (string_of_int replayed);
      if replayed > 0 then
        Log.info (fun m ->
            m "recovered %s: snapshot v%d + %d journal entr%s = v%d" store
              snapshot_version replayed
              (if replayed = 1 then "y" else "ies")
              version);
      Ok
        (synced ws
           {
             snapshot_version;
             replayed;
             version;
             epoch = r.Journal.epoch;
             torn_bytes = r.Journal.torn_bytes;
             repaired;
             journal = true;
           })

let snapshot ?(io = Fsio.default) ?epoch ~store ws =
  Journal.rotate ?epoch
    (Journal.create ~io (Journal.journal_path store))
    ~snapshot_path:store ~snapshot:(Store.save ws)
    ~base:(Workspace.version ws)

type persisted = {
  rotated : bool;
  rotate_error : Error.t option;
}

let persist_unguarded ?(io = Fsio.default) ?(sync = true)
    ?(rotate_threshold = 64) ?expect_epoch ~store ~since ws =
  Obs.Trace.with_span "recovery.persist" @@ fun () ->
  M.time m_persist_ns @@ fun () ->
  if since < Commit_log.truncated ws.Workspace.log then
    Error
      (Error.invalid
         (Fmt.str
            "persist: history since v%d is not held (log truncated at v%d)"
            since
            (Commit_log.truncated ws.Workspace.log)))
  else
    let entries =
      List.filter
        (fun (e : Commit_log.entry) -> e.Commit_log.version > since)
        (Commit_log.entries_since ws.Workspace.log since)
    in
    let jnl = Journal.create ~io (Journal.journal_path store) in
    let* existing = Journal.replay jnl in
    let* records, epoch =
      match existing with
      | Some r ->
          (* Epoch fencing: if a follower promoted since this handle was
             opened, the journal header carries a newer epoch, and this
             process is the deposed leader. Appending anyway would fork
             history — the promoted store has (or will) put different
             commits at these versions. Refuse, non-retryably: only a
             fresh open (which adopts the new epoch and state) may write
             again. *)
          let* () =
            match expect_epoch with
            | Some e when e <> r.Journal.epoch ->
                Error
                  (Error.invalid
                     (Fmt.str
                        "persist: fenced — store %s is at epoch %d but this \
                         handle was opened at epoch %d (a replica promoted); \
                         reopen to resume against the new leader state"
                        store r.Journal.epoch e))
            | _ -> Ok ()
          in
          (* The journal's tail version must still be the version this
             commit was prepared against: if another process slipped a
             commit in between our open_store and now (the store lock
             was not held, or not held wide enough), appending would
             journal two entries with the same version and wedge every
             later open. Refuse cleanly instead. *)
          let tail =
            List.fold_left
              (fun acc (e : Commit_log.entry) -> max acc e.Commit_log.version)
              r.Journal.base r.Journal.entries
          in
          if tail <> since then
            Error
              (Error.conflict
                 (Fmt.str
                    "persist: store %s advanced to v%d but this commit was \
                     prepared against v%d (concurrent commit?); reopen the \
                     store and retry"
                    store tail since))
          else
            let* () =
              (* Commit-time repair: we are the writer (under the store
                 lock), so a torn tail here is a real crash remnant, and
                 appending after it would put the new record where replay
                 never looks. *)
              if r.Journal.torn_bytes > 0 then (
                Log.warn (fun m ->
                    m "journal for %s has a torn tail (%d byte(s)); \
                       truncating before append"
                      store r.Journal.torn_bytes);
                Journal.truncate_torn jnl ~clean_bytes:r.Journal.clean_bytes)
              else Ok ()
            in
            Ok (r.Journal.records, r.Journal.epoch)
      | None ->
          (* First commit against a plain exported store: start the
             journal at the version the caller's open_store saw — the
             snapshot's. *)
          let epoch = Option.value expect_epoch ~default:0 in
          let* () = Journal.initialize ~epoch jnl ~base:since in
          Ok (0, epoch)
    in
    let* () = Journal.append jnl ~sync entries in
    (* The append's fsync is the durability point: from here the commit
       is permanent and must be reported as such. A rotation failure
       past this point is a warning, not a failed commit — treating it
       as failure invites the caller to re-apply updates the store
       already holds. The journal is intact, so a later commit simply
       retries the rotation. *)
    if records + 1 >= rotate_threshold then
      (* Rotation preserves the epoch: folding the journal into a
         snapshot is not a leadership change. *)
      match snapshot ~io ~epoch ~store ws with
      | Ok () -> Ok { rotated = true; rotate_error = None }
      | Error e -> Ok { rotated = false; rotate_error = Some e }
    else Ok { rotated = false; rotate_error = None }

(* The breaker wraps the whole durable path: K consecutive
   {!Error.breaker_fault} outcomes (non-transient I/O, corruption) trip
   it and later writes are shed with [Busy] — degraded read-only mode.
   [open_store] never passes through a breaker, so reads keep working
   while the store heals. *)
let persist ?io ?sync ?rotate_threshold ?breaker ?expect_epoch ~store ~since ws
    =
  let run () =
    persist_unguarded ?io ?sync ?rotate_threshold ?expect_epoch ~store ~since ws
  in
  match breaker with
  | None -> run ()
  | Some b -> Resilience.Breaker.protect b run

(* --- long-lived exclusive-writer appender ----------------------------- *)

module Appender = struct
  (* {!persist} re-replays the whole journal on every call to rediscover
     its tail version, record count and epoch — the right trade for a
     CLI process that commits once and exits, but quadratic for a server
     flushing hundreds of windows against one open journal. An appender
     does that validation once, then trusts its own cursor: it may only
     exist while the caller holds the store's exclusive lock
     ({!Fsio.with_lock}) for the appender's whole lifetime, which is
     what rules out the concurrent-writer races the per-call replay was
     detecting. *)

  type t = {
    io : Fsio.t;
    store : string;
    jnl : Journal.t;
    rotate_threshold : int;
    breaker : Resilience.Breaker.t option;
    epoch : int;
    mutable records : int;  (* journal records since the last rotation *)
    mutable tail : int;  (* newest version the journal holds *)
    mutable dirty : bool;  (* a failed append/rotate may have torn the tail *)
  }

  let m_appends =
    M.counter ~help:"incremental journal appends (no replay)"
      "recovery.appender_appends"

  let m_revalidations =
    M.counter ~help:"appender cursor rebuilds after a failed append"
      "recovery.appender_revalidations"

  (* One full replay: fence the epoch, truncate any torn tail (we are
     the exclusive writer, so a torn tail is a real crash/fault remnant),
     and report (records, epoch, tail). [base] seeds a journal-less
     store, exactly as {!persist} would on its first commit. *)
  let validate ?expect_epoch ~store ~jnl base =
    let* r = Journal.replay jnl in
    match r with
    | None ->
        let epoch = Option.value expect_epoch ~default:0 in
        let* () = Journal.initialize ~epoch jnl ~base in
        Ok (0, epoch, base)
    | Some r ->
        let* () =
          match expect_epoch with
          | Some e when e <> r.Journal.epoch ->
              Error
                (Error.invalid
                   (Fmt.str
                      "appender: fenced — store %s is at epoch %d but this \
                       handle was opened at epoch %d (a replica promoted); \
                       reopen to resume against the new leader state"
                      store r.Journal.epoch e))
          | _ -> Ok ()
        in
        let* () =
          if r.Journal.torn_bytes > 0 then (
            Log.warn (fun m ->
                m "journal for %s has a torn tail (%d byte(s)); truncating"
                  store r.Journal.torn_bytes);
            Journal.truncate_torn jnl ~clean_bytes:r.Journal.clean_bytes)
          else Ok ()
        in
        let tail =
          List.fold_left
            (fun acc (e : Commit_log.entry) -> max acc e.Commit_log.version)
            r.Journal.base r.Journal.entries
        in
        Ok (r.Journal.records, r.Journal.epoch, tail)

  let create ?(io = Fsio.default) ?(rotate_threshold = 64) ?breaker
      ?expect_epoch ~store ws =
    let jnl = Journal.create ~io (Journal.journal_path store) in
    let* records, epoch, tail =
      validate ?expect_epoch ~store ~jnl (Workspace.version ws)
    in
    if tail <> Workspace.version ws then
      Error
        (Error.conflict
           (Fmt.str
              "appender: journal for %s is at v%d but the workspace is at \
               v%d; reopen the store"
              store tail (Workspace.version ws)))
    else
      Ok { io; store; jnl; rotate_threshold; breaker; epoch; records; tail;
           dirty = false }

  let tail t = t.tail

  let append_unguarded t ~since ws =
    Obs.Trace.with_span "recovery.append" @@ fun () ->
    M.time m_persist_ns @@ fun () ->
    let* () =
      (* A failed append (or rotation) may have left bytes past the last
         clean record; appending after them would put the new record
         where replay never looks. Rebuild the cursor from disk first —
         the cost returns only after a fault, not per flush. *)
      if t.dirty then (
        M.Counter.incr m_revalidations;
        let* records, _epoch, tail =
          validate ~expect_epoch:t.epoch ~store:t.store ~jnl:t.jnl t.tail
        in
        t.records <- records;
        t.tail <- tail;
        t.dirty <- false;
        Ok ())
      else Ok ()
    in
    if since <> t.tail then
      Error
        (Error.conflict
           (Fmt.str
              "appender: store %s is at v%d but this flush was prepared \
               against v%d"
              t.store t.tail since))
    else if since < Commit_log.truncated ws.Workspace.log then
      Error
        (Error.invalid
           (Fmt.str
              "appender: history since v%d is not held (log truncated at v%d)"
              since
              (Commit_log.truncated ws.Workspace.log)))
    else
      let entries =
        List.filter
          (fun (e : Commit_log.entry) -> e.Commit_log.version > since)
          (Commit_log.entries_since ws.Workspace.log since)
      in
      match Journal.append t.jnl ~sync:true entries with
      | Error e ->
          t.dirty <- true;
          Error e
      | Ok () ->
          M.Counter.incr m_appends;
          t.records <- t.records + 1;
          t.tail <- Workspace.version ws;
          if t.records >= t.rotate_threshold then (
            (* Rotation preserves the epoch; a failure after the
               append's fsync is a warning (the commit is durable, the
               journal intact) — but it may have left the files mid-
               rotate, so rebuild the cursor before the next append. *)
            match snapshot ~io:t.io ~epoch:t.epoch ~store:t.store ws with
            | Ok () ->
                t.records <- 0;
                Ok { rotated = true; rotate_error = None }
            | Error e ->
                t.dirty <- true;
                Ok { rotated = false; rotate_error = Some e })
          else Ok { rotated = false; rotate_error = None }

  let append t ~since ws =
    let run () = append_unguarded t ~since ws in
    match t.breaker with
    | None -> run ()
    | Some b -> Resilience.Breaker.protect b run
end
