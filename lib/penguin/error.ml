type io_op = Read | Write | Sync | Rename | Remove | Lock

type t =
  | Conflict of string
  | Io of { op : io_op; path : string; transient : bool; detail : string }
  | Corrupt of string
  | Invalid of string
  | Busy of string
  | Deadline_exceeded of string

let conflict m = Conflict m
let corrupt m = Corrupt m
let invalid m = Invalid m
let busy m = Busy m
let deadline_exceeded m = Deadline_exceeded m

let io ~op ~path ?(transient = false) detail =
  Io { op; path; transient; detail }

let transient_errno = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBUSY | Unix.ENOLCK
  | Unix.ETIMEDOUT ->
      true
  | _ -> false

let of_unix ~op ~path ~fn ~arg e =
  let detail =
    if arg = "" then Fmt.str "%s: %s" fn (Unix.error_message e)
    else Fmt.str "%s %s: %s" fn arg (Unix.error_message e)
  in
  Io { op; path; transient = transient_errno e; detail }

let retryable = function
  | Conflict _ | Busy _ | Io { transient = true; _ } -> true
  | Io { transient = false; _ } | Corrupt _ | Invalid _
  | Deadline_exceeded _ ->
      false

let breaker_fault = function
  | Io { transient = false; _ } | Corrupt _ -> true
  | Io { transient = true; _ } | Conflict _ | Invalid _ | Busy _
  | Deadline_exceeded _ ->
      false

let kind = function
  | Conflict _ -> "conflict"
  | Io _ -> "io"
  | Corrupt _ -> "corrupt"
  | Invalid _ -> "invalid"
  | Busy _ -> "busy"
  | Deadline_exceeded _ -> "deadline"

let op_label = function
  | Read -> "read"
  | Write -> "write"
  | Sync -> "sync"
  | Rename -> "rename"
  | Remove -> "remove"
  | Lock -> "lock"

let with_context ctx = function
  | Conflict m -> Conflict (ctx ^ ": " ^ m)
  | Io r -> Io { r with detail = ctx ^ ": " ^ r.detail }
  | Corrupt m -> Corrupt (ctx ^ ": " ^ m)
  | Invalid m -> Invalid (ctx ^ ": " ^ m)
  | Busy m -> Busy (ctx ^ ": " ^ m)
  | Deadline_exceeded m -> Deadline_exceeded (ctx ^ ": " ^ m)

let to_string = function
  | Conflict m | Corrupt m | Invalid m | Busy m | Deadline_exceeded m -> m
  | Io { op; path; transient; detail } ->
      Fmt.str "%s %s: %s%s" (op_label op) path detail
        (if transient then " (transient)" else "")

let pp ppf e = Fmt.string ppf (to_string e)

let message = function
  | Conflict m | Corrupt m | Invalid m | Busy m | Deadline_exceeded m -> m
  | Io { detail; _ } -> detail

let to_json e =
  let base =
    [ "kind", Obs.Json.Str (kind e); "message", Obs.Json.Str (message e) ]
  in
  match e with
  | Io { op; path; transient; _ } ->
      Obs.Json.Obj
        (base
        @ [ "op", Obs.Json.Str (op_label op); "path", Obs.Json.Str path;
            "transient", Obs.Json.Bool transient ])
  | _ -> Obs.Json.Obj base
