type io_op = Read | Write | Sync | Rename | Remove | Lock

type t =
  | Conflict of string
  | Io of { op : io_op; path : string; transient : bool; detail : string }
  | Corrupt of {
      detail : string;
      path : string option;
      record : int option;
      version : int option;
    }
  | Invalid of string
  | Busy of string
  | Deadline_exceeded of string

let conflict m = Conflict m
let corrupt m = Corrupt { detail = m; path = None; record = None; version = None }

let corrupt_record ~path ?record ?version m =
  Corrupt { detail = m; path = Some path; record; version }
let invalid m = Invalid m
let busy m = Busy m
let deadline_exceeded m = Deadline_exceeded m

let io ~op ~path ?(transient = false) detail =
  Io { op; path; transient; detail }

let transient_errno = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EBUSY | Unix.ENOLCK
  | Unix.ETIMEDOUT ->
      true
  | _ -> false

let of_unix ~op ~path ~fn ~arg e =
  let detail =
    if arg = "" then Fmt.str "%s: %s" fn (Unix.error_message e)
    else Fmt.str "%s %s: %s" fn arg (Unix.error_message e)
  in
  Io { op; path; transient = transient_errno e; detail }

(* Where inside a corrupt store the failure was localized, rendered as
   a human-readable suffix: " (record 3, v17 of db.journal)". Empty when
   the error carries no location. *)
let corrupt_location ~path ~record ~version =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Fmt.str "record %d") record;
        Option.map (Fmt.str "v%d") version;
        Option.map (Fmt.str "of %s") path;
      ]
  in
  match parts with
  | [] -> ""
  | parts -> Fmt.str " (%s)" (String.concat ", " parts)

let retryable = function
  | Conflict _ | Busy _ | Io { transient = true; _ } -> true
  | Io { transient = false; _ } | Corrupt _ | Invalid _
  | Deadline_exceeded _ ->
      false

let breaker_fault = function
  | Io { transient = false; _ } | Corrupt _ -> true
  | Io { transient = true; _ } | Conflict _ | Invalid _ | Busy _
  | Deadline_exceeded _ ->
      false

let kind = function
  | Conflict _ -> "conflict"
  | Io _ -> "io"
  | Corrupt _ -> "corrupt"
  | Invalid _ -> "invalid"
  | Busy _ -> "busy"
  | Deadline_exceeded _ -> "deadline"

let op_label = function
  | Read -> "read"
  | Write -> "write"
  | Sync -> "sync"
  | Rename -> "rename"
  | Remove -> "remove"
  | Lock -> "lock"

let with_context ctx = function
  | Conflict m -> Conflict (ctx ^ ": " ^ m)
  | Io r -> Io { r with detail = ctx ^ ": " ^ r.detail }
  | Corrupt r -> Corrupt { r with detail = ctx ^ ": " ^ r.detail }
  | Invalid m -> Invalid (ctx ^ ": " ^ m)
  | Busy m -> Busy (ctx ^ ": " ^ m)
  | Deadline_exceeded m -> Deadline_exceeded (ctx ^ ": " ^ m)

let to_string = function
  | Conflict m | Invalid m | Busy m | Deadline_exceeded m -> m
  | Corrupt { detail; path; record; version } ->
      detail ^ corrupt_location ~path ~record ~version
  | Io { op; path; transient; detail } ->
      Fmt.str "%s %s: %s%s" (op_label op) path detail
        (if transient then " (transient)" else "")

let pp ppf e = Fmt.string ppf (to_string e)

let message = function
  | Conflict m | Invalid m | Busy m | Deadline_exceeded m -> m
  | Corrupt { detail; _ } -> detail
  | Io { detail; _ } -> detail

let to_json e =
  let base =
    [ "kind", Obs.Json.Str (kind e); "message", Obs.Json.Str (message e) ]
  in
  match e with
  | Io { op; path; transient; _ } ->
      Obs.Json.Obj
        (base
        @ [ "op", Obs.Json.Str (op_label op); "path", Obs.Json.Str path;
            "transient", Obs.Json.Bool transient ])
  | Corrupt { path; record; version; _ } ->
      (* Satellite of the replication PR: a corrupt store names the
         record that failed its cross-check, machine-readably. *)
      let opt name conv v =
        match v with None -> [] | Some v -> [ name, conv v ]
      in
      Obs.Json.Obj
        (base
        @ opt "path" (fun p -> Obs.Json.Str p) path
        @ opt "record" (fun i -> Obs.Json.Num (float_of_int i)) record
        @ opt "version" (fun v -> Obs.Json.Num (float_of_int v)) version)
  | _ -> Obs.Json.Obj base
