(** The sharded serving engine: one logical workspace partitioned by
    dependency island, with per-shard commit lanes on OCaml 5 domains
    and a two-phase coordinator for the commits that cross shards
    (DESIGN.md §5.7).

    {!Structural.Partition} colocates every relation bound by an
    ownership or subset connection, so the structural-integrity
    footprint of an update that stays off the {e risky} relations (the
    endpoints of cross-shard reference connections) is contained in one
    shard. Such updates validate and commit entirely on their shard's
    lane — fully in parallel across shards, serialized within one.
    Everything else (a delta spanning shards, or touching a risky
    relation whose integrity check can read other shards) {e bounces} to
    the coordinator, which quiesces the lanes, validates against the
    settled state, and — when durable — runs the two-phase journal
    protocol of {!Shard_store} so recovery never observes half of a
    cross-shard commit.

    The engine owns a single committed {!Relational.Database.t} value
    in an [Atomic.t]; publication (apply the winning delta, bump the
    shard's version, extend the global feed) is a short critical
    section under one mutex. With a 1-shard plan every commit is
    single-shard and the pipeline is exactly the {!Workspace.update}
    pipeline. The object catalog is fixed at creation: define objects
    and choose translators on the workspace {e before} sharding it. *)

type t

val create :
  ?domains:int -> ?max_shards:int -> Workspace.t -> t
(** In-memory sharded engine over the workspace's current state.
    [domains] (default: one per shard) sizes the lane pool; shards are
    pinned to lanes round-robin. *)

val open_store :
  ?io:Fsio.t -> ?domains:int -> root:string -> unit -> (t, Error.t) result
(** Durable engine over a {!Shard_store}: a repair open (torn tails
    truncated, dangling two-phase commits resolved and closed), then
    every commit writes ahead to its shard's journal under that shard's
    file lock before publishing. *)

val plan : t -> Structural.Partition.plan
val shard_count : t -> int
val domains : t -> int

val version : t -> int
(** Global version: base + total commits across shards (with one shard,
    the shard's version). *)

val versions : t -> int array
(** Per-shard version vector (a copy). *)

val wedged : t -> bool
(** True after an ambiguous durability failure (e.g. the two-phase
    decide record may or may not have reached disk). A wedged engine
    rejects every further update; re-open the store to resolve. *)

val update :
  ?validation:Vo_core.Global_validation.mode ->
  t -> string -> Vo_core.Request.t -> Vo_core.Engine.outcome
(** The four-step pipeline against the named object, routed by shard.
    Safe to call from any number of client threads/domains
    concurrently; single-shard non-risky updates run on their shard's
    lane in parallel, cross-shard or risky ones serialize through the
    coordinator on the caller's thread. On commit the outcome carries
    the new {e global} database. *)

val to_workspace : t -> Workspace.t
(** A workspace snapshot of the committed state: the global database,
    the object catalog, and the global feed log (total commit order) —
    what {!Workspace.sync_cache} and read-side queries consume. *)

val persist : t -> (unit, Error.t) result
(** Durable engines: quiesce all lanes and rotate every shard's journal
    into a fresh snapshot at its current version. In-memory engines:
    [Error Invalid]. *)

type shard_info = {
  shard : int;
  lane : int;
  version : int;
  members : string list;
  queue_depth : int;  (** tasks waiting on the shard's lane *)
  commits : int;  (** single-shard commits published by this shard *)
  cross_commits : int;  (** cross-shard commits this shard took part in *)
}

val shards : t -> shard_info list

val shutdown : t -> unit
(** Drain the lanes and join the domains. Idempotent; the committed
    state remains readable via {!to_workspace}. *)
