(** The typed error taxonomy of the serving path.

    Every failure the durability and serving layers ({!Fsio}, {!Journal},
    {!Recovery}, {!Session}, the CLI) can report is one of six kinds,
    each with a fixed answer to the question a caller actually has:
    {e may I retry this?} The paper's contract is that an update either
    translates into valid relational updates or is rejected cleanly;
    this module extends "rejected cleanly" to the failure path — a
    fault is classified once, where it is raised, and every layer above
    routes on the class instead of grepping message strings.

    - {!Conflict}: optimistic concurrency lost a race (a concurrent
      commit overlaps the session's footprint, or the store advanced
      under a prepared commit). Retryable — reopen and rebase.
    - [Io]: a filesystem primitive failed. [transient] says whether the
      errno class is worth retrying (EINTR/EAGAIN/EBUSY...) or not
      (ENOSPC, EACCES, EROFS...).
    - {!Corrupt}: on-disk state fails validation — bad checksums, an
      unparsable header, a replay that breaks the structural model.
      Never retryable; requires repair or operator attention.
    - {!Invalid}: the caller's request is wrong (unknown store or
      fixture, translation rejection, stale session document).
      Retrying the same request cannot succeed.
    - {!Busy}: the system sheds the request — admission control is at
      capacity, or the circuit breaker holds the store in degraded
      read-only mode. Retryable later.
    - {!Deadline_exceeded}: the caller's time budget ran out while
      retrying or waiting on a lock. Not retryable under the same
      deadline (the budget is spent). *)

(** Which {!Fsio} primitive an I/O error came from. *)
type io_op = Read | Write | Sync | Rename | Remove | Lock

type t =
  | Conflict of string
  | Io of { op : io_op; path : string; transient : bool; detail : string }
  | Corrupt of {
      detail : string;
      path : string option;  (** the corrupt file, when known *)
      record : int option;
          (** 0-based index of the journal record that failed its
              cross-check, when the failure is localized to one *)
      version : int option;
          (** the commit version that record carried, when parsed far
              enough to know *)
    }
  | Invalid of string
  | Busy of string
  | Deadline_exceeded of string

(** {1 Constructors} *)

val conflict : string -> t

val corrupt : string -> t
(** A corruption with no localized record ([path]/[record]/[version]
    all [None]). *)

val corrupt_record : path:string -> ?record:int -> ?version:int -> string -> t
(** A corruption localized to a specific file, and — when the failure
    is attributable to one record — the record's index in replay order
    and the commit version it carried. {!to_json} surfaces all three,
    so an operator (or a replica deciding what to quarantine) learns
    {e which} record broke, not just which file. *)

val invalid : string -> t
val busy : string -> t
val deadline_exceeded : string -> t

val io : op:io_op -> path:string -> ?transient:bool -> string -> t
(** [transient] defaults to [false]. *)

val of_unix : op:io_op -> path:string -> fn:string -> arg:string ->
  Unix.error -> t
(** Classify a [Unix.Unix_error]: [EINTR], [EAGAIN], [EWOULDBLOCK],
    [EBUSY], [ENOLCK] and [ETIMEDOUT] are transient; everything else
    (no space, permissions, read-only filesystem...) is not. [fn] and
    [arg] are the syscall name and argument the exception carried. *)

val transient_errno : Unix.error -> bool

(** {1 Classification} *)

val retryable : t -> bool
(** May an identical attempt succeed? [Conflict], [Busy] and transient
    [Io] — yes; [Corrupt], [Invalid], [Deadline_exceeded] and
    non-transient [Io] — no. {!Resilience.retry} routes on this. *)

val breaker_fault : t -> bool
(** Does this failure count toward tripping the circuit breaker into
    degraded read-only mode? Only durability failures that retrying
    cannot fix: non-transient [Io] and [Corrupt]. Transient faults,
    lost races and caller mistakes never trip the breaker. *)

val kind : t -> string
(** Stable lowercase label of the variant ("conflict", "io", "corrupt",
    "invalid", "busy", "deadline") — the value used in metric names and
    trace tags. *)

val op_label : io_op -> string

(** {1 Rendering} *)

val with_context : string -> t -> t
(** Prefix the human-readable message with ["context: "], preserving
    the classification (for [Io], the prefix lands on [detail]). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val to_json : t -> Obs.Json.t
(** [{"kind": ..., "message": ...}] plus, for [Io], ["op"], ["path"]
    and ["transient"]; for [Corrupt], whichever of ["path"], ["record"]
    and ["version"] the error localized. *)
