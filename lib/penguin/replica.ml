let src = Logs.Src.create "penguin.replica" ~doc:"journal-shipping follower"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let c_polls = M.counter ~help:"replica poll rounds" "replica.polls"

let c_applied =
  M.counter ~help:"journal records ingested from the leader"
    "replica.applied_records"

let c_refetches =
  M.counter ~help:"suspect frames re-fetched instead of applied"
    "replica.refetches"

let c_promotions =
  M.counter ~help:"followers promoted to writable leaders"
    "replica.promotions"

let c_resyncs =
  M.counter ~help:"full snapshot resyncs (follower fell behind a rotation)"
    "replica.resyncs"

let c_rotations =
  M.counter ~help:"leader journal rotations followed in place"
    "replica.rotations_followed"

let c_quarantines =
  M.counter ~help:"corrupt shipped records quarantined (degraded, not wedged)"
    "replica.quarantines"

let g_lag =
  M.gauge ~help:"complete leader records visible but not yet applied"
    "replica.lag_records"

let g_epoch = M.gauge ~help:"leader epoch this replica follows" "replica.epoch"

let h_poll_ns = M.histogram ~help:"one tail/apply poll round" "replica.poll_ns"

let h_promote_ns =
  M.histogram ~help:"promotion: repair + epoch-bumping rotation"
    "replica.promote_ns"

(* --- feeds ------------------------------------------------------------- *)

type feed = {
  feed_label : string;
  fetch_snapshot : unit -> (string, Error.t) result;
  fetch_journal : off:int -> (string, Error.t) result;
  fetch_head : unit -> (string, Error.t) result;
}

let file_feed ?(io = Fsio.default) source =
  let jpath = Journal.journal_path source in
  {
    feed_label = source;
    fetch_snapshot =
      (fun () ->
        let* c = io.Fsio.read source in
        match c with
        | Some c -> Ok c
        | None -> Error (Error.invalid (Fmt.str "no such store: %s" source)));
    fetch_journal =
      (fun ~off ->
        let* c = io.Fsio.read_from ~path:jpath ~off ~len:None in
        (* A missing journal is "no news yet", not an error: the leader
           journals lazily on its first durable commit. *)
        Ok (Option.value c ~default:""));
    fetch_head =
      (fun () ->
        let* c = io.Fsio.read_from ~path:jpath ~off:0 ~len:(Some 1024) in
        Ok (Option.value c ~default:""));
  }

(* --- the follower ------------------------------------------------------ *)

type status = Following | Degraded of string | Promoted

let status_label = function
  | Following -> "following"
  | Degraded _ -> "degraded"
  | Promoted -> "promoted"

type t = {
  io : Fsio.t;
  feed : feed;
  target : string;
  jnl : Journal.t;  (** the replica's own journal, at [target ^ ".journal"] *)
  refetch_limit : int;
  cache : Viewobject.Cache.t;
  mutable ws : Workspace.t;
  mutable base : int;  (** leader journal base currently followed *)
  mutable epoch : int;  (** leader epoch currently followed *)
  mutable leader_off : int;  (** leader journal bytes consumed *)
  mutable status : status;
  mutable suspect : (int * int) option;
      (** a CRC-valid frame at this leader offset failed to parse;
          [(offset, refetch attempts so far)] *)
}

type progress = {
  records : int;  (** leader journal records ingested this poll *)
  applied : int;  (** commit-log entries applied to the workspace *)
  rotated : bool;  (** followed a leader rotation barrier in place *)
  resynced : bool;  (** fell back to a full snapshot resync *)
  lag_records : int;  (** complete leader records seen but not applied *)
}

let no_progress = {
  records = 0;
  applied = 0;
  rotated = false;
  resynced = false;
  lag_records = 0;
}

let workspace t = t.ws
let cache t = t.cache
let position t = Workspace.version t.ws
let epoch t = t.epoch
let status t = t.status
let leader_offset t = t.leader_off

let frame_end off payload = off + 8 + String.length payload

let set_epoch_gauge e = M.Gauge.set g_epoch (float_of_int e)

(* Apply one shipped record to the in-memory workspace. Validation
   happens here, *before* the raw frame is re-journaled: a record the
   structural model refuses never lands in the replica's own journal,
   so its store stays openable. Entries at or below the replica's
   version are already held (rotation overlap) and are skipped. *)
let apply_record t record =
  match record with
  | Journal.Commit entries ->
      let vers = Workspace.version t.ws in
      let fresh =
        List.filter
          (fun (e : Commit_log.entry) -> e.Commit_log.version > vers)
          entries
      in
      let* ws =
        List.fold_left
          (fun acc e ->
            let* ws = acc in
            Recovery.apply_entry ~path:(Journal.path t.jnl) ws e)
          (Ok t.ws) fresh
      in
      Ok (ws, List.length fresh)
  | Journal.Prepare _ | Journal.Decide _ | Journal.Mark _ ->
      (* Single-store leaders never write these; a shipped one is
         preserved byte-for-byte but applies nothing here. *)
      Ok (t.ws, 0)

(* Ingest one verified (CRC-valid, parseable) leader frame: validate in
   memory, append the identical frame bytes to the replica's own
   journal, then publish the new workspace state. [sync] is deferred to
   once per poll — losing the unsynced tail in a crash only rewinds the
   replica to an earlier leader offset, which the next locate redoes. *)
let ingest t ~off ~payload record =
  let* ws, applied = apply_record t record in
  let* () =
    t.io.Fsio.write ~path:(Journal.path t.jnl) ~append:true
      (Journal.frame payload)
  in
  t.ws <- ws;
  t.leader_off <- frame_end off payload;
  M.Counter.incr c_applied;
  Ok applied

(* Walk the leader journal from the top and position [leader_off] just
   past every record the replica already holds — the once-per-alignment
   full read that lets every later poll read only new bytes. *)
let locate t =
  let* chunk = t.feed.fetch_journal ~off:0 in
  let frames, _clean, _torn = Journal.decode_frames chunk in
  match frames with
  | [] ->
      (* No leader journal yet: poll from the top until one appears. *)
      t.leader_off <- 0;
      Ok ()
  | (hoff, header) :: records ->
      let* base, epoch =
        Result.map_error
          (fun m -> Error.corrupt_record ~path:t.feed.feed_label m)
          (Journal.header_of_payload header)
      in
      (* Epochs only move forward. A feed advertising an older epoch
         than this store has already seen is a deposed leader —
         following it would fork the replicated history. *)
      let* () =
        if epoch < t.epoch then
          Error
            (Error.invalid
               (Fmt.str
                  "replica: feed %s is at epoch %d but this store has seen \
                   epoch %d — refusing to follow a deposed leader"
                  t.feed.feed_label epoch t.epoch))
        else Ok ()
      in
      t.base <- base;
      t.epoch <- epoch;
      set_epoch_gauge epoch;
      let vers = Workspace.version t.ws in
      let rec skip off = function
        | [] -> off
        | (roff, payload) :: rest -> (
            match Journal.record_of_payload payload with
            | Error _ -> roff (* leave suspect frames to the poll loop *)
            | Ok (Journal.Commit entries) ->
                let held =
                  List.for_all
                    (fun (e : Commit_log.entry) ->
                      e.Commit_log.version <= vers)
                    entries
                in
                if held then skip (frame_end roff payload) rest else roff
            | Ok (Journal.Prepare _ | Journal.Decide _ | Journal.Mark _) ->
                skip (frame_end roff payload) rest)
      in
      t.leader_off <- skip (frame_end hoff header) records;
      Ok ()

(* Full resync: refetch the leader snapshot, restart the replica's own
   store from it, and re-locate. The attached cache survives the object
   — sync_cache sees the truncated history and invalidates, so entries
   rebuild lazily rather than serving stale reads. *)
let resync t =
  M.Counter.incr c_resyncs;
  let* snapshot = t.feed.fetch_snapshot () in
  let* ws0 = Result.map_error Error.corrupt (Store.load snapshot) in
  let* head = t.feed.fetch_head () in
  let epoch =
    match Journal.decode_frames head with
    | (_, h) :: _, _, _ -> (
        match Journal.header_of_payload h with Ok (_, e) -> e | Error _ -> 0)
    | [], _, _ -> 0
  in
  let* () = Fsio.atomic_write t.io ~path:t.target snapshot in
  let* () =
    Journal.initialize ~epoch t.jnl ~base:(Workspace.version ws0)
  in
  let* ws, _report = Recovery.open_store ~io:t.io ~repair:true t.target in
  t.ws <- ws;
  t.epoch <- epoch;
  t.suspect <- None;
  set_epoch_gauge epoch;
  Workspace.sync_cache t.ws t.cache;
  locate t

(* The leader's header no longer matches what we follow: either the
   journal rotated (base advanced; our state usually covers it — fold
   our own journal and continue from the new base) or we fell behind a
   rotation entirely (full resync). An epoch change rides the same
   path: adopting the new header epoch is how a follower starts
   following a freshly promoted leader. *)
let follow_header_change t ~base ~epoch =
  if epoch < t.epoch then
    (* Same forward-only rule as {!locate}: never re-follow a deposed
       leader, and never stamp a regressed epoch into our own files. *)
    Error
      (Error.invalid
         (Fmt.str
            "replica: feed %s rolled back to epoch %d below epoch %d — \
             refusing to follow a deposed leader"
            t.feed.feed_label epoch t.epoch))
  else if Workspace.version t.ws >= base then begin
    (* Rotation barrier: our own journal's entries are all ≤ our
       version, so fold them into our snapshot and re-anchor. No gap
       (nothing above our version was dropped by the leader's rotate)
       and no replay (locate skips records we already hold). *)
    let* () = Recovery.snapshot ~io:t.io ~epoch ~store:t.target t.ws in
    t.base <- base;
    t.epoch <- epoch;
    t.suspect <- None;
    set_epoch_gauge epoch;
    M.Counter.incr c_rotations;
    let* () = locate t in
    Ok `Rotated
  end
  else
    let* () = resync t in
    Ok `Resynced

let quarantine t ~off reason =
  match t.suspect with
  | Some (o, attempts) when o = off ->
      if attempts + 1 >= t.refetch_limit then begin
        if t.status = Following then begin
          M.Counter.incr c_quarantines;
          Log.warn (fun m ->
              m "replica of %s: quarantining corrupt record at leader byte \
                 %d after %d refetches: %s"
                t.feed.feed_label off (attempts + 1) reason);
          t.status <-
            Degraded
              (Fmt.str "corrupt leader record at byte %d: %s" off reason)
        end
      end
      else begin
        M.Counter.incr c_refetches;
        t.suspect <- Some (o, attempts + 1)
      end
  | _ ->
      M.Counter.incr c_refetches;
      t.suspect <- Some (off, 1)

let poll t =
  if t.status = Promoted then
    Error (Error.invalid "replica: promoted; serve writes instead of polling")
  else begin
    M.Counter.incr c_polls;
    M.time h_poll_ns @@ fun () ->
    let* chunk = t.feed.fetch_journal ~off:t.leader_off in
    let frames, _clean, _torn =
      Journal.decode_frames ~off0:t.leader_off chunk
    in
    let rec consume acc = function
      | [] -> Ok (acc, [])
      | (off, payload) :: rest ->
          if off = 0 then (
            (* The header frame only reaches a poll when the replica is
               waiting for a leader journal to appear (leader_off 0). *)
            match Journal.header_of_payload payload with
            | Error m ->
                quarantine t ~off m;
                Ok (acc, rest)
            | Ok (base, epoch) ->
                t.base <- base;
                t.epoch <- epoch;
                set_epoch_gauge epoch;
                t.leader_off <- frame_end off payload;
                consume acc rest)
          else (
            match Journal.record_of_payload payload with
            | Error m ->
                (* CRC-valid but unparseable: refetch before trusting
                   our own read of it; after [refetch_limit] identical
                   failures, quarantine and keep serving. *)
                quarantine t ~off m;
                Ok (acc, rest)
            | Ok record -> (
                match ingest t ~off ~payload record with
                | Ok applied ->
                    if t.suspect <> None then t.suspect <- None;
                    if t.status <> Following then t.status <- Following;
                    consume
                      { acc with
                        records = acc.records + 1;
                        applied = acc.applied + applied;
                      }
                      rest
                | Error e ->
                    (* A shipped record the structural model refuses is
                       corruption the checksum cannot see: same
                       quarantine discipline. *)
                    quarantine t ~off (Error.to_string e);
                    Ok (acc, rest)))
    in
    let* acc, remaining = consume no_progress frames in
    let* acc =
      if acc.records > 0 then begin
        (* One durability point per poll for everything ingested. *)
        let* () = t.io.Fsio.sync (Journal.path t.jnl) in
        Workspace.sync_cache t.ws t.cache;
        Ok acc
      end
      else begin
        (* No progress: probe the header for a rotation or a new
           leader's epoch — the 1 KB read that keeps idle polls from
           re-reading the journal. *)
        let* head = t.feed.fetch_head () in
        match Journal.decode_frames head with
        | (_, h) :: _, _, _ -> (
            match Journal.header_of_payload h with
            | Ok (base, epoch) when base <> t.base || epoch <> t.epoch ->
                let* outcome = follow_header_change t ~base ~epoch in
                Ok
                  { acc with
                    rotated = outcome = `Rotated;
                    resynced = outcome = `Resynced;
                  }
            | Ok _ | Error _ -> Ok acc)
        | [], _, _ -> Ok acc
      end
    in
    let lag = List.length remaining in
    M.Gauge.set g_lag (float_of_int lag);
    Ok { acc with lag_records = lag }
  end

let rec poll_until_idle ?(max_rounds = 1000) t =
  let* p = poll t in
  if (p.records > 0 || p.rotated || p.resynced) && max_rounds > 1 then
    let* rest = poll_until_idle ~max_rounds:(max_rounds - 1) t in
    Ok
      {
        records = p.records + rest.records;
        applied = p.applied + rest.applied;
        rotated = p.rotated || rest.rotated;
        resynced = p.resynced || rest.resynced;
        lag_records = rest.lag_records;
      }
  else Ok p

let create ?(io = Fsio.default) ?cache_mode ?(refetch_limit = 3) ~feed ~target
    () =
  let jnl = Journal.create ~io (Journal.journal_path target) in
  let* existing = io.Fsio.read target in
  let* ws, own_epoch =
    match existing with
    | Some _ ->
        (* Resume a previous follower's files: its own snapshot ⊕
           journal is a valid store, opened exactly like a leader's. *)
        let* ws, report = Recovery.open_store ~io ~repair:true target in
        Ok (ws, report.Recovery.epoch)
    | None ->
        let* snapshot = feed.fetch_snapshot () in
        let* ws0 = Result.map_error Error.corrupt (Store.load snapshot) in
        let* () = Fsio.atomic_write io ~path:target snapshot in
        let* () = Journal.initialize jnl ~base:(Workspace.version ws0) in
        let* ws, report = Recovery.open_store ~io ~repair:true target in
        Ok (ws, report.Recovery.epoch)
  in
  let cache = Workspace.attach_cache ?mode:cache_mode ws in
  let t =
    {
      io;
      feed;
      target;
      jnl;
      refetch_limit = max 1 refetch_limit;
      cache;
      ws;
      base = Workspace.version ws;
      epoch = own_epoch;
      leader_off = 0;
      status = Following;
      suspect = None;
    }
  in
  let* () = locate t in
  Ok t

(* --- reads at the replication position -------------------------------- *)

let instances t name = Viewobject.Cache.instances t.cache name
let oql t name condition = Viewobject.Cache.oql t.cache name condition

(* --- promotion --------------------------------------------------------- *)

(* Promote whatever store lives at [store] from its last durable
   record: repair the torn tail under the store lock, then rotate into
   a fresh snapshot whose journal header carries the next epoch. After
   the rotate, any deposed leader still holding a handle opened under
   the old epoch is fenced: its persist sees the newer header epoch and
   refuses. Returns the writable workspace and the new epoch. *)
let promote_store ?(io = Fsio.default) store =
  M.time h_promote_ns @@ fun () ->
  Fsio.with_lock store @@ fun () ->
  let* ws, report = Recovery.open_store ~io ~repair:true store in
  let epoch = report.Recovery.epoch + 1 in
  let* () = Recovery.snapshot ~io ~epoch ~store ws in
  M.Counter.incr c_promotions;
  Log.info (fun m ->
      m "promoted %s at v%d, epoch %d" store (Workspace.version ws) epoch);
  Ok (ws, epoch)

let promote t =
  let* ws, epoch = promote_store ~io:t.io t.target in
  t.ws <- ws;
  t.epoch <- epoch;
  t.status <- Promoted;
  set_epoch_gauge epoch;
  Workspace.sync_cache t.ws t.cache;
  Ok (ws, epoch)

(* --- sharded stores ---------------------------------------------------- *)

(* A sharded follower is one independent tailer per shard journal over
   a file feed, plus the consistent-cut open (Shard_store
   [~follower:true]) for reads and promotion. Shards ship unevenly;
   the cut is what keeps a mid-2PC kill from ever being observed
   half-applied. *)
module Sharded = struct
  type tailer = {
    src_jnl : string;
    dst_jnl : string;
    mutable off : int;  (** source journal bytes consumed *)
    mutable shard_base : int;  (** source shard journal base followed *)
  }

  type t = {
    io : Fsio.t;
    source : string;
    target : string;
    count : int;
    tailers : tailer array;
    mutable status : status;
  }

  let status t = t.status

  let read_required io path =
    let* c = io.Fsio.read path in
    match c with
    | Some c -> Ok c
    | None -> Error (Error.invalid (Fmt.str "no such file: %s" path))

  let copy io ~src ~dst =
    let* c = read_required io src in
    Fsio.atomic_write io ~path:dst c

  (* (Re)anchor one shard: copy its snapshot and start its journal from
     the source's current header. Old records in the target journal are
     superseded by the fresh snapshot (atomic_write replaces the file). *)
  let anchor_shard t i =
    let tl = t.tailers.(i) in
    let* () =
      copy t.io
        ~src:(Shard_store.shard_path ~root:t.source i)
        ~dst:(Shard_store.shard_path ~root:t.target i)
    in
    let* head =
      t.io.Fsio.read_from ~path:tl.src_jnl ~off:0 ~len:(Some 1024)
    in
    match Option.map Journal.decode_frames head with
    | Some ((hoff, header) :: _, _, _) ->
        let* base, _epoch =
          Result.map_error
            (fun m -> Error.corrupt_record ~path:tl.src_jnl m)
            (Journal.header_of_payload header)
        in
        let* () =
          Fsio.atomic_write t.io ~path:tl.dst_jnl (Journal.frame header)
        in
        tl.off <- hoff + 8 + String.length header;
        tl.shard_base <- base;
        Ok ()
    | Some ([], _, _) | None ->
        Error
          (Error.corrupt_record ~path:tl.src_jnl
             "shard journal has no readable header")

  let create ?(io = Fsio.default) ~source ~target () =
    let* count, _base, _epoch, _assignment =
      Shard_store.read_manifest ~io ~root:source ()
    in
    let* () =
      if Sys.file_exists target then Ok ()
      else
        try
          Unix.mkdir target 0o755;
          Ok ()
        with
        | Unix.Unix_error (e, fn, arg) ->
            Error (Error.of_unix ~op:Error.Write ~path:target ~fn ~arg e)
    in
    let* () =
      copy io
        ~src:(Shard_store.defs_path ~root:source)
        ~dst:(Shard_store.defs_path ~root:target)
    in
    let* () =
      copy io
        ~src:(Shard_store.manifest_path ~root:source)
        ~dst:(Shard_store.manifest_path ~root:target)
    in
    let tailers =
      Array.init count (fun i ->
          {
            src_jnl =
              Journal.journal_path (Shard_store.shard_path ~root:source i);
            dst_jnl =
              Journal.journal_path (Shard_store.shard_path ~root:target i);
            off = 0;
            shard_base = 0;
          })
    in
    let t = { io; source; target; count; tailers; status = Following } in
    let rec anchor i =
      if i >= count then Ok ()
      else
        let* () = anchor_shard t i in
        anchor (i + 1)
    in
    let* () = anchor 0 in
    Ok t

  (* Tail one shard: fetch new bytes, verify frames, append them
     byte-identically, detect rotation on idle. Returns records
     ingested. *)
  let poll_shard t i =
    let tl = t.tailers.(i) in
    let* chunk = t.io.Fsio.read_from ~path:tl.src_jnl ~off:tl.off ~len:None in
    let chunk = Option.value chunk ~default:"" in
    let frames, _clean, _torn = Journal.decode_frames ~off0:tl.off chunk in
    let rec consume n buf last = function
      | [] -> n, buf, last
      | (off, payload) :: rest -> (
          match Journal.record_of_payload payload with
          | Error _ -> n, buf, last (* suspect: stop, refetch next poll *)
          | Ok _ ->
              consume (n + 1)
                (buf ^ Journal.frame payload)
                (off + 8 + String.length payload)
                rest)
    in
    let n, buf, last = consume 0 "" tl.off frames in
    if n > 0 then begin
      let* () = t.io.Fsio.write ~path:tl.dst_jnl ~append:true buf in
      let* () = t.io.Fsio.sync tl.dst_jnl in
      tl.off <- last;
      M.Counter.add c_applied n;
      Ok n
    end
    else begin
      (* Idle: probe for a rotation of this shard's journal. *)
      let* head = t.io.Fsio.read_from ~path:tl.src_jnl ~off:0 ~len:(Some 1024) in
      match Option.map Journal.decode_frames head with
      | Some ((_, header) :: _, _, _) -> (
          match Journal.header_of_payload header with
          | Ok (base, _) when base <> tl.shard_base ->
              M.Counter.incr c_rotations;
              let* () = anchor_shard t i in
              Ok 0
          | Ok _ | Error _ -> Ok 0)
      | Some ([], _, _) | None -> Ok 0
    end

  let poll t =
    if t.status = Promoted then
      Error (Error.invalid "replica: promoted; serve writes instead of polling")
    else begin
      M.Counter.incr c_polls;
      M.time h_poll_ns @@ fun () ->
      let rec go i n =
        if i >= t.count then Ok n
        else
          let* k = poll_shard t i in
          go (i + 1) (n + k)
      in
      go 0 0
    end

  (* Read-only view at the consistent cut of what has shipped so far. *)
  let open_follower t =
    Shard_store.open_store ~io:t.io ~follower:true ~root:t.target ()

  let promote_root ?(io = Fsio.default) root =
    M.time h_promote_ns @@ fun () ->
    let* count, _base, _epoch, _assignment =
      Shard_store.read_manifest ~io ~root ()
    in
    let paths = List.init count (Shard_store.shard_path ~root) in
    Fsio.with_locks paths @@ fun () ->
    (* repair + follower: truncate each shard's journal to the
       consistent cut, close resolved 2PC with marks, then bump the
       manifest epoch so any deposed leader's next fence check fails. *)
    let* o = Shard_store.open_store ~io ~repair:true ~follower:true ~root () in
    let epoch = o.Shard_store.epoch + 1 in
    let* () = Shard_store.set_epoch ~io ~root epoch in
    M.Counter.incr c_promotions;
    Log.info (fun m ->
        m "promoted sharded store %s at global v%d, epoch %d" root
          (Workspace.version o.Shard_store.ws)
          epoch);
    Ok (o, epoch)

  let promote t =
    let* o, epoch = promote_root ~io:t.io t.target in
    t.status <- Promoted;
    set_epoch_gauge epoch;
    Ok (o, epoch)
end
