(** Journal-shipping replication: a follower that tails a leader's
    journal, replays each shipped record through the {!Recovery} path
    into its own snapshot ⊕ journal, keeps an attached
    {!Viewobject.Cache} warm, and serves read-only view-object queries
    at an explicit replication position — then promotes to a writable
    leader from its last durable record when the leader is lost.

    The unit of shipping is the {!Journal} frame: a follower fetches
    raw bytes from the leader's journal at its consumed offset
    ({!Fsio.t.read_from} for the file feed; {!Shipper} for the socket
    feed), verifies each frame's checksum and parse, {e validates the
    deltas in memory} against the structural model
    ({!Recovery.apply_entry}), and only then appends the identical
    frame bytes to its own journal. The replica's store is therefore
    always openable by the ordinary {!Recovery.open_store} — promotion
    is just that open (with repair) plus an epoch-bumping rotation, and
    the bumped epoch fences the deposed leader: its next
    {!Recovery.persist} under [expect_epoch] refuses.

    Failure handling follows the torn-tail discipline: torn bytes at
    the leader's tail are an append in flight and are simply not
    consumed yet; a checksum-valid frame that fails to parse or to
    validate is re-fetched a bounded number of times and then
    {e quarantined} — the replica drops to [Degraded], keeps serving
    reads at its last good position, and keeps polling (a leader
    rotation heals it) — it never wedges and never appends unverified
    bytes to its own journal. *)

(** How a follower reaches the leader's bytes. {!file_feed} reads the
    leader's files directly (shared filesystem); {!Shipper.feed} speaks
    the socket protocol. All three calls are stateless on the feed —
    position lives in the replica. *)
type feed = {
  feed_label : string;  (** for logs and error messages *)
  fetch_snapshot : unit -> (string, Error.t) result;
      (** the leader's current store document, for bootstrap/resync *)
  fetch_journal : off:int -> (string, Error.t) result;
      (** leader journal bytes from [off] to its end; [""] when the
          journal does not exist yet or [off] is at its end *)
  fetch_head : unit -> (string, Error.t) result;
      (** at most the first kilobyte — enough to decode the header
          frame; the cheap rotation/epoch probe on idle polls *)
}

val file_feed : ?io:Fsio.t -> string -> feed
(** Feed a leader store file (and [store ^ ".journal"]) via direct
    reads — same-host or shared-filesystem replication, and the feed
    the crash sweep drives byte by byte. *)

type status =
  | Following  (** tailing normally (also while awaiting a journal) *)
  | Degraded of string
      (** a corrupt shipped record is quarantined; serving continues at
          the last good position, polling continues (re-fetching) *)
  | Promoted  (** writable; {!poll} refuses *)

val status_label : status -> string

type t

val create :
  ?io:Fsio.t ->
  ?cache_mode:Viewobject.Cache.mode ->
  ?refetch_limit:int ->
  feed:feed ->
  target:string ->
  unit ->
  (t, Error.t) result
(** Start (or resume) a follower whose own store lives at [target]. If
    [target] exists it is opened like any crashed store (repairing its
    torn tail) and tailing resumes; otherwise the leader's snapshot is
    fetched and the replica bootstraps from it. Either way the replica
    then locates itself in the leader's journal — one full read that
    positions the tail so every later {!poll} reads only new bytes —
    and attaches a view-object cache ([cache_mode] as in
    {!Workspace.attach_cache}). [refetch_limit] (default 3) is how many
    times a suspect frame is re-fetched before quarantine. A feed whose
    header epoch is {e below} the target store's own is a deposed
    leader; following it would fork the replicated history, so [create]
    refuses with {!Error.Invalid}. *)

type progress = {
  records : int;  (** leader journal records ingested this poll *)
  applied : int;  (** commit-log entries applied to the workspace *)
  rotated : bool;  (** followed a leader rotation barrier in place *)
  resynced : bool;  (** fell back to a full snapshot resync *)
  lag_records : int;  (** complete leader records seen but not applied *)
}

val poll : t -> (progress, Error.t) result
(** One tail round: fetch new leader bytes, verify/validate/ingest each
    complete frame, fsync the replica journal once, and sync the cache
    forward. On an idle round the header is probed instead: a changed
    base is a rotation (followed in place when the replica's version
    covers the new base — its own journal is folded into its snapshot
    and tailing re-anchors with no gap and no replay — or by a full
    {e resync} otherwise), and a changed epoch adopts the new leader.
    Torn trailing bytes are left unconsumed; suspect frames follow the
    refetch/quarantine discipline. *)

val poll_until_idle : ?max_rounds:int -> t -> (progress, Error.t) result
(** {!poll} until a round makes no progress (bounded by [max_rounds],
    default 1000), summing the progress — "catch all the way up". *)

val workspace : t -> Workspace.t
(** The replica's current read-only state. Committing to it locally
    would fork the replica from the leader; don't — promote first. *)

val cache : t -> Viewobject.Cache.t

val position : t -> int
(** The replication position: the replica's committed version. Reads
    via {!instances}/{!oql} are consistent as of exactly this version. *)

val epoch : t -> int
val status : t -> status

val leader_offset : t -> int
(** Leader journal bytes consumed — the resumable tailing cursor. *)

val instances :
  t -> string -> (Viewobject.Instance.t list, string) result
(** Follower read through the warm cache: all instances of the named
    view-object definition at {!position}. *)

val oql :
  t -> string -> string -> (Viewobject.Instance.t list, string) result
(** Follower OQL read through the warm cache at {!position}. *)

val promote : t -> (Workspace.t * int, Error.t) result
(** Promote this follower from its last durable record: under the
    store lock, repair-open its own files (truncating any torn tail)
    and rotate into a fresh snapshot stamped with the {e next} epoch.
    Returns the writable workspace and the new epoch; the replica's
    status becomes [Promoted] and further {!poll}s refuse. Any deposed
    leader persisting with [expect_epoch] from before the promotion is
    fenced with {!Error.Invalid}. *)

val promote_store : ?io:Fsio.t -> string -> (Workspace.t * int, Error.t) result
(** {!promote} for a store path without a running replica — what the
    [penguin replica promote] CLI calls on the follower's files. *)

(** A follower for a {!Shard_store} root: one independent tailer per
    shard journal (file feed), with reads and promotion going through
    {!Shard_store.open_store}[ ~follower:true] — each shard ships at
    its own pace, and the {e consistent cut} trims uneven trails so a
    mid-2PC leader kill is observed on all participating shards or on
    none. *)
module Sharded : sig
  type t

  val create :
    ?io:Fsio.t -> source:string -> target:string -> unit ->
    (t, Error.t) result
  (** Mirror the layout (DEFS, MANIFEST) and anchor every shard: copy
      its snapshot and start its journal from the source's current
      header. *)

  val poll : t -> (int, Error.t) result
  (** Tail every shard once; returns the records ingested across
      shards. Idle shards probe their source header and re-anchor when
      it rotated. *)

  val open_follower : t -> (Shard_store.opened, Error.t) result
  (** Read-only merged view at the consistent cut of what has shipped. *)

  val promote : t -> (Shard_store.opened * int, Error.t) result
  (** Promote the target root: under all shard locks, repair-open at
      the consistent cut (journals physically truncated, resolved 2PC
      closed with marks) and bump the manifest epoch, fencing the
      deposed sharded engine's next {!field-epoch} check. *)

  val promote_root :
    ?io:Fsio.t -> string -> (Shard_store.opened * int, Error.t) result
  (** {!promote} for a root without a running replica (CLI). *)

  val status : t -> status
end
