type task = Run of (unit -> unit) | Quit

type worker = {
  q : task Queue.t;
  m : Mutex.t;
  c : Condition.t;
}

type t = {
  workers : worker array;
  doms : unit Domain.t array;
  live : bool Atomic.t;
}

type 'a state = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a promise = {
  pm : Mutex.t;
  pc : Condition.t;
  mutable state : 'a state;
}

let worker_loop w () =
  let rec loop () =
    Mutex.lock w.m;
    while Queue.is_empty w.q do
      Condition.wait w.c w.m
    done;
    let task = Queue.pop w.q in
    Mutex.unlock w.m;
    match task with
    | Quit -> ()
    | Run f ->
        f ();
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Shard_exec.create: domains must be >= 1";
  let workers =
    Array.init domains (fun _ ->
        { q = Queue.create (); m = Mutex.create (); c = Condition.create () })
  in
  let doms = Array.map (fun w -> Domain.spawn (worker_loop w)) workers in
  { workers; doms; live = Atomic.make true }

let size t = Array.length t.workers
let lane_of t shard = shard mod size t

let enqueue w task =
  Mutex.lock w.m;
  Queue.push task w.q;
  Condition.signal w.c;
  Mutex.unlock w.m

let submit t ~lane f =
  if not (Atomic.get t.live) then
    invalid_arg "Shard_exec.submit: pool is shut down";
  let p = { pm = Mutex.create (); pc = Condition.create (); state = Pending } in
  let task () =
    let outcome =
      (* Tasks must not kill the worker: every exception is carried to
         the awaiting client and re-raised there. *)
      try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock p.pm;
    p.state <- outcome;
    Condition.broadcast p.pc;
    Mutex.unlock p.pm
  in
  enqueue t.workers.(lane_of t lane) (Run task);
  p

let await p =
  Mutex.lock p.pm;
  while (match p.state with Pending -> true | _ -> false) do
    Condition.wait p.pc p.pm
  done;
  let st = p.state in
  Mutex.unlock p.pm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let run t ~lane f = await (submit t ~lane f)

let depth t ~lane =
  let w = t.workers.(lane_of t lane) in
  Mutex.lock w.m;
  let d = Queue.length w.q in
  Mutex.unlock w.m;
  d

let hold t ~lanes f =
  let lanes = List.sort_uniq compare (List.map (lane_of t) lanes) in
  let n = List.length lanes in
  let m = Mutex.create () in
  let c = Condition.create () in
  let arrived = ref 0 in
  let release = ref false in
  let park () =
    Mutex.lock m;
    incr arrived;
    Condition.broadcast c;
    while not !release do
      Condition.wait c m
    done;
    Mutex.unlock m
  in
  let parked = List.map (fun lane -> submit t ~lane park) lanes in
  Mutex.lock m;
  while !arrived < n do
    Condition.wait c m
  done;
  Mutex.unlock m;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock m;
      release := true;
      Condition.broadcast c;
      Mutex.unlock m;
      List.iter await parked)
    f

let shutdown t =
  if Atomic.compare_and_set t.live true false then begin
    Array.iter (fun w -> enqueue w Quit) t.workers;
    Array.iter Domain.join t.doms
  end
