(** The workspace's append-only commit log: one entry per committed
    update, recording the version it produced, its net
    {!Relational.Delta.t}, and the request kind — the audit/replay trail
    session-level optimistic concurrency control validates against.

    Versions are dense: the empty log is at version 0 and every
    {!append} or {!barrier} advances it by one. A {e barrier} is an
    entry whose delta is unknown (a wholesale database swap, a raw SQL
    script, a log loaded from persistent storage without its history):
    it conflicts with everything staged before it. *)

open Relational

type change =
  | Delta of Delta.t  (** net change of a committed update *)
  | Barrier of string  (** unknown change; conflicts with everything *)

type entry = {
  version : int;  (** version {e after} this change *)
  change : change;
  kind : string;  (** request kind, for audit *)
}

type t

val empty : t

val of_version : int -> t
(** A log known only to be at the given version: its past is a barrier
    (any session staged earlier must rebase). Used when the version
    survives persistence but the deltas do not. *)

val version : t -> int
val length : t -> int

val truncated : t -> int
(** Version up to (and including) which the history is not held: entries
    at or below it were dropped by {!of_version} (persistence) or a
    snapshot rotation. [0] for {!empty}. *)

val append : t -> delta:Delta.t -> kind:string -> t
val barrier : t -> string -> t

val append_entry : t -> entry -> (t, string) result
(** Extend the log with a replayed entry. Versions are dense, so the
    entry's recorded version must be exactly [version t + 1]; anything
    else is a corrupt or mismatched journal and errors. *)

val entries : t -> entry list
(** Oldest first. *)

val entries_since : t -> int -> entry list
(** Entries with version greater than the given one, oldest first,
    prefixed with a synthetic barrier when that part of the history has
    been truncated. *)

val footprint_since : t -> int -> Delta.footprint option
(** Union of the footprints of every delta committed after the given
    version — what a session's staged updates must not collide with.
    [None] when a barrier intervenes (conflict must be assumed). *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
