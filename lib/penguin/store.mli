(** Saving and loading workspaces.

    "A view object is an uninstantiated window onto the underlying
    database; that is, only its definition is saved" (Section 3). This
    module persists exactly the definitional state of a {!Workspace.t} —
    relation schemas, structural connections, view-object definitions and
    their translators — plus, optionally, the base data, as a single
    S-expression document:

    {v
    (penguin-workspace
      (schemas (schema NAME (attrs (a int) ...) (key ...)) ...)
      (connections (connection ownership R1 R2 (on (...) (...))) ...)
      (objects (object NAME PIVOT <node>) ...)
      (translators (translator NAME ...) ...)
      (data (relation NAME (row (attr <value>) ...) ...) ...))
    v} *)

open Relational

val value_to_sexp : Value.t -> Sexp.t
val value_of_sexp : Sexp.t -> (Value.t, string) result

val tuple_to_sexp : Tuple.t -> Sexp.t
val tuple_of_sexp : Sexp.t -> (Tuple.t, string) result

val definition_to_sexp : Viewobject.Definition.t -> Sexp.t
val definition_of_sexp :
  Structural.Schema_graph.t -> Sexp.t -> (Viewobject.Definition.t, string) result
(** Edges are stored by connection id and direction, and resolved against
    the given graph — a definition only makes sense over its schema. *)

val translator_to_sexp : Vo_core.Translator_spec.t -> Sexp.t
val translator_of_sexp : Sexp.t -> (Vo_core.Translator_spec.t, string) result

val instance_to_sexp : Viewobject.Instance.t -> Sexp.t
val instance_of_sexp : Sexp.t -> (Viewobject.Instance.t, string) result

val save : ?include_data:bool -> Workspace.t -> string
(** Render the workspace ([include_data] defaults to [true]). The
    document records the workspace's commit-log version, so a loaded
    snapshot knows where the {!Journal} takes over. *)

val load : string -> (Workspace.t, string) result
(** The loaded workspace's log is {!Commit_log.of_version} of the
    recorded version (its past is a barrier — the deltas live in the
    journal, if any); documents predating the version field load at
    version 0 with full (empty) history. *)

val save_file :
  ?include_data:bool -> ?io:Fsio.t -> Workspace.t -> string ->
  (unit, Error.t) result
(** Atomic: writes a tmp file in the target's directory, fsyncs, then
    renames over the target — a crash mid-save leaves the old file
    intact. [io] (default the real filesystem) is the fault-injection
    seam; failures are typed {!Error.Io}. *)

val load_file : string -> (Workspace.t, string) result
