open Relational
open Structural
open Viewobject

let ( let* ) = Result.bind

let atom = Sexp.atom
let l = Sexp.list

let map_m f items =
  List.fold_left
    (fun acc x ->
      let* xs = acc in
      let* y = f x in
      Ok (xs @ [ y ]))
    (Ok []) items

(* --- values ---------------------------------------------------------- *)

let value_to_sexp = function
  | Value.Null -> atom "null"
  | Value.Int i -> l [ atom "int"; atom (string_of_int i) ]
  | Value.Float f -> l [ atom "float"; atom (Value.float_to_string f) ]
  | Value.Str s -> l [ atom "str"; atom s ]
  | Value.Bool b -> l [ atom "bool"; atom (string_of_bool b) ]

let value_of_sexp = function
  | Sexp.Atom "null" -> Ok Value.Null
  | Sexp.List [ Sexp.Atom "int"; Sexp.Atom i ] -> (
      match int_of_string_opt i with
      | Some i -> Ok (Value.Int i)
      | None -> Error (Fmt.str "store: bad int %s" i))
  | Sexp.List [ Sexp.Atom "float"; Sexp.Atom f ] -> (
      match float_of_string_opt f with
      | Some f -> Ok (Value.Float f)
      | None -> Error (Fmt.str "store: bad float %s" f))
  | Sexp.List [ Sexp.Atom "str"; Sexp.Atom s ] -> Ok (Value.Str s)
  | Sexp.List [ Sexp.Atom "bool"; Sexp.Atom b ] -> (
      match bool_of_string_opt b with
      | Some b -> Ok (Value.Bool b)
      | None -> Error (Fmt.str "store: bad bool %s" b))
  | e -> Error (Fmt.str "store: bad value %s" (Sexp.to_string e))

(* --- schemas and connections ----------------------------------------- *)

let schema_to_sexp (s : Schema.t) =
  l
    [ atom "schema"; atom s.Schema.name;
      l
        (atom "attrs"
        :: List.map
             (fun (a : Attribute.t) ->
               l [ atom a.Attribute.name; atom (Value.domain_name a.Attribute.domain) ])
             s.Schema.attributes);
      l (atom "key" :: List.map atom s.Schema.key) ]

let schema_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | Sexp.Atom "schema" :: Sexp.Atom name :: rest ->
      let* attrs = Sexp.keyed "attrs" rest in
      let* attributes =
        map_m
          (fun a ->
            match a with
            | Sexp.List [ Sexp.Atom n; Sexp.Atom d ] -> (
                match Value.domain_of_name d with
                | Some dom -> Ok (Attribute.make n dom)
                | None -> Error (Fmt.str "store: unknown domain %s" d))
            | _ -> Error "store: bad attribute")
          attrs
      in
      let* key_items = Sexp.keyed "key" rest in
      let* key = map_m Sexp.as_atom key_items in
      Schema.make ~name ~attributes ~key
  | _ -> Error "store: bad schema"

let connection_to_sexp (c : Connection.t) =
  l
    [ atom "connection"; atom (Connection.kind_name c.Connection.kind);
      atom c.Connection.source; atom c.Connection.target;
      l
        [ atom "on";
          l (List.map atom c.Connection.source_attrs);
          l (List.map atom c.Connection.target_attrs) ] ]

let connection_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | [ Sexp.Atom "connection"; Sexp.Atom kind; Sexp.Atom source;
      Sexp.Atom target;
      Sexp.List [ Sexp.Atom "on"; Sexp.List xs1; Sexp.List xs2 ] ] ->
      let* kind =
        match kind with
        | "ownership" -> Ok Connection.Ownership
        | "reference" -> Ok Connection.Reference
        | "subset" -> Ok Connection.Subset
        | k -> Error (Fmt.str "store: unknown connection kind %s" k)
      in
      let* source_attrs = map_m Sexp.as_atom xs1 in
      let* target_attrs = map_m Sexp.as_atom xs2 in
      Ok (Connection.make ~kind ~source ~target ~source_attrs ~target_attrs)
  | _ -> Error "store: bad connection"

(* --- definitions ------------------------------------------------------ *)

let edge_to_sexp (e : Schema_graph.edge) =
  l
    [ atom "edge";
      atom (if e.Schema_graph.forward then "forward" else "inverse");
      atom (Connection.id e.Schema_graph.conn) ]

let edge_of_sexp g e =
  let* items = Sexp.as_list e in
  match items with
  | [ Sexp.Atom "edge"; Sexp.Atom dir; Sexp.Atom cid ] ->
      let* forward =
        match dir with
        | "forward" -> Ok true
        | "inverse" -> Ok false
        | d -> Error (Fmt.str "store: bad edge direction %s" d)
      in
      (match
         List.find_opt
           (fun c -> Connection.id c = cid)
           (Schema_graph.connections g)
       with
      | Some conn -> Ok { Schema_graph.conn; forward }
      | None -> Error (Fmt.str "store: unknown connection %s" cid))
  | _ -> Error "store: bad edge"

let rec node_to_sexp (n : Definition.node) =
  l
    [ atom "node"; atom n.Definition.label; atom n.Definition.relation;
      l (atom "attrs" :: List.map atom n.Definition.attrs);
      l (atom "path" :: List.map edge_to_sexp n.Definition.path);
      l (atom "children" :: List.map node_to_sexp n.Definition.children) ]

let rec node_of_sexp g e =
  let* items = Sexp.as_list e in
  match items with
  | Sexp.Atom "node" :: Sexp.Atom label :: Sexp.Atom relation :: rest ->
      let* attr_items = Sexp.keyed "attrs" rest in
      let* attrs = map_m Sexp.as_atom attr_items in
      let* path_items = Sexp.keyed "path" rest in
      let* path = map_m (edge_of_sexp g) path_items in
      let* child_items = Sexp.keyed "children" rest in
      let* children = map_m (node_of_sexp g) child_items in
      Ok (Definition.node ~label ~relation ~attrs ~path ~children)
  | _ -> Error "store: bad definition node"

let definition_to_sexp (vo : Definition.t) =
  l
    [ atom "object"; atom vo.Definition.name; atom vo.Definition.pivot;
      node_to_sexp vo.Definition.root ]

let definition_of_sexp g e =
  let* items = Sexp.as_list e in
  match items with
  | [ Sexp.Atom "object"; Sexp.Atom name; Sexp.Atom pivot; node ] ->
      let* root = node_of_sexp g node in
      Definition.make g ~name ~pivot ~root
  | _ -> Error "store: bad object definition"

(* --- translators ------------------------------------------------------ *)

let bool_atom b = atom (string_of_bool b)

let bool_of_sexp e =
  let* a = Sexp.as_atom e in
  match bool_of_string_opt a with
  | Some b -> Ok b
  | None -> Error (Fmt.str "store: bad bool %s" a)

let action_to_sexp = function
  | Integrity.Nullify -> atom "nullify"
  | Integrity.Delete_referencing -> atom "delete-referencing"
  | Integrity.Restrict -> atom "restrict"

let action_of_sexp e =
  let* a = Sexp.as_atom e in
  match a with
  | "nullify" -> Ok Integrity.Nullify
  | "delete-referencing" -> Ok Integrity.Delete_referencing
  | "restrict" -> Ok Integrity.Restrict
  | s -> Error (Fmt.str "store: bad reference action %s" s)

let key_policy_to_sexp (p : Vo_core.Translator_spec.key_policy) =
  l
    [ bool_atom p.Vo_core.Translator_spec.allow_vo_key_change;
      bool_atom p.Vo_core.Translator_spec.allow_db_key_replace;
      bool_atom p.Vo_core.Translator_spec.allow_merge_with_existing ]

let key_policy_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | [ a; b; c ] ->
      let* allow_vo_key_change = bool_of_sexp a in
      let* allow_db_key_replace = bool_of_sexp b in
      let* allow_merge_with_existing = bool_of_sexp c in
      Ok
        {
          Vo_core.Translator_spec.allow_vo_key_change;
          allow_db_key_replace;
          allow_merge_with_existing;
        }
  | _ -> Error "store: bad key policy"

let mod_policy_to_sexp (p : Vo_core.Translator_spec.modification_policy) =
  l
    [ bool_atom p.Vo_core.Translator_spec.modifiable;
      bool_atom p.Vo_core.Translator_spec.allow_insert;
      bool_atom p.Vo_core.Translator_spec.allow_modify ]

let mod_policy_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | [ a; b; c ] ->
      let* modifiable = bool_of_sexp a in
      let* allow_insert = bool_of_sexp b in
      let* allow_modify = bool_of_sexp c in
      Ok { Vo_core.Translator_spec.modifiable; allow_insert; allow_modify }
  | _ -> Error "store: bad modification policy"

let translator_to_sexp (spec : Vo_core.Translator_spec.t) =
  let open Vo_core.Translator_spec in
  l
    [ atom "translator"; atom spec.object_name;
      l [ atom "insertion"; bool_atom spec.allow_insertion ];
      l [ atom "deletion"; bool_atom spec.allow_deletion ];
      l [ atom "replacement"; bool_atom spec.allow_replacement ];
      l
        (atom "island-keys"
        :: List.map
             (fun (rel, p) -> l [ atom rel; key_policy_to_sexp p ])
             spec.island_keys);
      l
        (atom "outside"
        :: List.map
             (fun (rel, p) -> l [ atom rel; mod_policy_to_sexp p ])
             spec.outside);
      l
        (atom "reference-actions"
        :: List.map
             (fun (cid, a) -> l [ atom cid; action_to_sexp a ])
             spec.reference_actions);
      l [ atom "default-outside"; mod_policy_to_sexp spec.default_outside ];
      l
        [ atom "default-reference-action";
          action_to_sexp spec.default_reference_action ] ]

let translator_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | Sexp.Atom "translator" :: Sexp.Atom object_name :: rest ->
      let flag name =
        let* f = Sexp.keyed name rest in
        match f with
        | [ b ] -> bool_of_sexp b
        | _ -> Error (Fmt.str "store: bad %s flag" name)
      in
      let* allow_insertion = flag "insertion" in
      let* allow_deletion = flag "deletion" in
      let* allow_replacement = flag "replacement" in
      let pair_list name decode =
        let* entries = Sexp.keyed name rest in
        map_m
          (fun entry ->
            let* items = Sexp.as_list entry in
            match items with
            | [ Sexp.Atom k; v ] ->
                let* v = decode v in
                Ok (k, v)
            | _ -> Error (Fmt.str "store: bad %s entry" name))
          entries
      in
      let* island_keys = pair_list "island-keys" key_policy_of_sexp in
      let* outside = pair_list "outside" mod_policy_of_sexp in
      let* reference_actions = pair_list "reference-actions" action_of_sexp in
      let* default_outside =
        let* f = Sexp.keyed "default-outside" rest in
        match f with
        | [ p ] -> mod_policy_of_sexp p
        | _ -> Error "store: bad default-outside"
      in
      let* default_reference_action =
        let* f = Sexp.keyed "default-reference-action" rest in
        match f with
        | [ a ] -> action_of_sexp a
        | _ -> Error "store: bad default-reference-action"
      in
      Ok
        {
          Vo_core.Translator_spec.object_name;
          allow_insertion;
          allow_deletion;
          allow_replacement;
          island_keys;
          outside;
          reference_actions;
          default_outside;
          default_reference_action;
        }
  | _ -> Error "store: bad translator"

(* --- instances --------------------------------------------------------- *)

let tuple_to_sexp t =
  l
    (atom "row"
    :: List.map
         (fun (a, v) -> l [ atom a; value_to_sexp v ])
         (Tuple.bindings t))

let tuple_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | Sexp.Atom "row" :: bindings ->
      let* bindings =
        map_m
          (fun b ->
            let* items = Sexp.as_list b in
            match items with
            | [ Sexp.Atom a; v ] ->
                let* v = value_of_sexp v in
                Ok (a, v)
            | _ -> Error "store: bad binding")
          bindings
      in
      Ok (Tuple.make bindings)
  | _ -> Error "store: bad row"

let rec instance_to_sexp (i : Instance.t) =
  l
    [ atom "instance"; atom i.Instance.label; atom i.Instance.relation;
      tuple_to_sexp i.Instance.tuple;
      l
        (atom "children"
        :: List.map
             (fun (label, subs) ->
               l (atom label :: List.map instance_to_sexp subs))
             i.Instance.children) ]

let rec instance_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | [ Sexp.Atom "instance"; Sexp.Atom label; Sexp.Atom relation; row;
      Sexp.List (Sexp.Atom "children" :: child_groups) ] ->
      let* tuple = tuple_of_sexp row in
      let* children =
        map_m
          (fun group ->
            let* items = Sexp.as_list group in
            match items with
            | Sexp.Atom child_label :: subs ->
                let* subs = map_m instance_of_sexp subs in
                Ok (child_label, subs)
            | _ -> Error "store: bad child group")
          child_groups
      in
      Ok (Instance.make ~label ~relation ~tuple ~children)
  | _ -> Error "store: bad instance"

(* --- workspace --------------------------------------------------------- *)

let relation_to_sexp r =
  l
    (atom "relation"
    :: atom (Relation.name r)
    :: List.map tuple_to_sexp (Relation.to_list r))

let save ?(include_data = true) (ws : Workspace.t) =
  let g = ws.Workspace.graph in
  let schemas =
    List.map (fun n -> schema_to_sexp (Schema_graph.schema_exn g n))
      (Schema_graph.relations g)
  in
  let connections = List.map connection_to_sexp (Schema_graph.connections g) in
  let objects =
    List.map (fun (_, vo) -> definition_to_sexp vo) ws.Workspace.objects
  in
  let translators =
    List.map (fun (_, spec) -> translator_to_sexp spec) ws.Workspace.translators
  in
  let data =
    if not include_data then []
    else
      [ l
          (atom "data"
          :: List.map
               (fun n -> relation_to_sexp (Database.relation_exn ws.Workspace.db n))
               (Database.relation_names ws.Workspace.db)) ]
  in
  Sexp.to_string
    (l
       ([ atom "penguin-workspace";
          l [ atom "version"; atom (string_of_int (Workspace.version ws)) ];
          l (atom "schemas" :: schemas);
          l (atom "connections" :: connections);
          l (atom "objects" :: objects);
          l (atom "translators" :: translators) ]
       @ data))
  ^ "\n"

let load input =
  let* doc = Sexp.parse input in
  let* items = Sexp.as_list doc in
  match items with
  | Sexp.Atom "penguin-workspace" :: rest ->
      let* schema_items = Sexp.keyed "schemas" rest in
      let* schemas = map_m schema_of_sexp schema_items in
      let* conn_items = Sexp.keyed "connections" rest in
      let* conns = map_m connection_of_sexp conn_items in
      let* graph = Schema_graph.make schemas conns in
      let ws = Workspace.create graph in
      let* object_items = Sexp.keyed "objects" rest in
      let* objects =
        map_m
          (fun e ->
            let* vo = definition_of_sexp graph e in
            Ok (vo.Definition.name, vo))
          object_items
      in
      let* translator_items = Sexp.keyed "translators" rest in
      let* translators =
        map_m
          (fun e ->
            let* spec = translator_of_sexp e in
            Ok (spec.Vo_core.Translator_spec.object_name, spec))
          translator_items
      in
      let* () =
        match
          List.find_opt
            (fun (name, _) -> not (List.mem_assoc name translators))
            objects
        with
        | Some (name, _) ->
            Error (Fmt.str "store: object %s has no translator" name)
        | None -> Ok ()
      in
      let* db =
        match Sexp.keyed_opt "data" rest with
        | None -> Ok ws.Workspace.db
        | Some relation_items ->
            List.fold_left
              (fun acc e ->
                let* db = acc in
                let* items = Sexp.as_list e in
                match items with
                | Sexp.Atom "relation" :: Sexp.Atom name :: rows ->
                    List.fold_left
                      (fun acc row ->
                        let* db = acc in
                        let* t = tuple_of_sexp row in
                        Result.map_error Database.error_to_string
                          (Database.insert db name t))
                      (Ok db) rows
                | _ -> Error "store: bad relation data")
              (Ok ws.Workspace.db) relation_items
      in
      let* log =
        match Sexp.keyed_opt "version" rest with
        | None -> Ok Commit_log.empty
        | Some [ Sexp.Atom v ] -> (
            match int_of_string_opt v with
            | Some v when v >= 0 -> Ok (Commit_log.of_version v)
            | _ -> Error (Fmt.str "store: bad version %s" v))
        | Some _ -> Error "store: bad version"
      in
      Ok { ws with Workspace.db; objects; translators; log }
  | _ -> Error "store: not a penguin-workspace document"

let save_file ?include_data ?(io = Fsio.default) ws path =
  (* Crash-safe: a failure (or a crash) mid-save must never corrupt the
     previous workspace file — the write lands in a tmp file that is
     fsynced and renamed over the target only once complete. *)
  Fsio.atomic_write io ~path (save ?include_data ws)

let load_file path =
  try
    let ic = open_in path in
    let len = in_channel_length ic in
    let content = really_input_string ic len in
    close_in ic;
    load content
  with Sys_error e -> Error e
