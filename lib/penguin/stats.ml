let ( let* ) = Result.bind

(* Alternate between two values so every engine update is a real delta
   (an idempotent edit would be dropped as a no-op by Upql). *)
let flip_stmt i =
  if i mod 2 = 0 then "set GRADES[pid = 1] grade = 'A+' where course_id = 'CS345'"
  else "set GRADES[pid = 1] grade = 'B+' where course_id = 'CS345'"

let engine_traffic ~updates ws =
  let rec go i ws =
    if i >= updates then Ok ws
    else
      let* ws, _outcomes = Upql.apply ws ~object_name:"omega" (flip_stmt i) in
      go (i + 1) ws
  in
  go 0 ws

(* Queue a statement the way the CLI does: with a retry closure that
   re-derives the requests against the post-rebase state. *)
let queue_stmt sess ws stmt =
  let* reqs = Upql.requests ws ~object_name:"omega" stmt in
  List.fold_left
    (fun acc req ->
      let* sess = acc in
      let retry ws' =
        let* reqs' = Upql.requests ws' ~object_name:"omega" stmt in
        match reqs' with [] -> Ok None | r :: _ -> Ok (Some r)
      in
      Session.queue sess "omega" ~retry req)
    (Ok sess) reqs

let session_traffic ws =
  (* A clean two-update session commit. [updates] is even, so the
     engine traffic left the grade at 'B+' and [flip_stmt 0] is a real
     edit here (Upql drops no-op requests before they are staged). *)
  let sess = Session.begin_ ws in
  let* sess = queue_stmt sess ws (flip_stmt 0) in
  let* sess =
    queue_stmt sess ws "set units = 4 where course_id = 'CS345'"
  in
  let* ws, _stats = Session.commit ws sess in
  (* ...and a stale session: staged here, overtaken by a concurrent
     commit to the same tuple, so commit must detect the overlap and
     rebase (OCC retry). *)
  let sess = Session.begin_ ws in
  let* sess = queue_stmt sess ws (flip_stmt 1) in
  let* ws', _ =
    Upql.apply ws ~object_name:"omega"
      "set GRADES[pid = 1] grade = 'C' where course_id = 'CS345'"
  in
  let* ws', _stats = Session.commit ws' sess in
  Ok ws'

let durability_traffic ws =
  let dir = Filename.get_temp_dir_name () in
  let store =
    Filename.concat dir (Fmt.str "penguin-stats-%d.pgn" (Unix.getpid ()))
  in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ store; Journal.journal_path store; Fsio.lock_path store ]
  in
  let result =
    let* () = Store.save_file ws store in
    (* Two commit/persist rounds; the second crosses rotate_threshold
       and folds the journal into a fresh snapshot. *)
    let rec round i ws =
      if i >= 2 then Ok ws
      else
        let since = Workspace.version ws in
        let sess = Session.begin_ ws in
        let* sess = queue_stmt sess ws (flip_stmt i) in
        let* ws, _stats = Session.commit ws sess in
        let* _persisted =
          Recovery.persist ~rotate_threshold:2 ~store ~since ws
        in
        let* ws, _report = Recovery.open_store store in
        round (i + 1) ws
    in
    let* _ws = round 0 ws in
    (* A torn tail: garbage after the last full record, discarded on
       read and truncated away by a repairing open. *)
    let* () =
      Fsio.default.Fsio.write ~path:(Journal.journal_path store) ~append:true
        "torn"
    in
    let* _ws, report = Recovery.open_store ~repair:true store in
    if report.Recovery.torn_bytes = 0 then
      Error "stats exercise: torn tail was not detected"
    else Ok ()
  in
  cleanup ();
  result

let exercise ?(updates = 8) () =
  Obs.Trace.with_span "stats.exercise" @@ fun () ->
  let ws = University.workspace () in
  let* ws = engine_traffic ~updates ws in
  let* ws = session_traffic ws in
  let* () = durability_traffic ws in
  match Workspace.check_consistency ws with
  | Ok () -> Ok ()
  | Error e -> Error (Fmt.str "stats exercise left the fixture broken: %s" e)

let table () = Fmt.str "%a" Obs.Metrics.pp_table ()
let json () = Obs.Metrics.to_json ()
