let ( let* ) = Result.bind

(* Typed-error results join the exercise's string-error chain at the
   boundary. *)
let str_err r = Result.map_error Error.to_string r

(* Alternate between two values so every engine update is a real delta
   (an idempotent edit would be dropped as a no-op by Upql). *)
let flip_stmt i =
  if i mod 2 = 0 then "set GRADES[pid = 1] grade = 'A+' where course_id = 'CS345'"
  else "set GRADES[pid = 1] grade = 'B+' where course_id = 'CS345'"

let engine_traffic ~updates ws =
  let rec go i ws =
    if i >= updates then Ok ws
    else
      let* ws, _outcomes = Upql.apply ws ~object_name:"omega" (flip_stmt i) in
      go (i + 1) ws
  in
  go 0 ws

(* Queue a statement the way the CLI does: with a retry closure that
   re-derives the requests against the post-rebase state. *)
let queue_stmt sess ws stmt =
  let* reqs = Upql.requests ws ~object_name:"omega" stmt in
  List.fold_left
    (fun acc req ->
      let* sess = acc in
      let retry ws' =
        let* reqs' =
          Result.map_error Error.invalid
            (Upql.requests ws' ~object_name:"omega" stmt)
        in
        match reqs' with [] -> Ok None | r :: _ -> Ok (Some r)
      in
      str_err (Session.queue sess "omega" ~retry req))
    (Ok sess) reqs

let session_traffic ws =
  (* A clean two-update session commit. [updates] is even, so the
     engine traffic left the grade at 'B+' and [flip_stmt 0] is a real
     edit here (Upql drops no-op requests before they are staged). *)
  let sess = Session.begin_ ws in
  let* sess = queue_stmt sess ws (flip_stmt 0) in
  let* sess =
    queue_stmt sess ws "set units = 4 where course_id = 'CS345'"
  in
  let* ws, _stats = str_err (Session.commit ws sess) in
  (* ...and a stale session: staged here, overtaken by a concurrent
     commit to the same tuple, so commit must detect the overlap and
     rebase (OCC retry). *)
  let sess = Session.begin_ ws in
  let* sess = queue_stmt sess ws (flip_stmt 1) in
  let* ws', _ =
    Upql.apply ws ~object_name:"omega"
      "set GRADES[pid = 1] grade = 'C' where course_id = 'CS345'"
  in
  let* ws', _stats = str_err (Session.commit ws' sess) in
  Ok ws'

let durability_traffic ws =
  let dir = Filename.get_temp_dir_name () in
  let store =
    Filename.concat dir (Fmt.str "penguin-stats-%d.pgn" (Unix.getpid ()))
  in
  let cleanup () =
    List.iter
      (fun p -> try Sys.remove p with Sys_error _ -> ())
      [ store; Journal.journal_path store; Fsio.lock_path store ]
  in
  let result =
    let* () = str_err (Store.save_file ws store) in
    (* Two commit/persist rounds; the second crosses rotate_threshold
       and folds the journal into a fresh snapshot. *)
    let rec round i ws =
      if i >= 2 then Ok ws
      else
        let since = Workspace.version ws in
        let sess = Session.begin_ ws in
        let* sess = queue_stmt sess ws (flip_stmt i) in
        let* ws, _stats = str_err (Session.commit ws sess) in
        let* _persisted =
          str_err (Recovery.persist ~rotate_threshold:2 ~store ~since ws)
        in
        let* ws, _report = str_err (Recovery.open_store store) in
        round (i + 1) ws
    in
    let* _ws = round 0 ws in
    (* A torn tail: garbage after the last full record, discarded on
       read and truncated away by a repairing open. *)
    let* () =
      str_err
        (Fsio.default.Fsio.write ~path:(Journal.journal_path store)
           ~append:true "torn")
    in
    let* _ws, report = str_err (Recovery.open_store ~repair:true store) in
    if report.Recovery.torn_bytes = 0 then
      Error "stats exercise: torn tail was not detected"
    else Ok ()
  in
  cleanup ();
  result

(* Drive the materialized view-object cache through every outcome its
   counters name: a cold build (miss), a warm read (hit), an
   incremental patch from a session commit, a skip (a delta disjoint
   from a cached object's dependencies), and a barrier invalidation. *)
let cache_traffic ws =
  let cache = Workspace.attach_cache ws in
  (* A flat DEPARTMENT object rides along: its dependency set is
     disjoint from the GRADES edit below, so the patch skips it. *)
  Viewobject.Cache.register cache
    (Viewobject.Definition.make_exn ws.Workspace.graph ~name:"departments"
       ~pivot:"DEPARTMENT"
       ~root:
         (Viewobject.Definition.node ~label:"DEPARTMENT"
            ~relation:"DEPARTMENT"
            ~attrs:[ "dept_name"; "building"; "budget" ]
            ~path:[] ~children:[]));
  let* cold = Viewobject.Cache.instances cache "omega" in
  Viewobject.Cache.warm cache;
  let* warm = Viewobject.Cache.instances cache "omega" in
  let* () =
    if List.length cold <> List.length warm then
      Error "stats exercise: cache warm read diverged from the cold one"
    else Ok ()
  in
  (* One committed update through a session with the cache attached:
     sync patches the touched omega entry and skips the DEPARTMENT
     object. [session_traffic] left the grade at 'B+', so the even
     statement is a real edit. *)
  let sess = Session.begin_ ws in
  let* sess = queue_stmt sess ws (flip_stmt 0) in
  let* ws, _stats = str_err (Session.commit ~cache ws sess) in
  (* ...and flip it back, so the fixture leaves this stage as it
     entered (the durability stage's edits stay real). *)
  let sess = Session.begin_ ws in
  let* sess = queue_stmt sess ws (flip_stmt 1) in
  let* ws, _stats = str_err (Session.commit ~cache ws sess) in
  let fresh = Workspace.instances ws "omega" in
  let* cached = Viewobject.Cache.instances cache "omega" in
  let* () =
    match fresh with
    | Ok fresh when List.equal Viewobject.Instance.equal fresh cached -> Ok ()
    | Ok _ -> Error "stats exercise: patched cache diverged from instantiate"
    | Error e -> Error e
  in
  (* A barrier (wholesale database swap) hides the history: the cache
     must invalidate rather than trust its entries. The swapped-in
     value is logically the same state, which is exactly why the cache
     cannot tell — only the barrier speaks. *)
  let scratch =
    Relational.Schema.make_exn ~name:"STATS_SCRATCH"
      ~attributes:[ Relational.Attribute.int "id" ]
      ~key:[ "id" ]
  in
  let* swapped =
    Result.map_error Relational.Database.error_to_string
      (Relational.Database.drop_relation
         (Relational.Database.create_relation_exn ws.Workspace.db scratch)
         "STATS_SCRATCH")
  in
  let ws = Workspace.with_db ws swapped in
  Workspace.sync_cache ws cache;
  Ok ws

(* Drive the resilience layer so its counters are never zero in the
   stats output: a transient fault retried through a real (injected)
   I/O path, an admission-control shed, and a full breaker cycle —
   trip on non-transient faults, reject while open, probe and close
   after the cooldown. The instant clock makes the backoffs and the
   cooldown free. *)
let resilience_traffic () =
  let clock = Resilience.Clock.instant () in
  (* Retry over injected transient write faults (seeded, deterministic). *)
  let faulty =
    Fsio.Fault.inject ~seed:7 ~rate:0.5 ~kind:Fsio.Fault.Transient
      ~ops:[ `Write ] Fsio.default
  in
  let dir = Filename.get_temp_dir_name () in
  let scratch =
    Filename.concat dir (Fmt.str "penguin-stats-retry-%d.tmp" (Unix.getpid ()))
  in
  let* () =
    str_err
      (Resilience.retry ~policy:{ Resilience.Policy.default with max_attempts = 16 }
         ~clock ~label:"stats scratch write" (fun () ->
           faulty.Fsio.write ~path:scratch ~append:false "resilient"))
  in
  (try Sys.remove scratch with Sys_error _ -> ());
  (* Admission control shedding. *)
  let lim = Resilience.Limiter.create ~label:"stats" ~max_in_flight:1 () in
  let* () =
    str_err
      (Resilience.Limiter.with_slot lim (fun () ->
           match Resilience.Limiter.with_slot lim (fun () -> Ok ()) with
           | Error (Error.Busy _) -> Ok ()
           | Ok () -> Error (Error.invalid "stats: limiter failed to shed")
           | Error e -> Error e))
  in
  (* Breaker: trip on non-transient faults, reject, probe, close. *)
  let b =
    Resilience.Breaker.create ~label:"stats" ~threshold:2 ~cooldown_ns:1e6
      ~clock ()
  in
  let hard () =
    Error (Error.io ~op:Error.Sync ~path:"<stats>" "synthetic disk fault")
  in
  let (_ : (unit, Error.t) result) = Resilience.Breaker.protect b hard in
  let (_ : (unit, Error.t) result) = Resilience.Breaker.protect b hard in
  let* () =
    match Resilience.Breaker.protect b (fun () -> Ok ()) with
    | Error (Error.Busy _) -> Ok ()  (* open: degraded read-only *)
    | Ok () -> Error "stats: breaker failed to trip"
    | Error e -> Error (Error.to_string e)
  in
  clock.Resilience.Clock.sleep_ns 2e6;
  (* Past the cooldown the next write is the half-open probe. *)
  str_err (Resilience.Breaker.protect b (fun () -> Ok ()))

(* Drive the sharded engine so the shard.* metrics are never zero: an
   in-memory engine over the fixture with a batch of updates routed
   through the lanes. Grade edits write outside omega's pivot island,
   so this exercises both the lane bounce and the coordinator; the
   per-shard breakdowns (shard.<i>.commits / journal_appends /
   queue_depth) come from the same run. *)
let shard_traffic ~updates ws =
  let eng = Sharded.create ws in
  let result =
    let rec go i =
      if i >= updates then Ok ()
      else
        let* reqs =
          Upql.requests (Sharded.to_workspace eng) ~object_name:"omega"
            (flip_stmt i)
        in
        let rec apply = function
          | [] -> Ok ()
          | r :: rest ->
              let o = Sharded.update eng "omega" r in
              if Relational.Transaction.is_committed o.Vo_core.Engine.result
              then
                apply rest
              else
                Error
                  (Fmt.str "stats exercise: sharded update rejected: %a"
                     Vo_core.Engine.pp_outcome o)
        in
        let* () = apply reqs in
        go (i + 1)
    in
    let* () = go 0 in
    let committed =
      List.fold_left
        (fun acc (s : Sharded.shard_info) ->
          acc + s.Sharded.commits + s.Sharded.cross_commits)
        0 (Sharded.shards eng)
    in
    let* () =
      if committed = 0 then
        Error "stats exercise: the sharded engine committed nothing"
      else Ok ()
    in
    Result.map_error
      (Fmt.str "stats exercise: sharded fixture broken: %s")
      (Workspace.check_consistency (Sharded.to_workspace eng))
  in
  Sharded.shutdown eng;
  result

(* Drive the replication layer end to end: a leader store with a
   couple of persisted commits, a file-feed follower that catches up
   and serves a cache-warm read, a corrupt shipped record that must be
   refetched and quarantined (not wedge the follower), and finally a
   promotion — touching replica.lag_records, replica.epoch,
   replica.refetches and replica.promotions. *)
let replica_traffic ws =
  let dir = Filename.get_temp_dir_name () in
  let pid = Unix.getpid () in
  let store = Filename.concat dir (Fmt.str "penguin-stats-leader-%d.pgn" pid) in
  let target =
    Filename.concat dir (Fmt.str "penguin-stats-follower-%d.pgn" pid)
  in
  let cleanup () =
    List.iter
      (fun s ->
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ s; Journal.journal_path s; Fsio.lock_path s ])
      [ store; target ]
  in
  cleanup ();
  let result =
    let* () = str_err (Store.save_file ws store) in
    (* Two alternating edits: whatever the grade is now, at least one
       is a real delta, so the journal ships at least one record. *)
    let rec commit_rounds i lws =
      if i >= 2 then Ok lws
      else
        let since = Workspace.version lws in
        let sess = Session.begin_ lws in
        let* sess = queue_stmt sess lws (flip_stmt i) in
        let* lws, _stats = str_err (Session.commit lws sess) in
        let* _persisted = str_err (Recovery.persist ~store ~since lws) in
        commit_rounds (i + 1) lws
    in
    let* lws = commit_rounds 0 ws in
    let* r =
      str_err
        (Replica.create ~refetch_limit:2 ~feed:(Replica.file_feed store)
           ~target ())
    in
    let* _progress = str_err (Replica.poll_until_idle r) in
    let* () =
      if Replica.position r <> Workspace.version lws then
        Error "stats exercise: follower did not catch up to the leader"
      else Ok ()
    in
    let* follower_read = Replica.instances r "omega" in
    let* () =
      if follower_read = [] then
        Error "stats exercise: follower served no instances"
      else Ok ()
    in
    (* A checksum-valid frame whose payload is garbage: the follower
       must refetch it, then quarantine and keep serving — never wedge
       or re-journal it. *)
    let* () =
      str_err
        (Fsio.default.Fsio.write ~path:(Journal.journal_path store)
           ~append:true
           (Journal.frame "(not a journal record)"))
    in
    let* _ = str_err (Replica.poll r) in
    let* _ = str_err (Replica.poll r) in
    let* () =
      match Replica.status r with
      | Degraded _ -> Ok ()
      | Following | Promoted ->
          Error "stats exercise: corrupt shipped record was not quarantined"
    in
    let* _ws, epoch = str_err (Replica.promote r) in
    if epoch < 1 then Error "stats exercise: promotion did not bump the epoch"
    else Ok ()
  in
  cleanup ();
  result

let exercise ?(updates = 8) () =
  Obs.Trace.with_span "stats.exercise" @@ fun () ->
  let ws = University.workspace () in
  let* ws = engine_traffic ~updates ws in
  let* ws = session_traffic ws in
  let* ws = cache_traffic ws in
  let* () = durability_traffic ws in
  let* () = replica_traffic ws in
  let* () = resilience_traffic () in
  let* () = shard_traffic ~updates:4 ws in
  match Workspace.check_consistency ws with
  | Ok () -> Ok ()
  | Error e -> Error (Fmt.str "stats exercise left the fixture broken: %s" e)

let table () = Fmt.str "%a" Obs.Metrics.pp_table ()
let json () = Obs.Metrics.to_json ()
