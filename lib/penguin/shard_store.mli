(** The sharded on-disk layout: one store file + journal {e per
    dependency island}, under a common root directory.

    {v
    root/
      MANIFEST          (shard count, base version, relation→shard map)
      DEFS              (schemas, connections, objects, translators)
      SHARD_000         (shard 0 snapshot: its relations' rows + version)
      SHARD_000.journal (shard 0 WAL — Journal records incl. 2PC)
      SHARD_000.lock    (derived by Fsio.lock_path from the shard path)
      SHARD_001 ...
    v}

    Shard file names are zero-padded so lexicographic path order is
    shard-id order — {!Fsio.with_locks}' sorted acquisition then {e is}
    the ascending-shard-id lock-ordering rule. The manifest's
    relation→shard assignment is cross-checked on every {!open_store}
    against a recomputation from the DEFS graph: the partition is a
    pure function of the schema, so any drift means the store was
    written under a different schema and must not be half-read.

    Recovery keeps the PR 3 guarantees {e per shard} — snapshot ⊕
    journal replay, torn-tail discipline, dense versions — and resolves
    two-phase records across shards: a prepared cross-shard slice is
    applied iff its gid reached a [Mark] locally or a [Decide] on its
    decision shard (lowest participant id); otherwise it is presumed
    aborted and discarded. Slices of one gid are applied as a single
    merged delta with one incremental integrity check, so recovery
    observes a cross-shard commit on all participating shards or on
    none. *)

open Relational

val shard_name : int -> string
(** ["SHARD_007"] — zero-padded to three digits. *)

val shard_path : root:string -> int -> string
val manifest_path : root:string -> string
val defs_path : root:string -> string

val exists : root:string -> bool
(** A manifest is present under the root. *)

val init :
  ?io:Fsio.t ->
  ?max_shards:int ->
  root:string ->
  Workspace.t ->
  (Structural.Partition.plan, Error.t) result
(** Create the sharded store: compute the island partition of the
    workspace's graph (folded onto at most [max_shards] shards), create
    the root directory, write DEFS and MANIFEST, snapshot every shard's
    relations, and initialize every shard journal at the workspace's
    current version (the common base). Refuses if a manifest already
    exists under [root]. *)

val save_shard :
  ?io:Fsio.t ->
  root:string ->
  shard:int ->
  version:int ->
  relations:string list ->
  Database.t ->
  (unit, Error.t) result
(** Atomically rewrite one shard's snapshot at [version] with the given
    relations' rows from [db] (used by per-shard journal rotation). *)

type shard_report = {
  shard : int;
  snapshot_version : int;
  replayed : int;  (** entries applied on top of the snapshot *)
  version : int;  (** recovered shard version *)
  torn_bytes : int;
  committed_2pc : int;  (** dangling prepares resolved as committed *)
  aborted_2pc : int;  (** dangling prepares presumed aborted *)
}

type report = {
  shards : shard_report list;
  vector : int list;  (** recovered per-shard version vector *)
}

val pp_report : Format.formatter -> report -> unit

type opened = {
  ws : Workspace.t;
      (** merged view: all shards' relations, log at the global version
          (base + total commits since; per-shard history in [logs]) *)
  plan : Structural.Partition.plan;
  base : int;  (** the common base version recorded at {!init} *)
  epoch : int;  (** fencing epoch from the manifest ([0] pre-replication) *)
  versions : int array;  (** per-shard recovered versions *)
  logs : Commit_log.t array;
      (** per-shard logs holding the replayed deltas (real footprints) *)
  report : report;
}

val open_store :
  ?io:Fsio.t ->
  ?repair:bool ->
  ?follower:bool ->
  root:string ->
  unit ->
  (opened, Error.t) result
(** Open every shard and merge: load DEFS, cross-check the manifest
    assignment against a recomputed partition, replay each shard's
    journal with two-phase resolution, and cross-check the version
    vector (every decided gid must be applied by every participant
    whose journal still spans it). With [repair] (the writer's open):
    torn tails are truncated on disk and resolved-committed dangling
    prepares are closed with a [Mark], so later opens need not
    re-consult the decision shard and rotation cannot strand a decide
    other shards still depend on. Leave [repair] off for read-only
    inspection, as with {!Recovery.open_store}.

    [follower] (default [false]) opens journals that were {e shipped}
    rather than written locally, where shards progress unevenly: before
    resolution, each shard's record list is trimmed to the {e consistent
    cut} — the longest per-shard prefix under which no decided
    cross-shard gid is missing a participant's prepare — iterated to a
    fixed point. A leader's own journals never need this (every
    participant prepare is fsynced before the decide), so the flag
    exists for {!Replica} opens and promotion; with [repair] the cut is
    also made physical (journals truncated), which is how promotion
    turns a shipped journal set into a coherent writable store. *)

val read_manifest :
  ?io:Fsio.t ->
  root:string ->
  unit ->
  (int * int * int * (string * int) list, Error.t) result
(** [(shard_count, base, epoch, relation→shard assignment)] from the
    manifest — what a replica needs to mirror the layout without
    loading any shard. *)

val read_epoch : ?io:Fsio.t -> root:string -> unit -> (int, Error.t) result
(** The manifest's current fencing epoch — the cheap probe a sharded
    writer makes under each shard lock to notice it has been deposed. *)

val set_epoch : ?io:Fsio.t -> root:string -> int -> (unit, Error.t) result
(** Atomically rewrite the manifest with a new epoch, preserving shard
    count, base and assignment. Promotion's fencing step; call while
    holding every shard lock. *)
