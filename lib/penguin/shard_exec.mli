(** A fixed pool of OCaml 5 worker domains with per-lane FIFO queues —
    the execution substrate of the sharded engine.

    Each shard is pinned to one {e lane} (lane = shard id mod pool
    size), and every task submitted to a lane runs on that lane's
    domain in submission order. Per-shard serialization therefore comes
    for free — two commits against the same shard never race — while
    commits on different lanes run genuinely in parallel. The
    cross-shard coordinator uses {!hold} to quiesce the lanes of a
    commit's participant set: a barrier task parks each lane so nothing
    can slip onto those shards while the coordinator stages, journals,
    and publishes the merged delta. *)

type t

val create : domains:int -> t
(** Spawn [domains] (≥ 1) worker domains. *)

val size : t -> int

val lane_of : t -> int -> int
(** The lane a shard id maps to: [shard mod size]. *)

type 'a promise

val submit : t -> lane:int -> (unit -> 'a) -> 'a promise
(** Enqueue the thunk on the lane's queue (lane ids are taken mod
    {!size}). @raise Invalid_argument after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task ran; re-raises the task's exception (with its
    backtrace) if it raised. *)

val run : t -> lane:int -> (unit -> 'a) -> 'a
(** [submit] then [await]. *)

val depth : t -> lane:int -> int
(** Tasks currently queued (not yet started) on a lane — the queue
    depth the per-shard stats report. *)

val hold : t -> lanes:int list -> (unit -> 'a) -> 'a
(** Park every listed lane (deduplicated, mod {!size}) on a barrier,
    run the thunk on the {e caller's} domain while they are parked, then
    release them. While parked, a lane processes nothing, so the thunk
    owns the parked lanes' shards exclusively. Must not be called from
    inside a pool task (a lane parking itself would deadlock); the
    sharded engine's coordinator runs on the client thread. *)

val shutdown : t -> unit
(** Drain: waits for queued tasks, stops the workers, joins the
    domains. Idempotent. *)
