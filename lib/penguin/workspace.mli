(** The PENGUIN workspace: a structural schema, a database, and a catalog
    of view objects with their definition-time translators.

    This is the system facade the examples and the CLI drive: define
    objects by pruning the expansion tree, choose translators by dialog,
    query, and update — with every update request going through the
    four-step pipeline of {!Vo_core.Engine}. *)

open Relational
open Structural
open Viewobject

type t = {
  graph : Schema_graph.t;
  db : Database.t;
  objects : (string * Definition.t) list;
  translators : (string * Vo_core.Translator_spec.t) list;
  log : Commit_log.t;
      (** append-only audit/replay trail of committed updates; what
          {!Session} runs optimistic concurrency control against *)
}

val create : Schema_graph.t -> t
(** Workspace over an empty database with the graph's relations. *)

val version : t -> int
(** Latest committed version ({!Commit_log.version} of the log). *)

val with_db : t -> Database.t -> t
(** Swap the database wholesale. The swap has no delta, so it is
    recorded as a {!Commit_log.barrier}: sessions begun earlier must
    rebase. *)

val run_sql : t -> string -> (t * Sql.answer list, string) result
(** Execute a SQL-ish script against the workspace database. *)

val index_connections : t -> t
(** Build a secondary index on both endpoints of every structural
    connection (the attribute lists instantiation and integrity
    maintenance look up by). Purely a performance choice — results are
    identical with or without; see the E4 index ablation in
    EXPERIMENTS.md. *)

val define_object :
  ?metric:Metric.t ->
  t ->
  name:string ->
  pivot:string ->
  keep:(string * string list) list ->
  (t, string) result
(** Generate the expansion tree for the pivot and prune it
    ({!Viewobject.Generate.prune}); install the result. A permissive
    default translator is installed alongside until a dialog replaces
    it. *)

val define_full_object :
  ?metric:Metric.t -> t -> name:string -> pivot:string -> (t, string) result

val find_object : t -> string -> (Definition.t, string) result

val choose_translator :
  t -> string -> Vo_core.Dialog.answerer ->
  (t * Vo_core.Dialog.event list, string) result
(** Run the definition-time dialog for the named object and install the
    resulting translator. *)

val set_translator : t -> string -> Vo_core.Translator_spec.t -> t
val translator_of : t -> string -> (Vo_core.Translator_spec.t, string) result

val query :
  t -> string -> Vo_query.condition -> (Instance.t list, string) result

val instances : t -> string -> (Instance.t list, string) result
(** All instances of the named object. *)

val update :
  ?validation:Vo_core.Global_validation.mode ->
  t -> string -> Vo_core.Request.t -> t * Vo_core.Engine.outcome
(** Apply an update request to the named object under its installed
    translator (stage + singleton group commit). On commit the
    workspace database advances and the commit log gains an entry; on
    rollback both are unchanged. Unknown object names yield a rejected
    outcome. [validation] is forwarded to
    {!Vo_core.Engine.commit_group}. *)

val oql : t -> string -> string -> (Instance.t list, string) result
(** [oql ws object query]: run a textual {!Viewobject.Oql} query. *)

(** {1 Materialized view-object cache}

    A {!Viewobject.Cache.t} can ride along a workspace lineage: attach
    it once, then either pull ({!sync_cache} after obtaining a new
    workspace value — what {!Session.commit} and {!Recovery.open_store}
    do when handed a cache) or push ({!subscribe_cache}, fed by every
    successful engine group commit in the process). The two compose:
    a push-applied commit leaves only the position to fix, which the
    next {!sync_cache} does without replaying. *)

val attach_cache : ?mode:Cache.mode -> t -> Cache.t
(** A cache on this workspace's database with every installed object
    registered, positioned at {!version}. Entries build lazily on first
    read (or eagerly via {!Viewobject.Cache.warm}). *)

val sync_cache : t -> Cache.t -> unit
(** Bring the cache to this workspace's state: replay the commit-log
    deltas since the cache's position as one composed net delta
    (patching only affected entries), or invalidate when the history is
    hidden (a barrier), rewound, or contradicts the cached state. *)

val subscribe_cache : Cache.t -> Vo_core.Engine.subscription
(** Push wiring: patch the cache from every successful group commit
    whose pre state is (physically) the cache's database; commits
    against other states are ignored — a later {!sync_cache} settles
    them. Remember to {!Vo_core.Engine.unsubscribe} when discarding the
    cache. *)

val check_consistency : t -> (unit, string) result
