(** The injectable filesystem seam under the durability layer.

    Everything {!Journal}, {!Recovery} and {!Store.save_file} do to disk
    goes through a record of five primitive operations, so tests can
    substitute implementations that crash at chosen points — after a
    partial write, before an fsync, before a rename — and assert that
    recovery restores a consistent state. The primitives are deliberately
    coarse (whole-content writes over open/write/close triples): each one
    is a distinct injection point with a well-defined on-disk effect.

    Failures are typed ({!Error.Io}): each carries the primitive, the
    path, and a transient flag classified from the errno
    ({!Error.of_unix}), which is what {!Resilience.retry} routes on.
    Beyond crash points, {!Fault} wraps any [t] with seeded transient,
    torn-write, byte-corrupting, or hard faults at per-operation rates —
    the harness behind the [@fault-suite] property tests. *)

type t = {
  read : string -> (string option, Error.t) result;
      (** Whole-file read; [Ok None] when the file does not exist. *)
  read_from :
    path:string -> off:int -> len:int option -> (string option, Error.t) result;
      (** Positioned read: the bytes of the file starting at byte [off],
          at most [len] of them when given (to end of file otherwise).
          [Ok None] when the file does not exist; [Ok (Some "")] when
          [off] is at or past the end — the two cases a tailer must
          distinguish (journal gone vs. no news yet). This is what lets
          a replica poll a leader's journal without re-reading the whole
          file each round. *)
  write : path:string -> append:bool -> string -> (unit, Error.t) result;
      (** Write the full content (create; truncate or append). Makes no
          durability promise — pair with {!field-sync}. *)
  sync : string -> (unit, Error.t) result;
      (** fsync the file (or directory) at the path. *)
  rename : src:string -> dst:string -> (unit, Error.t) result;
      (** Atomic within a filesystem (POSIX rename). *)
  remove : string -> (unit, Error.t) result;
}

val default : t
(** The real filesystem (Unix-backed). *)

val atomic_write : t -> path:string -> string -> (unit, Error.t) result
(** Crash-safe whole-file replacement: write a staging file next to
    [path] (named uniquely per call, so concurrent writers never share
    one), fsync it, rename over [path], fsync the directory. A crash at
    any point leaves either the old or the new content at [path], never
    a mixture. *)

val lock_path : string -> string
(** The lock-file path guarding [path]: [path ^ ".lock"]. *)

val with_lock :
  ?deadline_ns:float ->
  ?clock:Resilience.Clock.t ->
  string ->
  (unit -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** Run the function while holding an exclusive advisory lock on
    {!lock_path}[ path] (created on demand). Serializes cross-process
    read-modify-write sequences against the file at [path] — e.g. the
    CLI's open-store → commit → persist. Without [deadline_ns],
    acquisition blocks until the current holder releases (the PR 3
    behaviour); with it, acquisition polls a non-blocking lock with a
    short growing backoff and gives up with {!Error.Deadline_exceeded}
    once [clock] (default the real one) passes the absolute deadline —
    a slow or dead-but-undetected holder costs a bounded wait, not a
    hang. The lock is released when the function returns, and by the OS
    if the process dies inside it. Advisory: every writer must take it;
    plain readers may go without (a reader racing a writer sees at
    worst a torn journal tail, which replay discards in memory).

    The lock file is always derived from the guarded path ({!lock_path}
    — [path ^ ".lock"]), never a fixed name: a sharded store locks each
    shard's own [SHARD_<i>.lock], so single-shard commits on different
    shards never contend. *)

val with_locks :
  ?deadline_ns:float ->
  ?clock:Resilience.Clock.t ->
  string list ->
  (unit -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** Hold the locks of several paths at once (nested {!with_lock}s),
    acquiring in sorted path order after deduplication. {b Lock-ordering
    rule}: every process that takes more than one of a store's shard
    locks must acquire them in ascending shard id — this function
    enforces it by sorting, and shard file names are zero-padded so
    lexicographic path order {e is} shard-id order. Two cross-shard
    committers then always request their common locks in the same
    order, which makes deadlock impossible; a single-shard commit takes
    only its own shard's lock and never waits on an unrelated shard. *)

(** Seeded injection of non-crash faults into any {!t}.

    Where the crash harness (test_recovery) kills the process at chosen
    I/O points, this wrapper makes I/O {e fail and continue}: the
    faulted operation returns a typed {!Error.Io} and the caller's
    retry/breaker logic must cope. Draws come from a private
    deterministic generator — same seed, same operation sequence, same
    faults — so every property test names its seed and reproduces
    exactly. *)
module Fault : sig
  type kind =
    | Transient
        (** fail with a transient [Io] {e before} touching the disk —
            the operation has no effect and an identical retry may
            succeed *)
    | Hard
        (** fail with a non-transient [Io] before touching the disk —
            what feeds the circuit breaker *)
    | Torn
        (** writes only: persist a strict prefix of the content, then
            fail with a transient [Io] — a torn append whose device
            reported the error; replay sees a checksum-invalid tail.
            Non-write operations degrade to [Transient]. *)
    | Corrupt
        (** writes only: persist the full content with one byte
            flipped, then fail with a transient [Io] — detected
            corruption on the wire. Non-write operations degrade to
            [Transient]. *)

  type op = [ `Read | `Write | `Sync | `Rename | `Remove ]

  val inject :
    seed:int ->
    rate:float ->
    kind:kind ->
    ?ops:op list ->
    t ->
    t
  (** Wrap [t] so each operation in [ops] (default: all five) fails
      with probability [rate] (0..1) and kind [kind]; non-selected
      operations and non-firing draws pass through untouched. Each
      injected fault increments the [fsio.injected_faults] counter. *)
end
