(** The injectable filesystem seam under the durability layer.

    Everything {!Journal}, {!Recovery} and {!Store.save_file} do to disk
    goes through a record of five primitive operations, so tests can
    substitute implementations that crash at chosen points — after a
    partial write, before an fsync, before a rename — and assert that
    recovery restores a consistent state. The primitives are deliberately
    coarse (whole-content writes over open/write/close triples): each one
    is a distinct injection point with a well-defined on-disk effect. *)

type t = {
  read : string -> (string option, string) result;
      (** Whole-file read; [Ok None] when the file does not exist. *)
  write : path:string -> append:bool -> string -> (unit, string) result;
      (** Write the full content (create; truncate or append). Makes no
          durability promise — pair with {!field-sync}. *)
  sync : string -> (unit, string) result;
      (** fsync the file (or directory) at the path. *)
  rename : src:string -> dst:string -> (unit, string) result;
      (** Atomic within a filesystem (POSIX rename). *)
  remove : string -> (unit, string) result;
}

val default : t
(** The real filesystem (Unix-backed). *)

val atomic_write : t -> path:string -> string -> (unit, string) result
(** Crash-safe whole-file replacement: write a staging file next to
    [path] (named uniquely per call, so concurrent writers never share
    one), fsync it, rename over [path], fsync the directory. A crash at
    any point leaves either the old or the new content at [path], never
    a mixture. *)

val lock_path : string -> string
(** The lock-file path guarding [path]: [path ^ ".lock"]. *)

val with_lock : string -> (unit -> ('a, string) result) -> ('a, string) result
(** Run the function while holding an exclusive advisory lock on
    {!lock_path}[ path] (created on demand; acquisition blocks until
    the current holder releases). Serializes cross-process
    read-modify-write sequences against the file at [path] — e.g. the
    CLI's open-store → commit → persist. The lock is released when the
    function returns, and by the OS if the process dies inside it.
    Advisory: every writer must take it; plain readers may go without
    (a reader racing a writer sees at worst a torn journal tail, which
    replay discards in memory). *)
