(** Shared Unix-domain socket plumbing for the network-facing layers
    ({!Shipper}, {!Server}): binding and accepting, whole-connection and
    streaming frame I/O, and the typed {!Error.Io} classification of
    socket faults — in one place, so torn-request handling behaves
    identically on every listener.

    Frames are the journal wire format ({!Journal.frame}: 4-byte BE
    length, 4-byte BE CRC-32, payload), which is what makes a truncated
    or mangled transport chunk indistinguishable from a torn journal
    tail: the checksum catches it, and the failure surfaces as a typed
    transient I/O error rather than partial data. *)

val max_frame_bytes : int
(** Upper bound on a single frame's payload (64 MiB). A length prefix
    past it is treated as corruption, not as an allocation request —
    the bound is what keeps a malformed frame from looking like a
    plausible multi-gigabyte read. *)

val io_error : op:Error.io_op -> path:string -> string -> Unix.error -> Error.t
(** Classify a [Unix.Unix_error] from a socket syscall into a typed
    {!Error.Io} via {!Error.of_unix} — the single classification point
    both the shipper and the server use. *)

val write_all : Unix.file_descr -> string -> unit
(** Write the whole string, looping over short writes.
    @raise Unix.Unix_error on socket failure. *)

val read_all : Unix.file_descr -> string
(** Read to EOF (the connection-per-request pattern: the peer shuts
    down its write side to mark the end of its request).
    @raise Unix.Unix_error on socket failure. *)

val listen : sock:string -> (Unix.file_descr, Error.t) result
(** Bind and listen on a Unix-domain socket path, unlinking any stale
    socket file first. *)

val connect : sock:string -> (Unix.file_descr, Error.t) result
(** Connect to a Unix-domain socket path. *)

(** Incremental frame decoding over a byte stream — what a long-lived
    connection needs where {!Journal.decode_frames} over a complete
    buffer does not suffice: the stream must distinguish "frame not
    complete yet, keep buffering" from "complete but checksum-invalid,
    the connection is poisoned". *)
module Stream : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> int -> unit
  (** Append the first [len] bytes of the buffer to the stream. *)

  val pending : t -> bool
  (** Buffered bytes remain that {!next} has not consumed (complete or
      not) — whether a drained event loop should call {!next} again. *)

  val next : t -> [ `Frame of string | `Awaiting | `Corrupt of string ]
  (** Decode the next frame off the stream. [`Awaiting]: the bytes so
      far are a valid prefix of a frame — wait for more. [`Corrupt]: a
      complete frame failed its CRC, or the length prefix exceeds
      {!max_frame_bytes} or is negative — the stream cannot be resynced
      and the connection should be answered in-band and closed. *)
end

val serve_oneshot :
  ?max_requests:int ->
  sock:string ->
  handle:(string -> string list * [ `Continue | `Quit ]) ->
  on_torn:(unit -> string list) ->
  unit ->
  (int, Error.t) result
(** The connection-per-request accept loop {!Shipper} runs: accept,
    {!read_all} the request, decode its frames, and answer. A request
    that is exactly one clean frame is passed to [handle], which
    returns the response payloads (each sent as one frame) and whether
    to keep serving; anything else — torn, empty, or trailing bytes —
    is answered in-band with [on_torn ()] and the connection dropped,
    without killing the accept loop. A client dying mid-exchange
    likewise drops only its own connection. Returns the number of
    requests served once [handle] says [`Quit] or [max_requests]
    (default: unbounded) is reached. *)

val oneshot_exchange :
  sock:string -> string -> ((int * string) list, Error.t) result
(** The matching client side: connect, send the payload as one frame,
    shut down the write side, read the response to EOF, and return its
    clean frames ({!Journal.decode_frames} offsets and payloads).
    Failures — including a response with torn trailing bytes — are
    typed transient I/O errors, which is what lets a caller's
    poll/retry discipline absorb a server dying at any byte. *)
