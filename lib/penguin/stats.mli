(** The [penguin stats] workload and its renderings.

    A CLI process is short-lived, so a metrics registry scraped at exit
    would be empty unless something ran first. [penguin stats] therefore
    drives a small, representative slice of traffic through every
    instrumented layer — engine updates, a clean session commit, a
    forced OCC rebase, a durable store round-trip with journal append,
    rotation and a torn-tail repair, a sharded-engine batch (lane
    commits, a coordinator cross-shard commit, and the per-shard
    breakdowns), plus one full integrity sweep — and then renders the
    registry. The same functions back the CLI and
    the observability tests, so what the tests parse is exactly what
    the CLI prints. *)

val exercise : ?updates:int -> unit -> (unit, string) result
(** Run the representative workload against the university fixture
    ([updates] grade changes through the engine, default 8). Purely
    in-memory except for a temporary store under the system temp
    directory, which is removed before returning. Metrics accumulate in
    the global {!Obs.Metrics} registry (enable it first); trace spans
    flow to whatever sink is installed. *)

val table : unit -> string
(** The registry as an aligned human-readable table. *)

val json : unit -> Obs.Json.t
(** The registry as JSON (see {!Obs.Metrics.to_json}). *)
