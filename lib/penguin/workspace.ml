open Relational
open Structural
open Viewobject

type t = {
  graph : Schema_graph.t;
  db : Database.t;
  objects : (string * Definition.t) list;
  translators : (string * Vo_core.Translator_spec.t) list;
  log : Commit_log.t;
}

let ( let* ) = Result.bind

let create graph =
  {
    graph;
    db = Schema_graph.create_database graph;
    objects = [];
    translators = [];
    log = Commit_log.empty;
  }

let version ws = Commit_log.version ws.log

let with_db ws db =
  (* A wholesale swap has no delta: sessions begun earlier must rebase. *)
  { ws with db; log = Commit_log.barrier ws.log "database swapped" }

let run_sql ws script =
  let* db, answers = Sql.run_script ws.db script in
  let log =
    if db == ws.db then ws.log else Commit_log.barrier ws.log "sql script"
  in
  Ok ({ ws with db; log }, answers)

let index_connections ws =
  let db =
    List.fold_left
      (fun db (c : Structural.Connection.t) ->
        let add db rel attrs =
          match Database.create_index db rel attrs with
          | Ok db -> db
          | Error _ -> db
        in
        let db = add db c.Structural.Connection.target c.Structural.Connection.target_attrs in
        add db c.Structural.Connection.source c.Structural.Connection.source_attrs)
      ws.db
      (Schema_graph.connections ws.graph)
  in
  { ws with db }

let set_assoc key v l =
  if List.mem_assoc key l then
    List.map (fun (k, old) -> if k = key then k, v else k, old) l
  else l @ [ key, v ]

let install ws vo =
  let name = vo.Definition.name in
  {
    ws with
    objects = set_assoc name vo ws.objects;
    translators =
      set_assoc name
        (Vo_core.Translator_spec.permissive ~object_name:name)
        ws.translators;
  }

let define_object ?(metric = Metric.default) ws ~name ~pivot ~keep =
  let tree = Generate.tree metric ws.graph ~pivot in
  let* vo = Generate.prune ws.graph tree ~name ~keep in
  Ok (install ws vo)

let define_full_object ?(metric = Metric.default) ws ~name ~pivot =
  let* vo = Generate.full metric ws.graph ~name ~pivot in
  Ok (install ws vo)

let find_object ws name =
  match List.assoc_opt name ws.objects with
  | Some vo -> Ok vo
  | None -> Error (Fmt.str "no view object named %s" name)

let set_translator ws name spec =
  { ws with translators = set_assoc name spec ws.translators }

let translator_of ws name =
  match List.assoc_opt name ws.translators with
  | Some spec -> Ok spec
  | None -> Error (Fmt.str "no translator for view object %s" name)

let choose_translator ws name answerer =
  let* vo = find_object ws name in
  let spec, events = Vo_core.Dialog.choose ws.graph vo answerer in
  Ok (set_translator ws name spec, events)

let query ws name condition =
  let* vo = find_object ws name in
  Ok (Vo_query.run ws.db vo condition)

let instances ws name = query ws name Vo_query.C_true

let reject_outcome request e =
  {
    Vo_core.Engine.request_kind = Vo_core.Request.kind_name request;
    ops = [];
    result = Transaction.reject e;
  }

let update ?validation ws name request =
  match find_object ws name, translator_of ws name with
  | Error e, _ | _, Error e -> ws, reject_outcome request e
  | Ok vo, Ok spec -> (
      let request_kind = Vo_core.Request.kind_name request in
      match
        Vo_core.Engine.stage ~base_version:(version ws) ws.graph ws.db vo spec
          request
      with
      | Error (Vo_core.Engine.Translation_rejected reason) ->
          ws, reject_outcome request reason
      | Error (Vo_core.Engine.Application_failed { ops; reason; failed_op }) ->
          ( ws,
            {
              Vo_core.Engine.request_kind;
              ops;
              result = Transaction.Rolled_back { reason; failed_op };
            } )
      | Ok staged -> (
          match Vo_core.Engine.commit_group ?validation ws.graph ws.db [ staged ] with
          | Ok (db, delta) ->
              let log =
                Commit_log.append ws.log ~delta
                  ~kind:(Fmt.str "%s on %s" request_kind name)
              in
              ( { ws with db; log },
                {
                  Vo_core.Engine.request_kind;
                  ops = staged.Vo_core.Engine.ops;
                  result = Transaction.Committed db;
                } )
          | Error rejection ->
              let result =
                match rejection with
                | Vo_core.Engine.Group_op_failed { reason; failed_op; _ } ->
                    Transaction.Rolled_back { reason; failed_op }
                | Vo_core.Engine.Group_validation_failed { reason; _ } ->
                    Transaction.reject reason
                | Vo_core.Engine.Group_conflict _ ->
                    Transaction.reject
                      (Vo_core.Engine.group_rejection_reason rejection)
              in
              ( ws,
                {
                  Vo_core.Engine.request_kind;
                  ops = staged.Vo_core.Engine.ops;
                  result;
                } )))

let oql ws name query =
  let* vo = find_object ws name in
  Oql.run ws.db vo query

(* --- materialized view-object cache ---------------------------------- *)

let attach_cache ?mode ws =
  let cache = Cache.create ?mode ws.graph ~db:ws.db in
  List.iter (fun (_, vo) -> Cache.register cache vo) ws.objects;
  Cache.set_position cache (version ws);
  cache

let sync_cache ws cache =
  if Cache.db cache == ws.db then
    (* Already on this state (a push subscriber applied the commits, or
       nothing happened): only the bookkeeping position can lag. *)
    Cache.set_position cache (version ws)
  else begin
    let v = version ws in
    (if Cache.position cache > v then
       (* The cache is ahead of this workspace's history: a fork or a
          rewind; nothing to replay forward, start over. *)
       Cache.invalidate_all cache ~db:ws.db
     else
       (* Catch up over the logged commits since the cache's position,
          composed into one net delta; any barrier in between (database
          swap, raw SQL, truncated history) hides changes, so the cache
          must be rebuilt. A same-version workspace with a different
          database is a fork at equal length — the empty net delta would
          lie, and the composed delta of a diverged branch contradicts
          the cached old images; [Cache.apply_delta] invalidates on that
          contradiction. *)
       let rec net acc = function
         | [] -> Some acc
         | { Commit_log.change = Commit_log.Delta d; _ } :: rest ->
             net (Delta.compose acc d) rest
         | { Commit_log.change = Commit_log.Barrier _; _ } :: _ -> None
       in
       match net Delta.empty (Commit_log.entries_since ws.log (Cache.position cache)) with
       | Some d when not (Delta.is_empty d) -> Cache.apply_delta cache ~post:ws.db d
       | Some _ | None -> Cache.invalidate_all cache ~db:ws.db);
    Cache.set_position cache v
  end

let subscribe_cache cache =
  Vo_core.Engine.subscribe (fun ~pre ~post delta ->
      (* Only commits against the cache's exact state are applicable;
         anything else (another workspace in the process, a lagging
         cache) is left for the pull path to resolve. *)
      if pre == Cache.db cache then Cache.apply_delta cache ~post delta)

let check_consistency ws =
  Vo_core.Global_validation.check_consistency ws.graph ws.db
