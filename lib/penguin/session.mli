(** Snapshot sessions with optimistic concurrency control (OCC).

    A session captures a workspace snapshot and its commit-log version
    ({!begin_}); view-object requests then {!queue} as staged updates —
    translated and trial-applied against the snapshot, but not
    published. {!commit} validates the batch against the workspace the
    caller presents {e now} (which may have advanced past the
    snapshot): if no delta committed since the session began overlaps
    the staged updates' read/write footprints, the whole batch group
    commits ({!Vo_core.Engine.commit_group}) with a single
    merged-delta validation pass; otherwise the session {e rebases} —
    the original requests are re-translated against the current state —
    and retries, a bounded number of times.

    Everything is a persistent value: concurrency is modelled by
    several sessions (or single-shot {!Workspace.update}s) advancing
    the same workspace between another session's [begin_] and
    [commit]. *)

open Relational

type t

val begin_ : ?max_queued:int -> Workspace.t -> t
(** Snapshot the workspace and record its version. [max_queued]
    (default: unbounded) is the session's admission bound: once that
    many updates are staged, further {!queue} calls are shed with
    {!Error.Busy} instead of growing the batch — a commit's cost (and
    its rebase blast radius) stays bounded under load. *)

val base_version : t -> int

type retry = Workspace.t -> (Vo_core.Request.t option, Error.t) result
(** Re-derive a request against a later workspace state, for rebases.
    [Ok None] means the request became a no-op (e.g. a concurrent
    commit already made the change) and should be dropped. *)

val queue :
  t -> string -> ?retry:retry -> Vo_core.Request.t -> (t, Error.t) result
(** Stage a request on the named object against the snapshot. Errors
    with {!Error.Invalid} on unknown objects, translation rejections,
    and ops that do not apply to the snapshot; with {!Error.Busy} when
    the session's admission bound is full. Queueing is O(1) — the
    arrival order is materialized once, at {!commit}. [retry] (default: replay the same request) is how
    a rebase re-derives this update against a newer state — a request
    embeds the instance image it was read from, so replaying it
    verbatim is rejected as stale whenever the rebase was actually
    needed; callers that can re-evaluate the originating edit should
    pass it. Queued updates writing the same key are committed in
    arrival order (see {!commit}). *)

val pending : t -> int
val staged : t -> Vo_core.Engine.staged list
val requests : t -> (string * Vo_core.Request.t) list
(** The queued [(object, request)] pairs, oldest first — what a rebase
    replays. *)

(** How the workspace has moved relative to the session's staged
    updates. *)
type divergence =
  | Clean  (** nothing committed since, or only non-overlapping deltas *)
  | Conflicting of Delta.conflict list
      (** a concurrent delta overlaps a staged footprint *)
  | Unknown_history
      (** a barrier (database swap, raw SQL) hides the history *)

val divergence : Workspace.t -> t -> divergence

type commit_stats = {
  version : int;  (** log version after the commit *)
  attempts : int;  (** staging rounds used (1 = no rebase) *)
  rebased : bool;
  committed : int;  (** updates applied (queued minus rebase no-ops) *)
}

val commit :
  ?validation:Vo_core.Global_validation.mode ->
  ?policy:Resilience.Policy.t ->
  ?clock:Resilience.Clock.t ->
  ?deadline_ns:float ->
  ?cache:Viewobject.Cache.t ->
  Workspace.t ->
  t ->
  (Workspace.t * commit_stats, Error.t) result
(** Commit the session's staged updates onto the given (current)
    workspace. [cache] (an attached {!Viewobject.Cache.t}) is
    {!Workspace.sync_cache}d to the resulting workspace on success, so
    reads through it stay equal to fresh instantiation while paying
    only for the entries the committed deltas touch.
    [policy] (default {!Resilience.Policy.occ}: 3 attempts,
    no backoff) bounds rebase rounds and paces them — cross-process
    callers pass a backoff policy so contending committers spread out;
    exhausting it is {!Error.Conflict} (retryable after reopening).
    [deadline_ns] (absolute, on [clock]) bounds the whole commit: a
    rebase round never starts past it, failing with
    {!Error.Deadline_exceeded}. Updates
    whose footprints conflict {e within} the session (the same tuple
    edited twice) are committed in arrival order: each conflict-free
    group goes through one merged-delta validation pass, and later
    groups are re-translated against its result. On success the
    returned workspace carries the new database and one commit-log
    entry per staged update. The empty session commits trivially with
    [attempts = 0]. *)
