open Relational

let src = Logs.Src.create "penguin.session" ~doc:"optimistic serving sessions"

module Log = (val Logs.src_log src : Logs.LOG)

module M = Obs.Metrics

let m_queue_depth =
  M.gauge ~help:"staged updates pending in the last-touched session"
    "session.queue_depth"

let m_queued = M.counter ~help:"updates queued into sessions" "session.queued"

let m_commits = M.counter ~help:"session commits completed" "session.commits"

let m_commit_ns =
  M.histogram ~help:"whole session commit, including rebases"
    "session.commit_ns"

let m_rebases =
  M.counter ~help:"session rebases (staged translations re-derived)"
    "session.rebases"

let m_rebase_conflict =
  M.counter ~help:"rebases caused by overlapping concurrent commits"
    "session.rebase_conflict"

let m_rebase_unknown =
  M.counter ~help:"rebases caused by a history barrier"
    "session.rebase_unknown_history"

let m_noop_drops =
  M.counter ~help:"updates dropped as no-ops during a rebase"
    "session.noop_drops"

let m_retries_exhausted =
  M.counter ~help:"session commits that gave up after the policy's attempts"
    "session.retries_exhausted"

let m_shed =
  M.counter ~help:"queue attempts shed by the session's admission bound"
    "session.shed"

let m_deadline_hits =
  M.counter ~help:"session commits abandoned at their deadline"
    "session.deadline_exceeded"

type retry = Workspace.t -> (Vo_core.Request.t option, Error.t) result

type entry = {
  name : string;
  retry : retry;
  st : Vo_core.Engine.staged;
}

type t = {
  snapshot : Workspace.t;
  base_version : int;
  (* Newest first: [queue] conses in O(1) and [commit] materializes the
     arrival order once ([entries]) — the old oldest-first list appended
     per queue, O(n^2) across a session. *)
  rev_entries : entry list;
  count : int;
  max_queued : int option;
}

let begin_ ?max_queued ws =
  {
    snapshot = ws;
    base_version = Workspace.version ws;
    rev_entries = [];
    count = 0;
    max_queued;
  }

let base_version s = s.base_version
let pending s = s.count
let entries s = List.rev s.rev_entries
let staged s = List.rev_map (fun e -> e.st) s.rev_entries

let requests s =
  List.rev_map (fun e -> e.name, e.st.Vo_core.Engine.request) s.rev_entries

let queue s name ?retry request =
  let retry =
    match retry with Some f -> f | None -> fun _ -> Ok (Some request)
  in
  match s.max_queued with
  | Some cap when s.count >= cap ->
      M.Counter.incr m_shed;
      Error
        (Error.Busy
           (Fmt.str
              "session: %d update(s) already queued (admission bound %d); \
               commit or begin a fresh session"
              s.count cap))
  | _ -> (
      let ws = s.snapshot in
      match Workspace.find_object ws name, Workspace.translator_of ws name with
      | Error e, _ | _, Error e -> Error (Error.invalid e)
      | Ok vo, Ok spec -> (
          match
            Vo_core.Engine.stage ~base_version:s.base_version ws.Workspace.graph
              ws.Workspace.db vo spec request
          with
          | Error e -> Error (Error.invalid (Vo_core.Engine.stage_error_reason e))
          | Ok st ->
              Log.debug (fun m ->
                  m "session@v%d: queued %s on %s (%d staged)" s.base_version
                    st.Vo_core.Engine.request_kind name (s.count + 1));
              M.Counter.incr m_queued;
              M.Gauge.set m_queue_depth (Float.of_int (s.count + 1));
              Ok
                {
                  s with
                  rev_entries = { name; retry; st } :: s.rev_entries;
                  count = s.count + 1;
                }))

type divergence =
  | Clean
  | Conflicting of Delta.conflict list
  | Unknown_history

let divergence ws s =
  match Commit_log.footprint_since ws.Workspace.log s.base_version with
  | None -> Unknown_history
  | Some fp -> (
      match
        List.concat_map
          (fun e -> Delta.conflicts_footprint e.st.Vo_core.Engine.reads fp)
          s.rev_entries
      with
      | [] -> Clean
      | cs -> Conflicting cs)

type commit_stats = {
  version : int;
  attempts : int;
  rebased : bool;
  committed : int;
}

(* Re-derive and re-stage [entries] against [ws]; entries whose retry
   reports a no-op are dropped. *)
let restage ws entries =
  List.fold_left
    (fun acc e ->
      Result.bind acc (fun s' ->
          match e.retry ws with
          | Error _ as err -> err
          | Ok None ->
              Log.debug (fun m ->
                  m "session rebase: %s update on %s became a no-op, dropping"
                    e.st.Vo_core.Engine.request_kind e.name);
              M.Counter.incr m_noop_drops;
              Ok s'
          | Ok (Some req) -> queue s' e.name ~retry:e.retry req))
    (Ok (begin_ ws))
    entries

let commit ?validation ?(policy = Resilience.Policy.occ)
    ?(clock = Resilience.Clock.real) ?deadline_ns ?cache ws s =
  let max_attempts = max 1 policy.Resilience.Policy.max_attempts in
  let past_deadline () =
    match deadline_ns with
    | None -> false
    | Some d -> clock.Resilience.Clock.now_ns () > d
  in
  (* The staged updates may conflict among themselves (the session
     edited the same tuple twice): partition them into conflict-free
     groups and commit the groups in arrival order, re-deriving later
     groups against the result of the earlier ones. A conflict-free
     session is a single group — one merged-delta validation pass. *)
  let rec commit_clean attempts rebased committed ws s =
    match Vo_core.Engine.plan_groups (staged s) with
    | [] ->
        Ok (ws, { version = Workspace.version ws; attempts; rebased; committed })
    | group :: _ -> (
        let now, later =
          List.partition (fun e -> List.memq e.st group) (entries s)
        in
        match
          Vo_core.Engine.commit_group ?validation ws.Workspace.graph
            ws.Workspace.db group
        with
        | Error rejection ->
            Error
              (Error.invalid (Vo_core.Engine.group_rejection_reason rejection))
        | Ok (db, _merged) ->
            let log =
              List.fold_left
                (fun log e ->
                  Commit_log.append log ~delta:e.st.Vo_core.Engine.delta
                    ~kind:
                      (Fmt.str "%s on %s" e.st.Vo_core.Engine.request_kind
                         e.name))
                ws.Workspace.log now
            in
            let ws' = { ws with Workspace.db; log } in
            let committed = committed + List.length now in
            if later = [] then (
              let version = Commit_log.version log in
              Log.info (fun m ->
                  m "session@v%d committed %d update(s) as v%d (%d \
                     attempt(s)%s)"
                    s.base_version committed version attempts
                    (if rebased then ", rebased" else ""));
              Ok (ws', { version; attempts; rebased; committed }))
            else
              Result.bind (restage ws' later)
                (commit_clean attempts rebased committed ws'))
  in
  let rebase cause s =
    M.Counter.incr m_rebases;
    Obs.Trace.with_span "session.rebase" ~tags:[ "cause", cause ] (fun () ->
        restage ws (entries s))
  in
  let rec attempt n rebased s =
    if past_deadline () then begin
      M.Counter.incr m_deadline_hits;
      Error
        (Error.Deadline_exceeded
           (Fmt.str
              "session commit: deadline exceeded after %d attempt(s); staged \
               at v%d, workspace at v%d"
              (n - 1) s.base_version (Workspace.version ws)))
    end
    else if n > max_attempts then begin
      M.Counter.incr m_retries_exhausted;
      Error
        (Error.Conflict
           (Fmt.str
              "session commit: conflicts persist after %d attempt(s); last \
               staged at v%d, workspace at v%d"
              max_attempts s.base_version (Workspace.version ws)))
    end
    else begin
      (* Pace rebase rounds by the policy (attempt 1 runs immediately).
         The default [Policy.occ] has no backoff — an in-process rebase
         re-derives deterministically — but cross-process callers pass a
         backoff policy so contending committers spread out. *)
      if n > 1 then
        clock.Resilience.Clock.sleep_ns
          (Resilience.Policy.backoff_ns policy ~attempt:(n - 1));
      match divergence ws s with
      | Clean -> commit_clean n rebased 0 ws s
      | Conflicting cs ->
          (* Concurrent commits overlap the session's footprint: the
             staged translations are stale. Rebase by re-deriving the
             original requests against the current state and retry. *)
          Log.info (fun m ->
              m "session@v%d: %d conflict(s) with v%d, rebasing (attempt %d): \
                 %a"
                s.base_version (List.length cs) (Workspace.version ws) n
                Fmt.(list ~sep:semi Delta.pp_conflict)
                cs);
          M.Counter.incr m_rebase_conflict;
          Result.bind (rebase "conflict" s) (attempt (n + 1) true)
      | Unknown_history ->
          (* A barrier (database swap, raw SQL) hides the concurrent
             deltas: conflict checking is impossible, so rebase
             unconditionally. *)
          Log.info (fun m ->
              m "session@v%d: history unknown since snapshot, rebasing \
                 (attempt %d)"
                s.base_version n);
          M.Counter.incr m_rebase_unknown;
          Result.bind (rebase "barrier" s) (attempt (n + 1) true)
    end
  in
  if s.rev_entries = [] then begin
    Option.iter (Workspace.sync_cache ws) cache;
    Ok
      ( ws,
        {
          version = Workspace.version ws;
          attempts = 0;
          rebased = false;
          committed = 0;
        } )
  end
  else
    Obs.Trace.with_span "session.commit"
      ~tags:[ "queued", string_of_int s.count ]
    @@ fun () ->
    M.time m_commit_ns @@ fun () ->
    let result = attempt 1 false s in
    (match result with
    | Ok (ws', stats) ->
        M.Counter.incr m_commits;
        M.Gauge.set m_queue_depth 0.;
        Obs.Trace.tag "attempts" (string_of_int stats.attempts);
        if stats.rebased then Obs.Trace.tag "rebased" "true";
        (* An attached cache follows the committed state: only the
           entries the committed deltas can influence are re-derived. *)
        Option.iter (Workspace.sync_cache ws') cache
    | Error _ -> ());
    result
