(** Bounded-cost responses to classified faults: retry with backoff and
    deadlines, admission control, and a circuit breaker into degraded
    read-only mode.

    Everything here routes on {!Error.retryable} / {!Error.breaker_fault}
    — the taxonomy decides {e whether} to retry or trip; this module
    decides {e how long} and {e how often}. Time is injectable
    ({!Clock}), so the property tests drive hours of backoff in
    microseconds, and every delay is derived from a seeded deterministic
    jitter — the same policy, seed and attempt always sleep the same
    nanoseconds, which is what makes the fault suite reproducible.

    Events flow into {!Obs.Metrics}: [resilience.retries] (sleeps
    taken), [resilience.giveups] (retryable error, attempts exhausted),
    [resilience.deadline_hits], [resilience.shed] (admission control),
    and the breaker's [breaker.trips] / [breaker.rejections] /
    [breaker.probes] / [breaker.closes] / [breaker.reopens]. *)

(** Injectable time: a monotonic-enough clock and a sleep. *)
module Clock : sig
  type t = {
    now_ns : unit -> float;
    sleep_ns : float -> unit;
  }

  val real : t
  (** Wall clock + [Unix.sleepf]. *)

  val instant : unit -> t
  (** A virtual clock starting at 0 whose [sleep_ns] advances [now_ns]
      without waiting — backoff-heavy tests run in microseconds while
      still observing exact schedules. Each call makes a fresh,
      independent clock. *)
end

(** Retry policies: bounded attempts, exponential backoff, seeded
    jitter. *)
module Policy : sig
  type t = {
    max_attempts : int;  (** total attempts, >= 1 (1 = no retry) *)
    base_delay_ns : float;  (** backoff before attempt 2 *)
    max_delay_ns : float;  (** cap on any single backoff *)
    multiplier : float;  (** growth per attempt (2.0 = doubling) *)
    jitter : float;
        (** 0..1: each delay is scaled by a deterministic factor drawn
            uniformly from [1-jitter, 1+jitter] *)
    seed : int;  (** jitter stream seed *)
  }

  val default : t
  (** 5 attempts, 1 ms base doubling to a 100 ms cap, 20% jitter,
      seed 0. *)

  val no_retry : t
  (** A single attempt; {!retry} degenerates to calling the function. *)

  val occ : t
  (** In-process OCC rebases: 3 attempts, no backoff. Re-deriving
      against an in-memory workspace is deterministic — sleeping cannot
      change the outcome, so the loop only needs a bound. *)

  val backoff_ns : t -> attempt:int -> float
  (** Delay after failed attempt [attempt] (1-based). Deterministic in
      [(policy, attempt)]: [base * multiplier^(attempt-1)], capped at
      [max_delay_ns], scaled by the seeded jitter factor. *)

  val schedule : t -> float list
  (** All [max_attempts - 1] backoff delays, in order — what the
      determinism property test asserts against. *)
end

val retry :
  ?policy:Policy.t ->
  ?clock:Clock.t ->
  ?deadline_ns:float ->
  ?label:string ->
  (unit -> ('a, Error.t) result) ->
  ('a, Error.t) result
(** Run the function, retrying {!Error.retryable} failures up to
    [policy.max_attempts] total attempts with the policy's backoff
    between them. Non-retryable errors return immediately. When
    [deadline_ns] (absolute, on [clock]) is given: an attempt never
    starts past the deadline, and a backoff that would overshoot it is
    not slept — both return {!Error.Deadline_exceeded} naming the last
    underlying error. [label] names the operation in the error message
    and the trace span tag. *)

(** Admission control: a bounded count of in-flight operations, with
    explicit shedding. *)
module Limiter : sig
  type t

  val create : ?label:string -> max_in_flight:int -> unit -> t

  val in_flight : t -> int

  val with_slot : t -> (unit -> ('a, Error.t) result) -> ('a, Error.t) result
  (** Run the function holding one slot; when all slots are taken,
      shed immediately with {!Error.Busy} (counted in
      [resilience.shed]) instead of queueing unboundedly. The slot is
      released however the function exits. *)

  val try_acquire : t -> (unit, Error.t) result
  (** Take one slot without scoping its release — for admission that
      outlives a call frame, like a commit parked on a flush window.
      Sheds with {!Error.Busy} (counted in [resilience.shed]) when all
      slots are taken; on [Ok] the caller owes exactly one {!release}
      however the admitted work ends. *)

  val release : t -> unit
  (** Return a slot taken by {!try_acquire}. *)
end

(** A circuit breaker guarding the durable write path.

    Closed (normal) → [K] consecutive {!Error.breaker_fault} failures →
    Open: writes are rejected with {!Error.Busy} — the store is in
    {e degraded read-only mode} (reads never pass through the breaker
    and keep working). After [cooldown_ns] the next write becomes a
    Half_open probe: success re-closes the breaker, another durability
    fault re-opens it for a fresh cooldown. Transient faults, OCC
    conflicts and caller errors neither count toward tripping nor reset
    the count — only a success resets. *)
module Breaker : sig
  type t

  type state = Closed | Open | Half_open

  val create :
    ?label:string ->
    ?threshold:int ->
    ?cooldown_ns:float ->
    ?clock:Clock.t ->
    unit ->
    t
  (** [threshold] (default 3) consecutive durability faults trip;
      [cooldown_ns] (default 5 s) before a half-open probe. *)

  val state : t -> state
  (** The current state, accounting for cooldown expiry (an Open
      breaker whose cooldown has passed reports [Half_open]). *)

  val degraded : t -> bool
  (** [state t <> Closed] — the store is (or is probing out of)
      degraded read-only mode. *)

  val protect : t -> (unit -> ('a, Error.t) result) -> ('a, Error.t) result
  (** Run a write under the breaker. Open: reject with {!Error.Busy}
      without running. Half_open: run as the single probe. The
      result's {!Error.breaker_fault} classification drives the state
      machine. *)

  val reset : t -> unit
  (** Force-close (operator override / test isolation). *)
end
