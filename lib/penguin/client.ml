open Relational

let ( let* ) = Result.bind

type t = {
  fd : Unix.file_descr;
  stream : Netio.Stream.t;
  sock : string;
}

let sock t = t.sock

let connect ~sock =
  let* fd = Netio.connect ~sock in
  Ok { fd; stream = Netio.Stream.create (); sock }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t payload =
  try Ok (Netio.write_all t.fd (Journal.frame payload))
  with Unix.Unix_error (e, fn, arg) ->
    Error (Error.of_unix ~op:Error.Write ~path:t.sock ~fn ~arg e)

(* Read until the stream yields one complete frame; the server answers
   strictly in request order, so the next frame is always the response
   to the oldest outstanding request. *)
let recv_frame t =
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Netio.Stream.next t.stream with
    | `Frame payload -> Ok payload
    | `Corrupt msg -> Error (Error.corrupt ("client: " ^ msg))
    | `Awaiting -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, fn, arg) ->
            Error (Error.of_unix ~op:Error.Read ~path:t.sock ~fn ~arg e)
        | 0 ->
            Error
              (Error.io ~op:Error.Read ~path:t.sock ~transient:true
                 "client: server closed the connection mid-response")
        | k ->
            Netio.Stream.feed t.stream chunk k;
            go ())
  in
  go ()

(* [(error KIND RETRYABLE "msg")] -> the same typed error the server
   classified, so callers route on {!Error.retryable} unchanged. *)
let typed_error ~sock kind retryable msg =
  match kind with
  | "conflict" -> Error.conflict msg
  | "io" ->
      Error.io ~op:Error.Write ~path:sock
        ~transient:(retryable = Some true)
        msg
  | "corrupt" -> Error.corrupt msg
  | "busy" -> Error.busy msg
  | "deadline" -> Error.deadline_exceeded msg
  | _ -> Error.invalid msg

let recv t =
  let* payload = recv_frame t in
  let* doc =
    Result.map_error
      (fun m -> Error.corrupt ("client: bad response sexp: " ^ m))
      (Sexp.parse payload)
  in
  match doc with
  | Sexp.List (Sexp.Atom "ok" :: rest) -> Ok rest
  | Sexp.List [ Sexp.Atom "error"; Sexp.Atom kind; Sexp.Atom retryable;
                Sexp.Atom msg ] ->
      Error (typed_error ~sock:t.sock kind (bool_of_string_opt retryable) msg)
  | _ -> Error (Error.corrupt ("client: bad response: " ^ payload))

(* --- pipelined halves --------------------------------------------------- *)

let send_begin t = send t "(begin)"

let recv_begin t =
  let* rest = recv t in
  match rest with
  | [ Sexp.List [ Sexp.Atom "begun"; Sexp.Atom v ] ] -> (
      match int_of_string_opt v with
      | Some v -> Ok v
      | None -> Error (Error.corrupt "client: bad (begun V) version"))
  | _ -> Error (Error.corrupt "client: unexpected response to (begin)")

let send_queue t ~object_name stmt =
  send t
    (Sexp.to_string
       (Sexp.List [ Sexp.Atom "queue"; Sexp.Atom object_name; Sexp.Atom stmt ]))

let recv_queue t =
  let* rest = recv t in
  match rest with
  | [ Sexp.List [ Sexp.Atom "queued"; Sexp.Atom n ] ] -> (
      match int_of_string_opt n with
      | Some n -> Ok n
      | None -> Error (Error.corrupt "client: bad (queued N) count"))
  | _ -> Error (Error.corrupt "client: unexpected response to (queue)")

let send_commit t = send t "(commit)"

let recv_commit t =
  let* rest = recv t in
  match rest with
  | [ Sexp.List (Sexp.Atom "committed" :: _);
      Sexp.List (Sexp.Atom "versions" :: vs) ] ->
      let rec ints acc = function
        | [] -> Ok (List.rev acc)
        | Sexp.Atom v :: rest -> (
            match int_of_string_opt v with
            | Some v -> ints (v :: acc) rest
            | None -> Error (Error.corrupt "client: bad committed version"))
        | _ -> Error (Error.corrupt "client: bad (versions ..) shape")
      in
      ints [] vs
  | _ -> Error (Error.corrupt "client: unexpected response to (commit)")

(* --- blocking exchanges ------------------------------------------------- *)

let ping t =
  let* () = send t "(ping)" in
  let* rest = recv t in
  match rest with
  | [ Sexp.Atom "pong" ] -> Ok ()
  | _ -> Error (Error.corrupt "client: unexpected response to (ping)")

let begin_ t =
  let* () = send_begin t in
  recv_begin t

let queue t ~object_name stmt =
  let* () = send_queue t ~object_name stmt in
  recv_queue t

let commit t =
  let* () = send_commit t in
  recv_commit t

let oql t ~object_name query =
  let* () =
    send t
      (Sexp.to_string
         (Sexp.List [ Sexp.Atom "oql"; Sexp.Atom object_name; Sexp.Atom query ]))
  in
  let* rest = recv t in
  match rest with
  | [ Sexp.List [ Sexp.Atom "instances"; Sexp.Atom n ]; Sexp.Atom text ] -> (
      match int_of_string_opt n with
      | Some n -> Ok (n, text)
      | None -> Error (Error.corrupt "client: bad (instances N) count"))
  | _ -> Error (Error.corrupt "client: unexpected response to (oql)")

let stats t =
  let* () = send t "(stats)" in
  let* rest = recv t in
  match rest with
  | [ Sexp.List [ Sexp.Atom "stats" ]; Sexp.Atom json ] -> Ok json
  | _ -> Error (Error.corrupt "client: unexpected response to (stats)")

let shutdown t =
  let* () = send t "(shutdown)" in
  let* rest = recv t in
  match rest with
  | [ Sexp.Atom "bye" ] -> Ok ()
  | _ -> Error (Error.corrupt "client: unexpected response to (shutdown)")
