open Relational

module Io = Fsio

let ( let* ) = Result.bind

module M = Obs.Metrics

let m_append_ns =
  M.histogram ~help:"journal append: frame + write (+ fsync)"
    "journal.append_ns"

let m_appends = M.counter ~help:"journal appends (commit batches)" "journal.appends"
let m_fsyncs = M.counter ~help:"journal fsyncs" "journal.fsyncs"
let m_replays = M.counter ~help:"journal replays" "journal.replays"

let m_replayed_records =
  M.counter ~help:"commit records parsed by replays" "journal.replayed_records"

let m_torn_repairs =
  M.counter ~help:"torn tails truncated away" "journal.torn_repairs"

let m_rotations =
  M.counter ~help:"journal rotations into a fresh snapshot" "journal.rotations"

let atom = Sexp.atom
let l = Sexp.list

type t = {
  path : string;
  io : Fsio.t;
}

let create ?(io = Fsio.default) path = { path; io }
let path t = t.path
let journal_path store = store ^ ".journal"

(* --- record payloads (S-expressions) --------------------------------- *)

let int_atom i = atom (string_of_int i)

let int_of_sexp e =
  let* a = Sexp.as_atom e in
  match int_of_string_opt a with
  | Some i -> Ok i
  | None -> Error (Fmt.str "journal: bad integer %s" a)

let key_to_sexp key = l (atom "key" :: List.map Store.value_to_sexp key)

let key_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | Sexp.Atom "key" :: vs ->
      List.fold_left
        (fun acc v ->
          let* ks = acc in
          let* k = Store.value_of_sexp v in
          Ok (ks @ [ k ]))
        (Ok []) vs
  | _ -> Error "journal: bad key"

let change_to_sexp (key, change) =
  match change with
  | Delta.Added t -> l [ atom "add"; key_to_sexp key; Store.tuple_to_sexp t ]
  | Delta.Removed t -> l [ atom "del"; key_to_sexp key; Store.tuple_to_sexp t ]
  | Delta.Updated { before; after } ->
      l
        [ atom "upd"; key_to_sexp key; Store.tuple_to_sexp before;
          Store.tuple_to_sexp after ]

let change_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | [ Sexp.Atom "add"; key; row ] ->
      let* key = key_of_sexp key in
      let* t = Store.tuple_of_sexp row in
      Ok (key, Delta.Added t)
  | [ Sexp.Atom "del"; key; row ] ->
      let* key = key_of_sexp key in
      let* t = Store.tuple_of_sexp row in
      Ok (key, Delta.Removed t)
  | [ Sexp.Atom "upd"; key; before; after ] ->
      let* key = key_of_sexp key in
      let* before = Store.tuple_of_sexp before in
      let* after = Store.tuple_of_sexp after in
      Ok (key, Delta.Updated { before; after })
  | _ -> Error "journal: bad change"

let delta_to_sexps d =
  List.map
    (fun (rel, changes) ->
      l (atom "rel" :: atom rel :: List.map change_to_sexp changes))
    (Delta.bindings d)

let delta_of_sexps items =
  let* bindings =
    List.fold_left
      (fun acc e ->
        let* bs = acc in
        let* items = Sexp.as_list e in
        match items with
        | Sexp.Atom "rel" :: Sexp.Atom rel :: changes ->
            let* changes =
              List.fold_left
                (fun acc c ->
                  let* cs = acc in
                  let* c = change_of_sexp c in
                  Ok (cs @ [ c ]))
                (Ok []) changes
            in
            Ok (bs @ [ rel, changes ])
        | _ -> Error "journal: bad relation changes")
      (Ok []) items
  in
  Ok (Delta.of_bindings bindings)

let entry_to_sexp (e : Commit_log.entry) =
  let change =
    match e.Commit_log.change with
    | Commit_log.Delta d -> l (atom "delta" :: delta_to_sexps d)
    | Commit_log.Barrier reason -> l [ atom "barrier"; atom reason ]
  in
  l
    [ atom "entry"; int_atom e.Commit_log.version;
      l [ atom "kind"; atom e.Commit_log.kind ]; change ]

let entry_of_sexp e =
  let* items = Sexp.as_list e in
  match items with
  | [ Sexp.Atom "entry"; version; Sexp.List [ Sexp.Atom "kind"; Sexp.Atom kind ];
      change ] ->
      let* version = int_of_sexp version in
      let* change =
        let* items = Sexp.as_list change in
        match items with
        | Sexp.Atom "delta" :: rels ->
            let* d = delta_of_sexps rels in
            Ok (Commit_log.Delta d)
        | [ Sexp.Atom "barrier"; Sexp.Atom reason ] ->
            Ok (Commit_log.Barrier reason)
        | _ -> Error "journal: bad entry change"
      in
      Ok { Commit_log.version; kind; change }
  | _ -> Error "journal: bad entry"

(* Header format 2 adds the leader epoch for replication fencing; a
   format-1 header (every journal written before epochs existed) reads
   back as epoch 0, so old stores open unchanged. *)
let header_payload ~base ~epoch =
  Sexp.to_string
    (l
       [ atom "penguin-journal"; atom "2"; l [ atom "base"; int_atom base ];
         l [ atom "epoch"; int_atom epoch ] ])

let header_of_payload payload =
  let* doc = Sexp.parse payload in
  let* items = Sexp.as_list doc in
  match items with
  | [ Sexp.Atom "penguin-journal"; Sexp.Atom "1"; Sexp.List [ Sexp.Atom "base"; base ] ] ->
      let* base = int_of_sexp base in
      Ok (base, 0)
  | [ Sexp.Atom "penguin-journal"; Sexp.Atom "2"; Sexp.List [ Sexp.Atom "base"; base ];
      Sexp.List [ Sexp.Atom "epoch"; epoch ] ] ->
      let* base = int_of_sexp base in
      let* epoch = int_of_sexp epoch in
      Ok (base, epoch)
  | _ -> Error "journal: bad header record"

let commit_payload entries =
  Sexp.to_string (l (atom "commit" :: List.map entry_to_sexp entries))

(* Two-phase cross-shard commit records. A [prepare] carries the gid,
   the full participant set, and this shard's entries; a [decide] on the
   decision shard (the lowest participant id) is the global commit
   point; a [mark] closes the gid on a participant so replay applies the
   held entries without consulting the decision shard. *)
type record =
  | Commit of Commit_log.entry list
  | Prepare of {
      gid : string;
      shards : int list;
      entries : Commit_log.entry list;
    }
  | Decide of string
  | Mark of string

let record_payload = function
  | Commit entries -> commit_payload entries
  | Prepare { gid; shards; entries } ->
      Sexp.to_string
        (l
           (atom "prepare" :: atom gid
           :: l (atom "shards" :: List.map int_atom shards)
           :: List.map entry_to_sexp entries))
  | Decide gid -> Sexp.to_string (l [ atom "decide"; atom gid ])
  | Mark gid -> Sexp.to_string (l [ atom "mark"; atom gid ])

let entries_of_sexps items =
  List.fold_left
    (fun acc e ->
      let* es = acc in
      let* e = entry_of_sexp e in
      Ok (es @ [ e ]))
    (Ok []) items

let record_of_payload payload =
  let* doc = Sexp.parse payload in
  let* items = Sexp.as_list doc in
  match items with
  | Sexp.Atom "commit" :: entries ->
      let* entries = entries_of_sexps entries in
      Ok (Commit entries)
  | Sexp.Atom "prepare" :: Sexp.Atom gid
    :: Sexp.List (Sexp.Atom "shards" :: shards) :: entries ->
      let* shards =
        List.fold_left
          (fun acc s ->
            let* ss = acc in
            let* s = int_of_sexp s in
            Ok (ss @ [ s ]))
          (Ok []) shards
      in
      let* entries = entries_of_sexps entries in
      Ok (Prepare { gid; shards; entries })
  | [ Sexp.Atom "decide"; Sexp.Atom gid ] -> Ok (Decide gid)
  | [ Sexp.Atom "mark"; Sexp.Atom gid ] -> Ok (Mark gid)
  | _ -> Error "journal: bad commit record"

(* --- framing ---------------------------------------------------------- *)

(* Every record is [4-byte BE payload length | 4-byte BE CRC-32 of the
   payload | payload]. A record whose length field runs past the end of
   the file, or whose checksum does not match, marks the start of a torn
   tail: everything before it is trusted, everything from it on is
   discarded (a crash mid-append can only tear the end of the file). *)

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (8 + len) in
  Bytes.set_int32_be b 0 (Int32.of_int len);
  Bytes.set_int32_be b 4 (Crc32.digest payload);
  Bytes.blit_string payload 0 b 8 len;
  Bytes.unsafe_to_string b

(* [(offset, payload) list, clean_bytes, torn_bytes] — each payload is
   tagged with the byte offset its frame starts at, so a tailer can
   resume from [clean_bytes] without re-reading from the header. *)
let decode_frames ?(off0 = 0) content =
  let n = String.length content in
  let rec go off acc =
    if off >= n then List.rev acc, off0 + off, 0
    else if off + 8 > n then List.rev acc, off0 + off, n - off
    else
      let len = Int32.to_int (String.get_int32_be content off) in
      if len < 0 || off + 8 + len > n then List.rev acc, off0 + off, n - off
      else
        let payload = String.sub content (off + 8) len in
        if not (Int32.equal (Crc32.digest payload) (String.get_int32_be content (off + 4)))
        then List.rev acc, off0 + off, n - off
        else go (off + 8 + len) ((off0 + off, payload) :: acc)
  in
  go 0 []

(* --- operations ------------------------------------------------------- *)

let initialize ?(epoch = 0) t ~base =
  Fsio.atomic_write t.io ~path:t.path (frame (header_payload ~base ~epoch))

let append_record t ?(sync = true) record =
  Obs.Trace.with_span "journal.append" ~tags:[ "sync", string_of_bool sync ]
  @@ fun () ->
  M.time m_append_ns @@ fun () ->
  M.Counter.incr m_appends;
  let* () =
    t.io.Fsio.write ~path:t.path ~append:true (frame (record_payload record))
  in
  if sync then begin
    M.Counter.incr m_fsyncs;
    t.io.Fsio.sync t.path
  end
  else Ok ()

let append t ?sync entries =
  if entries = [] then Ok () else append_record t ?sync (Commit entries)

type replay = {
  base : int;
  epoch : int;
  entries : Commit_log.entry list;
  trail : record list;
  framed : (int * record) list;
  records : int;
  clean_bytes : int;
  torn_bytes : int;
}

(* Decode the non-header payloads of a journal, naming the record that
   fails ([index] is 0-based in replay order, matching [framed]). *)
let decode_trail ~path framed =
  let rec go i acc = function
    | [] -> Ok (List.rev acc)
    | (off, payload) :: rest -> (
        match record_of_payload payload with
        | Ok r -> go (i + 1) ((off, r) :: acc) rest
        | Error m ->
            Error
              (Error.corrupt_record ~path ~record:i
                 (Fmt.str "%s (checksummed record %d at byte %d)" m i off)))
  in
  go 0 [] framed

let replay t =
  Obs.Trace.with_span "journal.replay" @@ fun () ->
  M.Counter.incr m_replays;
  let* content = t.io.Fsio.read t.path in
  match content with
  | None -> Ok None
  | Some content -> (
      let frames, clean_bytes, torn_bytes = decode_frames content in
      match frames with
      | [] ->
          Error
            (Error.corrupt_record ~path:t.path
               (Fmt.str "journal: unreadable header (%d byte(s), %d torn)"
                  clean_bytes torn_bytes))
      | (_, header) :: records ->
          let* base, epoch =
            Result.map_error
              (fun m -> Error.corrupt_record ~path:t.path m)
              (header_of_payload header)
          in
          let* framed = decode_trail ~path:t.path records in
          let trail = List.map snd framed in
          (* [entries] flattens only the plain commit records — the PR 3
             single-store semantics. Two-phase records are surfaced via
             [trail] and resolved by sharded recovery; a plain store
             never writes them. *)
          let entries =
            List.concat_map
              (function Commit es -> es | Prepare _ | Decide _ | Mark _ -> [])
              trail
          in
          M.Counter.add m_replayed_records (List.length records);
          Ok
            (Some
               {
                 base;
                 epoch;
                 entries;
                 trail;
                 framed;
                 records = List.length records;
                 clean_bytes;
                 torn_bytes;
               }))

(* Incremental tail read: the complete, checksum-valid frames starting
   at byte [off], without touching the bytes before it. *)
let tail t ~off =
  let* content = t.io.Fsio.read_from ~path:t.path ~off ~len:None in
  match content with
  | None -> Ok None
  | Some content ->
      let frames, clean, torn = decode_frames ~off0:off content in
      Ok (Some (frames, clean, torn))

(* Peek at the header record only (the first kilobyte is orders of
   magnitude more than a header frame needs). *)
let read_header t =
  let* content = t.io.Fsio.read_from ~path:t.path ~off:0 ~len:(Some 1024) in
  match content with
  | None -> Ok None
  | Some content -> (
      match decode_frames content with
      | (_, header) :: _, _, _ ->
          let* base, epoch =
            Result.map_error
              (fun m -> Error.corrupt_record ~path:t.path m)
              (header_of_payload header)
          in
          Ok (Some (base, epoch))
      | [], clean, torn ->
          Error
            (Error.corrupt_record ~path:t.path
               (Fmt.str "journal: unreadable header (%d byte(s), %d torn)"
                  clean torn)))

let truncate_torn t ~clean_bytes =
  let* content = t.io.Fsio.read t.path in
  match content with
  | None -> Error (Error.corrupt_record ~path:t.path "journal: vanished during repair")
  | Some content ->
      if clean_bytes > String.length content then
        Error (Error.corrupt_record ~path:t.path "journal: shrank during repair")
      else
        let* () =
          Fsio.atomic_write t.io ~path:t.path (String.sub content 0 clean_bytes)
        in
        M.Counter.incr m_torn_repairs;
        Ok ()

let rotate ?epoch t ~snapshot_path ~snapshot ~base =
  (* Snapshot first, then reset: a crash between the two leaves a newer
     snapshot under the old journal, and replay skips the entries the
     snapshot already contains (entry version <= snapshot version). *)
  Obs.Trace.with_span "journal.rotate" @@ fun () ->
  let* () = Fsio.atomic_write t.io ~path:snapshot_path snapshot in
  let* () = initialize ?epoch t ~base in
  M.Counter.incr m_rotations;
  Ok ()
