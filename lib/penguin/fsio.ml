type t = {
  read : string -> (string option, string) result;
  write : path:string -> append:bool -> string -> (unit, string) result;
  sync : string -> (unit, string) result;
  rename : src:string -> dst:string -> (unit, string) result;
  remove : string -> (unit, string) result;
}

let wrap f = try Ok (f ()) with
  | Unix.Unix_error (e, fn, arg) ->
      Error (Fmt.str "%s %s: %s" fn arg (Unix.error_message e))
  | Sys_error e -> Error e

let read_default path =
  if not (Sys.file_exists path) then Ok None
  else
    wrap (fun () ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic))))

let write_default ~path ~append content =
  wrap (fun () ->
      let flags =
        Unix.O_WRONLY :: Unix.O_CREAT
        :: (if append then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ])
      in
      let fd = Unix.openfile path flags 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let b = Bytes.unsafe_of_string content in
          let n = Bytes.length b in
          let written = ref 0 in
          while !written < n do
            written := !written + Unix.write fd b !written (n - !written)
          done))

let sync_default path =
  wrap (fun () ->
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.fsync fd))

let rename_default ~src ~dst = wrap (fun () -> Sys.rename src dst)

let remove_default path = wrap (fun () -> Sys.remove path)

let default =
  {
    read = read_default;
    write = write_default;
    sync = sync_default;
    rename = rename_default;
    remove = remove_default;
  }

let ( let* ) = Result.bind

(* Staging names must be unique per call: two concurrent writers of the
   same target sharing one tmp file can each publish the other's
   content while believing their own is on disk. *)
let tmp_seq = ref 0

let atomic_write io ~path content =
  incr tmp_seq;
  let tmp = Fmt.str "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_seq in
  let* () = io.write ~path:tmp ~append:false content in
  let* () = io.sync tmp in
  let* () = io.rename ~src:tmp ~dst:path in
  (* Make the rename itself durable: sync the containing directory.
     Tolerated to fail — some filesystems refuse fsync on a directory
     fd, and the rename's atomicity does not depend on it. *)
  (match io.sync (Filename.dirname path) with Ok () | Error _ -> ());
  Ok ()

let lock_path path = path ^ ".lock"

let with_lock path f =
  let* fd =
    wrap (fun () ->
        Unix.openfile (lock_path path)
          [ Unix.O_CREAT; Unix.O_RDWR; Unix.O_CLOEXEC ]
          0o644)
  in
  Fun.protect
    (* Closing the fd releases the lock (and the OS releases it if the
       process dies inside [f]). *)
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let* () = wrap (fun () -> Unix.lockf fd Unix.F_LOCK 0) in
      f ())
