type t = {
  read : string -> (string option, Error.t) result;
  read_from :
    path:string -> off:int -> len:int option -> (string option, Error.t) result;
  write : path:string -> append:bool -> string -> (unit, Error.t) result;
  sync : string -> (unit, Error.t) result;
  rename : src:string -> dst:string -> (unit, Error.t) result;
  remove : string -> (unit, Error.t) result;
}

let wrap ~op ~path f =
  try Ok (f ()) with
  | Unix.Unix_error (e, fn, arg) -> Error (Error.of_unix ~op ~path ~fn ~arg e)
  | Sys_error e -> Error (Error.io ~op ~path e)

let read_default path =
  if not (Sys.file_exists path) then Ok None
  else
    wrap ~op:Error.Read ~path (fun () ->
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic))))

let read_from_default ~path ~off ~len =
  if not (Sys.file_exists path) then Ok None
  else
    wrap ~op:Error.Read ~path (fun () ->
        let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let size = (Unix.fstat fd).Unix.st_size in
            if off >= size then Some ""
            else begin
              let want =
                let avail = size - off in
                match len with None -> avail | Some l -> min l avail
              in
              ignore (Unix.lseek fd off Unix.SEEK_SET);
              let buf = Bytes.create want in
              let got = ref 0 in
              let eof = ref false in
              while (not !eof) && !got < want do
                let n = Unix.read fd buf !got (want - !got) in
                if n = 0 then eof := true else got := !got + n
              done;
              Some (Bytes.sub_string buf 0 !got)
            end))

let write_default ~path ~append content =
  wrap ~op:Error.Write ~path (fun () ->
      let flags =
        Unix.O_WRONLY :: Unix.O_CREAT
        :: (if append then [ Unix.O_APPEND ] else [ Unix.O_TRUNC ])
      in
      let fd = Unix.openfile path flags 0o644 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let b = Bytes.unsafe_of_string content in
          let n = Bytes.length b in
          let written = ref 0 in
          while !written < n do
            written := !written + Unix.write fd b !written (n - !written)
          done))

let sync_default path =
  wrap ~op:Error.Sync ~path (fun () ->
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> Unix.fsync fd))

let rename_default ~src ~dst =
  wrap ~op:Error.Rename ~path:dst (fun () -> Sys.rename src dst)

let remove_default path =
  wrap ~op:Error.Remove ~path (fun () -> Sys.remove path)

let default =
  {
    read = read_default;
    read_from = read_from_default;
    write = write_default;
    sync = sync_default;
    rename = rename_default;
    remove = remove_default;
  }

let ( let* ) = Result.bind

(* Staging names must be unique per call: two concurrent writers of the
   same target sharing one tmp file can each publish the other's
   content while believing their own is on disk. *)
let tmp_seq = ref 0

let atomic_write io ~path content =
  incr tmp_seq;
  let tmp = Fmt.str "%s.tmp.%d.%d" path (Unix.getpid ()) !tmp_seq in
  let* () = io.write ~path:tmp ~append:false content in
  let* () = io.sync tmp in
  let* () = io.rename ~src:tmp ~dst:path in
  (* Make the rename itself durable: sync the containing directory.
     Tolerated to fail — some filesystems refuse fsync on a directory
     fd, and the rename's atomicity does not depend on it. *)
  (match io.sync (Filename.dirname path) with Ok () | Error _ -> ());
  Ok ()

let lock_path path = path ^ ".lock"

(* Deadline-bounded acquisition polls a non-blocking lock: there is no
   portable "lockf with timeout", and poll periods here (1..50 ms,
   doubling) are dwarfed by the fsyncs the lock guards. *)
let acquire ?deadline_ns ?(clock = Resilience.Clock.real) ~path fd =
  match deadline_ns with
  | None -> wrap ~op:Error.Lock ~path (fun () -> Unix.lockf fd Unix.F_LOCK 0)
  | Some deadline ->
      let rec poll pause_ns =
        match
          try
            Unix.lockf fd Unix.F_TLOCK 0;
            `Locked
          with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES | Unix.EWOULDBLOCK), _, _)
            ->
              `Held
          | Unix.Unix_error (e, fn, arg) ->
              `Err (Error.of_unix ~op:Error.Lock ~path ~fn ~arg e)
        with
        | `Locked -> Ok ()
        | `Err e -> Error e
        | `Held ->
            let now = clock.Resilience.Clock.now_ns () in
            if now >= deadline then
              Error
                (Error.Deadline_exceeded
                   (Fmt.str "lock %s: held by another process past the deadline"
                      path))
            else begin
              clock.Resilience.Clock.sleep_ns
                (Float.min pause_ns (deadline -. now));
              poll (Float.min (pause_ns *. 2.) 5e7)
            end
      in
      poll 1e6

let with_lock ?deadline_ns ?clock path f =
  let lp = lock_path path in
  let* fd =
    wrap ~op:Error.Lock ~path:lp (fun () ->
        Unix.openfile lp [ Unix.O_CREAT; Unix.O_RDWR; Unix.O_CLOEXEC ] 0o644)
  in
  Fun.protect
    (* Closing the fd releases the lock (and the OS releases it if the
       process dies inside [f]). *)
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let* () = acquire ?deadline_ns ?clock ~path:lp fd in
      f ())

(* Multi-lock acquisition is nested [with_lock]s in the order given.
   Deadlock freedom is the caller's contract: every holder of more than
   one of these locks must request them in one agreed global order.
   For sharded stores that order is ascending shard id — shard paths
   are zero-padded ([SHARD_007]), so sorting the paths sorts the ids. *)
let with_locks ?deadline_ns ?clock paths f =
  let rec go = function
    | [] -> f ()
    | p :: rest -> with_lock ?deadline_ns ?clock p (fun () -> go rest)
  in
  go (List.sort_uniq String.compare paths)

module Fault = struct
  module M = Obs.Metrics

  let m_injected =
    M.counter ~help:"I/O faults injected by the test harness"
      "fsio.injected_faults"

  type kind = Transient | Hard | Torn | Corrupt

  type op = [ `Read | `Write | `Sync | `Rename | `Remove ]

  (* The same keyed 48-bit LCG the backoff jitter uses, but advanced as
     a stream: one draw per guarded operation, so the fault pattern is a
     pure function of (seed, operation sequence). *)
  type rng = { mutable s : int }

  let rng_create seed = { s = (seed * 0x9E3779B9 lxor 0x5DEECE66D) land 0xFFFFFFFFFFFF }

  let draw r =
    r.s <- ((r.s * 25214903917) + 11) land 0xFFFFFFFFFFFF;
    float_of_int (r.s lsr 16) /. 4294967296.

  (* A second independent draw for positions (torn cut, corrupt byte). *)
  let draw_int r n = if n <= 0 then 0 else int_of_float (draw r *. float_of_int n)

  let fail ~kind ~op ~path =
    M.Counter.incr m_injected;
    let transient, what =
      match kind with
      | Transient -> true, "injected transient fault"
      | Hard -> false, "injected non-transient fault"
      | Torn -> true, "injected torn write"
      | Corrupt -> true, "injected corrupting write"
    in
    Error (Error.io ~op ~path ~transient what)

  let flip_byte r content =
    if content = "" then content
    else
      let b = Bytes.of_string content in
      let i = draw_int r (Bytes.length b) in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
      Bytes.unsafe_to_string b

  let inject ~seed ~rate ~kind ?(ops = [ `Read; `Write; `Sync; `Rename; `Remove ])
      io =
    let r = rng_create seed in
    let fires () = rate > 0. && draw r < rate in
    let guarded op = List.mem op ops in
    {
      read =
        (fun path ->
          if guarded `Read && fires () then
            fail ~kind:(match kind with Torn | Corrupt -> Transient | k -> k)
              ~op:Error.Read ~path
          else io.read path);
      read_from =
        (fun ~path ~off ~len ->
          if guarded `Read && fires () then
            fail ~kind:(match kind with Torn | Corrupt -> Transient | k -> k)
              ~op:Error.Read ~path
          else io.read_from ~path ~off ~len);
      write =
        (fun ~path ~append content ->
          if guarded `Write && fires () then
            match kind with
            | Transient | Hard -> fail ~kind ~op:Error.Write ~path
            | Torn ->
                (* Persist a strict prefix, report a (transient) error:
                   the device tore the write and said so. Replay sees a
                   length/checksum-invalid tail. *)
                let cut = draw_int r (String.length content) in
                let (_ : (unit, Error.t) result) =
                  io.write ~path ~append (String.sub content 0 cut)
                in
                fail ~kind ~op:Error.Write ~path
            | Corrupt ->
                let (_ : (unit, Error.t) result) =
                  io.write ~path ~append (flip_byte r content)
                in
                fail ~kind ~op:Error.Write ~path
          else io.write ~path ~append content);
      sync =
        (fun path ->
          if guarded `Sync && fires () then
            fail ~kind:(match kind with Torn | Corrupt -> Transient | k -> k)
              ~op:Error.Sync ~path
          else io.sync path);
      rename =
        (fun ~src ~dst ->
          if guarded `Rename && fires () then
            fail ~kind:(match kind with Torn | Corrupt -> Transient | k -> k)
              ~op:Error.Rename ~path:dst
          else io.rename ~src ~dst);
      remove =
        (fun path ->
          if guarded `Remove && fires () then
            fail ~kind:(match kind with Torn | Corrupt -> Transient | k -> k)
              ~op:Error.Remove ~path
          else io.remove path);
    }
end
