(** Client side of the serving wire protocol ({!Server}).

    A connection multiplexes one framed request/response exchange at a
    time — except through the [send_*]/[recv_*] pairs, which split an
    exchange so a load driver can {e pipeline}: write [begin]+[queue]+
    [commit] frames on many connections first, then collect the three
    responses from each. Responses arrive strictly in request order, so
    the split is safe whenever the writes fit the socket buffers (small
    frames — the intended use).

    A server error response [(error KIND RETRYABLE "msg")] is
    reconstructed into a typed {!Error.t} of the same kind, so callers
    route on {!Error.retryable} exactly as they would against the
    in-process API. *)

type t

val connect : sock:string -> (t, Error.t) result
val close : t -> unit

val sock : t -> string

val ping : t -> (unit, Error.t) result

val begin_ : t -> (int, Error.t) result
(** Open a snapshot session; returns the server's committed version. *)

val queue : t -> object_name:string -> string -> (int, Error.t) result
(** Translate a upql statement against the session's snapshot and stage
    it; returns the session's pending count. *)

val commit : t -> (int list, Error.t) result
(** Commit the session's staged updates. Blocks until the server's
    flush window lands (or rejects) them; returns the committed
    versions in stage order. *)

val oql : t -> object_name:string -> string -> (int * string, Error.t) result
(** Run a read through the server's materialized cache; returns the
    instance count and the rendered text. *)

val stats : t -> (string, Error.t) result
(** The server's {!Obs.Metrics} registry as a JSON string. *)

val shutdown : t -> (unit, Error.t) result
(** Ask the server to flush its window and stop serving. *)

(** {2 Pipelined halves} *)

val send_begin : t -> (unit, Error.t) result
val recv_begin : t -> (int, Error.t) result
val send_queue : t -> object_name:string -> string -> (unit, Error.t) result
val recv_queue : t -> (int, Error.t) result
val send_commit : t -> (unit, Error.t) result
val recv_commit : t -> (int list, Error.t) result
