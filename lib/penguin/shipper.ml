open Relational

let src = Logs.Src.create "penguin.shipper" ~doc:"journal shipping over a socket"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let c_requests =
  M.counter ~help:"shipper requests served" "shipper.requests"

let c_request_errors =
  M.counter ~help:"shipper requests answered with an error status"
    "shipper.request_errors"

(* One request and one response per connection. The client writes a
   single frame holding a request sexp and shuts down its write side;
   the server answers with two frames — a status sexp, then the raw
   payload bytes — and closes. Frames reuse the journal's
   length+CRC-32 wire format, so a truncated or mangled transport
   chunk fails the same checksum a torn journal tail does. *)

let io_error ~op ~path fn e =
  Error.io ~op ~path (Fmt.str "%s: %s" fn (Unix.error_message e))

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off >= n then ()
    else
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let k = Unix.read fd chunk 0 (Bytes.length chunk) in
    if k = 0 then Buffer.contents buf
    else begin
      Buffer.add_subbytes buf chunk 0 k;
      go ()
    end
  in
  go ()

type request = Snapshot | Journal_from of int | Head | Quit

let request_payload = function
  | Snapshot -> "(snapshot)"
  | Head -> "(head)"
  | Journal_from off -> Fmt.str "(journal %d)" off
  | Quit -> "(quit)"

let request_of_payload s =
  let* doc = Sexp.parse s in
  match doc with
  | Sexp.List [ Sexp.Atom "snapshot" ] -> Ok Snapshot
  | Sexp.List [ Sexp.Atom "head" ] -> Ok Head
  | Sexp.List [ Sexp.Atom "quit" ] -> Ok Quit
  | Sexp.List [ Sexp.Atom "journal"; Sexp.Atom off ] -> (
      match int_of_string_opt off with
      | Some off when off >= 0 -> Ok (Journal_from off)
      | _ -> Error "shipper: bad journal offset")
  | _ -> Error "shipper: unknown request"

(* --- server ------------------------------------------------------------ *)

let handle feed request =
  match request with
  | Snapshot -> feed.Replica.fetch_snapshot ()
  | Head -> feed.Replica.fetch_head ()
  | Journal_from off -> feed.Replica.fetch_journal ~off
  | Quit -> Ok ""

let answer fd feed raw =
  M.Counter.incr c_requests;
  let respond status payload =
    write_all fd (Journal.frame status ^ Journal.frame payload)
  in
  let frames, _clean, torn = Journal.decode_frames raw in
  match frames, torn with
  | [ (_, payload) ], 0 -> (
      match request_of_payload payload with
      | Error m ->
          M.Counter.incr c_request_errors;
          respond (Fmt.str "(error %S)" m) "";
          `Continue
      | Ok request -> (
          (match handle feed request with
          | Ok payload -> respond "(ok)" payload
          | Error e ->
              M.Counter.incr c_request_errors;
              respond (Fmt.str "(error %S)" (Error.to_string e)) "");
          match request with Quit -> `Quit | _ -> `Continue))
  | _ ->
      M.Counter.incr c_request_errors;
      respond "(error \"shipper: torn request frame\")" "";
      `Continue

let serve ?io ?(max_requests = max_int) ~store ~sock () =
  let feed = Replica.file_feed ?io store in
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  match
    let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind srv (Unix.ADDR_UNIX sock);
    Unix.listen srv 16;
    Ok srv
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (io_error ~op:Error.Write ~path:sock fn e)
  | Error _ as e -> e
  | Ok srv ->
      Log.info (fun m -> m "shipping %s on %s" store sock);
      let rec loop served =
        if served >= max_requests then begin
          Unix.close srv;
          Ok served
        end
        else
          match Unix.accept srv with
          | exception Unix.Unix_error (e, fn, _) ->
              Unix.close srv;
              Error (io_error ~op:Error.Read ~path:sock fn e)
          | fd, _ ->
              (* A client failing mid-exchange must not kill the
                 server: drop the connection and keep accepting. *)
              let outcome =
                try answer fd feed (read_all fd)
                with Unix.Unix_error (e, fn, _) ->
                  Log.warn (fun m ->
                      m "shipper: dropped connection: %s: %s" fn
                        (Unix.error_message e));
                  `Continue
              in
              (try Unix.close fd with Unix.Unix_error _ -> ());
              (match outcome with
              | `Quit ->
                  Unix.close srv;
                  Ok (served + 1)
              | `Continue -> loop (served + 1))
      in
      loop 0

(* --- client ------------------------------------------------------------ *)

let exchange ~sock request =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX sock);
        write_all fd (Journal.frame (request_payload request));
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        read_all fd)
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (io_error ~op:Error.Read ~path:sock fn e)
  | raw -> (
      let frames, _clean, torn = Journal.decode_frames raw in
      match frames with
      | [ (_, status); (_, payload) ] when torn = 0 -> (
          let* doc =
            Result.map_error (Error.corrupt_record ~path:sock)
              (Sexp.parse status)
          in
          match doc with
          | Sexp.List [ Sexp.Atom "ok" ] -> Ok payload
          | Sexp.List [ Sexp.Atom "error"; Sexp.Atom m ] ->
              Error (Error.io ~op:Error.Read ~path:sock ~transient:true m)
          | _ ->
              Error
                (Error.corrupt_record ~path:sock "shipper: bad status frame"))
      | _ ->
          (* Truncated or mangled response: a transient transport
             fault — the replica's refetch discipline retries it. *)
          Error
            (Error.io ~op:Error.Read ~path:sock ~transient:true
               "shipper: torn response"))

let feed ~sock =
  {
    Replica.feed_label = "shipper:" ^ sock;
    fetch_snapshot = (fun () -> exchange ~sock Snapshot);
    fetch_journal = (fun ~off -> exchange ~sock (Journal_from off));
    fetch_head = (fun () -> exchange ~sock Head);
  }

let quit ~sock = Result.map (fun (_ : string) -> ()) (exchange ~sock Quit)
