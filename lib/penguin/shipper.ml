open Relational

let src = Logs.Src.create "penguin.shipper" ~doc:"journal shipping over a socket"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let c_requests =
  M.counter ~help:"shipper requests served" "shipper.requests"

let c_request_errors =
  M.counter ~help:"shipper requests answered with an error status"
    "shipper.request_errors"

(* One request and one response per connection. The client writes a
   single frame holding a request sexp and shuts down its write side;
   the server answers with two frames — a status sexp, then the raw
   payload bytes — and closes. The accept/frame loop and the typed
   classification of socket faults live in {!Netio}, shared with the
   serving front end; frames reuse the journal's length+CRC-32 wire
   format, so a truncated or mangled transport chunk fails the same
   checksum a torn journal tail does. *)

type request = Snapshot | Journal_from of int | Head | Quit

let request_payload = function
  | Snapshot -> "(snapshot)"
  | Head -> "(head)"
  | Journal_from off -> Fmt.str "(journal %d)" off
  | Quit -> "(quit)"

let request_of_payload s =
  let* doc = Sexp.parse s in
  match doc with
  | Sexp.List [ Sexp.Atom "snapshot" ] -> Ok Snapshot
  | Sexp.List [ Sexp.Atom "head" ] -> Ok Head
  | Sexp.List [ Sexp.Atom "quit" ] -> Ok Quit
  | Sexp.List [ Sexp.Atom "journal"; Sexp.Atom off ] -> (
      match int_of_string_opt off with
      | Some off when off >= 0 -> Ok (Journal_from off)
      | _ -> Error "shipper: bad journal offset")
  | _ -> Error "shipper: unknown request"

(* --- server ------------------------------------------------------------ *)

let handle feed request =
  match request with
  | Snapshot -> feed.Replica.fetch_snapshot ()
  | Head -> feed.Replica.fetch_head ()
  | Journal_from off -> feed.Replica.fetch_journal ~off
  | Quit -> Ok ""

let answer feed payload =
  M.Counter.incr c_requests;
  match request_of_payload payload with
  | Error m ->
      M.Counter.incr c_request_errors;
      [ Fmt.str "(error %S)" m; "" ], `Continue
  | Ok request -> (
      let reply =
        match handle feed request with
        | Ok payload -> [ "(ok)"; payload ]
        | Error e ->
            M.Counter.incr c_request_errors;
            [ Fmt.str "(error %S)" (Error.to_string e); "" ]
      in
      reply, match request with Quit -> `Quit | _ -> `Continue)

let serve ?io ?max_requests ~store ~sock () =
  let feed = Replica.file_feed ?io store in
  Log.info (fun m -> m "shipping %s on %s" store sock);
  Netio.serve_oneshot ?max_requests ~sock ~handle:(answer feed)
    ~on_torn:(fun () ->
      M.Counter.incr c_request_errors;
      [ "(error \"shipper: torn request frame\")"; "" ])
    ()

(* --- client ------------------------------------------------------------ *)

let exchange ~sock request =
  let* frames = Netio.oneshot_exchange ~sock (request_payload request) in
  match frames with
  | [ (_, status); (_, payload) ] -> (
      let* doc =
        Result.map_error (Error.corrupt_record ~path:sock) (Sexp.parse status)
      in
      match doc with
      | Sexp.List [ Sexp.Atom "ok" ] -> Ok payload
      | Sexp.List [ Sexp.Atom "error"; Sexp.Atom m ] ->
          Error (Error.io ~op:Error.Read ~path:sock ~transient:true m)
      | _ ->
          Error (Error.corrupt_record ~path:sock "shipper: bad status frame"))
  | _ ->
      (* Truncated or mangled response: a transient transport fault —
         the replica's refetch discipline retries it. *)
      Error
        (Error.io ~op:Error.Read ~path:sock ~transient:true
           "shipper: torn response")

let feed ~sock =
  {
    Replica.feed_label = "shipper:" ^ sock;
    fetch_snapshot = (fun () -> exchange ~sock Snapshot);
    fetch_journal = (fun ~off -> exchange ~sock (Journal_from off));
    fetch_head = (fun () -> exchange ~sock Head);
  }

let quit ~sock = Result.map (fun (_ : string) -> ()) (exchange ~sock Quit)
