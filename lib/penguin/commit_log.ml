open Relational

type change =
  | Delta of Delta.t
  | Barrier of string

type entry = {
  version : int;
  change : change;
  kind : string;
}

type t = {
  version : int;
  truncated : int;
  entries : entry list;  (* newest first *)
}

let empty = { version = 0; truncated = 0; entries = [] }

let of_version version = { version; truncated = version; entries = [] }

let version t = t.version

let truncated t = t.truncated

let length t = List.length t.entries

let append t ~delta ~kind =
  let version = t.version + 1 in
  { t with version; entries = { version; change = Delta delta; kind } :: t.entries }

let barrier t reason =
  let version = t.version + 1 in
  {
    t with
    version;
    entries = { version; change = Barrier reason; kind = reason } :: t.entries;
  }

let append_entry t (e : entry) =
  if e.version <> t.version + 1 then
    Error
      (Fmt.str "commit log: entry v%d cannot extend a log at v%d" e.version
         t.version)
  else Ok { t with version = e.version; entries = e :: t.entries }

let entries t = List.rev t.entries

let entries_since t since =
  let newer = List.filter (fun (e : entry) -> e.version > since) t.entries in
  let newer = List.rev newer in
  if since < t.truncated then
    {
      version = t.truncated;
      change = Barrier "history truncated";
      kind = "history truncated";
    }
    :: newer
  else newer

let footprint_since t since =
  List.fold_left
    (fun acc e ->
      match acc, e.change with
      | None, _ | _, Barrier _ -> None
      | Some fp, Delta d -> Some (Delta.footprint_union fp (Delta.footprint d)))
    (Some Delta.empty_footprint) (entries_since t since)

let pp_entry ppf e =
  match e.change with
  | Delta d ->
      Fmt.pf ppf "@[<v2>v%d %s (%d change(s)):@,%a@]" e.version e.kind
        (Delta.cardinal d) Delta.pp d
  | Barrier reason -> Fmt.pf ppf "v%d barrier: %s" e.version reason

let pp ppf t =
  Fmt.pf ppf "@[<v>commit log at v%d:@,%a@]" t.version
    Fmt.(list ~sep:cut pp_entry)
    (entries t)
