(* Shared socket plumbing for the network-facing layers: Shipper's
   connection-per-request loop and Server's long-lived streams both
   frame with the journal wire format and classify faults through the
   same typed seam, so torn-request handling lives in exactly one
   place. *)

let src = Logs.Src.create "penguin.netio" ~doc:"socket and frame plumbing"

module Log = (val Logs.src_log src : Logs.LOG)

let max_frame_bytes = 64 * 1024 * 1024

let io_error ~op ~path fn e = Error.of_unix ~op ~path ~fn ~arg:path e

let write_all fd s =
  let n = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off >= n then ()
    else
      let k = Unix.write fd b off (n - off) in
      go (off + k)
  in
  go 0

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let k = Unix.read fd chunk 0 (Bytes.length chunk) in
    if k = 0 then Buffer.contents buf
    else begin
      Buffer.add_subbytes buf chunk 0 k;
      go ()
    end
  in
  go ()

let listen ~sock =
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  match
    let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind srv (Unix.ADDR_UNIX sock);
    Unix.listen srv 64;
    srv
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (io_error ~op:Error.Write ~path:sock fn e)
  | srv -> Ok srv

let connect ~sock =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX sock)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (io_error ~op:Error.Read ~path:sock fn e)
  | fd -> Ok fd

module Stream = struct
  (* A growable byte buffer with a consumption offset; [next] compacts
     lazily when the consumed prefix dominates, so a long-lived
     connection's buffer stays proportional to its in-flight data. *)
  type t = {
    mutable buf : Bytes.t;
    mutable len : int;  (** valid bytes in [buf] *)
    mutable off : int;  (** consumed prefix *)
  }

  let create () = { buf = Bytes.create 4096; len = 0; off = 0 }

  let compact t =
    if t.off > 0 then begin
      Bytes.blit t.buf t.off t.buf 0 (t.len - t.off);
      t.len <- t.len - t.off;
      t.off <- 0
    end

  let feed t chunk k =
    if t.len + k > Bytes.length t.buf then begin
      compact t;
      if t.len + k > Bytes.length t.buf then begin
        let cap = max (t.len + k) (2 * Bytes.length t.buf) in
        let b = Bytes.create cap in
        Bytes.blit t.buf 0 b 0 t.len;
        t.buf <- b
      end
    end;
    Bytes.blit chunk 0 t.buf t.len k;
    t.len <- t.len + k

  let pending t = t.len > t.off

  let next t =
    let avail = t.len - t.off in
    if avail < 8 then `Awaiting
    else
      let len = Int32.to_int (Bytes.get_int32_be t.buf t.off) in
      if len < 0 || len > max_frame_bytes then
        `Corrupt (Fmt.str "frame length %d out of bounds" len)
      else if avail < 8 + len then `Awaiting
      else
        let payload = Bytes.sub_string t.buf (t.off + 8) len in
        if
          not
            (Int32.equal (Crc32.digest payload)
               (Bytes.get_int32_be t.buf (t.off + 4)))
        then `Corrupt "frame failed its checksum"
        else begin
          t.off <- t.off + 8 + len;
          if t.off = t.len then begin
            t.off <- 0;
            t.len <- 0
          end
          else if t.off > Bytes.length t.buf / 2 then compact t;
          `Frame payload
        end
end

let serve_oneshot ?(max_requests = max_int) ~sock ~handle ~on_torn () =
  match listen ~sock with
  | Error _ as e -> e
  | Ok srv ->
      let respond fd payloads =
        write_all fd (String.concat "" (List.map Journal.frame payloads))
      in
      let rec loop served =
        if served >= max_requests then begin
          Unix.close srv;
          Ok served
        end
        else
          match Unix.accept srv with
          | exception Unix.Unix_error (e, fn, _) ->
              Unix.close srv;
              Error (io_error ~op:Error.Read ~path:sock fn e)
          | fd, _ ->
              (* A client failing mid-exchange must not kill the
                 server: drop the connection and keep accepting. *)
              let outcome =
                try
                  let raw = read_all fd in
                  let frames, _clean, torn = Journal.decode_frames raw in
                  match frames, torn with
                  | [ (_, payload) ], 0 ->
                      let reply, verdict = handle payload in
                      respond fd reply;
                      verdict
                  | _ ->
                      respond fd (on_torn ());
                      `Continue
                with Unix.Unix_error (e, fn, _) ->
                  Log.warn (fun m ->
                      m "netio: dropped connection on %s: %s: %s" sock fn
                        (Unix.error_message e));
                  `Continue
              in
              (try Unix.close fd with Unix.Unix_error _ -> ());
              (match outcome with
              | `Quit ->
                  Unix.close srv;
                  Ok (served + 1)
              | `Continue -> loop (served + 1))
      in
      loop 0

let oneshot_exchange ~sock payload =
  match
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd (Unix.ADDR_UNIX sock);
        write_all fd (Journal.frame payload);
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        read_all fd)
  with
  | exception Unix.Unix_error (e, fn, _) ->
      Error (io_error ~op:Error.Read ~path:sock fn e)
  | raw -> (
      match Journal.decode_frames raw with
      | frames, _clean, 0 -> Ok frames
      | _, _, _ ->
          (* Truncated or mangled response: a transient transport fault
             the caller's retry discipline absorbs. *)
          Error
            (Error.io ~op:Error.Read ~path:sock ~transient:true
               "netio: torn response"))
