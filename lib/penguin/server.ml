open Relational

let src = Logs.Src.create "penguin.server" ~doc:"network serving front end"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let m_requests = M.counter ~help:"server requests answered" "server.requests"

let m_request_errors =
  M.counter ~help:"server requests answered with a typed error"
    "server.request_errors"

let m_connections =
  M.counter ~help:"client connections accepted" "server.connections"

let m_disconnects =
  M.counter ~help:"client connections closed or dropped" "server.disconnects"

let m_frame_errors =
  M.counter ~help:"connections dropped on a corrupt frame"
    "server.frame_errors"

let m_commits = M.counter ~help:"commit requests acked durable" "server.commits"

let m_updates =
  M.counter ~help:"staged updates committed through the server"
    "server.updates"

let m_conflicts =
  M.counter
    ~help:"parked commits rejected as window conflicts or validation culprits"
    "server.conflicts"

let m_dropped_parked =
  M.counter ~help:"parked commits dropped by a client disconnect"
    "server.dropped_parked"

let m_windows = M.counter ~help:"flush windows persisted" "server.windows"

let m_window_commits =
  M.histogram
    ~help:"parked commits batched per persisted flush window"
    ~bounds:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512. ]
    "server.window_commits"

let m_commit_ns =
  M.histogram ~help:"commit request latency, park to durable ack"
    "server.commit_ns"

let m_request_ns =
  M.histogram ~help:"request handling latency (excluding parked wait)"
    "server.request_ns"

let m_oql_ns = M.histogram ~help:"oql read latency" "server.oql_ns"

let m_flush_ns =
  M.histogram ~help:"whole flush: restage, merged commit, journal fsync"
    "server.flush_ns"

type config = {
  flush_window : int;
  flush_interval_ns : float;
  eager_flush : bool;
  max_parked : int;
  max_queued : int;
}

let default_config =
  {
    flush_window = 64;
    flush_interval_ns = 10e6;
    eager_flush = true;
    max_parked = 256;
    max_queued = 128;
  }

type stats = {
  requests : int;
  commits : int;
  windows : int;
}

type conn = {
  fd : Unix.file_descr;
  id : int;
  stream : Netio.Stream.t;
  mutable snapshot : Workspace.t option;  (** workspace at [(begin)] *)
  mutable sess : Session.t option;
  mutable parked : bool;
  mutable alive : bool;
}

type parked = {
  p_conn : conn;
  p_sess : Session.t;
  p_t0 : float;
}

(* Re-derive a parked session's staged updates against the current
   committed state. A session whose footprints are clean keeps its
   staged values verbatim (OCC: non-overlapping deltas commute); one
   that diverged rebases by re-translating its queued requests, and a
   request the new state rejects is a concurrency casualty — typed
   [Conflict], retryable from a fresh session. *)
let restage ws p =
  let s = p.p_sess in
  match Session.divergence ws s with
  | Session.Clean -> Ok (Session.staged s)
  | Session.Conflicting _ | Session.Unknown_history ->
      let base_version = Workspace.version ws in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (name, req) :: rest -> (
            match
              (Workspace.find_object ws name, Workspace.translator_of ws name)
            with
            | Error e, _ | _, Error e -> Error (Error.invalid e)
            | Ok vo, Ok spec -> (
                match
                  Vo_core.Engine.stage ~base_version ws.Workspace.graph
                    ws.Workspace.db vo spec req
                with
                | Error se ->
                    Error
                      (Error.conflict
                         (Fmt.str
                            "rebase against v%d: %s; begin a fresh session \
                             and retry"
                            base_version
                            (Vo_core.Engine.stage_error_reason se)))
                | Ok st -> go (st :: acc) rest))
      in
      go [] (Session.requests s)

let serve ?(io = Fsio.default) ?(config = default_config) ?limiter ?breaker
    ~store ~sock () =
  let limiter =
    match limiter with
    | Some l -> l
    | None ->
        Resilience.Limiter.create ~label:"server"
          ~max_in_flight:config.max_parked ()
  in
  let breaker =
    match breaker with
    | Some b -> b
    | None -> Resilience.Breaker.create ~label:("server:" ^ store) ()
  in
  (* Writes to a connection the client already closed must surface as
     EPIPE (handled per-connection), not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  M.enable ();
  (* One writer per store: the server owns the cross-process lock for
     its whole lifetime, so CLI commits wait (or hit their deadline)
     instead of racing the flush loop's reopen-free persists. *)
  Fsio.with_lock store @@ fun () ->
  let* ws0, report = Recovery.open_store ~io ~repair:true store in
  let epoch = report.Recovery.epoch in
  (* The server is the sole writer for its lifetime (it holds the store
     lock above), so it validates the journal once and appends
     incrementally — {!Recovery.persist}'s per-call replay would make
     every flush pay for the whole journal. *)
  let* appender =
    Recovery.Appender.create ~io ~breaker ~expect_epoch:epoch ~store ws0
  in
  let ws = ref ws0 in
  let cache = Workspace.attach_cache !ws in
  let* srv = Netio.listen ~sock in
  Log.info (fun m ->
      m "serving %s on %s (window %d, interval %.1f ms)" store sock
        config.flush_window
        (config.flush_interval_ns /. 1e6));
  let conns : conn list ref = ref [] in
  let window : parked list ref = ref [] (* newest first *) in
  let stop = ref false in
  let n_requests = ref 0 and n_commits = ref 0 and n_windows = ref 0 in
  let next_id = ref 0 in
  let kill conn =
    if conn.alive then begin
      conn.alive <- false;
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      if conn.parked then begin
        (* The client vanished while its commit was parked: drop the
           commit from the window — the rest of the batch still lands —
           and return its admission slot. *)
        window := List.filter (fun p -> p.p_conn != conn) !window;
        Resilience.Limiter.release limiter;
        conn.parked <- false;
        M.Counter.incr m_dropped_parked;
        Log.info (fun m ->
            m "conn %d: disconnected while parked; commit dropped" conn.id)
      end;
      M.Counter.incr m_disconnects
    end
  in
  let send conn payloads =
    if conn.alive then
      try
        Netio.write_all conn.fd
          (String.concat "" (List.map Journal.frame payloads))
      with Unix.Unix_error _ -> kill conn
  in
  let answer_error conn e =
    M.Counter.incr m_request_errors;
    send conn
      [
        Sexp.to_string
          (Sexp.List
             [
               Sexp.Atom "error";
               Sexp.Atom (Error.kind e);
               Sexp.Atom (string_of_bool (Error.retryable e));
               Sexp.Atom (Error.to_string e);
             ]);
      ]
  in
  (* --- the flush: one merged commit_group + one journal fsync -------- *)
  let persist_policy = { Resilience.Policy.default with max_attempts = 3 } in
  let flush reason =
    match List.rev !window with
    | [] -> ()
    | parked ->
        window := [];
        List.iter (fun p -> p.p_conn.parked <- false) parked;
        Obs.Trace.with_span "server.flush"
          ~tags:
            [ "reason", reason; "parked", string_of_int (List.length parked) ]
        @@ fun () ->
        M.time m_flush_ns @@ fun () ->
        let reject p e =
          Resilience.Limiter.release limiter;
          answer_error p.p_conn e
        in
        let cur = !ws in
        let base = Workspace.version cur in
        (* 1. Restage every parked session against the committed state;
           failures are per-request culprits, not window failures. *)
        let candidates =
          List.filter_map
            (fun p ->
              match restage cur p with
              | Ok staged -> Some (p, staged)
              | Error e ->
                  M.Counter.incr m_conflicts;
                  reject p e;
                  None)
            parked
        in
        (* 2. Plan one conflict-free batch: a commit with any staged
           update outside the first group collides with an earlier
           parked commit in this window and is answered [Conflict]. *)
        let winners, losers =
          match Vo_core.Engine.plan_groups (List.concat_map snd candidates) with
          | [] | [ _ ] -> candidates, []
          | first :: _ ->
              List.partition
                (fun (_, staged) ->
                  List.for_all (fun st -> List.memq st first) staged)
                candidates
        in
        List.iter
          (fun (p, _) ->
            M.Counter.incr m_conflicts;
            reject p
              (Error.conflict
                 "commit conflicts with an earlier commit in the same flush \
                  window; begin a fresh session and retry"))
          losers;
        (* 3. One merged-delta commit_group; a validation culprit is
           ejected (typed error) and the rest retried. *)
        let rec commit_batch winners =
          match winners with
          | [] -> None
          | _ -> (
              let batch = List.concat_map snd winners in
              match
                Vo_core.Engine.commit_group cur.Workspace.graph
                  cur.Workspace.db batch
              with
              | Ok (db, _merged) -> Some (db, winners)
              | Error rejection -> (
                  let reason =
                    Vo_core.Engine.group_rejection_reason rejection
                  in
                  let culprit_index =
                    match rejection with
                    | Vo_core.Engine.Group_op_failed { index; _ } -> Some index
                    | Vo_core.Engine.Group_validation_failed { culprit; _ } ->
                        culprit
                    | Vo_core.Engine.Group_conflict { right; _ } -> Some right
                  in
                  let owner_of i =
                    let rec walk k = function
                      | [] -> None
                      | (p, staged) :: rest ->
                          let k' = k + List.length staged in
                          if i < k' then Some p else walk k' rest
                    in
                    walk 0 winners
                  in
                  match Option.bind culprit_index owner_of with
                  | None ->
                      (* No culprit nameable: fail the whole batch. *)
                      List.iter
                        (fun (p, _) -> reject p (Error.invalid reason))
                        winners;
                      None
                  | Some culprit ->
                      M.Counter.incr m_conflicts;
                      reject culprit
                        (Error.invalid
                           (Fmt.str "rejected by the window's validation: %s"
                              reason));
                      commit_batch
                        (List.filter (fun (p, _) -> p != culprit) winners)))
        in
        (match commit_batch winners with
        | None -> ()
        | Some (db, winners) ->
            (* 4. Append one commit-log entry per update, remembering
               each commit's versions for its ack. *)
            let log = ref cur.Workspace.log in
            let acks =
              List.map
                (fun (p, staged) ->
                  let versions =
                    List.map
                      (fun st ->
                        log :=
                          Commit_log.append !log
                            ~delta:st.Vo_core.Engine.delta
                            ~kind:
                              (Fmt.str "%s on %s"
                                 st.Vo_core.Engine.request_kind
                                 st.Vo_core.Engine.object_name);
                        Commit_log.version !log)
                      staged
                  in
                  p, versions)
                winners
            in
            let ws' = { cur with Workspace.db; log = !log } in
            (* 5. One journal append + one fsync for the whole window,
               breaker-guarded; transient disk faults retry briefly. *)
            match
              Resilience.retry ~policy:persist_policy ~label:"server.persist"
                (fun () -> Recovery.Appender.append appender ~since:base ws')
            with
            | Error e ->
                (* Not durable — nothing is acked, nothing published. *)
                Log.warn (fun m ->
                    m "flush of %d commit(s) failed to persist: %s"
                      (List.length acks) (Error.to_string e));
                List.iter
                  (fun (p, _) ->
                    reject p (Error.with_context "durable append failed" e))
                  acks
            | Ok persisted ->
                ws := ws';
                Workspace.sync_cache !ws cache;
                incr n_windows;
                M.Counter.incr m_windows;
                M.Histogram.observe m_window_commits
                  (float_of_int (List.length acks));
                let now = M.now_ns () in
                List.iter
                  (fun (p, versions) ->
                    Resilience.Limiter.release limiter;
                    incr n_commits;
                    M.Counter.incr m_commits;
                    M.Counter.add m_updates (List.length versions);
                    M.Histogram.observe m_commit_ns (now -. p.p_t0);
                    send p.p_conn
                      [
                        Fmt.str "(ok (committed %d) (versions%s))"
                          (List.length versions)
                          (String.concat ""
                             (List.map
                                (fun v -> " " ^ string_of_int v)
                                versions));
                      ])
                  acks;
                (match persisted.Recovery.rotate_error with
                | None -> ()
                | Some e ->
                    Log.warn (fun m ->
                        m
                          "window durable, but journal rotation failed (a \
                           later flush retries): %s"
                          (Error.to_string e))))
  in
  (* --- request handling ---------------------------------------------- *)
  let handle_request conn payload =
    M.time m_request_ns @@ fun () ->
    match Sexp.parse payload with
    | Error m -> answer_error conn (Error.invalid ("bad request: " ^ m))
    | Ok (Sexp.List [ Sexp.Atom "ping" ]) -> send conn [ "(ok pong)" ]
    | Ok (Sexp.List [ Sexp.Atom "begin" ]) ->
        conn.snapshot <- Some !ws;
        conn.sess <- Some (Session.begin_ ~max_queued:config.max_queued !ws);
        send conn [ Fmt.str "(ok (begun %d))" (Workspace.version !ws) ]
    | Ok (Sexp.List [ Sexp.Atom "queue"; Sexp.Atom obj; Sexp.Atom stmt ]) -> (
        match conn.snapshot, conn.sess with
        | Some snap, Some sess -> (
            match Upql.requests snap ~object_name:obj stmt with
            | Error m -> answer_error conn (Error.invalid m)
            | Ok reqs -> (
                let rec add sess = function
                  | [] -> Ok sess
                  | r :: rest -> (
                      match Session.queue sess obj r with
                      | Ok s -> add s rest
                      | Error _ as e -> e)
                in
                match add sess reqs with
                | Error e -> answer_error conn e
                | Ok sess' ->
                    conn.sess <- Some sess';
                    send conn
                      [ Fmt.str "(ok (queued %d))" (Session.pending sess') ]))
        | _ ->
            answer_error conn (Error.invalid "no session: send (begin) first"))
    | Ok (Sexp.List [ Sexp.Atom "commit" ]) -> (
        match conn.sess with
        | None ->
            answer_error conn (Error.invalid "no session: send (begin) first")
        | Some sess ->
            conn.sess <- None;
            conn.snapshot <- None;
            if Session.pending sess = 0 then
              send conn [ "(ok (committed 0) (versions))" ]
            else if Resilience.Breaker.degraded breaker then
              answer_error conn
                (Error.busy
                   "store is in degraded read-only mode (circuit open): \
                    writes refused, reads still served")
            else (
              match Resilience.Limiter.try_acquire limiter with
              | Error e -> answer_error conn e
              | Ok () ->
                  conn.parked <- true;
                  window :=
                    { p_conn = conn; p_sess = sess; p_t0 = M.now_ns () }
                    :: !window;
                  (* The size trigger fires at park time, not at the
                     next loop head: with flush_window = 1 every commit
                     pays its own fsync (the group-commit baseline)
                     instead of riding a batch the event loop happened
                     to read in the same round. *)
                  if List.length !window >= config.flush_window then
                    flush "size"))
    | Ok (Sexp.List [ Sexp.Atom "oql"; Sexp.Atom obj; Sexp.Atom q ]) -> (
        M.time m_oql_ns @@ fun () ->
        match Viewobject.Cache.oql cache obj q with
        | Error m -> answer_error conn (Error.invalid m)
        | Ok instances ->
            let text =
              String.concat ""
                (List.map Viewobject.Instance.to_ascii instances)
            in
            send conn
              [
                Sexp.to_string
                  (Sexp.List
                     [
                       Sexp.Atom "ok";
                       Sexp.List
                         [
                           Sexp.Atom "instances";
                           Sexp.Atom
                             (string_of_int (List.length instances));
                         ];
                       Sexp.Atom text;
                     ]);
              ])
    | Ok (Sexp.List [ Sexp.Atom "stats" ]) ->
        send conn
          [
            Sexp.to_string
              (Sexp.List
                 [
                   Sexp.Atom "ok";
                   Sexp.List [ Sexp.Atom "stats" ];
                   Sexp.Atom (Obs.Json.to_string (M.to_json ()));
                 ]);
          ]
    | Ok (Sexp.List [ Sexp.Atom "shutdown" ]) ->
        (* Land whatever is parked before acknowledging the stop. *)
        flush "shutdown";
        send conn [ "(ok bye)" ];
        stop := true
    | Ok _ ->
        answer_error conn (Error.invalid (Fmt.str "unknown request: %s" payload))
  in
  (* Drain the complete frames a connection has buffered. A parked
     connection stops here: its commit is a sync point, and pipelined
     frames behind it wait for the window's ack. *)
  let process_conn conn =
    let rec go n =
      if (not conn.alive) || conn.parked || !stop then n
      else
        match Netio.Stream.next conn.stream with
        | `Awaiting -> n
        | `Corrupt msg ->
            (* The stream cannot be resynced: answer in-band, drop the
               connection, keep the accept loop. *)
            M.Counter.incr m_frame_errors;
            answer_error conn (Error.corrupt (Fmt.str "server: %s" msg));
            kill conn;
            n + 1
        | `Frame payload ->
            incr n_requests;
            M.Counter.incr m_requests;
            handle_request conn payload;
            go (n + 1)
    in
    go 0
  in
  let process_all () =
    List.fold_left
      (fun acc c -> acc + if c.alive then process_conn c else 0)
      0 !conns
  in
  let accept_new () =
    match Unix.accept srv with
    | exception Unix.Unix_error _ -> ()
    | fd, _ ->
        incr next_id;
        conns :=
          {
            fd;
            id = !next_id;
            stream = Netio.Stream.create ();
            snapshot = None;
            sess = None;
            parked = false;
            alive = true;
          }
          :: !conns;
        M.Counter.incr m_connections
  in
  let chunk = Bytes.create 65536 in
  let read_into conn =
    match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> kill conn
    | 0 -> kill conn
    | k -> Netio.Stream.feed conn.stream chunk k
  in
  let oldest_age now =
    match List.rev !window with [] -> 0. | p :: _ -> now -. p.p_t0
  in
  let rec loop () =
    let (_ : int) = process_all () in
    if List.length !window >= config.flush_window then flush "size"
    else if
      !window <> [] && oldest_age (M.now_ns ()) >= config.flush_interval_ns
    then flush "age";
    if not !stop then begin
      let timeout =
        if !window <> [] then
          if config.eager_flush then 0.
          else
            Float.max 0.0005
              ((config.flush_interval_ns -. oldest_age (M.now_ns ())) /. 1e9)
        else -1.
      in
      let fds =
        srv :: List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns
      in
      match Unix.select fds [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | [], _, _ when !window <> [] ->
          (* Input quiescent with commits parked: the group-commit
             moment — everything that was going to join this window has
             joined it. *)
          flush "quiesce";
          loop ()
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd == srv then accept_new ()
              else
                match List.find_opt (fun c -> c.fd == fd) !conns with
                | Some conn when conn.alive -> read_into conn
                | _ -> ())
            readable;
          conns := List.filter (fun c -> c.alive) !conns;
          loop ()
    end
  in
  loop ();
  List.iter (fun c -> if c.alive then kill c) !conns;
  (try Unix.close srv with Unix.Unix_error _ -> ());
  (try Unix.unlink sock with Unix.Unix_error _ -> ());
  Log.info (fun m ->
      m "served %d request(s), %d commit(s) over %d window(s)" !n_requests
        !n_commits !n_windows);
  Ok { requests = !n_requests; commits = !n_commits; windows = !n_windows }
