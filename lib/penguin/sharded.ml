open Relational
open Structural
open Viewobject

let src = Logs.Src.create "penguin.sharded" ~doc:"sharded serving engine"

module Log = (val Logs.src_log src : Logs.LOG)

let ( let* ) = Result.bind

module M = Obs.Metrics

let m_commits =
  M.counter ~help:"single-shard commits published on a lane" "shard.commits"

let m_cross =
  M.counter ~help:"cross-shard commits published by the coordinator"
    "shard.cross_commits"

let m_bounced =
  M.counter ~help:"updates bounced from a lane to the coordinator"
    "shard.bounced"

let c_commits i =
  M.counter ~help:"commits published by this shard" (Fmt.str "shard.%d.commits" i)

let c_appends i =
  M.counter ~help:"journal records appended by this shard"
    (Fmt.str "shard.%d.journal_appends" i)

let g_depth i =
  M.gauge ~help:"tasks queued on this shard's lane"
    (Fmt.str "shard.%d.queue_depth" i)

type durable = {
  root : string;
  journals : Journal.t array;
  io : Fsio.t;
  epoch : int;  (** manifest epoch this engine opened under *)
}

type t = {
  graph : Schema_graph.t;
  plan : Partition.plan;
  objects : (string * Definition.t) list;
  translators : (string * Vo_core.Translator_spec.t) list;
  db : Database.t Atomic.t;
  mutable feed : Commit_log.t;  (** global total order; under [publish] *)
  base : int;
  versions : int array;  (** shard s written only by lane s / coordinator *)
  logs : Commit_log.t array;
  pool : Shard_exec.t;
  publish : Mutex.t;
  coordinator : Mutex.t;
  wedged_ : bool Atomic.t;
  durable : durable option;
  gid_seed : string;
  gid_n : int Atomic.t;
  commits : int array;
  cross : int array;
  shard_commits : M.Counter.t array;
  shard_appends : M.Counter.t array;
  shard_depth : M.Gauge.t array;
}

let make ?domains ws plan ~base ~versions ~logs ~durable =
  let count = max 1 (Partition.count plan) in
  let domains =
    match domains with None -> count | Some d -> max 1 (min d count)
  in
  {
    graph = ws.Workspace.graph;
    plan;
    objects = ws.Workspace.objects;
    translators = ws.Workspace.translators;
    db = Atomic.make ws.Workspace.db;
    feed = ws.Workspace.log;
    base;
    versions;
    logs;
    pool = Shard_exec.create ~domains;
    publish = Mutex.create ();
    coordinator = Mutex.create ();
    wedged_ = Atomic.make false;
    durable;
    gid_seed =
      Fmt.str "%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6);
    gid_n = Atomic.make 0;
    commits = Array.make count 0;
    cross = Array.make count 0;
    shard_commits = Array.init count c_commits;
    shard_appends = Array.init count c_appends;
    shard_depth = Array.init count g_depth;
  }

let create ?domains ?max_shards ws =
  let plan = Partition.compute ?max_shards ws.Workspace.graph in
  let count = max 1 (Partition.count plan) in
  let base = Workspace.version ws in
  make ?domains ws plan ~base
    ~versions:(Array.make count base)
    ~logs:(Array.init count (fun _ -> Commit_log.of_version base))
    ~durable:None

let open_store ?(io = Fsio.default) ?domains ~root () =
  let* o = Shard_store.open_store ~io ~repair:true ~root () in
  let count = Partition.count o.Shard_store.plan in
  let journals =
    Array.init count (fun i ->
        Journal.create ~io
          (Journal.journal_path (Shard_store.shard_path ~root i)))
  in
  Ok
    (make ?domains o.Shard_store.ws o.Shard_store.plan ~base:o.Shard_store.base
       ~versions:o.Shard_store.versions ~logs:o.Shard_store.logs
       ~durable:(Some { root; journals; io; epoch = o.Shard_store.epoch }))

let plan t = t.plan
let shard_count t = max 1 (Partition.count t.plan)
let domains t = Shard_exec.size t.pool
let wedged t = Atomic.get t.wedged_

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let version t =
  locked t.publish @@ fun () ->
  t.base + Array.fold_left (fun acc v -> acc + (v - t.base)) 0 t.versions

let versions t = locked t.publish @@ fun () -> Array.copy t.versions

let to_workspace t =
  locked t.publish @@ fun () ->
  {
    Workspace.graph = t.graph;
    db = Atomic.get t.db;
    objects = t.objects;
    translators = t.translators;
    log = t.feed;
  }

let wedge t reason =
  Atomic.set t.wedged_ true;
  Log.err (fun m -> m "engine wedged: %s" reason)

(* --- outcome plumbing (mirrors Workspace.update) ----------------------- *)

let reject_outcome request reason =
  {
    Vo_core.Engine.request_kind = Vo_core.Request.kind_name request;
    ops = [];
    result = Transaction.reject reason;
  }

let rolled_back ~request_kind ~ops reason failed_op =
  {
    Vo_core.Engine.request_kind;
    ops;
    result = Transaction.Rolled_back { reason; failed_op };
  }

let rejection_outcome ~request_kind ~ops rejection =
  let result =
    match rejection with
    | Vo_core.Engine.Group_op_failed { reason; failed_op; _ } ->
        Transaction.Rolled_back { reason; failed_op }
    | Vo_core.Engine.Group_validation_failed { reason; _ } ->
        Transaction.reject reason
    | Vo_core.Engine.Group_conflict _ ->
        Transaction.reject (Vo_core.Engine.group_rejection_reason rejection)
  in
  { Vo_core.Engine.request_kind; ops; result }

(* --- durability -------------------------------------------------------- *)

let fresh_gid t = Fmt.str "g%s-%d" t.gid_seed (Atomic.fetch_and_add t.gid_n 1)

(* Append one record to one shard's journal under that shard's file
   lock. A failed append may have torn the journal tail; continuing to
   commit past it would strand later records behind the tear, so any
   failure wedges the engine (reopen to repair). *)
(* Epoch fence, checked under the shard lock(s) just before an append:
   if a replica promoted since this engine opened, the manifest carries
   a newer epoch and this engine is the deposed leader — it must stop
   writing, not race the new one. The manifest is a few hundred bytes,
   so the check costs one small read against the append's fsync. *)
let fence_check t (d : durable) =
  let* current = Shard_store.read_epoch ~io:d.io ~root:d.root () in
  if current = d.epoch then Ok ()
  else begin
    let msg =
      Fmt.str
        "fenced: store %s is at epoch %d but this engine opened at epoch %d \
         (a replica promoted)"
        d.root current d.epoch
    in
    wedge t msg;
    Error (Error.invalid msg)
  end

let journal_one t shard record =
  match t.durable with
  | None -> Ok ()
  | Some d -> (
      match
        Fsio.with_lock (Shard_store.shard_path ~root:d.root shard) (fun () ->
            let* () = fence_check t d in
            Journal.append_record d.journals.(shard) record)
      with
      | Ok () ->
          M.Counter.incr t.shard_appends.(shard);
          Ok ()
      | Error e ->
          wedge t
            (Fmt.str "journal append on shard %d failed: %s" shard
               (Error.to_string e));
          Error e)

(* The two-phase cross-shard protocol (participants ascending, locks
   taken in ascending order by Fsio.with_locks' sorted acquisition):
   prepare everywhere, decide on the lowest participant (the global
   commit point), then close each participant with a mark. Any failure
   wedges: before the decide the commit is presumed aborted on
   recovery, but the journal tail may be torn; at the decide the
   outcome is ambiguous. *)
let twopc t ~participants ~entries =
  match t.durable with
  | None -> Ok ()
  | Some d ->
      let gid = fresh_gid t in
      let res =
        Fsio.with_locks
          (List.map (fun s -> Shard_store.shard_path ~root:d.root s)
             participants)
          (fun () ->
            let* () = fence_check t d in
            let rec prepare = function
              | [] -> Ok ()
              | (s, e) :: rest ->
                  let* () =
                    Journal.append_record d.journals.(s)
                      (Journal.Prepare
                         { gid; shards = participants; entries = [ e ] })
                  in
                  M.Counter.incr t.shard_appends.(s);
                  prepare rest
            in
            let* () = prepare entries in
            let decision = List.hd participants in
            let* () =
              Journal.append_record d.journals.(decision) (Journal.Decide gid)
            in
            M.Counter.incr t.shard_appends.(decision);
            List.iter
              (fun s ->
                match Journal.append_record d.journals.(s) (Journal.Mark gid) with
                | Ok () -> M.Counter.incr t.shard_appends.(s)
                | Error e ->
                    (* Best-effort: the decide already made the commit
                       durable; recovery re-closes unmarked prepares. *)
                    Log.warn (fun m ->
                        m "mark %s on shard %d failed: %s" gid s
                          (Error.to_string e)))
              participants;
            Ok ())
      in
      (match res with
      | Ok () -> ()
      | Error e ->
          wedge t (Fmt.str "two-phase commit %s failed: %s" gid
                     (Error.to_string e)));
      res

(* --- publication ------------------------------------------------------- *)

(* Apply the validated delta to the *current* committed state. Sound
   even though validation may have run against an older state: the
   delta touches only its shards' relations, those shards were owned
   exclusively while staging (lane serialization / coordinator hold),
   and non-risky integrity footprints stay inside the shard. *)
let publish_commit t ~entries ~delta ~kind =
  locked t.publish @@ fun () ->
  let cur = Atomic.get t.db in
  match Database.apply_delta cur delta with
  | Error err ->
      let reason =
        Fmt.str "publish invariant broken: %s" (Database.error_to_string err)
      in
      wedge t reason;
      Error reason
  | Ok db' -> (
      let rec record = function
        | [] -> Ok ()
        | (s, (e : Commit_log.entry)) :: rest -> (
            match Commit_log.append_entry t.logs.(s) e with
            | Ok log ->
                t.logs.(s) <- log;
                t.versions.(s) <- e.Commit_log.version;
                record rest
            | Error m ->
                let reason = Fmt.str "shard %d log: %s" s m in
                wedge t reason;
                Error reason)
      in
      match record entries with
      | Error _ as e -> e
      | Ok () ->
          t.feed <- Commit_log.append t.feed ~delta ~kind;
          Atomic.set t.db db';
          Ok db')

(* --- commit paths ------------------------------------------------------ *)

let commit_local ?validation t ~shard ~name (staged : Vo_core.Engine.staged) =
  let request_kind = staged.Vo_core.Engine.request_kind in
  let ops = staged.Vo_core.Engine.ops in
  match
    Vo_core.Engine.commit_group ?validation t.graph
      staged.Vo_core.Engine.base_db [ staged ]
  with
  | Error rejection -> rejection_outcome ~request_kind ~ops rejection
  | Ok (_, delta) -> (
      let kind = Fmt.str "%s on %s" request_kind name in
      let entry =
        {
          Commit_log.version = t.versions.(shard) + 1;
          change = Commit_log.Delta delta;
          kind;
        }
      in
      match journal_one t shard (Journal.Commit [ entry ]) with
      | Error e ->
          rolled_back ~request_kind ~ops (Error.to_string e) None
      | Ok () -> (
          match publish_commit t ~entries:[ (shard, entry) ] ~delta ~kind with
          | Error reason -> rolled_back ~request_kind ~ops reason None
          | Ok db' ->
              t.commits.(shard) <- t.commits.(shard) + 1;
              M.Counter.incr m_commits;
              M.Counter.incr t.shard_commits.(shard);
              {
                Vo_core.Engine.request_kind;
                ops;
                result = Transaction.Committed db';
              }))

(* Runs on the home shard's lane. Returns [`Bounce] when the staged
   delta leaves the shard or touches a risky relation — the caller then
   retries through the coordinator (restaging, since this staging is
   discarded). *)
let lane_commit ?validation t ~home ~name vo spec request =
  let request_kind = Vo_core.Request.kind_name request in
  let db0 = Atomic.get t.db in
  match
    Vo_core.Engine.stage ~base_version:t.versions.(home) t.graph db0 vo spec
      request
  with
  | Error (Vo_core.Engine.Translation_rejected reason) ->
      `Done (reject_outcome request reason)
  | Error (Vo_core.Engine.Application_failed { ops; reason; failed_op }) ->
      `Done (rolled_back ~request_kind ~ops reason failed_op)
  | Ok staged ->
      let rels = Delta.relations staged.Vo_core.Engine.delta in
      let local =
        (not (List.exists (Partition.risky t.plan) rels))
        &&
        match Partition.shards_of_relations t.plan rels with
        | [] | [ _ ] ->
            List.for_all (fun r -> Partition.shard_of t.plan r = Some home) rels
        | _ -> false
      in
      if local then `Done (commit_local ?validation t ~shard:home ~name staged)
      else `Bounce

(* Runs on the caller's thread with every lane parked: the engine is
   quiesced, so staging sees the settled state and owns all shards. *)
let cross_commit ?validation t ~name vo spec request =
  let request_kind = Vo_core.Request.kind_name request in
  locked t.coordinator @@ fun () ->
  let lanes = List.init (Shard_exec.size t.pool) Fun.id in
  Shard_exec.hold t.pool ~lanes @@ fun () ->
  if Atomic.get t.wedged_ then
    reject_outcome request
      "sharded engine is wedged by a durability failure; reopen the store"
  else
    let home =
      Option.value ~default:0
        (Partition.shard_of t.plan vo.Definition.pivot)
    in
    let db0 = Atomic.get t.db in
    match
      Vo_core.Engine.stage ~base_version:t.versions.(home) t.graph db0 vo spec
        request
    with
    | Error (Vo_core.Engine.Translation_rejected reason) ->
        reject_outcome request reason
    | Error (Vo_core.Engine.Application_failed { ops; reason; failed_op }) ->
        rolled_back ~request_kind ~ops reason failed_op
    | Ok staged -> (
        let ops = staged.Vo_core.Engine.ops in
        match Vo_core.Engine.commit_group ?validation t.graph db0 [ staged ] with
        | Error rejection -> rejection_outcome ~request_kind ~ops rejection
        | Ok (_, delta) -> (
            let kind = Fmt.str "%s on %s" request_kind name in
            let pieces =
              match
                Delta.split
                  ~shard_of:(fun r -> Partition.shard_of_exn t.plan r)
                  delta
              with
              | [] -> [ (home, Delta.empty) ]
              | ps -> ps
            in
            let entries =
              List.map
                (fun (s, piece) ->
                  ( s,
                    {
                      Commit_log.version = t.versions.(s) + 1;
                      change = Commit_log.Delta piece;
                      kind;
                    } ))
                pieces
            in
            let participants = List.map fst pieces in
            let journaled =
              match entries with
              | [ (s, e) ] ->
                  (* One participant after all: a plain single-shard
                     record, already atomic. *)
                  journal_one t s (Journal.Commit [ e ])
              | _ -> twopc t ~participants ~entries
            in
            match journaled with
            | Error e -> rolled_back ~request_kind ~ops (Error.to_string e) None
            | Ok () -> (
                match publish_commit t ~entries ~delta ~kind with
                | Error reason -> rolled_back ~request_kind ~ops reason None
                | Ok db' ->
                    List.iter
                      (fun s ->
                        t.cross.(s) <- t.cross.(s) + 1;
                        M.Counter.incr t.shard_commits.(s))
                      participants;
                    M.Counter.incr m_cross;
                    {
                      Vo_core.Engine.request_kind;
                      ops;
                      result = Transaction.Committed db';
                    })))

let update ?validation t name request =
  if Atomic.get t.wedged_ then
    reject_outcome request
      "sharded engine is wedged by a durability failure; reopen the store"
  else
    match
      (List.assoc_opt name t.objects, List.assoc_opt name t.translators)
    with
    | None, _ -> reject_outcome request (Fmt.str "unknown object %s" name)
    | _, None ->
        reject_outcome request (Fmt.str "no translator installed for %s" name)
    | Some vo, Some spec -> (
        let home =
          Option.value ~default:0
            (Partition.shard_of t.plan vo.Definition.pivot)
        in
        let lane = Shard_exec.lane_of t.pool home in
        M.Gauge.set t.shard_depth.(home)
          (float_of_int (Shard_exec.depth t.pool ~lane));
        let res =
          Shard_exec.run t.pool ~lane:home (fun () ->
              lane_commit ?validation t ~home ~name vo spec request)
        in
        match res with
        | `Done outcome -> outcome
        | `Bounce ->
            M.Counter.incr m_bounced;
            cross_commit ?validation t ~name vo spec request)

(* --- maintenance ------------------------------------------------------- *)

let persist t =
  match t.durable with
  | None -> Error (Error.invalid "persist: this sharded engine is in-memory")
  | Some d ->
      locked t.coordinator @@ fun () ->
      let lanes = List.init (Shard_exec.size t.pool) Fun.id in
      Shard_exec.hold t.pool ~lanes @@ fun () ->
      let db = Atomic.get t.db in
      let count = shard_count t in
      let rec go s =
        if s >= count then Ok ()
        else
          let v = t.versions.(s) in
          let* () =
            Fsio.with_lock (Shard_store.shard_path ~root:d.root s) (fun () ->
                let* () =
                  Shard_store.save_shard ~root:d.root ~shard:s ~version:v
                    ~relations:(Partition.members t.plan s)
                    db
                in
                Journal.initialize d.journals.(s) ~base:v)
          in
          go (s + 1)
      in
      go 0

type shard_info = {
  shard : int;
  lane : int;
  version : int;
  members : string list;
  queue_depth : int;
  commits : int;
  cross_commits : int;
}

let shards t =
  let versions = versions t in
  List.init (shard_count t) (fun s ->
      {
        shard = s;
        lane = Shard_exec.lane_of t.pool s;
        version = versions.(s);
        members = Partition.members t.plan s;
        queue_depth = Shard_exec.depth t.pool ~lane:(Shard_exec.lane_of t.pool s);
        commits = t.commits.(s);
        cross_commits = t.cross.(s);
      })

let shutdown t = Shard_exec.shutdown t.pool
