(** The durable commit journal: an append-only on-disk write-ahead log
    of {!Commit_log} entries.

    The paper's pipeline ends when translated operations are "applied to
    the database"; this module is what makes that application survive
    process death. A workspace on disk is a {e snapshot} (a {!Store}
    document recording its commit-log version) plus a journal of every
    commit since: each {!append} writes one length-prefixed,
    CRC-32-checksummed record holding the commit's entries (their
    versions, request kinds, and full {!Relational.Delta.t} images), and
    {!Recovery.open_store} reconstructs workspace = snapshot ⊕ replayed
    deltas. Because the deltas themselves survive, cross-process
    sessions validate optimistic concurrency against real footprints
    instead of assuming conflict on any version change.

    Record framing: [4-byte big-endian payload length | 4-byte
    big-endian CRC-32 | payload]. The first record is a header naming
    the {e base} version the journal extends; every further record is
    one commit batch (all-or-nothing: a crash mid-append tears the
    record, the checksum catches it, and the whole batch is discarded).
    All I/O goes through an injectable {!Fsio.t} (re-exported as
    {!Io}), the fault-injection seam the crash-recovery tests drive. *)

module Io = Fsio

type t
(** A handle: a journal file path and the I/O layer to reach it. *)

val create : ?io:Fsio.t -> string -> t
(** [create path] — no I/O happens until an operation runs. *)

val path : t -> string

val journal_path : string -> string
(** Conventional journal location for a store file: [store ^ ".journal"]. *)

val initialize : ?epoch:int -> t -> base:int -> (unit, Error.t) result
(** Atomically replace the journal with a fresh one extending version
    [base] (header record only), stamped with leader [epoch] (default
    [0]). The epoch is the replication fencing token: promotion writes
    a higher one, and a fenced old leader's {!Recovery.persist} refuses
    to append under an epoch that is no longer the journal's. *)

val append : t -> ?sync:bool -> Commit_log.entry list -> (unit, Error.t) result
(** Append one commit batch as a single record; [sync] (default [true])
    fsyncs afterwards — the commit's durability point. Appending the
    empty batch is a no-op. *)

(** One framed journal record. [Commit] is the ordinary single-store
    batch. The other three implement the two-phase cross-shard protocol
    (DESIGN.md §5.7): a [Prepare] carries a cross-shard commit's global
    id, its full participant shard set, and {e this} shard's slice of
    the entries; a [Decide] record on the {e decision shard} (the lowest
    participant id) is the global commit point; a [Mark] on a
    participant closes the gid locally so replay applies the held slice
    without consulting the decision shard. Recovery applies a prepared
    slice iff its gid reached a mark here or a decide on the decision
    shard — otherwise the prepare is a dead branch and is discarded
    (presumed abort). *)
type record =
  | Commit of Commit_log.entry list
  | Prepare of {
      gid : string;
      shards : int list;
      entries : Commit_log.entry list;
    }
  | Decide of string
  | Mark of string

val append_record : t -> ?sync:bool -> record -> (unit, Error.t) result
(** Append any record type; [sync] as in {!append}. *)

type replay = {
  base : int;  (** snapshot version the journal extends *)
  epoch : int;  (** leader epoch from the header ([0] for format-1 files) *)
  entries : Commit_log.entry list;
      (** oldest first, flattened from plain [Commit] records only —
          the single-store view; two-phase records live in [trail] *)
  trail : record list;  (** every record in file order *)
  framed : (int * record) list;
      (** [trail] again, each record tagged with the byte offset its
          frame starts at — what lets a tailer resume at [clean_bytes]
          (or any record boundary) without re-reading from the header *)
  records : int;  (** records read (excluding the header) *)
  clean_bytes : int;  (** length of the valid prefix *)
  torn_bytes : int;  (** bytes discarded after it ([0] = clean) *)
}

val replay : t -> (replay option, Error.t) result
(** Read the journal back. [Ok None] when the file does not exist. A
    torn tail — a record cut short or failing its checksum — is
    truncated at the first bad record and reported via [torn_bytes];
    entries before it are returned. An unreadable header, or a
    checksummed record that does not parse, is corruption beyond a torn
    tail and errors with {!Error.Corrupt} naming the journal path and,
    for a record-level failure, the 0-based record index. *)

val tail :
  t -> off:int -> (((int * string) list * int * int) option, Error.t) result
(** Incremental read for followers: the complete, checksum-valid frames
    whose first byte is at or after byte [off], as
    [(absolute_offset, payload) list, clean_end, torn_bytes]. Reads only
    [off..EOF] (one positioned read), so a poll loop pays for new bytes,
    not the whole file. [off] must sit on a record boundary — normally
    the [clean_end] of the previous call, or a {!replay}'s
    [clean_bytes]. [Ok None] when the journal does not exist; an empty
    frame list with [torn_bytes = 0] means no news. Payloads decode
    with {!record_of_payload} (or {!header_of_payload} at offset 0). *)

val read_header : t -> ((int * int) option, Error.t) result
(** [(base, epoch)] from the header record alone, reading at most the
    first kilobyte — the cheap probe a follower uses to detect rotation
    (base changed) or fencing (epoch changed) without re-reading the
    file. [Ok None] when the journal does not exist. *)

val truncate_torn : t -> clean_bytes:int -> (unit, Error.t) result
(** Atomically rewrite the journal to its valid prefix (from a {!replay}
    that reported a torn tail), so later appends extend a clean file. *)

val rotate :
  ?epoch:int -> t -> snapshot_path:string -> snapshot:string -> base:int ->
  (unit, Error.t) result
(** Fold the journal into a snapshot: atomically write [snapshot] (tmp
    file + fsync + rename), then {!initialize} the journal at [base]
    with [epoch] (default [0] — callers that preserve or bump the epoch
    pass it explicitly). A crash between the two steps leaves the new
    snapshot under the old journal; replay application skips entries
    the snapshot already contains, so recovery is unaffected. *)

(** {1 Wire building blocks}

    The framing and payload codecs, exposed for the replication layer:
    {!Shipper} serves raw journal bytes, and {!Replica} re-frames
    verified payloads into its own journal byte-identically. *)

val frame : string -> string
(** [4-byte BE length | 4-byte BE CRC-32 | payload]. *)

val decode_frames : ?off0:int -> string -> (int * string) list * int * int
(** Split a byte string into its complete, checksum-valid frames:
    [(offset, payload) list, clean_end, torn_bytes]. Offsets are
    relative to the string start plus [off0] (default [0]) — pass the
    absolute position the chunk was read from to get absolute offsets.
    [torn_bytes] counts the trailing bytes that do not form a valid
    frame (an in-flight append, a tear, or corruption — the caller
    decides by whether they stay torn across polls). *)

val record_payload : record -> string
val record_of_payload : string -> (record, string) result

val header_payload : base:int -> epoch:int -> string
val header_of_payload : string -> (int * int, string) result
(** [(base, epoch)]; accepts format 1 (no epoch field) as epoch [0]. *)
