(** A textual update language on view objects.

    "The query representation can also be used to formulate update
    requests" (Section 3) — these statements select instances with an
    OQL condition ({!Viewobject.Oql}) and turn edits into the complete
    update requests of {!Vo_core.Request}, which the engine translates
    per the object's translator:

    {v
    set units = 4 where course_id = 'CS345'
    set GRADES[pid = 1] grade = 'A+' where course_id = 'CS345'
    set course_id = 'EES345', DEPARTMENT.dept_name = 'Engineering
        Economic Systems' where course_id = 'CS345'
    attach GRADES (pid = 5, grade = 'B') where course_id = 'CS345'
    attach ORDERS#2 (order_no = 9, drug = 'aspirin', dose = 100,
        prescriber = 101) in VISIT#2[visit_no = 1] where mrn = 7001
    detach GRADES[pid = 2] where course_id = 'CS345'
    delete where level = 'undergrad'
    v}

    - [set ref = literal, ... where cond] — replacement. A [ref] is a
      (possibly label-qualified) attribute; when the node is set-valued,
      a selector block [LABEL[pred]] must single out one sub-instance.
    - [attach LABEL (attr = literal, ...) [in PARENT[pred]] where cond] —
      add one sub-instance under the node's parent (the [in] selector
      picks the parent occurrence when the parent is set-valued).
    - [detach LABEL[pred] where cond] — remove one component (a partial
      update, realized as a replacement).
    - [delete where cond] — complete deletion of every matching instance.

    Statements affecting several instances apply them one at a time,
    re-evaluating the condition against the current database between
    steps; the first rollback stops the batch. *)

open Relational
open Viewobject

type assignment = {
  label : string;  (** resolved node label *)
  sel : Predicate.t option;  (** selector block, if any *)
  attr : string;
  value : Value.t;
}

type statement =
  | Delete of Vo_query.condition
  | Set of assignment list * Vo_query.condition
  | Detach of string * Predicate.t * Vo_query.condition
  | Attach of {
      label : string;  (** child node to add a sub-instance to *)
      bindings : (string * Value.t) list;
      parent_sel : Predicate.t option;
          (** selects the parent occurrence when the parent node is
              itself set-valued *)
      cond : Vo_query.condition;
    }

val parse : Definition.t -> string -> (statement, string) result

val requests :
  Workspace.t -> object_name:string -> string ->
  (Vo_core.Request.t list, string) result
(** Evaluate the statement against the workspace {e once} and return
    the update requests it denotes — one per matching instance, no-op
    edits skipped — without applying anything. This is how a
    {!Session} queues statements: every request is staged against the
    same snapshot. (By contrast {!apply} re-evaluates the condition
    between instances.) *)

val apply :
  Workspace.t -> object_name:string -> string ->
  (Workspace.t * Vo_core.Engine.outcome list, string) result
(** Parse and execute against the named object under its installed
    translator. The returned outcome list has one entry per affected
    instance (the last one may be a rollback, which also ends the
    batch; earlier commits remain applied). *)

val pp_statement : Format.formatter -> statement -> unit
