open Relational
open Viewobject
open Sql_lexer

let ( let* ) = Result.bind

type assignment = {
  label : string;
  sel : Predicate.t option;
  attr : string;
  value : Value.t;
}

type statement =
  | Delete of Vo_query.condition
  | Set of assignment list * Vo_query.condition
  | Detach of string * Predicate.t * Vo_query.condition
  | Attach of {
      label : string;
      bindings : (string * Value.t) list;
      parent_sel : Predicate.t option;
      cond : Vo_query.condition;
    }

let pp_statement ppf = function
  | Delete c -> Fmt.pf ppf "delete where %a" Vo_query.pp_condition c
  | Set (assigns, c) ->
      let pp_a ppf a =
        Fmt.pf ppf "%s%a.%s = %a" a.label
          Fmt.(option (brackets Predicate.pp))
          a.sel a.attr Value.pp a.value
      in
      Fmt.pf ppf "set %a where %a"
        Fmt.(list ~sep:(any ", ") pp_a)
        assigns Vo_query.pp_condition c
  | Detach (label, sel, c) ->
      Fmt.pf ppf "detach %s[%a] where %a" label Predicate.pp sel
        Vo_query.pp_condition c
  | Attach { label; bindings; parent_sel; cond } ->
      let pp_b ppf (a, v) = Fmt.pf ppf "%s = %a" a Value.pp v in
      Fmt.pf ppf "attach %s (%a)%a where %a" label
        Fmt.(list ~sep:(any ", ") pp_b)
        bindings
        Fmt.(option (any " in " ++ brackets Predicate.pp))
        parent_sel Vo_query.pp_condition cond

(* --- parsing --------------------------------------------------------- *)

let peek = function [] -> Eof | t :: _ -> t
let advance = function [] -> [] | _ :: rest -> rest

let err expected got =
  Error (Fmt.str "update parse error: expected %s, got %a" expected pp_token got)

let expect tok toks =
  if equal_token (peek toks) tok then Ok ((), advance toks)
  else err (Fmt.str "%a" pp_token tok) (peek toks)

let where_condition vo toks =
  let* (), toks = expect (Kw "where") toks in
  Oql.condition_tokens vo toks

(* ref := IDENT | IDENT '[' pred ']' IDENT *)
let assignment vo toks =
  match peek toks with
  | Ident name -> (
      let toks = advance toks in
      match peek toks with
      | Lbracket ->
          let* node =
            match Definition.find vo name with
            | Some n -> Ok n
            | None -> Error (Fmt.str "no node %s in view object %s" name vo.Definition.name)
          in
          let* sel, toks = Oql.node_pred_tokens node (advance toks) in
          let* (), toks = expect Rbracket toks in
          let* attr, toks =
            match peek toks with
            | Ident a -> Ok (a, advance toks)
            | t -> err "attribute name" t
          in
          if not (List.mem attr node.Definition.attrs) then
            Error (Fmt.str "node %s does not project attribute %s" name attr)
          else
            let* (), toks = expect (Op "=") toks in
            let* value, toks = Oql.literal_tokens toks in
            Ok ({ label = node.Definition.label; sel = Some sel; attr; value }, toks)
      | _ ->
          let* label, attr = Oql.resolve_attr vo (Oql.split_ref name) in
          let* (), toks = expect (Op "=") toks in
          let* value, toks = Oql.literal_tokens toks in
          Ok ({ label; sel = None; attr; value }, toks))
  | t -> err "assignment" t

let rec assignments vo toks =
  let* a, toks = assignment vo toks in
  if equal_token (peek toks) Comma then
    let* rest, toks = assignments vo (advance toks) in
    Ok (a :: rest, toks)
  else Ok ([ a ], toks)

(* binding := IDENT '=' literal *)
let rec bindings_p node toks =
  match peek toks with
  | Ident a ->
      if not (List.mem a node.Definition.attrs) then
        Error
          (Fmt.str "node %s does not project attribute %s"
             node.Definition.label a)
      else
        let* (), toks = expect (Op "=") (advance toks) in
        let* v, toks = Oql.literal_tokens toks in
        if equal_token (peek toks) Comma then
          let* rest, toks = bindings_p node (advance toks) in
          Ok ((a, v) :: rest, toks)
        else Ok ([ (a, v) ], toks)
  | t -> err "attribute binding" t

let attach_p vo toks =
  match peek toks with
  | Ident name ->
      let* node =
        match Definition.find vo name with
        | Some n -> Ok n
        | None ->
            Error (Fmt.str "no node %s in view object %s" name vo.Definition.name)
      in
      let* parent =
        match Definition.parent_of vo node.Definition.label with
        | Some p -> Ok p
        | None ->
            Error
              (Fmt.str
                 "cannot attach to node %s: it is the pivot (use a complete \
                  insertion)"
                 name)
      in
      let toks = advance toks in
      let* (), toks = expect Lparen toks in
      let* bindings, toks = bindings_p node toks in
      let* (), toks = expect Rparen toks in
      let* parent_sel, toks =
        match peek toks with
        | Ident "in" -> (
            match peek (advance toks) with
            | Ident pname ->
                if pname <> parent.Definition.label then
                  Error
                    (Fmt.str
                       "the parent of %s is %s, not %s"
                       name parent.Definition.label pname)
                else
                  let toks = advance (advance toks) in
                  let* (), toks = expect Lbracket toks in
                  let* sel, toks = Oql.node_pred_tokens parent toks in
                  let* (), toks = expect Rbracket toks in
                  Ok (Some sel, toks)
            | t -> err "parent node label" t)
        | _ -> Ok (None, toks)
      in
      let* cond, toks = where_condition vo toks in
      Ok
        ( Attach { label = node.Definition.label; bindings; parent_sel; cond },
          toks )
  | t -> err "node label" t

let parse vo input =
  let* toks = Sql_lexer.tokenize input in
  let finish v toks =
    match peek toks with
    | Eof -> Ok v
    | t -> Result.map (fun ((), _) -> v) (err "end of statement" t)
  in
  match peek toks with
  | Kw "delete" ->
      let* c, toks = where_condition vo (advance toks) in
      finish (Delete c) toks
  | Kw "set" ->
      let* assigns, toks = assignments vo (advance toks) in
      let* c, toks = where_condition vo toks in
      finish (Set (assigns, c)) toks
  | Ident "attach" ->
      let* stmt, toks = attach_p vo (advance toks) in
      finish stmt toks
  | Ident "detach" -> (
      match peek (advance toks) with
      | Ident name ->
          let* node =
            match Definition.find vo name with
            | Some n -> Ok n
            | None ->
                Error (Fmt.str "no node %s in view object %s" name vo.Definition.name)
          in
          let toks = advance (advance toks) in
          let* (), toks = expect Lbracket toks in
          let* sel, toks = Oql.node_pred_tokens node toks in
          let* (), toks = expect Rbracket toks in
          let* c, toks = where_condition vo toks in
          finish (Detach (node.Definition.label, sel, c)) toks
      | t -> err "node label" t)
  | t -> err "delete, set, attach or detach" t

(* --- application ------------------------------------------------------ *)

let edit_instance vo stmt (inst : Instance.t) =
  match stmt with
  | Delete _ -> Ok None  (* handled by the caller *)
  | Attach { label; bindings; parent_sel; _ } ->
      let node = Definition.find_exn vo label in
      let parent =
        match Definition.parent_of vo label with
        | Some p -> p
        | None -> invalid_arg "attach: no parent"
      in
      let child =
        Instance.leaf ~label ~relation:node.Definition.relation
          (Tuple.make bindings)
      in
      let sel =
        match parent_sel with
        | Some p -> fun t -> Predicate.eval p t
        | None -> fun _ -> true
      in
      let* i =
        Vo_core.Request.attach_where inst
          ~parent_label:parent.Definition.label ~sel ~child
      in
      Ok (Some i)
  | Detach (label, sel, _) ->
      let* i =
        Vo_core.Request.detach_where inst ~label
          ~sel:(fun t -> Predicate.eval sel t)
      in
      Ok (Some i)
  | Set (assigns, _) ->
      let* i =
        List.fold_left
          (fun acc a ->
            let* i = acc in
            let apply_tuple t = Tuple.set t a.attr a.value in
            if a.label = vo.Definition.root.Definition.label then
              Ok (Instance.with_tuple i (apply_tuple i.Instance.tuple))
            else
              let sel =
                match a.sel with
                | Some p -> fun t -> Predicate.eval p t
                | None -> fun _ -> true
              in
              Vo_core.Request.modify_where i ~label:a.label ~sel ~f:apply_tuple)
          (Ok inst) assigns
      in
      Ok (Some i)

let requests ws ~object_name input =
  let* vo = Workspace.find_object ws object_name in
  let* stmt = parse vo input in
  let condition =
    match stmt with
    | Delete c | Set (_, c) | Detach (_, _, c) | Attach { cond = c; _ } -> c
  in
  let* candidates = Workspace.query ws object_name condition in
  List.fold_left
    (fun acc inst ->
      let* acc = acc in
      match stmt with
      | Delete _ -> Ok (Vo_core.Request.delete inst :: acc)
      | Set _ | Detach _ | Attach _ -> (
          match edit_instance vo stmt inst with
          | Error e -> Error e
          | Ok None -> Error "internal: no edited instance"
          | Ok (Some new_instance) ->
              if Instance.equal new_instance inst then Ok acc
              else
                Ok
                  (Vo_core.Request.replace ~old_instance:inst ~new_instance
                  :: acc)))
    (Ok []) candidates
  |> Result.map List.rev

let apply ws ~object_name input =
  let* vo = Workspace.find_object ws object_name in
  let* stmt = parse vo input in
  let key_attrs = Definition.key_attributes ws.Workspace.graph vo in
  let pivot_key_of (i : Instance.t) =
    List.map (Tuple.get i.Instance.tuple) key_attrs
  in
  let condition =
    match stmt with
    | Delete c | Set (_, c) | Detach (_, _, c) | Attach { cond = c; _ } -> c
  in
  (* One instance at a time against the current database; re-evaluate the
     query between steps and skip instances already processed (by pivot
     key). Edits that change nothing are skipped silently — an updated
     instance may still satisfy the condition under its new key. The
     first rollback (or a failing edit) stops the batch. *)
  let rec loop ws outcomes processed fuel =
    if fuel = 0 then Error "update batch exceeds 10000 instances"
    else
      let* candidates = Workspace.query ws object_name condition in
      let next =
        List.find_opt
          (fun i ->
            not
              (List.exists
                 (fun k -> List.compare Value.compare k (pivot_key_of i) = 0)
                 processed))
          candidates
      in
      match next with
      | None -> Ok (ws, outcomes)
      | Some inst -> (
          let processed = pivot_key_of inst :: processed in
          let request =
            match stmt with
            | Delete _ -> Ok (Some (Vo_core.Request.delete inst))
            | Set _ | Detach _ | Attach _ -> (
                match edit_instance vo stmt inst with
                | Error e -> Error e
                | Ok (Some new_instance) ->
                    if Instance.equal new_instance inst then Ok None
                    else
                      Ok
                        (Some
                           (Vo_core.Request.replace ~old_instance:inst
                              ~new_instance))
                | Ok None -> Error "internal: no edited instance")
          in
          match request with
          | Error reason ->
              (* e.g. the selector matches nothing for this instance *)
              Ok
                ( ws,
                  outcomes
                  @ [ {
                        Vo_core.Engine.request_kind = "replacement";
                        ops = [];
                        result = Transaction.reject reason;
                      } ] )
          | Ok None -> loop ws outcomes processed (fuel - 1)
          | Ok (Some request) -> (
              let ws', outcome = Workspace.update ws object_name request in
              let outcomes = outcomes @ [ outcome ] in
              match outcome.Vo_core.Engine.result with
              | Transaction.Rolled_back _ -> Ok (ws', outcomes)
              | Transaction.Committed _ -> loop ws' outcomes processed (fuel - 1)))
  in
  loop ws [] [] 10000
