(** The network serving front end: a long-lived Unix-domain socket
    server over a durable store, turning {!Vo_core.Engine.commit_group}'s
    batch win (E10) into sustained throughput via {e pipelined group
    commit}.

    Many concurrent client connections speak a framed request/response
    protocol (frames are the journal wire format — {!Netio}); each
    connection runs snapshot {!Session}s against the server's committed
    workspace. A [commit] request does not reply immediately: it
    {e parks} on the current {e flush window}, and the window flushes —
    one merged {!Vo_core.Engine.commit_group} over every parked
    session's staged updates plus {e one} journal append and fsync
    ({!Recovery.persist}) for the whole batch — when it reaches
    [flush_window] parked commits, when the oldest parked commit is
    [flush_interval_ns] old, or (with [eager_flush], the default) as
    soon as the event loop drains its input: the window absorbs exactly
    the commits that arrive while the previous flush runs, which is the
    classic group-commit discipline. Culprits — a session whose staged
    updates conflict with an earlier parked commit in the window, fail
    re-translation after the store advanced, or are named by the merged
    validation's sequential replay — are answered with per-request
    typed errors while the rest of the batch lands.

    Admission and degradation reuse the resilience layer: parked
    commits take {!Resilience.Limiter} slots (full → immediate
    {!Error.Busy} shed), and a {!Resilience.Breaker} guards the durable
    path — when repeated durability faults trip it, commits are refused
    with {!Error.Busy} while [oql] reads keep serving through the
    materialized {!Viewobject.Cache} (degraded read-only serving).
    Per-request latency histograms and [server.*] counters flow through
    {!Obs.Metrics}; the flush path is spanned through {!Obs.Trace}.

    {2 Wire protocol}

    One request sexp per frame, one response frame per request, in
    order. Responses to [commit] are deferred until its window flushes;
    further frames pipelined on that connection wait behind the ack.

    {v
    (ping)                 -> (ok pong)
    (begin)                -> (ok (begun V))
    (queue "OBJ" "STMT")   -> (ok (queued N))          N staged so far
    (commit)               -> (ok (committed N) (versions v1 .. vN))
    (oql "OBJ" "QUERY")    -> (ok (instances N) "rendered text")
    (stats)                -> (ok (stats) "metrics registry JSON")
    (shutdown)             -> (ok bye)                  flushes, then stops
    any error              -> (error KIND RETRYABLE "message")
    v}

    [KIND] is {!Error.kind}'s label and [RETRYABLE] {!Error.retryable} —
    enough for {!Client} to reconstruct a typed error. A frame that
    fails its checksum or exceeds the length bound is answered in-band
    with a [corrupt] error and that connection closed; the accept loop
    and every other connection keep serving. A connection that
    disconnects while parked has its staged updates dropped from the
    window; the rest of the batch lands. *)

type config = {
  flush_window : int;
      (** parked commits that force a flush (default 64); [1] degrades
          to per-request fsync — the E17 baseline *)
  flush_interval_ns : float;
      (** age of the oldest parked commit that forces a flush (default
          10 ms) — the latency bound when input trickles *)
  eager_flush : bool;
      (** flush as soon as the event loop finds no input waiting
          (default [true]); [false] batches strictly by size/age, which
          the window-semantics tests use for determinism *)
  max_parked : int;
      (** admission bound on parked commits (default 256): the
          {!Resilience.Limiter}'s slot count when [serve] creates one *)
  max_queued : int;
      (** per-session staged-update bound (default 128), enforced by
          {!Session.queue}'s admission check *)
}

val default_config : config

type stats = {
  requests : int;  (** frames answered, including errors *)
  commits : int;  (** commit requests acked durable *)
  windows : int;  (** flushes that persisted at least one commit *)
}

val serve :
  ?io:Fsio.t ->
  ?config:config ->
  ?limiter:Resilience.Limiter.t ->
  ?breaker:Resilience.Breaker.t ->
  store:string ->
  sock:string ->
  unit ->
  (stats, Error.t) result
(** Open the store ({!Recovery.open_store}, repairing any torn tail),
    take its cross-process lock for the server's lifetime (a serving
    store has exactly one writer — CLI commits against it are held off,
    not raced), attach a materialized {!Viewobject.Cache} for reads,
    and serve [sock] until a [(shutdown)] request. [limiter] defaults
    to a fresh one bounded by [config.max_parked]; [breaker] to a fresh
    default breaker. [io] is the durability layer's injectable seam —
    the fault tests drive degraded read-only serving through it.
    Returns serving totals after a clean shutdown. *)
