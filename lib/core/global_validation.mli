(** Step 4: global validation against the structural model.

    After translation, the database must satisfy every connection's
    integrity rules. For insertions and replacements this can {e create}
    work: "outside relations along inverse ownership, inverse subset, and
    reference connections must be verified for proper dependencies. If no
    tuple satisfying the suitable dependency is found ..., one such tuple
    must be inserted, and the process must be applied recursively"
    (Section 5.2) — subject to the translator's permission to touch those
    relations (the Section 6 example inserts ⟨Engineering Economic
    Systems⟩ into DEPARTMENT only because the permissive translator
    allows it). *)

open Relational
open Structural

val dependency_closure :
  Schema_graph.t ->
  Database.t ->
  Translator_spec.t ->
  Op.t list ->
  (Op.t list, string) result
(** [dependency_closure g db spec ops] simulates [ops] and returns
    [ops] extended with the minimal (key-only) insertions required to
    satisfy every ownership, subset and reference dependency of the
    inserted or replaced tuples, recursively. Fails when a required
    insertion targets a relation whose modification policy forbids
    inserts, or when the ops themselves do not apply. *)

val check_consistency :
  Schema_graph.t -> Database.t -> (unit, string) result
(** Final verification: no integrity violation anywhere (the update
    engine runs this on the candidate database and rolls back on
    failure). *)

val check_consistency_delta :
  Schema_graph.t -> Database.t -> delta:Delta.t -> (unit, string) result
(** Delta-driven final verification via {!Integrity.check_delta}: only
    the touched tuples and their incident connections are re-checked,
    so the cost scales with the translated op list, not the database. *)

(** How step 4 re-establishes consistency on the candidate state. *)
type mode =
  | Full  (** re-check every connection against every tuple (O(|DB|)) *)
  | Incremental
      (** check only the transaction's delta (O(|delta|)); assumes the
          pre-state satisfies the structural model, which the engine
          guarantees for every state it ever committed *)
  | Paranoid
      (** run both, raise {!Divergence} if they disagree — a
          cross-check harness for the incremental checker *)

exception Divergence of string
(** Raised by {!validate} in [Paranoid] mode when the incremental
    checker missed a violation the full check attributes to the delta,
    or reported one the full check refutes. *)

val mode_name : mode -> string

val validate :
  mode ->
  Schema_graph.t ->
  pre:Database.t ->
  post:Database.t ->
  delta:Delta.t ->
  (unit, string) result
(** Step-4 verdict on the candidate state [post] under the given mode.
    [pre] (the database the transaction started from) is only consulted
    by [Paranoid], which compares the incremental verdict against the
    violations the full check says the delta introduced. *)
