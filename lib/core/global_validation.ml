open Relational
open Structural

let ( let* ) = Result.bind

let apply_or_explain db op =
  match Database.apply db op with
  | Ok db' -> Ok db'
  | Error e ->
      Error
        (Fmt.str "global validation: op %a failed: %s" Op.pp op
           (Database.error_to_string e))

let dependency_closure g db spec ops =
  (* Apply the whole translation to a simulated database first — a later
     op may itself satisfy a dependency of an earlier one — then
     recursively satisfy what is still missing with key-only stub
     insertions (when permitted). *)
  let rec satisfy db acc rel tuple depth =
    if depth > 32 then
      Error "global validation: dependency recursion exceeds depth 32"
    else
      let missing = Integrity.missing_dependencies g db rel tuple in
      List.fold_left
        (fun state (conn, stub) ->
          let* db, acc = state in
          let target_rel =
            (* The stub lives on the other end of the connection. *)
            if conn.Connection.source = rel && conn.Connection.kind = Connection.Reference
            then conn.Connection.target
            else conn.Connection.source
          in
          let policy = Translator_spec.modification_policy_for spec target_rel in
          if not (policy.Translator_spec.modifiable && policy.Translator_spec.allow_insert)
          then
            Error
              (Fmt.str
                 "global validation: inserting into %s requires a tuple in %s \
                  (connection %s), but the translator does not allow \
                  insertions there"
                 rel target_rel (Connection.id conn))
          else
            let op = Op.Insert (target_rel, stub) in
            let* db = apply_or_explain db op in
            let acc = acc @ [ op ] in
            satisfy db acc target_rel stub (depth + 1))
        (Ok (db, acc)) missing
  in
  let* db_after =
    List.fold_left
      (fun state op ->
        let* db = state in
        apply_or_explain db op)
      (Ok db) ops
  in
  let* _db, all_ops =
    List.fold_left
      (fun state op ->
        let* db, acc = state in
        match op with
        | Op.Insert (rel, t) | Op.Replace (rel, _, t) -> satisfy db acc rel t 0
        | Op.Delete _ -> Ok (db, acc))
      (Ok (db_after, ops))
      ops
  in
  Ok all_ops

let violations_error violations =
  Error
    (Fmt.str "global validation failed:@,%a"
       Fmt.(list ~sep:cut Integrity.pp_violation)
       violations)

let check_consistency g db =
  match Integrity.check g db with
  | [] -> Ok ()
  | violations -> violations_error violations

let check_consistency_delta g db ~delta =
  match Integrity.check_delta g db ~delta with
  | [] -> Ok ()
  | violations -> violations_error violations

type mode =
  | Full
  | Incremental
  | Paranoid

exception Divergence of string

let mode_name = function
  | Full -> "full"
  | Incremental -> "incremental"
  | Paranoid -> "paranoid"

let validate mode g ~pre ~post ~delta =
  match mode with
  | Full -> check_consistency g post
  | Incremental -> check_consistency_delta g post ~delta
  | Paranoid ->
      let mem v vs = List.exists (Integrity.violation_equal v) vs in
      let incremental = Integrity.check_delta g post ~delta in
      let full_post = Integrity.check g post in
      let full_pre = Integrity.check g pre in
      (* The incremental contract (see {!Integrity.check_delta}): sound
         w.r.t. the post-state, complete w.r.t. the violations the delta
         introduced. Anything else is a checker bug — fail loudly rather
         than commit or reject on bad evidence. *)
      let introduced = List.filter (fun v -> not (mem v full_pre)) full_post in
      let missed = List.filter (fun v -> not (mem v incremental)) introduced in
      let phantom = List.filter (fun v -> not (mem v full_post)) incremental in
      if missed <> [] || phantom <> [] then
        raise
          (Divergence
             (Fmt.str
                "incremental and full validation disagree:@,\
                 missed by incremental:@,%a@,\
                 reported but not real:@,%a@,\
                 delta:@,%a"
                Fmt.(list ~sep:cut Integrity.pp_violation)
                missed
                Fmt.(list ~sep:cut Integrity.pp_violation)
                phantom Delta.pp delta))
      else if incremental = [] then Ok ()
      else violations_error incremental
