(** The four-step view-object update pipeline (Section 5), refactored
    into a staged, group-committable serving core.

    1. local validation against the view-object definition;
    2. propagation within the view object;
    3. translation into database update operations;
    4. global validation against the structural model.

    Steps 1–3 are view-object decomposition ({!translate}); {!stage}
    additionally executes the translated operations against a candidate
    state and captures the resulting {!Relational.Delta.t} — a
    first-class, replayable artifact. {!commit_group} applies a batch of
    staged updates whose deltas are pairwise conflict-free in one step,
    with a {e single} incremental global-validation pass over the merged
    delta. {!apply} — the original single-request pipeline — is a thin
    wrapper: stage, then commit a singleton group. *)

open Relational
open Structural
open Viewobject

type outcome = {
  request_kind : string;
  ops : Op.t list;  (** translation result (empty when rejected early) *)
  result : Transaction.outcome;
}

val translate :
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Request.t ->
  (Op.t list, string) result
(** Steps 1–3 only: the database-operation sequence the request denotes
    under the chosen translator, without applying it. *)

(** {1 Staging} *)

(** A translated update, not yet committed: everything needed to apply,
    validate, merge, or replay it against a compatible base state. *)
type staged = {
  request : Request.t;
  request_kind : string;
  object_name : string;
  ops : Op.t list;
  delta : Delta.t;  (** net change the ops make on [base_db] *)
  reads : Delta.footprint;
      (** the delta's footprint widened with every instance key the
          translation was phrased against — what session-level OCC
          checks against concurrently committed deltas *)
  base_version : int;  (** commit-log version the caller staged against *)
  base_db : Database.t;
  candidate : Database.t;  (** [base_db] with [ops] applied *)
}

type stage_error =
  | Translation_rejected of string  (** steps 1–3 refused the request *)
  | Application_failed of {
      ops : Op.t list;
      reason : string;
      failed_op : Op.t option;
    }  (** translation succeeded but an op did not apply *)

val stage_error_reason : stage_error -> string

val stage :
  ?base_version:int ->
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Request.t ->
  (staged, stage_error) result
(** Steps 1–3 plus candidate application, without global validation or
    publication. [base_version] (default 0) tags the staged value with
    the commit-log version of [db] for later OCC. *)

(** {1 Group commit} *)

type group_rejection =
  | Group_conflict of {
      left : int;
      right : int;
      conflict : Delta.conflict;
    }  (** staged updates at these indices change the same key *)
  | Group_op_failed of {
      index : int;
      reason : string;
      failed_op : Op.t option;
    }
  | Group_validation_failed of {
      culprit : int option;
      reason : string;
    }
      (** step 4 rejected the batch; [culprit] is the index identified
          by the sequential fallback replay (None if the batch only
          fails merged — which indicates a checker divergence) *)

val group_rejection_reason : group_rejection -> string

val commit_group :
  ?validation:Global_validation.mode ->
  Schema_graph.t ->
  Database.t ->
  staged list ->
  (Database.t * Delta.t, group_rejection) result
(** Apply a batch of staged updates to [db] atomically: merge their
    deltas (rejecting on any write overlap), apply every op list in
    order, and run {e one} global-validation pass over the merged delta.
    This is sound because conflict-free deltas commute: the merged delta
    read against the final state is truthful, so incremental validation
    of the merge equals validating each update against its intermediate
    state (E10 cross-checks this in [Paranoid] mode). On a validation
    failure the batch is replayed sequentially to name the culprit.
    Returns the committed state and the merged delta; [db] is never
    modified (persistence). The empty batch commits trivially. *)

(** {1 Post-commit subscriptions}

    Consumers maintaining state derived from the committed database
    (e.g. {!Viewobject.Cache}) can observe every successful
    {!commit_group} — including the singleton groups {!apply} and the
    session layer commit. Subscriptions are process-wide, like the
    metrics registry. *)

type subscription

val subscribe :
  (pre:Database.t -> post:Database.t -> Delta.t -> unit) -> subscription
(** Register a callback fired after each successful {!commit_group}
    with the pre state, the committed post state, and the merged net
    delta between them. Callbacks run in registration order and must
    not raise (an escaping exception is logged; the commit stands). *)

val unsubscribe : subscription -> unit

val plan_groups : staged list -> staged list list
(** Greedy partition of staged updates into conflict-free groups, in
    arrival order: each group is committable by {!commit_group}; groups
    must be committed one after another (later groups' deltas collide
    with earlier ones). A conflict-free batch yields a single group. *)

(** {1 Single-request pipeline} *)

val apply :
  ?validation:Global_validation.mode ->
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Request.t ->
  outcome
(** Full pipeline: {!stage} followed by {!commit_group} of the singleton
    group. On success the outcome's [result] is [Committed db'].
    Rejections during translation and integrity violations detected in
    step 4 both yield [Rolled_back] with the reason; the input database
    is never modified (persistence).

    [validation] (default {!Global_validation.Incremental}) selects how
    step 4 re-establishes consistency: incrementally against the
    transaction's delta, with a full database sweep, or both
    cross-checked ([Paranoid]). Incremental validation is sound
    whenever the input database satisfies the structural model — which
    holds for every database the engine itself committed. Pass
    [~validation:Full] when the input state is of unknown integrity
    (e.g. data loaded from outside the engine). *)

val apply_exn :
  ?validation:Global_validation.mode ->
  Schema_graph.t -> Database.t -> Definition.t -> Translator_spec.t ->
  Request.t -> Database.t
(** @raise Failure with the rollback reason on rejection. *)

val committed : outcome -> Database.t option
val pp_outcome : Format.formatter -> outcome -> unit
