(** The four-step view-object update pipeline (Section 5):

    1. local validation against the view-object definition;
    2. propagation within the view object;
    3. translation into database update operations;
    4. global validation against the structural model.

    Steps 1–3 are view-object decomposition ({!translate}); step 4 plus
    atomic application is {!apply}: the translated operations are executed
    against a candidate database, every structural-model rule is checked
    on the result, and any failure rolls the transaction back. *)

open Relational
open Structural
open Viewobject

type outcome = {
  request_kind : string;
  ops : Op.t list;  (** translation result (empty when rejected early) *)
  result : Transaction.outcome;
}

val translate :
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Request.t ->
  (Op.t list, string) result
(** Steps 1–3 only: the database-operation sequence the request denotes
    under the chosen translator, without applying it. *)

val apply :
  ?validation:Global_validation.mode ->
  Schema_graph.t ->
  Database.t ->
  Definition.t ->
  Translator_spec.t ->
  Request.t ->
  outcome
(** Full pipeline. On success the outcome's [result] is
    [Committed db']. Rejections during translation and integrity
    violations detected in step 4 both yield [Rolled_back] with the
    reason; the input database is never modified (persistence).

    [validation] (default {!Global_validation.Incremental}) selects how
    step 4 re-establishes consistency: incrementally against the
    transaction's delta, with a full database sweep, or both
    cross-checked ([Paranoid]). Incremental validation is sound
    whenever the input database satisfies the structural model — which
    holds for every database the engine itself committed. Pass
    [~validation:Full] when the input state is of unknown integrity
    (e.g. data loaded from outside the engine). *)

val apply_exn :
  ?validation:Global_validation.mode ->
  Schema_graph.t -> Database.t -> Definition.t -> Translator_spec.t ->
  Request.t -> Database.t
(** @raise Failure with the rollback reason on rejection. *)

val committed : outcome -> Database.t option
val pp_outcome : Format.formatter -> outcome -> unit
