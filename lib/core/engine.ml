open Relational

let src = Logs.Src.create "penguin.engine" ~doc:"view-object update engine"

module Log = (val Logs.src_log src : Logs.LOG)

type outcome = {
  request_kind : string;
  ops : Op.t list;
  result : Transaction.outcome;
}

module OpSet = Set.Make (Op)

(* Drop ops that are exact duplicates of an earlier op (two sub-instances
   may legitimately demand the same outside insertion), preserving the
   first occurrence's position. *)
let dedup_ops ops =
  let _, rev =
    List.fold_left
      (fun (seen, acc) op ->
        if OpSet.mem op seen then seen, acc
        else OpSet.add op seen, op :: acc)
      (OpSet.empty, []) ops
  in
  List.rev rev

let translate g db vo spec request =
  let result =
    match request with
    | Request.Insert inst -> Vo_ci.translate g db vo spec inst
    | Request.Delete inst -> Vo_cd.translate g db vo spec inst
    | Request.Replace { old_instance; new_instance } ->
        Vo_r.translate g db vo spec ~old_instance ~new_instance
  in
  Result.map dedup_ops result

let apply ?(validation = Global_validation.Incremental) g db vo spec request =
  let request_kind = Request.kind_name request in
  let object_name = vo.Viewobject.Definition.name in
  Log.debug (fun m -> m "%s on %s: translating" request_kind object_name);
  match translate g db vo spec request with
  | Error reason ->
      Log.info (fun m ->
          m "%s on %s rejected during translation: %s" request_kind object_name
            reason);
      { request_kind; ops = []; result = Transaction.reject reason }
  | Ok ops -> (
      Log.debug (fun m ->
          m "%s on %s: %d operation(s)" request_kind object_name
            (List.length ops));
      match Transaction.run_delta db ops with
      | (Transaction.Rolled_back { reason; _ } as rb), _ ->
          Log.warn (fun m ->
              m "%s on %s rolled back during application: %s" request_kind
                object_name reason);
          { request_kind; ops; result = rb }
      | Transaction.Committed db', delta -> (
          (* Step 4: the candidate state must satisfy every rule of the
             structural model, or the transaction is rolled back. By
             default only the transaction's delta is re-checked — every
             state the engine commits satisfies the model, so the rest
             of the database cannot have picked up a violation. *)
          match Global_validation.validate validation g ~pre:db ~post:db' ~delta with
          | Ok () ->
              Log.info (fun m ->
                  m "%s on %s committed (%d op(s), %s validation)"
                    request_kind object_name (List.length ops)
                    (Global_validation.mode_name validation));
              { request_kind; ops; result = Transaction.Committed db' }
          | Error reason ->
              Log.warn (fun m ->
                  m "%s on %s failed global validation: %s" request_kind
                    object_name reason);
              { request_kind; ops; result = Transaction.reject reason }))

let apply_exn ?validation g db vo spec request =
  match (apply ?validation g db vo spec request).result with
  | Transaction.Committed db' -> db'
  | Transaction.Rolled_back { reason; _ } -> failwith reason

let committed outcome =
  match outcome.result with
  | Transaction.Committed db -> Some db
  | Transaction.Rolled_back _ -> None

let pp_outcome ppf o =
  Fmt.pf ppf "@[<v>%s: %a@,ops:@,%a@]" o.request_kind Transaction.pp o.result
    Op.pp_list o.ops
