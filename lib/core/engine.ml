open Relational

let src = Logs.Src.create "penguin.engine" ~doc:"view-object update engine"

module Log = (val Logs.src_log src : Logs.LOG)

(* --- observability (DESIGN.md section 5.4) --------------------------- *)

module M = Obs.Metrics

let m_translate_ns =
  M.histogram ~help:"steps 1-3: local validation, propagation, translation"
    "engine.translate_ns"

let m_stage_apply_ns =
  M.histogram ~help:"candidate application of the translated ops"
    "engine.stage_apply_ns"

let m_global_check_ns =
  M.histogram ~help:"step 4: global validation of a (merged) delta"
    "engine.global_check_ns"

let m_commit_group_ns =
  M.histogram ~help:"whole group commit: merge, apply, one validation pass"
    "engine.commit_group_ns"

let m_commits = M.counter ~help:"group commits accepted" "engine.commits"

let m_committed_updates =
  M.counter ~help:"staged updates committed" "engine.committed_updates"

let m_translation_rejected =
  M.counter ~help:"requests refused in steps 1-3" "engine.translation_rejected"

let m_application_failed =
  M.counter ~help:"translations whose ops failed to apply"
    "engine.application_failed"

let m_validation_failed =
  M.counter ~help:"group commits rejected by step 4" "engine.validation_failed"

let m_group_conflicts =
  M.counter ~help:"group commits rejected for intra-group write overlap"
    "engine.group_conflicts"

type outcome = {
  request_kind : string;
  ops : Op.t list;
  result : Transaction.outcome;
}

module OpSet = Set.Make (Op)

(* Drop ops that are exact duplicates of an earlier op (two sub-instances
   may legitimately demand the same outside insertion), preserving the
   first occurrence's position. *)
let dedup_ops ops =
  let _, rev =
    List.fold_left
      (fun (seen, acc) op ->
        if OpSet.mem op seen then seen, acc
        else OpSet.add op seen, op :: acc)
      (OpSet.empty, []) ops
  in
  List.rev rev

let translate g db vo spec request =
  Obs.Trace.with_span "engine.translate"
    ~tags:
      [ "object", vo.Viewobject.Definition.name;
        "kind", Request.kind_name request ]
  @@ fun () ->
  M.time m_translate_ns @@ fun () ->
  let result =
    match request with
    | Request.Insert inst -> Vo_ci.translate g db vo spec inst
    | Request.Delete inst -> Vo_cd.translate g db vo spec inst
    | Request.Replace { old_instance; new_instance } ->
        Vo_r.translate g db vo spec ~old_instance ~new_instance
  in
  Result.map dedup_ops result

(* --- staging --------------------------------------------------------- *)

type staged = {
  request : Request.t;
  request_kind : string;
  object_name : string;
  ops : Op.t list;
  delta : Delta.t;
  reads : Delta.footprint;
  base_version : int;
  base_db : Database.t;
  candidate : Database.t;
}

type stage_error =
  | Translation_rejected of string
  | Application_failed of {
      ops : Op.t list;
      reason : string;
      failed_op : Op.t option;
    }

let stage_error_reason = function
  | Translation_rejected reason -> reason
  | Application_failed { reason; _ } -> reason

(* The keys a translation depends on beyond the delta itself: every node
   occurrence of the instance(s) the request was phrased against. A
   concurrent change to any of them invalidates the translation (the
   instance the user edited is stale), even when the op lists do not
   collide. Node tuples only project their node's attributes, so keys
   inherited from the parent (e.g. the owning relation's key prefix)
   must be copied in first; nodes whose full key still cannot be bound
   are skipped rather than recorded under a junk partial key. *)
let instance_reads g vo db fp request =
  let rec instance fp (i : Viewobject.Instance.t) =
    let fp =
      match Database.schema_of db i.Viewobject.Instance.relation with
      | Error _ -> fp
      | Ok schema ->
          let key = Tuple.key_of schema i.Viewobject.Instance.tuple in
          if List.exists (fun v -> v = Value.Null) key then fp
          else
            Delta.footprint_add_read fp ~rel:i.Viewobject.Instance.relation
              ~key
    in
    List.fold_left
      (fun fp (_, subs) -> List.fold_left instance fp subs)
      fp i.Viewobject.Instance.children
  in
  let whole fp i =
    match Viewobject.Instantiate.extend_inherited g vo i with
    | Ok extended -> instance fp extended
    | Error _ -> instance fp i
  in
  match request with
  | Request.Insert _ -> fp
  | Request.Delete i -> whole fp i
  | Request.Replace { old_instance; _ } -> whole fp old_instance

let stage ?(base_version = 0) g db vo spec request =
  let request_kind = Request.kind_name request in
  let object_name = vo.Viewobject.Definition.name in
  Obs.Trace.with_span "engine.stage"
    ~tags:[ "object", object_name; "kind", request_kind ]
  @@ fun () ->
  Log.debug (fun m -> m "%s on %s: staging" request_kind object_name);
  match translate g db vo spec request with
  | Error reason ->
      M.Counter.incr m_translation_rejected;
      Log.info (fun m ->
          m "%s on %s rejected during translation: %s" request_kind object_name
            reason);
      Error (Translation_rejected reason)
  | Ok ops -> (
      Log.debug (fun m ->
          m "%s on %s: %d operation(s)" request_kind object_name
            (List.length ops));
      match
        Obs.Trace.with_span "engine.stage_apply" @@ fun () ->
        M.time m_stage_apply_ns @@ fun () -> Transaction.run_delta db ops
      with
      | Transaction.Rolled_back { reason; failed_op }, _ ->
          M.Counter.incr m_application_failed;
          Log.warn (fun m ->
              m "%s on %s rolled back during application: %s" request_kind
                object_name reason);
          Error (Application_failed { ops; reason; failed_op })
      | Transaction.Committed candidate, delta ->
          let reads = instance_reads g vo db (Delta.footprint delta) request in
          Ok
            {
              request;
              request_kind;
              object_name;
              ops;
              delta;
              reads;
              base_version;
              base_db = db;
              candidate;
            })

(* --- group commit ---------------------------------------------------- *)

type group_rejection =
  | Group_conflict of {
      left : int;
      right : int;
      conflict : Delta.conflict;
    }
  | Group_op_failed of {
      index : int;
      reason : string;
      failed_op : Op.t option;
    }
  | Group_validation_failed of {
      culprit : int option;
      reason : string;
    }

let group_rejection_reason = function
  | Group_conflict { left; right; conflict } ->
      Fmt.str "group commit: staged updates #%d and #%d conflict: %s" left
        right
        (Delta.conflict_to_string conflict)
  | Group_op_failed { index; reason; _ } ->
      Fmt.str "group commit: staged update #%d failed to apply: %s" index
        reason
  | Group_validation_failed { culprit = Some i; reason } ->
      Fmt.str "group commit: staged update #%d failed global validation: %s" i
        reason
  | Group_validation_failed { culprit = None; reason } -> reason

let delta_writes_key delta ~rel ~key =
  List.exists
    (fun (r, keys) -> r = rel && List.exists (( = ) key) keys)
    (Delta.footprint_writes (Delta.footprint delta))

(* Merge the group's deltas left to right; on overlap, attribute the
   conflict to the earliest staged update writing the same key. *)
let merge_deltas staged =
  let rec go i acc = function
    | [] -> Ok acc
    | s :: rest -> (
        match Delta.merge acc s.delta with
        | Ok acc -> go (i + 1) acc rest
        | Error (c : Delta.conflict) ->
            let left =
              let rec find j = function
                | s :: _
                  when j < i && delta_writes_key s.delta ~rel:c.rel ~key:c.key
                  ->
                    j
                | _ :: rest -> find (j + 1) rest
                | [] -> 0
              in
              find 0 staged
            in
            Error (Group_conflict { left; right = i; conflict = c }))
  in
  go 0 Delta.empty staged

let apply_staged db s =
  (* Reuse the candidate computed at staging time when the base is
     physically unchanged (the common singleton / first-in-group case). *)
  if db == s.base_db then Ok s.candidate
  else
    match Database.apply_all db s.ops with
    | Ok db' -> Ok db'
    | Error (e, op) -> Error (Database.error_to_string e, op)

let apply_group db merged staged =
  let sequential () =
    let rec go i db = function
      | [] -> Ok db
      | s :: rest -> (
          match apply_staged db s with
          | Ok db -> go (i + 1) db rest
          | Error (reason, op) ->
              Error (Group_op_failed { index = i; reason; failed_op = Some op }))
    in
    go 0 db staged
  in
  match staged with
  | [ s ] when db == s.base_db -> Ok s.candidate
  | _ when List.for_all (fun s -> s.base_db == db) staged -> (
      (* Whole group staged against exactly this state: publish the
         merged delta in one batched pass (one catalog store per touched
         relation). On failure, replay per staged update to name it. *)
      match Database.apply_delta db merged with
      | Ok db' -> Ok db'
      | Error _ -> sequential ())
  | _ -> sequential ()

(* A merged-delta rejection names the batch, not the culprit: replay the
   group sequentially, validating each update's own delta against its
   intermediate state, to identify which staged update is at fault. *)
let find_culprit validation g db staged =
  let rec go i db = function
    | [] -> None
    | s :: rest -> (
        match apply_staged db s with
        | Error _ -> None
        | Ok db' -> (
            match
              Global_validation.validate validation g ~pre:db ~post:db'
                ~delta:s.delta
            with
            | Error reason -> Some (i, reason)
            | Ok () -> go (i + 1) db' rest))
  in
  go 0 db staged

(* --- post-commit subscriptions --------------------------------------

   Consumers that maintain state derived from the committed database
   (the materialized view-object cache, audit sinks) register a callback
   fired after every successful {!commit_group}, with the pre state, the
   post state, and the merged net delta between them. Subscribers must
   not raise; if one does, the commit stands and the exception is
   logged. *)

type subscription = int

let subscribers :
    (int * (pre:Database.t -> post:Database.t -> Delta.t -> unit)) list ref =
  ref []

let next_subscription = ref 0

let subscribe f =
  incr next_subscription;
  subscribers := (!next_subscription, f) :: !subscribers;
  !next_subscription

let unsubscribe id =
  subscribers := List.filter (fun (i, _) -> i <> id) !subscribers

let notify_subscribers ~pre ~post delta =
  List.iter
    (fun (id, f) ->
      try f ~pre ~post delta
      with exn ->
        Log.warn (fun m ->
            m "post-commit subscriber %d raised: %s" id
              (Printexc.to_string exn)))
    (List.rev !subscribers)

let commit_group ?(validation = Global_validation.Incremental) g db staged =
  match staged with
  | [] -> Ok (db, Delta.empty)
  | _ ->
      let result =
        Obs.Trace.with_span "engine.commit_group"
          ~tags:
            [ "batch", string_of_int (List.length staged);
              "mode", Global_validation.mode_name validation ]
        @@ fun () ->
        M.time m_commit_group_ns @@ fun () ->
        let ( let* ) = Result.bind in
        let* merged = merge_deltas staged in
        let* post = apply_group db merged staged in
        match
          Obs.Trace.with_span "engine.global_check"
            ~tags:[ "mode", Global_validation.mode_name validation ]
          @@ fun () ->
          M.time m_global_check_ns @@ fun () ->
          Global_validation.validate validation g ~pre:db ~post ~delta:merged
        with
        | Ok () ->
            Log.info (fun m ->
                m "group commit: %d staged update(s), %d net change(s), %s \
                   validation"
                  (List.length staged) (Delta.cardinal merged)
                  (Global_validation.mode_name validation));
            Ok (post, merged)
        | Error reason ->
            Log.warn (fun m ->
                m "group commit failed global validation: %s" reason);
            let culprit, reason =
              match find_culprit validation g db staged with
              | Some (i, reason) -> Some i, reason
              | None -> None, reason
            in
            Error (Group_validation_failed { culprit; reason })
      in
      (match result with
      | Ok (post, merged) ->
          M.Counter.incr m_commits;
          M.Counter.add m_committed_updates (List.length staged);
          notify_subscribers ~pre:db ~post merged
      | Error (Group_conflict _) -> M.Counter.incr m_group_conflicts
      | Error (Group_op_failed _) -> M.Counter.incr m_application_failed
      | Error (Group_validation_failed _) -> M.Counter.incr m_validation_failed);
      result

(* Greedy partition into conflict-free groups: each staged update joins
   the first group whose merged delta it does not collide with. Within a
   group, {!commit_group} applies updates in arrival order. *)
let plan_groups staged =
  let groups =
    List.fold_left
      (fun groups s ->
        let rec place = function
          | [] -> [ [ s ], s.delta ]
          | (members, merged) :: rest -> (
              match Delta.merge merged s.delta with
              | Ok merged -> (s :: members, merged) :: rest
              | Error _ -> (members, merged) :: place rest)
        in
        place groups)
      [] staged
  in
  List.map (fun (members, _) -> List.rev members) groups

(* --- the single-request pipeline, as a singleton group --------------- *)

let apply ?(validation = Global_validation.Incremental) g db vo spec request =
  let request_kind = Request.kind_name request in
  match stage g db vo spec request with
  | Error (Translation_rejected reason) ->
      { request_kind; ops = []; result = Transaction.reject reason }
  | Error (Application_failed { ops; reason; failed_op }) ->
      { request_kind; ops; result = Transaction.Rolled_back { reason; failed_op } }
  | Ok staged -> (
      match commit_group ~validation g db [ staged ] with
      | Ok (db', _) ->
          Log.info (fun m ->
              m "%s on %s committed (%d op(s), %s validation)" request_kind
                staged.object_name (List.length staged.ops)
                (Global_validation.mode_name validation));
          { request_kind; ops = staged.ops; result = Transaction.Committed db' }
      | Error (Group_op_failed { reason; failed_op; _ }) ->
          {
            request_kind;
            ops = staged.ops;
            result = Transaction.Rolled_back { reason; failed_op };
          }
      | Error (Group_validation_failed { reason; _ }) ->
          Log.warn (fun m ->
              m "%s on %s failed global validation: %s" request_kind
                staged.object_name reason);
          { request_kind; ops = staged.ops; result = Transaction.reject reason }
      | Error (Group_conflict _ as r) ->
          (* Unreachable: a singleton group cannot self-conflict. *)
          {
            request_kind;
            ops = staged.ops;
            result = Transaction.reject (group_rejection_reason r);
          })

let apply_exn ?validation g db vo spec request =
  match (apply ?validation g db vo spec request).result with
  | Transaction.Committed db' -> db'
  | Transaction.Rolled_back { reason; _ } -> failwith reason

let committed (outcome : outcome) =
  match outcome.result with
  | Transaction.Committed db -> Some db
  | Transaction.Rolled_back _ -> None

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf "@[<v>%s: %a@,ops:@,%a@]" o.request_kind Transaction.pp o.result
    Op.pp_list o.ops
