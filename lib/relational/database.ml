module SMap = Map.Make (String)

type t = { relations : Relation.t SMap.t }

type error =
  | Unknown_relation of string
  | Relation_exists of string
  | Relation_error of string * Relation.error

let pp_error ppf = function
  | Unknown_relation r -> Fmt.pf ppf "unknown relation %s" r
  | Relation_exists r -> Fmt.pf ppf "relation %s already exists" r
  | Relation_error (r, e) -> Fmt.pf ppf "%s: %a" r Relation.pp_error e

let error_to_string e = Fmt.str "%a" pp_error e

let empty = { relations = SMap.empty }

let create_relation db schema =
  let n = schema.Schema.name in
  if SMap.mem n db.relations then Error (Relation_exists n)
  else Ok { relations = SMap.add n (Relation.empty schema) db.relations }

let create_relation_exn db schema =
  match create_relation db schema with
  | Ok db -> db
  | Error e -> invalid_arg (error_to_string e)

let drop_relation db n =
  if SMap.mem n db.relations then
    Ok { relations = SMap.remove n db.relations }
  else Error (Unknown_relation n)

let relation db n =
  match SMap.find_opt n db.relations with
  | Some r -> Ok r
  | None -> Error (Unknown_relation n)

let relation_exn db n =
  match relation db n with
  | Ok r -> r
  | Error e -> invalid_arg (error_to_string e)

let schema_of db n = Result.map Relation.schema (relation db n)

let mem_relation db n = SMap.mem n db.relations
let relation_names db = List.map fst (SMap.bindings db.relations)

let with_relation db n f =
  match relation db n with
  | Error _ as e -> e
  | Ok r -> (
      match f r with
      | Ok r' -> Ok { relations = SMap.add n r' db.relations }
      | Error e -> Error (Relation_error (n, e)))

let create_index db n attrs =
  with_relation db n (fun r -> Relation.create_index r attrs)

let insert db n t = with_relation db n (fun r -> Relation.insert r t)
let delete db n k = with_relation db n (fun r -> Relation.delete_key r k)

let replace db n ~old_key t =
  with_relation db n (fun r -> Relation.replace r ~old_key t)

let apply db = function
  | Op.Insert (n, t) -> insert db n t
  | Op.Delete (n, k) -> delete db n k
  | Op.Replace (n, k, t) -> replace db n ~old_key:k t

(* Net-delta bookkeeping for one successfully applied op: stored images
   are read back from the databases so the delta always carries the
   padded tuples exactly as they live in the relations. *)
let record_op delta db db' op =
  match op with
  | Op.Insert (n, t) ->
      let r' = relation_exn db' n in
      let key = Relation.key_of r' t in
      Delta.record delta ~rel:n ~key ~old_image:None
        ~new_image:(Relation.lookup r' key)
  | Op.Delete (n, k) ->
      Delta.record delta ~rel:n ~key:k
        ~old_image:(Relation.lookup (relation_exn db n) k)
        ~new_image:None
  | Op.Replace (n, k, t) ->
      let r' = relation_exn db' n in
      let new_key = Relation.key_of r' t in
      let delta =
        Delta.record delta ~rel:n ~key:k
          ~old_image:(Relation.lookup (relation_exn db n) k)
          ~new_image:None
      in
      Delta.record delta ~rel:n ~key:new_key ~old_image:None
        ~new_image:(Relation.lookup r' new_key)

let apply_all_delta db ops =
  let rec go db delta = function
    | [] -> Ok (db, delta)
    | op :: rest -> (
        match apply db op with
        | Ok db' -> go db' (record_op delta db db' op) rest
        | Error e -> Error (e, op))
  in
  go db Delta.empty ops

let apply_all db ops = Result.map fst (apply_all_delta db ops)

let apply_delta db delta =
  (* Batched: each touched relation is fetched and stored in the catalog
     once, however many of its keys changed. *)
  List.fold_left
    (fun acc rel ->
      match acc with
      | Error _ -> acc
      | Ok db ->
          with_relation db rel (fun r ->
              List.fold_left
                (fun acc change ->
                  match acc with
                  | Error _ -> acc
                  | Ok r -> (
                      match change with
                      | Delta.Added t -> Relation.insert r t
                      | Delta.Removed t -> Relation.delete_tuple r t
                      | Delta.Updated { before; after } ->
                          Relation.replace r
                            ~old_key:(Relation.key_of r before)
                            after))
                (Ok r) (Delta.changes delta rel)))
    (Ok db) (Delta.relations delta)

let total_tuples db =
  SMap.fold (fun _ r acc -> acc + Relation.cardinality r) db.relations 0

let equal a b = SMap.equal Relation.equal a.relations b.relations

let pp ppf db =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(list ~sep:(any "@,@,") Relation.pp)
    (List.map snd (SMap.bindings db.relations))
