module SMap = Map.Make (String)

module KMap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

type change =
  | Added of Tuple.t
  | Removed of Tuple.t
  | Updated of {
      before : Tuple.t;
      after : Tuple.t;
    }

type t = change KMap.t SMap.t

let empty = SMap.empty
let is_empty = SMap.is_empty

let cardinal d = SMap.fold (fun _ m acc -> acc + KMap.cardinal m) d 0

let update_rel d rel f =
  let m = Option.value (SMap.find_opt rel d) ~default:KMap.empty in
  let m = f m in
  if KMap.is_empty m then SMap.remove rel d else SMap.add rel m d

let add d ~rel ~key t =
  update_rel d rel (fun m ->
      match KMap.find_opt key m with
      | None -> KMap.add key (Added t) m
      | Some (Removed t0) | Some (Updated { before = t0; _ }) ->
          KMap.add key (Updated { before = t0; after = t }) m
      | Some (Added _) -> KMap.add key (Added t) m)

let remove d ~rel ~key t =
  update_rel d rel (fun m ->
      match KMap.find_opt key m with
      | None -> KMap.add key (Removed t) m
      | Some (Added _) -> KMap.remove key m
      | Some (Updated { before; _ }) -> KMap.add key (Removed before) m
      | Some (Removed _) ->
          (* Removing an already-removed key cannot happen on a valid op
             sequence; keep the first old image. *)
          m)

let record d ~rel ~key ~old_image ~new_image =
  let d =
    match old_image with Some t0 -> remove d ~rel ~key t0 | None -> d
  in
  match new_image with Some t -> add d ~rel ~key t | None -> d

let relations d = List.map fst (SMap.bindings d)

let changes d rel =
  match SMap.find_opt rel d with
  | None -> []
  | Some m -> List.map snd (KMap.bindings m)

let fold f d init =
  SMap.fold (fun rel m acc -> KMap.fold (fun _ c acc -> f rel c acc) m acc) d init

let pp_change ppf = function
  | Added t -> Fmt.pf ppf "+ %a" Tuple.pp t
  | Removed t -> Fmt.pf ppf "- %a" Tuple.pp t
  | Updated { before; after } ->
      Fmt.pf ppf "~ %a -> %a" Tuple.pp before Tuple.pp after

let pp ppf d =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (rel, m) ->
          Fmt.pf ppf "@[<v2>%s:@,%a@]" rel
            (list ~sep:cut pp_change)
            (List.map snd (KMap.bindings m))))
    (SMap.bindings d)
