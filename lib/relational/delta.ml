module SMap = Map.Make (String)

module KMap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

type change =
  | Added of Tuple.t
  | Removed of Tuple.t
  | Updated of {
      before : Tuple.t;
      after : Tuple.t;
    }

type t = change KMap.t SMap.t

let empty = SMap.empty
let is_empty = SMap.is_empty

let cardinal d = SMap.fold (fun _ m acc -> acc + KMap.cardinal m) d 0

let update_rel d rel f =
  let m = Option.value (SMap.find_opt rel d) ~default:KMap.empty in
  let m = f m in
  if KMap.is_empty m then SMap.remove rel d else SMap.add rel m d

let add d ~rel ~key t =
  update_rel d rel (fun m ->
      match KMap.find_opt key m with
      | None -> KMap.add key (Added t) m
      | Some (Removed t0) | Some (Updated { before = t0; _ }) ->
          KMap.add key (Updated { before = t0; after = t }) m
      | Some (Added _) -> KMap.add key (Added t) m)

let remove d ~rel ~key t =
  update_rel d rel (fun m ->
      match KMap.find_opt key m with
      | None -> KMap.add key (Removed t) m
      | Some (Added _) -> KMap.remove key m
      | Some (Updated { before; _ }) -> KMap.add key (Removed before) m
      | Some (Removed _) ->
          (* Removing an already-removed key cannot happen on a valid op
             sequence; keep the first old image. *)
          m)

let record d ~rel ~key ~old_image ~new_image =
  let d =
    match old_image with Some t0 -> remove d ~rel ~key t0 | None -> d
  in
  match new_image with Some t -> add d ~rel ~key t | None -> d

let compose d1 d2 =
  SMap.fold
    (fun rel m acc ->
      KMap.fold
        (fun key c acc ->
          match c with
          | Added t -> record acc ~rel ~key ~old_image:None ~new_image:(Some t)
          | Removed t ->
              record acc ~rel ~key ~old_image:(Some t) ~new_image:None
          | Updated { before; after } ->
              record acc ~rel ~key ~old_image:(Some before)
                ~new_image:(Some after))
        m acc)
    d2 d1

let relations d = List.map fst (SMap.bindings d)

(* Shard projection: group the per-relation change sets by the caller's
   relation→shard assignment. Pure regrouping — no change is copied,
   split, or composed — so merging the pieces back gives the original
   delta and the pieces' footprints are disjoint by construction. *)
module IMap = Map.Make (Int)

let split ~shard_of d =
  SMap.fold
    (fun rel m acc ->
      let shard = shard_of rel in
      IMap.update shard
        (function
          | None -> Some (SMap.singleton rel m)
          | Some piece -> Some (SMap.add rel m piece))
        acc)
    d IMap.empty
  |> IMap.bindings

let change_equal a b =
  match a, b with
  | Added x, Added y | Removed x, Removed y -> Tuple.equal x y
  | Updated a, Updated b ->
      Tuple.equal a.before b.before && Tuple.equal a.after b.after
  | _ -> false

let equal = SMap.equal (KMap.equal change_equal)

(* --- footprints and conflicts --------------------------------------- *)

module KSet = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

type footprint = {
  reads : KSet.t SMap.t;
  writes : KSet.t SMap.t;
}

let empty_footprint = { reads = SMap.empty; writes = SMap.empty }

let fp_add m rel key =
  SMap.update rel
    (fun s -> Some (KSet.add key (Option.value s ~default:KSet.empty)))
    m

let footprint_add_read fp ~rel ~key = { fp with reads = fp_add fp.reads rel key }
let footprint_add_write fp ~rel ~key = { fp with writes = fp_add fp.writes rel key }

let fp_union = SMap.union (fun _ a b -> Some (KSet.union a b))

let footprint_union a b =
  { reads = fp_union a.reads b.reads; writes = fp_union a.writes b.writes }

let fp_bindings m =
  List.map (fun (rel, s) -> rel, KSet.elements s) (SMap.bindings m)

let footprint_reads fp = fp_bindings fp.reads
let footprint_writes fp = fp_bindings fp.writes

let footprint d =
  SMap.fold
    (fun rel m fp ->
      KMap.fold
        (fun key c fp ->
          (* Every net change writes its key; [Removed]/[Updated] also
             consulted the old image, i.e. read it. *)
          let fp = footprint_add_write fp ~rel ~key in
          match c with
          | Added _ -> fp
          | Removed _ | Updated _ -> footprint_add_read fp ~rel ~key)
        m fp)
    d empty_footprint

type conflict_kind =
  | Write_write
  | Write_read

type conflict = {
  rel : string;
  key : Value.t list;
  kind : conflict_kind;
}

let conflict_kind_name = function
  | Write_write -> "write-write"
  | Write_read -> "write-read"

let pp_conflict ppf c =
  Fmt.pf ppf "%s conflict on %s(%a)" (conflict_kind_name c.kind) c.rel
    Fmt.(list ~sep:comma Value.pp)
    c.key

let conflict_to_string c = Fmt.str "%a" pp_conflict c

(* Overlaps of [a]'s writes against [b]'s writes and reads. A key both
   written by [a] and written by [b] is a single write-write conflict
   (the write-read overlap it implies is subsumed). *)
let overlaps a b =
  SMap.fold
    (fun rel wa acc ->
      let wb = Option.value (SMap.find_opt rel b.writes) ~default:KSet.empty in
      let rb = Option.value (SMap.find_opt rel b.reads) ~default:KSet.empty in
      let ww = KSet.inter wa wb in
      let wr = KSet.diff (KSet.inter wa rb) ww in
      KSet.fold (fun key acc -> { rel; key; kind = Write_write } :: acc) ww acc
      |> KSet.fold (fun key acc -> { rel; key; kind = Write_read } :: acc) wr)
    a.writes []

let conflict_compare a b =
  match String.compare a.rel b.rel with
  | 0 -> (
      match List.compare Value.compare a.key b.key with
      | 0 -> compare a.kind b.kind
      | n -> n)
  | n -> n

let conflicts_footprint a b =
  List.sort_uniq conflict_compare (overlaps a b @ overlaps b a)

let conflicts a b = conflicts_footprint (footprint a) (footprint b)

let merge a b =
  let conflict = ref None in
  let merged =
    SMap.union
      (fun rel ma mb ->
        Some
          (KMap.union
             (fun key _ _ ->
               (if !conflict = None then
                  conflict := Some { rel; key; kind = Write_write });
               None)
             ma mb))
      a b
  in
  match !conflict with Some c -> Error c | None -> Ok merged

let bindings d =
  List.map (fun (rel, m) -> rel, KMap.bindings m) (SMap.bindings d)

let of_bindings l =
  List.fold_left
    (fun d (rel, changes) ->
      update_rel d rel (fun m ->
          List.fold_left (fun m (key, c) -> KMap.add key c m) m changes))
    empty l

let changes d rel =
  match SMap.find_opt rel d with
  | None -> []
  | Some m -> List.map snd (KMap.bindings m)

let fold f d init =
  SMap.fold (fun rel m acc -> KMap.fold (fun _ c acc -> f rel c acc) m acc) d init

let pp_change ppf = function
  | Added t -> Fmt.pf ppf "+ %a" Tuple.pp t
  | Removed t -> Fmt.pf ppf "- %a" Tuple.pp t
  | Updated { before; after } ->
      Fmt.pf ppf "~ %a -> %a" Tuple.pp before Tuple.pp after

let pp ppf d =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (rel, m) ->
          Fmt.pf ppf "@[<v2>%s:@,%a@]" rel
            (list ~sep:cut pp_change)
            (List.map snd (KMap.bindings m))))
    (SMap.bindings d)
