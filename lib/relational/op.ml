type t =
  | Insert of string * Tuple.t
  | Delete of string * Value.t list
  | Replace of string * Value.t list * Tuple.t

let relation = function
  | Insert (r, _) | Delete (r, _) | Replace (r, _, _) -> r

let is_insert = function Insert _ -> true | Delete _ | Replace _ -> false
let is_delete = function Delete _ -> true | Insert _ | Replace _ -> false
let is_replace = function Replace _ -> true | Insert _ | Delete _ -> false

let compare a b =
  let key_compare = List.compare Value.compare in
  match a, b with
  | Insert (r1, t1), Insert (r2, t2) -> (
      match String.compare r1 r2 with
      | 0 -> Tuple.compare t1 t2
      | c -> c)
  | Delete (r1, k1), Delete (r2, k2) -> (
      match String.compare r1 r2 with
      | 0 -> key_compare k1 k2
      | c -> c)
  | Replace (r1, k1, t1), Replace (r2, k2, t2) -> (
      match String.compare r1 r2 with
      | 0 -> ( match key_compare k1 k2 with 0 -> Tuple.compare t1 t2 | c -> c)
      | c -> c)
  | Insert _, (Delete _ | Replace _) -> -1
  | Delete _, Insert _ -> 1
  | Delete _, Replace _ -> -1
  | Replace _, (Insert _ | Delete _) -> 1

let equal a b = compare a b = 0

let pp_key = Fmt.(list ~sep:(any ", ") Value.pp)

let pp ppf = function
  | Insert (r, t) -> Fmt.pf ppf "INSERT %s %a" r Tuple.pp t
  | Delete (r, k) -> Fmt.pf ppf "DELETE %s key=(%a)" r pp_key k
  | Replace (r, k, t) -> Fmt.pf ppf "REPLACE %s key=(%a) with %a" r pp_key k Tuple.pp t

let pp_list ppf ops =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp) ops
