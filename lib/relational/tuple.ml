module M = Map.Make (String)
module SSet = Set.Make (String)

type t = Value.t M.t

let empty = M.empty

let make bindings =
  List.fold_left (fun m (k, v) -> M.add k v m) M.empty bindings

let get t n = match M.find_opt n t with Some v -> v | None -> Value.Null
let get_opt t n = M.find_opt n t
let mem t n = M.mem n t
let set t n v = M.add n v t
let remove t n = M.remove n t
let attributes t = List.map fst (M.bindings t)
let bindings t = M.bindings t
let cardinal t = M.cardinal t

let union a b = M.union (fun _ _ vb -> Some vb) a b

let project keep t =
  let keep = SSet.of_list keep in
  M.filter (fun n _ -> SSet.mem n keep) t

let project_null keep t =
  List.fold_left (fun m n -> M.add n (get t n) m) M.empty keep

let rename_attrs renames t =
  M.fold
    (fun n v acc ->
      let n' = match List.assoc_opt n renames with Some n' -> n' | None -> n in
      M.add n' v acc)
    t M.empty

let equal = M.equal Value.equal
let compare = M.compare Value.compare

let equal_on attrs a b =
  List.for_all (fun n -> Value.equal (get a n) (get b n)) attrs

let key_of schema t = List.map (get t) (Schema.key_attributes schema)
let values_of attrs t = List.map (get t) attrs

let conforms schema t =
  let names = Schema.attribute_names schema in
  let name_set = SSet.of_list names in
  let extra = List.filter (fun n -> not (SSet.mem n name_set)) (attributes t) in
  match extra with
  | n :: _ ->
      Error (Fmt.str "tuple does not conform to %s: extra attribute %s"
               schema.Schema.name n)
  | [] ->
      let bad_domain =
        List.find_opt
          (fun n ->
            match Schema.domain_of schema n with
            | Some d -> not (Value.conforms d (get t n))
            | None -> false)
          names
      in
      (match bad_domain with
      | Some n ->
          Error (Fmt.str "tuple does not conform to %s: wrong domain for %s"
                   schema.Schema.name n)
      | None -> (
          match
            List.find_opt
              (fun k -> Value.is_null (get t k))
              (Schema.key_attributes schema)
          with
          | Some k ->
              Error (Fmt.str "tuple does not conform to %s: null key attribute %s"
                       schema.Schema.name k)
          | None -> Ok ()))

let matches ~on:(xs1, xs2) t1 t2 =
  List.length xs1 = List.length xs2
  && List.for_all2
       (fun x1 x2 ->
         let v1 = get t1 x1 and v2 = get t2 x2 in
         (not (Value.is_null v1)) && Value.equal v1 v2)
       xs1 xs2

let has_nulls_on attrs t = List.exists (fun n -> Value.is_null (get t n)) attrs

let pp ppf t =
  let pp_binding ppf (n, v) = Fmt.pf ppf "%s=%a" n Value.pp v in
  Fmt.pf ppf "@[<h>{%a}@]" Fmt.(list ~sep:(any "; ") pp_binding) (bindings t)
