(** Atomic execution of operation sequences.

    The paper requires transactional semantics at two points: VO-CD must
    roll back "in a case where replacements are not allowed on any of the
    referencing peninsulas", and every translated update must either apply
    fully or not at all. With a persistent {!Database.t}, atomicity is
    obtained by discarding the candidate state on failure. *)

type outcome =
  | Committed of Database.t  (** all ops applied *)
  | Rolled_back of {
      reason : string;
      failed_op : Op.t option;
    }

val run : Database.t -> Op.t list -> outcome
(** Apply all ops or none. *)

val run_delta : Database.t -> Op.t list -> outcome * Delta.t
(** Like {!run}, additionally returning the net {!Delta.t} of the
    sequence (empty on rollback) so the caller can validate the
    committed state incrementally. *)

val run_result : Database.t -> Op.t list -> (Database.t, string) result

val reject : string -> outcome
(** A rollback decided before any database op was attempted (e.g. the
    translator forbids the request). *)

val is_committed : outcome -> bool
val pp : Format.formatter -> outcome -> unit
