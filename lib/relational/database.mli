(** A database: a catalog of named relation instances.

    Databases are persistent values; every operation returns a new
    database. This keeps the update-translation engine purely functional:
    a rejected transaction simply discards the candidate state. *)

type t

type error =
  | Unknown_relation of string
  | Relation_exists of string
  | Relation_error of string * Relation.error
      (** relation name, underlying error *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val empty : t

val create_relation : t -> Schema.t -> (t, error) result
val create_relation_exn : t -> Schema.t -> t
val drop_relation : t -> string -> (t, error) result
val relation : t -> string -> (Relation.t, error) result
val relation_exn : t -> string -> Relation.t
val schema_of : t -> string -> (Schema.t, error) result
val mem_relation : t -> string -> bool
val relation_names : t -> string list
(** Sorted. *)

val with_relation :
  t -> string -> (Relation.t -> (Relation.t, Relation.error) result) ->
  (t, error) result

val create_index : t -> string -> string list -> (t, error) result
(** Build a secondary index on the named relation (see
    {!Relation.create_index}); maintained by all later operations. *)

val insert : t -> string -> Tuple.t -> (t, error) result
val delete : t -> string -> Value.t list -> (t, error) result
val replace : t -> string -> old_key:Value.t list -> Tuple.t -> (t, error) result

val apply : t -> Op.t -> (t, error) result
(** Execute one {!Op.t}. *)

val apply_all : t -> Op.t list -> (t, error * Op.t) result
(** Execute a sequence left-to-right; on failure, reports the offending
    op. The input database is unchanged either way (persistence). *)

val apply_all_delta : t -> Op.t list -> (t * Delta.t, error * Op.t) result
(** Like {!apply_all}, additionally returning the {e net} structured
    delta of the sequence — the input to incremental global validation.
    Old and new tuple images are the stored (padded) forms. *)

val apply_delta : t -> Delta.t -> (t, error) result
(** Batched application of a net {!Delta.t} read against this database
    (every [Added] key absent, every [Removed]/[Updated] old image
    present): each touched relation is fetched and stored once, however
    many keys changed. [apply_delta db d] equals replaying the op
    sequence [d] summarizes — it is how a group commit publishes a
    merged delta in one pass. *)

val total_tuples : t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
