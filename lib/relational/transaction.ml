type outcome =
  | Committed of Database.t
  | Rolled_back of {
      reason : string;
      failed_op : Op.t option;
    }

let run_delta db ops =
  match Database.apply_all_delta db ops with
  | Ok (db', delta) -> Committed db', delta
  | Error (e, op) ->
      ( Rolled_back { reason = Database.error_to_string e; failed_op = Some op },
        Delta.empty )

let run db ops = fst (run_delta db ops)

let run_result db ops =
  match run db ops with
  | Committed db' -> Ok db'
  | Rolled_back { reason; _ } -> Error reason

let reject reason = Rolled_back { reason; failed_op = None }

let is_committed = function Committed _ -> true | Rolled_back _ -> false

let pp ppf = function
  | Committed _ -> Fmt.string ppf "committed"
  | Rolled_back { reason; failed_op } ->
      Fmt.pf ppf "rolled back: %s%a" reason
        Fmt.(option (any " (at " ++ Op.pp ++ any ")"))
        failed_op
