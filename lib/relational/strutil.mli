(** Tiny string helpers shared by the CLI and the test suites (no
    external deps). *)

val contains : sub:string -> string -> bool
(** [contains ~sub s]: does [s] contain [sub] as a substring? The empty
    string is a substring of everything. *)
