(** Database update operations.

    The update-translation algorithms of the paper (VO-CD, VO-CI, VO-R)
    produce explicit sequences of these operations; {!Database.apply} and
    {!Transaction.run} execute them. Keeping the translation result
    first-class makes translations inspectable (tests compare op lists
    against the paper's worked examples) and makes atomic rollback
    trivial. *)

type t =
  | Insert of string * Tuple.t  (** relation name, new tuple *)
  | Delete of string * Value.t list  (** relation name, key of the victim *)
  | Replace of string * Value.t list * Tuple.t
      (** relation name, key of the old tuple, full new tuple *)

val relation : t -> string

val is_insert : t -> bool
val is_delete : t -> bool
val is_replace : t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (arbitrary but fixed), for use as a [Set]/[Map] key. *)

val pp : Format.formatter -> t -> unit
val pp_list : Format.formatter -> t list -> unit
