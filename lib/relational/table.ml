let render ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  (* Rows as padded arrays: cell access per width pass is O(1) instead of
     List.nth per cell. *)
  let to_array r =
    let a = Array.make ncols "" in
    List.iteri (fun i c -> if i < ncols then a.(i) <- c) r;
    a
  in
  let arrays = List.map to_array all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun a ->
      Array.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) a)
    arrays;
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line a =
    "| "
    ^ String.concat " | "
        (Array.to_list (Array.mapi (fun i c -> pad c widths.(i)) a))
    ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  match arrays with
  | [] -> rule
  | header_a :: rows_a ->
      String.concat "\n"
        ((rule :: line header_a :: rule :: List.map line rows_a) @ [ rule ])

let of_tuples ~attrs tuples =
  let row t =
    List.map (fun a -> Fmt.str "%a" Value.pp_plain (Tuple.get t a)) attrs
  in
  render ~header:attrs (List.map row tuples)

let of_relation r =
  let attrs = Schema.attribute_names (Relation.schema r) in
  of_tuples ~attrs (Relation.to_list r)

let of_rset (rs : Algebra.rset) = of_tuples ~attrs:rs.attrs rs.rows
