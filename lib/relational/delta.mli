(** Structured deltas: the net effect of an operation sequence on a
    database, as per-relation change sets carrying both old and new
    tuple images.

    A delta is what incremental global validation consumes: instead of
    re-checking every connection against every tuple (O(|DB|)), the
    checker visits only the tuples a transaction touched, following
    connections incident to their relations. The delta is {e net}:
    recording an insert and then a delete of the same key cancels out,
    and an insert followed by a replace collapses to a single [Added]
    with the final image. Consequently a delta read against the
    post-transaction database is always truthful — every [Added] /
    [Updated] image is present, every [Removed] key is absent. *)

(** Net change to the tuple at one primary key. *)
type change =
  | Added of Tuple.t  (** key absent before, [t] stored now *)
  | Removed of Tuple.t  (** old image; key absent now *)
  | Updated of {
      before : Tuple.t;
      after : Tuple.t;
    }  (** same key, old and new stored images *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of (relation, key) net changes. *)

val add : t -> rel:string -> key:Value.t list -> Tuple.t -> t
(** Record that [key] of [rel] now holds the stored image [t].
    Composes: [Removed t0] at the same key becomes
    [Updated {before = t0; after = t}]. *)

val remove : t -> rel:string -> key:Value.t list -> Tuple.t -> t
(** Record that [key] of [rel] (old image [t]) is gone. Composes:
    [Added _] cancels out, [Updated {before; _}] becomes
    [Removed before]. *)

val record : t -> rel:string -> key:Value.t list -> old_image:Tuple.t option -> new_image:Tuple.t option -> t
(** General entry point: [old_image]/[new_image] are the stored tuples
    at [key] before and after the operation (a key-changing replace is
    a [remove] at the old key plus an [add] at the new one). *)

val relations : t -> string list
(** Relations with at least one net change, sorted. *)

val changes : t -> string -> change list
(** Net changes recorded for a relation (key order). *)

val fold : (string -> change -> 'a -> 'a) -> t -> 'a -> 'a
(** Over every net change of every relation. *)

val pp : Format.formatter -> t -> unit
