(** Structured deltas: the net effect of an operation sequence on a
    database, as per-relation change sets carrying both old and new
    tuple images.

    A delta is what incremental global validation consumes: instead of
    re-checking every connection against every tuple (O(|DB|)), the
    checker visits only the tuples a transaction touched, following
    connections incident to their relations. The delta is {e net}:
    recording an insert and then a delete of the same key cancels out,
    and an insert followed by a replace collapses to a single [Added]
    with the final image. Consequently a delta read against the
    post-transaction database is always truthful — every [Added] /
    [Updated] image is present, every [Removed] key is absent. *)

(** Net change to the tuple at one primary key. *)
type change =
  | Added of Tuple.t  (** key absent before, [t] stored now *)
  | Removed of Tuple.t  (** old image; key absent now *)
  | Updated of {
      before : Tuple.t;
      after : Tuple.t;
    }  (** same key, old and new stored images *)

type t

val empty : t
val is_empty : t -> bool

val cardinal : t -> int
(** Number of (relation, key) net changes. *)

val add : t -> rel:string -> key:Value.t list -> Tuple.t -> t
(** Record that [key] of [rel] now holds the stored image [t].
    Composes: [Removed t0] at the same key becomes
    [Updated {before = t0; after = t}]. *)

val remove : t -> rel:string -> key:Value.t list -> Tuple.t -> t
(** Record that [key] of [rel] (old image [t]) is gone. Composes:
    [Added _] cancels out, [Updated {before; _}] becomes
    [Removed before]. *)

val record : t -> rel:string -> key:Value.t list -> old_image:Tuple.t option -> new_image:Tuple.t option -> t
(** General entry point: [old_image]/[new_image] are the stored tuples
    at [key] before and after the operation (a key-changing replace is
    a [remove] at the old key plus an [add] at the new one). *)

val compose : t -> t -> t
(** [compose d1 d2]: the net effect of [d1] followed by [d2] — [d2] read
    against the state [d1] produced. Cancellations apply ([Added] then
    [Removed] vanishes; [Added] then [Updated] collapses to [Added] with
    the final image), so composing a commit sequence yields one delta
    truthful against the final state. Associative; [empty] is the
    identity. This is how a lagging consumer (e.g. the materialized
    view-object cache) catches up over several commits in one pass. *)

val relations : t -> string list
(** Relations with at least one net change, sorted. *)

val split : shard_of:(string -> int) -> t -> (int * t) list
(** Project the delta onto shards: group its per-relation change sets by
    [shard_of] (a {!Structural.Partition} plan's assignment, passed as a
    plain function to keep this layer free of structural dependencies).
    Returns the non-empty pieces sorted by shard id. The pieces cover
    disjoint relation sets, so {!merge}-ing them back (in any order)
    yields the original delta, and a single-piece result means the delta
    routes to one shard. *)

val changes : t -> string -> change list
(** Net changes recorded for a relation (key order). *)

val bindings : t -> (string * (Value.t list * change) list) list
(** Every net change with its key, grouped by relation (both sorted) —
    the serializable image of the delta. *)

val of_bindings : (string * (Value.t list * change) list) list -> t
(** Rebuild a delta from {!bindings} output verbatim: changes are
    installed as given, not composed (a later change at a key already
    present simply wins). [of_bindings (bindings d)] equals [d]. *)

val fold : (string -> change -> 'a -> 'a) -> t -> 'a -> 'a
(** Over every net change of every relation. *)

val equal : t -> t -> bool
(** Same net changes (same relations, keys, and old/new images). *)

(** {1 Footprints, conflicts, and merging}

    The concurrent serving core ({!Vo_core.Engine} staging, group
    commit, and session-level optimistic concurrency control) treats a
    delta as a first-class artifact: two deltas staged against the same
    base state can be {e merged} and applied as one batch exactly when
    their footprints do not overlap. *)

type footprint
(** Per-relation read and write key sets. For a delta, every changed
    key is a write, and keys whose old image was consulted ([Removed],
    [Updated]) are also reads; callers may widen the read set with keys
    a translation depended on without changing
    ({!footprint_add_read}). *)

val footprint : t -> footprint
val empty_footprint : footprint
val footprint_add_read : footprint -> rel:string -> key:Value.t list -> footprint
val footprint_add_write : footprint -> rel:string -> key:Value.t list -> footprint
val footprint_union : footprint -> footprint -> footprint

val footprint_reads : footprint -> (string * Value.t list list) list
(** Sorted [(relation, keys)] pairs of the read set. *)

val footprint_writes : footprint -> (string * Value.t list list) list

type conflict_kind =
  | Write_write  (** both sides change the key *)
  | Write_read  (** one side changes a key the other side depends on *)

type conflict = {
  rel : string;
  key : Value.t list;
  kind : conflict_kind;
}

val conflicts : t -> t -> conflict list
(** Key overlaps between the two deltas' footprints, sorted and
    deduplicated ([Write_write] subsumes the [Write_read] it implies).
    Symmetric: [conflicts a b] and [conflicts b a] report the same
    conflicts. Empty iff the deltas commute and {!merge} succeeds. *)

val conflicts_footprint : footprint -> footprint -> conflict list
(** Like {!conflicts} on explicit (possibly widened) footprints. *)

val merge : t -> t -> (t, conflict) result
(** Disjoint union of the change sets: the net effect of applying both
    deltas, in either order, from the common base state. Errors with a
    witness on the first (relation, key) changed by both sides.
    Associative and commutative where defined. *)

val conflict_kind_name : conflict_kind -> string
val conflict_to_string : conflict -> string
val pp_conflict : Format.formatter -> conflict -> unit
val pp : Format.formatter -> t -> unit
