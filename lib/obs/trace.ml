type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  mutable tags : (string * string) list;
  start_ns : float;
  mutable duration_ns : float;
}

type sink = span -> unit

let the_sink : sink option ref = ref None
let stack : span list ref = ref []
let next_id = ref 1

let set_sink s =
  the_sink := s;
  stack := [];
  next_id := 1

let active () = Option.is_some !the_sink

let with_span ?(tags = []) name f =
  match !the_sink with
  | None -> f ()
  | Some emit ->
      let parent, depth =
        match !stack with [] -> 0, 0 | s :: _ -> s.id, s.depth + 1
      in
      let sp =
        {
          id = !next_id;
          parent;
          depth;
          name;
          tags;
          start_ns = Metrics.now_ns ();
          duration_ns = 0.;
        }
      in
      incr next_id;
      stack := sp :: !stack;
      let finally () =
        sp.duration_ns <- Metrics.now_ns () -. sp.start_ns;
        (* Pop through the entry even if an exception unwound past
           intermediate frames without their finalizers running. *)
        (match !stack with
        | s :: rest when s == sp -> stack := rest
        | other -> (
            match List.find_opt (fun s -> s == sp) other with
            | None -> ()
            | Some _ ->
                let rec drop = function
                  | s :: rest -> if s == sp then rest else drop rest
                  | [] -> []
                in
                stack := drop other));
        emit sp
      in
      Fun.protect ~finally f

let tag k v =
  match !stack with
  | [] -> ()
  | sp :: _ -> sp.tags <- sp.tags @ [ k, v ]

(* --- sinks ------------------------------------------------------------ *)

module Ring = struct
  type t = {
    capacity : int;
    buf : span option array;
    mutable next : int;  (* total spans ever written *)
  }

  let create capacity =
    let capacity = max capacity 1 in
    { capacity; buf = Array.make capacity None; next = 0 }

  let sink r sp =
    r.buf.(r.next mod r.capacity) <- Some sp;
    r.next <- r.next + 1

  let sink r = sink r

  let contents r =
    let n = min r.next r.capacity in
    List.init n (fun i ->
        r.buf.((r.next - n + i) mod r.capacity))
    |> List.filter_map Fun.id

  let clear r =
    Array.fill r.buf 0 r.capacity None;
    r.next <- 0
end

(* --- line formats ----------------------------------------------------- *)

let quote s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let sexp_line sp =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "(span (id %d) (parent %d) (depth %d) (name %s)" sp.id
       sp.parent sp.depth (quote sp.name));
  Buffer.add_string b
    (Printf.sprintf " (start_ns %.0f) (dur_ns %.0f)" sp.start_ns
       sp.duration_ns);
  if sp.tags <> [] then begin
    Buffer.add_string b " (tags";
    List.iter
      (fun (k, v) -> Buffer.add_string b (Printf.sprintf " (%s %s)" k (quote v)))
      sp.tags;
    Buffer.add_string b ")"
  end;
  Buffer.add_string b ")";
  Buffer.contents b

let json_line sp =
  Json.to_string
    (Json.Obj
       [
         "id", Json.Num (Float.of_int sp.id);
         "parent", Json.Num (Float.of_int sp.parent);
         "depth", Json.Num (Float.of_int sp.depth);
         "name", Json.Str sp.name;
         "start_ns", Json.Num sp.start_ns;
         "dur_ns", Json.Num sp.duration_ns;
         "tags", Json.Obj (List.map (fun (k, v) -> k, Json.Str v) sp.tags);
       ])

let channel_sink ~format oc sp =
  let line = match format with `Sexp -> sexp_line sp | `Json -> json_line sp in
  output_string oc line;
  output_char oc '\n';
  flush oc
