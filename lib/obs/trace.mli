(** Structured trace spans: where a request's time goes, step by step.

    A span covers one named region of execution (a pipeline stage, a
    journal append, a session rebase). Spans nest — a span opened while
    another is active records it as its parent — and carry string tags
    (the validation mode, the object name, the rebase cause). Finished
    spans are delivered to the installed {!type-sink}; with no sink
    installed ({!active} is false) the whole layer is a single pointer
    test and instrumented code runs untraced.

    Span ids are unique per process run, dense from 1; [parent = 0]
    marks a root span. See DESIGN.md §5.4 for the span taxonomy. *)

type span = {
  id : int;
  parent : int;  (** 0 for a root span *)
  depth : int;  (** nesting depth at open time; roots are 0 *)
  name : string;
  mutable tags : (string * string) list;
  start_ns : float;
  mutable duration_ns : float;
}

type sink = span -> unit
(** Called once per span, at finish time (children before parents). *)

val set_sink : sink option -> unit
(** Install the sink ([None] disables tracing). Installing a sink also
    resets the id counter and the open-span stack. *)

val active : unit -> bool

val with_span : ?tags:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span of the given name. The span is
    finished (and emitted) whether the thunk returns or raises. With no
    sink installed, exactly the thunk. *)

val tag : string -> string -> unit
(** Attach a tag to the innermost open span (no-op when none is open
    or tracing is off) — for facts only known mid-span, e.g. how many
    updates a commit rebased. *)

(** {1 Sinks} *)

module Ring : sig
  (** A fixed-capacity in-memory sink holding the most recent spans —
      the default destination when no file sink is given. *)

  type t

  val create : int -> t
  val sink : t -> sink
  val contents : t -> span list
  (** Oldest first; at most [capacity] spans. *)

  val clear : t -> unit
end

val channel_sink : format:[ `Sexp | `Json ] -> out_channel -> sink
(** Write one line per finished span to the channel (the [--trace FILE]
    emitter). The channel is flushed per line, so a crashed process
    leaves at most the in-flight line incomplete. *)

(** {1 Line formats} *)

val sexp_line : span -> string
(** [(span (id N) (parent N) (depth N) (name "...") (start_ns N)
    (dur_ns N) (tags (k "v") ...))] — parses with {!Relational.Sexp}. *)

val json_line : span -> string
(** The span as a single-line JSON object (parses with {!Json}). *)
