(** A minimal JSON value type with a printer and a parser.

    The observability layer speaks JSON at its edges — [penguin stats
    --json], the benchmark harness's [--json] output, the trace line
    emitter — and the CI regression gate reads it back. This module is
    the single (zero-dependency) implementation both sides share, so
    every JSON document the system writes round-trips through its own
    parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering (no newlines anywhere): numbers are
    printed with enough precision to round-trip, strings are escaped
    per RFC 8259. *)

val pp : Format.formatter -> t -> unit
(** Indented multi-line rendering, for human-facing output. *)

val parse : string -> (t, string) result
(** Parse one JSON document (surrounding whitespace allowed). Errors
    carry the byte offset of the failure. *)

val equal : t -> t -> bool

(** {1 Decoding helpers} *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
(** [Num] payload; [None] otherwise (including [Null]). *)

val to_str : t -> string option

val to_list : t -> t list option
(** [Arr] payload. *)
