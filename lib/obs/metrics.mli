(** A process-wide metrics registry: monotonic counters, gauges, and
    fixed-bucket latency histograms.

    Every primitive is O(1) on the hot path — a counter increment is a
    flag test plus an integer store, a histogram observation a flag
    test plus one bucket walk over a fixed array — and the whole layer
    collapses to the flag test when disabled ({!enable} has not been
    called), so instrumented code pays one branch in production-off
    mode. See DESIGN.md §5.4 for the metric-name taxonomy and the
    disabled-mode guarantees.

    Metrics are registered once (by name, at first use) and live for
    the process; {!reset} zeroes values but keeps registrations, so a
    test can measure one scenario in isolation. The registry is
    domain-safe: counters and gauges are [Atomic.t] cells (increments
    are fetch-and-add — concurrent shard engines never tear a count),
    histograms serialize their multi-field updates behind a
    per-histogram mutex, and registration itself is mutex-guarded, so
    one engine per shard can record into shared metrics from its own
    domain. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val now_ns : unit -> float
(** Wall-clock time in nanoseconds (the span/latency timebase). *)

(** {1 Counters} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

val counter : ?help:string -> string -> Counter.t
(** Register (or fetch, if already registered) the named counter.
    @raise Invalid_argument if the name is registered as another kind. *)

(** {1 Gauges} *)

module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
end

val gauge : ?help:string -> string -> Gauge.t

(** {1 Histograms} *)

module Histogram : sig
  type t

  val observe : t -> float -> unit
  (** Record one observation (nanoseconds for latency histograms). *)

  val count : t -> int
  val sum : t -> float
  val max_value : t -> float

  val quantile : t -> float -> float
  (** [quantile h q] (0 ≤ q ≤ 1): the upper bound of the bucket holding
      the q-th observation, clamped to the observed maximum (so the
      unbounded overflow bucket reports a finite figure) — an estimate
      whose error is the bucket width. 0 when the histogram is empty. *)

  val buckets : t -> (float * int) list
  (** (upper bound, count) pairs, in bound order; the final pair has
      bound [infinity] (the overflow bucket). *)

  val merge : t -> t -> (t, string) result
  (** Combine two histograms over the same bucket boundaries into a
      fresh, unregistered histogram. Errors when boundaries differ. *)
end

val histogram : ?help:string -> ?bounds:float list -> string -> Histogram.t
(** [bounds] are bucket upper bounds, strictly increasing (default:
    26 log-spaced latency buckets from 1 µs to ~16.8 s). An implicit
    overflow bucket catches everything above the last bound. *)

val time : Histogram.t -> (unit -> 'a) -> 'a
(** Run the thunk, recording its wall-clock duration (ns) when metrics
    are enabled; when disabled, exactly the thunk. The duration is
    recorded whether the thunk returns or raises. *)

(** {1 Registry} *)

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

val all : unit -> (string * string * metric) list
(** (name, help, metric), sorted by name. *)

val reset : unit -> unit
(** Zero every registered metric's value (registrations survive). *)

val to_json : unit -> Json.t
(** The whole registry as one JSON object:
    [{"counters": {name: value, ...},
      "gauges": {name: value, ...},
      "histograms": {name: {"count": n, "sum_ns": s, "max_ns": m,
                            "p50_ns": ..., "p90_ns": ..., "p99_ns": ...}}}] *)

val pp_table : Format.formatter -> unit -> unit
(** Aligned human-readable table of the registry (what [penguin stats]
    prints). *)
