type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* Integral floats print without a fractional part; everything else with
   enough digits to round-trip. NaN and infinities are not JSON — emit
   null, matching what the bench harness did for unmeasured rows. *)
let number b f =
  if Float.is_nan f || Float.abs f = infinity then Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> number b f
  | Str s -> escape b s
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          write b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

let rec pp ppf = function
  | (Null | Bool _ | Num _ | Str _) as v -> Fmt.string ppf (to_string v)
  | Arr [] -> Fmt.string ppf "[]"
  | Arr items ->
      Fmt.pf ppf "@[<v 2>[@,%a@]@,]"
        Fmt.(list ~sep:(any ",@,") pp)
        items
  | Obj [] -> Fmt.string ppf "{}"
  | Obj fields ->
      let pp_field ppf (k, v) =
        Fmt.pf ppf "%s: %a" (to_string (Str k)) pp v
      in
      Fmt.pf ppf "@[<v 2>{@,%a@]@,}"
        (Fmt.list ~sep:(Fmt.any ",@,") pp_field)
        fields

(* --- parsing ---------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let fail i msg = raise (Fail (i, msg)) in
  let rec skip i =
    if i < n then
      match s.[i] with ' ' | '\t' | '\n' | '\r' -> skip (i + 1) | _ -> i
    else i
  in
  let literal i word v =
    let l = String.length word in
    if i + l <= n && String.sub s i l = word then v, i + l
    else fail i ("expected " ^ word)
  in
  let string_at i =
    (* i points at the opening quote *)
    let b = Buffer.create 16 in
    let rec go i =
      if i >= n then fail i "unterminated string"
      else
        match s.[i] with
        | '"' -> Buffer.contents b, i + 1
        | '\\' ->
            if i + 1 >= n then fail i "unterminated escape"
            else (
              (match s.[i + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if i + 5 >= n then fail i "bad \\u escape"
                  else (
                    match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
                    | None -> fail i "bad \\u escape"
                    | Some code when code < 0x80 ->
                        Buffer.add_char b (Char.chr code)
                    | Some code ->
                        (* Non-ASCII escapes: UTF-8 encode the code point
                           (surrogate pairs are not recombined; the
                           system never emits them). *)
                        if code < 0x800 then (
                          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F))))
                        else (
                          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                          Buffer.add_char b
                            (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))))
              | c -> fail i (Printf.sprintf "bad escape \\%c" c));
              let skip = if s.[i + 1] = 'u' then 6 else 2 in
              go (i + skip))
        | c -> Buffer.add_char b c; go (i + 1)
    in
    go (i + 1)
  in
  let number_at i =
    let j = ref i in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !j < n && num_char s.[!j] do incr j done;
    match float_of_string_opt (String.sub s i (!j - i)) with
    | Some f -> Num f, !j
    | None -> fail i "bad number"
  in
  let rec value i =
    let i = skip i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | 'n' -> literal i "null" Null
      | 't' -> literal i "true" (Bool true)
      | 'f' -> literal i "false" (Bool false)
      | '"' ->
          let str, i = string_at i in
          Str str, i
      | '[' -> array (i + 1) []
      | '{' -> obj (i + 1) []
      | '-' | '0' .. '9' -> number_at i
      | c -> fail i (Printf.sprintf "unexpected character %c" c)
  and array i acc =
    let i = skip i in
    if i < n && s.[i] = ']' then Arr (List.rev acc), i + 1
    else
      let v, i = value i in
      let i = skip i in
      if i < n && s.[i] = ',' then array (i + 1) (v :: acc)
      else if i < n && s.[i] = ']' then Arr (List.rev (v :: acc)), i + 1
      else fail i "expected , or ] in array"
  and obj i acc =
    let i = skip i in
    if i < n && s.[i] = '}' then Obj (List.rev acc), i + 1
    else if i < n && s.[i] = '"' then
      let k, i = string_at i in
      let i = skip i in
      if i >= n || s.[i] <> ':' then fail i "expected : after object key"
      else
        let v, i = value (i + 1) in
        let i = skip i in
        if i < n && s.[i] = ',' then obj (i + 1) ((k, v) :: acc)
        else if i < n && s.[i] = '}' then Obj (List.rev ((k, v) :: acc)), i + 1
        else fail i "expected , or } in object"
    else fail i "expected object key"
  in
  match value 0 with
  | v, i ->
      let i = skip i in
      if i <> n then Error (Printf.sprintf "json: trailing input at byte %d" i)
      else Ok v
  | exception Fail (i, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg i)

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
      List.length a = List.length b
      && List.for_all2
           (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
           a b
  | _ -> false

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr items -> Some items | _ -> None
