(* Domain-safe: counters and gauges are [Atomic.t] cells (an increment
   is one fetch-and-add — no torn counts under concurrent shard
   engines), histograms serialize multi-field observations behind a
   per-histogram mutex, and registration takes a registry mutex. The
   enabled flag stays a plain ref: readers race it, but a stale read
   only delays enabling by one operation, never corrupts a value. *)

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

let now_ns () = Unix.gettimeofday () *. 1e9

module Counter = struct
  type t = int Atomic.t

  let incr c = if !on then Atomic.incr c
  let add c n = if !on then ignore (Atomic.fetch_and_add c n)
  let value c = Atomic.get c
end

module Gauge = struct
  type t = float Atomic.t

  let set g v = if !on then Atomic.set g v

  let add g v =
    if !on then begin
      let rec cas () =
        let cur = Atomic.get g in
        if not (Atomic.compare_and_set g cur (cur +. v)) then cas ()
      in
      cas ()
    end

  let value g = Atomic.get g
end

(* 1 µs .. ~16.8 s, doubling: wide enough for a single fsync'd commit
   and fine enough to separate the µs-scale pipeline stages. *)
let default_bounds = List.init 25 (fun i -> 1e3 *. Float.of_int (1 lsl i))

module Histogram = struct
  type t = {
    bounds : float array;  (* strictly increasing upper bounds *)
    counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
    mutable count : int;
    mutable sum : float;
    mutable max_v : float;
    lock : Mutex.t;
        (* An observation updates four fields; the mutex keeps them
           mutually consistent across domains. Uncontended lock/unlock
           is tens of ns — noise next to the µs-scale spans recorded. *)
  }

  let make bounds =
    {
      bounds = Array.of_list bounds;
      counts = Array.make (List.length bounds + 1) 0;
      count = 0;
      sum = 0.;
      max_v = 0.;
      lock = Mutex.create ();
    }

  let locked h f =
    Mutex.lock h.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

  (* The bucket walk is over a fixed-size array: O(1) per observation. *)
  let bucket_of h v =
    let n = Array.length h.bounds in
    let rec go i = if i >= n || v <= h.bounds.(i) then i else go (i + 1) in
    go 0

  let record h v =
    locked h @@ fun () ->
    h.counts.(bucket_of h v) <- h.counts.(bucket_of h v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v > h.max_v then h.max_v <- v

  let observe h v = if !on then record h v
  let count h = locked h (fun () -> h.count)
  let sum h = locked h (fun () -> h.sum)
  let max_value h = locked h (fun () -> h.max_v)

  let quantile h q =
    locked h @@ fun () ->
    if h.count = 0 then 0.
    else
      let target = q *. Float.of_int h.count in
      let n = Array.length h.bounds in
      let rec go i seen =
        if i > n then h.max_v
        else
          let seen = seen + h.counts.(i) in
          if Float.of_int seen >= target then
            if i >= n then h.max_v else Float.min h.bounds.(i) h.max_v
          else go (i + 1) seen
      in
      go 0 0

  let buckets h =
    locked h @@ fun () ->
    List.init
      (Array.length h.counts)
      (fun i ->
        ( (if i < Array.length h.bounds then h.bounds.(i) else infinity),
          h.counts.(i) ))

  let merge a b =
    if a.bounds <> b.bounds then Error "histogram merge: different buckets"
    else begin
      (* Snapshot each side under its own lock (never both at once — no
         lock-order hazard), then combine the snapshots. *)
      let snap h = locked h (fun () -> Array.copy h.counts, h.count, h.sum, h.max_v) in
      let ca, na, sa, ma = snap a in
      let cb, nb, sb, mb = snap b in
      let m = make (Array.to_list a.bounds) in
      Array.iteri (fun i c -> m.counts.(i) <- c + cb.(i)) ca;
      m.count <- na + nb;
      m.sum <- sa +. sb;
      m.max_v <- Float.max ma mb;
      Ok m
    end

  let reset h =
    locked h @@ fun () ->
    Array.fill h.counts 0 (Array.length h.counts) 0;
    h.count <- 0;
    h.sum <- 0.;
    h.max_v <- 0.
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

let registry : (string, string * metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let registered f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let counter ?(help = "") name =
  registered @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (_, Counter_m c) -> c
  | Some _ ->
      invalid_arg
        (Printf.sprintf "metric %s is already registered as another kind" name)
  | None ->
      let c = Atomic.make 0 in
      Hashtbl.replace registry name (help, Counter_m c);
      c

let gauge ?(help = "") name =
  registered @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (_, Gauge_m g) -> g
  | Some _ ->
      invalid_arg
        (Printf.sprintf "metric %s is already registered as another kind" name)
  | None ->
      let g = Atomic.make 0. in
      Hashtbl.replace registry name (help, Gauge_m g);
      g

let histogram ?(help = "") ?(bounds = default_bounds) name =
  registered @@ fun () ->
  match Hashtbl.find_opt registry name with
  | Some (_, Histogram_m h) -> h
  | Some _ ->
      invalid_arg
        (Printf.sprintf "metric %s is already registered as another kind" name)
  | None ->
      let sorted = List.sort_uniq Float.compare bounds in
      if sorted <> bounds || bounds = [] then
        invalid_arg
          (Printf.sprintf "metric %s: bounds must be strictly increasing" name);
      let h = Histogram.make bounds in
      Hashtbl.replace registry name (help, Histogram_m h);
      h

let time h f =
  if not !on then f ()
  else begin
    let t0 = now_ns () in
    Fun.protect ~finally:(fun () -> Histogram.record h (now_ns () -. t0)) f
  end

let all () =
  registered (fun () ->
      Hashtbl.fold (fun name (help, m) acc -> (name, help, m) :: acc) registry [])
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let reset () =
  List.iter
    (fun (_, _, m) ->
      match m with
      | Counter_m c -> Atomic.set c 0
      | Gauge_m g -> Atomic.set g 0.
      | Histogram_m h -> Histogram.reset h)
    (all ())

let to_json () =
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) (name, _, m) ->
        match m with
        | Counter_m c ->
            (name, Json.Num (Float.of_int (Counter.value c))) :: cs, gs, hs
        | Gauge_m g -> cs, (name, Json.Num (Gauge.value g)) :: gs, hs
        | Histogram_m h ->
            let fields =
              [
                "count", Json.Num (Float.of_int (Histogram.count h));
                "sum_ns", Json.Num (Histogram.sum h);
                "max_ns", Json.Num (Histogram.max_value h);
                "p50_ns", Json.Num (Histogram.quantile h 0.5);
                "p90_ns", Json.Num (Histogram.quantile h 0.9);
                "p99_ns", Json.Num (Histogram.quantile h 0.99);
              ]
            in
            cs, gs, (name, Json.Obj fields) :: hs)
      ([], [], [])
      (List.rev (all ()))
  in
  Json.Obj
    [
      "counters", Json.Obj counters;
      "gauges", Json.Obj gauges;
      "histograms", Json.Obj histograms;
    ]

let pp_ns ppf ns =
  if ns < 1e3 then Fmt.pf ppf "%.0f ns" ns
  else if ns < 1e6 then Fmt.pf ppf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Fmt.pf ppf "%.2f ms" (ns /. 1e6)
  else Fmt.pf ppf "%.2f s" (ns /. 1e9)

let pp_table ppf () =
  let metrics = all () in
  let counters =
    List.filter_map
      (function name, help, Counter_m c -> Some (name, help, c) | _ -> None)
      metrics
  in
  let gauges =
    List.filter_map
      (function name, help, Gauge_m g -> Some (name, help, g) | _ -> None)
      metrics
  in
  let histograms =
    List.filter_map
      (function name, help, Histogram_m h -> Some (name, help, h) | _ -> None)
      metrics
  in
  if counters <> [] then begin
    Fmt.pf ppf "%-42s %12s  %s@." "counter" "value" "help";
    List.iter
      (fun (name, help, c) ->
        Fmt.pf ppf "%-42s %12d  %s@." name (Counter.value c) help)
      counters
  end;
  if gauges <> [] then begin
    Fmt.pf ppf "@.%-42s %12s  %s@." "gauge" "value" "help";
    List.iter
      (fun (name, help, g) ->
        Fmt.pf ppf "%-42s %12g  %s@." name (Gauge.value g) help)
      gauges
  end;
  if histograms <> [] then begin
    Fmt.pf ppf "@.%-42s %8s %10s %10s %10s %10s@." "histogram" "count" "p50"
      "p90" "p99" "max";
    List.iter
      (fun (name, _, h) ->
        if Histogram.count h = 0 then
          Fmt.pf ppf "%-42s %8d %10s %10s %10s %10s@." name 0 "-" "-" "-" "-"
        else
          let ns v = Fmt.str "%a" pp_ns v in
          Fmt.pf ppf "%-42s %8d %10s %10s %10s %10s@." name (Histogram.count h)
            (ns (Histogram.quantile h 0.5))
            (ns (Histogram.quantile h 0.9))
            (ns (Histogram.quantile h 0.99))
            (ns (Histogram.max_value h)))
      histograms
  end
