(** Dependency-island partition of a structural schema — the shard key
    (Def. 5.1 read as a placement rule).

    Ownership and subset connections bind two relations into one unit of
    update: deleting an owner cascades into its dependents, and a subset
    row cannot outlive its superset row. Relations joined by such edges
    therefore {e must} colocate on one shard. Reference connections only
    constrain values (a referencing attribute must name an existing key,
    or be [Null]); the referenced relation can live elsewhere and be
    consulted read-only — the paper's peninsula. The partition computed
    here is exactly the connected components of the graph restricted to
    ownership/subset edges, with reference edges free to cross shards.

    Shard ids are {e stable}: islands are numbered by their
    lexicographically smallest member relation, so the assignment is a
    pure function of the schema — independent of declaration order,
    insertion history, or process — and can be cross-checked against a
    persisted manifest on every open. *)

type plan
(** An immutable relation→shard assignment over one schema graph. *)

val compute : ?max_shards:int -> Schema_graph.t -> plan
(** Partition the graph's relations into dependency islands and assign
    shard ids. With [max_shards] (≥ 1) the islands are folded onto at
    most that many shards (island [i] in stable order lands on shard
    [i mod max_shards]) — colocation is preserved, only parallelism is
    bounded. [max_shards = 1] yields the single-store behaviour. *)

val count : plan -> int
(** Number of shards (≥ 1 when the graph has relations, 0 when empty). *)

val shard_of : plan -> string -> int option
val shard_of_exn : plan -> string -> int

val members : plan -> int -> string list
(** Relations assigned to a shard, sorted. *)

val assignment : plan -> (string * int) list
(** Every (relation, shard) pair, sorted by relation — the serializable
    image cross-checked against a store's manifest. *)

val shards_of_relations : plan -> string list -> int list
(** The sorted, deduplicated shard ids covering the given relations —
    the participant set of a delta. @raise Invalid_argument on a
    relation outside the plan. *)

val risky : plan -> string -> bool
(** The relation is an endpoint of a connection that crosses shards.
    Commits writing only non-risky relations of one shard cannot
    invalidate (or be invalidated by) a concurrent commit on another
    shard, so they may run without cross-shard coordination; a write
    touching a risky relation must serialize through the coordinator. *)

val cross_connections : plan -> Schema_graph.t -> Connection.t list
(** Connections whose endpoints live on different shards (necessarily
    references, when the plan was computed from the same graph). *)

val colocated : plan -> Schema_graph.t -> bool
(** Invariant: every ownership/subset connection has both endpoints on
    the same shard. Holds by construction for {!compute}; exposed so
    tests and manifest cross-checks can assert it. *)

val pp : Format.formatter -> plan -> unit
