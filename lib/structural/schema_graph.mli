(** The structural schema: a directed graph whose vertices are relation
    schemas and whose edges are {!Connection.t} values (Section 2).

    Traversals use {!edge}, which pairs a connection with a direction —
    the paper's inverse connections [C⁻¹] are represented as the same
    connection walked backwards rather than as separate objects. *)

type t

(** A connection traversed in a given direction. [forward = true] walks
    source→target; [forward = false] walks the inverse connection. *)
type edge = {
  conn : Connection.t;
  forward : bool;
}

val edge_from : edge -> string
(** Relation this edge leaves (source when forward, target otherwise). *)

val edge_to : edge -> string
val edge_from_attrs : edge -> string list
(** Connecting attributes on the [edge_from] side. *)

val edge_to_attrs : edge -> string list
val inverse : edge -> edge
val pp_edge : Format.formatter -> edge -> unit

val empty : t

val add_schema : t -> Relational.Schema.t -> (t, string) result
val add_connection : t -> Connection.t -> (t, string) result
(** Validates the connection against the installed schemas. *)

val make :
  Relational.Schema.t list -> Connection.t list -> (t, string) result

val make_exn : Relational.Schema.t list -> Connection.t list -> t

val schema : t -> string -> Relational.Schema.t option
val schema_exn : t -> string -> Relational.Schema.t
val relations : t -> string list
(** Sorted relation names. *)

val connections : t -> Connection.t list
val mem_relation : t -> string -> bool

val outgoing : t -> string -> Connection.t list
(** Connections whose source is the given relation. *)

val incoming : t -> string -> Connection.t list

val edges_from : t -> string -> edge list
(** All edges leaving a relation in either direction: outgoing
    connections forward plus incoming connections inverted.
    Deterministically ordered (by connection id, forward first). *)

val restrict : t -> keep:string list -> t
(** Induced subgraph on the kept relations (connections with both
    endpoints kept). Used for the Fig. 2a relevant subgraph [G]. *)

val create_database : t -> Relational.Database.t
(** Empty database holding one relation per schema, with a secondary
    index pre-created on every connection's source-attribute and
    target-attribute lists — connection-following lookups
    (instantiation, {!Integrity.check}, {!Integrity.check_delta}) are
    index-served from the start. *)

val to_dot : t -> string
(** Graphviz rendering in the paper's style: ownership [--*] as a filled
    dot arrowhead, reference as an open arrow, subset as a double line. *)

val pp : Format.formatter -> t -> unit
