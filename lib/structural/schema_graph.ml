open Relational
module SMap = Map.Make (String)

type t = {
  schemas : Schema.t SMap.t;
  conns : Connection.t list;  (** in insertion order *)
}

type edge = {
  conn : Connection.t;
  forward : bool;
}

let edge_from e =
  if e.forward then e.conn.Connection.source else e.conn.Connection.target

let edge_to e =
  if e.forward then e.conn.Connection.target else e.conn.Connection.source

let edge_from_attrs e =
  if e.forward then e.conn.Connection.source_attrs
  else e.conn.Connection.target_attrs

let edge_to_attrs e =
  if e.forward then e.conn.Connection.target_attrs
  else e.conn.Connection.source_attrs

let inverse e = { e with forward = not e.forward }

let pp_edge ppf e =
  Fmt.pf ppf "%s%a" (if e.forward then "" else "inverse ") Connection.pp e.conn

let empty = { schemas = SMap.empty; conns = [] }

let add_schema g s =
  let n = s.Schema.name in
  if SMap.mem n g.schemas then Error (Fmt.str "relation %s already in graph" n)
  else Ok { g with schemas = SMap.add n s g.schemas }

let schema g n = SMap.find_opt n g.schemas

let schema_exn g n =
  match schema g n with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "schema_graph: unknown relation %s" n)

let add_connection g c =
  if List.exists (Connection.equal c) g.conns then
    Error (Fmt.str "connection %s already in graph" (Connection.id c))
  else
    match Connection.validate ~schema_of:(schema g) c with
    | Error e -> Error e
    | Ok () -> Ok { g with conns = g.conns @ [ c ] }

let make schemas conns =
  let ( let* ) = Result.bind in
  let* g =
    List.fold_left
      (fun acc s -> Result.bind acc (fun g -> add_schema g s))
      (Ok empty) schemas
  in
  List.fold_left
    (fun acc c -> Result.bind acc (fun g -> add_connection g c))
    (Ok g) conns

let make_exn schemas conns =
  match make schemas conns with
  | Ok g -> g
  | Error e -> invalid_arg e

let relations g = List.map fst (SMap.bindings g.schemas)
let connections g = g.conns
let mem_relation g n = SMap.mem n g.schemas

let outgoing g n = List.filter (fun c -> c.Connection.source = n) g.conns
let incoming g n = List.filter (fun c -> c.Connection.target = n) g.conns

let edges_from g n =
  let fwd = List.map (fun conn -> { conn; forward = true }) (outgoing g n) in
  let inv = List.map (fun conn -> { conn; forward = false }) (incoming g n) in
  List.sort
    (fun a b ->
      match compare b.forward a.forward with
      | 0 -> String.compare (Connection.id a.conn) (Connection.id b.conn)
      | c -> c)
    (fwd @ inv)

let restrict g ~keep =
  let schemas = SMap.filter (fun n _ -> List.mem n keep) g.schemas in
  let conns =
    List.filter
      (fun c ->
        List.mem c.Connection.source keep && List.mem c.Connection.target keep)
      g.conns
  in
  { schemas; conns }

let create_database g =
  let db =
    SMap.fold
      (fun _ s db -> Database.create_relation_exn db s)
      g.schemas Database.empty
  in
  (* Secondary indexes on every connection's endpoints: both ends of
     every existence check (instantiation, full and incremental
     integrity checking) become index lookups instead of scans.
     Connection validation guarantees the attribute lists are non-empty
     and known, so index creation cannot fail. *)
  List.fold_left
    (fun db (c : Connection.t) ->
      let add db rel attrs =
        match Database.create_index db rel attrs with
        | Ok db -> db
        | Error e -> invalid_arg (Database.error_to_string e)
      in
      add (add db c.source c.source_attrs) c.target c.target_attrs)
    db g.conns

let to_dot g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph structural_schema {\n";
  Buffer.add_string buf "  node [shape=box];\n";
  SMap.iter (fun n _ -> Buffer.add_string buf (Fmt.str "  %s;\n" n)) g.schemas;
  List.iter
    (fun (c : Connection.t) ->
      let style =
        match c.kind with
        | Connection.Ownership -> "arrowhead=dot, label=\"owns\""
        | Connection.Reference -> "arrowhead=open, label=\"refs\""
        | Connection.Subset -> "arrowhead=onormal, style=bold, label=\"subset\""
      in
      Buffer.add_string buf
        (Fmt.str "  %s -> %s [%s];\n" c.source c.target style))
    g.conns;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp ppf g =
  Fmt.pf ppf "@[<v>relations:@,%a@,connections:@,%a@]"
    Fmt.(list ~sep:cut (using (schema_exn g) Schema.pp))
    (relations g)
    Fmt.(list ~sep:cut Connection.pp)
    g.conns
