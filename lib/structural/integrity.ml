open Relational

type violation = {
  connection : Connection.t;
  relation : string;
  tuple : Tuple.t;
  message : string;
}

let pp_violation ppf v =
  Fmt.pf ppf "[%s] %s: %a (%s)" (Connection.id v.connection) v.relation
    Tuple.pp v.tuple v.message

let orphan_violation (c : Connection.t) t2 =
  {
    connection = c;
    relation = c.target;
    tuple = t2;
    message =
      Fmt.str "no %s tuple in %s"
        (if c.kind = Connection.Ownership then "owning" else "general")
        c.source;
  }

let dangling_violation (c : Connection.t) t1 =
  {
    connection = c;
    relation = c.source;
    tuple = t1;
    message = Fmt.str "dangling reference into %s" c.target;
  }

(* Rule 1 of Defs. 2.2/2.4 for one target tuple: does its source
   (owning / general) tuple exist? *)
let has_source db (c : Connection.t) t2 =
  let bindings =
    List.map2 (fun x1 x2 -> x1, Tuple.get t2 x2) c.source_attrs c.target_attrs
  in
  Relation.lookup_eq (Database.relation_exn db c.source) bindings <> []

(* Rule 1 of Def. 2.3 for one source tuple: does its non-null reference
   resolve? (Null references are vacuously fine.) *)
let reference_resolves db (c : Connection.t) t1 =
  Tuple.has_nulls_on c.source_attrs t1
  ||
  let bindings =
    List.map2 (fun x1 x2 -> x2, Tuple.get t1 x1) c.source_attrs c.target_attrs
  in
  Relation.lookup_eq (Database.relation_exn db c.target) bindings <> []

let check_connection g db (c : Connection.t) =
  let source = Database.relation_exn db c.source in
  let target = Database.relation_exn db c.target in
  ignore (Schema_graph.schema_exn g c.source);
  (* Existence tests go through {!Relation.lookup_eq} so a secondary
     index on the connecting attributes serves them. *)
  match c.kind with
  | Connection.Ownership | Connection.Subset ->
      (* Rule 1 of Defs. 2.2/2.4: every target tuple has its source tuple. *)
      Relation.fold
        (fun t2 acc -> if has_source db c t2 then acc else orphan_violation c t2 :: acc)
        target []
  | Connection.Reference ->
      (* Rule 1 of Def. 2.3: non-null references must resolve. *)
      Relation.fold
        (fun t1 acc ->
          if reference_resolves db c t1 then acc
          else dangling_violation c t1 :: acc)
        source []

let m_check_full_ns =
  Obs.Metrics.histogram ~help:"full structural sweep (Integrity.check)"
    "integrity.check_full_ns"

let check g db =
  Obs.Metrics.time m_check_full_ns @@ fun () ->
  List.concat_map (check_connection g db) (Schema_graph.connections g)

(* --- incremental (delta-driven) checking ------------------------------ *)

(* Observability: how aggressively the delta checker prunes. A fired
   check is one index lookup (or an inverse lookup plus re-checks); a
   pruned one is a connection the firing rule proved irrelevant. *)
let m_fired =
  Obs.Metrics.counter ~help:"connection checks fired by check_delta"
    "integrity.delta_checks_fired"

let m_pruned =
  Obs.Metrics.counter
    ~help:"connection checks pruned by check_delta (values unchanged)"
    "integrity.delta_checks_pruned"

let fires changed attrs =
  if changed attrs then begin
    Obs.Metrics.Counter.incr m_fired;
    true
  end
  else begin
    Obs.Metrics.Counter.incr m_pruned;
    false
  end

(* A tuple with a new stored image (inserted, or the after-image of a
   replace) can violate rule 1 in two roles: as the dependent end of an
   ownership/subset connection, or as the referencing end of a
   reference. Both are single index lookups. [changed] prunes
   connections whose connecting values the change did not alter: the
   old image satisfied rule 1 in the (consistent) pre-state, and a
   post-state breakage through unchanged values can only come from a
   change to the {e other} end — whose own inverse check re-verifies
   this tuple. *)
let check_new_image g db rel t ~changed acc =
  let acc =
    List.fold_left
      (fun acc (c : Connection.t) ->
        match c.kind with
        | Connection.Ownership | Connection.Subset ->
            if not (fires changed c.target_attrs) then acc
            else if has_source db c t then acc
            else orphan_violation c t :: acc
        | Connection.Reference -> acc)
      acc (Schema_graph.incoming g rel)
  in
  List.fold_left
    (fun acc (c : Connection.t) ->
      match c.kind with
      | Connection.Reference ->
          if not (fires changed c.source_attrs) then acc
          else if reference_resolves db c t then acc
          else dangling_violation c t :: acc
      | Connection.Ownership | Connection.Subset -> acc)
    acc (Schema_graph.outgoing g rel)

(* A tuple whose old image is gone (deleted, or the before-image of a
   replace) can strand {e other} tuples: dependents it owned and tuples
   that referenced it. These inverse checks find the candidates through
   the secondary index on the other end's connecting attributes, then
   re-verify each against the post-state (another tuple may still
   satisfy it). [changed] prunes connections whose connecting values
   the change did not actually alter. *)
let check_old_image g db rel t0 ~changed acc =
  let acc =
    List.fold_left
      (fun acc (c : Connection.t) ->
        match c.kind with
        | Connection.Ownership | Connection.Subset ->
            if not (fires changed c.source_attrs) then acc
            else
              let dependents =
                Relation.lookup_eq
                  (Database.relation_exn db c.target)
                  (List.map2
                     (fun x1 x2 -> x2, Tuple.get t0 x1)
                     c.source_attrs c.target_attrs)
              in
              List.fold_left
                (fun acc t2 ->
                  if has_source db c t2 then acc else orphan_violation c t2 :: acc)
                acc dependents
        | Connection.Reference -> acc)
      acc (Schema_graph.outgoing g rel)
  in
  List.fold_left
    (fun acc (c : Connection.t) ->
      match c.kind with
      | Connection.Reference ->
          if not (fires changed c.target_attrs) then acc
          else
            let referers =
              Relation.lookup_eq
                (Database.relation_exn db c.source)
                (List.map2
                   (fun x1 x2 -> x1, Tuple.get t0 x2)
                   c.source_attrs c.target_attrs)
            in
            List.fold_left
              (fun acc t1 ->
                if reference_resolves db c t1 then acc
                else dangling_violation c t1 :: acc)
              acc referers
      | Connection.Ownership | Connection.Subset -> acc)
    acc (Schema_graph.incoming g rel)

let violation_equal a b =
  Connection.equal a.connection b.connection
  && a.relation = b.relation
  && Tuple.equal a.tuple b.tuple

let dedup_violations vs =
  List.fold_left
    (fun acc v -> if List.exists (violation_equal v) acc then acc else v :: acc)
    [] vs
  |> List.rev

let m_check_delta_ns =
  Obs.Metrics.histogram ~help:"delta-driven validation (Integrity.check_delta)"
    "integrity.check_delta_ns"

let check_delta g db ~delta =
  Obs.Metrics.time m_check_delta_ns @@ fun () ->
  let always _ = true in
  Delta.fold
    (fun rel change acc ->
      match change with
      | Delta.Added t -> check_new_image g db rel t ~changed:always acc
      | Delta.Removed t0 -> check_old_image g db rel t0 ~changed:always acc
      | Delta.Updated { before; after } ->
          let changed attrs =
            List.exists
              (fun a ->
                not (Value.equal (Tuple.get before a) (Tuple.get after a)))
              attrs
          in
          check_new_image g db rel after ~changed
            (check_old_image g db rel before ~changed acc))
    delta []
  |> dedup_violations

type reference_action =
  | Nullify
  | Delete_referencing
  | Restrict

type delete_policy = Connection.t -> reference_action

(* A victim set keyed by (relation, key). *)
module Victims = struct
  type entry = { rel : string; key : Value.t list; tuple : Tuple.t }

  let mem victims rel key =
    List.exists
      (fun e -> e.rel = rel && List.compare Value.compare e.key key = 0)
      victims
end

let key_of_in db rel t =
  Tuple.key_of (Relation.schema (Database.relation_exn db rel)) t

let tuples_connected_from db (c : Connection.t) t1 =
  Relation.lookup_eq
    (Database.relation_exn db c.target)
    (List.map2 (fun x1 x2 -> x2, Tuple.get t1 x1) c.source_attrs c.target_attrs)

let tuples_referencing db (c : Connection.t) t2 =
  Relation.lookup_eq
    (Database.relation_exn db c.source)
    (List.map2 (fun x1 x2 -> x1, Tuple.get t2 x2) c.source_attrs c.target_attrs)

let cascade_delete g db ~policy ~seeds =
  let ( let* ) = Result.bind in
  (* Phase 1: closure of deletions. Ownership/subset children of a victim
     are victims; referencing tuples become victims only under the
     Delete_referencing policy. *)
  let rec closure (victims : Victims.entry list) frontier =
    match frontier with
    | [] -> Ok victims
    | { Victims.rel; tuple; _ } :: rest ->
        let own_children =
          List.concat_map
            (fun (c : Connection.t) ->
              match c.kind with
              | Connection.Ownership | Connection.Subset ->
                  List.map (fun t -> c.target, t) (tuples_connected_from db c tuple)
              | Connection.Reference -> [])
            (Schema_graph.outgoing g rel)
        in
        let ref_children =
          List.concat_map
            (fun (c : Connection.t) ->
              match c.kind with
              | Connection.Reference when policy c = Delete_referencing ->
                  List.map (fun t -> c.source, t) (tuples_referencing db c tuple)
              | Connection.Reference | Connection.Ownership | Connection.Subset ->
                  [])
            (Schema_graph.incoming g rel)
        in
        let fresh =
          List.filter_map
            (fun (rel, tuple) ->
              let key = key_of_in db rel tuple in
              if Victims.mem victims rel key then None
              else Some { Victims.rel; key; tuple })
            (own_children @ ref_children)
        in
        (* Dedup within the fresh batch itself. *)
        let fresh =
          List.fold_left
            (fun acc (e : Victims.entry) ->
              if Victims.mem acc e.rel e.key then acc else acc @ [ e ])
            [] fresh
        in
        closure (victims @ fresh) (rest @ fresh)
  in
  let seed_entries =
    List.map
      (fun (rel, tuple) ->
        { Victims.rel; key = key_of_in db rel tuple; tuple })
      seeds
  in
  let seed_entries =
    List.fold_left
      (fun acc (e : Victims.entry) ->
        if Victims.mem acc e.rel e.key then acc else acc @ [ e ])
      [] seed_entries
  in
  let* victims = closure seed_entries seed_entries in
  (* Phase 2: fix up surviving referencing tuples (Nullify) or refuse
     (Restrict). *)
  let* fixups =
    List.fold_left
      (fun acc { Victims.rel; tuple; _ } ->
        let* ops = acc in
        List.fold_left
          (fun acc (c : Connection.t) ->
            let* ops = acc in
            if c.kind <> Connection.Reference then Ok ops
            else if policy c = Delete_referencing then Ok ops
            else
              let referers =
                List.filter
                  (fun t1 ->
                    not
                      (Victims.mem victims c.source (key_of_in db c.source t1)))
                  (tuples_referencing db c tuple)
              in
              if referers = [] then Ok ops
              else
                match policy c with
                | Restrict ->
                    Error
                      (Fmt.str
                         "deletion restricted: %d tuple(s) of %s still \
                          reference the deleted tuple(s) of %s (connection %s)"
                         (List.length referers) c.source c.target
                         (Connection.id c))
                | Nullify ->
                    let source_schema = Schema_graph.schema_exn g c.source in
                    if
                      List.exists
                        (Schema.is_key_attr source_schema)
                        c.source_attrs
                    then
                      Error
                        (Fmt.str
                           "cannot nullify reference %s: attributes %s belong \
                            to the key of %s"
                           (Connection.id c)
                           (String.concat "," c.source_attrs)
                           c.source)
                    else
                      let nullified t1 =
                        List.fold_left
                          (fun t a -> Tuple.set t a Value.Null)
                          t1 c.source_attrs
                      in
                      Ok
                        (ops
                        @ List.map
                            (fun t1 ->
                              Op.Replace
                                (c.source, key_of_in db c.source t1, nullified t1))
                            referers)
                | Delete_referencing -> Ok ops)
          (Ok ops) (Schema_graph.incoming g rel))
      (Ok []) victims
  in
  (* Several victims may nullify the same referencing tuple through
     different connections; merge replaces targeting the same key. *)
  let merged =
    List.fold_left
      (fun acc op ->
        match op with
        | Op.Replace (rel, key, t) -> (
            let same = function
              | Op.Replace (rel', key', _) ->
                  rel = rel' && List.compare Value.compare key key' = 0
              | Op.Insert _ | Op.Delete _ -> false
            in
            match List.find_opt same acc with
            | None -> acc @ [ op ]
            | Some (Op.Replace (_, _, t0)) ->
                List.map
                  (fun o -> if same o then Op.Replace (rel, key, Tuple.union t0 t) else o)
                  acc
            | Some (Op.Insert _ | Op.Delete _) -> acc @ [ op ])
        | Op.Insert _ | Op.Delete _ -> acc @ [ op ])
      [] fixups
  in
  let deletions =
    List.rev_map (fun { Victims.rel; key; _ } -> Op.Delete (rel, key)) victims
  in
  Ok (merged @ deletions)

let minimal_tuple schema bindings =
  ignore schema;
  Tuple.make bindings

let missing_dependencies g db rel t =
  let needs =
    (* rel as the dependent end of ownership/subset: needs its parent. *)
    List.filter_map
      (fun (c : Connection.t) ->
        match c.kind with
        | Connection.Ownership | Connection.Subset ->
            let parent_schema = Schema_graph.schema_exn g c.source in
            let bindings =
              List.map2 (fun x1 x2 -> x1, Tuple.get t x2) c.source_attrs
                c.target_attrs
            in
            let exists =
              Relation.select
                (Predicate.conj
                   (List.map
                      (fun (a, v) -> Predicate.Cmp (a, Predicate.Eq, v))
                      bindings))
                (Database.relation_exn db c.source)
              <> []
            in
            if exists then None
            else Some (c, minimal_tuple parent_schema bindings)
        | Connection.Reference -> None)
      (Schema_graph.incoming g rel)
    (* rel as the referencing end: non-null references must resolve. *)
    @ List.filter_map
        (fun (c : Connection.t) ->
          match c.kind with
          | Connection.Reference ->
              if Tuple.has_nulls_on c.source_attrs t then None
              else
                let target_schema = Schema_graph.schema_exn g c.target in
                let bindings =
                  List.map2 (fun x1 x2 -> x2, Tuple.get t x1) c.source_attrs
                    c.target_attrs
                in
                let exists =
                  Relation.select
                    (Predicate.conj
                       (List.map
                          (fun (a, v) -> Predicate.Cmp (a, Predicate.Eq, v))
                          bindings))
                    (Database.relation_exn db c.target)
                  <> []
                in
                if exists then None
                else Some (c, minimal_tuple target_schema bindings)
          | Connection.Ownership | Connection.Subset -> None)
        (Schema_graph.outgoing g rel)
  in
  needs

let key_replacement_fixups g db ~relation ~old_tuple ~new_tuple ~exclude =
  (* Recursive propagation of connecting-attribute changes (rules 3 of
     Defs. 2.2-2.4). The [seen] set guards against cycles in the schema
     graph. *)
  let rec go seen relation old_tuple new_tuple =
    let changed attrs =
      List.exists
        (fun a ->
          not (Value.equal (Tuple.get old_tuple a) (Tuple.get new_tuple a)))
        attrs
    in
    let tag = Fmt.str "%s/%a" relation Tuple.pp old_tuple in
    if List.mem tag seen then []
    else
      let seen = tag :: seen in
      (* Owned / subset tuples inherit through (X1 -> X2). *)
      let downward =
        List.concat_map
          (fun (c : Connection.t) ->
            match c.kind with
            | Connection.Ownership | Connection.Subset ->
                if exclude c.target || not (changed c.source_attrs) then []
                else
                  List.concat_map
                    (fun child ->
                      let child' =
                        List.fold_left2
                          (fun t x1 x2 -> Tuple.set t x2 (Tuple.get new_tuple x1))
                          child c.source_attrs c.target_attrs
                      in
                      Op.Replace (c.target, key_of_in db c.target child, child')
                      :: go seen c.target child child')
                    (tuples_connected_from db c old_tuple)
            | Connection.Reference -> [])
          (Schema_graph.outgoing g relation)
      in
      (* Referencing tuples rewrite X1 to the new key (X2) values. *)
      let referencing =
        List.concat_map
          (fun (c : Connection.t) ->
            if c.kind <> Connection.Reference then []
            else if exclude c.source || not (changed c.target_attrs) then []
            else
              List.concat_map
                (fun t1 ->
                  let t1' =
                    List.fold_left2
                      (fun t x1 x2 -> Tuple.set t x1 (Tuple.get new_tuple x2))
                      t1 c.source_attrs c.target_attrs
                  in
                  Op.Replace (c.source, key_of_in db c.source t1, t1')
                  :: go seen c.source t1 t1')
                (tuples_referencing db c old_tuple))
          (Schema_graph.incoming g relation)
      in
      downward @ referencing
  in
  go [] relation old_tuple new_tuple
