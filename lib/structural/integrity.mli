(** Integrity rules of the structural model and their enforcement.

    The three connection kinds carry the static rules 1 of Defs. 2.2–2.4
    (existence of owners / referenced tuples / generalization parents),
    checked by {!check}. The dynamic rules (2 and 3 — what must happen on
    deletions and key modifications) are realized by the planners below,
    which the update-translation engine (step 4, global validation)
    invokes to compute the database operations that restore global
    consistency. *)

open Relational

type violation = {
  connection : Connection.t;
  relation : string;  (** relation holding the offending tuple *)
  tuple : Tuple.t;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : Schema_graph.t -> Database.t -> violation list
(** All static violations: owned tuples without owner, non-null
    references to absent tuples, subset tuples without their general
    tuple. *)

val check_connection : Schema_graph.t -> Database.t -> Connection.t -> violation list

val check_delta :
  Schema_graph.t -> Database.t -> delta:Delta.t -> violation list
(** Delta-driven re-validation: [check_delta g db ~delta] checks only
    the connections incident to the tuples [delta] touched, against the
    post-state [db] — forward existence checks for inserted / replaced
    images, inverse checks (who was owned by / referenced a removed or
    key-changed image, found through the secondary indexes
    {!Schema_graph.create_database} installs) for old images. Cost is
    O(|delta| × incident connections), not O(|db|).

    The firing rule prunes aggressively: a change is checked against a
    connection only if it altered that connection's connecting values
    (an update to non-connecting attributes cannot make a satisfied
    rule 1 fail, and a breakage caused by a change to the {e other} end
    is caught by that change's own inverse check).

    Contract relative to the full {!check}: every reported violation is
    a genuine violation of the post-state (soundness), and every
    violation of the post-state whose key slot (connection, relation,
    tuple key) is not already violated in the pre-state is reported
    (completeness — per key slot, so re-imaging an already-violated
    tuple without touching its connecting values is not "new"). In
    particular, when the pre-state satisfies the structural model,
    [check_delta] is empty iff [check] is empty on the post-state. *)

val violation_equal : violation -> violation -> bool
(** Same connection, relation and offending tuple (messages follow). *)

(** What to do with tuples that reference a deleted tuple (rule 2 of
    Def. 2.3 offers exactly these choices). *)
type reference_action =
  | Nullify  (** set the referencing attributes to [Null] *)
  | Delete_referencing
  | Restrict  (** refuse the deletion *)

type delete_policy = Connection.t -> reference_action
(** Per-connection choice, typically derived from the view-object's
    translator. *)

val cascade_delete :
  Schema_graph.t ->
  Database.t ->
  policy:delete_policy ->
  seeds:(string * Tuple.t) list ->
  (Op.t list, string) result
(** Plan the deletion of the seed tuples plus everything the structural
    model forces: transitively delete owned and subset tuples (rules 2 of
    Defs. 2.2/2.4), and fix referencing tuples per [policy] (rule 2 of
    Def. 2.3). [Nullify] on attributes that belong to the referencing
    relation's key is invalid (keys are non-null) and yields an error
    naming the connection. Deletions are emitted children-first and
    deduplicated; reference fix-ups precede the deletion of their
    targets. *)

val missing_dependencies :
  Schema_graph.t ->
  Database.t ->
  string ->
  Tuple.t ->
  (Connection.t * Tuple.t) list
(** For a tuple being inserted into the named relation: the connections
    whose rule 1 would be violated, each with the minimal (key-only)
    parent/referenced tuple that would satisfy it. Used by VO-CI's global
    validation, which inserts such tuples recursively. *)

val key_replacement_fixups :
  Schema_graph.t ->
  Database.t ->
  relation:string ->
  old_tuple:Tuple.t ->
  new_tuple:Tuple.t ->
  exclude:(string -> bool) ->
  Op.t list
(** Rules 3: after replacing a tuple's key in [relation], compute the
    propagation ops — rewrite the connecting attributes of referencing
    tuples and of owned/subset tuples whose inherited key changed.
    Relations for which [exclude] holds are skipped (they were already
    handled inside the view object). *)
