module SMap = Map.Make (String)

type plan = {
  count : int;
  assignment : int SMap.t;
  members : string list array;  (* per shard, sorted *)
  risky : (string, unit) Hashtbl.t;
}

(* Path-compressing union-find keyed by relation name. *)
let find parent r =
  let rec go r =
    let p = Hashtbl.find parent r in
    if p = r then r
    else begin
      let root = go p in
      Hashtbl.replace parent r root;
      root
    end
  in
  go r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then Hashtbl.replace parent ra rb

let compute ?max_shards g =
  (match max_shards with
  | Some n when n < 1 -> invalid_arg "Partition.compute: max_shards must be >= 1"
  | _ -> ());
  let rels = Schema_graph.relations g in
  let parent = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace parent r r) rels;
  List.iter
    (fun (c : Connection.t) ->
      match c.Connection.kind with
      | Connection.Ownership | Connection.Subset ->
          union parent c.Connection.source c.Connection.target
      | Connection.Reference -> ())
    (Schema_graph.connections g);
  (* Islands, keyed by root; each member list stays sorted because
     [rels] is. *)
  let islands = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let root = find parent r in
      let ms = Option.value (Hashtbl.find_opt islands root) ~default:[] in
      Hashtbl.replace islands root (r :: ms))
    (List.rev rels);
  (* Stable order: islands sorted by their smallest member (the head of
     each sorted member list). *)
  let island_list =
    Hashtbl.fold (fun _ ms acc -> ms :: acc) islands []
    |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
  in
  let n_islands = List.length island_list in
  let count =
    match max_shards with
    | Some m -> min m n_islands
    | None -> n_islands
  in
  let members = Array.make (max count 1) [] in
  let assignment = ref SMap.empty in
  List.iteri
    (fun i ms ->
      let shard = if count = 0 then 0 else i mod count in
      members.(shard) <- List.merge String.compare members.(shard) ms;
      List.iter (fun r -> assignment := SMap.add r shard !assignment) ms)
    island_list;
  let members = if count = 0 then [||] else Array.sub members 0 count in
  let assignment = !assignment in
  let risky = Hashtbl.create 16 in
  List.iter
    (fun (c : Connection.t) ->
      match SMap.find_opt c.Connection.source assignment,
            SMap.find_opt c.Connection.target assignment with
      | Some a, Some b when a <> b ->
          Hashtbl.replace risky c.Connection.source ();
          Hashtbl.replace risky c.Connection.target ()
      | _ -> ())
    (Schema_graph.connections g);
  { count; assignment; members; risky }

let count p = p.count
let shard_of p r = SMap.find_opt r p.assignment

let shard_of_exn p r =
  match shard_of p r with
  | Some s -> s
  | None -> invalid_arg (Fmt.str "Partition.shard_of: unknown relation %s" r)

let members p i =
  if i < 0 || i >= p.count then
    invalid_arg (Fmt.str "Partition.members: no shard %d (of %d)" i p.count)
  else p.members.(i)

let assignment p = SMap.bindings p.assignment

let shards_of_relations p rels =
  List.sort_uniq compare (List.map (shard_of_exn p) rels)

let risky p r = Hashtbl.mem p.risky r

let cross_connections p g =
  List.filter
    (fun (c : Connection.t) ->
      match shard_of p c.Connection.source, shard_of p c.Connection.target with
      | Some a, Some b -> a <> b
      | _ -> false)
    (Schema_graph.connections g)

let colocated p g =
  List.for_all
    (fun (c : Connection.t) ->
      match c.Connection.kind with
      | Connection.Reference -> true
      | Connection.Ownership | Connection.Subset -> (
          match
            shard_of p c.Connection.source, shard_of p c.Connection.target
          with
          | Some a, Some b -> a = b
          | _ -> false))
    (Schema_graph.connections g)

let pp ppf p =
  Fmt.pf ppf "@[<v>%d shard(s)" p.count;
  Array.iteri
    (fun i ms ->
      Fmt.pf ppf "@,shard %d: %a" i Fmt.(list ~sep:(any ", ") string) ms)
    p.members;
  Fmt.pf ppf "@]"
