(** A materialized store of instantiated view objects, maintained
    incrementally from committed {!Relational.Delta.t}s.

    Every read today pays a full {!Instantiate.instantiate} walk; this
    module applies the incremental move PR 1 made on the write path
    ([Integrity.check_delta]) to the read path. Per registered
    definition the cache holds one entry per pivot tuple, keyed by the
    pivot's database key, and on each committed delta it decides
    {e skip} / {e patch} / {e invalidate}:

    - {b skip} when [Delta.relations] is disjoint from the definition's
      dependency set (its {!Island} plus every relation on a connection
      path — peninsulas and reference targets included, since
      instantiation reads through them);
    - {b patch} otherwise: changed tuples are walked {e backwards}
      through the definition's connection chains (the inverse of
      {!Instantiate.follow_path}, served by the same connection
      indexes) to the pivot keys they can influence, and only those
      entries are re-derived — reusing every cached subtree whose
      relations were not touched (semi-naive);
    - {b invalidate} (drop all entries, rebuild lazily) when the delta
      cannot be trusted: a history barrier, a delta whose old images
      contradict the cached state, or a Paranoid-mode divergence.

    Correctness bar: a cached read is observationally equal to a fresh
    {!Instantiate.instantiate} against the cache's database at every
    point in any commit sequence. The cache assumes a {e single
    lineage}: deltas fed to {!apply_delta} must describe the commits
    that actually led from the cache's database to [post] (the
    old-image cross-check catches most violations; {!Paranoid} mode
    catches the rest at full-reinstantiation cost). *)

open Relational
open Structural

type t

(** [Paranoid] cross-checks every patch against a full re-instantiation
    (mirroring [Engine.apply ~validation:Paranoid]): divergence drops
    the definition's entries and bumps the [divergences] counter rather
    than serving a wrong instance. *)
type mode =
  | Normal
  | Paranoid

val create : ?mode:mode -> Schema_graph.t -> db:Database.t -> t
(** A cache over the given database state, at log position 0 and with
    no registered definitions. *)

val mode : t -> mode
val db : t -> Database.t
(** The database state reads are served against. *)

val position : t -> int
(** Commit-log version the cache is synced to (bookkeeping for pull
    consumers such as [Penguin.Workspace.sync_cache]; {!apply_delta}
    does not change it). *)

val set_position : t -> int -> unit

val register : t -> Definition.t -> unit
(** Register a definition (idempotent by name; re-registering replaces
    and drops its entries). Entries are built lazily on first read, or
    eagerly via {!warm}. *)

val registered : t -> string list
(** Registered definition names, sorted. *)

val find_definition : t -> string -> Definition.t option

val warm : t -> unit
(** Build entries for every registered definition that is cold. *)

val instances : t -> string -> (Instance.t list, string) result
(** All instances of the named definition, in pivot-key order —
    observationally equal to [Instantiate.instantiate (db t) vo]. A
    cold definition is built first (a miss); a warm one is served from
    the store (a hit). *)

val query : t -> string -> Vo_query.condition -> (Instance.t list, string) result
(** {!instances} filtered by {!Vo_query.holds} — equal to
    [Vo_query.run (db t) vo condition]. *)

val oql : t -> string -> string -> (Instance.t list, string) result
(** Parse an OQL condition against the named definition and {!query}
    through the cache — the cached counterpart of {!Oql.run}. *)

val apply_delta : t -> post:Database.t -> Delta.t -> unit
(** Advance the cache from its current database to [post], patching
    warm definitions whose dependency set intersects the delta's
    relations. The delta must be the net change from [db t] to [post]
    (compose intermediate commits with {!Delta.compose}); if its old
    images contradict the cached state the cache invalidates instead of
    patching. *)

val invalidate_all : t -> db:Database.t -> unit
(** Drop every definition's entries and rebase the cache on the given
    database (used on history barriers and divergence). *)

(** Monotonic per-cache totals (the process-wide [cache.*] metrics
    aggregate the same events across caches). *)
type stats = {
  hits : int;  (** reads served from a warm definition *)
  misses : int;  (** reads that had to build a cold definition *)
  patched : int;  (** entries re-derived or dropped by a patch *)
  invalidated : int;  (** definitions dropped wholesale *)
  skipped : int;  (** per-definition delta skips (disjoint footprint) *)
  divergences : int;  (** Paranoid cross-check failures *)
}

val stats : t -> stats

val dependencies : t -> string -> string list
(** Dependency relations of a registered definition, sorted — the set
    intersected with [Delta.relations] for the skip decision (exposed
    for tests and EXPERIMENTS). *)
