open Relational
open Structural

let src =
  Logs.Src.create "viewobject.cache" ~doc:"materialized view-object cache"

module Log = (val Logs.src_log src : Logs.LOG)
module M = Obs.Metrics

let m_hits =
  M.counter ~help:"cache reads served from a warm definition" "cache.hits"

let m_misses =
  M.counter ~help:"cache reads that built a cold definition" "cache.misses"

let m_patched =
  M.counter ~help:"cache entries re-derived or dropped by a delta patch"
    "cache.patched"

let m_invalidated =
  M.counter ~help:"cached definitions dropped wholesale" "cache.invalidated"

let m_skipped =
  M.counter ~help:"per-definition delta skips (disjoint footprint)"
    "cache.skipped"

let m_divergences =
  M.counter ~help:"paranoid cross-check failures" "cache.divergences"

let m_patch_ns =
  M.histogram ~help:"apply_delta: per-definition incremental patch"
    "cache.patch_ns"

let m_warm_ns =
  M.histogram ~help:"cold-definition build (full instantiation)"
    "cache.warm_ns"

let ( let* ) = Result.bind

module SSet = Set.Make (String)
module SMap = Map.Make (String)

module KMap = Map.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

module KSet = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

(* A cached instance keeps, alongside each projected node, the *full*
   stored tuple it was derived from: patches re-run [follow_path] at any
   level (full tuples down, as in [Instantiate.of_pivot_tuple]) and match
   results against cached subtrees by database key. *)
type node_entry = {
  full : Tuple.t;
  inst : Instance.t;
  subs : (string * node_entry list) list;  (** by child label *)
}

type def_state = {
  def : Definition.t;
  deps : SSet.t;
      (** every relation instantiation reads: nodes + path intermediates *)
  chains : Schema_graph.edge list list SMap.t;
      (** relation → root-to-relation edge chains (backwalk routes) *)
  child_deps : SSet.t SMap.t;
      (** child label → relations its subtree computation reads *)
  mutable entries : node_entry KMap.t option;  (** [None] = cold *)
}

type mode =
  | Normal
  | Paranoid

type t = {
  graph : Schema_graph.t;
  cmode : mode;
  mutable db : Database.t;
  mutable pos : int;
  mutable defs : (string * def_state) list;  (** registration order *)
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_patched : int;
  mutable s_invalidated : int;
  mutable s_skipped : int;
  mutable s_divergences : int;
}

let create ?(mode = Normal) graph ~db =
  {
    graph;
    cmode = mode;
    db;
    pos = 0;
    defs = [];
    s_hits = 0;
    s_misses = 0;
    s_patched = 0;
    s_invalidated = 0;
    s_skipped = 0;
    s_divergences = 0;
  }

let mode t = t.cmode
let db t = t.db
let position t = t.pos
let set_position t p = t.pos <- p

(* --- definition metadata -------------------------------------------- *)

let edge_key (e : Schema_graph.edge) =
  Connection.id e.conn ^ if e.forward then ">" else "<"

let chain_id c = String.concat "/" (List.map edge_key c)

(* One pass over the tree computes the three derived views the
   maintenance loop needs: the dependency set (skip decision), every
   root-to-relation chain prefix (backwalk routes for affected-key
   discovery), and per-child subtree dependencies (reuse decision). *)
let compute_meta (vo : Definition.t) =
  let deps = ref (SSet.singleton vo.pivot) in
  let chains = ref SMap.empty in
  let child_deps = ref SMap.empty in
  let add_chain rel c =
    chains :=
      SMap.update rel
        (fun l ->
          let l = Option.value l ~default:[] in
          if List.exists (fun c' -> String.equal (chain_id c') (chain_id c)) l
          then Some l
          else Some (l @ [ c ]))
        !chains
  in
  (* Returns the relations read to compute [dn]'s subtree from [dn]'s
     own full tuple (path intermediates of its children included, its
     own relation not). *)
  let rec go prefix (dn : Definition.node) =
    deps := SSet.add dn.relation !deps;
    List.fold_left
      (fun acc (cn : Definition.node) ->
        let _, path_rels =
          List.fold_left
            (fun (pfx, rels) e ->
              let pfx = pfx @ [ e ] in
              let rel = Schema_graph.edge_to e in
              deps := SSet.add rel !deps;
              add_chain rel pfx;
              pfx, SSet.add rel rels)
            (prefix, SSet.empty) cn.path
        in
        let below = go (prefix @ cn.path) cn in
        let cdeps = SSet.union path_rels below in
        child_deps := SMap.add cn.label cdeps !child_deps;
        SSet.union acc cdeps)
      SSet.empty dn.children
  in
  ignore (go [] vo.root : SSet.t);
  !deps, !chains, !child_deps

let register t vo =
  let deps, chains, child_deps = compute_meta vo in
  let ds = { def = vo; deps; chains; child_deps; entries = None } in
  let name = vo.Definition.name in
  if List.mem_assoc name t.defs then
    t.defs <-
      List.map
        (fun (n, old) -> if String.equal n name then n, ds else n, old)
        t.defs
  else t.defs <- t.defs @ [ name, ds ]

let registered t = List.sort String.compare (List.map fst t.defs)

let find_state t name =
  match List.assoc_opt name t.defs with
  | Some ds -> Ok ds
  | None -> Error (Fmt.str "cache: no registered view object named %s" name)

let find_definition t name =
  Option.map (fun ds -> ds.def) (List.assoc_opt name t.defs)

let dependencies t name =
  match List.assoc_opt name t.defs with
  | None -> []
  | Some ds -> SSet.elements ds.deps

(* --- entry construction and refresh --------------------------------- *)

let connected_via (e : Schema_graph.edge) db u =
  let from_attrs = Schema_graph.edge_from_attrs e in
  let to_attrs = Schema_graph.edge_to_attrs e in
  Relation.lookup_eq
    (Database.relation_exn db (Schema_graph.edge_to e))
    (List.map2 (fun fa ta -> ta, Tuple.get u fa) from_attrs to_attrs)

let below_deps ds (dn : Definition.node) =
  List.fold_left
    (fun acc (cn : Definition.node) ->
      SSet.union acc
        (Option.value
           (SMap.find_opt cn.label ds.child_deps)
           ~default:SSet.empty))
    SSet.empty dn.children

(* Re-derive the subtree rooted at [dn] for the full tuple [full],
   reusing [old] (the previous entry at the same database key) wherever
   the touched relations cannot have changed the result:
   - the whole entry, when [full] is unchanged and no relation below is
     touched;
   - a whole child list, when nothing on the child's path or below it is
     touched and the parent's linking attributes are unchanged;
   - individual sub-entries, matched by database key after a fresh
     [follow_path].
   A cold build is the same walk with no [old] to reuse. *)
let rec entry_of ds db touched old (dn : Definition.node) full =
  match old with
  | Some ne
    when Tuple.equal ne.full full && SSet.disjoint (below_deps ds dn) touched
    -> ne
  | _ ->
      let subs =
        List.map
          (fun (cn : Definition.node) ->
            let old_subs =
              match old with
              | Some ne ->
                  Option.value (List.assoc_opt cn.label ne.subs) ~default:[]
              | None -> []
            in
            let cdeps =
              Option.value
                (SMap.find_opt cn.label ds.child_deps)
                ~default:SSet.empty
            in
            let link_attrs =
              match cn.path with
              | e :: _ -> Schema_graph.edge_from_attrs e
              | [] -> []
            in
            let reuse_whole_list =
              match old with
              | Some ne ->
                  SSet.disjoint cdeps touched
                  && Tuple.equal_on link_attrs ne.full full
              | None -> false
            in
            if reuse_whole_list then cn.label, old_subs
            else
              let schema = Relation.schema (Database.relation_exn db cn.relation) in
              let by_key =
                List.fold_left
                  (fun m ne -> KMap.add (Tuple.key_of schema ne.full) ne m)
                  KMap.empty old_subs
              in
              ( cn.label,
                List.map
                  (fun sub_full ->
                    entry_of ds db touched
                      (KMap.find_opt (Tuple.key_of schema sub_full) by_key)
                      cn sub_full)
                  (Instantiate.follow_path db cn.path full) ))
          dn.children
      in
      let inst =
        Instance.make ~label:dn.label ~relation:dn.relation
          ~tuple:(Tuple.project dn.attrs full)
          ~children:
            (List.map (fun (l, nes) -> l, List.map (fun ne -> ne.inst) nes) subs)
      in
      { full; inst; subs }

let build_def t ds =
  M.time m_warm_ns @@ fun () ->
  Obs.Trace.with_span "cache.warm"
    ~tags:[ "object", ds.def.Definition.name ]
  @@ fun () ->
  let schema = Schema_graph.schema_exn t.graph ds.def.Definition.pivot in
  let pivot_rel = Database.relation_exn t.db ds.def.Definition.pivot in
  let entries =
    List.fold_left
      (fun m full ->
        KMap.add (Tuple.key_of schema full)
          (entry_of ds t.db SSet.empty None ds.def.Definition.root full)
          m)
      KMap.empty (Relation.to_list pivot_rel)
  in
  ds.entries <- Some entries

let warm t =
  List.iter
    (fun (_, ds) -> if ds.entries = None then build_def t ds)
    t.defs

(* --- reads ----------------------------------------------------------- *)

let served t ds =
  (match ds.entries with
  | Some _ ->
      t.s_hits <- t.s_hits + 1;
      M.Counter.incr m_hits
  | None ->
      t.s_misses <- t.s_misses + 1;
      M.Counter.incr m_misses;
      build_def t ds);
  match ds.entries with
  | Some m -> List.map (fun (_, ne) -> ne.inst) (KMap.bindings m)
  | None -> assert false

let instances t name = Result.map (served t) (find_state t name)

let query t name cond =
  Result.map (List.filter (Vo_query.holds cond)) (instances t name)

let oql t name q =
  let* ds = find_state t name in
  let* cond = Oql.parse ds.def q in
  Ok (List.filter (Vo_query.holds cond) (served t ds))

(* --- incremental maintenance ----------------------------------------- *)

let invalidate_def t ds =
  if ds.entries <> None then begin
    ds.entries <- None;
    t.s_invalidated <- t.s_invalidated + 1;
    M.Counter.incr m_invalidated
  end

let invalidate_all t ~db =
  List.iter (fun (_, ds) -> invalidate_def t ds) t.defs;
  t.db <- db

(* A delta is only applicable if its old images match the state the
   cache sits on — [Added] keys absent, [Removed]/[Updated] old images
   present verbatim. A mismatch means the caller fed a delta from a
   different lineage (or skipped one); patching would silently corrupt. *)
let truthful_against db d =
  List.for_all
    (fun (rel, changes) ->
      match Database.relation db rel with
      | Error _ -> false
      | Ok r ->
          List.for_all
            (fun (key, c) ->
              match c, Relation.lookup r key with
              | Delta.Added _, None -> true
              | Delta.Added _, Some _ -> false
              | ( (Delta.Removed t0 | Delta.Updated { before = t0; _ }),
                  Some stored ) ->
                  Tuple.equal t0 stored
              | (Delta.Removed _ | Delta.Updated _), None -> false)
            changes)
    (Delta.bindings d)

let paranoid_check t =
  List.iter
    (fun (_, ds) ->
      match ds.entries with
      | None -> ()
      | Some m ->
          let cached = List.map (fun (_, ne) -> ne.inst) (KMap.bindings m) in
          let fresh = Instantiate.instantiate t.db ds.def in
          if not (List.equal Instance.equal cached fresh) then begin
            t.s_divergences <- t.s_divergences + 1;
            M.Counter.incr m_divergences;
            Log.warn (fun k ->
                k "cache: paranoid cross-check diverged on %s; invalidating"
                  ds.def.Definition.name);
            invalidate_def t ds
          end)
    t.defs

let patch_def t ds ~post d touched =
  M.time m_patch_ns @@ fun () ->
  Obs.Trace.with_span "cache.patch"
    ~tags:[ "object", ds.def.Definition.name ]
  @@ fun () ->
  let entries = match ds.entries with Some m -> m | None -> assert false in
  let pivot = ds.def.Definition.pivot in
  let pivot_schema = Schema_graph.schema_exn t.graph pivot in
  let pivot_rel = Database.relation_exn post pivot in
  (* Affected pivot keys: direct pivot changes carry their key; any
     other change is walked backwards through every chain that reaches
     its relation, against the post state (if an upstream link vanished
     too, that link's own change backwalks from higher up). *)
  let affected = ref KSet.empty in
  List.iter
    (fun (rel, changes) ->
      if String.equal rel pivot then
        List.iter (fun (key, _) -> affected := KSet.add key !affected) changes;
      match SMap.find_opt rel ds.chains with
      | None -> ()
      | Some chains ->
          let images =
            List.concat_map
              (fun (_, c) ->
                match c with
                | Delta.Added u | Delta.Removed u -> [ u ]
                | Delta.Updated { before; after } -> [ before; after ])
              changes
          in
          List.iter
            (fun chain ->
              let back = List.rev_map Schema_graph.inverse chain in
              List.iter
                (fun img ->
                  List.iter
                    (fun p ->
                      affected :=
                        KSet.add (Tuple.key_of pivot_schema p) !affected)
                    (List.fold_left
                       (fun ts e -> List.concat_map (connected_via e post) ts)
                       [ img ] back))
                images)
            chains)
    (Delta.bindings d);
  let n = KSet.cardinal !affected in
  let entries =
    KSet.fold
      (fun key m ->
        match Relation.lookup pivot_rel key with
        | None -> KMap.remove key m
        | Some full ->
            KMap.add key
              (entry_of ds post touched (KMap.find_opt key m)
                 ds.def.Definition.root full)
              m)
      !affected entries
  in
  ds.entries <- Some entries;
  t.s_patched <- t.s_patched + n;
  M.Counter.add m_patched n;
  Obs.Trace.tag "patched" (string_of_int n);
  Log.debug (fun k ->
      k "cache: patched %d entr%s of %s" n
        (if n = 1 then "y" else "ies")
        ds.def.Definition.name)

let apply_delta t ~post d =
  Obs.Trace.with_span "cache.apply_delta" @@ fun () ->
  let touched = SSet.of_list (Delta.relations d) in
  let warm_defs = List.filter (fun (_, ds) -> ds.entries <> None) t.defs in
  let relevant, skipped =
    List.partition
      (fun (_, ds) -> not (SSet.disjoint touched ds.deps))
      warm_defs
  in
  List.iter
    (fun _ ->
      t.s_skipped <- t.s_skipped + 1;
      M.Counter.incr m_skipped)
    skipped;
  (if relevant <> [] then
     if truthful_against t.db d then
       List.iter (fun (_, ds) -> patch_def t ds ~post d touched) relevant
     else begin
       Log.warn (fun k ->
           k "cache: delta contradicts the cached state (foreign lineage?); \
              invalidating");
       List.iter (fun (_, ds) -> invalidate_def t ds) relevant
     end);
  t.db <- post;
  if t.cmode = Paranoid then paranoid_check t

type stats = {
  hits : int;
  misses : int;
  patched : int;
  invalidated : int;
  skipped : int;
  divergences : int;
}

let stats t =
  {
    hits = t.s_hits;
    misses = t.s_misses;
    patched = t.s_patched;
    invalidated = t.s_invalidated;
    skipped = t.s_skipped;
    divergences = t.s_divergences;
  }
