(* Sharing view-object definitions between sites.

   "A view object is an uninstantiated window onto the underlying
   database; that is, only its definition is saved while base data
   remains stored in the relational database." This example plays both
   sides of that arrangement:

   - site A defines the schema, the objects and their translators, and
     exports the definitions (no data) to a file;
   - site B imports the definitions, bulk-loads its own base data from
     CSV, builds connection indexes, and works through the objects —
     queries in OQL, updates in the update language.

   Run with: dune exec examples/definition_sharing.exe *)

open Relational
open Viewobject
open Penguin

let section title = Fmt.pr "@.=== %s ===@." title

let or_die = function
  | Ok v -> v
  | Error e -> Fmt.failwith "definition_sharing: %s" e

let () =
  section "Site A: define and export (definitions only)";
  let site_a = University.workspace () in
  let path = Filename.temp_file "penguin_defs" ".pws" in
  or_die (Result.map_error Error.to_string (Store.save_file ~include_data:false site_a path));
  Fmt.pr "definitions exported to %s (%d bytes)@." path
    (String.length (Store.save ~include_data:false site_a));

  section "Site B: import the definitions";
  let site_b = or_die (Store.load_file path) in
  Sys.remove path;
  Fmt.pr "objects available: %s@."
    (String.concat ", " (List.map fst site_b.Workspace.objects));
  Fmt.pr "base data: %d tuple(s) (none — only definitions travel)@."
    (Database.total_tuples site_b.Workspace.db);

  section "Site B: bulk-load its own data from CSV";
  let load_csv db name csv =
    let schema = Relation.schema (Database.relation_exn db name) in
    let loaded = or_die (Csv.load schema csv) in
    Relation.fold
      (fun t db ->
        match Database.insert db name t with
        | Ok db -> db
        | Error e -> Fmt.failwith "load %s: %s" name (Database.error_to_string e))
      loaded db
  in
  let db = site_b.Workspace.db in
  let db =
    load_csv db "DEPARTMENT"
      "dept_name,building,budget\nMarine Biology,Reef Hall,900000\nAstronomy,Dome,1200000\n"
  in
  let db =
    load_csv db "PEOPLE"
      "pid,name,dept_name\n1,Nina Nerin,Marine Biology\n2,Orla Orr,Astronomy\n3,Pete Poe,Marine Biology\n"
  in
  let db =
    load_csv db "STUDENT" "pid,degree_program,year\n1,MS MarBio,1\n3,PhD MarBio,3\n"
  in
  let db = load_csv db "FACULTY" "pid,rank,office\n2,Professor,D-1\n" in
  let db =
    load_csv db "COURSES"
      "course_id,title,units,level,dept_name\nMB200,Coral Ecology,4,grad,Marine \
       Biology\nASTRO10,Intro Astronomy,3,undergrad,Astronomy\n"
  in
  let db =
    load_csv db "GRADES" "course_id,pid,grade\nMB200,1,A\nMB200,3,A-\nASTRO10,1,B\n"
  in
  let db =
    load_csv db "CURRICULUM"
      "degree,course_id,requirement\nMS MarBio,MB200,core\n"
  in
  let site_b = Workspace.with_db site_b db in
  or_die (Workspace.check_consistency site_b);
  Fmt.pr "loaded %d tuple(s); database consistent@."
    (Database.total_tuples site_b.Workspace.db);

  section "Site B: index the connections and query";
  let site_b = Workspace.index_connections site_b in
  let grads =
    or_die (Workspace.oql site_b "omega" "level = 'grad' and count(GRADES) >= 2")
  in
  List.iter (fun i -> Fmt.pr "%s" (Instance.to_ascii i)) grads;

  section "Site B: update through the shared object";
  let site_b, outcomes =
    or_die
      (Upql.apply site_b ~object_name:"omega"
         "set GRADES[pid = 3] grade = 'A' where course_id = 'MB200'")
  in
  List.iter (fun o -> Fmt.pr "%a@." Vo_core.Engine.pp_outcome o) outcomes;
  or_die (Workspace.check_consistency site_b);

  section "Site B: the paper's translator still applies";
  (* omega carries the Section 6 translator through the export: renaming
     a course into an existing id needs the merge permission the DBA
     denied at site A *)
  let _site_b, outcomes =
    or_die
      (Upql.apply site_b ~object_name:"omega"
         "set course_id = 'ASTRO10' where course_id = 'MB200'")
  in
  List.iter (fun o -> Fmt.pr "%a@." Vo_core.Engine.pp_outcome o) outcomes;
  Fmt.pr "@.definition sharing complete.@."
