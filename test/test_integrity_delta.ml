(* Incremental (delta-driven) integrity checking must agree with the
   full check. The contract under test (see Integrity.check_delta):

   - soundness:     every violation it reports holds in the post-state;
   - completeness:  every violation of the post-state whose key slot
                    (connection, relation, tuple key) is not already
                    violated in the pre-state is reported.

   Both hold for arbitrary pre-states (even inconsistent ones), which
   lets the property run over randomly populated databases without
   first repairing them. Completeness is per key slot, not per tuple
   image: an update that keeps a tuple's (already-violated) connecting
   values re-images a pre-existing violation rather than introducing
   one, and the checker's firing rule skips connections whose
   connecting values the change did not alter. On consistent
   pre-states — the engine's actual use — the two notions coincide
   (second property). Deterministic cases cover the two inverse checks
   (dangling references, orphaned owned tuples) and delta compaction. *)
open Relational
open Structural
open Test_util

(* --- randomized agreement over random schema graphs ------------------ *)

(* Random tuples over a schema: key/fk attributes draw from a small int
   range so cross-relation matches and mismatches both occur; nonkey fk
   attributes are occasionally Null (references are vacuous on null). *)
let random_value st schema attr =
  let is_key = List.mem attr (Schema.key_attributes schema) in
  match Schema.domain_of schema attr with
  | Some Value.DInt ->
      if (not is_key) && Random.State.int st 4 = 0 then Value.Null
      else Value.Int (Random.State.int st 4)
  | Some Value.DStr -> Value.Str (Fmt.str "s%d" (Random.State.int st 3))
  | Some Value.DFloat -> Value.Float (float_of_int (Random.State.int st 4))
  | Some Value.DBool -> Value.Bool (Random.State.bool st)
  | None -> Value.Null

let random_tuple st schema =
  Tuple.make
    (List.map
       (fun a -> a, random_value st schema a)
       (Schema.attribute_names schema))

let populate st g =
  List.fold_left
    (fun db rel ->
      let schema = Schema_graph.schema_exn g rel in
      let n = 2 + Random.State.int st 4 in
      let rec go db i =
        if i >= n then db
        else
          match Database.insert db rel (random_tuple st schema) with
          | Ok db -> go db (i + 1)
          | Error _ -> go db (i + 1) (* duplicate key: skip *)
      in
      go db 0)
    (Schema_graph.create_database g)
    (Schema_graph.relations g)

(* A random applicable op against the current state. *)
let random_op st g db =
  let rels = Schema_graph.relations g in
  let rel = List.nth rels (Random.State.int st (List.length rels)) in
  let schema = Schema_graph.schema_exn g rel in
  let r = Database.relation_exn db rel in
  let existing = Relation.to_list r in
  let pick_existing () =
    List.nth existing (Random.State.int st (List.length existing))
  in
  match Random.State.int st 3 with
  | 0 -> Some (Op.Insert (rel, random_tuple st schema))
  | 1 when existing <> [] ->
      Some (Op.Delete (rel, Tuple.key_of schema (pick_existing ())))
  | 2 when existing <> [] ->
      let victim = pick_existing () in
      let replacement =
        (* Half the replacements keep the key (image update), half draw
           a fresh key (key modification propagating along connections). *)
        if Random.State.bool st then
          Tuple.union victim
            (Tuple.make
               (List.map
                  (fun a -> a, random_value st schema a)
                  (Schema.nonkey_attributes schema)))
        else random_tuple st schema
      in
      Some (Op.Replace (rel, Tuple.key_of schema victim, replacement))
  | _ -> None

let random_ops st g db n =
  let rec go db acc i =
    if i >= n then List.rev acc
    else
      match random_op st g db with
      | None -> go db acc (i + 1)
      | Some op -> (
          match Database.apply db op with
          | Ok db' -> go db' (op :: acc) (i + 1)
          | Error _ -> go db acc (i + 1))
  in
  go db [] 0

let subset ~of_:vs us =
  List.for_all (fun v -> List.exists (Integrity.violation_equal v) vs) us

(* Two violations name the same key slot: same connection, same
   relation, same tuple key (the images may differ — e.g. an update that
   re-images an already-orphaned tuple). *)
let same_slot g (a : Integrity.violation) (b : Integrity.violation) =
  Connection.equal a.Integrity.connection b.Integrity.connection
  && a.Integrity.relation = b.Integrity.relation
  &&
  let schema = Schema_graph.schema_exn g a.Integrity.relation in
  List.compare Value.compare
    (Tuple.key_of schema a.Integrity.tuple)
    (Tuple.key_of schema b.Integrity.tuple)
  = 0

let pp_violations = Fmt.(list ~sep:cut Integrity.pp_violation)

let plan_seed_arb =
  QCheck.make
    ~print:(fun (p, seed) ->
      Fmt.str "seed=%d n=%d attach=%a extra=%a" seed p.Test_randgraph.n
        Fmt.(Dump.list (Dump.pair int int))
        p.Test_randgraph.attach
        Fmt.(Dump.list (Dump.pair int int))
        p.Test_randgraph.extra_refs)
    QCheck.Gen.(pair Test_randgraph.plan_gen (int_bound 1_000_000))

let prop_delta_check_agrees =
  QCheck.Test.make
    ~name:"check_delta sound and complete vs full check (random sequences)"
    ~count:200 plan_seed_arb
    (fun (plan, seed) ->
      match Test_randgraph.build plan with
      | Error _ -> false
      | Ok g ->
          let st = Random.State.make [| seed |] in
          let db0 = populate st g in
          let ops = random_ops st g db0 (3 + Random.State.int st 8) in
          let db1, delta =
            match Database.apply_all_delta db0 ops with
            | Ok r -> r
            | Error (e, _) -> failwith (Database.error_to_string e)
          in
          let full_pre = Integrity.check g db0 in
          let full_post = Integrity.check g db1 in
          let incr = Integrity.check_delta g db1 ~delta in
          let introduced =
            List.filter
              (fun v -> not (List.exists (same_slot g v) full_pre))
              full_post
          in
          let sound = subset ~of_:full_post incr in
          let complete = subset ~of_:incr introduced in
          if not (sound && complete) then
            QCheck.Test.fail_reportf
              "@[<v>%s@,ops:@,%a@,incremental:@,%a@,full post:@,%a@,introduced:@,%a@]"
              (if sound then "incomplete" else "unsound")
              Op.pp_list ops pp_violations incr pp_violations full_post
              pp_violations introduced
          else true)

(* When the pre-state is consistent, the incremental verdict must equal
   the full verdict on the post-state — the engine's actual use. *)
let prop_delta_check_verdict_on_consistent_base =
  QCheck.Test.make
    ~name:"on consistent bases the incremental verdict is the full verdict"
    ~count:200 plan_seed_arb
    (fun (plan, seed) ->
      match Test_randgraph.build plan with
      | Error _ -> false
      | Ok g ->
          let st = Random.State.make [| seed |] in
          let db0 = populate st g in
          if Integrity.check g db0 <> [] then true (* only consistent bases *)
          else
            let ops = random_ops st g db0 (3 + Random.State.int st 8) in
            let db1, delta =
              match Database.apply_all_delta db0 ops with
              | Ok r -> r
              | Error (e, _) -> failwith (Database.error_to_string e)
            in
            (Integrity.check g db1 = []) = (Integrity.check_delta g db1 ~delta = []))

(* --- deterministic inverse-check cases ------------------------------- *)

let dept =
  Schema.make_exn ~name:"DEPT"
    ~attributes:[ Attribute.str "dname"; Attribute.str "building" ]
    ~key:[ "dname" ]

let emp =
  Schema.make_exn ~name:"EMP"
    ~attributes:
      [ Attribute.int "eid"; Attribute.str "dname"; Attribute.str "ename" ]
    ~key:[ "eid" ]

let task =
  Schema.make_exn ~name:"TASK"
    ~attributes:[ Attribute.int "eid"; Attribute.int "tid"; Attribute.str "what" ]
    ~key:[ "eid"; "tid" ]

let hg =
  Schema_graph.make_exn [ dept; emp; task ]
    [
      Connection.reference "EMP" "DEPT" ~on:([ "dname" ], [ "dname" ]);
      Connection.ownership "EMP" "TASK" ~on:([ "eid" ], [ "eid" ]);
    ]

let seeded () =
  let db = Schema_graph.create_database hg in
  let ins rel bindings db =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.insert db rel (tuple bindings)))
  in
  db
  |> ins "DEPT" [ "dname", vs "CS"; "building", vs "Gates" ]
  |> ins "EMP" [ "eid", vi 1; "dname", vs "CS"; "ename", vs "Ann" ]
  |> ins "TASK" [ "eid", vi 1; "tid", vi 1; "what", vs "grade" ]

let run_delta db ops =
  match Database.apply_all_delta db ops with
  | Ok r -> r
  | Error (e, _) -> Alcotest.fail (Database.error_to_string e)

let test_detects_dangling_reference () =
  (* Deleting the referenced DEPT strands EMP 1: the inverse reference
     check must find the referer through the secondary index. *)
  let db = seeded () in
  let db', delta = run_delta db [ Op.Delete ("DEPT", [ vs "CS" ]) ] in
  let vs_ = Integrity.check_delta hg db' ~delta in
  Alcotest.(check int) "one violation" 1 (List.length vs_);
  let v = List.hd vs_ in
  Alcotest.(check string) "on EMP" "EMP" v.Integrity.relation;
  Alcotest.(check bool) "dangling" true
    (Relational.Strutil.contains ~sub:"dangling" v.Integrity.message)

let test_detects_orphaned_owned_tuple () =
  (* Deleting the owner strands TASK (1,1). *)
  let db = seeded () in
  let db', delta = run_delta db [ Op.Delete ("EMP", [ vi 1 ]) ] in
  let vs_ = Integrity.check_delta hg db' ~delta in
  Alcotest.(check int) "one violation" 1 (List.length vs_);
  let v = List.hd vs_ in
  Alcotest.(check string) "on TASK" "TASK" v.Integrity.relation;
  Alcotest.(check bool) "orphan" true
    (Relational.Strutil.contains ~sub:"owning" v.Integrity.message)

let test_key_change_strands_dependents () =
  (* Replacing EMP 1 with EMP 2 orphans TASK (1,1) even though nothing
     was deleted: the old image's inverse check fires. *)
  let db = seeded () in
  let db', delta =
    run_delta db
      [ Op.Replace
          ("EMP", [ vi 1 ], tuple [ "eid", vi 2; "dname", vs "CS"; "ename", vs "Ann" ]) ]
  in
  let vs_ = Integrity.check_delta hg db' ~delta in
  Alcotest.(check int) "one violation" 1 (List.length vs_);
  Alcotest.(check string) "on TASK" "TASK" (List.hd vs_).Integrity.relation

let test_consistent_updates_pass () =
  (* Inserting a properly parented tuple and nullifying a reference are
     both clean under the incremental check. *)
  let db = seeded () in
  let db', delta =
    run_delta db
      [
        Op.Insert ("TASK", tuple [ "eid", vi 1; "tid", vi 2; "what", vs "review" ]);
        Op.Replace
          ("EMP", [ vi 1 ], tuple [ "eid", vi 1; "dname", Value.Null; "ename", vs "Ann" ]);
        Op.Delete ("DEPT", [ vs "CS" ]);
      ]
  in
  Alcotest.(check int) "no violations" 0
    (List.length (Integrity.check_delta hg db' ~delta));
  Alcotest.(check int) "full agrees" 0 (List.length (Integrity.check hg db'))

let test_delta_compaction () =
  let db = seeded () in
  (* insert then delete nets out *)
  let t = tuple [ "eid", vi 1; "tid", vi 9; "what", vs "tmp" ] in
  let _, delta =
    run_delta db [ Op.Insert ("TASK", t); Op.Delete ("TASK", [ vi 1; vi 9 ]) ]
  in
  Alcotest.(check bool) "insert+delete cancels" true (Delta.is_empty delta);
  (* replace after insert collapses to one Added with the final image *)
  let t2 = tuple [ "eid", vi 1; "tid", vi 9; "what", vs "final" ] in
  let _, delta =
    run_delta db [ Op.Insert ("TASK", t); Op.Replace ("TASK", [ vi 1; vi 9 ], t2) ]
  in
  Alcotest.(check int) "one net change" 1 (Delta.cardinal delta);
  (match Delta.changes delta "TASK" with
  | [ Delta.Added t' ] ->
      Alcotest.check value_testable "final image" (vs "final")
        (Tuple.get t' "what")
  | _ -> Alcotest.fail "expected a single Added");
  (* delete then re-insert the same key is an update *)
  let _, delta =
    run_delta db
      [
        Op.Delete ("TASK", [ vi 1; vi 1 ]);
        Op.Insert ("TASK", tuple [ "eid", vi 1; "tid", vi 1; "what", vs "redo" ]);
      ]
  in
  (match Delta.changes delta "TASK" with
  | [ Delta.Updated { before; after } ] ->
      Alcotest.check value_testable "before" (vs "grade") (Tuple.get before "what");
      Alcotest.check value_testable "after" (vs "redo") (Tuple.get after "what")
  | _ -> Alcotest.fail "expected a single Updated")

let test_auto_indexes_on_connections () =
  (* create_database pre-indexes both endpoints of every connection. *)
  let db = Schema_graph.create_database hg in
  let has rel attrs = Relation.has_index (Database.relation_exn db rel) attrs in
  Alcotest.(check bool) "EMP.dname" true (has "EMP" [ "dname" ]);
  Alcotest.(check bool) "DEPT.dname" true (has "DEPT" [ "dname" ]);
  Alcotest.(check bool) "EMP.eid" true (has "EMP" [ "eid" ]);
  Alcotest.(check bool) "TASK.eid" true (has "TASK" [ "eid" ])

let suite =
  [
    qtest prop_delta_check_agrees;
    qtest prop_delta_check_verdict_on_consistent_base;
    Alcotest.test_case "dangling reference detected" `Quick
      test_detects_dangling_reference;
    Alcotest.test_case "orphaned owned tuple detected" `Quick
      test_detects_orphaned_owned_tuple;
    Alcotest.test_case "key change strands dependents" `Quick
      test_key_change_strands_dependents;
    Alcotest.test_case "consistent updates pass" `Quick
      test_consistent_updates_pass;
    Alcotest.test_case "delta compaction" `Quick test_delta_compaction;
    Alcotest.test_case "auto indexes on connections" `Quick
      test_auto_indexes_on_connections;
  ]
