(* Algebra of first-class deltas (footprints, conflicts, merge) and the
   group-commit equivalence they license: merging conflict-free deltas
   and applying the batch at once must agree with applying the updates
   one at a time.

   - [Delta.conflicts] is symmetric, and empty exactly when [merge]
     succeeds (for pure deltas a read key is also a write key, so every
     overlap is a write overlap);
   - [Delta.merge] is commutative and associative where defined — and
     definedness itself is association-independent, because merge is a
     disjoint union (no cancellation), so the merged write set is the
     union of the parts';
   - [Engine.commit_group] of a conflict-free staged batch produces the
     same database as folding [Engine.apply] over the requests. *)
open Relational
open Viewobject
open Test_util

(* --- random pure deltas ----------------------------------------------- *)

let tuple k v = Tuple.make [ "k", Value.Int k; "v", Value.Int v ]

(* (relation, key, value, kind): kind 0 = Added, 1 = Removed, 2 = Updated.
   Keys draw from a small range so overlaps between deltas are common. *)
let apply_change d (rel, k, v, kind) =
  let key = [ Value.Int k ] in
  match kind with
  | 0 -> Delta.record d ~rel ~key ~old_image:None ~new_image:(Some (tuple k v))
  | 1 -> Delta.record d ~rel ~key ~old_image:(Some (tuple k v)) ~new_image:None
  | _ ->
      Delta.record d ~rel ~key ~old_image:(Some (tuple k v))
        ~new_image:(Some (tuple k (v + 1)))

let delta_of_list = List.fold_left apply_change Delta.empty

let change_gen =
  QCheck.Gen.(
    quad (oneofl [ "R"; "S"; "T" ]) (int_bound 7) (int_bound 5) (int_bound 2))

let delta_gen = QCheck.Gen.(map delta_of_list (list_size (int_bound 6) change_gen))

let delta_arb = QCheck.make ~print:(Fmt.to_to_string Delta.pp) delta_gen

let prop_conflicts_symmetric =
  QCheck.Test.make ~name:"conflicts is symmetric" ~count:500
    (QCheck.pair delta_arb delta_arb)
    (fun (a, b) -> Delta.conflicts a b = Delta.conflicts b a)

let prop_conflicts_iff_merge_fails =
  QCheck.Test.make ~name:"conflicts empty iff merge succeeds" ~count:500
    (QCheck.pair delta_arb delta_arb)
    (fun (a, b) -> Delta.conflicts a b = [] = Result.is_ok (Delta.merge a b))

let prop_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative where defined" ~count:500
    (QCheck.pair delta_arb delta_arb)
    (fun (a, b) ->
      match Delta.merge a b, Delta.merge b a with
      | Ok ab, Ok ba -> Delta.equal ab ba
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_merge_associative =
  QCheck.Test.make ~name:"merge is associative on non-conflicting deltas"
    ~count:500
    (QCheck.triple delta_arb delta_arb delta_arb)
    (fun (a, b, c) ->
      let left = Result.bind (Delta.merge a b) (fun ab -> Delta.merge ab c) in
      let right = Result.bind (Delta.merge b c) (fun bc -> Delta.merge a bc) in
      match left, right with
      | Ok l, Ok r -> Delta.equal l r
      | Error _, Error _ -> true
      | Ok _, Error _ | Error _, Ok _ -> false)

(* --- compose: sequential composition ---------------------------------- *)

let prop_compose_empty_identity =
  QCheck.Test.make ~name:"compose: empty is a two-sided identity" ~count:300
    delta_arb
    (fun d ->
      Delta.equal (Delta.compose Delta.empty d) d
      && Delta.equal (Delta.compose d Delta.empty) d)

let test_compose_nets_per_key () =
  let key = [ Value.Int 1 ] in
  let upd a b =
    Delta.record Delta.empty ~rel:"R" ~key ~old_image:(Some (tuple 1 a))
      ~new_image:(Some (tuple 1 b))
  in
  (* update;update nets to one update carrying the outer images... *)
  Alcotest.(check bool) "update;update nets" true
    (Delta.equal (Delta.compose (upd 0 1) (upd 1 2)) (upd 0 2));
  (* ...and insert;delete cancels to nothing. *)
  let add =
    Delta.record Delta.empty ~rel:"R" ~key ~old_image:None
      ~new_image:(Some (tuple 1 5))
  in
  let del =
    Delta.record Delta.empty ~rel:"R" ~key ~old_image:(Some (tuple 1 5))
      ~new_image:None
  in
  Alcotest.(check bool) "insert;delete cancels" true
    (Delta.is_empty (Delta.compose add del))

(* --- group commit vs sequential apply --------------------------------- *)

let g = Penguin.University.graph
let omega = Penguin.University.omega
let spec = Penguin.University.omega_translator

(* One grade edit per course: instances of distinct courses have
   disjoint write footprints (the island is COURSES + GRADES), so any
   subset of these requests is a conflict-free batch. Seeded enrolment
   facts: see University.seeded_db. *)
let enrolments = [ "CS101", 1; "CS345", 2; "EE280", 1 ]

let grade_edit db (course, pid) grade =
  let inst =
    match
      Instantiate.instantiate ~where:(Predicate.eq_str "course_id" course) db
        omega
    with
    | [ i ] -> i
    | l -> Alcotest.failf "expected 1 instance of %s, got %d" course (List.length l)
  in
  match
    Vo_core.Request.partial_modify inst ~label:"GRADES"
      ~at:(Tuple.make [ "pid", Value.Int pid ])
      ~f:(fun t -> Tuple.set t "grade" (Value.Str (Fmt.str "G%d" grade)))
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "building request on %s: %s" course e

let sequential db reqs =
  List.fold_left
    (fun db r ->
      match (Vo_core.Engine.apply g db omega spec r).Vo_core.Engine.result with
      | Transaction.Committed db' -> db'
      | Transaction.Rolled_back { reason; _ } ->
          Alcotest.failf "sequential apply rejected: %s" reason)
    db reqs

let stage1 db r =
  match Vo_core.Engine.stage g db omega spec r with
  | Ok s -> s
  | Error e -> Alcotest.failf "stage: %s" (Vo_core.Engine.stage_error_reason e)

(* mask picks a non-empty subset of the three courses; grades vary the
   written values. *)
let prop_group_commit_equals_sequential =
  QCheck.Test.make
    ~name:"commit_group of a conflict-free batch equals sequential apply"
    ~count:50
    QCheck.(pair (int_range 1 7) (triple (0 -- 9) (0 -- 9) (0 -- 9)))
    (fun (mask, (g1, g2, g3)) ->
      let db = Penguin.University.seeded_db () in
      let picked =
        List.filteri (fun i _ -> mask land (1 lsl i) <> 0) enrolments
      in
      let grades = [ g1; g2; g3 ] in
      let reqs = List.mapi (fun i e -> grade_edit db e (List.nth grades i)) picked in
      let staged = List.map (stage1 db) reqs in
      match Vo_core.Engine.commit_group g db staged with
      | Error rej ->
          QCheck.Test.fail_reportf "group commit rejected: %s"
            (Vo_core.Engine.group_rejection_reason rej)
      | Ok (db_group, _) -> Database.equal db_group (sequential db reqs))

let test_group_conflict_detected () =
  let db = Penguin.University.seeded_db () in
  (* Two edits to the same (course, pid) grade: a write-write conflict. *)
  let r1 = grade_edit db ("CS345", 2) 1 in
  let r2 = grade_edit db ("CS345", 2) 2 in
  match
    Vo_core.Engine.commit_group g db [ stage1 db r1; stage1 db r2 ]
  with
  | Ok _ -> Alcotest.fail "conflicting batch committed"
  | Error (Vo_core.Engine.Group_conflict { left; right; conflict }) ->
      Alcotest.(check int) "left" 0 left;
      Alcotest.(check int) "right" 1 right;
      Alcotest.(check string) "relation" "GRADES" conflict.Delta.rel
  | Error rej ->
      Alcotest.failf "unexpected rejection: %s"
        (Vo_core.Engine.group_rejection_reason rej)

(* The contract [Workspace.sync_cache] leans on: applying the composed
   net delta of a commit sequence lands on the same database as applying
   the commits one at a time. *)
let test_compose_matches_sequential_apply () =
  let apply db d =
    match Database.apply_delta db d with
    | Ok db -> db
    | Error e -> Alcotest.failf "apply_delta: %s" (Database.error_to_string e)
  in
  let db0 = Penguin.University.seeded_db () in
  let s1 = stage1 db0 (grade_edit db0 ("CS101", 1) 7) in
  let d1 = s1.Vo_core.Engine.delta in
  let db1 = apply db0 d1 in
  let s2 = stage1 db1 (grade_edit db1 ("CS345", 2) 8) in
  let d2 = s2.Vo_core.Engine.delta in
  let db2 = apply db1 d2 in
  Alcotest.(check bool) "apply (compose d1 d2) = apply d1; apply d2" true
    (Database.equal (apply db0 (Delta.compose d1 d2)) db2);
  (* A third commit touching the same tuple as the first: composition
     must net the pair into one Updated rather than stack them. *)
  let s3 = stage1 db2 (grade_edit db2 ("CS101", 1) 9) in
  let d3 = s3.Vo_core.Engine.delta in
  let db3 = apply db2 d3 in
  let net = Delta.compose (Delta.compose d1 d2) d3 in
  Alcotest.(check bool) "three-commit net lands on the final state" true
    (Database.equal (apply db0 net) db3);
  Alcotest.(check bool) "composition is associative here" true
    (Delta.equal net (Delta.compose d1 (Delta.compose d2 d3)))

(* --- shard projection (the sharded engine's routing primitive) -------- *)

(* R and T share a shard, S has its own: split must group by shard, keep
   pieces non-empty and sorted, and lose nothing. *)
let shard_of = function "S" -> 1 | _ -> 0

let prop_split_partitions_and_merges_back =
  QCheck.Test.make ~name:"split pieces merge back to the original" ~count:500
    delta_arb
    (fun d ->
      let pieces = Delta.split ~shard_of d in
      let shards = List.map fst pieces in
      (* sorted, unique, non-empty pieces whose relations live on their
         shard *)
      shards = List.sort_uniq compare shards
      && List.for_all
           (fun (s, piece) ->
             (not (Delta.is_empty piece))
             && List.for_all
                  (fun r -> shard_of r = s)
                  (Delta.relations piece))
           pieces
      (* disjoint pieces: merge (any order — fold either way) restores
         the original delta *)
      && (match
            List.fold_left
              (fun acc (_, piece) ->
                Result.bind acc (fun acc -> Delta.merge acc piece))
              (Ok Delta.empty)
              (List.rev pieces)
          with
         | Ok merged -> Delta.equal merged d
         | Error _ -> false))

let test_split_examples () =
  Alcotest.(check int) "empty delta has no pieces" 0
    (List.length (Delta.split ~shard_of Delta.empty));
  let d = delta_of_list [ ("R", 1, 1, 0); ("T", 2, 2, 0) ] in
  (match Delta.split ~shard_of d with
  | [ (0, piece) ] ->
      Alcotest.(check bool) "one colocated piece is the delta" true
        (Delta.equal piece d)
  | ps -> Alcotest.failf "expected one piece on shard 0, got %d" (List.length ps));
  let d = delta_of_list [ ("S", 1, 1, 0); ("R", 1, 1, 0); ("T", 2, 2, 2) ] in
  match Delta.split ~shard_of d with
  | [ (0, a); (1, b) ] ->
      Alcotest.(check (list string)) "R,T together" [ "R"; "T" ]
        (Delta.relations a);
      Alcotest.(check (list string)) "S alone" [ "S" ] (Delta.relations b)
  | ps -> Alcotest.failf "expected pieces on shards 0 and 1, got %d" (List.length ps)

let suite =
  [
    qtest prop_conflicts_symmetric;
    qtest prop_conflicts_iff_merge_fails;
    qtest prop_merge_commutative;
    qtest prop_merge_associative;
    qtest prop_group_commit_equals_sequential;
    Alcotest.test_case "write-write conflict rejected" `Quick
      test_group_conflict_detected;
    qtest prop_compose_empty_identity;
    Alcotest.test_case "compose nets changes per key" `Quick
      test_compose_nets_per_key;
    Alcotest.test_case "compose agrees with sequential application" `Quick
      test_compose_matches_sequential_apply;
    qtest prop_split_partitions_and_merges_back;
    Alcotest.test_case "split examples: colocated and split pieces" `Quick
      test_split_examples;
  ]
