(* The resilience layer in isolation: deterministic backoff schedules,
   retry/deadline semantics over a virtual clock, admission control, and
   the circuit breaker's state machine. Everything here is seeded and
   clocked — no wall time, no randomness, so every run sees the same
   nanoseconds. *)

module R = Penguin.Resilience
module E = Penguin.Error
module M = Obs.Metrics

let counter name = M.Counter.value (M.counter name)

(* --- backoff schedules ------------------------------------------------- *)

let test_schedule_deterministic () =
  let p = { R.Policy.default with max_attempts = 8; seed = 42 } in
  let s1 = R.Policy.schedule p in
  let s2 = R.Policy.schedule p in
  Alcotest.(check int) "schedule length" 7 (List.length s1);
  Alcotest.(check bool) "same seed, same schedule" true (s1 = s2);
  let s3 = R.Policy.schedule { p with seed = 43 } in
  Alcotest.(check bool) "different seed, different schedule" true (s1 <> s3);
  (* per-attempt draws are independently deterministic too *)
  List.iteri
    (fun i d ->
      Alcotest.(check (float 1e-9))
        (Fmt.str "backoff %d reproducible" (i + 1))
        d
        (R.Policy.backoff_ns p ~attempt:(i + 1)))
    s1

let test_schedule_bounds () =
  let p =
    { R.Policy.default with max_attempts = 12; jitter = 0.2; seed = 7 }
  in
  List.iteri
    (fun i d ->
      let attempt = i + 1 in
      let raw =
        Float.min
          (p.R.Policy.base_delay_ns
          *. (p.R.Policy.multiplier ** float_of_int (attempt - 1)))
          p.R.Policy.max_delay_ns
      in
      Alcotest.(check bool)
        (Fmt.str "attempt %d within jitter band" attempt)
        true
        (d >= raw *. 0.8 -. 1e-6 && d <= raw *. 1.2 +. 1e-6))
    (R.Policy.schedule p);
  (* no jitter: the schedule is the pure capped exponential *)
  let pure = { p with jitter = 0. } in
  Alcotest.(check (float 1e-6)) "base delay exact"
    pure.R.Policy.base_delay_ns
    (R.Policy.backoff_ns pure ~attempt:1);
  Alcotest.(check (float 1e-6)) "doubling"
    (2. *. pure.R.Policy.base_delay_ns)
    (R.Policy.backoff_ns pure ~attempt:2);
  Alcotest.(check (float 1e-6)) "capped"
    pure.R.Policy.max_delay_ns
    (R.Policy.backoff_ns pure ~attempt:50);
  Alcotest.(check (list (float 1e-6))) "occ policy never sleeps" [ 0.; 0. ]
    (R.Policy.schedule R.Policy.occ)

(* --- retry ------------------------------------------------------------- *)

let transient_io =
  E.io ~op:E.Write ~path:"<test>" ~transient:true "synthetic transient"

let hard_io = E.io ~op:E.Sync ~path:"<test>" "synthetic hard fault"

let flaky ~failures ~with_ err =
  let n = ref 0 in
  fun () ->
    incr n;
    if !n <= failures then Error err else Ok with_

let test_retry_eventually_succeeds () =
  let clock = R.Clock.instant () in
  Alcotest.(check (result int (of_pp E.pp))) "3rd attempt lands" (Ok 7)
    (R.retry ~clock ~label:"flaky" (flaky ~failures:2 ~with_:7 transient_io))

let test_retry_gives_up () =
  M.enable ();
  let clock = R.Clock.instant () in
  let calls = ref 0 in
  let before = counter "resilience.giveups" in
  (match
     R.retry ~clock
       ~policy:{ R.Policy.default with max_attempts = 4 }
       (fun () ->
         incr calls;
         Error transient_io)
   with
  | Ok () -> Alcotest.fail "must not succeed"
  | Error (E.Io { transient = true; _ }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e));
  Alcotest.(check int) "exactly max_attempts calls" 4 !calls;
  Alcotest.(check int) "giveup counted" (before + 1)
    (counter "resilience.giveups")

let test_retry_fatal_is_immediate () =
  let clock = R.Clock.instant () in
  let calls = ref 0 in
  (match
     R.retry ~clock (fun () ->
         incr calls;
         Error hard_io)
   with
  | Error (E.Io { transient = false; _ }) -> ()
  | _ -> Alcotest.fail "hard fault must surface unchanged");
  Alcotest.(check int) "single attempt" 1 !calls;
  (* Invalid is equally fatal *)
  calls := 0;
  (match
     R.retry ~clock (fun () ->
         incr calls;
         Error (E.invalid "bad request"))
   with
  | Error (E.Invalid _) -> ()
  | _ -> Alcotest.fail "invalid must surface unchanged");
  Alcotest.(check int) "single attempt for Invalid" 1 !calls

let test_retry_deadline () =
  let clock = R.Clock.instant () in
  (* backoffs advance the virtual clock; a tight absolute deadline is
     crossed before the attempts run out *)
  let policy =
    { R.Policy.default with max_attempts = 100; jitter = 0.; seed = 1 }
  in
  let calls = ref 0 in
  let deadline_ns = clock.R.Clock.now_ns () +. 3.5e6 in
  (match
     R.retry ~clock ~policy ~deadline_ns ~label:"deadlined" (fun () ->
         incr calls;
         Error transient_io)
   with
  | Error (E.Deadline_exceeded msg) ->
      Alcotest.(check bool) "names the last error" true
        (Relational.Strutil.contains ~sub:"transient" msg)
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok () -> Alcotest.fail "must not succeed");
  (* backoffs 1ms + 2ms would land the 3rd attempt at t=3ms; the next
     4ms backoff overshoots the 3.5ms budget, so exactly 3 calls ran *)
  Alcotest.(check int) "attempts bounded by the deadline" 3 !calls

(* --- admission control -------------------------------------------------- *)

let test_limiter_sheds () =
  M.enable ();
  let lim = R.Limiter.create ~label:"t" ~max_in_flight:2 () in
  let before = counter "resilience.shed" in
  let r =
    R.Limiter.with_slot lim (fun () ->
        Alcotest.(check int) "one in flight" 1 (R.Limiter.in_flight lim);
        R.Limiter.with_slot lim (fun () ->
            Alcotest.(check int) "two in flight" 2 (R.Limiter.in_flight lim);
            match R.Limiter.with_slot lim (fun () -> Ok ()) with
            | Error (E.Busy _) -> Ok `Shed
            | _ -> Alcotest.fail "third slot must shed"))
  in
  Alcotest.(check bool) "shed observed" true (r = Ok `Shed);
  Alcotest.(check int) "shed counted" (before + 1) (counter "resilience.shed");
  Alcotest.(check int) "slots drained" 0 (R.Limiter.in_flight lim);
  (* the slot is released on raise too *)
  (try
     ignore (R.Limiter.with_slot lim (fun () -> failwith "boom"))
   with Failure _ -> ());
  Alcotest.(check int) "slot released on raise" 0 (R.Limiter.in_flight lim)

(* --- the circuit breaker ------------------------------------------------ *)

let test_breaker_trips_only_on_durability_faults () =
  let clock = R.Clock.instant () in
  let b = R.Breaker.create ~label:"t" ~threshold:3 ~cooldown_ns:1e9 ~clock () in
  let run err = ignore (R.Breaker.protect b (fun () -> Error err)) in
  (* transient faults, lost races and caller mistakes never count *)
  run transient_io;
  run (E.conflict "lost race");
  run (E.invalid "bad request");
  Alcotest.(check bool) "still closed" true (R.Breaker.state b = R.Breaker.Closed);
  (* non-transient faults count, but a success resets the streak *)
  run hard_io;
  run hard_io;
  ignore (R.Breaker.protect b (fun () -> Ok ()));
  run hard_io;
  run hard_io;
  Alcotest.(check bool) "two-in-a-row under threshold stays closed" true
    (R.Breaker.state b = R.Breaker.Closed);
  run hard_io;
  Alcotest.(check bool) "third consecutive fault trips" true
    (R.Breaker.state b = R.Breaker.Open);
  Alcotest.(check bool) "degraded" true (R.Breaker.degraded b)

let test_breaker_open_probe_cycle () =
  let clock = R.Clock.instant () in
  let b = R.Breaker.create ~label:"t" ~threshold:1 ~cooldown_ns:1e9 ~clock () in
  ignore (R.Breaker.protect b (fun () -> Error hard_io));
  Alcotest.(check bool) "tripped" true (R.Breaker.state b = R.Breaker.Open);
  (* open: writes shed without running *)
  let ran = ref false in
  (match
     R.Breaker.protect b (fun () ->
         ran := true;
         Ok ())
   with
  | Error (E.Busy msg) ->
      Alcotest.(check bool) "names degraded mode" true
        (Relational.Strutil.contains ~sub:"degraded" msg)
  | _ -> Alcotest.fail "open breaker must reject with Busy");
  Alcotest.(check bool) "shed write never ran" false !ran;
  (* past the cooldown the breaker offers a probe; a failing probe
     re-opens for a fresh cooldown *)
  clock.R.Clock.sleep_ns 1.5e9;
  Alcotest.(check bool) "half-open after cooldown" true
    (R.Breaker.state b = R.Breaker.Half_open);
  ignore (R.Breaker.protect b (fun () -> Error hard_io));
  Alcotest.(check bool) "failed probe re-opens" true
    (R.Breaker.state b = R.Breaker.Open);
  (* and a successful probe closes it for good *)
  clock.R.Clock.sleep_ns 1.5e9;
  (match R.Breaker.protect b (fun () -> Ok `Probe) with
  | Ok `Probe -> ()
  | _ -> Alcotest.fail "probe must run");
  Alcotest.(check bool) "successful probe closes" true
    (R.Breaker.state b = R.Breaker.Closed);
  Alcotest.(check bool) "not degraded" false (R.Breaker.degraded b);
  (* reset is an operator override *)
  ignore (R.Breaker.protect b (fun () -> Error hard_io));
  R.Breaker.reset b;
  Alcotest.(check bool) "reset closes" true (R.Breaker.state b = R.Breaker.Closed)

(* --- the error taxonomy ------------------------------------------------- *)

let test_classification () =
  let cases =
    [ E.conflict "c", true, false;
      E.busy "b", true, false;
      transient_io, true, false;
      hard_io, false, true;
      E.corrupt "bad crc", false, true;
      E.invalid "i", false, false;
      E.deadline_exceeded "d", false, false ]
  in
  List.iter
    (fun (e, retryable, trips) ->
      Alcotest.(check bool)
        (Fmt.str "%s retryable" (E.kind e))
        retryable (E.retryable e);
      Alcotest.(check bool)
        (Fmt.str "%s feeds the breaker" (E.kind e))
        trips (E.breaker_fault e))
    cases;
  (* errno classification *)
  Alcotest.(check bool) "EINTR transient" true (E.transient_errno Unix.EINTR);
  Alcotest.(check bool) "ENOSPC fatal" false (E.transient_errno Unix.ENOSPC);
  (* rendering carries the class and the context *)
  let e = E.with_context "persist" transient_io in
  Alcotest.(check bool) "context prefixed" true
    (Relational.Strutil.contains ~sub:"persist" (E.to_string e));
  Alcotest.(check bool) "still transient after context" true (E.retryable e);
  match E.to_json hard_io with
  | Obs.Json.Obj fields ->
      Alcotest.(check bool) "json carries kind" true
        (List.mem_assoc "kind" fields && List.mem_assoc "transient" fields)
  | _ -> Alcotest.fail "error json must be an object"

let suite =
  [
    Alcotest.test_case "backoff schedule is seed-deterministic" `Quick
      test_schedule_deterministic;
    Alcotest.test_case "backoff stays in the jitter band and caps" `Quick
      test_schedule_bounds;
    Alcotest.test_case "retry lands after transient faults" `Quick
      test_retry_eventually_succeeds;
    Alcotest.test_case "retry gives up at max attempts" `Quick
      test_retry_gives_up;
    Alcotest.test_case "fatal errors never retry" `Quick
      test_retry_fatal_is_immediate;
    Alcotest.test_case "deadline cuts the retry loop" `Quick
      test_retry_deadline;
    Alcotest.test_case "limiter sheds past its bound" `Quick test_limiter_sheds;
    Alcotest.test_case "breaker trips only on durability faults" `Quick
      test_breaker_trips_only_on_durability_faults;
    Alcotest.test_case "breaker open/probe/close cycle" `Quick
      test_breaker_open_probe_cycle;
    Alcotest.test_case "error classification and rendering" `Quick
      test_classification;
  ]
