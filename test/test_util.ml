(* Shared helpers for the test suites. *)
open Relational

let check_ok ?(msg = "expected Ok") = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s, got Error: %s" msg e

let check_err ?(msg = "expected Error") = function
  | Ok _ -> Alcotest.failf "%s, got Ok" msg
  | Error e -> e

let check_err_contains ~sub r =
  let e = check_err r in
  if not (Relational.Strutil.contains ~sub e) then
    Alcotest.failf "error %S does not mention %S" e sub

(* Variants over the typed {!Penguin.Error.t} taxonomy. *)
let check_ok_e ?(msg = "expected Ok") = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s, got Error: %s" msg (Penguin.Error.to_string e)

let check_err_e ?(msg = "expected Error") = function
  | Ok _ -> Alcotest.failf "%s, got Ok" msg
  | Error e -> (e : Penguin.Error.t)

let check_err_contains_e ~sub r =
  let e = Penguin.Error.to_string (check_err_e r) in
  if not (Relational.Strutil.contains ~sub e) then
    Alcotest.failf "error %S does not mention %S" e sub

let tuple bindings = Tuple.make bindings
let vi i = Value.Int i
let vs s = Value.Str s
let vf f = Value.Float f
let vb b = Value.Bool b

let tuple_testable = Alcotest.testable Tuple.pp Tuple.equal
let value_testable = Alcotest.testable Value.pp Value.equal
let op_testable = Alcotest.testable Op.pp Op.equal

let check_tuple = Alcotest.check tuple_testable
let check_ops msg expected actual =
  Alcotest.check (Alcotest.list op_testable) msg expected actual

let committed_db (outcome : Vo_core.Engine.outcome) =
  match outcome.Vo_core.Engine.result with
  | Transaction.Committed db -> db
  | Transaction.Rolled_back { reason; _ } ->
      Alcotest.failf "expected commit, rolled back: %s" reason

let rollback_reason (outcome : Vo_core.Engine.outcome) =
  match outcome.Vo_core.Engine.result with
  | Transaction.Rolled_back { reason; _ } -> reason
  | Transaction.Committed _ -> Alcotest.fail "expected rollback, committed"

let qtest = QCheck_alcotest.to_alcotest

(* Scratch directories for the persistence/durability suites. *)
let temp_dir =
  let n = ref 0 in
  fun prefix ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "%s-%d-%d" prefix (Unix.getpid ()) !n)
    in
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    dir

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end
