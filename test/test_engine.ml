open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()
let spec = Penguin.University.omega_translator

let test_apply_commit () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let outcome = Vo_core.Engine.apply g d omega spec (Vo_core.Request.delete i) in
  let d' = committed_db outcome in
  Alcotest.(check string) "kind" "complete deletion"
    outcome.Vo_core.Engine.request_kind;
  Alcotest.(check bool) "gone" false
    (Relation.mem_key (Database.relation_exn d' "COURSES") [ vs "CS345" ]);
  (* the input database is untouched (persistence) *)
  Alcotest.(check bool) "input intact" true
    (Relation.mem_key (Database.relation_exn d "COURSES") [ vs "CS345" ])

let test_apply_reject_no_ops_applied () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let new_i = Penguin.University.ees345_replacement i in
  let outcome =
    Vo_core.Engine.apply g d omega
      Penguin.University.omega_translator_restrictive
      (Vo_core.Request.replace ~old_instance:i ~new_instance:new_i)
  in
  let reason = rollback_reason outcome in
  Alcotest.(check bool) "reason mentions DEPARTMENT" true
    (Relational.Strutil.contains ~sub:"DEPARTMENT" reason);
  Alcotest.(check int) "no ops published" 0 (List.length outcome.Vo_core.Engine.ops)

let test_translate_only () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let ops = check_ok (Vo_core.Engine.translate g d omega spec (Vo_core.Request.delete i)) in
  Alcotest.(check bool) "ops produced, db untouched" true (List.length ops > 0);
  Alcotest.(check bool) "course still here" true
    (Relation.mem_key (Database.relation_exn d "COURSES") [ vs "CS345" ])

let test_dedup_identical_ops () =
  (* Two new GRADES sub-instances for the same new student force the same
     dependency stub twice; the engine deduplicates. *)
  let d = db () in
  let student pid =
    Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
      (tuple [ "pid", vi pid; "degree_program", vs "MS CS"; "year", vi 1 ])
  in
  let grade pid =
    Instance.make ~label:"GRADES" ~relation:"GRADES"
      ~tuple:(tuple [ "pid", vi pid; "grade", vs "A" ])
      ~children:[ "STUDENT#2", [ student pid ] ]
  in
  let inst =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (tuple
           [ "course_id", vs "CS700"; "title", vs "Sem"; "units", vi 1;
             "level", vs "grad" ])
      ~children:
        [ "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (tuple [ "dept_name", vs "Computer Science"; "building", vs "Gates" ]) ];
          "GRADES", [ grade 50; grade 51 ] ]
  in
  let outcome = Vo_core.Engine.apply g d omega spec (Vo_core.Request.insert inst) in
  let d' = committed_db outcome in
  let ops = outcome.Vo_core.Engine.ops in
  let distinct =
    List.length
      (List.filteri
         (fun i op -> not (List.exists (Op.equal op) (List.filteri (fun j _ -> j < i) ops)))
         ops)
  in
  Alcotest.(check int) "no duplicate ops" (List.length ops) distinct;
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'))

let test_apply_exn () =
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  let d' = Vo_core.Engine.apply_exn g d omega spec (Vo_core.Request.delete i) in
  Alcotest.(check bool) "deleted" false
    (Relation.mem_key (Database.relation_exn d' "COURSES") [ vs "CS345" ]);
  Alcotest.check_raises "raises on reject"
    (Failure "translator for omega does not allow complete deletions")
    (fun () ->
      ignore
        (Vo_core.Engine.apply_exn g d omega
           { spec with Vo_core.Translator_spec.allow_deletion = false }
           (Vo_core.Request.delete i)))

let test_end_to_end_sequence () =
  (* insert a course, modify it, then delete it: db returns to start *)
  let d = db () in
  let inst =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (tuple
           [ "course_id", vs "CS900"; "title", vs "Epistemics"; "units", vi 2;
             "level", vs "grad" ])
      ~children:
        [ "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (tuple [ "dept_name", vs "Computer Science"; "building", vs "Gates" ]) ] ]
  in
  let d1 =
    committed_db (Vo_core.Engine.apply g d omega spec (Vo_core.Request.insert inst))
  in
  let stored =
    List.find
      (fun (i : Instance.t) ->
        Value.equal (Tuple.get i.Instance.tuple "course_id") (vs "CS900"))
      (Instantiate.instantiate d1 omega)
  in
  let renamed =
    Instance.with_tuple stored (Tuple.set stored.Instance.tuple "units" (vi 4))
  in
  let d2 =
    committed_db
      (Vo_core.Engine.apply g d1 omega spec
         (Vo_core.Request.replace ~old_instance:stored ~new_instance:renamed))
  in
  let stored2 =
    List.find
      (fun (i : Instance.t) ->
        Value.equal (Tuple.get i.Instance.tuple "course_id") (vs "CS900"))
      (Instantiate.instantiate d2 omega)
  in
  Alcotest.check value_testable "units updated" (vi 4)
    (Tuple.get stored2.Instance.tuple "units");
  let d3 =
    committed_db
      (Vo_core.Engine.apply g d2 omega spec (Vo_core.Request.delete stored2))
  in
  Alcotest.(check bool) "database equals the original" true (Database.equal d d3)

let test_step4_rollback_on_latent_violation () =
  (* Failure injection: the base database is corrupted behind the
     engine's back (an orphan owned tuple). Translation of an unrelated
     insertion succeeds, but step 4's full validation — the mode for
     inputs of unknown integrity — detects the violation on the
     candidate state and rolls the transaction back. (Incremental
     validation assumes a consistent input state, so it deliberately
     does not look at tuples the transaction never touched.) *)
  let d = db () in
  let d =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.insert d "GRADES"
            (tuple [ "course_id", vs "ORPHAN"; "pid", vi 1; "grade", vs "F" ])))
  in
  let inst =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (tuple
           [ "course_id", vs "CS901"; "title", vs "X"; "units", vi 1;
             "level", vs "grad" ])
      ~children:
        [ "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (tuple [ "dept_name", vs "Computer Science"; "building", vs "Gates" ]) ] ]
  in
  let outcome =
    Vo_core.Engine.apply ~validation:Vo_core.Global_validation.Full g d omega
      spec (Vo_core.Request.insert inst)
  in
  let reason = rollback_reason outcome in
  Alcotest.(check bool) "global validation failed" true
    (Relational.Strutil.contains ~sub:"global validation" reason);
  Alcotest.(check bool) "names the orphan" true
    (Relational.Strutil.contains ~sub:"owning" reason)

let test_paranoid_agrees_on_engine_flows () =
  (* Every flow the suite exercises, replayed with the incremental
     checker cross-checked against the full one: a divergence raises
     Global_validation.Divergence and fails the test. *)
  let paranoid = Vo_core.Global_validation.Paranoid in
  let d = db () in
  let i = Penguin.University.cs345_instance d in
  (* deletion *)
  let outcome =
    Vo_core.Engine.apply ~validation:paranoid g d omega spec
      (Vo_core.Request.delete i)
  in
  ignore (committed_db outcome);
  (* replacement (EES345, permissive translator) *)
  let new_i = Penguin.University.ees345_replacement i in
  let outcome =
    Vo_core.Engine.apply ~validation:paranoid g d omega spec
      (Vo_core.Request.replace ~old_instance:i ~new_instance:new_i)
  in
  ignore (committed_db outcome);
  (* insertion with dependency stubs *)
  let inst =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (tuple
           [ "course_id", vs "CS902"; "title", vs "Y"; "units", vi 3;
             "level", vs "grad" ])
      ~children:
        [ "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (tuple [ "dept_name", vs "Computer Science"; "building", vs "Gates" ]) ] ]
  in
  let d1 =
    committed_db
      (Vo_core.Engine.apply ~validation:paranoid g d omega spec
         (Vo_core.Request.insert inst))
  in
  (* modify then delete, still cross-checked *)
  let stored =
    List.find
      (fun (i : Instance.t) ->
        Value.equal (Tuple.get i.Instance.tuple "course_id") (vs "CS902"))
      (Instantiate.instantiate d1 omega)
  in
  let renamed =
    Instance.with_tuple stored (Tuple.set stored.Instance.tuple "units" (vi 5))
  in
  let d2 =
    committed_db
      (Vo_core.Engine.apply ~validation:paranoid g d1 omega spec
         (Vo_core.Request.replace ~old_instance:stored ~new_instance:renamed))
  in
  let stored2 =
    List.find
      (fun (i : Instance.t) ->
        Value.equal (Tuple.get i.Instance.tuple "course_id") (vs "CS902"))
      (Instantiate.instantiate d2 omega)
  in
  let d3 =
    committed_db
      (Vo_core.Engine.apply ~validation:paranoid g d2 omega spec
         (Vo_core.Request.delete stored2))
  in
  Alcotest.(check bool) "round trip" true (Database.equal d d3)

let test_incremental_full_same_verdict () =
  (* A request whose translation applies cleanly but violates the
     structural model must be rejected identically by both modes. The
     restrictive translator refuses to cascade into CURRICULUM, so
     VO-CD's deletion of CS345 leaves dangling CURRICULUM references
     behind — unless the spec forbids it earlier. Instead, inject the
     violation through a raw op list validated by both modes. *)
  let d = db () in
  let ops = [ Op.Delete ("DEPARTMENT", [ vs "Computer Science" ]) ] in
  let db', delta =
    match Transaction.run_delta d ops with
    | Transaction.Committed db', delta -> db', delta
    | Transaction.Rolled_back { reason; _ }, _ -> Alcotest.fail reason
  in
  let full = Vo_core.Global_validation.validate Vo_core.Global_validation.Full g ~pre:d ~post:db' ~delta in
  let incr =
    Vo_core.Global_validation.validate Vo_core.Global_validation.Incremental g
      ~pre:d ~post:db' ~delta
  in
  let par =
    Vo_core.Global_validation.validate Vo_core.Global_validation.Paranoid g
      ~pre:d ~post:db' ~delta
  in
  Alcotest.(check bool) "full rejects" true (Result.is_error full);
  Alcotest.(check bool) "incremental rejects" true (Result.is_error incr);
  Alcotest.(check bool) "paranoid rejects" true (Result.is_error par)

let test_workspace_oql () =
  let ws = Penguin.University.workspace () in
  let is = check_ok (Penguin.Workspace.oql ws "omega" "level = 'grad'") in
  Alcotest.(check int) "two" 2 (List.length is);
  ignore (check_err (Penguin.Workspace.oql ws "nope" "true"));
  ignore (check_err (Penguin.Workspace.oql ws "omega" "ghost = 1"))

let suite =
  [
    Alcotest.test_case "apply commits" `Quick test_apply_commit;
    Alcotest.test_case "step-4 rollback (failure injection)" `Quick
      test_step4_rollback_on_latent_violation;
    Alcotest.test_case "workspace oql" `Quick test_workspace_oql;
    Alcotest.test_case "reject leaves db untouched" `Quick test_apply_reject_no_ops_applied;
    Alcotest.test_case "translate only" `Quick test_translate_only;
    Alcotest.test_case "dedup identical ops" `Quick test_dedup_identical_ops;
    Alcotest.test_case "apply_exn" `Quick test_apply_exn;
    Alcotest.test_case "paranoid cross-check on engine flows" `Quick
      test_paranoid_agrees_on_engine_flows;
    Alcotest.test_case "full/incremental/paranoid same verdict" `Quick
      test_incremental_full_same_verdict;
    Alcotest.test_case "insert/replace/delete roundtrip" `Quick test_end_to_end_sequence;
  ]
