(* The durable commit journal: framing, checksums, torn-tail
   truncation, rotation. Works on real files in a scratch directory. *)
open Relational
open Test_util

(* Journal/Fsio results carry the typed taxonomy; shadow the string
   helpers with the typed ones for this suite. *)
let check_ok r = check_ok_e r
let check_err_contains ~sub r = check_err_contains_e ~sub r

let entry version kind change = { Penguin.Commit_log.version; kind; change }

let delta_entry version =
  let before = tuple [ "course_id", vs "CS345"; "pid", vi 2; "grade", vs "B+" ] in
  let after = Tuple.set before "grade" (vs "A-") in
  let d = Delta.empty in
  let d = Delta.record d ~rel:"GRADES" ~key:[ vs "CS345"; vi 2 ] ~old_image:(Some before) ~new_image:(Some after) in
  let d = Delta.add d ~rel:"COURSES" ~key:[ vs "EE280" ] (tuple [ "course_id", vs "EE280"; "units", vi 3 ]) in
  let d =
    Delta.remove d ~rel:"PEOPLE" ~key:[ vi 9 ] (tuple [ "pid", vi 9; "name", vs "gone" ])
  in
  entry version "replace on omega" (Penguin.Commit_log.Delta d)

let barrier_entry version = entry version "sql script" (Penguin.Commit_log.Barrier "sql script")

let entry_equal (a : Penguin.Commit_log.entry) (b : Penguin.Commit_log.entry) =
  a.Penguin.Commit_log.version = b.Penguin.Commit_log.version
  && a.Penguin.Commit_log.kind = b.Penguin.Commit_log.kind
  &&
  match a.Penguin.Commit_log.change, b.Penguin.Commit_log.change with
  | Penguin.Commit_log.Delta x, Penguin.Commit_log.Delta y -> Delta.equal x y
  | Penguin.Commit_log.Barrier x, Penguin.Commit_log.Barrier y -> x = y
  | _ -> false

let journal_in dir = Penguin.Journal.create (Filename.concat dir "store.pgn.journal")

let read_journal t =
  match Penguin.Fsio.default.Penguin.Fsio.read (Penguin.Journal.path t) with
  | Ok (Some s) -> s
  | Ok None -> Alcotest.fail "journal file missing"
  | Error e -> Alcotest.fail (Penguin.Error.to_string e)

let write_journal t s =
  check_ok (Penguin.Fsio.default.Penguin.Fsio.write ~path:(Penguin.Journal.path t) ~append:false s)

let test_crc32_vector () =
  (* The canonical CRC-32 check value: crc32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "check value" 0xCBF43926l
    (Penguin.Crc32.digest "123456789");
  Alcotest.(check int32) "incremental agrees" (Penguin.Crc32.digest "123456789")
    (Penguin.Crc32.update (Penguin.Crc32.digest "12345") "6789")

let test_initialize_replay () =
  let dir = temp_dir "journal" in
  let t = journal_in dir in
  Alcotest.(check bool) "absent journal replays to None" true
    (check_ok (Penguin.Journal.replay t) = None);
  check_ok (Penguin.Journal.initialize t ~base:7);
  (match check_ok (Penguin.Journal.replay t) with
  | Some r ->
      Alcotest.(check int) "base" 7 r.Penguin.Journal.base;
      Alcotest.(check int) "no entries" 0 (List.length r.Penguin.Journal.entries);
      Alcotest.(check int) "no torn bytes" 0 r.Penguin.Journal.torn_bytes
  | None -> Alcotest.fail "journal should exist");
  rm_rf dir

let test_append_replay_roundtrip () =
  let dir = temp_dir "journal" in
  let t = journal_in dir in
  check_ok (Penguin.Journal.initialize t ~base:0);
  (* Two batches: a two-entry commit and a barrier. *)
  check_ok (Penguin.Journal.append t [ delta_entry 1; delta_entry 2 ]);
  check_ok (Penguin.Journal.append t ~sync:false [ barrier_entry 3 ]);
  (match check_ok (Penguin.Journal.replay t) with
  | None -> Alcotest.fail "journal should exist"
  | Some r ->
      Alcotest.(check int) "records" 2 r.Penguin.Journal.records;
      Alcotest.(check int) "entries flattened" 3 (List.length r.Penguin.Journal.entries);
      Alcotest.(check int) "clean" 0 r.Penguin.Journal.torn_bytes;
      List.iter2
        (fun a b ->
          Alcotest.(check bool)
            (Fmt.str "entry v%d roundtrips" a.Penguin.Commit_log.version)
            true (entry_equal a b))
        [ delta_entry 1; delta_entry 2; barrier_entry 3 ]
        r.Penguin.Journal.entries);
  (* Appending the empty batch writes nothing. *)
  let before = read_journal t in
  check_ok (Penguin.Journal.append t []);
  Alcotest.(check int) "empty append is a no-op" (String.length before)
    (String.length (read_journal t));
  rm_rf dir

let test_torn_tail_truncated () =
  let dir = temp_dir "journal" in
  let t = journal_in dir in
  check_ok (Penguin.Journal.initialize t ~base:0);
  check_ok (Penguin.Journal.append t [ delta_entry 1 ]);
  let clean = read_journal t in
  check_ok (Penguin.Journal.append t [ delta_entry 2 ]);
  let full = read_journal t in
  (* Cut the second record short at every possible point: the first
     batch must survive untouched, the torn tail must be reported. *)
  for cut = String.length clean + 1 to String.length full - 1 do
    write_journal t (String.sub full 0 cut);
    match check_ok (Penguin.Journal.replay t) with
    | None -> Alcotest.fail "journal should exist"
    | Some r ->
        Alcotest.(check int)
          (Fmt.str "cut at %d: first batch kept" cut)
          1
          (List.length r.Penguin.Journal.entries);
        Alcotest.(check bool) "torn tail reported" true (r.Penguin.Journal.torn_bytes > 0);
        Alcotest.(check int) "clean prefix is the first batch" (String.length clean)
          r.Penguin.Journal.clean_bytes
  done;
  (* Repair, then append again: the journal is whole. *)
  write_journal t (String.sub full 0 (String.length full - 3));
  (match check_ok (Penguin.Journal.replay t) with
  | Some r -> check_ok (Penguin.Journal.truncate_torn t ~clean_bytes:r.Penguin.Journal.clean_bytes)
  | None -> Alcotest.fail "journal should exist");
  check_ok (Penguin.Journal.append t [ delta_entry 2 ]);
  (match check_ok (Penguin.Journal.replay t) with
  | Some r ->
      Alcotest.(check int) "clean after repair + append" 0 r.Penguin.Journal.torn_bytes;
      Alcotest.(check int) "both entries" 2 (List.length r.Penguin.Journal.entries)
  | None -> Alcotest.fail "journal should exist");
  rm_rf dir

let test_checksum_catches_corruption () =
  let dir = temp_dir "journal" in
  let t = journal_in dir in
  check_ok (Penguin.Journal.initialize t ~base:0);
  check_ok (Penguin.Journal.append t [ delta_entry 1 ]);
  let clean = read_journal t in
  check_ok (Penguin.Journal.append t [ delta_entry 2 ]);
  let full = read_journal t in
  (* Flip one byte inside the second record's payload: its checksum must
     fail and the record (and everything after) be discarded. *)
  let pos = String.length clean + 10 in
  let b = Bytes.of_string full in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  write_journal t (Bytes.to_string b);
  (match check_ok (Penguin.Journal.replay t) with
  | Some r ->
      Alcotest.(check int) "only the intact batch" 1
        (List.length r.Penguin.Journal.entries);
      Alcotest.(check bool) "corruption reported as torn" true
        (r.Penguin.Journal.torn_bytes > 0)
  | None -> Alcotest.fail "journal should exist");
  (* A torn header is unrecoverable garbage, not a valid empty journal. *)
  write_journal t (String.sub full 0 3);
  check_err_contains ~sub:"header" (Penguin.Journal.replay t);
  rm_rf dir

let test_rotate () =
  let dir = temp_dir "journal" in
  let t = journal_in dir in
  let snapshot_path = Filename.concat dir "store.pgn" in
  check_ok (Penguin.Journal.initialize t ~base:0);
  check_ok (Penguin.Journal.append t [ delta_entry 1; delta_entry 2 ]);
  check_ok
    (Penguin.Journal.rotate t ~snapshot_path ~snapshot:"snapshot-at-v2\n" ~base:2);
  (match Penguin.Fsio.default.Penguin.Fsio.read snapshot_path with
  | Ok (Some s) -> Alcotest.(check string) "snapshot written" "snapshot-at-v2\n" s
  | _ -> Alcotest.fail "snapshot missing");
  (match check_ok (Penguin.Journal.replay t) with
  | Some r ->
      Alcotest.(check int) "journal reset to new base" 2 r.Penguin.Journal.base;
      Alcotest.(check int) "no entries" 0 (List.length r.Penguin.Journal.entries)
  | None -> Alcotest.fail "journal should exist");
  rm_rf dir

let suite =
  [
    Alcotest.test_case "crc32 check vector" `Quick test_crc32_vector;
    Alcotest.test_case "initialize and replay" `Quick test_initialize_replay;
    Alcotest.test_case "append/replay roundtrip" `Quick
      test_append_replay_roundtrip;
    Alcotest.test_case "torn tail truncated at first bad record" `Quick
      test_torn_tail_truncated;
    Alcotest.test_case "checksum catches corruption" `Quick
      test_checksum_catches_corruption;
    Alcotest.test_case "rotate folds the journal into a snapshot" `Quick
      test_rotate;
  ]
