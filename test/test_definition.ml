open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega

let edge source target forward =
  let conn =
    List.find
      (fun (c : Connection.t) ->
        c.Connection.source = source && c.Connection.target = target)
      (Schema_graph.connections g)
  in
  { Schema_graph.conn; forward }

let own_grades = edge "COURSES" "GRADES" true
let ref_dept = edge "COURSES" "DEPARTMENT" true
let inv_curriculum = { (edge "CURRICULUM" "COURSES" true) with Schema_graph.forward = false }

let simple_root children =
  Definition.node ~label:"COURSES" ~relation:"COURSES"
    ~attrs:[ "course_id"; "title" ] ~path:[] ~children

let make root = Definition.make g ~name:"t" ~pivot:"COURSES" ~root

let test_omega_shape () =
  Alcotest.(check int) "complexity 5" 5 (Definition.complexity omega);
  Alcotest.(check (list string)) "relations d(omega)"
    [ "COURSES"; "CURRICULUM"; "DEPARTMENT"; "GRADES"; "STUDENT" ]
    (Definition.relations omega);
  Alcotest.(check (list string)) "K(omega) = K(COURSES)" [ "course_id" ]
    (Definition.key_attributes g omega);
  let labels = List.map (fun (n : Definition.node) -> n.Definition.label) (Definition.nodes omega) in
  Alcotest.(check (list string)) "pre-order"
    [ "COURSES"; "DEPARTMENT"; "GRADES"; "STUDENT#2"; "CURRICULUM" ] labels

let test_find_parent () =
  let student = Option.get (Definition.find omega "STUDENT#2") in
  Alcotest.(check string) "relation" "STUDENT" student.Definition.relation;
  let parent = Option.get (Definition.parent_of omega "STUDENT#2") in
  Alcotest.(check string) "parent" "GRADES" parent.Definition.label;
  Alcotest.(check bool) "root has no parent" true
    (Definition.parent_of omega "COURSES" = None);
  Alcotest.(check bool) "find missing" true (Definition.find omega "GHOST" = None)

let test_inherited_complement () =
  let grades = Definition.find_exn omega "GRADES" in
  Alcotest.(check (list string)) "inherited" [ "course_id" ]
    (Definition.inherited_attrs grades);
  Alcotest.(check (list string)) "A_j" [ "pid" ] (Definition.complement g grades);
  let root = Definition.find_exn omega "COURSES" in
  Alcotest.(check (list string)) "root complement is full key" [ "course_id" ]
    (Definition.complement g root);
  let curriculum = Definition.find_exn omega "CURRICULUM" in
  Alcotest.(check (list string)) "curriculum A_j" [ "degree" ]
    (Definition.complement g curriculum)

let test_pivot_key_required () =
  let root =
    Definition.node ~label:"COURSES" ~relation:"COURSES" ~attrs:[ "title" ]
      ~path:[] ~children:[]
  in
  check_err_contains ~sub:"pivot projection must contain" (make root)

let test_root_must_be_pivot () =
  let root =
    Definition.node ~label:"GRADES" ~relation:"GRADES"
      ~attrs:[ "course_id"; "pid" ] ~path:[] ~children:[]
  in
  check_err_contains ~sub:"is not the pivot" (make root)

let test_duplicate_labels () =
  let child l =
    Definition.node ~label:l ~relation:"GRADES" ~attrs:[ "pid"; "grade" ]
      ~path:[ own_grades ] ~children:[]
  in
  check_err_contains ~sub:"duplicate node label"
    (make (simple_root [ child "X"; child "X" ]))

let test_single_pivot_projection () =
  (* A non-root node on the pivot relation violates Def. 3.2. *)
  let bad =
    Definition.node ~label:"C2" ~relation:"COURSES" ~attrs:[ "course_id" ]
      ~path:[ own_grades ] ~children:[]
  in
  check_err_contains ~sub:"Def. 3.2" (make (simple_root [ bad ]))

let test_empty_projection () =
  let bad =
    Definition.node ~label:"G" ~relation:"GRADES" ~attrs:[] ~path:[ own_grades ]
      ~children:[]
  in
  check_err_contains ~sub:"empty projection" (make (simple_root [ bad ]))

let test_unknown_attr () =
  let bad =
    Definition.node ~label:"G" ~relation:"GRADES" ~attrs:[ "ghost" ]
      ~path:[ own_grades ] ~children:[]
  in
  check_err_contains ~sub:"unknown attribute" (make (simple_root [ bad ]))

let test_missing_path () =
  let bad =
    Definition.node ~label:"G" ~relation:"GRADES" ~attrs:[ "pid"; "grade" ]
      ~path:[] ~children:[]
  in
  check_err_contains ~sub:"lacks a connection path" (make (simple_root [ bad ]))

let test_path_chaining () =
  (* STUDENT attached with a path that starts at the wrong relation. *)
  let bad =
    Definition.node ~label:"S" ~relation:"STUDENT"
      ~attrs:[ "pid"; "degree_program" ] ~path:[ edge "PEOPLE" "STUDENT" true ]
      ~children:[]
  in
  check_err_contains ~sub:"does not start at" (make (simple_root [ bad ]));
  ignore inv_curriculum;
  ignore ref_dept;
  (* ... or a path that ends at a different relation than the node's. *)
  let bad2 =
    Definition.node ~label:"D" ~relation:"DEPARTMENT"
      ~attrs:[ "dept_name" ] ~path:[ own_grades ] ~children:[]
  in
  check_err_contains ~sub:"ends at" (make (simple_root [ bad2 ]))

let test_key_recovery () =
  (* GRADES without pid cannot recover its key. *)
  let bad =
    Definition.node ~label:"G" ~relation:"GRADES" ~attrs:[ "grade" ]
      ~path:[ own_grades ] ~children:[]
  in
  check_err_contains ~sub:"cannot recover" (make (simple_root [ bad ]))

let test_direct () =
  let student = Definition.find_exn Penguin.University.omega_prime "STUDENT#2" in
  Alcotest.(check bool) "omega' student is multi-hop" false
    (Definition.is_direct student);
  Alcotest.(check bool) "omega student is direct" true
    (Definition.is_direct (Definition.find_exn omega "STUDENT#2"))

let test_to_ascii () =
  let s = Definition.to_ascii omega in
  Alcotest.(check bool) "projection shown" true
    (Relational.Strutil.contains ~sub:"(course_id, title, units, level)" s);
  Alcotest.(check bool) "path tag" true
    (Relational.Strutil.contains ~sub:"via ownership" s);
  let s' = Definition.to_ascii Penguin.University.omega_prime in
  Alcotest.(check bool) "two-connection path shown (Fig 3)" true
    (Relational.Strutil.contains ~sub:"via ownership . reference" s')

let suite =
  [
    Alcotest.test_case "omega shape (Fig 2c)" `Quick test_omega_shape;
    Alcotest.test_case "find/parent" `Quick test_find_parent;
    Alcotest.test_case "inherited & complement" `Quick test_inherited_complement;
    Alcotest.test_case "pivot key required" `Quick test_pivot_key_required;
    Alcotest.test_case "root must be pivot" `Quick test_root_must_be_pivot;
    Alcotest.test_case "duplicate labels" `Quick test_duplicate_labels;
    Alcotest.test_case "single pivot projection" `Quick test_single_pivot_projection;
    Alcotest.test_case "empty projection" `Quick test_empty_projection;
    Alcotest.test_case "unknown attribute" `Quick test_unknown_attr;
    Alcotest.test_case "missing path" `Quick test_missing_path;
    Alcotest.test_case "path chaining" `Quick test_path_chaining;
    Alcotest.test_case "key recovery" `Quick test_key_recovery;
    Alcotest.test_case "is_direct" `Quick test_direct;
    Alcotest.test_case "ascii" `Quick test_to_ascii;
  ]
