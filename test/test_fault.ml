(* Transient-fault injection over the durable serving path.

   Where test_recovery kills the process at chosen I/O points, this
   suite makes I/O fail *and continue*: every faulted primitive returns
   a typed transient or hard Error.Io and the resilience layer — retry
   with backoff, the circuit breaker, lock deadlines — must absorb it.
   The central property: a 100-commit workload under a 30% transient
   append fault rate completes with zero lost and zero duplicated
   commits, and never trips the breaker; hard faults trip it within the
   threshold, reads keep working, and a post-cooldown probe re-closes
   it. Every draw is seeded, so a failure reproduces exactly. *)
open Relational
open Viewobject
open Test_util

module R = Penguin.Resilience
module E = Penguin.Error
module F = Penguin.Fsio

let store_in dir = Filename.concat dir "store.pgn"

let make_store dir =
  let ws = Penguin.University.workspace () in
  check_ok_e (Penguin.Store.save_file ws (store_in dir))

let instance_of ws course =
  let vo = check_ok (Penguin.Workspace.find_object ws "omega") in
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" course)
      ws.Penguin.Workspace.db vo
  with
  | [ i ] -> i
  | l -> Alcotest.failf "expected 1 instance of %s, got %d" course (List.length l)

let grade_edit ws (course, pid) grade =
  check_ok
    (Vo_core.Request.partial_modify (instance_of ws course) ~label:"GRADES"
       ~at:(Tuple.make [ "pid", Value.Int pid ])
       ~f:(fun t -> Tuple.set t "grade" (Value.Str grade)))

let grade_of ws (course, pid) =
  let r = Database.relation_exn ws.Penguin.Workspace.db "GRADES" in
  match Relation.lookup r [ Value.Str course; Value.Int pid ] with
  | Some t -> Tuple.get t "grade"
  | None -> Alcotest.failf "no GRADES (%s, %d)" course pid

let apply_edit ws enrolment grade =
  let ws', outcome =
    Penguin.Workspace.update ws "omega" (grade_edit ws enrolment grade)
  in
  (match outcome.Vo_core.Engine.result with
  | Transaction.Committed _ -> ()
  | Transaction.Rolled_back { reason; _ } ->
      Alcotest.failf "update: %s" reason);
  ws'

(* One durable commit the CLI's way — open, translate, persist — with
   the persist (the faulted leg) wrapped in the retry policy. *)
let commit_grade ~io ?breaker ~clock dir enrolment grade =
  let ( let* ) = Result.bind in
  let store = store_in dir in
  let* ws, _ = Penguin.Recovery.open_store store in
  let ws' = apply_edit ws enrolment grade in
  let* _p =
    R.retry ~clock
      ~policy:{ R.Policy.default with max_attempts = 24; seed = 11 }
      ~label:"persist" (fun () ->
        Penguin.Recovery.persist ~io ?breaker ~store
          ~since:(Penguin.Workspace.version ws) ws')
  in
  Ok ()

(* --- the central property ---------------------------------------------- *)

(* 100 commits, each persisting through an io whose writes fail
   transiently 30% of the time: nothing may be lost, nothing may land
   twice, and the breaker must treat all of it as weather. *)
let commits_survive_faults ~kind ~seed () =
  let dir = temp_dir "fault" in
  Obs.Metrics.enable ();
  make_store dir;
  let clock = R.Clock.instant () in
  (* Faults target the append writes. (A fault *after* the journal
     append — e.g. on the following fsync — leaves the commit durable
     but reported failed; a blind retry of such a commit must and does
     surface Conflict, which is why the CLI reopens rather than
     retrying past the durability point.) *)
  let io = F.Fault.inject ~seed ~rate:0.3 ~kind ~ops:[ `Write ] F.default in
  let breaker = R.Breaker.create ~label:"fault-suite" ~threshold:3 () in
  let ws0, _ = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  let v0 = Penguin.Workspace.version ws0 in
  let injected_before =
    Obs.Metrics.Counter.value (Obs.Metrics.counter "fsio.injected_faults")
  in
  let grade i = if i mod 2 = 0 then "A" else "B" in
  for i = 1 to 100 do
    check_ok_e
      ~msg:(Fmt.str "commit %d" i)
      (commit_grade ~io ~breaker ~clock dir ("CS345", 2) (grade i))
  done;
  Alcotest.(check bool) "the fault rate was real (>=10 faults injected)" true
    (Obs.Metrics.Counter.value (Obs.Metrics.counter "fsio.injected_faults")
     - injected_before
    >= 10);
  (* zero lost, zero duplicated: the committed history advanced by
     exactly one version per commit, and replays cleanly *)
  let ws, report = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  check_ok ~msg:"recovered state is consistent"
    (Penguin.Workspace.check_consistency ws);
  Alcotest.(check int) "exactly 100 commits durable" (v0 + 100)
    (Penguin.Workspace.version ws);
  Alcotest.(check int) "replay agrees" (v0 + 100) report.Penguin.Recovery.version;
  Alcotest.(check bool) "last write wins" true
    (grade_of ws ("CS345", 2) = Value.Str (grade 100));
  (* transient weather never trips the breaker *)
  Alcotest.(check bool) "breaker stayed closed" true
    (R.Breaker.state breaker = R.Breaker.Closed);
  rm_rf dir

let test_transient_faults () =
  commits_survive_faults ~kind:F.Fault.Transient ~seed:1 ()

(* Torn writes leave a checksum-invalid tail on disk; the retried
   persist must truncate it before re-appending. *)
let test_torn_faults () = commits_survive_faults ~kind:F.Fault.Torn ~seed:2 ()

(* A flipped byte lands fully on disk; the framing CRC catches it and
   the retry repairs, same as a torn tail. *)
let test_corrupt_faults () =
  commits_survive_faults ~kind:F.Fault.Corrupt ~seed:3 ()

(* --- degraded read-only mode ------------------------------------------- *)

let test_hard_faults_trip_into_degraded_mode () =
  let dir = temp_dir "degrade" in
  make_store dir;
  let store = store_in dir in
  let clock = R.Clock.instant () in
  let hard_io =
    F.Fault.inject ~seed:4 ~rate:1.0 ~kind:F.Fault.Hard ~ops:[ `Sync ] F.default
  in
  let breaker =
    R.Breaker.create ~label:"degrade" ~threshold:3 ~cooldown_ns:1e6 ~clock ()
  in
  let persist_once ~io grade =
    let ( let* ) = Result.bind in
    let* ws, _ = Penguin.Recovery.open_store store in
    let ws' = apply_edit ws ("EE280", 1) grade in
    Result.map ignore
      (Penguin.Recovery.persist ~io ~breaker ~store
         ~since:(Penguin.Workspace.version ws) ws')
  in
  (* every fsync reports a non-transient disk fault: the breaker trips
     after exactly [threshold] consecutive failures *)
  for i = 1 to 3 do
    match persist_once ~io:hard_io "C" with
    | Error (E.Io { transient = false; _ }) -> ()
    | Error (E.Busy _) ->
        Alcotest.failf "breaker tripped early, at failure %d" i
    | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)
    | Ok () -> Alcotest.fail "persist must fail under a hard fault"
  done;
  Alcotest.(check bool) "tripped at the threshold" true
    (R.Breaker.state breaker = R.Breaker.Open);
  (* open: writes are shed without touching the disk... *)
  (match persist_once ~io:F.default "C" with
  | Error (E.Busy msg) ->
      Alcotest.(check bool) "shed names degraded mode" true
        (Strutil.contains ~sub:"degraded" msg)
  | _ -> Alcotest.fail "open breaker must shed the persist");
  (* ...while reads keep serving: degraded read-only mode *)
  let ws, _ = check_ok_e (Penguin.Recovery.open_store store) in
  check_ok ~msg:"reads stay consistent while degraded"
    (Penguin.Workspace.check_consistency ws);
  Alcotest.(check bool) "no write landed" true
    (grade_of ws ("EE280", 1) <> Value.Str "C");
  (* past the cooldown the next persist is the probe; on a healthy disk
     it lands and the breaker re-closes *)
  clock.R.Clock.sleep_ns 2e6;
  check_ok_e ~msg:"probe persist" (persist_once ~io:F.default "C");
  Alcotest.(check bool) "probe success re-closed the breaker" true
    (R.Breaker.state breaker = R.Breaker.Closed);
  let ws, _ = check_ok_e (Penguin.Recovery.open_store store) in
  Alcotest.(check bool) "the probe commit is durable" true
    (grade_of ws ("EE280", 1) = Value.Str "C");
  rm_rf dir

(* --- injection determinism --------------------------------------------- *)

let fault_pattern ~seed n =
  let io =
    F.Fault.inject ~seed ~rate:0.3 ~kind:F.Fault.Transient ~ops:[ `Write ]
      F.default
  in
  let dir = temp_dir "pattern" in
  let path = Filename.concat dir "scratch" in
  let pat =
    List.init n (fun i ->
        match io.F.write ~path ~append:false (Fmt.str "w%d" i) with
        | Ok () -> false
        | Error (E.Io { transient = true; _ }) -> true
        | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e))
  in
  rm_rf dir;
  pat

let test_injection_deterministic () =
  let a = fault_pattern ~seed:9 200 in
  Alcotest.(check (list bool)) "same seed, same faults" a
    (fault_pattern ~seed:9 200);
  Alcotest.(check bool) "different seed, different faults" true
    (a <> fault_pattern ~seed:10 200);
  let fired = List.length (List.filter Fun.id a) in
  Alcotest.(check bool)
    (Fmt.str "rate is roughly honoured (%d/200 fired)" fired)
    true
    (fired > 30 && fired < 90)

(* --- lock contention and deadlines ------------------------------------- *)

(* A second process contending for the store lock respects its
   deadline: it gets a typed Deadline_exceeded, not a hang. *)
let test_lock_contention_respects_deadline () =
  let dir = temp_dir "lock-deadline" in
  make_store dir;
  let store = store_in dir in
  let pid =
    check_ok_e
      (F.with_lock store (fun () ->
           match Unix.fork () with
           | 0 ->
               (* child: the parent holds the lock; a bounded wait must
                  end in Deadline_exceeded, and promptly. *)
               let started = Unix.gettimeofday () in
               let deadline_ns =
                 Obs.Metrics.now_ns () +. 0.3 *. 1e9
               in
               let r = F.with_lock ~deadline_ns store (fun () -> Ok ()) in
               let waited = Unix.gettimeofday () -. started in
               let code =
                 match r with
                 | Error (E.Deadline_exceeded _) when waited < 5. -> 0
                 | Error (E.Deadline_exceeded _) -> 2 (* deadline ignored *)
                 | Error _ -> 3
                 | Ok () -> 4 (* exclusion failed *)
               in
               Unix._exit code
           | pid ->
               let _, status = Unix.waitpid [] pid in
               Alcotest.(check bool)
                 "contender saw Deadline_exceeded within its budget" true
                 (status = Unix.WEXITED 0);
               Ok pid))
  in
  ignore pid;
  (* with the holder gone, the same bounded acquisition succeeds *)
  let deadline_ns = Obs.Metrics.now_ns () +. 1e9 in
  check_ok_e ~msg:"free lock acquired under deadline"
    (F.with_lock ~deadline_ns store (fun () -> Ok ()));
  rm_rf dir

(* The OS releases an advisory lock when its holder dies: a crashed
   committer cannot wedge the store. *)
let test_lock_released_on_holder_death () =
  let dir = temp_dir "lock-death" in
  make_store dir;
  let store = store_in dir in
  let marker = Filename.concat dir "child-holds-lock" in
  (match Unix.fork () with
  | 0 ->
      ignore
        (F.with_lock store (fun () ->
             ignore
               (F.default.F.write ~path:marker ~append:false "held");
             (* die while holding the lock — no unlock path runs *)
             Unix.kill (Unix.getpid ()) Sys.sigkill;
             Ok ()));
      Unix._exit 1
  | pid ->
      (* wait for the child to take the lock, then for its death *)
      let rec wait_marker n =
        if Sys.file_exists marker then ()
        else if n = 0 then Alcotest.fail "child never acquired the lock"
        else begin
          Unix.sleepf 0.05;
          wait_marker (n - 1)
        end
      in
      wait_marker 100;
      let _, status = Unix.waitpid [] pid in
      Alcotest.(check bool) "child was killed mid-hold" true
        (status = Unix.WSIGNALED Sys.sigkill));
  let deadline_ns = Obs.Metrics.now_ns () +. 2e9 in
  check_ok_e ~msg:"lock is free after the holder's death"
    (F.with_lock ~deadline_ns store (fun () -> Ok ()));
  rm_rf dir

let suite =
  [
    Alcotest.test_case "100 commits under 30% transient faults" `Quick
      test_transient_faults;
    Alcotest.test_case "100 commits under torn-write faults" `Quick
      test_torn_faults;
    Alcotest.test_case "100 commits under byte-corrupting faults" `Quick
      test_corrupt_faults;
    Alcotest.test_case "hard faults trip into degraded read-only mode" `Quick
      test_hard_faults_trip_into_degraded_mode;
    Alcotest.test_case "injection is seed-deterministic" `Quick
      test_injection_deterministic;
    Alcotest.test_case "lock contention respects the deadline" `Quick
      test_lock_contention_respects_deadline;
    Alcotest.test_case "lock is released when the holder dies" `Quick
      test_lock_released_on_holder_death;
  ]
