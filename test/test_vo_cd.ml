open Relational
open Structural
open Viewobject
open Test_util

let g = Penguin.University.graph
let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()
let spec = Penguin.University.omega_translator
let cs345 d = Penguin.University.cs345_instance d

let test_deletion_ops () =
  let d = db () in
  let ops = check_ok (Vo_core.Vo_cd.translate g d omega spec (cs345 d)) in
  (* island deletions: COURSES + 2 GRADES; peninsula: 2 CURRICULUM rows *)
  Alcotest.(check int) "five ops" 5 (List.length ops);
  let count rel = List.length (List.filter (fun o -> Op.relation o = rel) ops) in
  Alcotest.(check int) "courses" 1 (count "COURSES");
  Alcotest.(check int) "grades" 2 (count "GRADES");
  Alcotest.(check int) "curriculum" 2 (count "CURRICULUM");
  Alcotest.(check bool) "all deletes" true (List.for_all Op.is_delete ops)

let test_deletion_untouched_relations () =
  let d = db () in
  let ops = check_ok (Vo_core.Vo_cd.translate g d omega spec (cs345 d)) in
  (* DEPARTMENT and STUDENT are in the object but outside the island:
     their tuples are shared data and must survive. *)
  List.iter
    (fun op ->
      Alcotest.(check bool)
        (Fmt.str "%s untouched" (Op.relation op))
        false
        (List.mem (Op.relation op) [ "DEPARTMENT"; "STUDENT"; "PEOPLE" ]))
    ops

let test_deletion_applies_consistently () =
  let d = db () in
  let ops = check_ok (Vo_core.Vo_cd.translate g d omega spec (cs345 d)) in
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check g d'));
  Alcotest.(check bool) "course gone" false
    (Relation.mem_key (Database.relation_exn d' "COURSES") [ vs "CS345" ]);
  Alcotest.(check int) "students survive" 6
    (Relation.cardinality (Database.relation_exn d' "STUDENT"))

let test_deletion_restricted_peninsula () =
  let d = db () in
  let restrict =
    { spec with Vo_core.Translator_spec.reference_actions = [];
      default_reference_action = Integrity.Restrict }
  in
  let e = check_err (Vo_core.Vo_cd.translate g d omega restrict (cs345 d)) in
  Alcotest.(check bool) "rolled back per the paper" true
    (Relational.Strutil.contains ~sub:"restricted" e)

let test_deletion_not_allowed () =
  let d = db () in
  let locked = { spec with Vo_core.Translator_spec.allow_deletion = false } in
  check_err_contains ~sub:"does not allow"
    (Vo_core.Vo_cd.translate g d omega locked (cs345 d))

let test_stale_instance () =
  let d = db () in
  let i = cs345 d in
  let stale =
    Instance.with_tuple i (Tuple.set i.Instance.tuple "units" (vi 99))
  in
  check_err_contains ~sub:"stale" (Vo_core.Vo_cd.translate g d omega spec stale)

let test_vanished_instance () =
  let d = db () in
  let i = cs345 d in
  let gone =
    Instance.with_tuple i (Tuple.set i.Instance.tuple "course_id" (vs "GHOST"))
  in
  check_err_contains ~sub:"no counterpart"
    (Vo_core.Vo_cd.translate g d omega spec gone)

let test_cascade_beyond_instance () =
  (* A grade added after instantiation is still removed: global integrity
     maintenance propagates deletions "repeatedly, if necessary". *)
  let d = db () in
  let i = cs345 d in
  let d =
    check_ok
      (Result.map_error Database.error_to_string
         (Database.insert d "GRADES"
            (tuple [ "course_id", vs "CS345"; "pid", vi 6; "grade", vs "D" ])))
  in
  let ops = check_ok (Vo_core.Vo_cd.translate g d omega spec i) in
  let grades_deleted =
    List.filter (fun o -> Op.is_delete o && Op.relation o = "GRADES") ops
  in
  Alcotest.(check int) "all three grades deleted" 3 (List.length grades_deleted)

let test_hospital_nullify () =
  let hg = Penguin.Hospital.graph in
  let hdb = Penguin.Hospital.seeded_db () in
  let i = Penguin.Hospital.patient_instance hdb 7001 in
  let ops =
    check_ok
      (Vo_core.Vo_cd.translate hg hdb Penguin.Hospital.patient_record
         Penguin.Hospital.record_translator i)
  in
  let nullified = List.filter Op.is_replace ops in
  Alcotest.(check int) "appointments nullified" 2 (List.length nullified);
  let hdb' = check_ok (Transaction.run_result hdb ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check hg hdb'));
  Alcotest.(check int) "physicians survive" 3
    (Relation.cardinality (Database.relation_exn hdb' "PHYSICIAN"))

let suite =
  [
    Alcotest.test_case "deletion ops (VO-CD)" `Quick test_deletion_ops;
    Alcotest.test_case "outside relations untouched" `Quick test_deletion_untouched_relations;
    Alcotest.test_case "applies consistently" `Quick test_deletion_applies_consistently;
    Alcotest.test_case "restricted peninsula rolls back" `Quick test_deletion_restricted_peninsula;
    Alcotest.test_case "deletion not allowed" `Quick test_deletion_not_allowed;
    Alcotest.test_case "stale instance" `Quick test_stale_instance;
    Alcotest.test_case "vanished instance" `Quick test_vanished_instance;
    Alcotest.test_case "cascade beyond instance" `Quick test_cascade_beyond_instance;
    Alcotest.test_case "hospital nullify" `Quick test_hospital_nullify;
  ]
