open Relational
open Test_util

(* A small company database for the flat-view baseline. *)
let db0 =
  let script =
    {|
    CREATE TABLE dept (dname string, floor int) KEY (dname);
    CREATE TABLE emp (eid int, ename string, dname string) KEY (eid);
    INSERT INTO dept VALUES ('CS', 3);
    INSERT INTO dept VALUES ('EE', 2);
    INSERT INTO emp VALUES (1, 'Ada', 'CS');
    INSERT INTO emp VALUES (2, 'Ben', 'CS');
    INSERT INTO emp VALUES (3, 'Cat', 'EE');
    CREATE TABLE misc (mid int, note string) KEY (mid);
    |}
  in
  match Sql.run_script Database.empty script with
  | Ok (db, _) -> db
  | Error e -> invalid_arg e

let view () =
  Keller.View.make_exn db0 ~name:"emp_dept"
    ~relations:[ "emp"; "dept" ]
    ~selection:Predicate.True
    ~projection:[ "ename"; "dname"; "floor" ]

let test_view_validation () =
  check_err_contains ~sub:"unknown projection"
    (Keller.View.make db0 ~name:"v" ~relations:[ "emp" ]
       ~selection:Predicate.True ~projection:[ "ghost" ]);
  check_err_contains ~sub:"shares no attribute"
    (Keller.View.make db0 ~name:"v"
       ~relations:[ "emp"; "misc" ]
       ~selection:Predicate.True ~projection:[ "ename" ]);
  check_err_contains ~sub:"no relations"
    (Keller.View.make db0 ~name:"v" ~relations:[] ~selection:Predicate.True
       ~projection:[])

let test_materialize () =
  let rs = check_ok (Keller.View.materialize db0 (view ())) in
  Alcotest.(check int) "three rows" 3 (List.length rs.Algebra.rows);
  Alcotest.(check (list string)) "attrs" [ "ename"; "dname"; "floor" ]
    rs.Algebra.attrs

let test_selection_view () =
  let v =
    Keller.View.make_exn db0 ~name:"cs_only" ~relations:[ "emp"; "dept" ]
      ~selection:(Predicate.eq_str "dname" "CS")
      ~projection:[ "ename"; "floor" ]
  in
  Alcotest.(check int) "two rows" 2 (List.length (Keller.View.rows db0 v))

let test_provenance () =
  let v = view () in
  let row = tuple [ "ename", vs "Ada"; "dname", vs "CS"; "floor", vi 3 ] in
  let bases = Keller.View.base_tuples_of_row db0 v row in
  let rels = List.sort_uniq String.compare (List.map fst bases) in
  Alcotest.(check (list string)) "both relations" [ "dept"; "emp" ] rels

(* Criteria. *)
let test_criteria_valid_delete () =
  let v = view () in
  let target = tuple [ "ename", vs "Cat" ] in
  let ops = [ Op.Delete ("emp", [ vi 3 ]) ] in
  Alcotest.(check int) "no violations" 0
    (List.length (Keller.Criteria.check db0 v (Keller.Criteria.V_delete target) ops))

let test_criteria_side_effects () =
  let v = view () in
  let target = tuple [ "ename", vs "Ada" ] in
  (* Deleting the CS department kills Ben's row too: side effect. *)
  let ops = [ Op.Delete ("dept", [ vs "CS" ]) ] in
  let violations = Keller.Criteria.check db0 v (Keller.Criteria.V_delete target) ops in
  Alcotest.(check bool) "side effect flagged" true
    (List.mem Keller.Criteria.No_side_effects violations)

let test_criteria_unrealized () =
  let v = view () in
  let target = tuple [ "ename", vs "Ada" ] in
  let violations = Keller.Criteria.check db0 v (Keller.Criteria.V_delete target) [] in
  Alcotest.(check bool) "change not realized" true
    (List.mem Keller.Criteria.Requested_change_realized violations)

let test_criteria_minimality () =
  let v = view () in
  let target = tuple [ "ename", vs "Cat" ] in
  let ops =
    [ Op.Delete ("emp", [ vi 3 ]); Op.Delete ("dept", [ vs "EE" ]) ]
  in
  let violations = Keller.Criteria.check db0 v (Keller.Criteria.V_delete target) ops in
  Alcotest.(check bool) "redundant op flagged" true
    (List.mem Keller.Criteria.Minimality violations)

let test_criteria_identity_replace () =
  let v = view () in
  let t = Option.get (Relation.lookup (Database.relation_exn db0 "emp") [ vi 3 ]) in
  let update = Keller.Criteria.V_replace (tuple [ "ename", vs "Cat" ], tuple [ "ename", vs "Cat" ]) in
  let ops = [ Op.Replace ("emp", [ vi 3 ], t) ] in
  let violations = Keller.Criteria.check db0 v update ops in
  Alcotest.(check bool) "identity replacement flagged" true
    (List.mem Keller.Criteria.Simplest_replacements violations)

let test_criteria_delete_insert_pair () =
  let v = view () in
  let update = Keller.Criteria.V_replace (tuple [ "ename", vs "Cat" ], tuple [ "ename", vs "Kat" ]) in
  let ops =
    [ Op.Delete ("emp", [ vi 3 ]);
      Op.Insert ("emp", tuple [ "eid", vi 3; "ename", vs "Kat"; "dname", vs "EE" ]) ]
  in
  let violations = Keller.Criteria.check db0 v update ops in
  Alcotest.(check bool) "delete+insert flagged" true
    (List.mem Keller.Criteria.No_delete_insert_pairs violations)

(* Enumeration. *)
let test_enumerate_deletions () =
  let v = view () in
  let cands = Keller.Enumeration.deletions db0 v (tuple [ "ename", vs "Cat" ]) in
  Alcotest.(check int) "three subsets" 3 (List.length cands);
  let valid = Keller.Enumeration.valid_deletions db0 v (tuple [ "ename", vs "Cat" ]) in
  (* deleting from emp only is valid; dept-only and both kill no other
     rows for Cat (EE has only Cat!) — so they are valid too unless they
     break minimality. Deleting from both violates minimality. *)
  Alcotest.(check bool) "emp-only candidate is valid" true
    (List.exists
       (fun (c : Keller.Enumeration.candidate) ->
         c.Keller.Enumeration.description = "delete from emp")
       valid)

let test_enumerate_deletion_side_effect_invalid () =
  let v = view () in
  let valid = Keller.Enumeration.valid_deletions db0 v (tuple [ "ename", vs "Ada" ]) in
  (* any candidate deleting from dept kills Ben's row: invalid *)
  Alcotest.(check bool) "dept candidates rejected" true
    (List.for_all
       (fun (c : Keller.Enumeration.candidate) ->
         not
           (List.exists (fun op -> Op.relation op = "dept") c.Keller.Enumeration.ops))
       valid)

let test_enumerate_insertions () =
  let v = view () in
  let t = tuple [ "ename", vs "Dan"; "dname", vs "CS"; "floor", vi 3 ] in
  (* emp tuple is new (no key given -> conforms fails?) — provide eid via
     the view? The view projects no eid, so emp insertion cannot build a
     key: no valid emp insert choice. Use a dept-level insertion view
     instead. *)
  ignore t;
  let v2 =
    Keller.View.make_exn db0 ~name:"dept_v" ~relations:[ "dept" ]
      ~selection:Predicate.True ~projection:[ "dname"; "floor" ]
  in
  let cands =
    Keller.Enumeration.insertions db0 v2 (tuple [ "dname", vs "ME"; "floor", vi 5 ])
  in
  Alcotest.(check int) "single choice" 1 (List.length cands);
  Alcotest.(check bool) "valid" true
    (Keller.Enumeration.is_valid (List.hd cands));
  ignore v

let test_enumerate_replacements_nonkey () =
  let v = view () in
  let cands =
    Keller.Enumeration.replacements db0 v
      ~old_row:(tuple [ "ename", vs "Cat" ])
      ~new_row:(tuple [ "ename", vs "Kat" ])
  in
  (* only emp's base tuple changes, key unchanged: single candidate *)
  Alcotest.(check int) "single candidate" 1 (List.length cands);
  let c = List.hd cands in
  Alcotest.(check bool) "valid" true (Keller.Enumeration.is_valid c);
  Alcotest.(check int) "one op" 1 (List.length c.Keller.Enumeration.ops)

let test_enumerate_replacements_key_change () =
  let v =
    Keller.View.make_exn db0 ~name:"dept_v" ~relations:[ "dept" ]
      ~selection:Predicate.True ~projection:[ "dname"; "floor" ]
  in
  let cands =
    Keller.Enumeration.replacements db0 v
      ~old_row:(tuple [ "dname", vs "EE" ])
      ~new_row:(tuple [ "dname", vs "ECE" ])
  in
  Alcotest.(check int) "three choices" 3 (List.length cands);
  (* the delete+insert variant is in the space but invalid (criterion 5) *)
  let del_ins =
    List.find
      (fun (c : Keller.Enumeration.candidate) ->
        Relational.Strutil.contains ~sub:"delete old" c.Keller.Enumeration.description)
      cands
  in
  Alcotest.(check bool) "delete+insert flagged" true
    (List.mem Keller.Criteria.No_delete_insert_pairs
       del_ins.Keller.Enumeration.violations);
  let valid =
    Keller.Enumeration.valid_replacements db0 v
      ~old_row:(tuple [ "dname", vs "EE" ])
      ~new_row:(tuple [ "dname", vs "ECE" ])
  in
  Alcotest.(check bool) "key replacement survives" true
    (List.exists
       (fun (c : Keller.Enumeration.candidate) ->
         Relational.Strutil.contains ~sub:"replace key" c.Keller.Enumeration.description)
       valid);
  Alcotest.(check bool) "delete+insert pruned" true
    (List.for_all
       (fun (c : Keller.Enumeration.candidate) ->
         not
           (Relational.Strutil.contains ~sub:"delete old"
              c.Keller.Enumeration.description))
       valid)

let test_enumerate_replacements_ambiguous () =
  let v = view () in
  let cands =
    Keller.Enumeration.replacements db0 v
      ~old_row:(tuple [ "dname", vs "CS" ])
      ~new_row:(tuple [ "floor", vi 9 ])
  in
  (* two view rows match: no valid translation *)
  Alcotest.(check bool) "flagged" true
    (List.for_all
       (fun c -> not (Keller.Enumeration.is_valid c))
       cands)

(* Translators. *)
let translator () = Keller.Translator.default (view ())

let test_translate_delete () =
  let tr = { (translator ()) with Keller.Translator.delete_from = [ "emp" ] } in
  let ops =
    check_ok
      (Keller.Translator.translate db0 tr
         (Keller.Criteria.V_delete (tuple [ "ename", vs "Ada" ])))
  in
  check_ops "delete emp only" [ Op.Delete ("emp", [ vi 1 ]) ] ops

let test_translate_delete_missing () =
  let tr = translator () in
  check_err_contains ~sub:"no row"
    (Keller.Translator.translate db0 tr
       (Keller.Criteria.V_delete (tuple [ "ename", vs "Zed" ])))

let test_translate_insert_reuse () =
  let v2 =
    Keller.View.make_exn db0 ~name:"dept_v" ~relations:[ "dept" ]
      ~selection:Predicate.True ~projection:[ "dname"; "floor" ]
  in
  let tr = Keller.Translator.default v2 in
  let ops =
    check_ok
      (Keller.Translator.translate db0 tr
         (Keller.Criteria.V_insert (tuple [ "dname", vs "ME"; "floor", vi 5 ])))
  in
  Alcotest.(check int) "one insert" 1 (List.length ops);
  (* inserting an existing identical dept: reuse -> no ops *)
  let ops2 =
    check_ok
      (Keller.Translator.translate db0 tr
         (Keller.Criteria.V_insert (tuple [ "dname", vs "CS"; "floor", vi 3 ])))
  in
  Alcotest.(check int) "reused" 0 (List.length ops2)

let test_translate_insert_conflict () =
  let v2 =
    Keller.View.make_exn db0 ~name:"dept_v" ~relations:[ "dept" ]
      ~selection:Predicate.True ~projection:[ "dname"; "floor" ]
  in
  let tr = Keller.Translator.default v2 in
  (* CS exists on floor 3; claiming floor 9 conflicts and modification is
     denied by default *)
  check_err_contains ~sub:"conflicting"
    (Keller.Translator.translate db0 tr
       (Keller.Criteria.V_insert (tuple [ "dname", vs "CS"; "floor", vi 9 ])));
  let tr' =
    { tr with
      Keller.Translator.insert_policies =
        [ "dept",
          { Keller.Translator.allow_insert = true; allow_use_existing = true;
            allow_modify_existing = true } ] }
  in
  let ops =
    check_ok
      (Keller.Translator.translate db0 tr'
         (Keller.Criteria.V_insert (tuple [ "dname", vs "CS"; "floor", vi 9 ])))
  in
  Alcotest.(check bool) "replacement emitted" true
    (List.exists Op.is_replace ops)

let test_translate_replace_in_place () =
  let tr = translator () in
  let ops =
    check_ok
      (Keller.Translator.translate db0 tr
         (Keller.Criteria.V_replace
            (tuple [ "ename", vs "Cat" ], tuple [ "ename", vs "Kat" ])))
  in
  (match ops with
  | [ Op.Replace ("emp", [ k ], t) ] ->
      Alcotest.check value_testable "key" (vi 3) k;
      Alcotest.check value_testable "renamed" (vs "Kat") (Tuple.get t "ename")
  | _ -> Alcotest.failf "unexpected %a" Op.pp_list ops);
  Alcotest.(check int) "no criteria violations" 0
    (List.length
       (snd
          (check_ok
             (Keller.Translator.translate_and_check db0 tr
                (Keller.Criteria.V_replace
                   (tuple [ "ename", vs "Cat" ], tuple [ "ename", vs "Kat" ]))))))

let test_translate_replace_ambiguous () =
  let tr = translator () in
  check_err_contains ~sub:"several rows"
    (Keller.Translator.translate db0 tr
       (Keller.Criteria.V_replace
          (tuple [ "dname", vs "CS" ], tuple [ "dname", vs "CS2" ])))

let test_kdialog () =
  let v = view () in
  let tr, events =
    Keller.Kdialog.choose db0 v
      (Keller.Kdialog.scripted
         [ "del.dept", Keller.Kdialog.No; "ins.dept.touch", Keller.Kdialog.No ])
  in
  Alcotest.(check (list string)) "delete only from emp" [ "emp" ]
    tr.Keller.Translator.delete_from;
  (* dept's two follow-ups pruned: 2 del + 1 + 3 (emp) + 1 (dept touch) *)
  Alcotest.(check int) "question count" 6 (Keller.Kdialog.question_count events);
  let p = Keller.Translator.insert_policy_for tr "dept" in
  Alcotest.(check bool) "dept not insertable" false p.Keller.Translator.allow_insert;
  Alcotest.(check bool) "transcript mentions emp" true
    (Relational.Strutil.contains ~sub:"emp" (Keller.Kdialog.transcript events))

let test_choose_deletion_by_example () =
  let v = view () in
  let tr, chosen =
    check_ok
      (Keller.Kdialog.choose_deletion_by_example db0 v
         ~sample:(tuple [ "ename", vs "Cat" ])
         Keller.Kdialog.prefer_fewest_ops)
  in
  Alcotest.(check bool) "candidate is valid" true
    (Keller.Enumeration.is_valid chosen);
  Alcotest.(check int) "single-relation translator" 1
    (List.length tr.Keller.Translator.delete_from);
  (* the chosen translator then handles other deletions too *)
  let ops =
    check_ok
      (Keller.Translator.translate db0 tr
         (Keller.Criteria.V_delete (tuple [ "ename", vs "Ben" ])))
  in
  Alcotest.(check int) "translates" 1 (List.length ops)

let test_choose_deletion_picker_out_of_range () =
  let v = view () in
  check_err_contains ~sub:"picker chose"
    (Keller.Kdialog.choose_deletion_by_example db0 v
       ~sample:(tuple [ "ename", vs "Cat" ])
       (fun _ -> 99))

let test_choose_deletion_no_candidate () =
  let v = view () in
  check_err_contains ~sub:"no valid deletion"
    (Keller.Kdialog.choose_deletion_by_example db0 v
       ~sample:(tuple [ "ename", vs "Nobody" ])
       Keller.Kdialog.first_candidate)

let test_translator_make_errors () =
  let v = view () in
  check_err_contains ~sub:"empty delete-from"
    (Keller.Translator.make v ~delete_from:[] ~insert_policies:[]);
  check_err_contains ~sub:"not a relation"
    (Keller.Translator.make v ~delete_from:[ "ghost" ] ~insert_policies:[])

let suite =
  [
    Alcotest.test_case "view validation" `Quick test_view_validation;
    Alcotest.test_case "materialize" `Quick test_materialize;
    Alcotest.test_case "selection view" `Quick test_selection_view;
    Alcotest.test_case "provenance" `Quick test_provenance;
    Alcotest.test_case "criteria: valid delete" `Quick test_criteria_valid_delete;
    Alcotest.test_case "criteria: side effects" `Quick test_criteria_side_effects;
    Alcotest.test_case "criteria: unrealized" `Quick test_criteria_unrealized;
    Alcotest.test_case "criteria: minimality" `Quick test_criteria_minimality;
    Alcotest.test_case "criteria: identity replace" `Quick test_criteria_identity_replace;
    Alcotest.test_case "criteria: delete-insert pair" `Quick test_criteria_delete_insert_pair;
    Alcotest.test_case "enumerate deletions" `Quick test_enumerate_deletions;
    Alcotest.test_case "enumerate deletion side effects" `Quick test_enumerate_deletion_side_effect_invalid;
    Alcotest.test_case "enumerate insertions" `Quick test_enumerate_insertions;
    Alcotest.test_case "enumerate replacements (nonkey)" `Quick test_enumerate_replacements_nonkey;
    Alcotest.test_case "enumerate replacements (key)" `Quick test_enumerate_replacements_key_change;
    Alcotest.test_case "enumerate replacements (ambiguous)" `Quick test_enumerate_replacements_ambiguous;
    Alcotest.test_case "translate delete" `Quick test_translate_delete;
    Alcotest.test_case "translate delete missing" `Quick test_translate_delete_missing;
    Alcotest.test_case "translate insert reuse" `Quick test_translate_insert_reuse;
    Alcotest.test_case "translate insert conflict" `Quick test_translate_insert_conflict;
    Alcotest.test_case "translate replace in place" `Quick test_translate_replace_in_place;
    Alcotest.test_case "translate replace ambiguous" `Quick test_translate_replace_ambiguous;
    Alcotest.test_case "kdialog" `Quick test_kdialog;
    Alcotest.test_case "choose deletion by example" `Quick test_choose_deletion_by_example;
    Alcotest.test_case "picker out of range" `Quick test_choose_deletion_picker_out_of_range;
    Alcotest.test_case "no valid candidate" `Quick test_choose_deletion_no_candidate;
    Alcotest.test_case "translator make errors" `Quick test_translator_make_errors;
  ]
