open Structural
open Test_util

let g = Penguin.University.graph

let test_make () =
  Alcotest.(check (list string)) "relations"
    [ "COURSES"; "CURRICULUM"; "DEPARTMENT"; "FACULTY"; "GRADES"; "PEOPLE";
      "STAFF"; "STUDENT" ]
    (Schema_graph.relations g);
  Alcotest.(check int) "connections" 8 (List.length (Schema_graph.connections g))

let test_duplicate_schema () =
  let s = Schema_graph.schema_exn g "COURSES" in
  let g1 = check_ok (Schema_graph.add_schema Schema_graph.empty s) in
  check_err_contains ~sub:"already in graph" (Schema_graph.add_schema g1 s)

let test_duplicate_connection () =
  let c = List.hd (Schema_graph.connections g) in
  match Schema_graph.make (List.map (Schema_graph.schema_exn g) (Schema_graph.relations g)) [ c; c ] with
  | Error e ->
      Alcotest.(check bool) "mentions duplicate" true
        (Relational.Strutil.contains ~sub:"already in graph" e)
  | Ok _ -> Alcotest.fail "expected duplicate-connection error"

let test_invalid_connection_rejected () =
  let bad =
    Connection.ownership "COURSES" "DEPARTMENT" ~on:([ "course_id" ], [ "dept_name" ])
  in
  ignore (check_err (Schema_graph.add_connection g bad))

let test_out_in () =
  Alcotest.(check int) "COURSES outgoing" 2
    (List.length (Schema_graph.outgoing g "COURSES"));
  Alcotest.(check int) "COURSES incoming" 1
    (List.length (Schema_graph.incoming g "COURSES"));
  Alcotest.(check int) "DEPARTMENT incoming" 2
    (List.length (Schema_graph.incoming g "DEPARTMENT"))

let test_edges_from_order () =
  let edges = Schema_graph.edges_from g "COURSES" in
  Alcotest.(check int) "three edges" 3 (List.length edges);
  let dirs = List.map (fun (e : Schema_graph.edge) -> e.Schema_graph.forward) edges in
  Alcotest.(check (list bool)) "forward first" [ true; true; false ] dirs;
  let targets = List.map Schema_graph.edge_to edges in
  Alcotest.(check (list string)) "deterministic targets"
    [ "DEPARTMENT"; "GRADES"; "CURRICULUM" ] targets

let test_edge_accessors () =
  let e = List.hd (Schema_graph.edges_from g "CURRICULUM") in
  (* CURRICULUM's only edge is its forward reference into COURSES *)
  Alcotest.(check string) "from" "CURRICULUM" (Schema_graph.edge_from e);
  Alcotest.(check string) "to" "COURSES" (Schema_graph.edge_to e);
  Alcotest.(check (list string)) "from attrs" [ "course_id" ]
    (Schema_graph.edge_from_attrs e);
  let inv = Schema_graph.inverse e in
  Alcotest.(check string) "inverse from" "COURSES" (Schema_graph.edge_from inv);
  Alcotest.(check (list string)) "inverse from attrs" [ "course_id" ]
    (Schema_graph.edge_from_attrs inv)

let test_restrict () =
  let sub = Schema_graph.restrict g ~keep:[ "COURSES"; "GRADES"; "STUDENT" ] in
  Alcotest.(check (list string)) "kept" [ "COURSES"; "GRADES"; "STUDENT" ]
    (Schema_graph.relations sub);
  Alcotest.(check int) "kept connections" 2
    (List.length (Schema_graph.connections sub))

let test_create_database () =
  let db = Schema_graph.create_database g in
  Alcotest.(check int) "eight empty relations" 8
    (List.length (Relational.Database.relation_names db));
  Alcotest.(check int) "no tuples" 0 (Relational.Database.total_tuples db)

let test_to_dot () =
  let dot = Schema_graph.to_dot g in
  Alcotest.(check bool) "digraph" true (Relational.Strutil.contains ~sub:"digraph" dot);
  Alcotest.(check bool) "ownership edge" true
    (Relational.Strutil.contains ~sub:"COURSES -> GRADES" dot);
  Alcotest.(check bool) "subset style" true
    (Relational.Strutil.contains ~sub:"subset" dot)

let suite =
  [
    Alcotest.test_case "make" `Quick test_make;
    Alcotest.test_case "duplicate schema" `Quick test_duplicate_schema;
    Alcotest.test_case "duplicate connection" `Quick test_duplicate_connection;
    Alcotest.test_case "invalid connection rejected" `Quick test_invalid_connection_rejected;
    Alcotest.test_case "outgoing/incoming" `Quick test_out_in;
    Alcotest.test_case "edges_from order" `Quick test_edges_from_order;
    Alcotest.test_case "edge accessors" `Quick test_edge_accessors;
    Alcotest.test_case "restrict" `Quick test_restrict;
    Alcotest.test_case "create_database" `Quick test_create_database;
    Alcotest.test_case "to_dot" `Quick test_to_dot;
  ]
