(* The observability layer: metrics registry, trace spans, the stats
   surface, and the CI bench-regression gate logic. *)

module M = Obs.Metrics
module T = Obs.Trace
module J = Obs.Json

(* The registry and the trace sink are process-global; every test
   starts from a known state. *)
let fresh () =
  M.reset ();
  M.enable ();
  T.set_sink None

(* --- metrics ----------------------------------------------------------- *)

let test_counter_gauge () =
  fresh ();
  let c = M.counter ~help:"t" "t.counter" in
  M.Counter.incr c;
  M.Counter.add c 4;
  Alcotest.(check int) "counter accumulates" 5 (M.Counter.value c);
  Alcotest.(check bool) "re-registration is the same counter" true
    (M.Counter.value (M.counter "t.counter") = 5);
  let g = M.gauge "t.gauge" in
  M.Gauge.set g 3.5;
  M.Gauge.add g (-1.0);
  Alcotest.(check (float 1e-9)) "gauge set+add" 2.5 (M.Gauge.value g);
  M.disable ();
  M.Counter.incr c;
  M.Gauge.set g 99.;
  Alcotest.(check int) "disabled counter is a no-op" 5 (M.Counter.value c);
  Alcotest.(check (float 1e-9)) "disabled gauge is a no-op" 2.5
    (M.Gauge.value g);
  M.enable ();
  Alcotest.check_raises "name registered as another kind"
    (Invalid_argument "metric t.counter is already registered as another kind")
    (fun () -> ignore (M.gauge "t.counter"))

let test_histogram_bucketing () =
  fresh ();
  let h = M.histogram ~bounds:[ 10.; 100.; 1000. ] "t.hist" in
  List.iter (M.Histogram.observe h) [ 5.; 7.; 50.; 500.; 5000.; 50000. ];
  Alcotest.(check int) "count" 6 (M.Histogram.count h);
  Alcotest.(check (float 1e-6)) "sum" 55562. (M.Histogram.sum h);
  Alcotest.(check (float 1e-6)) "max" 50000. (M.Histogram.max_value h);
  (* Each observation lands in the first bucket whose bound admits it;
     everything past the last bound lands in the overflow bucket. *)
  Alcotest.(check (list (pair (float 1e-6) int)))
    "bucket occupancy"
    [ 10., 2; 100., 1; 1000., 1; infinity, 2 ]
    (M.Histogram.buckets h);
  (* Quantiles report the upper bound of the holding bucket. *)
  Alcotest.(check (float 1e-6)) "p50 in second bucket" 100.
    (M.Histogram.quantile h 0.5);
  Alcotest.(check (float 1e-6)) "p0 is the first bucket" 10.
    (M.Histogram.quantile h 0.0);
  (* the overflow bucket has no upper bound; the estimate clamps to the
     observed maximum instead of reporting infinity *)
  Alcotest.(check (float 1e-6)) "p100 clamps to the observed max" 50000.
    (M.Histogram.quantile h 1.0);
  let empty = M.histogram ~bounds:[ 10. ] "t.hist.empty" in
  Alcotest.(check (float 1e-6)) "empty histogram quantile" 0.
    (M.Histogram.quantile empty 0.5)

let test_histogram_merge () =
  fresh ();
  let a = M.histogram ~bounds:[ 10.; 100. ] "t.merge.a" in
  let b = M.histogram ~bounds:[ 10.; 100. ] "t.merge.b" in
  List.iter (M.Histogram.observe a) [ 5.; 50. ];
  List.iter (M.Histogram.observe b) [ 7.; 700. ];
  (match M.Histogram.merge a b with
  | Error e -> Alcotest.failf "merge failed: %s" e
  | Ok m ->
      Alcotest.(check int) "merged count" 4 (M.Histogram.count m);
      Alcotest.(check (float 1e-6)) "merged sum" 762. (M.Histogram.sum m);
      Alcotest.(check (float 1e-6)) "merged max" 700. (M.Histogram.max_value m);
      Alcotest.(check (list (pair (float 1e-6) int)))
        "merged buckets"
        [ 10., 2; 100., 1; infinity, 1 ]
        (M.Histogram.buckets m);
      (* The merge is a fresh value: the inputs are untouched. *)
      Alcotest.(check int) "input a untouched" 2 (M.Histogram.count a));
  let c = M.histogram ~bounds:[ 10.; 200. ] "t.merge.c" in
  match M.Histogram.merge a c with
  | Ok _ -> Alcotest.fail "merge across different bounds must fail"
  | Error _ -> ()

(* Two domains hammering the same metrics concurrently: counters are
   Atomic fetch-and-add, histograms take a per-histogram mutex, and
   registration is mutex-guarded — no increment may be lost and no
   registration may be duplicated. *)
let test_domain_safety_hammer () =
  fresh ();
  let rounds = 25_000 in
  let worker id () =
    (* Re-register by name from both domains: first-use registration
       must race safely and return the one shared metric. *)
    let c = M.counter "t.hammer.counter" in
    let g = M.gauge "t.hammer.gauge" in
    let h = M.histogram ~bounds:[ 10.; 100. ] "t.hammer.hist" in
    for i = 1 to rounds do
      M.Counter.incr c;
      M.Gauge.add g 1.0;
      M.Histogram.observe h (float_of_int ((i + id) mod 150))
    done
  in
  let d = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d;
  Alcotest.(check int) "no counter increment lost" (2 * rounds)
    (M.Counter.value (M.counter "t.hammer.counter"));
  Alcotest.(check (float 1e-6)) "no gauge add lost"
    (float_of_int (2 * rounds))
    (M.Gauge.value (M.gauge "t.hammer.gauge"));
  let h = M.histogram ~bounds:[ 10.; 100. ] "t.hammer.hist" in
  Alcotest.(check int) "no observation lost" (2 * rounds)
    (M.Histogram.count h);
  Alcotest.(check int) "bucket counts also sum up" (2 * rounds)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (M.Histogram.buckets h));
  Alcotest.(check int) "one registration per name" 3
    (List.length
       (List.filter
          (fun (name, _, _) ->
            Relational.Strutil.contains ~sub:"t.hammer" name)
          (M.all ())))

let test_time_records_on_raise () =
  fresh ();
  let h = M.histogram "t.time" in
  (try M.time h (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "raising thunk still observed" 1 (M.Histogram.count h)

(* --- trace spans -------------------------------------------------------- *)

let test_span_nesting () =
  fresh ();
  let ring = T.Ring.create 16 in
  T.set_sink (Some (T.Ring.sink ring));
  let result =
    T.with_span "outer" ~tags:[ "k", "v" ] (fun () ->
        T.with_span "inner" (fun () ->
            T.tag "mid" "yes";
            7))
  in
  T.set_sink None;
  Alcotest.(check int) "thunk result" 7 result;
  match T.Ring.contents ring with
  | [ inner; outer ] ->
      (* children finish (and are emitted) before parents *)
      Alcotest.(check string) "inner first" "inner" inner.T.name;
      Alcotest.(check string) "outer second" "outer" outer.T.name;
      Alcotest.(check int) "root parent is 0" 0 outer.T.parent;
      Alcotest.(check int) "inner's parent is outer" outer.T.id inner.T.parent;
      Alcotest.(check int) "outer depth" 0 outer.T.depth;
      Alcotest.(check int) "inner depth" 1 inner.T.depth;
      Alcotest.(check bool) "ids dense from 1" true
        (outer.T.id = 1 && inner.T.id = 2);
      Alcotest.(check (list (pair string string))) "declared tags"
        [ "k", "v" ] outer.T.tags;
      Alcotest.(check (list (pair string string))) "tag hits innermost span"
        [ "mid", "yes" ] inner.T.tags;
      Alcotest.(check bool) "durations non-negative" true
        (inner.T.duration_ns >= 0. && outer.T.duration_ns >= 0.)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_finishes_on_raise () =
  fresh ();
  let ring = T.Ring.create 16 in
  T.set_sink (Some (T.Ring.sink ring));
  (try T.with_span "raising" (fun () -> failwith "boom")
   with Failure _ -> ());
  (* the stack must be clean: a next root span really is a root *)
  T.with_span "after" ignore;
  T.set_sink None;
  match T.Ring.contents ring with
  | [ raising; after ] ->
      Alcotest.(check string) "raising span emitted" "raising" raising.T.name;
      Alcotest.(check int) "stack popped on raise" 0 after.T.parent
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_ring_capacity () =
  fresh ();
  let ring = T.Ring.create 3 in
  T.set_sink (Some (T.Ring.sink ring));
  for i = 1 to 5 do
    T.with_span (Fmt.str "s%d" i) ignore
  done;
  T.set_sink None;
  Alcotest.(check (list string)) "keeps the most recent, oldest first"
    [ "s3"; "s4"; "s5" ]
    (List.map (fun s -> s.T.name) (T.Ring.contents ring))

let test_span_lines_well_formed () =
  fresh ();
  let ring = T.Ring.create 64 in
  T.set_sink (Some (T.Ring.sink ring));
  T.with_span "outer" ~tags:[ "mode", "incremental"; "quote", {|a"b|} ]
    (fun () -> T.with_span "inner" ignore);
  T.set_sink None;
  List.iter
    (fun s ->
      (match Relational.Sexp.parse (T.sexp_line s) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "sexp line unparseable: %s" e);
      match J.parse (T.json_line s) with
      | Error e -> Alcotest.failf "json line unparseable: %s" e
      | Ok doc ->
          Alcotest.(check (option string))
            "name survives the round-trip" (Some s.T.name)
            (Option.bind (J.member "name" doc) J.to_str))
    (T.Ring.contents ring)

(* --- json --------------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    J.Obj
      [ "s", J.Str "a\"b\\c\nd\t\x01e";
        "n", J.Num 1234.5;
        "i", J.Num 42.;
        "b", J.Bool true;
        "z", J.Null;
        "a", J.Arr [ J.Num 1.; J.Obj [ "nested", J.Str "unicode: \xc3\xa9" ] ] ]
  in
  match J.parse (J.to_string doc) with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok doc' ->
      Alcotest.(check bool) "document equal after round-trip" true
        (J.equal doc doc');
      (* non-finite numbers degrade to null rather than emitting
         unparseable tokens *)
      Alcotest.(check string) "nan is null" "null" (J.to_string (J.Num nan))

(* --- the stats surface -------------------------------------------------- *)

let test_stats_exercise_and_json () =
  fresh ();
  (match Penguin.Stats.exercise () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stats exercise failed: %s" e);
  let doc = Penguin.Stats.json () in
  (* What the CLI prints with --json must round-trip through the
     bundled parser... *)
  (match J.parse (J.to_string doc) with
  | Error e -> Alcotest.failf "stats json does not re-parse: %s" e
  | Ok doc' ->
      Alcotest.(check bool) "stats json round-trips" true (J.equal doc doc'));
  (* ...and must show every instrumented layer fired. *)
  let counter name =
    match
      Option.bind (J.member "counters" doc) (fun c ->
          Option.bind (J.member name c) J.to_float)
    with
    | Some v -> int_of_float v
    | None -> Alcotest.failf "counter %s missing from stats json" name
  in
  Alcotest.(check bool) "engine committed" true (counter "engine.commits" > 0);
  Alcotest.(check bool) "session committed" true
    (counter "session.commits" > 0);
  Alcotest.(check bool) "a rebase was forced" true
    (counter "session.rebases" > 0);
  Alcotest.(check bool) "journal appended" true (counter "journal.appends" > 0);
  Alcotest.(check bool) "journal rotated" true
    (counter "journal.rotations" > 0);
  Alcotest.(check bool) "torn tail repaired" true
    (counter "journal.torn_repairs" > 0);
  Alcotest.(check bool) "stores opened" true (counter "recovery.opens" > 0);
  (* the resilience layer: retries over injected faults, admission
     control shedding, and a full breaker trip/close cycle *)
  Alcotest.(check bool) "a fault was injected" true
    (counter "fsio.injected_faults" > 0);
  Alcotest.(check bool) "a retry was taken" true
    (counter "resilience.retries" > 0);
  Alcotest.(check bool) "admission control shed" true
    (counter "resilience.shed" > 0);
  Alcotest.(check bool) "breaker tripped" true (counter "breaker.trips" > 0);
  Alcotest.(check bool) "breaker rejected while open" true
    (counter "breaker.rejections" > 0);
  Alcotest.(check bool) "breaker probed and closed" true
    (counter "breaker.probes" > 0 && counter "breaker.closes" > 0);
  (* the materialized view-object cache: a cold build, a warm hit, an
     incremental patch, a disjoint-delta skip, and a barrier
     invalidation all fired *)
  Alcotest.(check bool) "cache cold build counted" true
    (counter "cache.misses" > 0);
  Alcotest.(check bool) "cache warm hit counted" true
    (counter "cache.hits" > 0);
  Alcotest.(check bool) "cache entries patched" true
    (counter "cache.patched" > 0);
  Alcotest.(check bool) "cache delta skipped" true
    (counter "cache.skipped" > 0);
  Alcotest.(check bool) "cache invalidated on barrier" true
    (counter "cache.invalidated" > 0);
  (* the replication layer: a follower caught up (lag back to zero), a
     corrupt shipped record was refetched, and a promotion bumped the
     epoch gauge *)
  let gauge name =
    match
      Option.bind (J.member "gauges" doc) (fun g ->
          Option.bind (J.member name g) J.to_float)
    with
    | Some v -> v
    | None -> Alcotest.failf "gauge %s missing from stats json" name
  in
  Alcotest.(check (float 1e-9)) "follower fully caught up" 0.
    (gauge "replica.lag_records");
  Alcotest.(check bool) "promotion bumped the epoch gauge" true
    (gauge "replica.epoch" >= 1.);
  Alcotest.(check bool) "suspect frame was refetched" true
    (counter "replica.refetches" > 0);
  Alcotest.(check bool) "a follower was promoted" true
    (counter "replica.promotions" > 0);
  Alcotest.(check bool) "follower ingested records" true
    (counter "replica.applied_records" > 0);
  Alcotest.(check bool) "corrupt record quarantined, not wedged" true
    (counter "replica.quarantines" > 0);
  (* the table renders every registered metric *)
  let table = Penguin.Stats.table () in
  List.iter
    (fun (name, _, _) ->
      if not (Relational.Strutil.contains ~sub:name table) then
        Alcotest.failf "metric %s missing from stats table" name)
    (M.all ())

let test_stats_exercise_traces () =
  fresh ();
  let ring = T.Ring.create 4096 in
  T.set_sink (Some (T.Ring.sink ring));
  (match Penguin.Stats.exercise () with
  | Ok () -> ()
  | Error e -> Alcotest.failf "stats exercise failed: %s" e);
  T.set_sink None;
  let names =
    List.sort_uniq String.compare
      (List.map (fun s -> s.T.name) (T.Ring.contents ring))
  in
  List.iter
    (fun expected ->
      if not (List.mem expected names) then
        Alcotest.failf "span %s not produced by the stats workload" expected)
    [ "engine.stage"; "engine.translate"; "engine.commit_group";
      "engine.global_check"; "session.commit"; "session.rebase";
      "journal.append"; "journal.rotate"; "recovery.open_store";
      "recovery.persist"; "cache.warm"; "cache.apply_delta"; "cache.patch" ]

(* --- the bench-regression gate ------------------------------------------ *)

let bench_doc groups =
  J.to_string
    (J.Obj
       [ "quick", J.Bool true;
         "groups",
         J.Arr
           (List.map
              (fun (name, results) ->
                J.Obj
                  [ "group", J.Str name;
                    "results",
                    J.Arr
                      (List.map
                         (fun (n, ns) ->
                           J.Obj
                             [ "name", J.Str n;
                               "ns_per_op",
                               (match ns with
                               | Some v -> J.Num v
                               | None -> J.Null) ])
                         results) ])
              groups) ])

let baseline_doc =
  bench_doc
    [ "e9",
      [ "fast", Some 100.; "mid", Some 200.; "slow", Some 400.;
        "broken", None ];
      "e10", [ "a", Some 1000.; "b", Some 3000. ] ]

let parse_groups doc =
  match Bench_gate.parse doc with
  | Ok gs -> gs
  | Error e -> Alcotest.failf "gate parse failed: %s" e

let test_gate_parse_and_median () =
  let groups = parse_groups baseline_doc in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  let e9 = List.hd groups in
  (* null measurements are dropped, not treated as zero *)
  Alcotest.(check int) "null result dropped" 3 (List.length e9.Bench_gate.results);
  Alcotest.(check (option (float 1e-6))) "odd-arity median" (Some 200.)
    (Bench_gate.median e9);
  Alcotest.(check (option (float 1e-6))) "even-arity median" (Some 2000.)
    (Bench_gate.median (List.nth groups 1));
  Alcotest.(check (option (float 1e-6))) "empty group has no median" None
    (Bench_gate.median { Bench_gate.name = "x"; results = [] })

let test_gate_passes_on_baseline () =
  let baseline = parse_groups baseline_doc in
  let verdicts = Bench_gate.compare ~threshold:2.5 ~baseline baseline in
  Alcotest.(check bool) "self-comparison passes" false
    (Bench_gate.failed verdicts);
  (* mild noise within the threshold also passes *)
  let noisy =
    parse_groups
      (bench_doc
         [ "e9", [ "fast", Some 180.; "mid", Some 390.; "slow", Some 700. ];
           "e10", [ "a", Some 1900.; "b", Some 5600. ] ])
  in
  Alcotest.(check bool) "2x noise passes a 2.5x gate" false
    (Bench_gate.failed (Bench_gate.compare ~threshold:2.5 ~baseline noisy))

let test_gate_fails_on_injected_slowdown () =
  let baseline = parse_groups baseline_doc in
  (* the acceptance scenario: every e9 measurement 10x slower *)
  let slowed =
    parse_groups
      (bench_doc
         [ "e9", [ "fast", Some 1000.; "mid", Some 2000.; "slow", Some 4000. ];
           "e10", [ "a", Some 1000.; "b", Some 3000. ] ])
  in
  let verdicts = Bench_gate.compare ~threshold:2.5 ~baseline slowed in
  Alcotest.(check bool) "10x slowdown fails" true (Bench_gate.failed verdicts);
  let v =
    List.find (fun v -> v.Bench_gate.group_name = "e9") verdicts
  in
  Alcotest.(check bool) "the slowed group is the one flagged" true
    (v.Bench_gate.status = Bench_gate.Regressed);
  Alcotest.(check (option (float 1e-6))) "ratio reported" (Some 10.)
    v.Bench_gate.ratio;
  Alcotest.(check bool) "report names the culprit" true
    (Relational.Strutil.contains ~sub:"e9"
       (Bench_gate.report ~threshold:2.5 verdicts))

let test_gate_missing_and_new_groups () =
  let baseline = parse_groups baseline_doc in
  let missing =
    parse_groups (bench_doc [ "e10", [ "a", Some 1000.; "b", Some 3000. ] ])
  in
  let verdicts = Bench_gate.compare ~threshold:2.5 ~baseline missing in
  Alcotest.(check bool) "a dropped group fails the gate" true
    (Bench_gate.failed verdicts);
  let e9 = List.find (fun v -> v.Bench_gate.group_name = "e9") verdicts in
  Alcotest.(check bool) "flagged as missing" true
    (e9.Bench_gate.status = Bench_gate.Missing);
  let extra =
    parse_groups
      (bench_doc
         [ "e9", [ "fast", Some 100.; "mid", Some 200.; "slow", Some 400. ];
           "e10", [ "a", Some 1000.; "b", Some 3000. ];
           "e12", [ "fresh", Some 50. ] ])
  in
  let verdicts = Bench_gate.compare ~threshold:2.5 ~baseline extra in
  Alcotest.(check bool) "a new group does not fail the gate" false
    (Bench_gate.failed verdicts);
  let e12 = List.find (fun v -> v.Bench_gate.group_name = "e12") verdicts in
  Alcotest.(check bool) "flagged as new" true
    (e12.Bench_gate.status = Bench_gate.New)

let test_gate_rejects_malformed () =
  (match Bench_gate.parse "{\"no\": \"groups\"}" with
  | Ok _ -> Alcotest.fail "document without groups must not parse"
  | Error _ -> ());
  match Bench_gate.parse "not json at all" with
  | Ok _ -> Alcotest.fail "non-json must not parse"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
    Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "time records on raise" `Quick
      test_time_records_on_raise;
    Alcotest.test_case "two domains hammer the registry" `Quick
      test_domain_safety_hammer;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span finishes on raise" `Quick
      test_span_finishes_on_raise;
    Alcotest.test_case "ring capacity" `Quick test_ring_capacity;
    Alcotest.test_case "span lines well-formed" `Quick
      test_span_lines_well_formed;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "stats exercise + json round-trip" `Quick
      test_stats_exercise_and_json;
    Alcotest.test_case "stats exercise traces every layer" `Quick
      test_stats_exercise_traces;
    Alcotest.test_case "gate parse + median" `Quick test_gate_parse_and_median;
    Alcotest.test_case "gate passes on baseline" `Quick
      test_gate_passes_on_baseline;
    Alcotest.test_case "gate fails on 10x slowdown" `Quick
      test_gate_fails_on_injected_slowdown;
    Alcotest.test_case "gate: missing and new groups" `Quick
      test_gate_missing_and_new_groups;
    Alcotest.test_case "gate rejects malformed documents" `Quick
      test_gate_rejects_malformed;
  ]
