(* Dependency-island partitioning: island computation over
   ownership/subset edges, stable shard ids, max_shards folding, risky
   relations, and the colocation invariant — the routing layer of the
   sharded engine. *)
open Relational
open Structural

let rel name key_attrs extra =
  Schema.make_exn ~name
    ~attributes:(List.map Attribute.int key_attrs @ extra)
    ~key:key_attrs

let graph_of schemas conns = Schema_graph.make_exn schemas conns

(* Two ownership islands stitched by one reference:
   A --* B (island {A,B}), C alone (island {C}), B --> C reference. *)
let stitched () =
  graph_of
    [ rel "A" [ "a" ] [ Attribute.str "av" ];
      rel "B" [ "a"; "b" ] [ Attribute.int "c_ref" ];
      rel "C" [ "c" ] [ Attribute.str "cv" ] ]
    [ Connection.ownership "A" "B" ~on:([ "a" ], [ "a" ]);
      Connection.reference "B" "C" ~on:([ "c_ref" ], [ "c" ]) ]

let test_university_islands () =
  let plan = Partition.compute Penguin.University.graph in
  Alcotest.(check int) "four islands" 4 (Partition.count plan);
  (* Stable order: islands numbered by smallest member. *)
  Alcotest.(check (list string))
    "shard 0" [ "COURSES"; "GRADES" ] (Partition.members plan 0);
  Alcotest.(check (list string)) "shard 1" [ "CURRICULUM" ]
    (Partition.members plan 1);
  Alcotest.(check (list string)) "shard 2" [ "DEPARTMENT" ]
    (Partition.members plan 2);
  Alcotest.(check (list string))
    "shard 3"
    [ "FACULTY"; "PEOPLE"; "STAFF"; "STUDENT" ]
    (Partition.members plan 3);
  Alcotest.(check bool) "colocated" true
    (Partition.colocated plan Penguin.University.graph)

let test_reference_crosses () =
  let g = stitched () in
  let plan = Partition.compute g in
  Alcotest.(check int) "two islands" 2 (Partition.count plan);
  Alcotest.(check (list string)) "A,B together" [ "A"; "B" ]
    (Partition.members plan 0);
  Alcotest.(check (list string)) "C alone" [ "C" ] (Partition.members plan 1);
  (* The stitch is the one cross-shard connection; its endpoints are
     risky, the ownership pair is not. *)
  (match Partition.cross_connections plan g with
  | [ c ] -> Alcotest.(check string) "reference crosses" "C" c.Connection.target
  | l -> Alcotest.failf "expected 1 cross connection, got %d" (List.length l));
  Alcotest.(check bool) "B risky" true (Partition.risky plan "B");
  Alcotest.(check bool) "C risky" true (Partition.risky plan "C");
  Alcotest.(check bool) "A not risky" false (Partition.risky plan "A")

let test_stability_under_declaration_order () =
  let g = stitched () in
  let g' =
    graph_of
      [ rel "C" [ "c" ] [ Attribute.str "cv" ];
        rel "B" [ "a"; "b" ] [ Attribute.int "c_ref" ];
        rel "A" [ "a" ] [ Attribute.str "av" ] ]
      [ Connection.reference "B" "C" ~on:([ "c_ref" ], [ "c" ]);
        Connection.ownership "A" "B" ~on:([ "a" ], [ "a" ]) ]
  in
  Alcotest.(check (list (pair string int)))
    "assignment independent of declaration order"
    (Partition.assignment (Partition.compute g))
    (Partition.assignment (Partition.compute g'))

let test_max_shards_folding () =
  let plan = Partition.compute ~max_shards:2 Penguin.University.graph in
  Alcotest.(check int) "folded to 2" 2 (Partition.count plan);
  (* Island i lands on shard i mod 2; colocation survives folding. *)
  Alcotest.(check (list string))
    "shard 0 = islands 0+2"
    [ "COURSES"; "DEPARTMENT"; "GRADES" ]
    (Partition.members plan 0);
  Alcotest.(check (list string))
    "shard 1 = islands 1+3"
    [ "CURRICULUM"; "FACULTY"; "PEOPLE"; "STAFF"; "STUDENT" ]
    (Partition.members plan 1);
  Alcotest.(check bool) "still colocated" true
    (Partition.colocated plan Penguin.University.graph);
  let one = Partition.compute ~max_shards:1 Penguin.University.graph in
  Alcotest.(check int) "single store" 1 (Partition.count one);
  List.iter
    (fun (r, s) ->
      Alcotest.(check int) (r ^ " on shard 0") 0 s;
      Alcotest.(check bool) (r ^ " not risky") false (Partition.risky one r))
    (Partition.assignment one)

let test_shards_of_relations () =
  let plan = Partition.compute Penguin.University.graph in
  Alcotest.(check (list int))
    "GRADES+STUDENT span 0 and 3" [ 0; 3 ]
    (Partition.shards_of_relations plan [ "GRADES"; "STUDENT"; "COURSES" ]);
  Alcotest.(check (list int))
    "empty list, no shards" []
    (Partition.shards_of_relations plan []);
  Alcotest.check_raises "unknown relation raises"
    (Invalid_argument "Partition.shard_of: unknown relation NOPE") (fun () ->
      ignore (Partition.shards_of_relations plan [ "NOPE" ]))

let test_subset_colocates () =
  let g =
    graph_of
      [ rel "P" [ "id" ] [ Attribute.str "v" ];
        rel "Q" [ "id" ] [ Attribute.str "w" ] ]
      [ Connection.subset "Q" "P" ~on:([ "id" ], [ "id" ]) ]
  in
  let plan = Partition.compute g in
  Alcotest.(check int) "one island" 1 (Partition.count plan);
  Alcotest.(check (list string)) "both members" [ "P"; "Q" ]
    (Partition.members plan 0)

let suite =
  [
    Alcotest.test_case "university partitions into 4 islands" `Quick
      test_university_islands;
    Alcotest.test_case "references cross, endpoints are risky" `Quick
      test_reference_crosses;
    Alcotest.test_case "shard ids are declaration-order independent" `Quick
      test_stability_under_declaration_order;
    Alcotest.test_case "max_shards folds islands, keeps colocation" `Quick
      test_max_shards_folding;
    Alcotest.test_case "shards_of_relations = participant set" `Quick
      test_shards_of_relations;
    Alcotest.test_case "subset edges colocate like ownership" `Quick
      test_subset_colocates;
  ]
