(* Crash recovery and fault injection.

   The harness wraps the real filesystem in a Fsio.t whose N-th
   primitive operation misbehaves and kills the "process" (raises
   Crash): either before doing anything, after writing only half the
   content (a torn write), or after completing (death just past the
   injection point — e.g. an fsync whose effect survives but whose
   caller never returns). Enumerating N over every operation of a
   durable commit — journal append, fsync, tmp-file writes, renames,
   rotation — and recovering with Recovery.open_store after each crash
   proves the invariant: the recovered workspace equals either the
   pre-commit or the post-commit state, never a torn mixture, and
   always satisfies the structural model. *)
open Relational
open Viewobject
open Test_util

exception Crash

type flavor = Before | Partial | After

let flavor_name = function
  | Before -> "before"
  | Partial -> "partial"
  | After -> "after"

let crashing_io ~fuse ~flavor : Penguin.Fsio.t =
  let d = Penguin.Fsio.default in
  let fires () =
    decr fuse;
    !fuse = 0
  in
  let guard ~partial ~run =
    if not (fires ()) then run ()
    else begin
      (match flavor with
      | Before -> ()
      | Partial -> partial ()
      | After -> ignore (run ()));
      raise Crash
    end
  in
  {
    Penguin.Fsio.read = d.Penguin.Fsio.read;
    read_from =
      (fun ~path ~off ~len ->
        guard
          ~partial:(fun () -> ())
          ~run:(fun () -> d.Penguin.Fsio.read_from ~path ~off ~len));
    write =
      (fun ~path ~append content ->
        guard
          ~partial:(fun () ->
            ignore
              (d.Penguin.Fsio.write ~path ~append
                 (String.sub content 0 (String.length content / 2))))
          ~run:(fun () -> d.Penguin.Fsio.write ~path ~append content));
    sync = (fun p -> guard ~partial:(fun () -> ()) ~run:(fun () -> d.Penguin.Fsio.sync p));
    rename =
      (fun ~src ~dst ->
        guard ~partial:(fun () -> ()) ~run:(fun () -> d.Penguin.Fsio.rename ~src ~dst));
    remove = (fun p -> guard ~partial:(fun () -> ()) ~run:(fun () -> d.Penguin.Fsio.remove p));
  }

(* --- a workspace, its edits, and a durable commit --------------------- *)

let instance_of ws course =
  let vo = check_ok (Penguin.Workspace.find_object ws "omega") in
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" course)
      ws.Penguin.Workspace.db vo
  with
  | [ i ] -> i
  | l -> Alcotest.failf "expected 1 instance of %s, got %d" course (List.length l)

let grade_edit ws (course, pid) grade =
  check_ok
    (Vo_core.Request.partial_modify (instance_of ws course) ~label:"GRADES"
       ~at:(Tuple.make [ "pid", Value.Int pid ])
       ~f:(fun t -> Tuple.set t "grade" (Value.Str grade)))

let grade_of ws (course, pid) =
  let r = Database.relation_exn ws.Penguin.Workspace.db "GRADES" in
  match Relation.lookup r [ Value.Str course; Value.Int pid ] with
  | Some t -> Tuple.get t "grade"
  | None -> Alcotest.failf "no GRADES (%s, %d)" course pid

let store_in dir = Filename.concat dir "store.pgn"

let make_store dir =
  let ws = Penguin.University.workspace () in
  check_ok_e (Penguin.Store.save_file ws (store_in dir))

let apply_edit ws enrolment grade =
  let ws', outcome = Penguin.Workspace.update ws "omega" (grade_edit ws enrolment grade) in
  (match outcome.Vo_core.Engine.result with
  | Transaction.Committed _ -> ()
  | Transaction.Rolled_back { reason; _ } -> Alcotest.failf "update: %s" reason);
  ws'

(* One durable commit, the way the CLI does it: recover the current
   state, translate and apply an update, persist the new commits. *)
let commit_grade ?rotate_threshold ~io dir enrolment grade =
  let ( let* ) = Result.bind in
  let store = store_in dir in
  let* ws, _report = Penguin.Recovery.open_store ~io store in
  let ws' = apply_edit ws enrolment grade in
  let* _rotated =
    Penguin.Recovery.persist ~io ?rotate_threshold ~store
      ~since:(Penguin.Workspace.version ws) ws'
  in
  Ok ()

let recover dir =
  let ws, report = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  check_ok ~msg:"recovered state is consistent" (Penguin.Workspace.check_consistency ws);
  ws, report

(* --- the crash-recovery property -------------------------------------- *)

(* Run [action] with a crashing io at every injection point (every fuse
   value, every flavor), recovering after each crash; [action] with the
   default io defines the post state. *)
let assert_crash_recoverable ?(min_injections = 10) ~setup ~action () =
  (* Reference states. *)
  let pre_ws, post_ws =
    let dir = temp_dir "crash-ref" in
    setup dir;
    let pre, _ = recover dir in
    check_ok_e (action ~io:Penguin.Fsio.default dir);
    let post, _ = recover dir in
    rm_rf dir;
    pre, post
  in
  Alcotest.(check bool) "the action changes the state" false
    (Database.equal pre_ws.Penguin.Workspace.db post_ws.Penguin.Workspace.db);
  let check_recovered ~ctx dir =
    let ws, _report = recover dir in
    let db = ws.Penguin.Workspace.db in
    let v = Penguin.Workspace.version ws in
    let is_pre =
      Database.equal db pre_ws.Penguin.Workspace.db
      && v = Penguin.Workspace.version pre_ws
    in
    let is_post =
      Database.equal db post_ws.Penguin.Workspace.db
      && v = Penguin.Workspace.version post_ws
    in
    if not (is_pre || is_post) then
      Alcotest.failf
        "%s: recovered state (v%d) is neither the pre-crash (v%d) nor the \
         post-crash (v%d) state"
        ctx v
        (Penguin.Workspace.version pre_ws)
        (Penguin.Workspace.version post_ws)
  in
  let injections = ref 0 in
  List.iter
    (fun flavor ->
      let rec go k =
        if k > 100 then
          Alcotest.fail "fault enumeration did not terminate by fuse 100"
        else begin
          let dir = temp_dir "crash" in
          setup dir;
          let fuse = ref k in
          match action ~io:(crashing_io ~fuse ~flavor) dir with
          | exception Crash ->
              incr injections;
              check_recovered ~ctx:(Fmt.str "crash %s op %d" (flavor_name flavor) k) dir;
              rm_rf dir;
              go (k + 1)
          | Ok () ->
              (* The fuse outlived the operation count: every injection
                 point of this flavor has been exercised. *)
              check_recovered ~ctx:"completed" dir;
              rm_rf dir
          | Error e ->
              Alcotest.failf "action failed without crashing: %s"
                (Penguin.Error.to_string e)
        end
      in
      go 1)
    [ Before; Partial; After ];
  if !injections < min_injections then
    Alcotest.failf "suspiciously few injection points: %d" !injections

let test_crash_during_first_commit () =
  assert_crash_recoverable
    ~setup:make_store
    ~action:(fun ~io dir -> commit_grade ~io dir ("CS345", 2) "A-")
    ()

let test_crash_during_append_to_existing_journal () =
  (* The journal already exists, so the commit is just one record write
     and one fsync: 2 injection points per flavor. *)
  assert_crash_recoverable ~min_injections:6
    ~setup:(fun dir ->
      make_store dir;
      check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("EE280", 1) "C"))
    ~action:(fun ~io dir -> commit_grade ~io dir ("CS345", 2) "A-")
    ()

let test_crash_during_rotate () =
  assert_crash_recoverable
    ~setup:(fun dir ->
      make_store dir;
      check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("EE280", 1) "C"))
    ~action:(fun ~io dir ->
      (* rotate_threshold 2: the append is followed by folding the whole
         journal into a fresh snapshot — tmp writes, fsyncs and renames
         on both the store and the journal. *)
      commit_grade ~rotate_threshold:2 ~io dir ("CS345", 2) "A-")
    ()

let test_crash_during_save_file () =
  assert_crash_recoverable
    ~setup:make_store
    ~action:(fun ~io dir ->
      let ws, _ = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
      let ws' = apply_edit ws ("CS345", 2) "A-" in
      (* Snapshot-only persistence (what `export` does): the atomic
         write protocol alone must never corrupt the store. *)
      Penguin.Recovery.snapshot ~io ~store:(store_in dir) ws')
    ()

(* --- recovery semantics ----------------------------------------------- *)

let test_recovery_replays_journal () =
  let dir = temp_dir "recovery" in
  make_store dir;
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("CS345", 2) "A-");
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("EE280", 1) "C");
  let ws, report = recover dir in
  Alcotest.(check int) "two replayed entries" 2 report.Penguin.Recovery.replayed;
  Alcotest.(check bool) "grade 1" true (grade_of ws ("CS345", 2) = Value.Str "A-");
  Alcotest.(check bool) "grade 2" true (grade_of ws ("EE280", 1) = Value.Str "C");
  Alcotest.(check int) "version = snapshot + 2" (report.Penguin.Recovery.snapshot_version + 2)
    report.Penguin.Recovery.version;
  rm_rf dir

let read_raw path =
  match Penguin.Fsio.default.Penguin.Fsio.read path with
  | Ok (Some s) -> s
  | Ok None -> Alcotest.failf "%s: no such file" path
  | Error e -> Alcotest.failf "%s: %s" path (Penguin.Error.to_string e)

let test_recovery_truncates_torn_tail () =
  let dir = temp_dir "recovery" in
  make_store dir;
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("CS345", 2) "A-");
  (* A crash mid-append left garbage at the end of the journal. *)
  let jpath = Penguin.Journal.journal_path (store_in dir) in
  check_ok_e (Penguin.Fsio.default.Penguin.Fsio.write ~path:jpath ~append:true "\x00\x00\x00\x30garbage");
  let torn = read_raw jpath in
  (* A plain (read-only) open discards the tail in memory but must not
     rewrite the journal: absent the store lock, the "torn tail" could
     be another process's append in flight, and replacing the file would
     discard that commit after its fsync succeeded. *)
  let ws, report = recover dir in
  Alcotest.(check bool) "torn tail reported" true (report.Penguin.Recovery.torn_bytes > 0);
  Alcotest.(check bool) "not repaired by a read-only open" false
    report.Penguin.Recovery.repaired;
  Alcotest.(check bool) "journal untouched on disk" true (read_raw jpath = torn);
  Alcotest.(check bool) "the durable commit survived" true
    (grade_of ws ("CS345", 2) = Value.Str "A-");
  (* An explicit repair (the caller claims the writer's role) truncates. *)
  let _, report_r = check_ok_e (Penguin.Recovery.open_store ~repair:true (store_in dir)) in
  Alcotest.(check bool) "explicit repair truncates" true report_r.Penguin.Recovery.repaired;
  let _, report2 = recover dir in
  Alcotest.(check int) "clean after repair" 0 report2.Penguin.Recovery.torn_bytes;
  rm_rf dir

let test_commit_repairs_torn_tail () =
  let dir = temp_dir "recovery" in
  make_store dir;
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("CS345", 2) "A-");
  let jpath = Penguin.Journal.journal_path (store_in dir) in
  check_ok_e (Penguin.Fsio.default.Penguin.Fsio.write ~path:jpath ~append:true "\x00\x00\x00\x30garbage");
  (* The next commit — the write path — truncates the crash remnant
     before appending, so its record lands where replay looks. *)
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("EE280", 1) "C");
  let ws, report = recover dir in
  Alcotest.(check int) "clean after the commit" 0 report.Penguin.Recovery.torn_bytes;
  Alcotest.(check bool) "both commits survive" true
    (grade_of ws ("CS345", 2) = Value.Str "A-"
    && grade_of ws ("EE280", 1) = Value.Str "C");
  rm_rf dir

let test_rotation_bounds_replay () =
  let dir = temp_dir "recovery" in
  make_store dir;
  let grades = [ "A-"; "B"; "C+"; "A"; "B-" ] in
  List.iteri
    (fun i g ->
      check_ok_e (commit_grade ~rotate_threshold:2 ~io:Penguin.Fsio.default dir ("CS345", 2) g);
      ignore i)
    grades;
  let ws, report = recover dir in
  Alcotest.(check bool) "snapshot advanced past the origin" true
    (report.Penguin.Recovery.snapshot_version > 1);
  Alcotest.(check bool) "replay is bounded by the rotation threshold" true
    (report.Penguin.Recovery.replayed < List.length grades);
  Alcotest.(check bool) "last write wins" true
    (grade_of ws ("CS345", 2) = Value.Str "B-");
  check_ok ~msg:"consistent" (Penguin.Workspace.check_consistency ws);
  rm_rf dir

(* --- cross-process optimistic concurrency over the journal ------------ *)

(* Two "processes" share only the files in [dir]; each loads its own
   state with Recovery.open_store, exactly as two CLI invocations do. *)

let queue_edit sess ws enrolment grade =
  let retry ws' = Ok (Some (grade_edit ws' enrolment grade)) in
  check_ok_e (Penguin.Session.queue sess "omega" ~retry (grade_edit ws enrolment grade))

let test_cross_process_clean_commit () =
  let dir = temp_dir "occ" in
  make_store dir;
  let store = store_in dir in
  (* Process A begins a session. *)
  let ws_a, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let sess = queue_edit (Penguin.Session.begin_ ws_a) ws_a ("CS345", 2) "A-" in
  (* Process B commits a non-overlapping update meanwhile. *)
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("EE280", 1) "C");
  (* Process A commits: the journal replays B's delta, the footprints
     are disjoint, so no rebase — the win over a bare version file,
     which could only assume conflict. *)
  let ws_now, _ = check_ok_e (Penguin.Recovery.open_store store) in
  Alcotest.(check bool) "divergence is clean" true
    (Penguin.Session.divergence ws_now sess = Penguin.Session.Clean);
  let ws', stats = check_ok_e (Penguin.Session.commit ws_now sess) in
  Alcotest.(check bool) "no rebase" false stats.Penguin.Session.rebased;
  Alcotest.(check int) "one attempt" 1 stats.Penguin.Session.attempts;
  check_ok_e
    (Result.map ignore
       (Penguin.Recovery.persist ~store ~since:(Penguin.Workspace.version ws_now) ws'));
  let ws_final, _ = recover dir in
  Alcotest.(check bool) "both effects" true
    (grade_of ws_final ("CS345", 2) = Value.Str "A-"
    && grade_of ws_final ("EE280", 1) = Value.Str "C");
  rm_rf dir

let test_cross_process_conflicting_commit_rebases () =
  let dir = temp_dir "occ" in
  make_store dir;
  let store = store_in dir in
  let ws_a, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let sess = queue_edit (Penguin.Session.begin_ ws_a) ws_a ("CS345", 2) "A-" in
  (* B touches the same instance (same course, another student): the
     session's read footprint overlaps B's write. *)
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("CS345", 1) "F");
  let ws_now, _ = check_ok_e (Penguin.Recovery.open_store store) in
  (match Penguin.Session.divergence ws_now sess with
  | Penguin.Session.Conflicting (_ :: _) -> ()
  | _ -> Alcotest.fail "expected a conflict from the replayed delta");
  let ws', stats = check_ok_e (Penguin.Session.commit ws_now sess) in
  Alcotest.(check bool) "rebased" true stats.Penguin.Session.rebased;
  check_ok_e
    (Result.map ignore
       (Penguin.Recovery.persist ~store ~since:(Penguin.Workspace.version ws_now) ws'));
  let ws_final, _ = recover dir in
  Alcotest.(check bool) "both effects" true
    (grade_of ws_final ("CS345", 1) = Value.Str "F"
    && grade_of ws_final ("CS345", 2) = Value.Str "A-");
  rm_rf dir

(* Belt and braces under the lock: even if a committer's lock
   discipline is violated, persist must refuse to append a version the
   journal already holds — two records for the same version would make
   the store unopenable (append_entry's dense-extension check fails on
   every later replay). *)
let test_persist_refuses_stale_base () =
  let dir = temp_dir "occ" in
  make_store dir;
  let store = store_in dir in
  (* Process A prepares a commit against v_base... *)
  let ws_a, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let stale = Penguin.Workspace.version ws_a in
  let ws_a' = apply_edit ws_a ("CS345", 2) "A-" in
  (* ...but process B commits first. *)
  check_ok_e (commit_grade ~io:Penguin.Fsio.default dir ("EE280", 1) "C");
  (match Penguin.Recovery.persist ~store ~since:stale ws_a' with
  | Ok _ -> Alcotest.fail "persist must refuse a stale base version"
  | Error e ->
      (* The lost race is a typed [Conflict] whose message names it. *)
      (match e with
      | Penguin.Error.Conflict _ -> ()
      | _ -> Alcotest.failf "expected Conflict, got %s" (Penguin.Error.kind e));
      let e = Penguin.Error.to_string e in
      let contains hay needle =
        let n = String.length hay and m = String.length needle in
        let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Fmt.str "error names the advance: %s" e)
        true (contains e "advanced"));
  (* The store is still openable and holds exactly B's commit. *)
  let ws, _ = recover dir in
  Alcotest.(check bool) "B's commit survived, A's was refused" true
    (grade_of ws ("EE280", 1) = Value.Str "C"
    && grade_of ws ("CS345", 2) <> Value.Str "A-");
  rm_rf dir

(* Two real processes: the parent holds the store lock while a forked
   child runs a full open -> edit -> persist commit; the child must
   block until the parent releases, then land its commit cleanly. *)
let test_store_lock_serializes_commits () =
  let dir = temp_dir "lock" in
  make_store dir;
  let store = store_in dir in
  let marker = Filename.concat dir "child-committed" in
  let pid =
    check_ok_e
      (Penguin.Fsio.with_lock store (fun () ->
           match Unix.fork () with
           | 0 ->
               let r =
                 Penguin.Fsio.with_lock store (fun () ->
                     let ( let* ) = Result.bind in
                     let* ws, _ = Penguin.Recovery.open_store store in
                     let ws' = apply_edit ws ("EE280", 1) "C" in
                     let* _ =
                       Penguin.Recovery.persist ~store
                         ~since:(Penguin.Workspace.version ws) ws'
                     in
                     Penguin.Fsio.default.Penguin.Fsio.write ~path:marker
                       ~append:false "done")
               in
               (* _exit: no at_exit, no alcotest teardown in the child. *)
               Unix._exit (match r with Ok () -> 0 | Error _ -> 1)
           | pid ->
               (* Give the child time to block on the lock. If it could
                  acquire it concurrently, the marker would appear now. *)
               Unix.sleepf 0.3;
               Alcotest.(check bool) "child is excluded while the lock is held"
                 false (Sys.file_exists marker);
               Ok pid))
  in
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool) "child commit succeeded after release" true
    (status = Unix.WEXITED 0);
  Alcotest.(check bool) "child reached its commit" true (Sys.file_exists marker);
  let ws, _ = recover dir in
  Alcotest.(check bool) "child's commit is in the store" true
    (grade_of ws ("EE280", 1) = Value.Str "C");
  rm_rf dir

let test_rotation_is_a_barrier_for_older_sessions () =
  let dir = temp_dir "occ" in
  make_store dir;
  let store = store_in dir in
  let ws_a, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let sess = queue_edit (Penguin.Session.begin_ ws_a) ws_a ("CS345", 2) "A-" in
  (* B's commit rotates the journal into a fresh snapshot: the history
     A's session spans is no longer held as deltas. *)
  check_ok_e (commit_grade ~rotate_threshold:1 ~io:Penguin.Fsio.default dir ("EE280", 1) "C");
  let ws_now, _ = check_ok_e (Penguin.Recovery.open_store store) in
  Alcotest.(check bool) "history unknown after rotation" true
    (Penguin.Session.divergence ws_now sess = Penguin.Session.Unknown_history);
  let ws', stats = check_ok_e (Penguin.Session.commit ws_now sess) in
  Alcotest.(check bool) "rebased unconditionally" true stats.Penguin.Session.rebased;
  Alcotest.(check bool) "effect applied" true (grade_of ws' ("CS345", 2) = Value.Str "A-");
  rm_rf dir

(* --- the long-lived appender ------------------------------------------- *)

let test_appender_incremental_appends () =
  let dir = temp_dir "appender" in
  make_store dir;
  let store = store_in dir in
  let ws, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let app = check_ok_e (Penguin.Recovery.Appender.create ~store ws) in
  let grades = [ "A-"; "B+"; "C"; "A-"; "B" ] in
  let final =
    List.fold_left
      (fun ws g ->
        let ws' = apply_edit ws ("CS345", 2) g in
        let p =
          check_ok_e
            (Penguin.Recovery.Appender.append app
               ~since:(Penguin.Workspace.version ws) ws')
        in
        Alcotest.(check bool) "no rotation below the threshold" false
          p.Penguin.Recovery.rotated;
        ws')
      ws grades
  in
  Alcotest.(check int) "cursor tracks the tail"
    (Penguin.Workspace.version final)
    (Penguin.Recovery.Appender.tail app);
  let ws', report = recover dir in
  Alcotest.(check int) "every append replays"
    (Penguin.Workspace.version final)
    report.Penguin.Recovery.version;
  Alcotest.(check bool) "last grade wins" true
    (grade_of ws' ("CS345", 2) = Value.Str "B");
  rm_rf dir

let test_appender_rotates_at_threshold () =
  let dir = temp_dir "appender" in
  make_store dir;
  let store = store_in dir in
  let ws, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let app =
    check_ok_e
      (Penguin.Recovery.Appender.create ~rotate_threshold:3 ~store ws)
  in
  let rotations = ref 0 in
  let _ =
    List.fold_left
      (fun ws g ->
        let ws' = apply_edit ws ("CS345", 2) g in
        let p =
          check_ok_e
            (Penguin.Recovery.Appender.append app
               ~since:(Penguin.Workspace.version ws) ws')
        in
        if p.Penguin.Recovery.rotated then incr rotations;
        ws')
      ws
      [ "A-"; "B+"; "C"; "A-"; "B+"; "C"; "A-" ]
  in
  Alcotest.(check int) "a rotation per threshold records" 2 !rotations;
  let _, report = recover dir in
  Alcotest.(check bool) "replay is bounded by the threshold" true
    (report.Penguin.Recovery.replayed <= 3);
  rm_rf dir

let test_appender_refuses_stale_since () =
  let dir = temp_dir "appender" in
  make_store dir;
  let store = store_in dir in
  let ws, _ = check_ok_e (Penguin.Recovery.open_store store) in
  let app = check_ok_e (Penguin.Recovery.Appender.create ~store ws) in
  let ws' = apply_edit ws ("CS345", 2) "A-" in
  let _ =
    check_ok_e
      (Penguin.Recovery.Appender.append app
         ~since:(Penguin.Workspace.version ws) ws')
  in
  (match
     Penguin.Recovery.Appender.append app
       ~since:(Penguin.Workspace.version ws) ws'
   with
  | Ok _ -> Alcotest.fail "stale since must be refused"
  | Error e ->
      Alcotest.(check string) "typed as a conflict" "conflict"
        (Penguin.Error.kind e));
  rm_rf dir

(* An append that tears mid-write marks the appender dirty; the next
   append must rebuild its cursor from disk — truncating the torn
   bytes — and then land, instead of appending after garbage where
   replay never looks. *)
let test_appender_revalidates_after_torn_append () =
  let dir = temp_dir "appender" in
  make_store dir;
  let store = store_in dir in
  let module F = Penguin.Fsio in
  let armed = ref true in
  let io =
    { F.default with
      F.write =
        (fun ~path ~append content ->
          if !armed && append && Filename.check_suffix path ".journal" then begin
            armed := false;
            let half = String.sub content 0 (String.length content / 2) in
            let _ = F.default.F.write ~path ~append half in
            Error
              (Penguin.Error.io ~op:Penguin.Error.Write ~path ~transient:true
                 "injected torn append")
          end
          else F.default.F.write ~path ~append content) }
  in
  let ws, _ = check_ok_e (Penguin.Recovery.open_store ~io store) in
  let app = check_ok_e (Penguin.Recovery.Appender.create ~io ~store ws) in
  let ws' = apply_edit ws ("CS345", 2) "A-" in
  let since = Penguin.Workspace.version ws in
  (match Penguin.Recovery.Appender.append app ~since ws' with
  | Ok _ -> Alcotest.fail "the torn append must fail"
  | Error _ -> ());
  (* The commit never became durable: re-derive it and retry through the
     now-dirty appender. *)
  let _ = check_ok_e (Penguin.Recovery.Appender.append app ~since ws') in
  let recovered, report = recover dir in
  Alcotest.(check bool) "the retried commit is durable" true
    (grade_of recovered ("CS345", 2) = Value.Str "A-");
  Alcotest.(check int) "exactly one replayed entry" 1
    report.Penguin.Recovery.replayed;
  rm_rf dir

let suite =
  [
    Alcotest.test_case "crash anywhere in the first durable commit" `Quick
      test_crash_during_first_commit;
    Alcotest.test_case "crash anywhere appending to an existing journal"
      `Quick test_crash_during_append_to_existing_journal;
    Alcotest.test_case "crash anywhere during rotation" `Quick
      test_crash_during_rotate;
    Alcotest.test_case "crash anywhere during an atomic snapshot save" `Quick
      test_crash_during_save_file;
    Alcotest.test_case "recovery replays the journal onto the snapshot" `Quick
      test_recovery_replays_journal;
    Alcotest.test_case "recovery truncates and repairs a torn tail" `Quick
      test_recovery_truncates_torn_tail;
    Alcotest.test_case "a commit repairs a torn tail before appending" `Quick
      test_commit_repairs_torn_tail;
    Alcotest.test_case "rotation bounds replay length" `Quick
      test_rotation_bounds_replay;
    Alcotest.test_case "persist refuses a stale base version" `Quick
      test_persist_refuses_stale_base;
    Alcotest.test_case "the store lock serializes real processes" `Quick
      test_store_lock_serializes_commits;
    Alcotest.test_case "cross-process clean commit needs no rebase" `Quick
      test_cross_process_clean_commit;
    Alcotest.test_case "cross-process conflicting commit rebases" `Quick
      test_cross_process_conflicting_commit_rebases;
    Alcotest.test_case "rotation is a barrier for older sessions" `Quick
      test_rotation_is_a_barrier_for_older_sessions;
    Alcotest.test_case "appender: incremental appends replay" `Quick
      test_appender_incremental_appends;
    Alcotest.test_case "appender: rotation at the record threshold" `Quick
      test_appender_rotates_at_threshold;
    Alcotest.test_case "appender: refuses a stale since" `Quick
      test_appender_refuses_stale_since;
    Alcotest.test_case "appender: revalidates after a torn append" `Quick
      test_appender_revalidates_after_torn_append;
  ]
