open Structural

let g = Penguin.University.graph
let tree () = Viewobject.Generate.tree Metric.default g ~pivot:"COURSES"

(* The golden shape of Figure 2(b) under the default metric (see
   DESIGN.md): two copies of PEOPLE, one per path around the circuit. *)
let expected_labels =
  [ "COURSES"; "DEPARTMENT"; "PEOPLE"; "FACULTY"; "STAFF"; "STUDENT";
    "GRADES"; "STUDENT#2"; "PEOPLE#2"; "DEPARTMENT#2"; "FACULTY#2"; "STAFF#2";
    "CURRICULUM" ]

let test_golden_labels () =
  Alcotest.(check (list string)) "pre-order labels" expected_labels
    (Expansion.labels (tree ()))

let test_two_people_copies () =
  let t = tree () in
  Alcotest.(check int) "two copies of PEOPLE" 2 (Expansion.copies t "PEOPLE");
  Alcotest.(check int) "one CURRICULUM" 1 (Expansion.copies t "CURRICULUM");
  Alcotest.(check int) "one GRADES" 1 (Expansion.copies t "GRADES")

let test_size_depth () =
  let t = tree () in
  Alcotest.(check int) "size" 13 (Expansion.size t);
  Alcotest.(check int) "depth" 5 (Expansion.depth t)

let test_find_and_path () =
  let t = tree () in
  let n = Option.get (Expansion.find t "PEOPLE#2") in
  Alcotest.(check string) "relation" "PEOPLE" n.Expansion.relation;
  let path = Option.get (Expansion.path_to t "PEOPLE#2") in
  Alcotest.(check (list string)) "root path"
    [ "COURSES"; "GRADES"; "STUDENT#2"; "PEOPLE#2" ]
    (List.map (fun (n : Expansion.node) -> n.Expansion.label) path);
  Alcotest.(check bool) "missing label" true (Expansion.find t "GHOST" = None);
  Alcotest.(check bool) "missing path" true (Expansion.path_to t "GHOST" = None)

let test_no_cycles () =
  (* No relation repeats along any root path. *)
  let rec walk acc (n : Expansion.node) =
    Alcotest.(check bool)
      (Fmt.str "no repeat at %s" n.Expansion.label)
      false
      (List.mem n.Expansion.relation acc);
    List.iter (walk (n.Expansion.relation :: acc)) n.Expansion.children
  in
  walk [] (tree ())

let test_relevance_decreases () =
  let rec walk (n : Expansion.node) =
    List.iter
      (fun (c : Expansion.node) ->
        Alcotest.(check bool)
          (Fmt.str "%s <= %s" c.Expansion.label n.Expansion.label)
          true
          (c.Expansion.relevance <= n.Expansion.relevance +. 1e-9);
        walk c)
      n.Expansion.children
  in
  walk (tree ())

let test_threshold_prunes () =
  let strict = Metric.make ~threshold:0.95 () in
  let t = Viewobject.Generate.tree strict g ~pivot:"COURSES" in
  Alcotest.(check (list string)) "island only" [ "COURSES"; "GRADES" ]
    (Expansion.labels t)

let test_unknown_pivot () =
  Alcotest.check_raises "invalid pivot"
    (Invalid_argument "expand: unknown pivot relation GHOST")
    (fun () -> ignore (Expansion.expand Metric.default g ~pivot:"GHOST"))

let test_to_ascii () =
  let s = Expansion.to_ascii (tree ()) in
  Alcotest.(check bool) "root first" true
    (Relational.Strutil.contains ~sub:"COURSES [1.000]" s);
  Alcotest.(check bool) "edge kinds shown" true
    (Relational.Strutil.contains ~sub:"<-ownership-" s)

let test_hospital_tree () =
  let t =
    Viewobject.Generate.tree Metric.default Penguin.Hospital.graph ~pivot:"PATIENT"
  in
  Alcotest.(check int) "three physician copies" 3 (Expansion.copies t "PHYSICIAN");
  Alcotest.(check bool) "ownership chain present" true
    (Option.is_some (Expansion.find t "RESULT#2"))

let suite =
  [
    Alcotest.test_case "golden labels (Fig 2b)" `Quick test_golden_labels;
    Alcotest.test_case "two PEOPLE copies" `Quick test_two_people_copies;
    Alcotest.test_case "size/depth" `Quick test_size_depth;
    Alcotest.test_case "find/path_to" `Quick test_find_and_path;
    Alcotest.test_case "no cycles" `Quick test_no_cycles;
    Alcotest.test_case "relevance decreases" `Quick test_relevance_decreases;
    Alcotest.test_case "threshold prunes" `Quick test_threshold_prunes;
    Alcotest.test_case "unknown pivot" `Quick test_unknown_pivot;
    Alcotest.test_case "ascii rendering" `Quick test_to_ascii;
    Alcotest.test_case "hospital tree" `Quick test_hospital_tree;
  ]
