open Relational
open Viewobject
open Test_util

let db () = Penguin.University.seeded_db ()
let omega = Penguin.University.omega

let test_values () =
  Alcotest.(check string) "null" "null" (Penguin.Json_export.value Value.Null);
  Alcotest.(check string) "int" "42" (Penguin.Json_export.value (vi 42));
  Alcotest.(check string) "float" "2.5" (Penguin.Json_export.value (vf 2.5));
  Alcotest.(check string) "bool" "true" (Penguin.Json_export.value (vb true));
  Alcotest.(check string) "string" "\"x\"" (Penguin.Json_export.value (vs "x"));
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\nd\""
    (Penguin.Json_export.value (vs "a\"b\\c\nd"));
  Alcotest.(check string) "control chars" "\"\\u0001\""
    (Penguin.Json_export.value (vs "\001"))

let test_instance_shape () =
  let i = Penguin.University.cs345_instance (db ()) in
  let json = Penguin.Json_export.instance omega i in
  (* singleton reference child renders as a nested object *)
  Alcotest.(check bool) "department nested object" true
    (Relational.Strutil.contains ~sub:"\"DEPARTMENT\":{" json);
  (* set-valued ownership child renders as an array *)
  Alcotest.(check bool) "grades array" true
    (Relational.Strutil.contains ~sub:"\"GRADES\":[{" json);
  (* inverse reference child (curriculum) is also set-valued *)
  Alcotest.(check bool) "curriculum array" true
    (Relational.Strutil.contains ~sub:"\"CURRICULUM\":[{" json);
  Alcotest.(check bool) "attributes present" true
    (Relational.Strutil.contains ~sub:"\"course_id\":\"CS345\"" json)

let test_missing_singleton_is_null () =
  (* A course instance without its department: null, not []. *)
  let i = Penguin.University.cs345_instance (db ()) in
  let i = Instance.with_children i "DEPARTMENT" [] in
  let json = Penguin.Json_export.instance omega i in
  Alcotest.(check bool) "null singleton" true
    (Relational.Strutil.contains ~sub:"\"DEPARTMENT\":null" json)

let test_empty_set_is_array () =
  let i = Penguin.University.cs345_instance (db ()) in
  let i = Instance.with_children i "GRADES" [] in
  let json = Penguin.Json_export.instance omega i in
  Alcotest.(check bool) "empty array" true
    (Relational.Strutil.contains ~sub:"\"GRADES\":[]" json)

let test_instances_array () =
  let is = Instantiate.instantiate (db ()) omega in
  let json = Penguin.Json_export.instances omega is in
  Alcotest.(check bool) "array" true
    (String.length json > 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  (* quick well-formedness: balanced braces and brackets *)
  let depth = ref 0 and ok = ref true and in_str = ref false in
  String.iteri
    (fun idx c ->
      if !in_str then (if c = '"' && json.[idx - 1] <> '\\' then in_str := false)
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !depth < 0 then ok := false
        | _ -> ())
    json;
  Alcotest.(check bool) "balanced" true (!ok && !depth = 0)

let test_unbound_attr_is_null () =
  let i =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:(tuple [ "course_id", vs "X1" ])
      ~children:[]
  in
  let json = Penguin.Json_export.instance omega i in
  Alcotest.(check bool) "projected attrs padded with null" true
    (Relational.Strutil.contains ~sub:"\"title\":null" json)

let suite =
  [
    Alcotest.test_case "scalar values" `Quick test_values;
    Alcotest.test_case "instance shape" `Quick test_instance_shape;
    Alcotest.test_case "missing singleton" `Quick test_missing_singleton_is_null;
    Alcotest.test_case "empty set" `Quick test_empty_set_is_array;
    Alcotest.test_case "instances array" `Quick test_instances_array;
    Alcotest.test_case "unbound attr" `Quick test_unbound_attr_is_null;
  ]
