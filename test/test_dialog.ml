open Structural
open Vo_core

let g = Penguin.University.graph
let omega = Penguin.University.omega

let paper_transcript =
  String.concat "\n"
    [
      "Is replacement of tuples in an object instance allowed? <YES>";
      "The key of a tuple of relation COURSES could be modified during \
       replacements. Do you allow this? <YES>";
      "Can we replace the key of the corresponding database tuple? <YES>";
      "The system might need to delete the old database tuple, and replace \
       it with an existing tuple with matching key. Do you allow this? <NO>";
      "Can the relation CURRICULUM be modified during insertions (or \
       replacements)? <YES>";
      "Can a new tuple be inserted? <YES>";
      "Can an existing tuple be modified? <YES>";
      "Can the relation DEPARTMENT be modified during insertions (or \
       replacements)? <YES>";
      "Can a new tuple be inserted? <YES>";
      "Can an existing tuple be modified? <YES>";
      "The key of a tuple of relation GRADES could be modified during \
       replacements. Do you allow this? <YES>";
      "Can we replace the key of the corresponding database tuple? <YES>";
      "The system might need to delete the old database tuple, and replace \
       it with an existing tuple with matching key. Do you allow this? <NO>";
      "Can the relation STUDENT be modified during insertions (or \
       replacements)? <YES>";
      "Can a new tuple be inserted? <YES>";
      "Can an existing tuple be modified? <YES>";
    ]

let replacement_dialog answers =
  Dialog.choose ~ask_insertion:false ~ask_deletion:false g omega
    (Dialog.scripted answers)

let test_paper_transcript_golden () =
  let _spec, events = replacement_dialog Dialog.paper_omega_answers in
  Alcotest.(check string) "Section 6 transcript reproduced" paper_transcript
    (Dialog.transcript events)

let test_paper_transcript_length () =
  let _spec, events = replacement_dialog Dialog.paper_omega_answers in
  Alcotest.(check int) "16 questions" 16 (Dialog.question_count events)

let test_footnote5_pruning () =
  (* Locking DEPARTMENT removes its two follow-up questions. *)
  let _spec, events = replacement_dialog Dialog.restrictive_department_answers in
  Alcotest.(check int) "14 questions" 14 (Dialog.question_count events);
  let texts = List.map (fun (e : Dialog.event) -> e.Dialog.question.Dialog.id) events in
  Alcotest.(check bool) "modifiable asked" true
    (List.mem "mod.DEPARTMENT.modifiable" texts);
  Alcotest.(check bool) "insert follow-up pruned" false
    (List.mem "mod.DEPARTMENT.insert" texts);
  Alcotest.(check bool) "modify follow-up pruned" false
    (List.mem "mod.DEPARTMENT.modify" texts)

let test_replacement_denied_prunes_everything () =
  (* Insertions remain in scope, so the modification questions survive,
     but every island key question disappears. *)
  let _spec, events = replacement_dialog [ "replacement.allowed", Dialog.No ] in
  Alcotest.(check int) "1 + 3 outside relations x 3" 10
    (Dialog.question_count events);
  Alcotest.(check bool) "no key questions" true
    (List.for_all
       (fun (e : Dialog.event) ->
         not
           (Relational.Strutil.contains ~sub:"key" e.Dialog.question.Dialog.id))
       events);
  (* With insertion also denied, everything is pruned. *)
  let _spec, events2 =
    Dialog.choose ~ask_deletion:false g omega
      (Dialog.scripted
         [ "insertion.allowed", Dialog.No; "replacement.allowed", Dialog.No ])
  in
  Alcotest.(check int) "two questions only" 2 (Dialog.question_count events2)

let test_key_question_chain () =
  (* vo-change NO prunes the two db-level key questions per relation. *)
  let answers =
    ("key.COURSES.vo_change", Dialog.No)
    :: List.remove_assoc "key.COURSES.vo_change" Dialog.paper_omega_answers
  in
  let spec, events = replacement_dialog answers in
  let ids = List.map (fun (e : Dialog.event) -> e.Dialog.question.Dialog.id) events in
  Alcotest.(check bool) "db question pruned" false
    (List.mem "key.COURSES.db_replace" ids);
  let kp = Translator_spec.key_policy_for spec "COURSES" in
  Alcotest.(check bool) "no key change" false kp.Translator_spec.allow_vo_key_change

let test_spec_from_paper_answers () =
  let spec, _ = replacement_dialog Dialog.paper_omega_answers in
  Alcotest.(check bool) "replacement on" true spec.Translator_spec.allow_replacement;
  let kc = Translator_spec.key_policy_for spec "COURSES" in
  Alcotest.(check bool) "vo key" true kc.Translator_spec.allow_vo_key_change;
  Alcotest.(check bool) "db key" true kc.Translator_spec.allow_db_key_replace;
  Alcotest.(check bool) "merge denied" false kc.Translator_spec.allow_merge_with_existing;
  let md = Translator_spec.modification_policy_for spec "DEPARTMENT" in
  Alcotest.(check bool) "dept modifiable" true md.Translator_spec.modifiable;
  Alcotest.(check bool) "dept insert" true md.Translator_spec.allow_insert;
  (* Relations outside the object fall back to the permissive default so
     that global validation can insert the Section 5.2 dependency
     tuples. *)
  let unknown = Translator_spec.modification_policy_for spec "PEOPLE" in
  Alcotest.(check bool) "unlisted relation permits the dependency stubs" true
    unknown.Translator_spec.modifiable

let test_deletion_section () =
  let spec, events =
    Dialog.choose ~ask_insertion:false g omega (Dialog.scripted ~default:Dialog.Yes [])
  in
  Alcotest.(check bool) "deletion allowed" true spec.Translator_spec.allow_deletion;
  (* the CURRICULUM->COURSES reference gets a question, answered yes ->
     delete-referencing *)
  let conn =
    List.find
      (fun (c : Connection.t) -> c.Connection.source = "CURRICULUM")
      (Schema_graph.connections g)
  in
  (match Translator_spec.reference_action_for spec conn with
  | Integrity.Delete_referencing -> ()
  | _ -> Alcotest.fail "expected Delete_referencing");
  Alcotest.(check bool) "asked about the reference" true
    (List.exists
       (fun (e : Dialog.event) ->
         Relational.Strutil.contains ~sub:"CURRICULUM" e.Dialog.question.Dialog.text)
       events)

let test_deletion_nullify_not_offered_on_key () =
  (* Refusing to delete CURRICULUM referencing tuples cannot fall back to
     nullify (course_id is in its key): action becomes Restrict and no
     nullify question is asked. *)
  let conn =
    List.find
      (fun (c : Connection.t) -> c.Connection.source = "CURRICULUM")
      (Schema_graph.connections g)
  in
  let cid = Connection.id conn in
  let spec, events =
    Dialog.choose ~ask_insertion:false g omega
      (Dialog.scripted [ Fmt.str "ref.%s.delete" cid, Dialog.No ])
  in
  let ids = List.map (fun (e : Dialog.event) -> e.Dialog.question.Dialog.id) events in
  Alcotest.(check bool) "no nullify question" false
    (List.mem (Fmt.str "ref.%s.nullify" cid) ids);
  match Translator_spec.reference_action_for spec conn with
  | Integrity.Restrict -> ()
  | _ -> Alcotest.fail "expected Restrict"

let test_deletion_nullify_offered_on_nonkey () =
  (* Hospital: APPOINTMENT.mrn is nonkey, so nullify is offered. *)
  let hg = Penguin.Hospital.graph in
  let pr = Penguin.Hospital.patient_record in
  let conn =
    List.find
      (fun (c : Connection.t) ->
        c.Connection.source = "APPOINTMENT" && c.Connection.target = "PATIENT")
      (Schema_graph.connections hg)
  in
  let cid = Connection.id conn in
  let spec, _ =
    Dialog.choose ~ask_insertion:false hg pr
      (Dialog.scripted
         [ Fmt.str "ref.%s.delete" cid, Dialog.No;
           Fmt.str "ref.%s.nullify" cid, Dialog.Yes ])
  in
  match Translator_spec.reference_action_for spec conn with
  | Integrity.Nullify -> ()
  | _ -> Alcotest.fail "expected Nullify"

let test_insertion_section () =
  let spec, events =
    Dialog.choose ~ask_deletion:false g omega
      (Dialog.scripted [ "insertion.allowed", Dialog.No ])
  in
  Alcotest.(check bool) "insertion denied" false spec.Translator_spec.allow_insertion;
  Alcotest.(check bool) "asked" true
    (List.exists
       (fun (e : Dialog.event) -> e.Dialog.question.Dialog.id = "insertion.allowed")
       events)

let test_interactive_channel () =
  (* the interactive answerer reads y/n lines; junk lines are re-asked *)
  let path = Filename.temp_file "penguin_dialog" ".txt" in
  let oc = open_out path in
  output_string oc "maybe\ny\nN\nYES\nno\n";
  close_out oc;
  let ic = open_in path in
  let devnull = open_out Filename.null in
  let answerer = Dialog.interactive ic devnull in
  let q text = { Dialog.id = "x"; text } in
  Alcotest.(check bool) "junk then yes" true (answerer (q "q1") = Dialog.Yes);
  Alcotest.(check bool) "n" true (answerer (q "q2") = Dialog.No);
  Alcotest.(check bool) "YES" true (answerer (q "q3") = Dialog.Yes);
  Alcotest.(check bool) "no" true (answerer (q "q4") = Dialog.No);
  close_in ic;
  close_out devnull;
  Sys.remove path

let test_all_no () =
  let spec, _ =
    Dialog.choose g omega Dialog.all_no
  in
  Alcotest.(check bool) "nothing allowed" false
    (spec.Translator_spec.allow_insertion || spec.Translator_spec.allow_deletion
    || spec.Translator_spec.allow_replacement)

let suite =
  [
    Alcotest.test_case "paper transcript golden" `Quick test_paper_transcript_golden;
    Alcotest.test_case "paper transcript length" `Quick test_paper_transcript_length;
    Alcotest.test_case "footnote 5 pruning" `Quick test_footnote5_pruning;
    Alcotest.test_case "replacement denied prunes" `Quick test_replacement_denied_prunes_everything;
    Alcotest.test_case "key question chain" `Quick test_key_question_chain;
    Alcotest.test_case "spec from paper answers" `Quick test_spec_from_paper_answers;
    Alcotest.test_case "deletion section" `Quick test_deletion_section;
    Alcotest.test_case "nullify not offered on key" `Quick test_deletion_nullify_not_offered_on_key;
    Alcotest.test_case "nullify offered on nonkey" `Quick test_deletion_nullify_offered_on_nonkey;
    Alcotest.test_case "insertion section" `Quick test_insertion_section;
    Alcotest.test_case "interactive channel" `Quick test_interactive_channel;
    Alcotest.test_case "all no" `Quick test_all_no;
  ]
