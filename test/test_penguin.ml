open Relational
open Viewobject
open Test_util

let test_workspace_sql () =
  let ws = Penguin.Workspace.create Penguin.University.graph in
  let ws, answers =
    check_ok
      (Penguin.Workspace.run_sql ws
         "INSERT INTO DEPARTMENT VALUES ('Physics', 'Varian', 1000000); \
          SELECT dept_name FROM DEPARTMENT;")
  in
  Alcotest.(check int) "two answers" 2 (List.length answers);
  (match List.nth answers 1 with
  | Sql.Rows rs -> Alcotest.(check int) "one dept" 1 (List.length rs.Algebra.rows)
  | _ -> Alcotest.fail "expected rows");
  Alcotest.(check int) "db advanced" 1 (Database.total_tuples ws.Penguin.Workspace.db)

let test_define_object () =
  let ws = Penguin.University.workspace () in
  let ws =
    check_ok
      (Penguin.Workspace.define_object ws ~name:"course_grades" ~pivot:"COURSES"
         ~keep:[ "COURSES", []; "GRADES", [ "pid"; "grade" ] ])
  in
  let vo = check_ok (Penguin.Workspace.find_object ws "course_grades") in
  Alcotest.(check int) "two nodes" 2 (Definition.complexity vo);
  (* default translator installed *)
  let spec = check_ok (Penguin.Workspace.translator_of ws "course_grades") in
  Alcotest.(check bool) "permissive default" true
    spec.Vo_core.Translator_spec.allow_replacement

let test_define_full_object () =
  let ws = Penguin.University.workspace () in
  let ws = check_ok (Penguin.Workspace.define_full_object ws ~name:"full" ~pivot:"COURSES") in
  let vo = check_ok (Penguin.Workspace.find_object ws "full") in
  Alcotest.(check int) "13 nodes" 13 (Definition.complexity vo)

let test_unknown_object () =
  let ws = Penguin.University.workspace () in
  ignore (check_err (Penguin.Workspace.find_object ws "nope"));
  ignore (check_err (Penguin.Workspace.translator_of ws "nope"));
  ignore (check_err (Penguin.Workspace.query ws "nope" Vo_query.C_true));
  let _ws, outcome =
    Penguin.Workspace.update ws "nope"
      (Vo_core.Request.delete
         (Instance.leaf ~label:"X" ~relation:"X" Tuple.empty))
  in
  ignore (rollback_reason outcome)

let test_choose_translator () =
  let ws = Penguin.University.workspace () in
  let ws, events =
    check_ok
      (Penguin.Workspace.choose_translator ws "omega" Vo_core.Dialog.all_no)
  in
  Alcotest.(check bool) "questions asked" true
    (Vo_core.Dialog.question_count events > 0);
  let spec = check_ok (Penguin.Workspace.translator_of ws "omega") in
  Alcotest.(check bool) "locked" false spec.Vo_core.Translator_spec.allow_deletion

let test_query () =
  let ws = Penguin.University.workspace () in
  let instances =
    check_ok
      (Penguin.Workspace.query ws "omega"
         (Vo_query.C_node ("COURSES", Predicate.eq_str "level" "grad")))
  in
  Alcotest.(check int) "two grad courses" 2 (List.length instances);
  let all = check_ok (Penguin.Workspace.instances ws "omega") in
  Alcotest.(check int) "four instances" 4 (List.length all)

let test_update_commit_and_rollback () =
  let ws = Penguin.University.workspace () in
  let i = Penguin.University.cs345_instance ws.Penguin.Workspace.db in
  let ws', outcome = Penguin.Workspace.update ws "omega" (Vo_core.Request.delete i) in
  ignore (committed_db outcome);
  Alcotest.(check int) "three courses left" 3
    (Relation.cardinality (Database.relation_exn ws'.Penguin.Workspace.db "COURSES"));
  check_ok (Penguin.Workspace.check_consistency ws');
  (* a rejected update leaves the workspace db unchanged *)
  let ws'' =
    Penguin.Workspace.set_translator ws' "omega"
      { Penguin.University.omega_translator with
        Vo_core.Translator_spec.allow_deletion = false }
  in
  let i2 =
    List.hd (check_ok (Penguin.Workspace.instances ws'' "omega"))
  in
  let ws3, outcome2 = Penguin.Workspace.update ws'' "omega" (Vo_core.Request.delete i2) in
  ignore (rollback_reason outcome2);
  Alcotest.(check bool) "db unchanged" true
    (Database.equal ws3.Penguin.Workspace.db ws''.Penguin.Workspace.db)

let test_university_workspace_defaults () =
  let ws = Penguin.University.workspace () in
  Alcotest.(check (list string)) "objects installed" [ "omega"; "omega_prime" ]
    (List.map fst ws.Penguin.Workspace.objects);
  check_ok (Penguin.Workspace.check_consistency ws)

let test_hospital_workspace () =
  let ws = Penguin.Hospital.workspace () in
  check_ok (Penguin.Workspace.check_consistency ws);
  let records = check_ok (Penguin.Workspace.instances ws "patient_record") in
  Alcotest.(check int) "three patients" 3 (List.length records);
  (* reference data: physicians cannot be created through the object *)
  let i = Penguin.Hospital.patient_instance ws.Penguin.Workspace.db 7003 in
  let bad =
    check_ok
      (Vo_core.Request.modify_component i ~label:"PHYSICIAN"
         ~at:(tuple [ "phys_id", vi 100 ])
         ~f:(fun _ ->
           tuple [ "phys_id", vi 999; "name", vs "Dr. New"; "specialty", vs "X" ]))
  in
  let _ws, outcome =
    Penguin.Workspace.update ws "patient_record"
      (Vo_core.Request.replace ~old_instance:i ~new_instance:bad)
  in
  let reason = rollback_reason outcome in
  Alcotest.(check bool) "physician locked" true
    (Relational.Strutil.contains ~sub:"PHYSICIAN" reason)

let test_hospital_new_visit () =
  let ws = Penguin.Hospital.workspace () in
  let i = Penguin.Hospital.patient_instance ws.Penguin.Workspace.db 7003 in
  let new_visit =
    Instance.make ~label:Penguin.Hospital.visit_label ~relation:"VISIT"
      ~tuple:(tuple [ "visit_no", vi 2; "vdate", vs "1991-03-03"; "reason", vs "follow-up" ])
      ~children:
        [ Penguin.Hospital.orders_label,
          [ Instance.make ~label:Penguin.Hospital.orders_label ~relation:"ORDERS"
              ~tuple:(tuple [ "order_no", vi 1; "drug", vs "iron"; "dose", vi 10;
                              "prescriber", vi 100 ])
              ~children:
                [ Penguin.Hospital.prescriber_label,
                  [ Instance.leaf ~label:Penguin.Hospital.prescriber_label
                      ~relation:"PHYSICIAN"
                      (tuple [ "phys_id", vi 100; "name", vs "Dr. House" ]) ] ] ] ]
  in
  let req =
    check_ok
      (Vo_core.Request.partial_attach i ~parent_label:"PATIENT"
         ~at:(tuple [ "mrn", vi 7003 ]) ~child:new_visit)
  in
  let ws', outcome = Penguin.Workspace.update ws "patient_record" req in
  ignore (committed_db outcome);
  let visits = Database.relation_exn ws'.Penguin.Workspace.db "VISIT" in
  Alcotest.(check bool) "new visit stored" true
    (Relation.mem_key visits [ vi 7003; vi 2 ]);
  check_ok (Penguin.Workspace.check_consistency ws')

let test_cad_workspace () =
  let ws = Penguin.Cad.workspace () in
  check_ok (Penguin.Workspace.check_consistency ws);
  let i = Penguin.Cad.assembly_instance ws.Penguin.Workspace.db "A1" in
  Alcotest.(check int) "three components" 3
    (List.length (Instance.children_of i "COMPONENT"));
  (* rename the assembly: island key replacement cascades to components
     and drawings *)
  let renamed =
    Instance.with_tuple i (Tuple.set i.Instance.tuple "asm_id" (vs "A9"))
  in
  let ws', outcome =
    Penguin.Workspace.update ws "assembly"
      (Vo_core.Request.replace ~old_instance:i ~new_instance:renamed)
  in
  let db' = (committed_db outcome : Database.t) in
  ignore ws';
  Alcotest.(check int) "components moved" 3
    (List.length
       (Relation.select (Predicate.eq_str "asm_id" "A9")
          (Database.relation_exn db' "COMPONENT")));
  Alcotest.(check int) "drawings moved" 2
    (List.length
       (Relation.select (Predicate.eq_str "asm_id" "A9")
          (Database.relation_exn db' "DRAWING")));
  check_ok (Vo_core.Global_validation.check_consistency Penguin.Cad.graph db')

let test_paper_artifacts_render () =
  List.iter
    (fun (label, text) ->
      Alcotest.(check bool) (label ^ " non-empty") true (String.length text > 40))
    (Penguin.Paper.all ())

let suite =
  [
    Alcotest.test_case "workspace sql" `Quick test_workspace_sql;
    Alcotest.test_case "define object" `Quick test_define_object;
    Alcotest.test_case "define full object" `Quick test_define_full_object;
    Alcotest.test_case "unknown object" `Quick test_unknown_object;
    Alcotest.test_case "choose translator" `Quick test_choose_translator;
    Alcotest.test_case "query" `Quick test_query;
    Alcotest.test_case "update commit & rollback" `Quick test_update_commit_and_rollback;
    Alcotest.test_case "university defaults" `Quick test_university_workspace_defaults;
    Alcotest.test_case "hospital locked reference data" `Quick test_hospital_workspace;
    Alcotest.test_case "hospital new visit (partial update)" `Quick test_hospital_new_visit;
    Alcotest.test_case "cad assembly rename" `Quick test_cad_workspace;
    Alcotest.test_case "paper artifacts render" `Quick test_paper_artifacts_render;
  ]
