open Vo_core

let g = Penguin.University.graph
let omega = Penguin.University.omega

let audit spec = Translator_spec.audit g omega spec

let contains_finding subs findings =
  List.exists
    (fun f -> List.for_all (fun sub -> Relational.Strutil.contains ~sub f) subs)
    findings

let test_paper_translator_clean () =
  Alcotest.(check (list string)) "no findings"
    []
    (audit Penguin.University.omega_translator)

let test_restrictive_department_flagged () =
  let findings = audit Penguin.University.omega_translator_restrictive in
  Alcotest.(check bool) "department frozen" true
    (contains_finding [ "DEPARTMENT"; "frozen" ] findings)

let test_forbidden_keys_flagged () =
  let spec =
    Translator_spec.with_island_key Penguin.University.omega_translator
      "GRADES" Translator_spec.forbid_key_changes
  in
  Alcotest.(check bool) "grades key lockout" true
    (contains_finding [ "GRADES"; "key" ] (audit spec))

let test_restrict_reference_flagged () =
  let spec =
    { Penguin.University.omega_translator with
      Translator_spec.reference_actions = [];
      default_reference_action = Structural.Integrity.Restrict }
  in
  Alcotest.(check bool) "curriculum restricts deletions" true
    (contains_finding [ "CURRICULUM"; "Restrict" ] (audit spec))

let test_impossible_nullify_flagged () =
  let conn =
    List.find
      (fun (c : Structural.Connection.t) ->
        c.Structural.Connection.source = "CURRICULUM")
      (Structural.Schema_graph.connections g)
  in
  let spec =
    Translator_spec.with_reference_action Penguin.University.omega_translator
      conn Structural.Integrity.Nullify
  in
  Alcotest.(check bool) "nullify on key attrs impossible" true
    (contains_finding [ "Nullify"; "never succeed" ] (audit spec))

let test_multi_hop_flagged () =
  let spec =
    Translator_spec.permissive ~object_name:"omega_prime"
  in
  let findings =
    Translator_spec.audit g Penguin.University.omega_prime spec
  in
  Alcotest.(check bool) "query-only nodes reported" true
    (contains_finding [ "multi-connection"; "query-only" ] findings)

let test_default_permissive_flags_island_keys () =
  (* the permissive constructor leaves island key policies at their
     deny-all default: audit surfaces that *)
  let spec = Translator_spec.permissive ~object_name:"omega" in
  let findings = audit spec in
  Alcotest.(check bool) "courses flagged" true
    (contains_finding [ "COURSES"; "key policy" ] findings);
  Alcotest.(check bool) "grades flagged" true
    (contains_finding [ "GRADES"; "key policy" ] findings)

let test_no_replacement_silences_key_findings () =
  let spec =
    { (Translator_spec.permissive ~object_name:"omega") with
      Translator_spec.allow_replacement = false }
  in
  Alcotest.(check bool) "no key findings without replacement" true
    (not (contains_finding [ "key policy" ] (audit spec)))

let test_fixture_translators_clean () =
  Alcotest.(check (list string)) "hospital translator clean" []
    (Translator_spec.audit Penguin.Hospital.graph
       Penguin.Hospital.patient_record Penguin.Hospital.record_translator
    |> List.filter (fun f -> not (Relational.Strutil.contains ~sub:"frozen" f)));
  Alcotest.(check (list string)) "cad translator clean" []
    (Translator_spec.audit Penguin.Cad.graph Penguin.Cad.assembly_object
       Penguin.Cad.assembly_translator)

let suite =
  [
    Alcotest.test_case "paper translator clean" `Quick test_paper_translator_clean;
    Alcotest.test_case "restrictive department flagged" `Quick test_restrictive_department_flagged;
    Alcotest.test_case "forbidden keys flagged" `Quick test_forbidden_keys_flagged;
    Alcotest.test_case "restrict reference flagged" `Quick test_restrict_reference_flagged;
    Alcotest.test_case "impossible nullify flagged" `Quick test_impossible_nullify_flagged;
    Alcotest.test_case "multi-hop flagged" `Quick test_multi_hop_flagged;
    Alcotest.test_case "permissive default flags island keys" `Quick test_default_permissive_flags_island_keys;
    Alcotest.test_case "no replacement silences" `Quick test_no_replacement_silences_key_findings;
    Alcotest.test_case "fixture translators" `Quick test_fixture_translators_clean;
  ]
