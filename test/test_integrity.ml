open Relational
open Structural
open Test_util

let g = Penguin.University.graph
let db () = Penguin.University.seeded_db ()

let run_sql db script =
  match Sql.run_script db script with
  | Ok (db, _) -> db
  | Error e -> Alcotest.failf "sql: %s" e

let test_seeded_consistent () =
  Alcotest.(check int) "no violations" 0 (List.length (Integrity.check g (db ())))

let test_orphan_owned () =
  let db = run_sql (db ()) "INSERT INTO GRADES VALUES ('GHOST1', 1, 'F')" in
  let vs = Integrity.check g db in
  Alcotest.(check int) "one violation" 1 (List.length vs);
  let v = List.hd vs in
  Alcotest.(check string) "in GRADES" "GRADES" v.Integrity.relation;
  Alcotest.(check bool) "mentions owner" true
    (Relational.Strutil.contains ~sub:"owning" v.Integrity.message)

let test_dangling_reference () =
  let db = run_sql (db ()) "INSERT INTO CURRICULUM VALUES ('MS CS', 'NOPE', 'core')" in
  (* inserting a curriculum row referencing a ghost course also violates
     nothing else *)
  let vs = Integrity.check g db in
  Alcotest.(check int) "one violation" 1 (List.length vs);
  Alcotest.(check string) "in CURRICULUM" "CURRICULUM"
    (List.hd vs).Integrity.relation

let test_null_reference_ok () =
  (* PEOPLE.dept_name may be null: no violation. *)
  let db = run_sql (db ()) "INSERT INTO PEOPLE (pid, name) VALUES (99, 'Null Dept')" in
  Alcotest.(check int) "no violations" 0 (List.length (Integrity.check g db))

let test_orphan_subset () =
  let db = run_sql (db ()) "INSERT INTO STUDENT VALUES (99, 'BS CS', 1)" in
  let vs = Integrity.check g db in
  Alcotest.(check int) "one violation" 1 (List.length vs);
  Alcotest.(check bool) "mentions general" true
    (Relational.Strutil.contains ~sub:"general" (List.hd vs).Integrity.message)

let cascade ?(policy = fun _ -> Integrity.Delete_referencing) db seeds =
  Integrity.cascade_delete g db ~policy ~seeds

let course t = Option.get (Relation.lookup (Database.relation_exn t "COURSES") [ vs "CS345" ])

let test_cascade_ownership () =
  let d = db () in
  let ops = check_ok (cascade d [ "COURSES", course d ]) in
  (* CS345: 2 grades + 2 curriculum rows + the course itself *)
  Alcotest.(check int) "five ops" 5 (List.length ops);
  let deletes_grades =
    List.filter (fun op -> Op.is_delete op && Op.relation op = "GRADES") ops
  in
  Alcotest.(check int) "grades cascade" 2 (List.length deletes_grades);
  (* applying them leaves a consistent database *)
  let d' = check_ok (Transaction.run_result d ops) in
  Alcotest.(check int) "consistent after" 0 (List.length (Integrity.check g d'))

let test_cascade_restrict () =
  let d = db () in
  let e =
    check_err (cascade ~policy:(fun _ -> Integrity.Restrict) d [ "COURSES", course d ])
  in
  Alcotest.(check bool) "mentions restricted" true
    (Relational.Strutil.contains ~sub:"restricted" e)

let test_cascade_nullify_illegal_on_key () =
  let d = db () in
  let e =
    check_err (cascade ~policy:(fun _ -> Integrity.Nullify) d [ "COURSES", course d ])
  in
  Alcotest.(check bool) "names the key problem" true
    (Relational.Strutil.contains ~sub:"key" e)

let test_cascade_nullify_legal () =
  (* Hospital: appointments reference patients through a nonkey attr. *)
  let hg = Penguin.Hospital.graph in
  let hdb = Penguin.Hospital.seeded_db () in
  let patient =
    Option.get (Relation.lookup (Database.relation_exn hdb "PATIENT") [ vi 7001 ])
  in
  let policy (c : Connection.t) =
    if c.Connection.source = "APPOINTMENT" then Integrity.Nullify
    else Integrity.Delete_referencing
  in
  let ops = check_ok (Integrity.cascade_delete hg hdb ~policy ~seeds:[ "PATIENT", patient ]) in
  let nullifies = List.filter Op.is_replace ops in
  Alcotest.(check int) "two appointments nullified" 2 (List.length nullifies);
  let hdb' = check_ok (Transaction.run_result hdb ops) in
  Alcotest.(check int) "consistent" 0 (List.length (Integrity.check hg hdb'))

let test_cascade_depth () =
  (* Hospital ownership chain PATIENT -> VISIT -> ORDERS -> RESULT. *)
  let hg = Penguin.Hospital.graph in
  let hdb = Penguin.Hospital.seeded_db () in
  let patient =
    Option.get (Relation.lookup (Database.relation_exn hdb "PATIENT") [ vi 7001 ])
  in
  let ops =
    check_ok
      (Integrity.cascade_delete hg hdb
         ~policy:(fun _ -> Integrity.Nullify)
         ~seeds:[ "PATIENT", patient ])
  in
  let deleted rel = List.length (List.filter (fun o -> Op.is_delete o && Op.relation o = rel) ops) in
  Alcotest.(check int) "visits" 2 (deleted "VISIT");
  Alcotest.(check int) "orders" 3 (deleted "ORDERS");
  Alcotest.(check int) "results" 2 (deleted "RESULT");
  Alcotest.(check int) "patient" 1 (deleted "PATIENT")

let test_missing_dependencies () =
  let d = db () in
  (* A new grades tuple for a ghost course and ghost student. *)
  let t = tuple [ "course_id", vs "GHOST"; "pid", vi 77; "grade", vs "A" ] in
  let missing = Integrity.missing_dependencies g d "GRADES" t in
  Alcotest.(check int) "two dependencies" 2 (List.length missing);
  let rels =
    List.sort String.compare
      (List.map
         (fun ((c : Connection.t), _) ->
           if c.Connection.target = "GRADES" then c.Connection.source
           else c.Connection.target)
         missing)
  in
  Alcotest.(check (list string)) "courses and student" [ "COURSES"; "STUDENT" ] rels;
  (* existing course and student: no dependencies *)
  let t2 = tuple [ "course_id", vs "CS345"; "pid", vi 1; "grade", vs "A" ] in
  Alcotest.(check int) "none" 0
    (List.length (Integrity.missing_dependencies g d "GRADES" t2));
  (* null reference: no dependency *)
  let t3 = tuple [ "pid", vi 50; "name", vs "n" ] in
  Alcotest.(check int) "null ref ok" 0
    (List.length (Integrity.missing_dependencies g d "PEOPLE" t3))

let test_key_replacement_fixups () =
  let d = db () in
  let old_tuple = course d in
  let new_tuple = Tuple.set old_tuple "course_id" (vs "CS999") in
  let ops =
    Integrity.key_replacement_fixups g d ~relation:"COURSES" ~old_tuple
      ~new_tuple ~exclude:(fun _ -> false)
  in
  (* 2 grades rewritten (ownership) + 2 curriculum rows (reference) *)
  Alcotest.(check int) "four fixups" 4 (List.length ops);
  List.iter
    (fun op ->
      match op with
      | Op.Replace (_, _, t) ->
          Alcotest.check value_testable "new key propagated" (vs "CS999")
            (Tuple.get t "course_id")
      | _ -> Alcotest.fail "expected replaces")
    ops

let test_key_replacement_exclude () =
  let d = db () in
  let old_tuple = course d in
  let new_tuple = Tuple.set old_tuple "course_id" (vs "CS999") in
  let ops =
    Integrity.key_replacement_fixups g d ~relation:"COURSES" ~old_tuple
      ~new_tuple ~exclude:(fun r -> r = "GRADES")
  in
  Alcotest.(check int) "only curriculum" 2 (List.length ops);
  List.iter
    (fun op -> Alcotest.(check string) "curriculum" "CURRICULUM" (Op.relation op))
    ops

let test_key_replacement_no_change () =
  let d = db () in
  let t = course d in
  Alcotest.(check int) "no ops when key unchanged" 0
    (List.length
       (Integrity.key_replacement_fixups g d ~relation:"COURSES" ~old_tuple:t
          ~new_tuple:(Tuple.set t "title" (vs "Databases II"))
          ~exclude:(fun _ -> false)))

let suite =
  [
    Alcotest.test_case "seeded db consistent" `Quick test_seeded_consistent;
    Alcotest.test_case "orphan owned tuple" `Quick test_orphan_owned;
    Alcotest.test_case "dangling reference" `Quick test_dangling_reference;
    Alcotest.test_case "null reference ok" `Quick test_null_reference_ok;
    Alcotest.test_case "orphan subset tuple" `Quick test_orphan_subset;
    Alcotest.test_case "cascade ownership" `Quick test_cascade_ownership;
    Alcotest.test_case "cascade restrict" `Quick test_cascade_restrict;
    Alcotest.test_case "nullify illegal on key" `Quick test_cascade_nullify_illegal_on_key;
    Alcotest.test_case "nullify legal on nonkey" `Quick test_cascade_nullify_legal;
    Alcotest.test_case "cascade depth" `Quick test_cascade_depth;
    Alcotest.test_case "missing dependencies" `Quick test_missing_dependencies;
    Alcotest.test_case "key replacement fixups" `Quick test_key_replacement_fixups;
    Alcotest.test_case "key replacement exclude" `Quick test_key_replacement_exclude;
    Alcotest.test_case "key replacement no change" `Quick test_key_replacement_no_change;
  ]
