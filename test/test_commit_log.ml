(* Commit_log truncation edges: what entries_since / footprint_since
   report exactly at the truncation boundary, after of_version, and
   across interleaved barriers (the synthetic-barrier prefix contract),
   plus the dense-version contract of append_entry. *)
open Relational
open Test_util

let delta_on ~rel ~key =
  Delta.add Delta.empty ~rel ~key (Tuple.make [ "k", List.hd key ])

let is_barrier (e : Penguin.Commit_log.entry) =
  match e.Penguin.Commit_log.change with
  | Penguin.Commit_log.Barrier _ -> true
  | Penguin.Commit_log.Delta _ -> false

let versions es = List.map (fun e -> e.Penguin.Commit_log.version) es

let test_of_version_boundary () =
  let log = Penguin.Commit_log.of_version 5 in
  Alcotest.(check int) "version" 5 (Penguin.Commit_log.version log);
  Alcotest.(check int) "truncated" 5 (Penguin.Commit_log.truncated log);
  (* Exactly at the truncation boundary: the full (empty) suffix is
     held, so no synthetic barrier. *)
  Alcotest.(check int) "at boundary: no entries" 0
    (List.length (Penguin.Commit_log.entries_since log 5));
  Alcotest.(check bool) "at boundary: footprint known" true
    (Penguin.Commit_log.footprint_since log 5 <> None);
  (* One below: history is truncated, a synthetic barrier stands in. *)
  (match Penguin.Commit_log.entries_since log 4 with
  | [ e ] ->
      Alcotest.(check bool) "synthetic barrier" true (is_barrier e);
      Alcotest.(check int) "barrier carries truncation version" 5
        e.Penguin.Commit_log.version
  | es -> Alcotest.failf "expected 1 synthetic entry, got %d" (List.length es));
  Alcotest.(check bool) "below boundary: footprint unknown" true
    (Penguin.Commit_log.footprint_since log 4 = None);
  (* Far below behaves the same. *)
  Alcotest.(check bool) "far below: footprint unknown" true
    (Penguin.Commit_log.footprint_since log 0 = None)

let test_entries_after_of_version () =
  let log = Penguin.Commit_log.of_version 5 in
  let log = Penguin.Commit_log.append log ~delta:(delta_on ~rel:"R" ~key:[ vi 1 ]) ~kind:"a" in
  let log = Penguin.Commit_log.append log ~delta:(delta_on ~rel:"R" ~key:[ vi 2 ]) ~kind:"b" in
  Alcotest.(check (list int)) "since boundary: both, oldest first" [ 6; 7 ]
    (versions (Penguin.Commit_log.entries_since log 5));
  Alcotest.(check (list int)) "since 6: newest only" [ 7 ]
    (versions (Penguin.Commit_log.entries_since log 6));
  Alcotest.(check (list int)) "since head: none" []
    (versions (Penguin.Commit_log.entries_since log 7));
  (* Below the boundary the synthetic barrier precedes the real entries. *)
  (match Penguin.Commit_log.entries_since log 3 with
  | b :: rest ->
      Alcotest.(check bool) "prefix is a barrier" true (is_barrier b);
      Alcotest.(check (list int)) "then the held entries" [ 6; 7 ] (versions rest)
  | [] -> Alcotest.fail "expected entries");
  Alcotest.(check bool) "footprint unknown below boundary" true
    (Penguin.Commit_log.footprint_since log 3 = None);
  (* At or above the boundary the footprint is the union of the deltas. *)
  match Penguin.Commit_log.footprint_since log 5 with
  | None -> Alcotest.fail "footprint should be known at the boundary"
  | Some fp ->
      Alcotest.(check int) "two relations' worth of writes" 2
        (List.length (List.concat_map snd (Delta.footprint_writes fp)))

let test_interleaved_barrier () =
  let log = Penguin.Commit_log.empty in
  let log = Penguin.Commit_log.append log ~delta:(delta_on ~rel:"R" ~key:[ vi 1 ]) ~kind:"a" in
  let log = Penguin.Commit_log.barrier log "sql script" in
  let log = Penguin.Commit_log.append log ~delta:(delta_on ~rel:"R" ~key:[ vi 2 ]) ~kind:"b" in
  (* Footprint across the barrier is unknowable; after it, known. *)
  Alcotest.(check bool) "across barrier: unknown" true
    (Penguin.Commit_log.footprint_since log 0 = None);
  Alcotest.(check bool) "from barrier on: unknown (barrier included)" true
    (Penguin.Commit_log.footprint_since log 1 = None);
  Alcotest.(check bool) "after barrier: known" true
    (Penguin.Commit_log.footprint_since log 2 <> None);
  Alcotest.(check (list int)) "entries keep order around the barrier"
    [ 1; 2; 3 ]
    (versions (Penguin.Commit_log.entries_since log 0))

let test_append_entry_density () =
  let log = Penguin.Commit_log.of_version 2 in
  let e v =
    {
      Penguin.Commit_log.version = v;
      kind = "replayed";
      change = Penguin.Commit_log.Delta (delta_on ~rel:"R" ~key:[ vi v ]);
    }
  in
  let log = check_ok (Penguin.Commit_log.append_entry log (e 3)) in
  Alcotest.(check int) "extended" 3 (Penguin.Commit_log.version log);
  check_err_contains ~sub:"cannot extend"
    (Penguin.Commit_log.append_entry log (e 5));
  check_err_contains ~sub:"cannot extend"
    (Penguin.Commit_log.append_entry log (e 3));
  let log = check_ok (Penguin.Commit_log.append_entry log (e 4)) in
  Alcotest.(check (list int)) "replayed entries line up" [ 3; 4 ]
    (versions (Penguin.Commit_log.entries_since log 2))

let suite =
  [
    Alcotest.test_case "of_version boundary" `Quick test_of_version_boundary;
    Alcotest.test_case "entries after of_version" `Quick
      test_entries_after_of_version;
    Alcotest.test_case "interleaved barrier" `Quick test_interleaved_barrier;
    Alcotest.test_case "append_entry requires dense versions" `Quick
      test_append_entry_density;
  ]
