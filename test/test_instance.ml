open Relational
open Viewobject
open Test_util

let omega = Penguin.University.omega
let db () = Penguin.University.seeded_db ()
let cs345 () = Penguin.University.cs345_instance (db ())

let test_accessors () =
  let i = cs345 () in
  Alcotest.(check string) "label" "COURSES" i.Instance.label;
  Alcotest.(check int) "grades children" 2
    (List.length (Instance.children_of i "GRADES"));
  Alcotest.(check int) "absent child label" 0
    (List.length (Instance.children_of i "GHOST"));
  Alcotest.(check int) "nodes" 8 (Instance.count_nodes i)

let test_flatten () =
  let flat = Instance.flatten (cs345 ()) in
  Alcotest.(check int) "eight nodes" 8 (List.length flat);
  Alcotest.(check string) "pre-order starts at pivot" "COURSES"
    (fst (List.hd flat));
  let labels = List.map fst flat in
  Alcotest.(check (list string)) "order"
    [ "COURSES"; "DEPARTMENT"; "GRADES"; "STUDENT#2"; "GRADES"; "STUDENT#2";
      "CURRICULUM"; "CURRICULUM" ]
    labels

let test_with_children_tuple () =
  let i = cs345 () in
  let i2 = Instance.with_children i "GRADES" [] in
  Alcotest.(check int) "emptied" 0 (List.length (Instance.children_of i2 "GRADES"));
  let i3 = Instance.with_tuple i (tuple [ "course_id", vs "X1" ]) in
  Alcotest.check value_testable "tuple swapped" (vs "X1")
    (Tuple.get i3.Instance.tuple "course_id");
  let leaf = Instance.leaf ~label:"NEW" ~relation:"R" Tuple.empty in
  let i4 = Instance.with_children i "NEWKIDS" [ leaf ] in
  Alcotest.(check int) "appended child label" 1
    (List.length (Instance.children_of i4 "NEWKIDS"))

let test_equal () =
  Alcotest.(check bool) "self equal" true (Instance.equal (cs345 ()) (cs345 ()));
  let other = Instance.with_tuple (cs345 ()) Tuple.empty in
  Alcotest.(check bool) "different" false (Instance.equal (cs345 ()) other)

let test_conforms_ok () =
  check_ok (Instance.conforms omega (cs345 ()))

let test_conforms_bad_label () =
  let i = { (cs345 ()) with Instance.label = "WRONG" } in
  check_err_contains ~sub:"does not match" (Instance.conforms omega i)

let test_conforms_attr_outside_projection () =
  let i = cs345 () in
  let i = Instance.with_tuple i (Tuple.set i.Instance.tuple "dept_name" (vs "CS")) in
  check_err_contains ~sub:"outside its projection" (Instance.conforms omega i)

let test_conforms_singleton () =
  let i = cs345 () in
  let dept = List.hd (Instance.children_of i "DEPARTMENT") in
  let i = Instance.with_children i "DEPARTMENT" [ dept; dept ] in
  check_err_contains ~sub:"at most one" (Instance.conforms omega i)

let test_to_ascii () =
  let s = Instance.to_ascii (cs345 ()) in
  Alcotest.(check bool) "figure-4 style" true
    (Relational.Strutil.contains ~sub:"(COURSES: course_id=CS345" s);
  Alcotest.(check bool) "nested student" true
    (Relational.Strutil.contains ~sub:"(STUDENT#2:" s)

(* Component editing (partial updates). *)
let test_modify_component () =
  let open Vo_core in
  let i = cs345 () in
  let i' =
    check_ok
      (Request.modify_component i ~label:"GRADES" ~at:(tuple [ "pid", vi 1 ])
         ~f:(fun t -> Tuple.set t "grade" (vs "A+")))
  in
  let grades = Instance.children_of i' "GRADES" in
  let g1 = List.find (fun (s : Instance.t) -> Tuple.get s.Instance.tuple "pid" = vi 1) grades in
  Alcotest.check value_testable "modified" (vs "A+") (Tuple.get g1.Instance.tuple "grade");
  check_err_contains ~sub:"no sub-instance"
    (Request.modify_component i ~label:"GRADES" ~at:(tuple [ "pid", vi 999 ])
       ~f:(fun t -> t));
  check_err_contains ~sub:"be more specific"
    (Request.modify_component i ~label:"GRADES" ~at:Tuple.empty ~f:(fun t -> t))

let test_detach_component () =
  let open Vo_core in
  let i = cs345 () in
  let i' =
    check_ok (Request.detach_component i ~label:"GRADES" ~at:(tuple [ "pid", vi 2 ]))
  in
  Alcotest.(check int) "one grade left" 1
    (List.length (Instance.children_of i' "GRADES"));
  check_err_contains ~sub:"root"
    (Request.detach_component i ~label:"COURSES"
       ~at:(tuple [ "course_id", vs "CS345" ]))

let test_attach_component () =
  let open Vo_core in
  let i = cs345 () in
  let child =
    Instance.make ~label:"GRADES" ~relation:"GRADES"
      ~tuple:(tuple [ "pid", vi 5; "grade", vs "B" ])
      ~children:
        [ "STUDENT#2",
          [ Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
              (tuple [ "pid", vi 5; "degree_program", vs "PhD CS"; "year", vi 2 ]) ] ]
  in
  let i' =
    check_ok
      (Request.attach_component i ~parent_label:"COURSES"
         ~at:(tuple [ "course_id", vs "CS345" ])
         ~child)
  in
  Alcotest.(check int) "three grades" 3
    (List.length (Instance.children_of i' "GRADES"));
  check_ok (Instance.conforms omega i')

let test_partial_builders () =
  let open Vo_core in
  let i = cs345 () in
  (match
     check_ok
       (Request.partial_modify i ~label:"GRADES" ~at:(tuple [ "pid", vi 1 ])
          ~f:(fun t -> Tuple.set t "grade" (vs "C")))
   with
  | Request.Replace { old_instance; new_instance } ->
      Alcotest.(check bool) "old kept" true (Instance.equal old_instance i);
      Alcotest.(check bool) "new differs" false (Instance.equal new_instance i)
  | _ -> Alcotest.fail "expected Replace");
  match check_ok (Request.partial_detach i ~label:"CURRICULUM" ~at:(tuple [ "degree", vs "MS CS" ])) with
  | Request.Replace { new_instance; _ } ->
      Alcotest.(check int) "one curriculum left" 1
        (List.length (Instance.children_of new_instance "CURRICULUM"))
  | _ -> Alcotest.fail "expected Replace"

let suite =
  [
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "flatten" `Quick test_flatten;
    Alcotest.test_case "with_children/tuple" `Quick test_with_children_tuple;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "conforms ok" `Quick test_conforms_ok;
    Alcotest.test_case "conforms bad label" `Quick test_conforms_bad_label;
    Alcotest.test_case "conforms projection" `Quick test_conforms_attr_outside_projection;
    Alcotest.test_case "conforms singleton" `Quick test_conforms_singleton;
    Alcotest.test_case "ascii (Fig 4 style)" `Quick test_to_ascii;
    Alcotest.test_case "modify component" `Quick test_modify_component;
    Alcotest.test_case "detach component" `Quick test_detach_component;
    Alcotest.test_case "attach component" `Quick test_attach_component;
    Alcotest.test_case "partial builders" `Quick test_partial_builders;
  ]
