(* Cross-object consistency: several view objects over one database —
   "the view-object model hence supports sharing of the database-resident
   information among diverse applications by providing multiple object
   configurations that map to the same underlying data repository". An
   update through one object is immediately visible through every
   other. *)
open Relational
open Viewobject
open Test_util

let test_update_via_omega_visible_in_omega_prime () =
  let ws = Penguin.University.workspace () in
  let i = Penguin.University.cs345_instance ws.Penguin.Workspace.db in
  (* delete CS345 through omega *)
  let ws', outcome =
    Penguin.Workspace.update ws "omega" (Vo_core.Request.delete i)
  in
  ignore (committed_db outcome);
  let remaining = check_ok (Penguin.Workspace.instances ws' "omega_prime") in
  Alcotest.(check int) "omega' no longer shows CS345" 3 (List.length remaining);
  Alcotest.(check bool) "really gone" true
    (List.for_all
       (fun (i : Instance.t) ->
         not (Value.equal (Tuple.get i.Instance.tuple "course_id") (vs "CS345")))
       remaining)

let test_grade_change_via_omega_changes_omega_prime_students () =
  (* omega' reaches students through GRADES; detaching a grade through
     omega removes that student from the omega' instance *)
  let ws = Penguin.University.workspace () in
  let i = Penguin.University.cs345_instance ws.Penguin.Workspace.db in
  let req =
    check_ok
      (Vo_core.Request.partial_detach i ~label:"GRADES" ~at:(tuple [ "pid", vi 2 ]))
  in
  let ws', outcome = Penguin.Workspace.update ws "omega" req in
  ignore (committed_db outcome);
  let cs345' =
    List.find
      (fun (i : Instance.t) ->
        Value.equal (Tuple.get i.Instance.tuple "course_id") (vs "CS345"))
      (check_ok (Penguin.Workspace.instances ws' "omega_prime"))
  in
  Alcotest.(check int) "one student left through the path" 1
    (List.length
       (Instance.children_of cs345' Penguin.University.student_label))

let test_stale_instance_after_concurrent_update () =
  (* Optimistic concurrency: client A and client B both hold the CS345
     instance; A commits a change; B's subsequent update is rejected as
     stale. *)
  let ws = Penguin.University.workspace () in
  let a_copy = Penguin.University.cs345_instance ws.Penguin.Workspace.db in
  let b_copy = a_copy in
  let a_req =
    check_ok
      (Vo_core.Request.partial_modify a_copy ~label:"COURSES"
         ~at:(tuple [ "course_id", vs "CS345" ])
         ~f:(fun t -> Tuple.set t "units" (vi 5)))
  in
  let ws', outcome = Penguin.Workspace.update ws "omega" a_req in
  ignore (committed_db outcome);
  (* B tries to modify based on the outdated copy *)
  let b_req =
    check_ok
      (Vo_core.Request.partial_modify b_copy ~label:"COURSES"
         ~at:(tuple [ "course_id", vs "CS345" ])
         ~f:(fun t -> Tuple.set t "title" (vs "DBMS")))
  in
  let _ws'', outcome2 = Penguin.Workspace.update ws' "omega" b_req in
  let reason = rollback_reason outcome2 in
  Alcotest.(check bool) "stale detected" true
    (Relational.Strutil.contains ~sub:"stale" reason)

let test_two_objects_same_pivot_coexist () =
  (* Def 3.2: "several objects can be anchored on the same pivot
     relation" — both installed, both queryable, distinct shapes. *)
  let ws = Penguin.University.workspace () in
  let o = check_ok (Penguin.Workspace.find_object ws "omega") in
  let o' = check_ok (Penguin.Workspace.find_object ws "omega_prime") in
  Alcotest.(check string) "same pivot" o.Definition.pivot o'.Definition.pivot;
  Alcotest.(check bool) "different shapes" true
    (Definition.to_ascii o <> Definition.to_ascii o');
  let via_o = check_ok (Penguin.Workspace.oql ws "omega" "course_id = 'EE280'") in
  let via_o' = check_ok (Penguin.Workspace.oql ws "omega_prime" "course_id = 'EE280'") in
  Alcotest.(check int) "both see the course" 2
    (List.length via_o + List.length via_o')

let test_insert_via_omega_queryable_via_omega_prime () =
  let ws = Penguin.University.workspace () in
  let inst =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (tuple
           [ "course_id", vs "CS777"; "title", vs "Query Processing";
             "units", vi 3; "level", vs "grad" ])
      ~children:
        [ "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (tuple [ "dept_name", vs "Computer Science"; "building", vs "Gates" ]) ];
          "GRADES",
          [ Instance.make ~label:"GRADES" ~relation:"GRADES"
              ~tuple:(tuple [ "pid", vi 6; "grade", vs "A" ])
              ~children:
                [ "STUDENT#2",
                  [ Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
                      (tuple [ "pid", vi 6 ]) ] ] ] ]
  in
  let ws', outcome =
    Penguin.Workspace.update ws "omega" (Vo_core.Request.insert inst)
  in
  ignore (committed_db outcome);
  let via_prime =
    check_ok (Penguin.Workspace.oql ws' "omega_prime" "course_id = 'CS777'")
  in
  Alcotest.(check int) "visible through omega'" 1 (List.length via_prime);
  let i' = List.hd via_prime in
  Alcotest.(check int) "student reached through the 2-connection path" 1
    (List.length (Instance.children_of i' Penguin.University.student_label))

let suite =
  [
    Alcotest.test_case "delete via omega, seen by omega'" `Quick
      test_update_via_omega_visible_in_omega_prime;
    Alcotest.test_case "detach via omega, path in omega'" `Quick
      test_grade_change_via_omega_changes_omega_prime_students;
    Alcotest.test_case "stale concurrent instance" `Quick
      test_stale_instance_after_concurrent_update;
    Alcotest.test_case "two objects, one pivot" `Quick
      test_two_objects_same_pivot_coexist;
    Alcotest.test_case "insert via omega, query via omega'" `Quick
      test_insert_via_omega_queryable_via_omega_prime;
  ]
