(* Crash recovery for the sharded store: the Test_recovery harness
   (kill the process at the N-th filesystem primitive — before it, after
   a torn half-write, or just past it) pointed at the sharded commit
   paths, including every per-shard I/O point of the two-phase
   cross-shard protocol. The invariant is strictly stronger than the
   single-store one: the recovered merged state must equal the
   pre-commit or the post-commit state on EVERY shard at once — a
   cross-shard commit is never half-applied, whichever side of the
   prepare/decide/mark sequence the crash lands on. *)
open Relational
open Test_util

let root_in dir = Filename.concat dir "shards"

let make_store dir =
  ignore
    (check_ok_e
       (Penguin.Shard_store.init ~root:(root_in dir)
          (Test_sharded.islands_workspace ~cross:true 2)))

let rm_rf_deep dir =
  let rec go p =
    if Sys.is_directory p then begin
      Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
      try Unix.rmdir p with Unix.Unix_error _ -> ()
    end
    else try Sys.remove p with Sys_error _ -> ()
  in
  if Sys.file_exists dir then go dir

let recover dir =
  let o = check_ok_e (Penguin.Shard_store.open_store ~root:(root_in dir) ()) in
  check_ok ~msg:"recovered state is consistent"
    (Penguin.Workspace.check_consistency o.Penguin.Shard_store.ws);
  o

(* Open the engine, run [f], and always join the lane domains — the
   harness "kills the process" with an exception, not an exit, so the
   pool must not leak a domain per injection point. *)
let with_engine ~io dir f =
  Result.bind (Penguin.Sharded.open_store ~io ~root:(root_in dir) ())
    (fun eng ->
      Fun.protect
        ~finally:(fun () -> Penguin.Sharded.shutdown eng)
        (fun () -> f eng))

let commit_via eng name step =
  let ws = Penguin.Sharded.to_workspace eng in
  let o = Penguin.Sharded.update eng name (step ws) in
  match o.Vo_core.Engine.result with
  | Transaction.Committed _ -> Ok ()
  | Transaction.Rolled_back { reason; _ } -> Error (Penguin.Error.invalid reason)

(* The all-shards-pre-or-all-shards-post property, enumerated over every
   injection point of every flavor (as in Test_recovery, whose harness
   this mirrors for the multi-file layout). *)
let assert_crash_recoverable ?(min_injections = 10) ~setup ~action () =
  let pre, post =
    let dir = temp_dir "shard-crash-ref" in
    setup dir;
    let pre = recover dir in
    check_ok_e (action ~io:Penguin.Fsio.default dir);
    let post = recover dir in
    rm_rf_deep dir;
    (pre, post)
  in
  Alcotest.(check bool) "the action changes the state" false
    (Database.equal pre.Penguin.Shard_store.ws.Penguin.Workspace.db
       post.Penguin.Shard_store.ws.Penguin.Workspace.db);
  let vector (o : Penguin.Shard_store.opened) =
    Array.to_list o.Penguin.Shard_store.versions
  in
  let check_recovered ~ctx dir =
    let o = recover dir in
    let matches st =
      Database.equal o.Penguin.Shard_store.ws.Penguin.Workspace.db
        st.Penguin.Shard_store.ws.Penguin.Workspace.db
      && vector o = vector st
    in
    if not (matches pre || matches post) then
      Alcotest.failf
        "%s: recovered vector %a is neither all-shards-pre %a nor \
         all-shards-post %a"
        ctx
        Fmt.(Dump.list int)
        (vector o)
        Fmt.(Dump.list int)
        (vector pre)
        Fmt.(Dump.list int)
        (vector post)
  in
  let injections = ref 0 in
  List.iter
    (fun flavor ->
      let rec go k =
        if k > 150 then
          Alcotest.fail "fault enumeration did not terminate by fuse 150"
        else begin
          let dir = temp_dir "shard-crash" in
          setup dir;
          let fuse = ref k in
          match action ~io:(Test_recovery.crashing_io ~fuse ~flavor) dir with
          | exception Test_recovery.Crash ->
              incr injections;
              check_recovered
                ~ctx:
                  (Fmt.str "crash %s op %d" (Test_recovery.flavor_name flavor) k)
                dir;
              rm_rf_deep dir;
              go (k + 1)
          | Ok () ->
              check_recovered ~ctx:"completed" dir;
              rm_rf_deep dir
          | Error e ->
              Alcotest.failf "action failed without crashing: %s"
                (Penguin.Error.to_string e)
        end
      in
      go 1)
    [ Test_recovery.Before; Test_recovery.Partial; Test_recovery.After ];
  if !injections < min_injections then
    Alcotest.failf "suspiciously few injection points: %d" !injections

(* A single-participant coordinator commit: one journal record under
   one shard lock — the sharded analogue of the PR 3 append path. *)
let test_crash_single_shard_commit () =
  assert_crash_recoverable ~min_injections:4 ~setup:make_store
    ~action:(fun ~io dir ->
      with_engine ~io dir (fun eng ->
          commit_via eng "isl0" (fun ws -> Test_sharded.sub_flip ws 0)))
    ()

(* The tentpole property: a two-participant 2PC replace (shards 0 and
   1) killed between and inside every prepare/decide/mark write.
   Crashes before the decide recover as all-pre (the prepares are
   presumed aborted); crashes at or past it recover as all-post (the
   decide is the commit point; recovery re-closes unmarked prepares). *)
let test_crash_cross_shard_2pc () =
  assert_crash_recoverable ~setup:make_store
    ~action:(fun ~io dir ->
      with_engine ~io dir (fun eng ->
          commit_via eng "refx0" (fun ws -> Test_sharded.cross_flip ws 0)))
    ()

(* A cross-shard commit over journals that already hold history: the
   replay merge has to interleave earlier singles with the 2PC slices. *)
let test_crash_cross_shard_2pc_with_history () =
  assert_crash_recoverable
    ~setup:(fun dir ->
      make_store dir;
      check_ok_e
        (with_engine ~io:Penguin.Fsio.default dir (fun eng ->
             commit_via eng "isl0" (fun ws -> Test_sharded.sub_flip ws 0))))
    ~action:(fun ~io dir ->
      with_engine ~io dir (fun eng ->
          commit_via eng "refx0" (fun ws -> Test_sharded.cross_flip ws 0)))
    ()

(* Per-shard rotation: a commit followed by persist (snapshot rewrite +
   journal re-initialization on both shards). *)
let test_crash_during_persist () =
  assert_crash_recoverable ~setup:make_store
    ~action:(fun ~io dir ->
      with_engine ~io dir (fun eng ->
          Result.bind
            (commit_via eng "isl0" (fun ws -> Test_sharded.sub_flip ws 0))
            (fun () -> Penguin.Sharded.persist eng)))
    ()

let suite =
  [
    Alcotest.test_case "crash anywhere in a single-shard commit" `Quick
      test_crash_single_shard_commit;
    Alcotest.test_case "crash anywhere in a cross-shard 2PC" `Quick
      test_crash_cross_shard_2pc;
    Alcotest.test_case "crash in a 2PC over journals with history" `Quick
      test_crash_cross_shard_2pc_with_history;
    Alcotest.test_case "crash anywhere during per-shard rotation" `Quick
      test_crash_during_persist;
  ]
