open Relational
open Test_util

let ws () = Penguin.University.workspace ()

let apply ws stmt = check_ok (Penguin.Upql.apply ws ~object_name:"omega" stmt)

let committed outcomes =
  List.filter
    (fun (o : Vo_core.Engine.outcome) -> Option.is_some (Vo_core.Engine.committed o))
    outcomes

let course db id =
  Relation.lookup (Database.relation_exn db "COURSES") [ vs id ]

let test_set_pivot_attr () =
  let ws', outcomes = apply (ws ()) "set units = 4 where course_id = 'CS345'" in
  Alcotest.(check int) "one commit" 1 (List.length (committed outcomes));
  Alcotest.check value_testable "units" (vi 4)
    (Tuple.get (Option.get (course ws'.Penguin.Workspace.db "CS345")) "units")

let test_set_selected_grade () =
  let ws', outcomes =
    apply (ws ()) "set GRADES[pid = 1] grade = 'A+' where course_id = 'CS345'"
  in
  Alcotest.(check int) "one commit" 1 (List.length (committed outcomes));
  let g =
    Option.get
      (Relation.lookup
         (Database.relation_exn ws'.Penguin.Workspace.db "GRADES")
         [ vs "CS345"; vi 1 ])
  in
  Alcotest.check value_testable "grade" (vs "A+") (Tuple.get g "grade")

let test_set_singular_child () =
  (* DEPARTMENT is singular: no selector needed. *)
  let ws', _ =
    apply (ws ()) "set DEPARTMENT.building = 'Allen' where course_id = 'CS345'"
  in
  let d =
    Option.get
      (Relation.lookup
         (Database.relation_exn ws'.Penguin.Workspace.db "DEPARTMENT")
         [ vs "Computer Science" ])
  in
  Alcotest.check value_testable "building" (vs "Allen") (Tuple.get d "building")

let test_set_requires_selector_on_set_valued () =
  let _, outcomes =
    apply (ws ()) "set GRADES.grade = 'F' where course_id = 'CS345'"
  in
  (* two grades match: ambiguous, rejected before any db work *)
  match outcomes with
  | [ o ] ->
      let reason = rollback_reason o in
      Alcotest.(check bool) "mentions ambiguity" true
        (Relational.Strutil.contains ~sub:"be more specific" reason)
  | _ -> Alcotest.fail "expected a single rejected outcome"

let test_ees345_in_upql () =
  (* the paper's Section 6 example, as one statement *)
  let ws', outcomes =
    apply (ws ())
      "set course_id = 'EES345', DEPARTMENT.dept_name = 'Engineering \
       Economic Systems', DEPARTMENT.building = null where course_id = 'CS345'"
  in
  Alcotest.(check int) "committed" 1 (List.length (committed outcomes));
  let db = ws'.Penguin.Workspace.db in
  Alcotest.(check bool) "old gone" true (course db "CS345" = None);
  Alcotest.(check bool) "new there" true (course db "EES345" <> None);
  Alcotest.(check bool) "department inserted" true
    (Relation.mem_key (Database.relation_exn db "DEPARTMENT")
       [ vs "Engineering Economic Systems" ]);
  check_ok (Penguin.Workspace.check_consistency ws')

let test_delete_batch () =
  let ws', outcomes = apply (ws ()) "delete where level = 'undergrad'" in
  Alcotest.(check int) "two deletions" 2 (List.length (committed outcomes));
  Alcotest.(check int) "two courses left" 2
    (Relation.cardinality (Database.relation_exn ws'.Penguin.Workspace.db "COURSES"));
  check_ok (Penguin.Workspace.check_consistency ws')

let test_delete_none () =
  let _, outcomes = apply (ws ()) "delete where course_id = 'GHOST'" in
  Alcotest.(check int) "no outcomes" 0 (List.length outcomes)

let test_detach () =
  let ws', outcomes =
    apply (ws ()) "detach GRADES[pid = 2] where course_id = 'CS345'"
  in
  Alcotest.(check int) "one commit" 1 (List.length (committed outcomes));
  Alcotest.(check bool) "grade gone" false
    (Relation.mem_key
       (Database.relation_exn ws'.Penguin.Workspace.db "GRADES")
       [ vs "CS345"; vi 2 ]);
  Alcotest.(check bool) "other grade stays" true
    (Relation.mem_key
       (Database.relation_exn ws'.Penguin.Workspace.db "GRADES")
       [ vs "CS345"; vi 1 ])

let test_batch_stops_on_rollback () =
  (* renaming every grad course to the same id: the first succeeds, the
     second collides (merge denied by the paper's translator) and the
     batch stops *)
  let ws', outcomes =
    apply (ws ()) "set course_id = 'X1' where level = 'grad'"
  in
  Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
  Alcotest.(check int) "one commit" 1 (List.length (committed outcomes));
  ignore (rollback_reason (List.nth outcomes 1));
  (* the committed rename remains (per-instance transactions) *)
  Alcotest.(check bool) "X1 exists" true
    (course ws'.Penguin.Workspace.db "X1" <> None)

let test_translator_gates_upql () =
  let ws0 = ws () in
  let ws0 =
    Penguin.Workspace.set_translator ws0 "omega"
      Penguin.University.omega_translator_restrictive
  in
  let _, outcomes =
    check_ok
      (Penguin.Upql.apply ws0 ~object_name:"omega"
         "set DEPARTMENT.dept_name = 'Robotics' where course_id = 'CS345'")
  in
  match outcomes with
  | [ o ] ->
      Alcotest.(check bool) "restricted" true
        (Relational.Strutil.contains ~sub:"not allowed" (rollback_reason o))
  | _ -> Alcotest.fail "expected one outcome"

let test_attach () =
  let ws', outcomes =
    apply (ws ()) "attach GRADES (pid = 5, grade = 'B') where course_id = 'CS345'"
  in
  Alcotest.(check int) "one commit" 1 (List.length (committed outcomes));
  let g =
    Option.get
      (Relation.lookup
         (Database.relation_exn ws'.Penguin.Workspace.db "GRADES")
         [ vs "CS345"; vi 5 ])
  in
  Alcotest.check value_testable "grade" (vs "B") (Tuple.get g "grade");
  check_ok (Penguin.Workspace.check_consistency ws')

let test_attach_with_parent_selector () =
  let hws = Penguin.Hospital.workspace () in
  let hws', outcomes =
    check_ok
      (Penguin.Upql.apply hws ~object_name:"patient_record"
         (Fmt.str
            "attach %s (order_no = 9, drug = 'aspirin', dose = 100, \
             prescriber = 101) in %s[visit_no = 1] where mrn = 7001"
            Penguin.Hospital.orders_label Penguin.Hospital.visit_label))
  in
  Alcotest.(check int) "one commit" 1
    (List.length
       (List.filter
          (fun (o : Vo_core.Engine.outcome) ->
            Option.is_some (Vo_core.Engine.committed o))
          outcomes));
  Alcotest.(check bool) "order stored under visit 1" true
    (Relation.mem_key
       (Database.relation_exn hws'.Penguin.Workspace.db "ORDERS")
       [ vi 7001; vi 1; vi 9 ]);
  check_ok (Penguin.Workspace.check_consistency hws')

let test_attach_requires_parent_selector_when_ambiguous () =
  let hws = Penguin.Hospital.workspace () in
  let _, outcomes =
    check_ok
      (Penguin.Upql.apply hws ~object_name:"patient_record"
         (Fmt.str
            "attach %s (order_no = 9, drug = 'aspirin', dose = 100, \
             prescriber = 101) where mrn = 7001"
            Penguin.Hospital.orders_label))
  in
  (* patient 7001 has two visits: the parent occurrence is ambiguous *)
  match outcomes with
  | [ o ] ->
      Alcotest.(check bool) "ambiguous parent" true
        (Relational.Strutil.contains ~sub:"be more specific" (rollback_reason o))
  | _ -> Alcotest.fail "expected one rejected outcome"

let test_attach_errors () =
  let vo = Penguin.University.omega in
  check_err_contains ~sub:"it is the pivot"
    (Penguin.Upql.parse vo "attach COURSES (course_id = 'X') where true");
  check_err_contains ~sub:"does not project"
    (Penguin.Upql.parse vo "attach GRADES (title = 'x') where true");
  check_err_contains ~sub:"the parent of"
    (Penguin.Upql.parse vo
       "attach GRADES (pid = 1, grade = 'A') in DEPARTMENT[dept_name = 'x'] \
        where true")

let test_parse_errors () =
  let vo = Penguin.University.omega in
  check_err_contains ~sub:"delete, set, attach or detach" (Penguin.Upql.parse vo "frob x");
  check_err_contains ~sub:"expected keyword where"
    (Penguin.Upql.parse vo "set units = 4");
  check_err_contains ~sub:"no node" (Penguin.Upql.parse vo "detach GHOST[x = 1] where true");
  check_err_contains ~sub:"does not project"
    (Penguin.Upql.parse vo "set GRADES[pid = 1] title = 'x' where true");
  check_err_contains ~sub:"ambiguous" (Penguin.Upql.parse vo "set pid = 9 where true");
  check_err_contains ~sub:"end of statement"
    (Penguin.Upql.parse vo "delete where true true")

let test_pp_statement () =
  let vo = Penguin.University.omega in
  let stmt = check_ok (Penguin.Upql.parse vo "set units = 4 where level = 'grad'") in
  Alcotest.(check bool) "prints" true
    (String.length (Fmt.str "%a" Penguin.Upql.pp_statement stmt) > 0)

let test_hospital_upql () =
  let ws = Penguin.Hospital.workspace () in
  let ws', outcomes =
    check_ok
      (Penguin.Upql.apply ws ~object_name:"patient_record"
         (Fmt.str "set %s[order_no = 2] dose = 75 where mrn = 7001"
            Penguin.Hospital.orders_label))
  in
  Alcotest.(check int) "one commit" 1
    (List.length
       (List.filter
          (fun (o : Vo_core.Engine.outcome) ->
            Option.is_some (Vo_core.Engine.committed o))
          outcomes));
  let o =
    Option.get
      (Relation.lookup
         (Database.relation_exn ws'.Penguin.Workspace.db "ORDERS")
         [ vi 7001; vi 1; vi 2 ])
  in
  Alcotest.check value_testable "dose" (vi 75) (Tuple.get o "dose")

let suite =
  [
    Alcotest.test_case "set pivot attr" `Quick test_set_pivot_attr;
    Alcotest.test_case "set selected grade" `Quick test_set_selected_grade;
    Alcotest.test_case "set singular child" `Quick test_set_singular_child;
    Alcotest.test_case "selector required" `Quick test_set_requires_selector_on_set_valued;
    Alcotest.test_case "EES345 in upql" `Quick test_ees345_in_upql;
    Alcotest.test_case "delete batch" `Quick test_delete_batch;
    Alcotest.test_case "delete none" `Quick test_delete_none;
    Alcotest.test_case "detach" `Quick test_detach;
    Alcotest.test_case "batch stops on rollback" `Quick test_batch_stops_on_rollback;
    Alcotest.test_case "translator gates" `Quick test_translator_gates_upql;
    Alcotest.test_case "attach" `Quick test_attach;
    Alcotest.test_case "attach with parent selector" `Quick test_attach_with_parent_selector;
    Alcotest.test_case "attach ambiguous parent" `Quick test_attach_requires_parent_selector_when_ambiguous;
    Alcotest.test_case "attach errors" `Quick test_attach_errors;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "pp" `Quick test_pp_statement;
    Alcotest.test_case "hospital" `Quick test_hospital_upql;
  ]
