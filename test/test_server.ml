(* The serving front end: pipelined group commit over a Unix-domain
   socket. Round-trip durability, window batching (one merged
   commit_group + one fsync for many sessions), per-request culprit
   errors, the disconnect-while-parked edge, limiter shedding, breaker
   degraded read-only serving, and wire-level robustness (malformed,
   torn and oversized frames must be answered or dropped per-connection
   without killing the accept loop). *)
open Test_util

module C = Penguin.Client
module S = Penguin.Server
module E = Penguin.Error
module F = Penguin.Fsio

let store_in = Test_recovery.store_in

(* The university fixture plus [courses] disjoint course/student/grade
   triples: concurrent sessions each editing their own course stage
   non-overlapping deltas, so a window batches them conflict-free. *)
let make_bench_store dir courses =
  let ins rel bindings db =
    match Relational.Database.insert db rel (Relational.Tuple.make bindings) with
    | Ok db -> db
    | Error e -> Alcotest.failf "seed %s: %s" rel (Relational.Database.error_to_string e)
  in
  let rec add db i =
    if i > courses then db
    else
      let course = Fmt.str "BENCH%03d" i in
      let pid = 2000 + i in
      db
      |> ins "COURSES"
           [ "course_id", vs course; "title", vs (Fmt.str "Bench %d" i);
             "units", vi 3; "level", vs "grad";
             "dept_name", vs "Computer Science" ]
      |> ins "PEOPLE"
           [ "pid", vi pid; "name", vs (Fmt.str "S%d" i);
             "dept_name", vs "Computer Science" ]
      |> ins "STUDENT"
           [ "pid", vi pid; "degree_program", vs "MS CS"; "year", vi 1 ]
      |> ins "GRADES" [ "course_id", vs course; "pid", vi pid; "grade", vs "A" ]
      |> fun db -> add db (i + 1)
  in
  let ws = Penguin.University.workspace () in
  let ws = { ws with Penguin.Workspace.db = add ws.Penguin.Workspace.db 1 } in
  check_ok_e (Penguin.Store.save_file ws (store_in dir))

let await_sock sock =
  let rec go n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "server socket never appeared"
    else begin
      Unix.sleepf 0.005;
      go (n - 1)
    end
  in
  go 1000

(* Run [f sock] against a server in a sibling domain; returns [f]'s
   result and the server's serving totals after a clean shutdown. *)
let with_server ?io ?config ?limiter ?breaker dir f =
  let sock = Filename.concat dir "serve.sock" in
  let srv =
    Domain.spawn (fun () ->
        S.serve ?io ?config ?limiter ?breaker ~store:(store_in dir) ~sock ())
  in
  let result = Fun.protect ~finally:(fun () -> ()) (fun () ->
      await_sock sock;
      f sock)
  in
  (match C.connect ~sock with
  | Ok c ->
      (* Idempotent: if [f] already shut the server down, the connect or
         the shutdown fails and we fall through to the join. *)
      ignore (C.shutdown c);
      C.close c
  | Error _ -> ());
  let stats = check_ok_e (Domain.join srv) in
  result, stats

let connect sock = check_ok_e (C.connect ~sock)

let grade_stmt ~course ~grade =
  Fmt.str "set GRADES[pid = %d] grade = '%s' where course_id = 'BENCH%03d'"
    (2000 + course) grade course

(* A session round against course [course] through the blocking API. *)
let commit_grade c ~course ~grade =
  let _v = check_ok_e (C.begin_ c) in
  let n = check_ok_e (C.queue c ~object_name:"omega" (grade_stmt ~course ~grade)) in
  Alcotest.(check int) "one staged update" 1 n;
  check_ok_e (C.commit c)

(* --- round-trip durability --------------------------------------------- *)

let test_roundtrip () =
  let dir = temp_dir "server-roundtrip" in
  make_bench_store dir 2;
  let (), stats =
    with_server dir (fun sock ->
        let c = connect sock in
        check_ok_e (C.ping c);
        let v0 = check_ok_e (C.begin_ c) in
        let versions = commit_grade c ~course:1 ~grade:"A+" in
        Alcotest.(check (list int)) "one committed version" [ v0 + 1 ] versions;
        (* The committed edit is readable through the server's cache. *)
        let n, text =
          check_ok_e (C.oql c ~object_name:"omega" "course_id = 'BENCH001'")
        in
        Alcotest.(check int) "one instance" 1 n;
        Alcotest.(check bool) "grade visible through the cache" true
          (Relational.Strutil.contains ~sub:"grade=A+" text);
        C.close c)
  in
  Alcotest.(check int) "one commit acked" 1 stats.S.commits;
  Alcotest.(check int) "one window persisted" 1 stats.S.windows;
  (* Durable: a fresh process replays the journal to the same state. *)
  let ws, _ = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  let cache = Penguin.Workspace.attach_cache ws in
  let instances =
    check_ok (Viewobject.Cache.oql cache "omega" "course_id = 'BENCH001'")
  in
  Alcotest.(check bool) "edit survives reopen" true
    (Relational.Strutil.contains ~sub:"grade=A+"
       (String.concat "" (List.map Viewobject.Instance.to_ascii instances)));
  rm_rf dir

(* --- window batching: one flush for many sessions ---------------------- *)

(* eager_flush off + flush_window = n: the flush fires only once all n
   commits are parked, so the batch boundary is deterministic. *)
let strict_window n =
  { S.default_config with flush_window = n; flush_interval_ns = 60e9;
    eager_flush = false }

let test_window_batches () =
  let dir = temp_dir "server-window" in
  let n = 3 in
  make_bench_store dir n;
  let versions, stats =
    with_server ~config:(strict_window n) dir (fun sock ->
        let conns = Array.init n (fun _ -> connect sock) in
        let v0 = ref 0 in
        Array.iteri
          (fun j c ->
            v0 := max !v0 (check_ok_e (C.begin_ c));
            let queued =
              check_ok_e
                (C.queue c ~object_name:"omega"
                   (grade_stmt ~course:(j + 1) ~grade:"B+"))
            in
            Alcotest.(check int) "staged" 1 queued;
            (* Park without blocking on the ack: the window only flushes
               once every commit has joined it. *)
            check_ok_e (C.send_commit c))
          conns;
        let versions =
          Array.to_list conns
          |> List.concat_map (fun c -> check_ok_e (C.recv_commit c))
        in
        Array.iter C.close conns;
        Alcotest.(check (list int)) "contiguous versions, acked in order"
          (List.init n (fun i -> !v0 + i + 1))
          (List.sort compare versions);
        versions)
  in
  Alcotest.(check int) "all commits acked" n (List.length versions);
  Alcotest.(check int) "n commits, ONE window" n stats.S.commits;
  Alcotest.(check int) "one merged flush for the whole batch" 1
    stats.S.windows;
  rm_rf dir

(* --- conflicting commits in one window: per-request culprits ----------- *)

let test_window_conflict_culprit () =
  let dir = temp_dir "server-conflict" in
  make_bench_store dir 2;
  let (), stats =
    with_server ~config:(strict_window 2) dir (fun sock ->
        let a = connect sock and b = connect sock in
        (* Both sessions edit the SAME grade tuple: staged deltas
           overlap, so the window's plan admits only the first. *)
        List.iter
          (fun (c, grade) ->
            let _ = check_ok_e (C.begin_ c) in
            let _ =
              check_ok_e
                (C.queue c ~object_name:"omega" (grade_stmt ~course:1 ~grade))
            in
            check_ok_e (C.send_commit c))
          [ a, "C+"; b, "D+" ];
        let won = check_ok_e (C.recv_commit a) in
        Alcotest.(check int) "first parked commit lands" 1 (List.length won);
        let e = check_err_e (C.recv_commit b) in
        Alcotest.(check string) "loser gets a typed conflict" "conflict"
          (E.kind e);
        Alcotest.(check bool) "conflict is retryable" true (E.retryable e);
        C.close a;
        C.close b)
  in
  Alcotest.(check int) "only the winner committed" 1 stats.S.commits;
  rm_rf dir

(* --- client disconnect mid-window -------------------------------------- *)

let test_disconnect_while_parked () =
  let dir = temp_dir "server-disconnect" in
  make_bench_store dir 2;
  let (), stats =
    with_server
      ~config:{ (strict_window 2) with flush_interval_ns = 0.05e9 }
      dir
      (fun sock ->
        let a = connect sock in
        let _ = check_ok_e (C.begin_ a) in
        let _ =
          check_ok_e
            (C.queue a ~object_name:"omega" (grade_stmt ~course:1 ~grade:"F"))
        in
        check_ok_e (C.send_commit a);
        (* A's commit is parked; the client vanishes. Give the event
           loop a beat to see the EOF and drop the parked entry. *)
        C.close a;
        Unix.sleepf 0.2;
        (* B's commit still lands — alone, by the age trigger. *)
        let b = connect sock in
        let v0 = check_ok_e (C.begin_ b) in
        let versions = commit_grade b ~course:2 ~grade:"B-" in
        Alcotest.(check (list int)) "rest of the batch lands, A's dropped"
          [ v0 + 1 ] versions;
        C.close b)
  in
  Alcotest.(check int) "only B's commit acked" 1 stats.S.commits;
  (* A's edit must NOT be in the durable state. *)
  let ws, _ = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  let cache = Penguin.Workspace.attach_cache ws in
  let text =
    String.concat ""
      (List.map Viewobject.Instance.to_ascii
         (check_ok (Viewobject.Cache.oql cache "omega" "course_id = 'BENCH001'")))
  in
  Alcotest.(check bool) "dropped commit left no trace" false
    (Relational.Strutil.contains ~sub:"grade=F" text);
  rm_rf dir

(* --- limiter: immediate Busy shed -------------------------------------- *)

let test_limiter_shed () =
  let dir = temp_dir "server-shed" in
  make_bench_store dir 2;
  let limiter = Penguin.Resilience.Limiter.create ~label:"test" ~max_in_flight:1 () in
  let (), _stats =
    with_server ~limiter ~config:(strict_window 16) dir (fun sock ->
        let a = connect sock and b = connect sock in
        let _ = check_ok_e (C.begin_ a) in
        let _ =
          check_ok_e
            (C.queue a ~object_name:"omega" (grade_stmt ~course:1 ~grade:"C"))
        in
        check_ok_e (C.send_commit a);
        (* A holds the only slot. B's commit is shed immediately —
           typed Busy, not a queue or a hang. *)
        let _ = check_ok_e (C.begin_ b) in
        let _ =
          check_ok_e
            (C.queue b ~object_name:"omega" (grade_stmt ~course:2 ~grade:"C"))
        in
        let e = check_err_e (C.commit b) in
        Alcotest.(check string) "shed with typed Busy" "busy" (E.kind e);
        Alcotest.(check bool) "busy is retryable" true (E.retryable e);
        (* Shutdown flushes the held window: A's parked commit still
           lands and is acked before the server stops. *)
        let c = connect sock in
        check_ok_e (C.shutdown c);
        let won = check_ok_e (C.recv_commit a) in
        Alcotest.(check int) "parked commit acked at shutdown flush" 1
          (List.length won);
        C.close a; C.close b; C.close c)
  in
  rm_rf dir

(* --- breaker: degraded read-only serving -------------------------------- *)

let test_breaker_degraded_reads () =
  let dir = temp_dir "server-degraded" in
  make_bench_store dir 2;
  (* Prime the journal with one clean commit so the serve-time open
     finds it initialized, then fail every fsync hard: the first flush
     trips the threshold-1 breaker. *)
  let _ =
    check_ok_e
      (Test_recovery.commit_grade ~io:F.default dir ("CS345", 2) "B+")
  in
  let io = F.Fault.inject ~seed:7 ~rate:1.0 ~kind:F.Fault.Hard ~ops:[ `Sync ] F.default in
  let breaker = Penguin.Resilience.Breaker.create ~label:"test" ~threshold:1 () in
  let (), stats =
    with_server ~io ~breaker dir (fun sock ->
        let c = connect sock in
        let _ = check_ok_e (C.begin_ c) in
        let _ =
          check_ok_e
            (C.queue c ~object_name:"omega" (grade_stmt ~course:1 ~grade:"D"))
        in
        (* First commit reaches the durable path and fails it: typed,
           non-retryable Io — and the breaker trips. *)
        let e = check_err_e (C.commit c) in
        Alcotest.(check string) "durability fault surfaces as Io" "io"
          (E.kind e);
        Alcotest.(check bool) "breaker tripped" true
          (Penguin.Resilience.Breaker.degraded breaker);
        (* Writes are now refused up front with Busy... *)
        let _ = check_ok_e (C.begin_ c) in
        let _ =
          check_ok_e
            (C.queue c ~object_name:"omega" (grade_stmt ~course:1 ~grade:"D"))
        in
        let e = check_err_e (C.commit c) in
        Alcotest.(check string) "degraded mode refuses writes with Busy"
          "busy" (E.kind e);
        (* ...while reads keep serving through the cache. *)
        let n, _ =
          check_ok_e (C.oql c ~object_name:"omega" "course_id = 'BENCH001'")
        in
        Alcotest.(check int) "reads still served degraded" 1 n;
        C.close c)
  in
  Alcotest.(check int) "nothing acked durable" 0 stats.S.commits;
  rm_rf dir

(* --- wire robustness ---------------------------------------------------- *)

let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let write_raw fd s = ignore (Unix.write_substring fd s 0 (String.length s))

(* Read everything until EOF and decode the journal frames. *)
let read_frames fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        drain ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  drain ();
  let frames, _, _ =
    Penguin.Journal.decode_frames (Buffer.contents buf)
  in
  List.map snd frames

let test_corrupt_frame_answered_in_band () =
  let dir = temp_dir "server-corrupt-frame" in
  make_bench_store dir 1;
  let (), _stats =
    with_server dir (fun sock ->
        let fd = raw_connect sock in
        (* A well-framed ping with its last payload byte flipped: the
           CRC fails, the server answers in-band and drops the conn. *)
        let frame = Bytes.of_string (Penguin.Journal.frame "(ping)") in
        let last = Bytes.length frame - 1 in
        Bytes.set frame last (Char.chr (Char.code (Bytes.get frame last) lxor 0xFF));
        write_raw fd (Bytes.to_string frame);
        (match read_frames fd with
        | [ reply ] ->
            Alcotest.(check bool) "in-band corrupt error" true
              (Relational.Strutil.contains ~sub:"(error corrupt" reply)
        | l -> Alcotest.failf "expected one error frame, got %d" (List.length l));
        Unix.close fd;
        (* The accept loop survived: a fresh client still serves. *)
        let c = connect sock in
        check_ok_e (C.ping c);
        C.close c)
  in
  rm_rf dir

let test_oversized_frame_answered_in_band () =
  let dir = temp_dir "server-oversized" in
  make_bench_store dir 1;
  let (), _stats =
    with_server dir (fun sock ->
        let fd = raw_connect sock in
        (* A length prefix past the frame bound: corrupt before any
           payload arrives — answered and dropped, not buffered. *)
        let b = Bytes.create 8 in
        Bytes.set_int32_be b 0 0x7FFFFFFFl;
        Bytes.set_int32_be b 4 0l;
        write_raw fd (Bytes.to_string b);
        (match read_frames fd with
        | [ reply ] ->
            Alcotest.(check bool) "oversized length is corrupt" true
              (Relational.Strutil.contains ~sub:"(error corrupt" reply)
        | l -> Alcotest.failf "expected one error frame, got %d" (List.length l));
        Unix.close fd;
        let c = connect sock in
        check_ok_e (C.ping c);
        C.close c)
  in
  rm_rf dir

let test_malformed_and_torn_requests () =
  let dir = temp_dir "server-malformed" in
  make_bench_store dir 1;
  let (), _stats =
    with_server dir (fun sock ->
        (* A well-framed but meaningless request: typed Invalid in-band,
           and the SAME connection keeps serving. *)
        let fd = raw_connect sock in
        write_raw fd (Penguin.Journal.frame "(bogus request)");
        write_raw fd (Penguin.Journal.frame "(ping)");
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        (match read_frames fd with
        | [ err; pong ] ->
            Alcotest.(check bool) "typed invalid answer" true
              (Relational.Strutil.contains ~sub:"(error invalid" err);
            Alcotest.(check string) "connection survives a bad request"
              "(ok pong)" pong
        | l -> Alcotest.failf "expected two frames, got %d" (List.length l));
        Unix.close fd;
        (* A torn request — half a frame, then the client dies. The
           server drops the connection; the accept loop lives on. *)
        let fd = raw_connect sock in
        let frame = Penguin.Journal.frame "(ping)" in
        write_raw fd (String.sub frame 0 6);
        Unix.close fd;
        let c = connect sock in
        check_ok_e (C.ping c);
        C.close c)
  in
  rm_rf dir

(* --- stats surface ------------------------------------------------------ *)

let test_stats_surface () =
  let dir = temp_dir "server-stats" in
  make_bench_store dir 1;
  let (), _stats =
    with_server dir (fun sock ->
        let c = connect sock in
        let _ = commit_grade c ~course:1 ~grade:"A-" in
        let json = check_ok_e (C.stats c) in
        List.iter
          (fun sub ->
            Alcotest.(check bool) (sub ^ " exported") true
              (Relational.Strutil.contains ~sub json))
          [ "\"server.requests\""; "\"server.commits\""; "\"server.windows\"";
            "\"server.commit_ns\""; "\"p99_ns\"" ];
        C.close c)
  in
  rm_rf dir

let suite =
  [
    Alcotest.test_case "roundtrip: ping, commit, read, durable reopen" `Quick
      test_roundtrip;
    Alcotest.test_case "window: n sessions, one merged flush" `Quick
      test_window_batches;
    Alcotest.test_case "window: overlapping commit is the culprit" `Quick
      test_window_conflict_culprit;
    Alcotest.test_case "window: disconnect while parked drops only that commit"
      `Quick test_disconnect_while_parked;
    Alcotest.test_case "limiter: full admission sheds with Busy" `Quick
      test_limiter_shed;
    Alcotest.test_case "breaker: degraded mode serves reads, refuses writes"
      `Quick test_breaker_degraded_reads;
    Alcotest.test_case "wire: corrupt frame answered in-band" `Quick
      test_corrupt_frame_answered_in_band;
    Alcotest.test_case "wire: oversized frame answered in-band" `Quick
      test_oversized_frame_answered_in_band;
    Alcotest.test_case "wire: malformed and torn requests" `Quick
      test_malformed_and_torn_requests;
    Alcotest.test_case "stats: server.* counters and histograms exported"
      `Quick test_stats_surface;
  ]
