open Relational
open Test_util

let fresh_db () =
  let script =
    {|
    CREATE TABLE emp (id int, name string, dept string, salary int) KEY (id);
    CREATE TABLE dept (dname string, head string) KEY (dname);
    INSERT INTO emp VALUES (1, 'Ada', 'CS', 100);
    INSERT INTO emp VALUES (2, 'Ben', 'CS', 90);
    INSERT INTO emp VALUES (3, 'Cat', 'EE', 80);
    INSERT INTO dept VALUES ('CS', 'Ada');
    INSERT INTO dept VALUES ('EE', 'Cat');
    |}
  in
  let db, _ = check_ok (Sql.run_script Database.empty script) in
  db

let rows db q =
  match check_ok (Sql.run db q) with
  | _, Sql.Rows rs -> rs
  | _ -> Alcotest.fail "expected rows"

let affected db q =
  match check_ok (Sql.run db q) with
  | db', Sql.Affected n -> db', n
  | _ -> Alcotest.fail "expected affected count"

let test_lexer () =
  let toks = check_ok (Sql_lexer.tokenize "SELECT a, b FROM t WHERE x <= 3.5 AND y = 'it''s';") in
  Alcotest.(check int) "token count" 16 (List.length toks);
  (match List.nth toks 0 with
  | Sql_lexer.Kw "select" -> ()
  | t -> Alcotest.failf "expected select keyword, got %a" Sql_lexer.pp_token t);
  (match List.find_opt (function Sql_lexer.Str_lit _ -> true | _ -> false) toks with
  | Some (Sql_lexer.Str_lit s) -> Alcotest.(check string) "escaped quote" "it's" s
  | _ -> Alcotest.fail "no string literal");
  ignore (check_err (Sql_lexer.tokenize "select ~"));
  ignore (check_err (Sql_lexer.tokenize "select 'unterminated"))

let test_parser_errors () =
  ignore (check_err (Sql_parser.parse_statement "FROB x"));
  ignore (check_err (Sql_parser.parse_statement "SELECT FROM"));
  ignore (check_err (Sql_parser.parse_statement "INSERT INTO t VALUES (1) garbage"))

let test_create_and_insert () =
  let db = fresh_db () in
  Alcotest.(check (list string)) "tables" [ "dept"; "emp" ] (Database.relation_names db);
  Alcotest.(check int) "emp rows" 3
    (Relation.cardinality (Database.relation_exn db "emp"))

let test_select_single () =
  let db = fresh_db () in
  let rs = rows db "SELECT name FROM emp WHERE salary >= 90" in
  Alcotest.(check int) "two rows" 2 (List.length rs.Algebra.rows);
  let rs2 = rows db "SELECT * FROM emp WHERE dept = 'EE'" in
  Alcotest.(check int) "one row" 1 (List.length rs2.Algebra.rows)

let test_select_join () =
  let db = fresh_db () in
  let rs =
    rows db
      "SELECT emp.name, d.head FROM emp, dept AS d WHERE emp.dept = d.dname AND \
       emp.salary > 85"
  in
  Alcotest.(check (list string)) "attrs" [ "emp.name"; "d.head" ] rs.Algebra.attrs;
  Alcotest.(check int) "two CS rows" 2 (List.length rs.Algebra.rows)

let test_ambiguity () =
  let db = fresh_db () in
  (* 'name' occurs in both copies of emp: ambiguous. *)
  ignore (check_err (Sql.run db "SELECT name FROM emp AS a, emp AS b WHERE a.id = b.id"));
  (* unqualified attrs occurring once resolve across the join *)
  let rs = rows db "SELECT name, dname FROM emp, dept WHERE dept = dname" in
  Alcotest.(check int) "join rows" 3 (List.length rs.Algebra.rows)

let test_update () =
  let db = fresh_db () in
  let db, n = affected db "UPDATE emp SET salary = 120 WHERE dept = 'CS'" in
  Alcotest.(check int) "two updated" 2 n;
  let rs = rows db "SELECT id FROM emp WHERE salary = 120" in
  Alcotest.(check int) "both" 2 (List.length rs.Algebra.rows)

let test_delete () =
  let db = fresh_db () in
  let db, n = affected db "DELETE FROM emp WHERE salary < 90" in
  Alcotest.(check int) "one deleted" 1 n;
  Alcotest.(check int) "two left" 2
    (Relation.cardinality (Database.relation_exn db "emp"))

let test_insert_named_columns () =
  let db = fresh_db () in
  let db, _ = affected db "INSERT INTO emp (id, name) VALUES (9, 'Zed')" in
  let t = Option.get (Relation.lookup (Database.relation_exn db "emp") [ vi 9 ]) in
  Alcotest.check value_testable "padded null" Value.Null (Tuple.get t "salary")

let test_insert_errors () =
  let db = fresh_db () in
  ignore (check_err (Sql.run db "INSERT INTO emp VALUES (1, 'dup', 'CS', 1)"));
  ignore (check_err (Sql.run db "INSERT INTO emp (id) VALUES (7, 8)"));
  ignore (check_err (Sql.run db "INSERT INTO nope VALUES (1)"))

let test_is_null () =
  let db = fresh_db () in
  let db, _ = affected db "INSERT INTO emp (id, name) VALUES (10, 'Nul')" in
  let rs = rows db "SELECT id FROM emp WHERE salary IS NULL" in
  Alcotest.(check int) "one null" 1 (List.length rs.Algebra.rows);
  let rs2 = rows db "SELECT id FROM emp WHERE salary IS NOT NULL" in
  Alcotest.(check int) "three not null" 3 (List.length rs2.Algebra.rows)

let test_drop () =
  let db = fresh_db () in
  let db, a = check_ok (Sql.run db "DROP TABLE dept") in
  (match a with Sql.Done -> () | _ -> Alcotest.fail "expected Done");
  Alcotest.(check bool) "gone" false (Database.mem_relation db "dept")

let test_condition_precedence () =
  let db = fresh_db () in
  (* OR binds looser than AND: this must match Ada (CS & 100) and Cat. *)
  let rs =
    rows db "SELECT name FROM emp WHERE dept = 'CS' AND salary = 100 OR dept = 'EE'"
  in
  Alcotest.(check int) "two rows" 2 (List.length rs.Algebra.rows);
  let rs2 =
    rows db "SELECT name FROM emp WHERE NOT (dept = 'CS') AND salary < 100"
  in
  Alcotest.(check int) "one row" 1 (List.length rs2.Algebra.rows)

let test_aggregates () =
  let db = fresh_db () in
  let rs =
    rows db
      "SELECT dept, count(*) AS n, sum(salary) AS total FROM emp GROUP BY dept \
       ORDER BY n DESC"
  in
  Alcotest.(check (list string)) "attrs" [ "dept"; "n"; "total" ] rs.Algebra.attrs;
  (match rs.Algebra.rows with
  | [ r1; r2 ] ->
      Alcotest.check value_testable "CS first" (vs "CS") (Tuple.get r1 "dept");
      Alcotest.check value_testable "CS count" (vi 2) (Tuple.get r1 "n");
      Alcotest.check value_testable "CS total" (vi 190) (Tuple.get r1 "total");
      Alcotest.check value_testable "EE count" (vi 1) (Tuple.get r2 "n")
  | _ -> Alcotest.fail "expected two groups")

let test_global_aggregate () =
  let db = fresh_db () in
  let rs = rows db "SELECT count(*), avg(salary) FROM emp" in
  Alcotest.(check (list string)) "synthesized names" [ "count"; "avg_salary" ]
    rs.Algebra.attrs;
  let r = List.hd rs.Algebra.rows in
  Alcotest.check value_testable "count" (vi 3) (Tuple.get r "count");
  Alcotest.check value_testable "avg" (vf 90.) (Tuple.get r "avg_salary")

let test_having () =
  let db = fresh_db () in
  let rs =
    rows db "SELECT dept, count(*) AS n FROM emp GROUP BY dept HAVING n > 1"
  in
  Alcotest.(check int) "only CS" 1 (List.length rs.Algebra.rows);
  Alcotest.check value_testable "CS" (vs "CS")
    (Tuple.get (List.hd rs.Algebra.rows) "dept")

let test_order_limit_plain () =
  let db = fresh_db () in
  let rs = rows db "SELECT name FROM emp ORDER BY salary DESC LIMIT 2" in
  Alcotest.(check int) "two" 2 (List.length rs.Algebra.rows);
  (* note: ORDER BY references output attributes *)
  ignore
    (check_err (Sql.run db "SELECT name FROM emp ORDER BY salary DESC LIMIT -1"))

let test_aggregate_alias_in_order () =
  let db = fresh_db () in
  let rs =
    rows db
      "SELECT dept, min(salary) AS lo FROM emp GROUP BY dept ORDER BY lo ASC LIMIT 1"
  in
  Alcotest.check value_testable "EE has the minimum" (vs "EE")
    (Tuple.get (List.hd rs.Algebra.rows) "dept")

let test_aggregate_errors () =
  let db = fresh_db () in
  ignore (check_err (Sql.run db "SELECT name, count(*) FROM emp"));
  ignore (check_err (Sql.run db "SELECT frob(salary) FROM emp GROUP BY dept"));
  ignore (check_err (Sql.run db "SELECT dept, count(*) FROM emp GROUP BY dept HAVING ghost > 1"));
  ignore (check_err (Sql.run db "SELECT dept FROM emp GROUP BY dept ORDER BY salary"))

let test_select_alias () =
  let db = fresh_db () in
  let rs = rows db "SELECT name AS who, salary AS pay FROM emp WHERE id = 1" in
  Alcotest.(check (list string)) "aliases" [ "who"; "pay" ] rs.Algebra.attrs;
  Alcotest.check value_testable "value" (vs "Ada")
    (Tuple.get (List.hd rs.Algebra.rows) "who")

let test_arithmetic_where () =
  let db = fresh_db () in
  let rs = rows db "SELECT name FROM emp WHERE salary * 2 >= 180" in
  Alcotest.(check int) "two rows" 2 (List.length rs.Algebra.rows);
  let rs2 = rows db "SELECT name FROM emp WHERE (salary + 20) / 2 = 60" in
  Alcotest.(check int) "one row" 1 (List.length rs2.Algebra.rows);
  let rs3 = rows db "SELECT name FROM emp WHERE -salary < -95" in
  Alcotest.(check int) "unary minus" 1 (List.length rs3.Algebra.rows);
  let rs4 = rows db "SELECT name FROM emp WHERE salary % 2 = 0" in
  Alcotest.(check int) "modulo" 3 (List.length rs4.Algebra.rows);
  (* '-' after an attribute is subtraction, before a literal a sign *)
  let rs5 = rows db "SELECT name FROM emp WHERE salary - 10 = 90" in
  Alcotest.(check int) "subtraction" 1 (List.length rs5.Algebra.rows);
  let rs6 = rows db "SELECT name FROM emp WHERE salary = -1 * -100" in
  Alcotest.(check int) "negative literals" 1 (List.length rs6.Algebra.rows)

let test_arithmetic_update () =
  let db = fresh_db () in
  let db, n = affected db "UPDATE emp SET salary = salary + 10 WHERE dept = 'CS'" in
  Alcotest.(check int) "two raises" 2 n;
  let rs = rows db "SELECT salary FROM emp WHERE id = 1" in
  Alcotest.check value_testable "110" (vi 110)
    (Tuple.get (List.hd rs.Algebra.rows) "salary");
  (* all right-hand sides see the pre-update values *)
  let db, _ = affected db "UPDATE emp SET salary = salary * 2, id = id + 100 WHERE id = 1" in
  let rs2 = rows db "SELECT salary FROM emp WHERE id = 101" in
  Alcotest.check value_testable "doubled" (vi 220)
    (Tuple.get (List.hd rs2.Algebra.rows) "salary")

let test_division_by_zero_null () =
  let db = fresh_db () in
  let rs = rows db "SELECT name FROM emp WHERE salary / 0 = 1" in
  Alcotest.(check int) "null comparisons never hold" 0 (List.length rs.Algebra.rows);
  (* update to a null via division by zero is rejected on a key... *)
  ignore (check_err (Sql.run db "UPDATE emp SET id = id / 0 WHERE id = 1"));
  (* ... but fine on a nullable attribute *)
  let db, _ = affected db "UPDATE emp SET salary = salary / 0 WHERE id = 1" in
  let rs2 = rows db "SELECT name FROM emp WHERE salary IS NULL" in
  Alcotest.(check int) "nulled" 1 (List.length rs2.Algebra.rows)

let test_script_stops_at_error () =
  match Sql.run_script (fresh_db ()) "DELETE FROM emp; SELECT * FROM ghost;" with
  | Error e -> Alcotest.(check bool) "mentions ghost" true (Relational.Strutil.contains ~sub:"ghost" e)
  | Ok _ -> Alcotest.fail "expected failure"

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "create & insert" `Quick test_create_and_insert;
    Alcotest.test_case "select single table" `Quick test_select_single;
    Alcotest.test_case "select join" `Quick test_select_join;
    Alcotest.test_case "attribute resolution" `Quick test_ambiguity;
    Alcotest.test_case "update" `Quick test_update;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "insert named columns" `Quick test_insert_named_columns;
    Alcotest.test_case "insert errors" `Quick test_insert_errors;
    Alcotest.test_case "is null" `Quick test_is_null;
    Alcotest.test_case "drop" `Quick test_drop;
    Alcotest.test_case "condition precedence" `Quick test_condition_precedence;
    Alcotest.test_case "aggregates" `Quick test_aggregates;
    Alcotest.test_case "global aggregate" `Quick test_global_aggregate;
    Alcotest.test_case "having" `Quick test_having;
    Alcotest.test_case "order/limit" `Quick test_order_limit_plain;
    Alcotest.test_case "aggregate alias in order" `Quick test_aggregate_alias_in_order;
    Alcotest.test_case "aggregate errors" `Quick test_aggregate_errors;
    Alcotest.test_case "select alias" `Quick test_select_alias;
    Alcotest.test_case "arithmetic where" `Quick test_arithmetic_where;
    Alcotest.test_case "arithmetic update" `Quick test_arithmetic_update;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero_null;
    Alcotest.test_case "script stops at error" `Quick test_script_stops_at_error;
  ]
