open Relational
open Viewobject
open Test_util

(* --- sexp ------------------------------------------------------------ *)

let sexp_testable = Alcotest.testable Sexp.pp Sexp.equal

let test_sexp_roundtrip () =
  let cases =
    [
      Sexp.Atom "hello";
      Sexp.Atom "with space";
      Sexp.Atom "";
      Sexp.Atom "quo\"te";
      Sexp.Atom "line\nbreak";
      Sexp.List [];
      Sexp.List [ Sexp.Atom "a"; Sexp.List [ Sexp.Atom "b"; Sexp.Atom "c" ] ];
    ]
  in
  List.iter
    (fun e ->
      let printed = Sexp.to_string e in
      Alcotest.check sexp_testable
        (Fmt.str "roundtrip %s" printed)
        e
        (check_ok (Sexp.parse printed)))
    cases

let test_sexp_parse () =
  Alcotest.check sexp_testable "comments skipped"
    (Sexp.List [ Sexp.Atom "a"; Sexp.Atom "b" ])
    (check_ok (Sexp.parse "; comment\n(a ; inline\n b)"));
  ignore (check_err (Sexp.parse "(unterminated"));
  ignore (check_err (Sexp.parse ")"));
  ignore (check_err (Sexp.parse "a b"));
  ignore (check_err (Sexp.parse ""));
  let many = check_ok (Sexp.parse_many "a (b c) d") in
  Alcotest.(check int) "three expressions" 3 (List.length many)

let test_sexp_keyed () =
  let items =
    [ Sexp.List [ Sexp.Atom "k"; Sexp.Atom "v" ];
      Sexp.List [ Sexp.Atom "other"; Sexp.Atom "x" ] ]
  in
  (match check_ok (Sexp.keyed "k" items) with
  | [ Sexp.Atom "v" ] -> ()
  | _ -> Alcotest.fail "bad keyed");
  check_err_contains ~sub:"missing" (Sexp.keyed "zz" items);
  check_err_contains ~sub:"duplicate"
    (Sexp.keyed "k" (items @ [ Sexp.List [ Sexp.Atom "k" ] ]))

(* --- values, instances ------------------------------------------------ *)

let test_value_roundtrip () =
  List.iter
    (fun v ->
      Alcotest.check value_testable
        (Fmt.str "value %a" Value.pp v)
        v
        (check_ok (Penguin.Store.value_of_sexp (Penguin.Store.value_to_sexp v))))
    [ Value.Null; vi 42; vi (-1); vf 3.25; vf 33.333333333333336;
      vs "plain"; vs "with (parens) and \"quotes\""; vb true; vb false ]

let test_instance_roundtrip () =
  let db = Penguin.University.seeded_db () in
  let i = Penguin.University.cs345_instance db in
  let i' =
    check_ok (Penguin.Store.instance_of_sexp (Penguin.Store.instance_to_sexp i))
  in
  Alcotest.(check bool) "instance roundtrip" true (Instance.equal i i')

(* --- definitions, translators ----------------------------------------- *)

let test_definition_roundtrip () =
  let g = Penguin.University.graph in
  List.iter
    (fun vo ->
      let vo' =
        check_ok
          (Penguin.Store.definition_of_sexp g (Penguin.Store.definition_to_sexp vo))
      in
      Alcotest.(check string) "name" vo.Definition.name vo'.Definition.name;
      Alcotest.(check int) "complexity"
        (Definition.complexity vo)
        (Definition.complexity vo');
      Alcotest.(check string) "shape"
        (Definition.to_ascii vo)
        (Definition.to_ascii vo'))
    [ Penguin.University.omega; Penguin.University.omega_prime ]

let test_definition_wrong_graph () =
  (* omega refers to connections the CAD graph does not have *)
  check_err_contains ~sub:"unknown connection"
    (Penguin.Store.definition_of_sexp Penguin.Cad.graph
       (Penguin.Store.definition_to_sexp Penguin.University.omega))

let test_translator_roundtrip () =
  List.iter
    (fun spec ->
      let spec' =
        check_ok
          (Penguin.Store.translator_of_sexp (Penguin.Store.translator_to_sexp spec))
      in
      Alcotest.(check bool) "same translator" true (spec = spec'))
    [ Penguin.University.omega_translator;
      Penguin.University.omega_translator_restrictive;
      Penguin.Hospital.record_translator;
      Penguin.Cad.assembly_translator ]

(* --- workspaces -------------------------------------------------------- *)

let workspace_equal (a : Penguin.Workspace.t) (b : Penguin.Workspace.t) =
  Database.equal a.Penguin.Workspace.db b.Penguin.Workspace.db
  && List.map fst a.Penguin.Workspace.objects
     = List.map fst b.Penguin.Workspace.objects
  && List.for_all2
       (fun (_, v1) (_, v2) -> Definition.to_ascii v1 = Definition.to_ascii v2)
       a.Penguin.Workspace.objects b.Penguin.Workspace.objects
  && a.Penguin.Workspace.translators = b.Penguin.Workspace.translators

let test_workspace_roundtrip () =
  List.iter
    (fun ws ->
      let doc = Penguin.Store.save ws in
      let ws' = check_ok (Penguin.Store.load doc) in
      Alcotest.(check bool) "workspace roundtrip" true (workspace_equal ws ws'))
    [ Penguin.University.workspace (); Penguin.Hospital.workspace ();
      Penguin.Cad.workspace () ]

let test_workspace_without_data () =
  let ws = Penguin.University.workspace () in
  let doc = Penguin.Store.save ~include_data:false ws in
  let ws' = check_ok (Penguin.Store.load doc) in
  Alcotest.(check int) "schemas restored, database empty" 0
    (Database.total_tuples ws'.Penguin.Workspace.db);
  Alcotest.(check (list string)) "objects restored" [ "omega"; "omega_prime" ]
    (List.map fst ws'.Penguin.Workspace.objects)

let test_loaded_workspace_is_operational () =
  (* save, load, then run the EES345 replacement on the loaded copy *)
  let ws = Penguin.University.workspace () in
  let ws' = check_ok (Penguin.Store.load (Penguin.Store.save ws)) in
  let old_i = Penguin.University.cs345_instance ws'.Penguin.Workspace.db in
  let new_i = Penguin.University.ees345_replacement old_i in
  let _ws'', outcome =
    Penguin.Workspace.update ws' "omega"
      (Vo_core.Request.replace ~old_instance:old_i ~new_instance:new_i)
  in
  ignore (committed_db outcome)

let test_file_roundtrip () =
  let ws = Penguin.Cad.workspace () in
  let path = Filename.temp_file "penguin" ".pws" in
  check_ok_e (Penguin.Store.save_file ws path);
  let ws' = check_ok (Penguin.Store.load_file path) in
  Sys.remove path;
  Alcotest.(check bool) "file roundtrip" true (workspace_equal ws ws')

let test_load_errors () =
  check_err_contains ~sub:"not a penguin-workspace" (Penguin.Store.load "(x)");
  ignore (check_err (Penguin.Store.load "((("));
  ignore (check_err (Penguin.Store.load_file "/nonexistent/x.pws"));
  (* an object without its translator is rejected *)
  let ws = Penguin.University.workspace () in
  let ws_broken =
    {
      ws with
      Penguin.Workspace.translators =
        List.map
          (fun (name, spec) ->
            if name = "omega" then
              name, { spec with Vo_core.Translator_spec.object_name = "gone" }
            else name, spec)
          ws.Penguin.Workspace.translators;
    }
  in
  check_err_contains ~sub:"has no translator"
    (Penguin.Store.load (Penguin.Store.save ws_broken))

let suite =
  [
    Alcotest.test_case "sexp roundtrip" `Quick test_sexp_roundtrip;
    Alcotest.test_case "sexp parse" `Quick test_sexp_parse;
    Alcotest.test_case "sexp keyed" `Quick test_sexp_keyed;
    Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
    Alcotest.test_case "instance roundtrip" `Quick test_instance_roundtrip;
    Alcotest.test_case "definition roundtrip" `Quick test_definition_roundtrip;
    Alcotest.test_case "definition wrong graph" `Quick test_definition_wrong_graph;
    Alcotest.test_case "translator roundtrip" `Quick test_translator_roundtrip;
    Alcotest.test_case "workspace roundtrip" `Quick test_workspace_roundtrip;
    Alcotest.test_case "workspace without data" `Quick test_workspace_without_data;
    Alcotest.test_case "loaded workspace operational" `Quick test_loaded_workspace_is_operational;
    Alcotest.test_case "file roundtrip" `Quick test_file_roundtrip;
    Alcotest.test_case "load errors" `Quick test_load_errors;
  ]
