(* The materialized view-object cache: a cached read must be
   observationally equal to a fresh instantiation against the cache's
   database at every point in any commit sequence — under pull sync,
   push subscription, crash-recovery replay, journal rotation, and
   histories the cache must refuse to trust (barriers, foreign-lineage
   deltas, Paranoid divergences). *)
open Relational
open Structural
open Viewobject
open Test_util
module Ws = Penguin.Workspace

let instance_t = Alcotest.testable Instance.pp Instance.equal
let cached cache name = check_ok (Cache.instances cache name)

(* Every registered object, cached vs fresh against the cache's own
   database (which sync must have brought to the workspace's). *)
let matches ws cache =
  Cache.db cache == ws.Ws.db
  && List.for_all
       (fun name ->
         let vo = Option.get (Cache.find_definition cache name) in
         let fresh = Instantiate.instantiate ws.Ws.db vo in
         List.equal Instance.equal fresh (cached cache name))
       (Cache.registered cache)

let assert_matches ?(msg = "cached = fresh") ws cache =
  List.iter
    (fun name ->
      let vo = Option.get (Cache.find_definition cache name) in
      Alcotest.check (Alcotest.list instance_t)
        (Fmt.str "%s: %s" msg name)
        (Instantiate.instantiate ws.Ws.db vo)
        (cached cache name))
    (Cache.registered cache)

(* --- a random-update interpreter over the example fixtures ------------ *)

let fixtures =
  [|
    "university", Penguin.University.workspace;
    "hospital", Penguin.Hospital.workspace;
    "cad", Penguin.Cad.workspace;
  |]

let bump n = function
  | Value.Int i -> Value.Int (i + 1 + (n mod 7))
  | Value.Str s -> Value.Str (s ^ "~" ^ string_of_int (n mod 97))
  | Value.Float f -> Value.Float (f +. 1.5)
  | Value.Bool b -> Value.Bool (not b)
  | Value.Null -> Value.Null

let nth_rnd rnd l = List.nth l (rnd (List.length l))

(* One pseudo-random request against the named object, built from its
   current instances: delete one, rename its pivot key, or rewrite one
   non-key attribute of one node occurrence. [None] when nothing
   editable turns up; translator rejections downstream are equally fine
   — the property only cares that every *committed* state is served
   correctly. *)
let random_op rnd ws name =
  match Ws.instances ws name with
  | Error _ | Ok [] -> None
  | Ok insts -> (
      let inst = nth_rnd rnd insts in
      let vo = check_ok (Ws.find_object ws name) in
      let key_attrs_of rel =
        Schema.key_attributes (Schema_graph.schema_exn ws.Ws.graph rel)
      in
      match rnd 6 with
      | 0 -> Some (Vo_core.Request.delete inst)
      | 1 -> (
          (* Pivot-key rename: the entry must vanish under one cache key
             and reappear under another (or be rejected — also fine). *)
          let root = vo.Definition.root in
          match
            List.filter
              (fun a -> Tuple.mem inst.Instance.tuple a)
              (key_attrs_of vo.Definition.pivot)
          with
          | [] -> None
          | keys ->
              let a = nth_rnd rnd keys in
              let n = rnd 1000 in
              Result.to_option
                (Vo_core.Request.partial_modify inst
                   ~label:root.Definition.label ~at:inst.Instance.tuple
                   ~f:(fun t -> Tuple.set t a (bump n (Tuple.get t a)))))
      | _ -> (
          (* Rewrite one non-key attribute somewhere in the tree. *)
          let label, tup = nth_rnd rnd (Instance.flatten inst) in
          let node = Definition.find_exn vo label in
          let keys = key_attrs_of node.Definition.relation in
          match
            List.filter
              (fun a ->
                (not (List.mem a keys)) && Tuple.get tup a <> Value.Null)
              (Tuple.attributes tup)
          with
          | [] -> None
          | attrs ->
              let a = nth_rnd rnd attrs in
              let n = rnd 1000 in
              Result.to_option
                (Vo_core.Request.partial_modify inst ~label ~at:tup ~f:(fun t ->
                     Tuple.set t a (bump n (Tuple.get t a))))))

(* Run [steps] random updates with the cache riding along (pull sync
   after every attempt, committed or not) and check cached = fresh after
   each; returns false at the first divergence. *)
let run_scenario ?mode ~steps (fi, seed) =
  let _, mk = fixtures.(fi) in
  let ws = ref (mk ()) in
  let cache = Ws.attach_cache ?mode !ws in
  Cache.warm cache;
  let st = Random.State.make [| seed; fi |] in
  let rnd n = if n <= 1 then 0 else Random.State.int st n in
  let names = List.map fst !ws.Ws.objects in
  let ok = ref (matches !ws cache) in
  for _ = 1 to steps do
    let name = nth_rnd rnd names in
    (match random_op rnd !ws name with
    | None -> ()
    | Some req ->
        let ws', _outcome = Ws.update !ws name req in
        Ws.sync_cache ws' cache;
        ws := ws');
    ok := !ok && matches !ws cache
  done;
  !ok, cache

let scenario_arb =
  QCheck.make
    ~print:(fun (fi, seed) -> Fmt.str "%s/seed=%d" (fst fixtures.(fi)) seed)
    QCheck.Gen.(pair (int_bound (Array.length fixtures - 1)) (int_bound 1_000_000))

let prop_cached_equals_fresh =
  QCheck.Test.make
    ~name:"cached+patched = fresh after every commit (random sequences)"
    ~count:220 scenario_arb
    (fun sc -> fst (run_scenario ~steps:6 sc))

(* On a single honest lineage Paranoid mode must never fire: the
   cross-check is pure overhead, not a correctness crutch. *)
let prop_paranoid_never_diverges =
  QCheck.Test.make ~name:"Paranoid cross-check is silent on honest lineages"
    ~count:30 scenario_arb
    (fun sc ->
      let ok, cache = run_scenario ~mode:Cache.Paranoid ~steps:4 sc in
      ok && (Cache.stats cache).Cache.divergences = 0)

(* --- deterministic behaviour, university fixture ---------------------- *)

let grade_edit ws course pid grade =
  let inst =
    match
      Instantiate.instantiate
        ~where:(Predicate.eq_str "course_id" course)
        ws.Ws.db Penguin.University.omega
    with
    | [ i ] -> i
    | l -> Alcotest.failf "expected 1 instance of %s, got %d" course (List.length l)
  in
  match
    Vo_core.Request.partial_modify inst ~label:"GRADES"
      ~at:(Tuple.make [ "pid", Value.Int pid ])
      ~f:(fun t -> Tuple.set t "grade" (Value.Str grade))
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "building request on %s: %s" course e

let commit ws name req =
  let ws', outcome = Ws.update ws name req in
  let (_ : Database.t) = committed_db outcome in
  ws'

let test_hit_miss_equivalence () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  Alcotest.(check (list string))
    "registered" [ "omega"; "omega_prime" ] (Cache.registered cache);
  Alcotest.(check int) "positioned at the log head" (Ws.version ws)
    (Cache.position cache);
  let cold = cached cache "omega" in
  let s = Cache.stats cache in
  Alcotest.(check int) "cold read is a miss" 1 s.Cache.misses;
  Alcotest.(check int) "no hits yet" 0 s.Cache.hits;
  let warm = cached cache "omega" in
  Alcotest.(check int) "warm read is a hit" 1 (Cache.stats cache).Cache.hits;
  Alcotest.check (Alcotest.list instance_t) "cold = warm" cold warm;
  Alcotest.check (Alcotest.list instance_t) "cold = Workspace.instances"
    (check_ok (Ws.instances ws "omega"))
    cold;
  match Cache.instances cache "nope" with
  | Ok _ -> Alcotest.fail "unknown object served"
  | Error e -> check_err_contains ~sub:"nope" (Error e)

let test_oql_through_cache () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  let q = "level = 'grad' and count(STUDENT#2) < 5" in
  Alcotest.check (Alcotest.list instance_t) "cached OQL = Workspace.oql"
    (check_ok (Ws.oql ws "omega" q))
    (check_ok (Cache.oql cache "omega" q));
  (* A second run is served from the warm store. *)
  let hits = (Cache.stats cache).Cache.hits in
  let (_ : Instance.t list) = check_ok (Cache.oql cache "omega" q) in
  Alcotest.(check bool) "query reads count as hits" true
    ((Cache.stats cache).Cache.hits > hits)

let test_patch_on_commit () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  Cache.warm cache;
  let ws = commit ws "omega" (grade_edit ws "CS345" 2 "A-") in
  Ws.sync_cache ws cache;
  let s = Cache.stats cache in
  Alcotest.(check bool) "entries were patched" true (s.Cache.patched >= 1);
  Alcotest.(check int) "nothing invalidated" 0 s.Cache.invalidated;
  Alcotest.(check int) "position follows the log" (Ws.version ws)
    (Cache.position cache);
  assert_matches ~msg:"after patch" ws cache;
  (* The patched reads above were hits — no rebuild happened. *)
  Alcotest.(check int) "no rebuild" 0 (Cache.stats cache).Cache.misses

let test_skip_disjoint_delta () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  (* A flat DEPARTMENT object: its dependency set is disjoint from a
     GRADES edit, so the patch must skip it untouched. *)
  Cache.register cache
    (Definition.make_exn ws.Ws.graph ~name:"departments" ~pivot:"DEPARTMENT"
       ~root:
         (Definition.node ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
            ~attrs:[ "dept_name"; "building"; "budget" ]
            ~path:[] ~children:[]));
  Cache.warm cache;
  Alcotest.(check (list string))
    "flat object depends only on its pivot" [ "DEPARTMENT" ]
    (Cache.dependencies cache "departments");
  let ws = commit ws "omega" (grade_edit ws "CS345" 2 "B-") in
  Ws.sync_cache ws cache;
  let s = Cache.stats cache in
  Alcotest.(check bool) "disjoint object skipped" true (s.Cache.skipped >= 1);
  Alcotest.(check bool) "touched object patched" true (s.Cache.patched >= 1);
  assert_matches ~msg:"after skip" ws cache

let test_dependencies () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  (* CURRICULUM is no node of omega — it is the m:n link relation the
     DEPARTMENT path walks through, and an edit to it re-links
     departments, so it must count as a dependency. *)
  Alcotest.(check (list string))
    "omega reads its island and the path relations"
    [ "COURSES"; "CURRICULUM"; "DEPARTMENT"; "GRADES"; "STUDENT" ]
    (Cache.dependencies cache "omega");
  (* omega_prime does not project GRADES, but its STUDENT#2 path walks
     through it — a GRADES edit can change the student set, so GRADES
     must be in the dependency set. *)
  Alcotest.(check bool) "path intermediates are dependencies" true
    (List.mem "GRADES" (Cache.dependencies cache "omega_prime"))

let test_barrier_invalidates () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  Cache.warm cache;
  (* A wholesale swap records a barrier. The swapped-in database is
     physically new but logically identical — exactly the case the
     cache cannot distinguish, so only the barrier speaks. *)
  let scratch =
    Schema.make_exn ~name:"CACHE_SCRATCH"
      ~attributes:[ Attribute.int "id" ]
      ~key:[ "id" ]
  in
  let swapped =
    match
      Database.drop_relation
        (Database.create_relation_exn ws.Ws.db scratch)
        "CACHE_SCRATCH"
    with
    | Ok db -> db
    | Error e -> Alcotest.fail (Database.error_to_string e)
  in
  let ws = Ws.with_db ws swapped in
  Ws.sync_cache ws cache;
  let s = Cache.stats cache in
  Alcotest.(check int) "both warm objects dropped" 2 s.Cache.invalidated;
  Alcotest.(check int) "position follows the barrier" (Ws.version ws)
    (Cache.position cache);
  assert_matches ~msg:"after barrier" ws cache;
  Alcotest.(check bool) "reads after the barrier rebuild" true
    ((Cache.stats cache).Cache.misses >= 2)

let test_foreign_delta_invalidates () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  Cache.warm cache;
  (* A delta claiming CS345 was just Added — but the cached state
     already holds it. The old-image cross-check must refuse to patch
     and invalidate instead of silently corrupting. *)
  let lie =
    Delta.record Delta.empty ~rel:"COURSES"
      ~key:[ Value.Str "CS345" ]
      ~old_image:None
      ~new_image:(Some (Tuple.make [ "course_id", Value.Str "CS345" ]))
  in
  Cache.apply_delta cache ~post:ws.Ws.db lie;
  let s = Cache.stats cache in
  Alcotest.(check bool) "contradicted objects invalidated" true
    (s.Cache.invalidated >= 1);
  Alcotest.(check int) "nothing patched from a lie" 0 s.Cache.patched;
  assert_matches ~msg:"after foreign delta" ws cache

let test_push_subscription () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ws in
  Cache.warm cache;
  let sub = Ws.subscribe_cache cache in
  Fun.protect
    ~finally:(fun () -> Vo_core.Engine.unsubscribe sub)
    (fun () ->
      let ws = commit ws "omega" (grade_edit ws "CS345" 2 "C+") in
      (* The engine's post-commit notification already patched the
         cache — before any sync. *)
      Alcotest.(check bool) "push landed the post state" true
        (Cache.db cache == ws.Ws.db);
      let patched = (Cache.stats cache).Cache.patched in
      Alcotest.(check bool) "push patched incrementally" true (patched >= 1);
      (* Pull sync then only fixes the position — no second replay. *)
      Ws.sync_cache ws cache;
      Alcotest.(check int) "sync after push is position-only" patched
        (Cache.stats cache).Cache.patched;
      Alcotest.(check int) "position follows" (Ws.version ws)
        (Cache.position cache);
      assert_matches ~msg:"after push" ws cache)

let test_replay_warming () =
  let dir = temp_dir "cache-replay" in
  let store = Filename.concat dir "u.pgn" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ws = Penguin.University.workspace () in
      check_ok_e (Penguin.Store.save_file ws store);
      let ws0, _report = check_ok_e (Penguin.Recovery.open_store store) in
      let cache = Ws.attach_cache ws0 in
      Cache.warm cache;
      let since = Ws.version ws0 in
      let ws1 = commit ws0 "omega" (grade_edit ws0 "CS345" 2 "D") in
      let (_ : Penguin.Recovery.persisted) =
        check_ok_e (Penguin.Recovery.persist ~store ~since ws1)
      in
      (* "Crash" before the cache saw the commit; reopening with the
         cache attached replays the journal entry as a real delta and
         patches the cache forward instead of rebuilding it. *)
      let before = Cache.stats cache in
      let ws2, report =
        check_ok_e (Penguin.Recovery.open_store ~cache store)
      in
      Alcotest.(check int) "one journal entry replayed" 1
        report.Penguin.Recovery.replayed;
      let s = Cache.stats cache in
      Alcotest.(check bool) "replay patched the cache" true
        (s.Cache.patched > before.Cache.patched);
      Alcotest.(check int) "replay did not invalidate" before.Cache.invalidated
        s.Cache.invalidated;
      assert_matches ~msg:"after replay" ws2 cache;
      Alcotest.(check int) "reads stayed warm (no rebuild)"
        before.Cache.misses (Cache.stats cache).Cache.misses)

let test_rotation_invalidates () =
  let dir = temp_dir "cache-rotate" in
  let store = Filename.concat dir "u.pgn" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let ws = Penguin.University.workspace () in
      check_ok_e (Penguin.Store.save_file ws store);
      let ws0, _report = check_ok_e (Penguin.Recovery.open_store store) in
      let cache = Ws.attach_cache ws0 in
      Cache.warm cache;
      let since = Ws.version ws0 in
      let ws1 = commit ws0 "omega" (grade_edit ws0 "CS345" 2 "E") in
      let ws1 = commit ws1 "omega" (grade_edit ws1 "CS101" 1 "F") in
      let persisted =
        check_ok_e
          (Penguin.Recovery.persist ~rotate_threshold:1 ~store ~since ws1)
      in
      Alcotest.(check bool) "journal folded into a snapshot" true
        persisted.Penguin.Recovery.rotated;
      (* The snapshot hides the history between the cache's position and
         the new head: no deltas to replay, so the cache must drop its
         entries rather than serve the old state. *)
      let before = Cache.stats cache in
      let ws2, _report = check_ok_e (Penguin.Recovery.open_store ~cache store) in
      Alcotest.(check bool) "hidden history invalidates" true
        ((Cache.stats cache).Cache.invalidated > before.Cache.invalidated);
      assert_matches ~msg:"after rotation" ws2 cache)

let test_paranoid_divergence () =
  let ws = Penguin.University.workspace () in
  let cache = Ws.attach_cache ~mode:Cache.Paranoid ws in
  Alcotest.(check bool) "mode recorded" true (Cache.mode cache = Cache.Paranoid);
  Cache.warm cache;
  let ws' = commit ws "omega" (grade_edit ws "CS345" 2 "A+") in
  (* A lying sync: claim the empty delta leads from the cached state to
     the post-commit database. Normal mode would happily keep serving
     the stale entries; Paranoid must catch the divergence and drop
     them instead of serving a wrong instance. *)
  Cache.apply_delta cache ~post:ws'.Ws.db Delta.empty;
  let s = Cache.stats cache in
  Alcotest.(check bool) "divergence detected" true (s.Cache.divergences >= 1);
  Alcotest.(check bool) "diverged object dropped" true
    (s.Cache.invalidated >= 1);
  Cache.set_position cache (Ws.version ws');
  assert_matches ~msg:"after divergence" ws' cache

let suite =
  [
    Alcotest.test_case "cold miss, warm hit, both equal fresh" `Quick
      test_hit_miss_equivalence;
    Alcotest.test_case "OQL through the cache" `Quick test_oql_through_cache;
    Alcotest.test_case "commit + sync patches incrementally" `Quick
      test_patch_on_commit;
    Alcotest.test_case "disjoint delta skips" `Quick test_skip_disjoint_delta;
    Alcotest.test_case "dependency sets include path intermediates" `Quick
      test_dependencies;
    Alcotest.test_case "barrier invalidates" `Quick test_barrier_invalidates;
    Alcotest.test_case "foreign-lineage delta invalidates" `Quick
      test_foreign_delta_invalidates;
    Alcotest.test_case "push subscription patches on commit" `Quick
      test_push_subscription;
    Alcotest.test_case "recovery replay warms the cache" `Quick
      test_replay_warming;
    Alcotest.test_case "journal rotation invalidates" `Quick
      test_rotation_invalidates;
    Alcotest.test_case "Paranoid mode catches a lying sync" `Quick
      test_paranoid_divergence;
    qtest prop_cached_equals_fresh;
    qtest prop_paranoid_never_diverges;
  ]
