open Relational
open Test_util

let test_render_golden () =
  let rendered =
    Table.render ~header:[ "a"; "bb" ]
      [ [ "1"; "x" ]; [ "22"; "longer" ] ]
  in
  let expected =
    String.concat "\n"
      [
        "+----+--------+";
        "| a  | bb     |";
        "+----+--------+";
        "| 1  | x      |";
        "| 22 | longer |";
        "+----+--------+";
      ]
  in
  Alcotest.(check string) "golden table" expected rendered

let test_ragged_rows () =
  let rendered = Table.render ~header:[ "a" ] [ [ "1"; "extra" ]; [] ] in
  Alcotest.(check bool) "no exception, extra column padded" true
    (Relational.Strutil.contains ~sub:"extra" rendered)

let test_of_relation () =
  let schema =
    Schema.make_exn ~name:"R"
      ~attributes:[ Attribute.int "id"; Attribute.str "v" ]
      ~key:[ "id" ]
  in
  let r =
    Relation.of_list_exn schema
      [ tuple [ "id", vi 1; "v", vs "x" ]; tuple [ "id", vi 2 ] ]
  in
  let s = Table.of_relation r in
  Alcotest.(check bool) "header" true (Relational.Strutil.contains ~sub:"| id | v" s);
  Alcotest.(check bool) "null cell" true (Relational.Strutil.contains ~sub:"null" s)

let test_of_rset () =
  let db =
    Database.create_relation_exn Database.empty
      (Schema.make_exn ~name:"R"
         ~attributes:[ Attribute.int "id" ]
         ~key:[ "id" ])
  in
  let rs = Algebra.eval_exn db (Algebra.Base "R") in
  let s = Table.of_rset rs in
  Alcotest.(check bool) "renders empty result" true
    (Relational.Strutil.contains ~sub:"| id |" s)

let suite =
  [
    Alcotest.test_case "render golden" `Quick test_render_golden;
    Alcotest.test_case "ragged rows" `Quick test_ragged_rows;
    Alcotest.test_case "of_relation" `Quick test_of_relation;
    Alcotest.test_case "of_rset" `Quick test_of_rset;
  ]
