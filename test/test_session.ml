(* Snapshot sessions: queue against a snapshot, group-commit against
   the present, rebase when concurrent commits overlap the session's
   footprint. Concurrency is modelled with persistent values: two
   sessions (or a session and single-shot updates) advance the same
   workspace between one another's begin_ and commit. *)
open Relational
open Viewobject

let ws () = Penguin.University.workspace ()

let instance_of ws course =
  let vo =
    match Penguin.Workspace.find_object ws "omega" with
    | Ok vo -> vo
    | Error e -> Alcotest.fail e
  in
  match
    Instantiate.instantiate
      ~where:(Predicate.eq_str "course_id" course)
      ws.Penguin.Workspace.db vo
  with
  | [ i ] -> i
  | l -> Alcotest.failf "expected 1 instance of %s, got %d" course (List.length l)

let grade_edit ws (course, pid) grade =
  match
    Vo_core.Request.partial_modify (instance_of ws course) ~label:"GRADES"
      ~at:(Tuple.make [ "pid", Value.Int pid ])
      ~f:(fun t -> Tuple.set t "grade" (Value.Str grade))
  with
  | Ok r -> r
  | Error e -> Alcotest.failf "building request on %s: %s" course e

let grade_of ws (course, pid) =
  let r = Database.relation_exn ws.Penguin.Workspace.db "GRADES" in
  match Relation.lookup r [ Value.Str course; Value.Int pid ] with
  | Some t -> Tuple.get t "grade"
  | None -> Alcotest.failf "no GRADES (%s, %d)" course pid

let queue_edit sess ws enrolment grade =
  (* Re-derive the edit from whatever state a rebase presents: the
     retry a real caller (Upql, the CLI) would provide. *)
  let retry ws' = Ok (Some (grade_edit ws' enrolment grade)) in
  match Penguin.Session.queue sess "omega" ~retry (grade_edit ws enrolment grade) with
  | Ok sess -> sess
  | Error e -> Alcotest.failf "queue: %s" (Penguin.Error.to_string e)

let commit_ok ws sess =
  match Penguin.Session.commit ws sess with
  | Ok r -> r
  | Error e -> Alcotest.failf "commit: %s" (Penguin.Error.to_string e)

let test_begin_queue_commit () =
  let w = ws () in
  let s = Penguin.Session.begin_ w in
  Alcotest.(check int) "base version" (Penguin.Workspace.version w)
    (Penguin.Session.base_version s);
  let s = queue_edit s w ("CS345", 2) "A-" in
  let s = queue_edit s w ("EE280", 1) "C" in
  Alcotest.(check int) "pending" 2 (Penguin.Session.pending s);
  (* nothing is published until commit *)
  Alcotest.(check bool) "snapshot untouched" true
    (grade_of w ("CS345", 2) = Value.Str "B+");
  let w', stats = commit_ok w s in
  Alcotest.(check int) "committed" 2 stats.Penguin.Session.committed;
  Alcotest.(check int) "attempts" 1 stats.Penguin.Session.attempts;
  Alcotest.(check bool) "not rebased" false stats.Penguin.Session.rebased;
  Alcotest.(check int) "version advanced by 2"
    (Penguin.Workspace.version w + 2)
    stats.Penguin.Session.version;
  Alcotest.(check bool) "grade 1" true (grade_of w' ("CS345", 2) = Value.Str "A-");
  Alcotest.(check bool) "grade 2" true (grade_of w' ("EE280", 1) = Value.Str "C")

let test_empty_session () =
  let w = ws () in
  let w', stats = commit_ok w (Penguin.Session.begin_ w) in
  Alcotest.(check int) "attempts" 0 stats.Penguin.Session.attempts;
  Alcotest.(check int) "version" (Penguin.Workspace.version w)
    stats.Penguin.Session.version;
  Alcotest.(check bool) "same db" true
    (Database.equal w.Penguin.Workspace.db w'.Penguin.Workspace.db)

let test_nonoverlapping_commit_is_clean () =
  let w = ws () in
  let s = Penguin.Session.begin_ w in
  let s = queue_edit s w ("CS345", 2) "A-" in
  (* A concurrent single-shot update on a different course commits in
     between: footprints are disjoint, so no rebase is needed. *)
  let w, outcome =
    Penguin.Workspace.update w "omega" (grade_edit w ("EE280", 1) "D")
  in
  (match outcome.Vo_core.Engine.result with
  | Transaction.Committed _ -> ()
  | Transaction.Rolled_back { reason; _ } -> Alcotest.fail reason);
  Alcotest.(check bool) "divergence clean" true
    (Penguin.Session.divergence w s = Penguin.Session.Clean);
  let w', stats = commit_ok w s in
  Alcotest.(check bool) "not rebased" false stats.Penguin.Session.rebased;
  Alcotest.(check bool) "both effects" true
    (grade_of w' ("CS345", 2) = Value.Str "A-"
    && grade_of w' ("EE280", 1) = Value.Str "D")

let test_conflicting_commit_rebases () =
  let w = ws () in
  let s = Penguin.Session.begin_ w in
  let s = queue_edit s w ("CS345", 2) "A-" in
  (* A concurrent update touches the same instance (same course, other
     student): the session's read footprint overlaps, forcing a rebase. *)
  let w, outcome =
    Penguin.Workspace.update w "omega" (grade_edit w ("CS345", 1) "F")
  in
  (match outcome.Vo_core.Engine.result with
  | Transaction.Committed _ -> ()
  | Transaction.Rolled_back { reason; _ } -> Alcotest.fail reason);
  (match Penguin.Session.divergence w s with
  | Penguin.Session.Conflicting (_ :: _) -> ()
  | _ -> Alcotest.fail "expected a conflict");
  let w', stats = commit_ok w s in
  Alcotest.(check bool) "rebased" true stats.Penguin.Session.rebased;
  Alcotest.(check int) "attempts" 2 stats.Penguin.Session.attempts;
  Alcotest.(check bool) "concurrent effect kept" true
    (grade_of w' ("CS345", 1) = Value.Str "F");
  Alcotest.(check bool) "session effect applied" true
    (grade_of w' ("CS345", 2) = Value.Str "A-")

let test_same_tuple_edits_commit_in_order () =
  let w = ws () in
  let s = Penguin.Session.begin_ w in
  (* Two session edits to the same grade: write-write within the batch;
     commit chunks them in arrival order, re-deriving the second. *)
  let s = queue_edit s w ("CS345", 2) "A-" in
  let s = queue_edit s w ("CS345", 2) "A+" in
  let w', stats = commit_ok w s in
  Alcotest.(check int) "committed" 2 stats.Penguin.Session.committed;
  Alcotest.(check bool) "last edit wins" true
    (grade_of w' ("CS345", 2) = Value.Str "A+")

let test_rebase_drops_noop () =
  let w = ws () in
  let s = Penguin.Session.begin_ w in
  (* Queue an edit whose retry reports "already satisfied": when the
     conflicting concurrent commit below forces a rebase, the update is
     dropped instead of replayed. *)
  let s =
    match
      Penguin.Session.queue s "omega"
        ~retry:(fun _ -> Ok None)
        (grade_edit w ("CS345", 2) "A-")
    with
    | Ok s -> s
    | Error e -> Alcotest.failf "queue: %s" (Penguin.Error.to_string e)
  in
  let w, outcome =
    Penguin.Workspace.update w "omega" (grade_edit w ("CS345", 1) "F")
  in
  (match outcome.Vo_core.Engine.result with
  | Transaction.Committed _ -> ()
  | Transaction.Rolled_back { reason; _ } -> Alcotest.fail reason);
  let w', stats = commit_ok w s in
  Alcotest.(check bool) "rebased" true stats.Penguin.Session.rebased;
  Alcotest.(check int) "nothing committed" 0 stats.Penguin.Session.committed;
  Alcotest.(check bool) "state is the concurrent one" true
    (Database.equal w.Penguin.Workspace.db w'.Penguin.Workspace.db)

let test_barrier_forces_rebase () =
  let w = ws () in
  let s = Penguin.Session.begin_ w in
  let s = queue_edit s w ("CS345", 2) "A-" in
  (* A wholesale database swap is a barrier: history since the snapshot
     is unknown, so the session must rebase unconditionally. *)
  let w = Penguin.Workspace.with_db w w.Penguin.Workspace.db in
  Alcotest.(check bool) "unknown history" true
    (Penguin.Session.divergence w s = Penguin.Session.Unknown_history);
  let w', stats = commit_ok w s in
  Alcotest.(check bool) "rebased" true stats.Penguin.Session.rebased;
  Alcotest.(check bool) "effect applied" true
    (grade_of w' ("CS345", 2) = Value.Str "A-")

let test_commit_log_records_updates () =
  let w = ws () in
  let v0 = Penguin.Workspace.version w in
  let s = Penguin.Session.begin_ w in
  let s = queue_edit s w ("CS345", 2) "A-" in
  let s = queue_edit s w ("EE280", 1) "C" in
  let w', stats = commit_ok w s in
  Alcotest.(check int) "log version" (v0 + 2) (Penguin.Workspace.version w');
  Alcotest.(check int) "stats version" (v0 + 2) stats.Penguin.Session.version;
  let entries = Penguin.Commit_log.entries_since w'.Penguin.Workspace.log v0 in
  Alcotest.(check int) "two entries" 2 (List.length entries);
  Alcotest.(check (list int)) "entry versions" [ v0 + 1; v0 + 2 ]
    (List.map (fun e -> e.Penguin.Commit_log.version) entries)

let suite =
  [
    Alcotest.test_case "begin, queue, commit" `Quick test_begin_queue_commit;
    Alcotest.test_case "empty session commits trivially" `Quick
      test_empty_session;
    Alcotest.test_case "non-overlapping concurrent commit" `Quick
      test_nonoverlapping_commit_is_clean;
    Alcotest.test_case "conflicting concurrent commit rebases" `Quick
      test_conflicting_commit_rebases;
    Alcotest.test_case "same-tuple session edits commit in order" `Quick
      test_same_tuple_edits_commit_in_order;
    Alcotest.test_case "rebase drops no-op updates" `Quick
      test_rebase_drops_noop;
    Alcotest.test_case "barrier forces rebase" `Quick test_barrier_forces_rebase;
    Alcotest.test_case "commit log records session updates" `Quick
      test_commit_log_records_updates;
  ]
