(* The sharded serving engine: 1-shard equivalence with the workspace
   pipeline, lane-local routing vs coordinator bounces, parallel
   clients on disjoint islands, cross-shard commit atomicity, the
   durable store round-trip, and the wedge discipline. *)
open Relational
open Structural
open Viewobject
open Test_util

(* --- a disjoint-islands fixture (mirrors the E15 bench shape) ---------- *)

let island_name k suffix = Fmt.str "I%02d_%s" k suffix

(* [n] ownership islands PIV --* SUB; with [cross], island k also owns a
   REF relation referencing island (k+1)'s TGT, making REF and TGT
   risky while PIV and SUB stay lane-local. *)
let islands_graph ?(cross = false) n =
  let piv k =
    Schema.make_exn ~name:(island_name k "PIV")
      ~attributes:[ Attribute.int "ida"; Attribute.str "val" ]
      ~key:[ "ida" ]
  in
  let sub k =
    Schema.make_exn ~name:(island_name k "SUB")
      ~attributes:
        [ Attribute.int "ida"; Attribute.int "idb"; Attribute.str "sval" ]
      ~key:[ "ida"; "idb" ]
  in
  let ref_ k =
    Schema.make_exn ~name:(island_name k "REF")
      ~attributes:
        [ Attribute.int "ida"; Attribute.int "idr"; Attribute.int "peer_a";
          Attribute.int "peer_t"; Attribute.str "note" ]
      ~key:[ "ida"; "idr" ]
  in
  let tgt k =
    Schema.make_exn ~name:(island_name k "TGT")
      ~attributes:
        [ Attribute.int "ida"; Attribute.int "idt"; Attribute.str "tval" ]
      ~key:[ "ida"; "idt" ]
  in
  let schemas =
    List.concat
      (List.init n (fun k ->
           if cross then [ piv k; sub k; ref_ k; tgt k ]
           else [ piv k; sub k ]))
  in
  let conns =
    List.concat
      (List.init n (fun k ->
           let own suffix =
             Connection.ownership (island_name k "PIV") (island_name k suffix)
               ~on:([ "ida" ], [ "ida" ])
           in
           if cross then
             [ own "SUB"; own "REF"; own "TGT";
               Connection.reference (island_name k "REF")
                 (island_name ((k + 1) mod n) "TGT")
                 ~on:([ "peer_a"; "peer_t" ], [ "ida"; "idt" ]) ]
           else [ own "SUB" ]))
  in
  Schema_graph.make_exn schemas conns

let islands_workspace ?(cross = false) n =
  let g = islands_graph ~cross n in
  let ins rel bindings db =
    match Database.insert db rel (Tuple.make bindings) with
    | Ok db -> db
    | Error e -> Alcotest.failf "fixture insert: %s" (Database.error_to_string e)
  in
  let island db k =
    let db =
      List.fold_left
        (fun db i ->
          ins (island_name k "PIV") [ "ida", vi i; "val", vs "a" ] db
          |> ins (island_name k "SUB")
               [ "ida", vi i; "idb", vi 0; "sval", vs "s" ])
        db
        (List.init 2 Fun.id)
    in
    if not cross then db
    else
      db
      |> ins (island_name k "TGT") [ "ida", vi 0; "idt", vi 0; "tval", vs "t" ]
      |> ins (island_name k "REF")
           [ "ida", vi 0; "idr", vi 0; "peer_a", vi 0; "peer_t", vi 0;
             "note", vs "n" ]
  in
  let db =
    List.fold_left island (Schema_graph.create_database g) (List.init n Fun.id)
  in
  let ws = { (Penguin.Workspace.create g) with Penguin.Workspace.db } in
  List.fold_left
    (fun ws k ->
      let ws =
        check_ok
          (Penguin.Workspace.define_object ws ~name:(Fmt.str "isl%d" k)
             ~pivot:(island_name k "PIV")
             ~keep:[ island_name k "PIV", []; island_name k "SUB", [] ])
      in
      if cross then
        let ws =
          check_ok
            (Penguin.Workspace.define_object ws ~name:(Fmt.str "ref%d" k)
               ~pivot:(island_name k "REF")
               ~keep:[ island_name k "REF", [] ])
        in
        (* refx<k> spans the reference: REF on island k, TGT on island
           k+1 — a replace touching both labels is a real cross-shard
           delta. *)
        check_ok
          (Penguin.Workspace.define_object ws ~name:(Fmt.str "refx%d" k)
             ~pivot:(island_name k "REF")
             ~keep:
               [ island_name k "REF", [];
                 island_name ((k + 1) mod n) "TGT", [] ])
      else ws)
    ws
    (List.init n Fun.id)

(* A forward/backward replacement pair on the named object's first
   instance: a client alternating fwd;back always commits real edits
   and any even number of commits restores the starting state. *)
let flip_pair ws ~object_name ~label ~attr =
  let inst =
    match Penguin.Workspace.instances ws object_name with
    | Ok (i :: _) -> i
    | Ok [] -> Alcotest.failf "%s: no instances" object_name
    | Error e -> Alcotest.failf "%s: %s" object_name e
  in
  let flipped =
    check_ok
      (Vo_core.Request.modify_where inst ~label
         ~sel:(fun _ -> true)
         ~f:(fun t -> Tuple.set t attr (Value.Str "flip")))
  in
  ( Vo_core.Request.replace ~old_instance:inst ~new_instance:flipped,
    Vo_core.Request.replace ~old_instance:flipped ~new_instance:inst )

(* A replace on refx<k> flipping both its REF note (island k) and its
   TGT tval (island k+1) to [stamp]: the staged delta spans two shards,
   forcing the two-phase coordinator path. *)
let cross_flip ?(stamp = "flip") ws k =
  let name = Fmt.str "refx%d" k in
  let inst =
    match Penguin.Workspace.instances ws name with
    | Ok (i :: _) -> i
    | Ok [] -> Alcotest.failf "%s: no instances" name
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  let step1 =
    check_ok
      (Vo_core.Request.modify_where inst ~label:(island_name k "REF")
         ~sel:(fun _ -> true)
         ~f:(fun t -> Tuple.set t "note" (Value.Str stamp)))
  in
  let step2 =
    check_ok
      (Vo_core.Request.modify_where step1
         ~label:(island_name ((k + 1) mod 2) "TGT")
         ~sel:(fun _ -> true)
         ~f:(fun t -> Tuple.set t "tval" (Value.Str stamp)))
  in
  Vo_core.Request.replace ~old_instance:inst ~new_instance:step2

(* A lane-local SUB edit on island k, re-derived from the current
   state. *)
let sub_flip ?(stamp = "flip") ws k =
  let inst =
    match Penguin.Workspace.instances ws (Fmt.str "isl%d" k) with
    | Ok (i :: _) -> i
    | Ok [] -> Alcotest.failf "isl%d: no instances" k
    | Error e -> Alcotest.failf "isl%d: %s" k e
  in
  let flipped =
    check_ok
      (Vo_core.Request.modify_where inst ~label:(island_name k "SUB")
         ~sel:(fun _ -> true)
         ~f:(fun t -> Tuple.set t "sval" (Value.Str stamp)))
  in
  Vo_core.Request.replace ~old_instance:inst ~new_instance:flipped

let committed = function
  | { Vo_core.Engine.result = Transaction.Committed db; _ } -> db
  | { Vo_core.Engine.result = Transaction.Rolled_back { reason; _ }; _ } ->
      Alcotest.failf "expected a commit, got: %s" reason

let shard_info eng s = List.nth (Penguin.Sharded.shards eng) s

(* --- university helpers ------------------------------------------------ *)

let grade_edit ws course grade =
  let vo = check_ok (Penguin.Workspace.find_object ws "omega") in
  let inst =
    match
      Instantiate.instantiate
        ~where:(Predicate.eq_str "course_id" course)
        ws.Penguin.Workspace.db vo
    with
    | [ i ] -> i
    | l -> Alcotest.failf "expected 1 instance, got %d" (List.length l)
  in
  check_ok
    (Vo_core.Request.partial_modify inst ~label:"GRADES"
       ~at:(tuple [ "pid", vi 2 ])
       ~f:(fun t -> Tuple.set t "grade" (Value.Str grade)))

(* The CS777 insert writes COURSES+GRADES (shard 0) and STUDENT
   (shard 3): a genuine two-participant cross-shard commit. *)
let cs777_insert ws =
  ignore ws;
  let inst =
    Instance.make ~label:"COURSES" ~relation:"COURSES"
      ~tuple:
        (tuple
           [ "course_id", vs "CS777"; "title", vs "Query Processing";
             "units", vi 3; "level", vs "grad" ])
      ~children:
        [ "DEPARTMENT",
          [ Instance.leaf ~label:"DEPARTMENT" ~relation:"DEPARTMENT"
              (tuple
                 [ "dept_name", vs "Computer Science"; "building", vs "Gates" ]) ];
          "GRADES",
          [ Instance.make ~label:"GRADES" ~relation:"GRADES"
              ~tuple:(tuple [ "pid", vi 6; "grade", vs "A" ])
              ~children:
                [ "STUDENT#2",
                  [ Instance.leaf ~label:"STUDENT#2" ~relation:"STUDENT"
                      (tuple [ "pid", vi 6 ]) ] ] ] ]
  in
  Vo_core.Request.insert inst

(* --- one shard behaves exactly like the workspace pipeline ------------- *)

let test_one_shard_equivalence () =
  let grades = [ "A-"; "B"; "C+"; "A" ] in
  (* Reference: the sequential Workspace.update pipeline. *)
  let ref_ws =
    List.fold_left
      (fun ws g ->
        let ws', outcome =
          Penguin.Workspace.update ws "omega" (grade_edit ws "CS345" g)
        in
        ignore (committed outcome);
        ws')
      (Penguin.University.workspace ())
      grades
  in
  (* The same requests through a 1-shard engine. *)
  let eng =
    Penguin.Sharded.create ~max_shards:1 (Penguin.University.workspace ())
  in
  Alcotest.(check int) "one shard" 1 (Penguin.Sharded.shard_count eng);
  List.iter
    (fun g ->
      let ws = Penguin.Sharded.to_workspace eng in
      ignore (committed (Penguin.Sharded.update eng "omega" (grade_edit ws "CS345" g))))
    grades;
  let ws = Penguin.Sharded.to_workspace eng in
  Alcotest.(check bool) "same database" true
    (Database.equal ref_ws.Penguin.Workspace.db ws.Penguin.Workspace.db);
  Alcotest.(check int) "same version"
    (Penguin.Workspace.version ref_ws)
    (Penguin.Sharded.version eng);
  (* With a single shard nothing can cross; every relation is local. *)
  let s = shard_info eng 0 in
  Alcotest.(check int) "all commits lane-local" (List.length grades)
    s.Penguin.Sharded.commits;
  Alcotest.(check int) "no coordinator commits" 0 s.Penguin.Sharded.cross_commits;
  check_ok ~msg:"consistent" (Penguin.Workspace.check_consistency ws);
  Penguin.Sharded.shutdown eng

(* --- routing: lane-local vs bounced ------------------------------------ *)

let test_routing_local_and_bounced () =
  let ws = islands_workspace ~cross:true 2 in
  let eng = Penguin.Sharded.create ws in
  Alcotest.(check int) "two islands" 2 (Penguin.Sharded.shard_count eng);
  (* A SUB edit stays on its island: no risky relation touched. *)
  let fwd, back =
    flip_pair (Penguin.Sharded.to_workspace eng) ~object_name:"isl0"
      ~label:(island_name 0 "SUB") ~attr:"sval"
  in
  ignore (committed (Penguin.Sharded.update eng "isl0" fwd));
  ignore (committed (Penguin.Sharded.update eng "isl0" back));
  let s0 = shard_info eng 0 in
  Alcotest.(check int) "lane-local commits" 2 s0.Penguin.Sharded.commits;
  Alcotest.(check int) "no bounce" 0 s0.Penguin.Sharded.cross_commits;
  (* A REF edit touches a risky relation: it must bounce to the
     coordinator even though the delta stays on one shard. *)
  let fwd, _ =
    flip_pair (Penguin.Sharded.to_workspace eng) ~object_name:"ref0"
      ~label:(island_name 0 "REF") ~attr:"note"
  in
  ignore (committed (Penguin.Sharded.update eng "ref0" fwd));
  let s0 = shard_info eng 0 in
  Alcotest.(check int) "risky edit went through the coordinator" 1
    s0.Penguin.Sharded.cross_commits;
  Alcotest.(check int) "lane count unchanged" 2 s0.Penguin.Sharded.commits;
  (* Versions: shard 0 took 3 commits, shard 1 none. *)
  Alcotest.(check (list int)) "version vector" [ 3; 0 ]
    (Array.to_list (Penguin.Sharded.versions eng));
  Alcotest.(check int) "global version sums the vector" 3
    (Penguin.Sharded.version eng);
  check_ok ~msg:"consistent"
    (Penguin.Workspace.check_consistency (Penguin.Sharded.to_workspace eng));
  Penguin.Sharded.shutdown eng

(* --- parallel clients on disjoint islands ------------------------------ *)

let test_parallel_disjoint_clients () =
  let islands = 4 and per_client = 8 in
  let domains =
    match Sys.getenv_opt "PENGUIN_DOMAINS" with
    | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 2)
    | None -> 2
  in
  let ws = islands_workspace islands in
  let eng = Penguin.Sharded.create ~domains ws in
  Alcotest.(check int) "pool size honors the request"
    (min domains islands) (Penguin.Sharded.domains eng);
  (* Pre-derive each island's fwd/back pair, then hammer from one
     client domain per island. Disjoint islands must all commit —
     there is nothing to conflict on. *)
  let specs =
    List.init islands (fun k ->
        ( Fmt.str "isl%d" k,
          flip_pair (Penguin.Sharded.to_workspace eng)
            ~object_name:(Fmt.str "isl%d" k)
            ~label:(island_name k "SUB") ~attr:"sval" ))
  in
  let client (name, (fwd, back)) () =
    let failures = ref 0 in
    for i = 1 to per_client do
      let req = if i mod 2 = 1 then fwd else back in
      let o = Penguin.Sharded.update eng name req in
      if not (Transaction.is_committed o.Vo_core.Engine.result) then
        incr failures
    done;
    !failures
  in
  let doms = List.map (fun spec -> Domain.spawn (client spec)) specs in
  let failures = List.fold_left (fun acc d -> acc + Domain.join d) 0 doms in
  Alcotest.(check int) "every disjoint commit succeeded" 0 failures;
  Alcotest.(check int) "global version counts them all"
    (islands * per_client)
    (Penguin.Sharded.version eng);
  List.iteri
    (fun k (s : Penguin.Sharded.shard_info) ->
      Alcotest.(check int) (Fmt.str "shard %d lane commits" k) per_client
        s.Penguin.Sharded.commits;
      Alcotest.(check int) (Fmt.str "shard %d cross commits" k) 0
        s.Penguin.Sharded.cross_commits)
    (Penguin.Sharded.shards eng);
  (* per_client is even: the store must be back to its initial state. *)
  let final = Penguin.Sharded.to_workspace eng in
  Alcotest.(check bool) "even flips restore the fixture" true
    (Database.equal ws.Penguin.Workspace.db final.Penguin.Workspace.db);
  check_ok ~msg:"consistent" (Penguin.Workspace.check_consistency final);
  Penguin.Sharded.shutdown eng

(* --- cross-shard commits ----------------------------------------------- *)

let test_cross_shard_commit () =
  let ws0 = islands_workspace ~cross:true 2 in
  let eng = Penguin.Sharded.create ws0 in
  let req = cross_flip (Penguin.Sharded.to_workspace eng) 0 in
  let db' = committed (Penguin.Sharded.update eng "refx0" req) in
  (* The replace writes I00_REF (shard 0) and I01_TGT (shard 1): both
     participate in one coordinator commit, each advancing its own
     version by one. *)
  let s0 = shard_info eng 0 and s1 = shard_info eng 1 in
  Alcotest.(check int) "shard 0 participated" 1 s0.Penguin.Sharded.cross_commits;
  Alcotest.(check int) "shard 1 participated" 1 s1.Penguin.Sharded.cross_commits;
  Alcotest.(check int) "no lane commits" 0
    (s0.Penguin.Sharded.commits + s1.Penguin.Sharded.commits);
  Alcotest.(check (list int)) "both participants advanced" [ 1; 1 ]
    (Array.to_list (Penguin.Sharded.versions eng));
  Alcotest.(check int) "global version counts both entries" 2
    (Penguin.Sharded.version eng);
  (* The outcome's database is the committed state, and it equals the
     plain workspace pipeline's answer to the same request. *)
  let ws = Penguin.Sharded.to_workspace eng in
  Alcotest.(check bool) "outcome db is the committed db" true
    (Database.equal db' ws.Penguin.Workspace.db);
  let ref_ws, ref_outcome = Penguin.Workspace.update ws0 "refx0" req in
  ignore (committed ref_outcome);
  Alcotest.(check bool) "matches the workspace pipeline" true
    (Database.equal ref_ws.Penguin.Workspace.db ws.Penguin.Workspace.db);
  check_ok ~msg:"consistent" (Penguin.Workspace.check_consistency ws);
  Penguin.Sharded.shutdown eng

let test_sharded_matches_workspace_on_mixed_traffic () =
  (* The same mixed sequence — a cross-shard insert, then grade edits —
     through the sharded engine and the plain workspace pipeline must
     land on the same database. *)
  let run_ws () =
    List.fold_left
      (fun ws step ->
        let ws', outcome = Penguin.Workspace.update ws "omega" (step ws) in
        ignore (committed outcome);
        ws')
      (Penguin.University.workspace ())
      [ cs777_insert; (fun ws -> grade_edit ws "CS345" "A-");
        (fun ws -> grade_edit ws "EE280" "C") ]
  in
  let eng = Penguin.Sharded.create (Penguin.University.workspace ()) in
  List.iter
    (fun step ->
      ignore
        (committed
           (Penguin.Sharded.update eng "omega"
              (step (Penguin.Sharded.to_workspace eng)))))
    [ cs777_insert; (fun ws -> grade_edit ws "CS345" "A-");
      (fun ws -> grade_edit ws "EE280" "C") ];
  Alcotest.(check bool) "same final database" true
    (Database.equal (run_ws ()).Penguin.Workspace.db
       (Penguin.Sharded.to_workspace eng).Penguin.Workspace.db);
  Penguin.Sharded.shutdown eng

(* --- rejections stay clean --------------------------------------------- *)

let test_rejection_changes_nothing () =
  let eng = Penguin.Sharded.create (Penguin.University.workspace ()) in
  let v0 = Penguin.Sharded.version eng in
  let o =
    Penguin.Sharded.update eng "nonesuch"
      (cs777_insert (Penguin.Sharded.to_workspace eng))
  in
  (match o.Vo_core.Engine.result with
  | Transaction.Rolled_back { reason; _ } ->
      Alcotest.(check bool) "names the object" true
        (Strutil.contains ~sub:"nonesuch" reason)
  | Transaction.Committed _ -> Alcotest.fail "unknown object must not commit");
  (* A stale request: derived from the pre-state, invalidated by a
     concurrent commit to the same tuple. *)
  let stale = grade_edit (Penguin.Sharded.to_workspace eng) "CS345" "D" in
  ignore
    (committed
       (Penguin.Sharded.update eng "omega"
          (grade_edit (Penguin.Sharded.to_workspace eng) "CS345" "F")));
  let o = Penguin.Sharded.update eng "omega" stale in
  (match o.Vo_core.Engine.result with
  | Transaction.Committed _ -> Alcotest.fail "stale request must not commit"
  | Transaction.Rolled_back { reason; _ } ->
      Alcotest.(check bool) "stale detected" true
        (Strutil.contains ~sub:"stale" reason));
  Alcotest.(check int) "only the grade commit landed" (v0 + 1)
    (Penguin.Sharded.version eng);
  Alcotest.(check bool) "engine not wedged by rejections" false
    (Penguin.Sharded.wedged eng);
  check_ok ~msg:"consistent"
    (Penguin.Workspace.check_consistency (Penguin.Sharded.to_workspace eng));
  Penguin.Sharded.shutdown eng

(* --- durability -------------------------------------------------------- *)

let sharded_root dir = Filename.concat dir "shards"

let rm_rf_deep dir =
  if Sys.file_exists dir then begin
    let rec go p =
      if Sys.is_directory p then begin
        Array.iter (fun f -> go (Filename.concat p f)) (Sys.readdir p);
        try Unix.rmdir p with Unix.Unix_error _ -> ()
      end
      else try Sys.remove p with Sys_error _ -> ()
    in
    go dir
  end

let test_durable_roundtrip () =
  let dir = temp_dir "sharded" in
  let root = sharded_root dir in
  let plan =
    check_ok_e (Penguin.Shard_store.init ~root (islands_workspace ~cross:true 2))
  in
  Alcotest.(check int) "store sharded 2 ways" 2 (Partition.count plan);
  let eng = check_ok_e (Penguin.Sharded.open_store ~root ()) in
  (* One two-participant 2PC replace and one lane-local commit, both
     write-ahead journaled. *)
  ignore
    (committed
       (Penguin.Sharded.update eng "refx0"
          (cross_flip (Penguin.Sharded.to_workspace eng) 0)));
  ignore
    (committed
       (Penguin.Sharded.update eng "isl1"
          (sub_flip (Penguin.Sharded.to_workspace eng) 1)));
  let committed_db = (Penguin.Sharded.to_workspace eng).Penguin.Workspace.db in
  let vec = Array.to_list (Penguin.Sharded.versions eng) in
  Penguin.Sharded.shutdown eng;
  (* A read-only open must replay both commits — the 2PC one on all its
     participants or none. *)
  let o = check_ok_e (Penguin.Shard_store.open_store ~root ()) in
  Alcotest.(check (list int)) "version vector survives" vec
    (Array.to_list o.Penguin.Shard_store.versions);
  Alcotest.(check bool) "database survives" true
    (Database.equal committed_db o.Penguin.Shard_store.ws.Penguin.Workspace.db);
  check_ok ~msg:"recovered consistent"
    (Penguin.Workspace.check_consistency o.Penguin.Shard_store.ws);
  (* Reopen as an engine, rotate every journal, and open once more:
     replay must now be empty at the same state. *)
  let eng = check_ok_e (Penguin.Sharded.open_store ~root ()) in
  Alcotest.(check bool) "reopened engine sees the same state" true
    (Database.equal committed_db
       (Penguin.Sharded.to_workspace eng).Penguin.Workspace.db);
  check_ok_e (Penguin.Sharded.persist eng);
  Penguin.Sharded.shutdown eng;
  let o = check_ok_e (Penguin.Shard_store.open_store ~root ()) in
  List.iter
    (fun (r : Penguin.Shard_store.shard_report) ->
      Alcotest.(check int)
        (Fmt.str "shard %d replay empty after rotation" r.Penguin.Shard_store.shard)
        0 r.Penguin.Shard_store.replayed)
    o.Penguin.Shard_store.report.Penguin.Shard_store.shards;
  Alcotest.(check bool) "rotated state identical" true
    (Database.equal committed_db o.Penguin.Shard_store.ws.Penguin.Workspace.db);
  rm_rf_deep dir

let test_journal_failure_wedges () =
  let dir = temp_dir "sharded" in
  let root = sharded_root dir in
  ignore
    (check_ok_e (Penguin.Shard_store.init ~root (Penguin.University.workspace ())));
  (* An io that fails journal appends once armed; everything else is
     passed through. *)
  let armed = Atomic.make false in
  let d = Penguin.Fsio.default in
  let io =
    {
      d with
      Penguin.Fsio.write =
        (fun ~path ~append content ->
          if Atomic.get armed && Filename.check_suffix path ".journal" then
            Error
              (Penguin.Error.io ~op:Penguin.Error.Write ~path
                 "injected journal failure")
          else d.Penguin.Fsio.write ~path ~append content);
    }
  in
  let eng = check_ok_e (Penguin.Sharded.open_store ~io ~root ()) in
  ignore
    (committed
       (Penguin.Sharded.update eng "omega"
          (grade_edit (Penguin.Sharded.to_workspace eng) "CS345" "A-")));
  let good_db = (Penguin.Sharded.to_workspace eng).Penguin.Workspace.db in
  Atomic.set armed true;
  let o =
    Penguin.Sharded.update eng "omega"
      (grade_edit (Penguin.Sharded.to_workspace eng) "EE280" "C")
  in
  (match o.Vo_core.Engine.result with
  | Transaction.Committed _ ->
      Alcotest.fail "a failed journal append must not commit"
  | Transaction.Rolled_back { reason; _ } ->
      Alcotest.(check bool) "reason names the injection" true
        (Strutil.contains ~sub:"injected journal failure" reason));
  Alcotest.(check bool) "engine is wedged" true (Penguin.Sharded.wedged eng);
  (* Wedged: even a previously fine update is rejected... *)
  let o =
    Penguin.Sharded.update eng "omega"
      (grade_edit (Penguin.Sharded.to_workspace eng) "CS345" "B")
  in
  (match o.Vo_core.Engine.result with
  | Transaction.Committed _ -> Alcotest.fail "a wedged engine must reject"
  | Transaction.Rolled_back { reason; _ } ->
      Alcotest.(check bool) "reason says wedged" true
        (Strutil.contains ~sub:"wedged" reason));
  (* ...and the committed state is frozen at the last good commit. *)
  Alcotest.(check bool) "state frozen" true
    (Database.equal good_db
       (Penguin.Sharded.to_workspace eng).Penguin.Workspace.db);
  Penguin.Sharded.shutdown eng;
  (* Reopening the store resolves: only the good commit is there. *)
  let o = check_ok_e (Penguin.Shard_store.open_store ~root ()) in
  Alcotest.(check bool) "only the good commit on disk" true
    (Database.equal good_db o.Penguin.Shard_store.ws.Penguin.Workspace.db);
  rm_rf_deep dir

let suite =
  [
    Alcotest.test_case "one shard is the workspace pipeline" `Quick
      test_one_shard_equivalence;
    Alcotest.test_case "routing: lane-local vs risky bounce" `Quick
      test_routing_local_and_bounced;
    Alcotest.test_case "parallel clients on disjoint islands" `Quick
      test_parallel_disjoint_clients;
    Alcotest.test_case "a cross-shard commit spans its participants" `Quick
      test_cross_shard_commit;
    Alcotest.test_case "mixed traffic matches the workspace pipeline" `Quick
      test_sharded_matches_workspace_on_mixed_traffic;
    Alcotest.test_case "rejections change nothing" `Quick
      test_rejection_changes_nothing;
    Alcotest.test_case "durable round-trip, 2PC replay, rotation" `Quick
      test_durable_roundtrip;
    Alcotest.test_case "journal failure wedges the engine" `Quick
      test_journal_failure_wedges;
  ]
