(* Journal-shipping replication: follower reads, rotation following,
   quarantine-and-refetch, promotion with epoch fencing, and the
   leader-kill sweep.

   The sweep's key fact: a promoted follower's state is a pure function
   of the complete journal frames at or before the kill point. Every
   byte offset of the workload's journal is classified by running the
   follower's own frame decoder on that exact prefix (so each byte's
   outcome is checked against the acknowledged-commit ledger), and the
   full replica → promote → fence pipeline runs for a representative
   cut of every distinct outcome class — frame boundary, mid-length,
   mid-CRC, and mid-payload kills. Set PENGUIN_REPLICA_SWEEP=full (the
   @replica-suite alias does) for the 100-commit workload. *)
open Relational
open Test_util

module R = Penguin.Replica
module J = Penguin.Journal

let full_sweep = Sys.getenv_opt "PENGUIN_REPLICA_SWEEP" = Some "full"
let store_in = Test_recovery.store_in
let target_in dir = Filename.concat dir "follower.pgn"

let commit ?rotate_threshold dir grade =
  check_ok_e
    (Test_recovery.commit_grade ?rotate_threshold ~io:Penguin.Fsio.default dir
       ("CS345", 2) grade)

let follower dir =
  check_ok_e
    (R.create ~refetch_limit:2
       ~feed:(R.file_feed (store_in dir))
       ~target:(target_in dir) ())

let catch_up r = check_ok_e (R.poll_until_idle r)

let str_val = function
  | Relational.Value.Str s -> s
  | v -> Alcotest.failf "expected a string value, got %a" Relational.Value.pp v

let db_equal msg a b =
  Alcotest.(check bool)
    msg true
    (Database.equal a.Penguin.Workspace.db b.Penguin.Workspace.db)

(* --- satellite: resumable byte offsets from replay --------------------- *)

let test_replay_offsets () =
  let dir = temp_dir "replica-offsets" in
  Test_recovery.make_store dir;
  List.iter (commit dir) [ "A-"; "B-"; "C+" ];
  let jnl = J.create (J.journal_path (store_in dir)) in
  let r =
    match check_ok_e (J.replay jnl) with
    | Some r -> r
    | None -> Alcotest.fail "journal missing"
  in
  Alcotest.(check int) "three records" 3 r.J.records;
  Alcotest.(check int) "one framed entry per record" 3 (List.length r.J.framed);
  (* Offsets are strictly increasing, start past the header, and end at
     the clean prefix: any of them is a valid resume point for tail. *)
  let offs = List.map fst r.J.framed in
  Alcotest.(check bool) "offsets strictly increase" true
    (List.sort_uniq compare offs = offs);
  Alcotest.(check bool) "first record sits past the header" true
    (List.hd offs > 0);
  List.iteri
    (fun i off ->
      match check_ok_e (J.tail jnl ~off) with
      | None -> Alcotest.fail "tail: journal missing"
      | Some (frames, clean, torn) ->
          Alcotest.(check int) "no torn tail" 0 torn;
          Alcotest.(check int) "tail resumes mid-journal" (3 - i)
            (List.length frames);
          Alcotest.(check int) "tail ends at the clean prefix" r.J.clean_bytes
            clean)
    offs;
  rm_rf dir

(* --- satellite: corrupt errors name the failing record ----------------- *)

let test_corrupt_record_detail () =
  let dir = temp_dir "replica-corrupt" in
  Test_recovery.make_store dir;
  commit dir "A-";
  (* A checksum-valid frame whose payload is not a journal record:
     corruption beyond a torn tail, localized to record index 1. *)
  let jpath = J.journal_path (store_in dir) in
  check_ok_e
    (Penguin.Fsio.default.Penguin.Fsio.write ~path:jpath ~append:true
       (J.frame "(never a record)"));
  let err = check_err_e (Penguin.Recovery.open_store (store_in dir)) in
  let msg = Penguin.Error.to_string err in
  Alcotest.(check bool) "error names the record" true
    (Strutil.contains ~sub:"record 1" msg);
  Alcotest.(check bool) "error names the journal" true
    (Strutil.contains ~sub:jpath msg);
  (* ...and the JSON rendering carries the same coordinates. *)
  let doc = Penguin.Error.to_json err in
  let member k =
    match Obs.Json.member k doc with
    | Some v -> v
    | None -> Alcotest.failf "error json lacks %S" k
  in
  (match member "path" with
  | Obs.Json.Str p -> Alcotest.(check string) "json path" jpath p
  | _ -> Alcotest.fail "error json path is not a string");
  (match Obs.Json.to_float (member "record") with
  | Some f -> Alcotest.(check (float 1e-9)) "json record index" 1. f
  | None -> Alcotest.fail "error json record is not a number");
  rm_rf dir

(* --- following and follower reads -------------------------------------- *)

let test_follow_and_reads () =
  let dir = temp_dir "replica-follow" in
  Test_recovery.make_store dir;
  List.iter (commit dir) [ "A-"; "B-"; "C+" ];
  let r = follower dir in
  let p = catch_up r in
  Alcotest.(check bool) "records were shipped" true (p.R.records >= 3);
  Alcotest.(check int) "nothing left unapplied" 0 p.R.lag_records;
  let lws, _ = Test_recovery.recover dir in
  Alcotest.(check int) "position matches the leader"
    (Penguin.Workspace.version lws)
    (R.position r);
  db_equal "follower state equals the leader" lws (R.workspace r);
  Alcotest.(check string) "the shipped edit is visible" "C+"
    (str_val
       (Test_recovery.grade_of (R.workspace r) ("CS345", 2)));
  (* Reads go through the attached cache at the replication position:
     the second read of the same definition is a warm hit. *)
  let insts = check_ok (R.instances r "omega") in
  Alcotest.(check bool) "instances served" true (insts <> []);
  let hits = (Viewobject.Cache.stats (R.cache r)).Viewobject.Cache.hits in
  let _again = check_ok (R.instances r "omega") in
  Alcotest.(check bool) "follower reads are cache-warm" true
    ((Viewobject.Cache.stats (R.cache r)).Viewobject.Cache.hits > hits);
  let matched = check_ok (R.oql r "omega" "course_id = 'CS345'") in
  Alcotest.(check int) "OQL at the replication position" 1
    (List.length matched);
  (* An idle poll is quiet: no records, no rotation, no resync. *)
  let p = check_ok_e (R.poll r) in
  Alcotest.(check int) "idle poll ships nothing" 0 p.R.records;
  Alcotest.(check bool) "idle poll neither rotates nor resyncs" false
    (p.R.rotated || p.R.resynced);
  (* The follower's own store is independently recoverable: open its
     files as any crashed store. *)
  let fws, _ =
    check_ok_e (Penguin.Recovery.open_store ~repair:true (target_in dir))
  in
  db_equal "follower store round-trips through recovery" lws fws;
  rm_rf dir

(* --- rotation racing an active tailer ---------------------------------- *)

(* A leader compaction (snapshot + journal re-initialization at the
   current version) races the tailer: the follower must detect the new
   base on its next poll, follow the barrier in place — no snapshot
   refetch — and keep tailing the fresh journal with no gap and no
   replay. *)
let test_rotation_followed_in_place () =
  let dir = temp_dir "replica-rotate" in
  Test_recovery.make_store dir;
  List.iter (commit dir) [ "A-"; "B-" ];
  let r = follower dir in
  let _ = catch_up r in
  let v_before = R.position r in
  (* The leader rotates while the tailer sits mid-journal. *)
  let lws, _ = Test_recovery.recover dir in
  check_ok_e (Penguin.Recovery.snapshot ~store:(store_in dir) lws);
  let p = catch_up r in
  Alcotest.(check bool) "the rotation barrier was followed" true p.R.rotated;
  Alcotest.(check bool) "no resync was needed" false p.R.resynced;
  Alcotest.(check int) "no replay: position unchanged over the barrier"
    v_before (R.position r);
  (* Tailing continues from the new base without gaps. *)
  List.iter (commit dir) [ "C+"; "D+" ];
  let p = catch_up r in
  Alcotest.(check int) "both post-rotation commits shipped" 2 p.R.records;
  let lws, _ = Test_recovery.recover dir in
  Alcotest.(check int) "caught up past the rotation"
    (Penguin.Workspace.version lws)
    (R.position r);
  db_equal "state equal across the rotation" lws (R.workspace r);
  rm_rf dir

(* A follower that was down across a rotation lost its window: the
   records between its position and the new base exist only in the
   leader's snapshot, so the poll must fall back to a full resync. *)
let test_rotation_resync_when_behind () =
  let dir = temp_dir "replica-resync" in
  Test_recovery.make_store dir;
  commit dir "A-";
  let r = follower dir in
  let _ = catch_up r in
  (* Two commits land and the second folds the journal: the follower
     missed both, and the new base is past its position. *)
  commit dir "B-";
  commit ~rotate_threshold:1 dir "C+";
  let p = catch_up r in
  Alcotest.(check bool) "fell back to a full resync" true p.R.resynced;
  let lws, _ = Test_recovery.recover dir in
  Alcotest.(check int) "resync caught the follower up"
    (Penguin.Workspace.version lws)
    (R.position r);
  db_equal "state equal after resync" lws (R.workspace r);
  Alcotest.(check string) "post-rotation edit visible" "C+"
    (str_val
       (Test_recovery.grade_of (R.workspace r) ("CS345", 2)));
  rm_rf dir

(* --- torn tails and quarantine ----------------------------------------- *)

let test_torn_tail_and_quarantine () =
  let dir = temp_dir "replica-quarantine" in
  Test_recovery.make_store dir;
  commit dir "A-";
  let r = follower dir in
  let _ = catch_up r in
  let io = Penguin.Fsio.default in
  let jpath = J.journal_path (store_in dir) in
  let clean =
    match check_ok_e (io.Penguin.Fsio.read jpath) with
    | Some c -> c
    | None -> Alcotest.fail "leader journal missing"
  in
  (* Torn bytes at the leader's tail are an append in flight: consumed
     never, complained about never. *)
  check_ok_e (io.Penguin.Fsio.write ~path:jpath ~append:true "torn-tail");
  let p = check_ok_e (R.poll r) in
  Alcotest.(check int) "torn tail ships nothing" 0 p.R.records;
  (match R.status r with
  | R.Following -> ()
  | s -> Alcotest.failf "torn tail degraded the follower: %s" (R.status_label s));
  (* A checksum-valid frame with a garbage payload is corruption: the
     follower refetches it, then quarantines — degraded, still serving,
     never wedged, and the bad bytes never reach its own journal. *)
  check_ok_e
    (io.Penguin.Fsio.write ~path:jpath ~append:false
       (clean ^ J.frame "(never a record)"));
  let _ = check_ok_e (R.poll r) in
  let _ = check_ok_e (R.poll r) in
  (match R.status r with
  | R.Degraded _ -> ()
  | s -> Alcotest.failf "expected quarantine, follower is %s" (R.status_label s));
  Alcotest.(check bool) "degraded follower still serves reads" true
    (check_ok (R.instances r "omega") <> []);
  let fws, _ =
    check_ok_e (Penguin.Recovery.open_store ~repair:true (target_in dir))
  in
  Alcotest.(check int) "no unverified bytes in the follower journal"
    (R.position r)
    (Penguin.Workspace.version fws);
  (* The leader heals (torn-tail repair rewrites the clean prefix, a
     fresh commit lands): the quarantined follower refetches its way
     back to Following on its own. *)
  check_ok_e (io.Penguin.Fsio.write ~path:jpath ~append:false clean);
  commit dir "B-";
  let p = catch_up r in
  Alcotest.(check bool) "healed follower ships again" true (p.R.records >= 1);
  (match R.status r with
  | R.Following -> ()
  | s -> Alcotest.failf "follower did not heal: %s" (R.status_label s));
  let lws, _ = Test_recovery.recover dir in
  db_equal "healed follower equals the leader" lws (R.workspace r);
  rm_rf dir

(* --- promotion and fencing --------------------------------------------- *)

let test_promote_and_fence () =
  let dir = temp_dir "replica-promote" in
  Test_recovery.make_store dir;
  List.iter (commit dir) [ "A-"; "B-" ];
  let r = follower dir in
  let _ = catch_up r in
  (* The deposed leader holds an open handle from before the failover:
     its epoch is 0. *)
  let lws, lreport = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  Alcotest.(check int) "pre-promotion epoch" 0 lreport.Penguin.Recovery.epoch;
  (* Promote the follower on its own files. *)
  let pws, epoch = check_ok_e (R.promote r) in
  Alcotest.(check int) "promotion bumps the epoch" 1 epoch;
  Alcotest.(check int) "promoted from the last durable record"
    (Penguin.Workspace.version lws)
    (Penguin.Workspace.version pws);
  check_err_contains_e ~sub:"promoted" (R.poll r);
  (* The promoted store is writable under its new epoch. *)
  let pws' = Test_recovery.apply_edit pws ("CS345", 2) "D+" in
  let _ =
    check_ok_e
      (Penguin.Recovery.persist ~store:(target_in dir)
         ~since:(Penguin.Workspace.version pws) ~expect_epoch:epoch pws')
  in
  let re, report =
    check_ok_e (Penguin.Recovery.open_store (target_in dir))
  in
  Alcotest.(check int) "reopened at the new epoch" 1
    report.Penguin.Recovery.epoch;
  Alcotest.(check string) "post-promotion write durable" "D+"
    (str_val (Test_recovery.grade_of re ("CS345", 2)));
  (* Shared-path failover: promoting the leader's own files fences the
     deposed leader's handle — its next persist refuses before
     appending anything. *)
  let _pws2, epoch2 = check_ok_e (R.promote_store (store_in dir)) in
  Alcotest.(check int) "in-place promotion bumps the epoch too" 1 epoch2;
  let stale = Test_recovery.apply_edit lws ("CS345", 2) "F" in
  let err =
    check_err_e
      (Penguin.Recovery.persist ~store:(store_in dir)
         ~since:(Penguin.Workspace.version lws)
         ~expect_epoch:lreport.Penguin.Recovery.epoch stale)
  in
  Alcotest.(check bool) "the old leader is fenced" true
    (Strutil.contains ~sub:"fenced" (Penguin.Error.to_string err));
  (match err with
  | Penguin.Error.Invalid _ -> ()
  | e ->
      Alcotest.failf "fencing must be non-retryable, got: %s"
        (Penguin.Error.to_string e));
  let check, _ = check_ok_e (Penguin.Recovery.open_store (store_in dir)) in
  Alcotest.(check bool) "the fenced append left no trace" false
    (str_val (Test_recovery.grade_of check ("CS345", 2)) = "F");
  (* Epochs only move forward: pointing the promoted follower (epoch 1)
     at a store still on epoch 0 must refuse — re-following a deposed
     leader would fork the replicated history. *)
  let dir0 = temp_dir "replica-deposed" in
  Test_recovery.make_store dir0;
  commit dir0 "C";
  let err =
    check_err_e
      (R.create ~refetch_limit:2
         ~feed:(R.file_feed (store_in dir0))
         ~target:(target_in dir) ())
  in
  Alcotest.(check bool) "deposed leader refused" true
    (Strutil.contains ~sub:"deposed" (Penguin.Error.to_string err));
  rm_rf dir0;
  rm_rf dir

(* --- the leader-kill sweep --------------------------------------------- *)

(* Acknowledged-state ledger: states.(k) is the leader state after k
   acknowledged (persisted + fsynced) commits. *)
let build_workload dir n =
  Test_recovery.make_store dir;
  let states = Array.make (n + 1) None in
  let record k =
    let ws, _ = Test_recovery.recover dir in
    states.(k) <- Some ws
  in
  record 0;
  for i = 1 to n do
    (* Distinct values so states are pairwise distinguishable; a high
       threshold keeps the whole workload in one journal. *)
    commit ~rotate_threshold:100000 dir (Fmt.str "G%03d" i);
    record i
  done;
  Array.map
    (function Some ws -> ws | None -> Alcotest.fail "ledger gap")
    states

let test_leader_kill_sweep () =
  let n = if full_sweep then 100 else 12 in
  let dir = temp_dir "replica-sweep-ref" in
  let states = build_workload dir n in
  let io = Penguin.Fsio.default in
  let jbytes =
    match check_ok_e (io.Penguin.Fsio.read (J.journal_path (store_in dir))) with
    | Some c -> c
    | None -> Alcotest.fail "workload journal missing"
  in
  let sbytes =
    match check_ok_e (io.Penguin.Fsio.read (store_in dir)) with
    | Some c -> c
    | None -> Alcotest.fail "workload snapshot missing"
  in
  rm_rf dir;
  let total = String.length jbytes in
  (* Frame boundaries: ends.(k) = the least byte count whose prefix
     holds the header and k complete records. *)
  let frames, clean, torn = J.decode_frames jbytes in
  Alcotest.(check int) "workload journal is clean" 0 torn;
  Alcotest.(check int) "workload journal fully decodes" total clean;
  Alcotest.(check int) "one record per commit" (n + 1) (List.length frames);
  let ends =
    Array.of_list
      (List.map (fun (off, p) -> off + 8 + String.length p) frames)
  in
  let header_end = ends.(0) in
  (* Complete records in a b-byte prefix (excluding the header). *)
  let records_at b =
    let k = ref 0 in
    Array.iteri (fun i e -> if i > 0 && e <= b then incr k) ends;
    !k
  in
  (* Every byte offset: the follower's own decoder, run on that exact
     prefix, must report precisely the acknowledged commits at or
     before the kill — the per-byte half of the sweep. *)
  for b = 0 to total do
    let fs, _, _ = J.decode_frames (String.sub jbytes 0 b) in
    let complete = List.length fs in
    let expect = records_at b + if b >= header_end then 1 else 0 in
    if complete <> expect then
      Alcotest.failf "byte %d: decoded %d frames, the ledger says %d" b
        complete expect
  done;
  (* Pipeline verification per outcome class. Every distinct complete-
     frame count k is exercised at its boundary and at torn cuts inside
     the next frame: 1 byte in (mid-length), 6 bytes in (mid-CRC), and
     mid-payload — each must promote to exactly states.(k). A cut
     strictly inside the header is unreachable (the header is written
     via atomic rename), but b = 0 — death before the rename — is real
     and promotes to the initial state. *)
  let cuts = ref [ 0, 0 ] in
  for k = 0 to n do
    let b0 = ends.(k) in
    let next = if k < n then ends.(k + 1) else total in
    let torn_cuts = [ b0 + 1; b0 + 6; (b0 + next) / 2; next - 1 ] in
    cuts := (b0, k) :: !cuts;
    List.iter
      (fun b -> if b > b0 && b < next then cuts := (b, k) :: !cuts)
      torn_cuts
  done;
  List.iter
    (fun (b, k) ->
      let expect = states.(k) in
      let dead = temp_dir "replica-sweep" in
      let store = store_in dead in
      check_ok_e (Penguin.Fsio.atomic_write io ~path:store sbytes);
      if b > 0 then
        check_ok_e
          (io.Penguin.Fsio.write ~path:(J.journal_path store) ~append:false
             (String.sub jbytes 0 b));
      (* The deposed leader's handle, opened before it died. *)
      let old_leader =
        if b >= header_end then
          Some (check_ok_e (Penguin.Recovery.open_store store))
        else None
      in
      (* Follower bootstraps from the dead leader's files, catches up,
         and promotes in place from its last durable record. *)
      let r =
        check_ok_e
          (R.create ~feed:(R.file_feed store)
             ~target:(Filename.concat dead "follower.pgn") ())
      in
      let _ = catch_up r in
      let ctx = Fmt.str "kill at byte %d/%d (%d commits acked)" b total k in
      if R.position r <> Penguin.Workspace.version expect then
        Alcotest.failf "%s: follower at v%d, ledger says v%d" ctx
          (R.position r)
          (Penguin.Workspace.version expect);
      let pws, epoch = check_ok_e (R.promote r) in
      Alcotest.(check int) (ctx ^ ": promotion epoch") 1 epoch;
      (* Prefix-consistent, no lost acknowledged commit, no duplicate:
         the promoted state IS the ledger state at k. *)
      if
        not
          (Database.equal pws.Penguin.Workspace.db
             expect.Penguin.Workspace.db
          && Penguin.Workspace.version pws = Penguin.Workspace.version expect)
      then
        Alcotest.failf "%s: promoted state is not the acked prefix" ctx;
      (* In-place promotion of the dead leader's own files: same state,
         and the deposed handle is fenced. *)
      let ipws, _ = check_ok_e (R.promote_store store) in
      if not (Database.equal ipws.Penguin.Workspace.db expect.Penguin.Workspace.db)
      then Alcotest.failf "%s: in-place promotion diverged" ctx;
      (match old_leader with
      | None -> ()
      | Some (lws, lreport) ->
          let stale = Test_recovery.apply_edit lws ("CS345", 2) "F" in
          let err =
            check_err_e
              (Penguin.Recovery.persist ~store
                 ~since:(Penguin.Workspace.version lws)
                 ~expect_epoch:lreport.Penguin.Recovery.epoch stale)
          in
          if
            not
              (Strutil.contains ~sub:"fenced" (Penguin.Error.to_string err))
          then Alcotest.failf "%s: deposed leader was not fenced" ctx);
      rm_rf dead)
    !cuts

(* --- the socket feed --------------------------------------------------- *)

let with_shipper dir f =
  let sock = Filename.concat dir "ship.sock" in
  let srv =
    Domain.spawn (fun () ->
        Penguin.Shipper.serve ~store:(store_in dir) ~sock ())
  in
  let rec await n =
    if Sys.file_exists sock then ()
    else if n = 0 then Alcotest.fail "shipper socket never appeared"
    else begin
      Unix.sleepf 0.005;
      await (n - 1)
    end
  in
  await 1000;
  let result = f sock in
  check_ok_e (Penguin.Shipper.quit ~sock);
  let (_ : int) = check_ok_e (Domain.join srv) in
  result

let test_shipper_feed () =
  let dir = temp_dir "replica-shipper" in
  Test_recovery.make_store dir;
  List.iter (commit dir) [ "A-"; "B-" ];
  with_shipper dir (fun sock ->
      let r =
        check_ok_e
          (R.create
             ~feed:(Penguin.Shipper.feed ~sock)
             ~target:(target_in dir) ())
      in
      let _ = catch_up r in
      let lws, _ = Test_recovery.recover dir in
      Alcotest.(check int) "socket follower at the leader position"
        (Penguin.Workspace.version lws)
        (R.position r);
      db_equal "socket follower equals the leader" lws (R.workspace r);
      (* New commits ship over the live socket. *)
      commit dir "C+";
      let p = catch_up r in
      Alcotest.(check int) "live tailing over the socket" 1 p.R.records;
      Alcotest.(check string) "socket-shipped edit visible" "C+"
        (str_val
           (Test_recovery.grade_of (R.workspace r) ("CS345", 2))));
  rm_rf dir

(* Kill the transport at every I/O point of the exchange. The response
   envelope is CRC-framed, so a server or connection dying at any byte
   gives the client a typed transient error and never partial data; the
   follower retries the poll and converges with no loss and no
   duplicate. *)
let test_shipper_kill_points () =
  let dir = temp_dir "replica-shipkill" in
  Test_recovery.make_store dir;
  List.iter (commit dir) [ "A-"; "B-"; "C+" ];
  (* A "server" that dies after writing [cut] bytes of the response.
     The socket is bound and listening before the domain spawns, so the
     client's connect never races the setup. *)
  let dying_server sock cut =
    let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind srv (Unix.ADDR_UNIX sock);
    Unix.listen srv 1;
    Domain.spawn (fun () ->
        let fd, _ = Unix.accept srv in
        let buf = Bytes.create 4096 in
        let rec drain () = if Unix.read fd buf 0 4096 > 0 then drain () in
        drain ();
        let resp = J.frame "(ok)" ^ J.frame "full response payload" in
        let k = min cut (String.length resp) in
        ignore (Unix.write_substring fd resp 0 k);
        Unix.close fd;
        Unix.close srv)
  in
  let resp_len = String.length (J.frame "(ok)" ^ J.frame "full response payload") in
  for cut = 0 to resp_len - 1 do
    let sock = Filename.concat dir (Fmt.str "die%d.sock" cut) in
    let srv = dying_server sock cut in
    let feed = Penguin.Shipper.feed ~sock in
    (match feed.R.fetch_journal ~off:0 with
    | Ok _ -> Alcotest.failf "cut at %d bytes produced data" cut
    | Error e ->
        if not (Penguin.Error.retryable e) then
          Alcotest.failf "cut at %d: not transient: %s" cut
            (Penguin.Error.to_string e));
    Domain.join srv;
    Sys.remove sock
  done;
  (* A client dying mid-request must not kill the real server: a torn
     request frame is answered in-band and serving continues. *)
  with_shipper dir (fun sock ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX sock);
      let torn = String.sub (J.frame "(snapshot)") 0 5 in
      ignore (Unix.write_substring fd torn 0 (String.length torn));
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Bytes.create 4096 in
      let rec drain acc =
        let k = Unix.read fd buf 0 4096 in
        if k = 0 then acc else drain (acc ^ Bytes.sub_string buf 0 k)
      in
      let resp = drain "" in
      Unix.close fd;
      Alcotest.(check bool) "torn request answered in-band" true
        (Strutil.contains ~sub:"torn request" resp);
      (* ...and the next real client is served normally. *)
      let feed = Penguin.Shipper.feed ~sock in
      match feed.R.fetch_head () with
      | Ok head -> Alcotest.(check bool) "server survived" true (head <> "")
      | Error e ->
          Alcotest.failf "server wedged by torn request: %s"
            (Penguin.Error.to_string e));
  rm_rf dir

(* --- sharded stores ---------------------------------------------------- *)

let sharded_root dir = Filename.concat dir "shards"
let sharded_target dir = Filename.concat dir "shards-follower"

(* A sharded leader with mixed traffic: lane-local commits on both
   islands and one cross-shard 2PC in between. *)
let sharded_workload dir =
  let root = sharded_root dir in
  ignore
    (check_ok_e
       (Penguin.Shard_store.init ~root
          (Test_sharded.islands_workspace ~cross:true 2)));
  let eng = check_ok_e (Penguin.Sharded.open_store ~root ()) in
  Fun.protect
    ~finally:(fun () -> Penguin.Sharded.shutdown eng)
    (fun () ->
      let commit name step =
        let ws = Penguin.Sharded.to_workspace eng in
        ignore (Test_sharded.committed (Penguin.Sharded.update eng name (step ws)))
      in
      commit "isl0" (fun ws -> Test_sharded.sub_flip ~stamp:"s0" ws 0);
      commit "refx0" (fun ws -> Test_sharded.cross_flip ~stamp:"x1" ws 0);
      commit "isl1" (fun ws -> Test_sharded.sub_flip ~stamp:"s1" ws 1))

let sval db island =
  match
    Relation.lookup
      (Database.relation_exn db (Fmt.str "I%02d_SUB" island))
      [ Relational.Value.Int 0; Relational.Value.Int 0 ]
  with
  | Some t -> str_val (Tuple.get t "sval")
  | None -> Alcotest.fail "fixture SUB row missing"

let cross_vals db =
  let get rel key attr =
    match Relation.lookup (Database.relation_exn db rel) key with
    | Some t -> str_val (Tuple.get t attr)
    | None -> Alcotest.failf "fixture %s row missing" rel
  in
  ( get "I00_REF" [ Relational.Value.Int 0; Relational.Value.Int 0 ] "note",
    get "I01_TGT" [ Relational.Value.Int 0; Relational.Value.Int 0 ] "tval" )

let test_sharded_follow () =
  let dir = temp_dir "replica-sharded" in
  sharded_workload dir;
  let sr =
    check_ok_e
      (R.Sharded.create ~source:(sharded_root dir)
         ~target:(sharded_target dir) ())
  in
  let shipped = check_ok_e (R.Sharded.poll sr) in
  Alcotest.(check bool) "shard records shipped" true (shipped > 0);
  let leader =
    check_ok_e (Penguin.Shard_store.open_store ~root:(sharded_root dir) ())
  in
  let fol = check_ok_e (R.Sharded.open_follower sr) in
  db_equal "sharded follower equals the leader"
    leader.Penguin.Shard_store.ws fol.Penguin.Shard_store.ws;
  Alcotest.(check (list int)) "version vectors agree"
    (Array.to_list leader.Penguin.Shard_store.versions)
    (Array.to_list fol.Penguin.Shard_store.versions);
  (* Promote the follower root: consistent cut made physical, manifest
     epoch bumped. *)
  let o, epoch = check_ok_e (R.Sharded.promote sr) in
  Alcotest.(check int) "sharded promotion epoch" 1 epoch;
  db_equal "promoted sharded state intact" leader.Penguin.Shard_store.ws
    o.Penguin.Shard_store.ws;
  check_err_contains_e ~sub:"promoted" (R.Sharded.poll sr);
  Test_sharded_crash.rm_rf_deep dir

(* Kill the leader at every per-shard shipping point of a mid-2PC
   workload: every pairing of per-shard record prefixes (plus torn
   variants) must promote to a consistent cut — the cross-shard commit
   lands on both shards or on neither, and each shard is a prefix of
   its own acknowledged sequence. *)
let test_sharded_mid_2pc_kill_sweep () =
  let dir = temp_dir "replica-2pc-ref" in
  sharded_workload dir;
  let io = Penguin.Fsio.default in
  let root = sharded_root dir in
  let read p =
    match check_ok_e (io.Penguin.Fsio.read p) with
    | Some c -> c
    | None -> Alcotest.failf "missing %s" p
  in
  let defs = read (Penguin.Shard_store.defs_path ~root) in
  let manifest = read (Penguin.Shard_store.manifest_path ~root) in
  let snaps =
    Array.init 2 (fun i -> read (Penguin.Shard_store.shard_path ~root i))
  in
  let jnls =
    Array.init 2 (fun i ->
        read (J.journal_path (Penguin.Shard_store.shard_path ~root i)))
  in
  Test_sharded_crash.rm_rf_deep dir;
  (* Per-shard cut points: every frame boundary, and a torn cut inside
     every frame. *)
  let cut_points j =
    let frames, clean, _ = J.decode_frames j in
    Alcotest.(check int) "shard journal clean" (String.length j) clean;
    List.concat_map
      (fun (off, p) ->
        let e = off + 8 + String.length p in
        [ e; min (e + 9) (String.length j) ])
      frames
    |> List.sort_uniq compare
  in
  let cuts0 = cut_points jnls.(0) and cuts1 = cut_points jnls.(1) in
  (* The oracle: re-derive which records a consistent cut keeps, for
     one gid, from the record semantics alone. *)
  let parsed j b =
    let frames, _, _ = J.decode_frames (String.sub j 0 b) in
    List.filteri (fun i _ -> i > 0) frames
    |> List.map (fun (_, p) -> check_ok (J.record_of_payload p))
  in
  let expect_applied recs0 recs1 =
    let has l p = List.exists p l in
    let prepare0 = has recs0 (function Penguin.Journal.Prepare _ -> true | _ -> false)
    and prepare1 = has recs1 (function Penguin.Journal.Prepare _ -> true | _ -> false)
    and decided =
      has (recs0 @ recs1) (function
        | Penguin.Journal.Decide _ | Penguin.Journal.Mark _ -> true
        | _ -> false)
    in
    let cross = prepare0 && prepare1 && decided in
    (* The incomplete-gid trim: a decided gid missing a prepare cuts
       every shard at its first record of that gid — which here can
       only drop records at or after the prepare. *)
    let trim recs prepared =
      if decided && not (prepare0 && prepare1) && prepared then
        let rec take acc = function
          | [] -> List.rev acc
          | ( Penguin.Journal.Prepare _ | Penguin.Journal.Decide _
            | Penguin.Journal.Mark _ )
            :: _ ->
              List.rev acc
          | (Penguin.Journal.Commit _ as r) :: rest -> take (r :: acc) rest
        in
        take [] recs
      else recs
    in
    let singles recs =
      List.exists
        (function Penguin.Journal.Commit _ -> true | _ -> false)
        recs
    in
    let recs0 = trim recs0 prepare0 and recs1 = trim recs1 prepare1 in
    (singles recs0, cross, singles recs1)
  in
  List.iter
    (fun b0 ->
      List.iter
        (fun b1 ->
          let dead = temp_dir "replica-2pc" in
          let droot = sharded_root dead in
          Unix.mkdir droot 0o755;
          check_ok_e
            (Penguin.Fsio.atomic_write io
               ~path:(Penguin.Shard_store.defs_path ~root:droot) defs);
          check_ok_e
            (Penguin.Fsio.atomic_write io
               ~path:(Penguin.Shard_store.manifest_path ~root:droot) manifest);
          Array.iteri
            (fun i snap ->
              let sp = Penguin.Shard_store.shard_path ~root:droot i in
              check_ok_e (Penguin.Fsio.atomic_write io ~path:sp snap);
              let b = if i = 0 then b0 else b1 in
              check_ok_e
                (io.Penguin.Fsio.write ~path:(J.journal_path sp) ~append:false
                   (String.sub jnls.(i) 0 b)))
            snaps;
          let ctx = Fmt.str "kill at shard bytes (%d, %d)" b0 b1 in
          let o, epoch =
            match R.Sharded.promote_root droot with
            | Ok v -> v
            | Error e ->
                Alcotest.failf "%s: promotion failed: %s" ctx
                  (Penguin.Error.to_string e)
          in
          Alcotest.(check int) (ctx ^ ": epoch") 1 epoch;
          (match
             Penguin.Workspace.check_consistency o.Penguin.Shard_store.ws
           with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: inconsistent: %s" ctx e);
          let db = o.Penguin.Shard_store.ws.Penguin.Workspace.db in
          let s0, cross, s1 =
            expect_applied (parsed jnls.(0) b0) (parsed jnls.(1) b1)
          in
          let got_note, got_tval = cross_vals db in
          if (got_note = "x1") <> (got_tval = "x1") then
            Alcotest.failf "%s: cross-shard commit half-applied (%s, %s)" ctx
              got_note got_tval;
          if (got_note = "x1") <> cross then
            Alcotest.failf "%s: cross-shard commit %s, ledger says %s" ctx
              (if got_note = "x1" then "applied" else "dropped")
              (if cross then "applied" else "dropped");
          let check_single island expect =
            let got = sval db island in
            let want = if expect then Fmt.str "s%d" island else "s" in
            if got <> want then
              Alcotest.failf "%s: island %d sval %S, ledger says %S" ctx
                island got want
          in
          check_single 0 s0;
          check_single 1 s1;
          Test_sharded_crash.rm_rf_deep dead)
        cuts1)
    cuts0

(* A promoted sharded root fences the deposed engine: its next commit
   notices the manifest epoch moved and wedges instead of appending. *)
let test_sharded_engine_fenced () =
  let dir = temp_dir "replica-shard-fence" in
  sharded_workload dir;
  let root = sharded_root dir in
  let eng = check_ok_e (Penguin.Sharded.open_store ~root ()) in
  Fun.protect
    ~finally:(fun () -> Penguin.Sharded.shutdown eng)
    (fun () ->
      (* A replica promotes the same root out from under the engine. *)
      let _o, epoch = check_ok_e (R.Sharded.promote_root root) in
      Alcotest.(check int) "epoch bumped" 1 epoch;
      let ws = Penguin.Sharded.to_workspace eng in
      let o =
        Penguin.Sharded.update eng "isl0" (Test_sharded.sub_flip ~stamp:"zz" ws 0)
      in
      let reason = rollback_reason o in
      Alcotest.(check bool) "deposed engine is fenced" true
        (Strutil.contains ~sub:"fenced" reason);
      Alcotest.(check bool) "fenced engine wedges" true
        (Penguin.Sharded.wedged eng));
  Test_sharded_crash.rm_rf_deep dir

let suite =
  [
    Alcotest.test_case "replay reports resumable byte offsets" `Quick
      test_replay_offsets;
    Alcotest.test_case "corrupt errors name the failing record" `Quick
      test_corrupt_record_detail;
    Alcotest.test_case "follow a leader and serve cache-warm reads" `Quick
      test_follow_and_reads;
    Alcotest.test_case "rotation racing the tailer is followed in place"
      `Quick test_rotation_followed_in_place;
    Alcotest.test_case "rotation beyond the follower forces a resync" `Quick
      test_rotation_resync_when_behind;
    Alcotest.test_case "torn tails wait; corrupt frames quarantine and heal"
      `Quick test_torn_tail_and_quarantine;
    Alcotest.test_case "promotion comes up writable and fences the old leader"
      `Quick test_promote_and_fence;
    Alcotest.test_case "leader killed at every journal byte offset" `Quick
      test_leader_kill_sweep;
    Alcotest.test_case "socket feed ships live commits" `Quick
      test_shipper_feed;
    Alcotest.test_case "shipper killed at every transport I/O point" `Quick
      test_shipper_kill_points;
    Alcotest.test_case "sharded follower tracks a sharded leader" `Quick
      test_sharded_follow;
    Alcotest.test_case "mid-2PC leader kill promotes a consistent cut" `Quick
      test_sharded_mid_2pc_kill_sweep;
    Alcotest.test_case "promotion fences the deposed sharded engine" `Quick
      test_sharded_engine_fenced;
  ]
