bench/workloads.ml: Attribute Connection Database Fmt Instantiate Keller List Metric Penguin Predicate Relational Schema Schema_graph Structural Tuple Value Viewobject
