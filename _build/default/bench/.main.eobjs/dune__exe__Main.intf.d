bench/main.mli:
