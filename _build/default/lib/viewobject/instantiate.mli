(** Dynamic creation of view-object instances from base relations
    (the query-model half of Section 3; Figure 4).

    Instantiation binds "the set of relational tuples satisfying the
    query to the view object's structure": for each qualifying pivot
    tuple one instance is assembled by walking the tree, fetching for
    every child node the tuples of its relation connected — through the
    node's full connection path — to the parent tuple. *)

open Relational
open Structural

val follow_path :
  Database.t -> Schema_graph.edge list -> Tuple.t -> Tuple.t list
(** Full tuples of the path's final relation connected to the given
    (full) tuple through the successive connections; deduplicated, in
    key order. *)

val of_pivot_tuple : Database.t -> Definition.t -> Tuple.t -> Instance.t
(** Assemble one instance from a {e full} pivot tuple (all attributes of
    the pivot relation bound). Node tuples in the result are projected to
    their node's attributes. *)

val instantiate :
  ?where:Predicate.t -> Database.t -> Definition.t -> Instance.t list
(** One instance per pivot tuple satisfying [where] (evaluated on full
    pivot tuples; defaults to all). *)

val extend_inherited :
  Schema_graph.t -> Definition.t -> Instance.t -> (Instance.t, string) result
(** Rewrite an instance so that every node's tuple also binds its
    inherited connecting attributes, copied from its (extended) parent
    through the last connection of the node's path. Fails on nodes that
    are not attached by a single connection (their inherited values are
    not derivable without consulting the database). This realizes the
    paper's convention that a node's tuple only carries its accessible
    key complement Aⱼ while the rest of its key is implicit in the
    nesting. *)

val full_key :
  Schema_graph.t -> Definition.t -> string -> Tuple.t -> (Value.t list, string) result
(** [full_key g vo label extended_tuple]: the database key of the node's
    underlying tuple, from a tuple already extended with inherited
    attributes. Fails if some key attribute is unbound or null. *)
