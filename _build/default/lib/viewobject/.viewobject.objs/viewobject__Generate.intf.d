lib/viewobject/generate.mli: Definition Expansion Metric Schema_graph Structural
