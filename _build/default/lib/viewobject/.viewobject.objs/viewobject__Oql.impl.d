lib/viewobject/oql.ml: Definition Fmt List Predicate Relational Result Sql Sql_lexer Sql_parser String Value Vo_query
