lib/viewobject/vo_query.ml: Definition Fmt Instance Instantiate List Predicate Relational Tuple Value
