lib/viewobject/instance.mli: Definition Format Relational Tuple
