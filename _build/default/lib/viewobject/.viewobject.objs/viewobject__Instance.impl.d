lib/viewobject/instance.ml: Buffer Definition Fmt List Relational String Structural Tuple Value
