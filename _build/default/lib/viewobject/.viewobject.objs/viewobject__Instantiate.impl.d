lib/viewobject/instantiate.ml: Database Definition Fmt Instance List Predicate Relation Relational Result Schema Schema_graph Set Structural Tuple Value
