lib/viewobject/island.ml: Connection Definition List Schema_graph String Structural
