lib/viewobject/vo_query.mli: Database Definition Format Instance Predicate Relational
