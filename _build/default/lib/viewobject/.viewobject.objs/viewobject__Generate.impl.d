lib/viewobject/generate.ml: Definition Expansion Fmt List Metric Relational Schema Schema_graph Structural
