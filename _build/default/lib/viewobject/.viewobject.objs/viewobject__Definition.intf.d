lib/viewobject/definition.mli: Format Schema_graph Structural
