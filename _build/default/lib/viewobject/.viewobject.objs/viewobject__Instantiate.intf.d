lib/viewobject/instantiate.mli: Database Definition Instance Predicate Relational Schema_graph Structural Tuple Value
