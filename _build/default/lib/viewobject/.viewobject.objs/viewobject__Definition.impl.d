lib/viewobject/definition.ml: Buffer Connection Fmt List Option Relational Schema Schema_graph String Structural
