lib/viewobject/island.mli: Connection Definition Schema_graph Structural
