lib/viewobject/oql.mli: Database Definition Instance Predicate Relational Sql_lexer Value Vo_query
