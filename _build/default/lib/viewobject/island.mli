(** Dependency islands and referencing peninsulas (Defs. 5.1–5.2).

    The {e dependency island} D(ω) is the maximal subtree of the tree of
    projections rooted at the pivot such that every directed path from
    the pivot consists exclusively of (forward) ownership and subset
    connections. All its relations "belong to the same entity" and update
    operations have consistent repercussions throughout it.

    A {e referencing peninsula} is a relation of d(ω) directly connected
    to an island relation by a reference connection pointing {e into} the
    island; referential integrity obliges the translators to fix its
    tuples up when island tuples disappear or change keys. *)

open Structural

val island_labels : Definition.t -> string list
(** Labels of the island nodes, pre-order (the pivot's label first). A
    node is in the island when every edge on its full path from the root
    is a forward ownership or subset connection. *)

val island_relations : Definition.t -> string list
(** Distinct relations of the island, sorted. *)

val in_island : Definition.t -> string -> bool
(** Membership by node label. *)

val peninsulas : Schema_graph.t -> Definition.t -> (string * Connection.t) list
(** Referencing peninsulas: pairs (relation of d(ω), reference connection
    from it into an island relation), deduplicated, sorted by relation
    name. Connections already realized as a tree edge of the island are
    not peninsulas (they would be ownership/subset by construction). *)

val peninsula_relations : Schema_graph.t -> Definition.t -> string list

val outside_labels : Definition.t -> string list
(** Labels of object nodes outside the island, pre-order. *)
