open Relational
open Structural

type node = {
  label : string;
  relation : string;
  attrs : string list;
  path : Schema_graph.edge list;
  children : node list;
}

type t = {
  name : string;
  pivot : string;
  root : node;
}

let node ~label ~relation ~attrs ~path ~children =
  { label; relation; attrs; path; children }

let rec preorder n = n :: List.concat_map preorder n.children

let nodes vo = preorder vo.root

let find vo label = List.find_opt (fun n -> n.label = label) (nodes vo)

let find_exn vo label =
  match find vo label with
  | Some n -> n
  | None -> invalid_arg (Fmt.str "view object %s: no node %s" vo.name label)

let parent_of vo label =
  let rec go parent n =
    if n.label = label then Some parent
    else List.find_map (go (Some n)) n.children
  in
  Option.join (go None vo.root)

let complexity vo = List.length (nodes vo)

let relations vo =
  List.sort_uniq String.compare (List.map (fun n -> n.relation) (nodes vo))

let inherited_attrs n =
  match List.rev n.path with
  | [] -> []
  | last :: _ -> Schema_graph.edge_to_attrs last

let to_ascii vo =
  let buf = Buffer.create 256 in
  let rec go indent n =
    let tag =
      match n.path with
      | [] -> ""
      | path ->
          let step (e : Schema_graph.edge) =
            Fmt.str "%s%s"
              (if e.forward then "" else "inv ")
              (Connection.kind_name e.conn.Connection.kind)
          in
          Fmt.str " via %s" (String.concat " . " (List.map step path))
    in
    Buffer.add_string buf
      (Fmt.str "%s%s (%s)%s\n" indent n.label (String.concat ", " n.attrs) tag);
    List.iter (go (indent ^ "  ")) n.children
  in
  go "" vo.root;
  Buffer.contents buf

let pp ppf vo = Fmt.string ppf (to_ascii vo)

let is_direct n = match n.path with [] | [ _ ] -> true | _ :: _ :: _ -> false

let complement g n =
  let key = Schema.key_attributes (Schema_graph.schema_exn g n.relation) in
  let inherited = inherited_attrs n in
  List.filter (fun k -> not (List.mem k inherited)) key

let validate g ~name ~pivot ~root =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let all = preorder root in
  let rec find_dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else find_dup rest
  in
  if name = "" then fail "view object: empty name"
  else if root.relation <> pivot then
    fail "view object %s: root relation %s is not the pivot %s" name
      root.relation pivot
  else if root.path <> [] then
    fail "view object %s: root must not have an incoming path" name
  else
    match find_dup (List.map (fun n -> n.label) all) with
    | Some l -> fail "view object %s: duplicate node label %s" name l
    | None -> (
        match
          List.find_opt
            (fun n -> n.label <> root.label && n.relation = pivot)
            all
        with
        | Some n ->
            fail
              "view object %s: node %s duplicates the pivot relation %s \
               (Def. 3.2 allows exactly one projection on the pivot)"
              name n.label pivot
        | None ->
            let check_node n =
              match Schema_graph.schema g n.relation with
              | None -> fail "view object %s: unknown relation %s" name n.relation
              | Some schema ->
                  if n.attrs = [] then
                    fail "view object %s: node %s has an empty projection" name
                      n.label
                  else (
                    match
                      List.find_opt (fun a -> not (Schema.mem schema a)) n.attrs
                    with
                    | Some a ->
                        fail "view object %s: node %s projects unknown attribute %s"
                          name n.label a
                    | None ->
                        if n.label = root.label then
                          if
                            List.for_all
                              (fun k -> List.mem k n.attrs)
                              (Schema.key_attributes schema)
                          then Ok ()
                          else
                            fail
                              "view object %s: pivot projection must contain \
                               K(%s) (Def. 3.2)"
                              name pivot
                        else if n.path = [] then
                          fail "view object %s: node %s lacks a connection path"
                            name n.label
                        else if not (is_direct n) then Ok ()
                        else
                          let key = Schema.key_attributes schema in
                          let inherited = inherited_attrs n in
                          if
                            List.for_all
                              (fun k ->
                                List.mem k n.attrs || List.mem k inherited)
                              key
                          then Ok ()
                          else
                            fail
                              "view object %s: node %s cannot recover K(%s) \
                               from its projection and inherited attributes"
                              name n.label n.relation)
            in
            let check_paths () =
              let rec chain parent_rel = function
                | [] -> Ok ()
                | e :: rest ->
                    if Schema_graph.edge_from e <> parent_rel then
                      fail
                        "view object %s: path edge %a does not start at %s"
                        name Schema_graph.pp_edge e parent_rel
                    else chain (Schema_graph.edge_to e) rest
              in
              let rec walk parent n =
                let start =
                  match parent with None -> n.relation | Some p -> p.relation
                in
                let this =
                  match parent with
                  | None -> Ok ()
                  | Some _ -> (
                      match chain start n.path with
                      | Error _ as e -> e
                      | Ok () ->
                          let ends =
                            match List.rev n.path with
                            | [] -> n.relation
                            | last :: _ -> Schema_graph.edge_to last
                          in
                          if ends = n.relation then Ok ()
                          else
                            fail
                              "view object %s: path of node %s ends at %s, \
                               not %s"
                              name n.label ends n.relation)
                in
                match this with
                | Error _ as e -> e
                | Ok () ->
                    List.fold_left
                      (fun acc c ->
                        match acc with Error _ -> acc | Ok () -> walk (Some n) c)
                      (Ok ()) n.children
              in
              walk None root
            in
            List.fold_left
              (fun acc n -> match acc with Error _ -> acc | Ok () -> check_node n)
              (Ok ()) all
            |> fun r ->
            (match r with Error _ -> r | Ok () -> check_paths ()))

let make g ~name ~pivot ~root =
  match validate g ~name ~pivot ~root with
  | Error _ as e -> e
  | Ok () -> Ok { name; pivot; root }

let make_exn g ~name ~pivot ~root =
  match make g ~name ~pivot ~root with
  | Ok vo -> vo
  | Error e -> invalid_arg e

let key_attributes g vo =
  Schema.key_attributes (Schema_graph.schema_exn g vo.pivot)
