(** View-object generation (Section 3, Figure 2).

    The pipeline: given a pivot, the information metric isolates the
    relevant subgraph G (Fig. 2a), G is expanded into the tree T of
    possible configurations (Fig. 2b), and the definer prunes T — "once
    the pivot relation has been determined, we have the choice to either
    include in or exclude from ω every other relation in the tree"
    (Fig. 2c). Pruning a kept node whose ancestors were dropped re-attaches
    it to its nearest kept ancestor with the concatenated connection path
    (Figure 3). *)

open Structural

val relevant_subgraph :
  Metric.t -> Schema_graph.t -> pivot:string -> Schema_graph.t
(** The Fig. 2a subgraph G. *)

val tree : Metric.t -> Schema_graph.t -> pivot:string -> Expansion.node
(** The Fig. 2b tree T (expansion of G from the pivot). *)

val full :
  Metric.t -> Schema_graph.t -> name:string -> pivot:string ->
  (Definition.t, string) result
(** Definition keeping every node of T, projecting all attributes. *)

val prune :
  Schema_graph.t ->
  Expansion.node ->
  name:string ->
  keep:(string * string list) list ->
  (Definition.t, string) result
(** [prune g t ~name ~keep] builds a definition from T keeping exactly
    the labelled nodes ([keep] maps tree label → projection attributes;
    an empty attribute list means "all attributes"). The pivot (root
    label) is always kept, with its key added to its projection if
    omitted. Kept nodes re-attach to their nearest kept ancestor. *)
