open Relational

type t = {
  label : string;
  relation : string;
  tuple : Tuple.t;
  children : (string * t list) list;
}

let make ~label ~relation ~tuple ~children = { label; relation; tuple; children }

let leaf ~label ~relation tuple = { label; relation; tuple; children = [] }

let children_of i label =
  match List.assoc_opt label i.children with Some cs -> cs | None -> []

let with_children i label cs =
  if List.mem_assoc label i.children then
    {
      i with
      children =
        List.map (fun (l, old) -> if l = label then l, cs else l, old) i.children;
    }
  else { i with children = i.children @ [ label, cs ] }

let with_tuple i tuple = { i with tuple }

let rec flatten i =
  (i.label, i.tuple)
  :: List.concat_map (fun (_, cs) -> List.concat_map flatten cs) i.children

let count_nodes i = List.length (flatten i)

let rec equal a b =
  a.label = b.label && a.relation = b.relation
  && Tuple.equal a.tuple b.tuple
  && List.length a.children = List.length b.children
  && List.for_all2
       (fun (l1, cs1) (l2, cs2) ->
         l1 = l2
         && List.length cs1 = List.length cs2
         && List.for_all2 equal cs1 cs2)
       a.children b.children

let conforms (vo : Definition.t) inst =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let rec go (dn : Definition.node) i =
    if i.label <> dn.label then
      fail "instance node %s does not match definition node %s" i.label dn.label
    else if i.relation <> dn.relation then
      fail "instance node %s is on relation %s, expected %s" i.label i.relation
        dn.relation
    else
      match
        List.find_opt
          (fun a -> not (List.mem a dn.attrs))
          (Tuple.attributes i.tuple)
      with
      | Some a ->
          fail "instance node %s binds %s outside its projection" i.label a
      | None ->
          List.fold_left
            (fun acc (cn : Definition.node) ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  let subs = children_of i cn.label in
                  let singleton_expected =
                    match List.rev cn.path with
                    | [] -> false
                    | last :: _ -> (
                        match last.Structural.Schema_graph.conn.Structural.Connection.kind,
                              last.Structural.Schema_graph.forward with
                        | Structural.Connection.Reference, true -> true
                        | Structural.Connection.Subset, true -> true
                        | _, _ -> false)
                  in
                  if singleton_expected && List.length subs > 1 then
                    fail
                      "instance node %s: child %s must have at most one \
                       sub-instance (n:1 or subset connection)"
                      i.label cn.label
                  else
                    List.fold_left
                      (fun acc sub ->
                        match acc with Error _ -> acc | Ok () -> go cn sub)
                      (Ok ()) subs)
            (Ok ()) dn.children
  in
  go vo.root inst

let to_ascii inst =
  let buf = Buffer.create 256 in
  let pp_tuple t =
    String.concat ", "
      (List.map
         (fun (a, v) -> Fmt.str "%s=%a" a Value.pp_plain v)
         (Tuple.bindings t))
  in
  let rec go indent i =
    Buffer.add_string buf (Fmt.str "%s(%s: %s" indent i.label (pp_tuple i.tuple));
    if List.for_all (fun (_, cs) -> cs = []) i.children then
      Buffer.add_string buf ")\n"
    else begin
      Buffer.add_string buf "\n";
      List.iter (fun (_, cs) -> List.iter (go (indent ^ "  ")) cs) i.children;
      Buffer.add_string buf (indent ^ ")\n")
    end
  in
  go "" inst;
  Buffer.contents buf

let pp ppf i = Fmt.string ppf (to_ascii i)
