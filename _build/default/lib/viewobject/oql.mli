(** A textual, declarative query language on view objects — the surface
    syntax for the query model of Section 3 ("a query language that
    supports ad-hoc, declarative queries on view objects").

    Queries are boolean conditions over one view object's instances:

    {v
    level = 'grad' and count(STUDENT#2) < 5          -- Figure 4
    GRADES[grade = 'A' and pid = 1]                  -- node-scoped block
    DEPARTMENT.building = 'Gates' or not CURRICULUM.degree = 'MS CS'
    v}

    - [label.attr CMP literal] / [label.attr IS [NOT] NULL] constrain a
      node: satisfied when {e some} tuple of that node satisfies the
      comparison (set-valued children are existentially quantified).
    - A bare [attr] resolves to the unique node projecting it (error if
      ambiguous).
    - [label[ ... ]] scopes a whole predicate to a {e single} tuple of
      the node — [GRADES[grade = 'A' and pid = 1]] requires one grades
      tuple satisfying both, whereas
      [GRADES.grade = 'A' and GRADES.pid = 1] is satisfied by two
      different tuples.
    - [count(label) CMP n] constrains the number of sub-instances.
    - [and], [or], [not], parentheses; [true] is the empty condition.

    Comparison operators: [=], [<>], [<], [<=], [>], [>=]. Literals:
    integers, floats, single-quoted strings, [true], [false], [null]
    (comparisons against [null] follow {!Relational.Predicate.eval}:
    always false — use [IS NULL]). *)

open Relational

val parse : Definition.t -> string -> (Vo_query.condition, string) result
(** Parse and resolve a query against the given object definition:
    labels must be nodes of the object and attributes must belong to the
    node's projection. *)

val run :
  Database.t -> Definition.t -> string -> (Instance.t list, string) result
(** [parse] followed by {!Vo_query.run}. *)

(** {1 Token-level entry points}

    Used by the update language ({!Penguin.Upql}), which embeds OQL
    conditions and node-scoped predicate blocks in its statements. *)

val condition_tokens :
  Definition.t -> Sql_lexer.token list ->
  (Vo_query.condition * Sql_lexer.token list, string) result

val node_pred_tokens :
  Definition.node -> Sql_lexer.token list ->
  (Predicate.t * Sql_lexer.token list, string) result

val literal_tokens :
  Sql_lexer.token list -> (Value.t * Sql_lexer.token list, string) result

val resolve_attr :
  Definition.t -> string option * string -> (string * string, string) result
(** Resolve an optionally-qualified attribute reference to
    (node label, attribute). *)

val split_ref : string -> string option * string
(** Split a dotted identifier into (node label, attribute). *)
