(** View-object instances: hierarchical entities with atomic-valued,
    tuple-valued, and set-valued attributes (Section 3, Figure 4).

    An instance mirrors the shape of its {!Definition.t}: one tuple per
    node, and for every child node a {e set} of sub-instances (possibly
    empty, and a singleton for n:1 or subset children). *)

open Relational

type t = {
  label : string;  (** node label in the definition *)
  relation : string;
  tuple : Tuple.t;  (** bound projection attributes *)
  children : (string * t list) list;
      (** keyed by child node label, in definition order *)
}

val make :
  label:string -> relation:string -> tuple:Tuple.t ->
  children:(string * t list) list -> t

val leaf : label:string -> relation:string -> Tuple.t -> t

val children_of : t -> string -> t list
(** Sub-instances under the given child label ([[]] when absent). *)

val with_children : t -> string -> t list -> t
(** Replace the sub-instances under one child label. *)

val with_tuple : t -> Tuple.t -> t

val flatten : t -> (string * Tuple.t) list
(** Pre-order (label, tuple) pairs — one entry per node occurrence. *)

val count_nodes : t -> int

val conforms : Definition.t -> t -> (unit, string) result
(** Shape check: labels and relations match the definition, every bound
    attribute belongs to the node's projection, and singleton cardinality
    holds where the last connection is n:1 or 1:[0,1] walked forward. *)

val equal : t -> t -> bool

val to_ascii : t -> string
(** Figure 4-style nested rendering. *)

val pp : Format.formatter -> t -> unit
