(** View-object definitions (Section 3, Defs. 3.1–3.2).

    A view object ω is a set of projections on base relations arranged
    into a tree rooted at the {e pivot relation}. Each tree node carries
    the projection attributes selected for that relation (shown in
    parentheses in Figure 2(c)). An edge of the tree is a {e path} of one
    or more structural connections: after pruning, a kept node hangs off
    its nearest kept ancestor, and the dropped intermediate relations
    leave a multi-connection path (Figure 3: "the edge from COURSES to
    STUDENT is ... a path of two connections ... since GRADES is not part
    of ω′"). *)

open Structural

type node = {
  label : string;  (** unique within the object; copies are [REL#k] *)
  relation : string;
  attrs : string list;  (** the projection πᵢ *)
  path : Schema_graph.edge list;
      (** connections from the parent node's relation to this relation;
          empty exactly at the root *)
  children : node list;
}

type t = private {
  name : string;
  pivot : string;
  root : node;
}

val make :
  Schema_graph.t -> name:string -> pivot:string -> root:node -> (t, string) result
(** Validates the definition:
    - the root is the unique node on the pivot relation and its
      projection contains the whole pivot key (Def. 3.2);
    - labels are unique, projections are non-empty subsets of their
      relation's attributes;
    - paths chain correctly (parent relation → ... → node relation) and
      are non-empty except at the root;
    - for every node attached by a single connection, the node's key is
      recoverable: projection ∪ inherited connecting attributes covers
      the relation's key (the accessibility property behind the paper's
      Aⱼ key complements). Multi-connection nodes are instantiable but
      rejected later by the update engine. *)

val make_exn :
  Schema_graph.t -> name:string -> pivot:string -> root:node -> t

val node : label:string -> relation:string -> attrs:string list ->
  path:Schema_graph.edge list -> children:node list -> node

val complexity : t -> int
(** Number of projections in the object (Def. 3.1). *)

val nodes : t -> node list
(** Pre-order. *)

val find : t -> string -> node option
(** Node by label. *)

val find_exn : t -> string -> node

val parent_of : t -> string -> node option
(** Parent node of the labelled node ([None] at the root). *)

val relations : t -> string list
(** d(ω): the distinct relations of the object, sorted. *)

val key_attributes : Schema_graph.t -> t -> string list
(** K(ω) = K(pivot) (Def. 3.2). *)

val inherited_attrs : node -> string list
(** Attributes of the node's relation bound through the last connection
    of its path (the child-side connecting attributes); empty at the
    root. *)

val complement : Schema_graph.t -> node -> string list
(** Aⱼ: the node's key attributes minus the inherited ones — "the only
    part of Rⱼ's key that is accessible at the level of Rⱼ"
    (Section 5.3). For the root this is the whole pivot key. *)

val is_direct : node -> bool
(** True when the node is the root or is attached by exactly one
    connection (update translation requires this). *)

val to_ascii : t -> string
(** Figure 2(c)-style rendering: tree with attribute lists in
    parentheses. *)

val pp : Format.formatter -> t -> unit
