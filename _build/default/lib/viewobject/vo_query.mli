(** Declarative queries on view objects (the query model of Section 3).

    A condition constrains instances: node-level predicates (satisfied
    when {e some} tuple of the labelled node satisfies them — set-valued
    children have existential semantics) and child-cardinality
    constraints, which express requests such as Figure 4's "graduate
    courses with less than 5 students having enrolled". *)

open Relational

type condition =
  | C_true
  | C_node of string * Predicate.t
      (** [C_node (label, p)]: some tuple of node [label] satisfies [p] *)
  | C_count of string * Predicate.comparison * int
      (** [C_count (label, cmp, n)]: the number of sub-instances rooted at
          node [label] compares as given *)
  | C_and of condition * condition
  | C_or of condition * condition
  | C_not of condition

val holds : condition -> Instance.t -> bool

val run :
  Database.t -> Definition.t -> condition -> Instance.t list
(** Instantiate and filter. Pivot-level predicates occurring in positive
    conjunctive position are pushed down to the pivot scan (the
    "composition with the object's structure" the paper describes), so
    non-qualifying pivot tuples are never assembled. *)

val pushdown : Definition.t -> condition -> Predicate.t
(** The pivot predicate extracted by the optimizer ({!run} uses it; it is
    exposed for tests and the E4 bench). *)

val pp_condition : Format.formatter -> condition -> unit
