open Relational

type condition =
  | C_true
  | C_node of string * Predicate.t
  | C_count of string * Predicate.comparison * int
  | C_and of condition * condition
  | C_or of condition * condition
  | C_not of condition

let rec nodes_with_label (i : Instance.t) label =
  let here = if i.Instance.label = label then [ i ] else [] in
  here
  @ List.concat_map
      (fun (_, cs) -> List.concat_map (fun c -> nodes_with_label c label) cs)
      i.Instance.children

let count_instances i label = List.length (nodes_with_label i label)

let compare_count cmp n target =
  Predicate.eval
    (Predicate.Cmp ("n", cmp, Value.Int target))
    (Tuple.make [ "n", Value.Int n ])

let rec holds c i =
  match c with
  | C_true -> true
  | C_node (label, p) ->
      List.exists
        (fun (n : Instance.t) -> Predicate.eval p n.Instance.tuple)
        (nodes_with_label i label)
  | C_count (label, cmp, target) ->
      compare_count cmp (count_instances i label) target
  | C_and (a, b) -> holds a i && holds b i
  | C_or (a, b) -> holds a i || holds b i
  | C_not a -> not (holds a i)

(* Pivot predicates in positive conjunctive position can be evaluated on
   the pivot tuple before the instance is assembled. *)
let pushdown (vo : Definition.t) c =
  let pivot_label = vo.root.Definition.label in
  let rec go = function
    | C_node (label, p) when label = pivot_label -> p
    | C_and (a, b) -> Predicate.( &&& ) (go a) (go b)
    | C_true | C_node _ | C_count _ | C_or _ | C_not _ -> Predicate.True
  in
  go c

let run db vo c =
  let where = pushdown vo c in
  let candidates = Instantiate.instantiate ~where db vo in
  List.filter (holds c) candidates

let rec pp_condition ppf = function
  | C_true -> Fmt.string ppf "true"
  | C_node (l, p) -> Fmt.pf ppf "%s[%a]" l Predicate.pp p
  | C_count (l, cmp, n) ->
      Fmt.pf ppf "count(%s) %a %d" l Predicate.pp_comparison cmp n
  | C_and (a, b) -> Fmt.pf ppf "(%a and %a)" pp_condition a pp_condition b
  | C_or (a, b) -> Fmt.pf ppf "(%a or %a)" pp_condition a pp_condition b
  | C_not a -> Fmt.pf ppf "(not %a)" pp_condition a
