open Relational
open Sql_lexer

let ( let* ) = Result.bind

(* --- name resolution ------------------------------------------------- *)

(* Split a (possibly dotted) identifier into node label and attribute.
   Labels never contain '.', so the first dot separates them. *)
let split_ref s =
  match String.index_opt s '.' with
  | Some i ->
      Some (String.sub s 0 i), String.sub s (i + 1) (String.length s - i - 1)
  | None -> None, s

let resolve_node (vo : Definition.t) label =
  match Definition.find vo label with
  | Some n -> Ok n
  | None ->
      Error
        (Fmt.str "no node %s in view object %s (nodes: %s)" label
           vo.Definition.name
           (String.concat ", "
              (List.map (fun (n : Definition.node) -> n.Definition.label)
                 (Definition.nodes vo))))

let resolve_attr (vo : Definition.t) = function
  | Some label, attr ->
      let* node = resolve_node vo label in
      if List.mem attr node.Definition.attrs then Ok (node.Definition.label, attr)
      else
        Error
          (Fmt.str "node %s does not project attribute %s" label attr)
  | None, attr -> (
      let holders =
        List.filter
          (fun (n : Definition.node) -> List.mem attr n.Definition.attrs)
          (Definition.nodes vo)
      in
      match holders with
      | [ n ] -> Ok (n.Definition.label, attr)
      | [] -> Error (Fmt.str "no node of the object projects attribute %s" attr)
      | _ ->
          Error
            (Fmt.str "attribute %s is ambiguous; qualify it with a node label"
               attr))

(* --- parsing --------------------------------------------------------- *)

type 'a parser_result = ('a * token list, string) result

let err expected got : 'a parser_result =
  Error (Fmt.str "query parse error: expected %s, got %a" expected pp_token got)

let peek = function [] -> Eof | t :: _ -> t
let advance = function [] -> [] | _ :: rest -> rest

let expect tok toks : unit parser_result =
  if equal_token (peek toks) tok then Ok ((), advance toks)
  else err (Fmt.str "%a" pp_token tok) (peek toks)

let comparison_of_op = function
  | "=" -> Some Predicate.Eq
  | "<>" -> Some Predicate.Neq
  | "<" -> Some Predicate.Lt
  | "<=" -> Some Predicate.Leq
  | ">" -> Some Predicate.Gt
  | ">=" -> Some Predicate.Geq
  | _ -> None

let literal toks : (Value.t * token list, string) result =
  match peek toks with
  | Int_lit i -> Ok (Value.Int i, advance toks)
  | Float_lit f -> Ok (Value.Float f, advance toks)
  | Str_lit s -> Ok (Value.Str s, advance toks)
  | Kw "null" -> Ok (Value.Null, advance toks)
  | Kw "true" -> Ok (Value.Bool true, advance toks)
  | Kw "false" -> Ok (Value.Bool false, advance toks)
  | t -> err "literal" t

(* Node-scoped predicate inside [...]: a full SQL-grammar condition
   (comparisons, arithmetic, is-null, and/or/not) whose bare attribute
   names must belong to the node's projection. *)
let node_pred (node : Definition.node) toks : Predicate.t parser_result =
  let* c, toks = Sql_parser.condition_tokens toks in
  let resolve a =
    if List.mem a node.Definition.attrs then Ok a
    else
      Error
        (Fmt.str "node %s does not project attribute %s" node.Definition.label a)
  in
  let* p = Sql.compile_condition ~resolve c in
  Ok (p, toks)

(* Top-level condition over the object. *)
let rec condition vo toks : Vo_query.condition parser_result = cond_or vo toks

and cond_or vo toks =
  let* l, toks = cond_and vo toks in
  if equal_token (peek toks) (Kw "or") then
    let* r, toks = cond_or vo (advance toks) in
    Ok (Vo_query.C_or (l, r), toks)
  else Ok (l, toks)

and cond_and vo toks =
  let* l, toks = cond_unary vo toks in
  if equal_token (peek toks) (Kw "and") then
    let* r, toks = cond_and vo (advance toks) in
    Ok (Vo_query.C_and (l, r), toks)
  else Ok (l, toks)

and cond_unary vo toks =
  match peek toks with
  | Kw "not" ->
      let* c, toks = cond_unary vo (advance toks) in
      Ok (Vo_query.C_not c, toks)
  | Lparen ->
      let* c, toks = condition vo (advance toks) in
      let* (), toks = expect Rparen toks in
      Ok (c, toks)
  | Kw "true" -> Ok (Vo_query.C_true, advance toks)
  | Ident name when String.lowercase_ascii name = "count"
                    && equal_token (peek (advance toks)) Lparen -> (
      let toks = advance (advance toks) in
      match peek toks with
      | Ident label -> (
          let* node = resolve_node vo label in
          let* (), toks = expect Rparen (advance toks) in
          match peek toks with
          | Op o -> (
              match comparison_of_op o with
              | Some cmp -> (
                  match peek (advance toks) with
                  | Int_lit n ->
                      Ok
                        ( Vo_query.C_count (node.Definition.label, cmp, n),
                          advance (advance toks) )
                  | t -> err "integer" t)
              | None -> err "comparison operator" (peek toks))
          | t -> err "comparison operator" t)
      | t -> err "node label" t)
  | Ident name -> (
      (* Either a node-scoped block label[...] or an attribute ref. *)
      let toks' = advance toks in
      match peek toks' with
      | Lbracket ->
          let* node = resolve_node vo name in
          let* p, toks' = node_pred node (advance toks') in
          let* (), toks' = expect Rbracket toks' in
          Ok (Vo_query.C_node (node.Definition.label, p), toks')
      | _ -> (
          let* label, attr =
            resolve_attr vo (split_ref name)
          in
          match peek toks' with
          | Kw "is" -> (
              let toks' = advance toks' in
              match peek toks' with
              | Kw "not" ->
                  let* (), toks' = expect (Kw "null") (advance toks') in
                  Ok (Vo_query.C_node (label, Predicate.Not_null attr), toks')
              | Kw "null" ->
                  Ok
                    ( Vo_query.C_node (label, Predicate.Is_null attr),
                      advance toks' )
              | t -> err "null or not null" t)
          | Op o -> (
              match comparison_of_op o with
              | Some cmp ->
                  let* v, toks' = literal (advance toks') in
                  Ok (Vo_query.C_node (label, Predicate.Cmp (attr, cmp, v)), toks')
              | None -> err "comparison operator" (peek toks'))
          | t -> err "comparison, is-null or '['" t))
  | t -> err "condition" t

let parse vo input =
  let* toks = Sql_lexer.tokenize input in
  if equal_token (peek toks) Eof then Ok Vo_query.C_true
  else
    let* c, toks = condition vo toks in
    match peek toks with
    | Eof -> Ok c
    | t -> Result.map fst (err "end of query" t)

let run db vo input =
  let* c = parse vo input in
  Ok (Vo_query.run db vo c)

let condition_tokens = condition
let node_pred_tokens = node_pred
let literal_tokens = literal
