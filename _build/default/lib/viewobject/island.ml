open Structural

let edge_is_dependency (e : Schema_graph.edge) =
  e.forward
  &&
  match e.conn.Connection.kind with
  | Connection.Ownership | Connection.Subset -> true
  | Connection.Reference -> false

let island_nodes (vo : Definition.t) =
  let rec go (n : Definition.node) =
    (* The root has an empty path; children qualify when their entire
       connecting path is dependency-only. *)
    n
    :: List.concat_map
         (fun (c : Definition.node) ->
           if List.for_all edge_is_dependency c.path then go c else [])
         n.children
  in
  go vo.root

let island_labels vo =
  List.map (fun (n : Definition.node) -> n.label) (island_nodes vo)

let island_relations vo =
  List.sort_uniq String.compare
    (List.map (fun (n : Definition.node) -> n.relation) (island_nodes vo))

let in_island vo label = List.mem label (island_labels vo)

let peninsulas g vo =
  let island_rels = island_relations vo in
  let object_rels = Definition.relations vo in
  let candidates =
    List.concat_map
      (fun rel ->
        List.filter_map
          (fun (c : Connection.t) ->
            if
              c.kind = Connection.Reference
              && List.mem c.target island_rels
              && not (List.mem c.source island_rels)
            then Some (rel, c)
            else None)
          (Schema_graph.outgoing g rel))
      object_rels
  in
  List.sort_uniq
    (fun (r1, c1) (r2, c2) ->
      match String.compare r1 r2 with
      | 0 -> String.compare (Connection.id c1) (Connection.id c2)
      | c -> c)
    candidates

let peninsula_relations g vo =
  List.sort_uniq String.compare (List.map fst (peninsulas g vo))

let outside_labels vo =
  let inside = island_labels vo in
  List.filter_map
    (fun (n : Definition.node) ->
      if List.mem n.label inside then None else Some n.label)
    (Definition.nodes vo)
