open Relational
open Structural

let connected_via (e : Schema_graph.edge) db t =
  let from_attrs = Schema_graph.edge_from_attrs e in
  let to_attrs = Schema_graph.edge_to_attrs e in
  (* Equality lookup: served by a secondary index on the connecting
     attributes when one exists. *)
  Relation.lookup_eq
    (Database.relation_exn db (Schema_graph.edge_to e))
    (List.map2 (fun fa ta -> ta, Tuple.get t fa) from_attrs to_attrs)

module KeySet = Set.Make (struct
  type t = Value.t list

  let compare = List.compare Value.compare
end)

let dedup_by_key schema ts =
  let rec go seen acc = function
    | [] -> List.rev acc
    | t :: rest ->
        let k = Tuple.key_of schema t in
        if KeySet.mem k seen then go seen acc rest
        else go (KeySet.add k seen) (t :: acc) rest
  in
  go KeySet.empty [] ts

let follow_path db path t =
  match path with
  | [] -> [ t ]
  | _ ->
      let finals =
        List.fold_left
          (fun ts e -> List.concat_map (connected_via e db) ts)
          [ t ] path
      in
      let last = List.nth path (List.length path - 1) in
      let schema =
        Relation.schema (Database.relation_exn db (Schema_graph.edge_to last))
      in
      dedup_by_key schema finals

let of_pivot_tuple db (vo : Definition.t) pivot_tuple =
  let rec build (dn : Definition.node) full_tuple =
    let children =
      List.map
        (fun (cn : Definition.node) ->
          let subs = follow_path db cn.path full_tuple in
          cn.label, List.map (build cn) subs)
        dn.children
    in
    Instance.make ~label:dn.label ~relation:dn.relation
      ~tuple:(Tuple.project dn.attrs full_tuple)
      ~children
  in
  build vo.root pivot_tuple

let instantiate ?(where = Predicate.True) db (vo : Definition.t) =
  let pivot_rel = Database.relation_exn db vo.pivot in
  List.map (of_pivot_tuple db vo) (Relation.select where pivot_rel)

let extend_inherited _g (vo : Definition.t) inst =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let ( let* ) = Result.bind in
  (* Linkage values flow in both directions. Downward: a child inherits
     the connecting attributes bound in its (extended) parent. Upward: a
     parent whose connecting attributes were projected out (typical for a
     forward reference from the pivot, e.g. COURSES.dept_name under ω)
     recovers them from the child's side of the connection — the nesting
     itself expresses the linkage. *)
  let edge_of (cn : Definition.node) =
    match cn.path with
    | [ e ] -> Ok e
    | [] -> fail "extend_inherited: node %s has no connection path" cn.label
    | _ :: _ :: _ ->
        fail
          "extend_inherited: node %s is attached by a multi-connection path; \
           updates require direct connections"
          cn.label
  in
  let rec go (dn : Definition.node) parent_tuple (i : Instance.t) =
    (* Phase 1: this node's inherited attributes from the parent. *)
    let* tuple =
      match dn.path, parent_tuple with
      | [], _ -> Ok i.Instance.tuple
      | _, None -> fail "extend_inherited: node %s has a path but no parent" dn.label
      | _, Some pt ->
          let* e = edge_of dn in
          let from_attrs = Schema_graph.edge_from_attrs e in
          let to_attrs = Schema_graph.edge_to_attrs e in
          Ok
            (List.fold_left2
               (fun t fa ta ->
                 let v = Tuple.get pt fa in
                 if Value.is_null v then t else Tuple.set t ta v)
               i.Instance.tuple from_attrs to_attrs)
    in
    (* Phase 2: lift connecting values from children whose side of the
       connection is bound while ours is not. Conflicting contributions
       (two sub-instances implying different values) are an error. *)
    let* tuple, _lifted =
      List.fold_left
        (fun acc (cn : Definition.node) ->
          let* t, lifted = acc in
          let* e = edge_of cn in
          let from_attrs = Schema_graph.edge_from_attrs e in
          let to_attrs = Schema_graph.edge_to_attrs e in
          List.fold_left
            (fun acc (sub : Instance.t) ->
              let* t, lifted = acc in
              List.fold_left2
                (fun acc fa ta ->
                  let* t, lifted = acc in
                  let child_v = Tuple.get sub.Instance.tuple ta in
                  if Value.is_null child_v then Ok (t, lifted)
                  else
                    let own_v = Tuple.get t fa in
                    if Value.is_null own_v then
                      Ok (Tuple.set t fa child_v, fa :: lifted)
                    else if Value.equal own_v child_v then Ok (t, lifted)
                    else if not (List.mem fa lifted) then
                      (* Bound at this node or inherited from above: the
                         downward propagation wins and will overwrite the
                         child's stale binding during recursion. *)
                      Ok (t, lifted)
                    else
                      fail
                        "extend_inherited: node %s: conflicting values for %s \
                         from child %s"
                        dn.label fa cn.label)
                (Ok (t, lifted)) from_attrs to_attrs)
            (Ok (t, lifted))
            (Instance.children_of i cn.label))
        (Ok (tuple, [])) dn.children
    in
    (* Phase 3: recurse with the completed tuple. *)
    let* children =
      List.fold_left
        (fun acc (cn : Definition.node) ->
          let* done_children = acc in
          let subs = Instance.children_of i cn.label in
          let* subs' =
            List.fold_left
              (fun acc sub ->
                let* ss = acc in
                let* s' = go cn (Some tuple) sub in
                Ok (s' :: ss))
              (Ok []) subs
          in
          Ok (done_children @ [ cn.label, List.rev subs' ]))
        (Ok []) dn.children
    in
    Ok (Instance.make ~label:i.Instance.label ~relation:i.Instance.relation ~tuple ~children)
  in
  go vo.root None inst

let full_key g (vo : Definition.t) label tuple =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  match Definition.find vo label with
  | None -> fail "full_key: no node %s in view object %s" label vo.name
  | Some dn ->
      let schema = Schema_graph.schema_exn g dn.relation in
      let key = Schema.key_attributes schema in
      (match
         List.find_opt (fun k -> Value.is_null (Tuple.get tuple k)) key
       with
      | Some k ->
          fail "full_key: node %s: key attribute %s is unbound or null" label k
      | None -> Ok (List.map (Tuple.get tuple) key))
