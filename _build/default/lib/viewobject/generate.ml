open Relational
open Structural

let relevant_subgraph metric g ~pivot =
  Schema_graph.restrict g ~keep:(Metric.relevant_relations metric g ~pivot)

let tree metric g ~pivot = Expansion.expand metric (relevant_subgraph metric g ~pivot) ~pivot

let all_attrs g rel = Schema.attribute_names (Schema_graph.schema_exn g rel)

let full metric g ~name ~pivot =
  let t = tree metric g ~pivot in
  let rec convert (n : Expansion.node) =
    Definition.node ~label:n.Expansion.label ~relation:n.Expansion.relation
      ~attrs:(all_attrs g n.Expansion.relation)
      ~path:(match n.Expansion.via with None -> [] | Some e -> [ e ])
      ~children:(List.map convert n.Expansion.children)
  in
  Definition.make g ~name ~pivot ~root:(convert t)

let prune g t ~name ~keep =
  let fail fmt = Fmt.kstr (fun m -> Error m) fmt in
  let keep_labels = List.map fst keep in
  let tree_labels = Expansion.labels t in
  match
    List.find_opt (fun l -> not (List.mem l tree_labels)) keep_labels
  with
  | Some l -> fail "prune: label %s is not in the expansion tree" l
  | None ->
      let attrs_for label rel =
        match List.assoc_opt label keep with
        | Some [] | None -> all_attrs g rel
        | Some attrs -> attrs
      in
      let pivot_attrs =
        let rel = t.Expansion.relation in
        let chosen = attrs_for t.Expansion.label rel in
        let key = Schema.key_attributes (Schema_graph.schema_exn g rel) in
        chosen @ List.filter (fun k -> not (List.mem k chosen)) key
      in
      (* Walk T; kept nodes become definition nodes, dropped nodes pass
         their accumulated connection path down to kept descendants. *)
      let rec convert_children pending (n : Expansion.node) =
        List.concat_map
          (fun (c : Expansion.node) ->
            let edge =
              match c.Expansion.via with
              | Some e -> e
              | None -> assert false
            in
            let path = pending @ [ edge ] in
            if List.mem c.Expansion.label keep_labels then
              [ Definition.node ~label:c.Expansion.label
                  ~relation:c.Expansion.relation
                  ~attrs:(attrs_for c.Expansion.label c.Expansion.relation)
                  ~path
                  ~children:(convert_children [] c) ]
            else convert_children path c)
          n.Expansion.children
      in
      let root =
        Definition.node ~label:t.Expansion.label ~relation:t.Expansion.relation
          ~attrs:pivot_attrs ~path:[]
          ~children:(convert_children [] t)
      in
      Definition.make g ~name ~pivot:t.Expansion.relation ~root
