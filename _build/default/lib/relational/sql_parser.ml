open Sql_lexer
open Sql_ast

(* A tiny state-passing parser over the token list. Each combinator takes
   the remaining tokens and returns (value, rest) or an error. *)

type 'a parser_result = ('a * token list, string) result

let ( let* ) = Result.bind

let err expected got : 'a parser_result =
  Error (Fmt.str "sql parse error: expected %s, got %a" expected pp_token got)

let peek = function [] -> Eof | t :: _ -> t

let advance = function [] -> [] | _ :: rest -> rest

let expect tok toks : unit parser_result =
  if equal_token (peek toks) tok then Ok ((), advance toks)
  else err (Fmt.str "%a" pp_token tok) (peek toks)

let ident toks : string parser_result =
  match peek toks with
  | Ident s -> Ok (s, advance toks)
  | t -> err "identifier" t

let literal toks : literal parser_result =
  match peek toks with
  | Int_lit i -> Ok (L_int i, advance toks)
  | Float_lit f -> Ok (L_float f, advance toks)
  | Str_lit s -> Ok (L_str s, advance toks)
  | Kw "null" -> Ok (L_null, advance toks)
  | Kw "true" -> Ok (L_bool true, advance toks)
  | Kw "false" -> Ok (L_bool false, advance toks)
  | t -> err "literal" t

let rec sep_by1 sep p toks : 'a list parser_result =
  let* x, toks = p toks in
  if equal_token (peek toks) sep then
    let* xs, toks = sep_by1 sep p (advance toks) in
    Ok (x :: xs, toks)
  else Ok ([ x ], toks)

let comparison_of_op = function
  | "=" -> Some Predicate.Eq
  | "<>" -> Some Predicate.Neq
  | "<" -> Some Predicate.Lt
  | "<=" -> Some Predicate.Leq
  | ">" -> Some Predicate.Gt
  | ">=" -> Some Predicate.Geq
  | _ -> None

(* Scalar expressions with the usual precedence:
   sexpr  := term (('+' | '-') term)*
   term   := factor (('*' | '/' | '%') factor)*
   factor := '-' factor | '(' sexpr ')' | literal | ident *)
let rec sexpr_p toks : sexpr parser_result =
  let* l, toks = term_p toks in
  let rec more l toks =
    match peek toks with
    | Op "+" ->
        let* r, toks = term_p (advance toks) in
        more (E_add (l, r)) toks
    | Op "-" ->
        let* r, toks = term_p (advance toks) in
        more (E_sub (l, r)) toks
    | _ -> Ok (l, toks)
  in
  more l toks

and term_p toks : sexpr parser_result =
  let* l, toks = factor_p toks in
  let rec more l toks =
    match peek toks with
    | Star ->
        let* r, toks = factor_p (advance toks) in
        more (E_mul (l, r)) toks
    | Op "/" ->
        let* r, toks = factor_p (advance toks) in
        more (E_div (l, r)) toks
    | Op "%" ->
        let* r, toks = factor_p (advance toks) in
        more (E_mod (l, r)) toks
    | _ -> Ok (l, toks)
  in
  more l toks

and factor_p toks : sexpr parser_result =
  match peek toks with
  | Op "-" ->
      let* e, toks = factor_p (advance toks) in
      Ok (E_neg e, toks)
  | Lparen ->
      let* e, toks = sexpr_p (advance toks) in
      let* (), toks = expect Rparen toks in
      Ok (e, toks)
  | Ident s -> Ok (E_attr s, advance toks)
  | _ ->
      let* l, toks = literal toks in
      Ok (E_lit l, toks)

(* condition := or_term
   or_term   := and_term (OR and_term)*
   and_term  := unary (AND unary)*
   unary     := NOT unary | '(' condition ')' | atom
   atom      := sexpr cmp sexpr | ident IS [NOT] NULL *)
let rec condition toks : condition parser_result = or_term toks

and or_term toks =
  let* l, toks = and_term toks in
  if equal_token (peek toks) (Kw "or") then
    let* r, toks = or_term (advance toks) in
    Ok (C_or (l, r), toks)
  else Ok (l, toks)

and and_term toks =
  let* l, toks = unary toks in
  if equal_token (peek toks) (Kw "and") then
    let* r, toks = and_term (advance toks) in
    Ok (C_and (l, r), toks)
  else Ok (l, toks)

and unary toks =
  match peek toks with
  | Kw "not" ->
      let* c, toks = unary (advance toks) in
      Ok (C_not c, toks)
  | Lparen -> (
      (* A '(' may open a parenthesized condition or a parenthesized
         arithmetic operand: try the condition reading first, fall back
         to a comparison whose left side starts with the paren. *)
      let as_condition =
        let* c, toks' = condition (advance toks) in
        let* (), toks' = expect Rparen toks' in
        Ok (c, toks')
      in
      match as_condition with Ok _ as ok -> ok | Error _ -> atom toks)
  | Kw "true" -> Ok (C_true, advance toks)
  | _ -> atom toks

and atom toks =
  let* l, toks = sexpr_p toks in
  match peek toks, l with
  | Kw "is", E_attr a -> (
      let toks = advance toks in
      match peek toks with
      | Kw "not" ->
          let* (), toks = expect (Kw "null") (advance toks) in
          Ok (C_is_null (a, true), toks)
      | Kw "null" -> Ok (C_is_null (a, false), advance toks)
      | t -> err "null or not null" t)
  | Op o, _ when comparison_of_op o <> None -> (
      match comparison_of_op o with
      | Some cmp ->
          let* r, toks = sexpr_p (advance toks) in
          Ok (C_cmp (l, cmp, r), toks)
      | None -> assert false)
  | t, _ -> err "comparison or is-null" t

let opt_where toks : condition parser_result =
  if equal_token (peek toks) (Kw "where") then condition (advance toks)
  else Ok (C_true, toks)

let create_table toks =
  let* (), toks = expect (Kw "table") toks in
  let* name, toks = ident toks in
  let* (), toks = expect Lparen toks in
  let column toks =
    let* c, toks = ident toks in
    let* d, toks = ident toks in
    Ok ((c, d), toks)
  in
  let* columns, toks = sep_by1 Comma column toks in
  let* (), toks = expect Rparen toks in
  let* (), toks = expect (Kw "key") toks in
  let* (), toks = expect Lparen toks in
  let* key, toks = sep_by1 Comma ident toks in
  let* (), toks = expect Rparen toks in
  Ok (Create_table { name; columns; key }, toks)

let insert toks =
  let* (), toks = expect (Kw "into") toks in
  let* table, toks = ident toks in
  let* columns, toks =
    if equal_token (peek toks) Lparen then
      let* cols, toks = sep_by1 Comma ident (advance toks) in
      let* (), toks = expect Rparen toks in
      Ok (cols, toks)
    else Ok ([], toks)
  in
  let* (), toks = expect (Kw "values") toks in
  let* (), toks = expect Lparen toks in
  let* values, toks = sep_by1 Comma literal toks in
  let* (), toks = expect Rparen toks in
  Ok (Insert { table; columns; values }, toks)

let delete toks =
  let* (), toks = expect (Kw "from") toks in
  let* table, toks = ident toks in
  let* where, toks = opt_where toks in
  Ok (Delete { table; where }, toks)

let update toks =
  let* table, toks = ident toks in
  let* (), toks = expect (Kw "set") toks in
  let assignment toks =
    let* a, toks = ident toks in
    let* (), toks = expect (Op "=") toks in
    let* e, toks = sexpr_p toks in
    Ok ((a, e), toks)
  in
  let* assignments, toks = sep_by1 Comma assignment toks in
  let* where, toks = opt_where toks in
  Ok (Update { table; assignments; where }, toks)

let aggregate_functions = [ "count"; "sum"; "avg"; "min"; "max" ]

let opt_alias toks =
  if equal_token (peek toks) (Kw "as") then
    let* a, toks = ident (advance toks) in
    Ok (Some a, toks)
  else Ok (None, toks)

(* item := func '(' ('*' | ident) ')' [AS ident] | ident [AS ident] *)
let select_item toks =
  match peek toks, peek (advance toks) with
  | Ident f, Lparen when List.mem (String.lowercase_ascii f) aggregate_functions ->
      let toks = advance (advance toks) in
      let* arg, toks =
        if equal_token (peek toks) Star then Ok (None, advance toks)
        else
          let* a, toks = ident toks in
          Ok (Some a, toks)
      in
      let* (), toks = expect Rparen toks in
      let* alias, toks = opt_alias toks in
      Ok (Item_agg (String.lowercase_ascii f, arg, alias), toks)
  | _ ->
      let* a, toks = ident toks in
      let* alias, toks = opt_alias toks in
      Ok (Item_attr (a, alias), toks)

let select toks =
  let* projection, toks =
    if equal_token (peek toks) Star then Ok (None, advance toks)
    else
      let* items, toks = sep_by1 Comma select_item toks in
      Ok (Some items, toks)
  in
  let* (), toks = expect (Kw "from") toks in
  let table_ref toks =
    let* t, toks = ident toks in
    let* alias, toks = opt_alias toks in
    Ok ((t, alias), toks)
  in
  let* from, toks = sep_by1 Comma table_ref toks in
  let* where, toks = opt_where toks in
  let* group_by, toks =
    if equal_token (peek toks) (Kw "group") then
      let* (), toks = expect (Kw "by") (advance toks) in
      sep_by1 Comma ident toks
    else Ok ([], toks)
  in
  let* having, toks =
    if equal_token (peek toks) (Kw "having") then condition (advance toks)
    else Ok (C_true, toks)
  in
  let* order_by, toks =
    if equal_token (peek toks) (Kw "order") then
      let* (), toks = expect (Kw "by") (advance toks) in
      let order_key toks =
        let* a, toks = ident toks in
        match peek toks with
        | Kw "asc" -> Ok ((a, true), advance toks)
        | Kw "desc" -> Ok ((a, false), advance toks)
        | _ -> Ok ((a, true), toks)
      in
      sep_by1 Comma order_key toks
    else Ok ([], toks)
  in
  let* limit, toks =
    if equal_token (peek toks) (Kw "limit") then
      match peek (advance toks) with
      | Int_lit n when n >= 0 -> Ok (Some n, advance (advance toks))
      | t -> err "non-negative limit" t
    else Ok (None, toks)
  in
  Ok (Select { projection; from; where; group_by; having; order_by; limit }, toks)

let statement toks : statement parser_result =
  match peek toks with
  | Kw "create" -> create_table (advance toks)
  | Kw "drop" ->
      let* (), toks = expect (Kw "table") (advance toks) in
      let* name, toks = ident toks in
      Ok (Drop_table name, toks)
  | Kw "insert" -> insert (advance toks)
  | Kw "delete" -> delete (advance toks)
  | Kw "update" -> update (advance toks)
  | Kw "select" -> select (advance toks)
  | t -> err "statement keyword" t

let skip_semicolons toks =
  let rec go toks =
    if equal_token (peek toks) Semicolon then go (advance toks) else toks
  in
  go toks

let parse_statement input =
  let* toks = Sql_lexer.tokenize input in
  let* stmt, toks = statement toks in
  let toks = skip_semicolons toks in
  match peek toks with
  | Eof -> Ok stmt
  | t -> Result.map fst (err "end of input" t)

let parse_script input =
  let* toks = Sql_lexer.tokenize input in
  let rec go acc toks =
    let toks = skip_semicolons toks in
    match peek toks with
    | Eof -> Ok (List.rev acc)
    | _ ->
        let* stmt, toks = statement toks in
        let toks = skip_semicolons toks in
        go (stmt :: acc) toks
  in
  go [] toks

let condition_tokens = condition
let sexpr_tokens = sexpr_p
