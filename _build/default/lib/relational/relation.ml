module Key = struct
  type t = Value.t list

  let compare = List.compare Value.compare
end

module KMap = Map.Make (Key)
module VMap = Map.Make (Key)

(* A secondary index: normalized attribute list plus a map from attribute
   values to the primary keys of the tuples carrying them. *)
type index = {
  attrs : string list;  (** sorted *)
  entries : Key.t list VMap.t;  (** values (in [attrs] order) -> keys *)
}

type t = {
  schema : Schema.t;
  tuples : Tuple.t KMap.t;
  idx : index list;
}

type error =
  | Duplicate_key of Value.t list
  | No_such_key of Value.t list
  | Nonconforming of string

let pp_error ppf = function
  | Duplicate_key k ->
      Fmt.pf ppf "duplicate key (%a)" Fmt.(list ~sep:(any ", ") Value.pp) k
  | No_such_key k ->
      Fmt.pf ppf "no such key (%a)" Fmt.(list ~sep:(any ", ") Value.pp) k
  | Nonconforming msg -> Fmt.string ppf msg

let error_to_string e = Fmt.str "%a" pp_error e

let empty schema = { schema; tuples = KMap.empty; idx = [] }
let schema r = r.schema
let name r = r.schema.Schema.name
let cardinality r = KMap.cardinal r.tuples
let is_empty r = KMap.is_empty r.tuples
let key_of r t = Tuple.key_of r.schema t

(* Bind every declared attribute, padding missing nonkey attributes with
   Null so that stored tuples always have the full schema width. *)
let pad schema t = Tuple.project_null (Schema.attribute_names schema) t

(* --- index maintenance ------------------------------------------------ *)

let index_values ix t = List.map (Tuple.get t) ix.attrs

let index_add ix key t =
  let vs = index_values ix t in
  let existing = Option.value (VMap.find_opt vs ix.entries) ~default:[] in
  { ix with entries = VMap.add vs (key :: existing) ix.entries }

let index_remove ix key t =
  let vs = index_values ix t in
  match VMap.find_opt vs ix.entries with
  | None -> ix
  | Some keys -> (
      match List.filter (fun k -> Key.compare k key <> 0) keys with
      | [] -> { ix with entries = VMap.remove vs ix.entries }
      | keys -> { ix with entries = VMap.add vs keys ix.entries })

let with_indexes f r = { r with idx = List.map f r.idx }

let after_insert key t r = with_indexes (fun ix -> index_add ix key t) r

let after_delete key t r = with_indexes (fun ix -> index_remove ix key t) r

(* --- core operations -------------------------------------------------- *)

let insert r t =
  let t = pad r.schema t in
  match Tuple.conforms r.schema t with
  | Error msg -> Error (Nonconforming msg)
  | Ok () ->
      let k = key_of r t in
      if KMap.mem k r.tuples then Error (Duplicate_key k)
      else Ok (after_insert k t { r with tuples = KMap.add k t r.tuples })

let delete_key r k =
  match KMap.find_opt k r.tuples with
  | Some t -> Ok (after_delete k t { r with tuples = KMap.remove k r.tuples })
  | None -> Error (No_such_key k)

let delete_tuple r t = delete_key r (key_of r t)

let replace r ~old_key t =
  let t = pad r.schema t in
  match Tuple.conforms r.schema t with
  | Error msg -> Error (Nonconforming msg)
  | Ok () -> (
      match KMap.find_opt old_key r.tuples with
      | None -> Error (No_such_key old_key)
      | Some old_t ->
          let new_key = key_of r t in
          if Key.compare old_key new_key <> 0 && KMap.mem new_key r.tuples then
            Error (Duplicate_key new_key)
          else
            let tuples = KMap.add new_key t (KMap.remove old_key r.tuples) in
            Ok
              (after_insert new_key t
                 (after_delete old_key old_t { r with tuples })))

let lookup r k = KMap.find_opt k r.tuples
let mem_key r k = KMap.mem k r.tuples

let mem_tuple r t =
  let t = pad r.schema t in
  match lookup r (key_of r t) with
  | Some t' -> Tuple.equal t t'
  | None -> false

let find_matching r t = lookup r (key_of r t)

let fold f r init = KMap.fold (fun _ t acc -> f t acc) r.tuples init
let iter f r = KMap.iter (fun _ t -> f t) r.tuples
let to_list r = List.rev (fold (fun t acc -> t :: acc) r [])

let select p r =
  List.filter (fun t -> Predicate.eval p t) (to_list r)

(* --- secondary indexes ------------------------------------------------ *)

let normalize_attrs attrs = List.sort_uniq String.compare attrs

let create_index r attrs =
  let attrs = normalize_attrs attrs in
  if attrs = [] then Error (Nonconforming "create_index: empty attribute list")
  else
    match List.find_opt (fun a -> not (Schema.mem r.schema a)) attrs with
    | Some a ->
        Error
          (Nonconforming
             (Fmt.str "create_index on %s: unknown attribute %s" (name r) a))
    | None ->
        let fresh = { attrs; entries = VMap.empty } in
        let fresh =
          KMap.fold (fun key t ix -> index_add ix key t) r.tuples fresh
        in
        let others = List.filter (fun ix -> ix.attrs <> attrs) r.idx in
        Ok { r with idx = fresh :: others }

let has_index r attrs =
  let attrs = normalize_attrs attrs in
  List.exists (fun ix -> ix.attrs = attrs) r.idx

let indexes r = List.map (fun ix -> ix.attrs) r.idx

let lookup_eq r bindings =
  if List.exists (fun (_, v) -> Value.is_null v) bindings then []
  else
    let attrs = normalize_attrs (List.map fst bindings) in
    match List.find_opt (fun ix -> ix.attrs = attrs) r.idx with
    | Some ix ->
        let vs = List.map (fun a -> List.assoc a bindings) ix.attrs in
        let keys = List.sort_uniq Key.compare
            (Option.value (VMap.find_opt vs ix.entries) ~default:[]) in
        List.filter_map (fun k -> KMap.find_opt k r.tuples) keys
    | None ->
        select
          (Predicate.conj
             (List.map (fun (a, v) -> Predicate.Cmp (a, Predicate.Eq, v)) bindings))
          r

let of_list schema ts =
  List.fold_left
    (fun acc t -> Result.bind acc (fun r -> insert r t))
    (Ok (empty schema)) ts

let of_list_exn schema ts =
  match of_list schema ts with
  | Ok r -> r
  | Error e -> invalid_arg (Fmt.str "%s: %a" schema.Schema.name pp_error e)

(* Indexes are derived state and do not participate in equality. *)
let equal a b =
  Schema.equal a.schema b.schema && KMap.equal Tuple.equal a.tuples b.tuples

let pp ppf r =
  Fmt.pf ppf "@[<v>%a@,%a@]" Schema.pp r.schema
    Fmt.(list ~sep:cut Tuple.pp)
    (to_list r)
