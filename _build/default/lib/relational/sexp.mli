(** Minimal S-expressions: the textual carrier for saved definitions
    (PENGUIN saves view-object definitions, not data — "only its
    definition is saved"; see {!Penguin.Store}).

    Atoms are bare when they contain no whitespace, parentheses, quotes
    or control characters, and double-quoted with [\\]-escapes
    otherwise. *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val list : t list -> t

val equal : t -> t -> bool

val to_string : t -> string
(** Pretty-printed with indentation (stable across parse/print). *)

val pp : Format.formatter -> t -> unit

val parse : string -> (t, string) result
(** Parse one S-expression (surrounding whitespace allowed; [;] starts a
    comment to end of line). *)

val parse_many : string -> (t list, string) result

(** {1 Decoding helpers} *)

val as_atom : t -> (string, string) result
val as_list : t -> (t list, string) result

val keyed : string -> t list -> (t list, string) result
(** [keyed k items] finds the unique list element of the form
    [List (Atom k :: rest)] and returns [rest]. *)

val keyed_opt : string -> t list -> t list option
val keyed_all : string -> t list -> t list list
(** All elements of the form [List (Atom k :: rest)], each as [rest]. *)
