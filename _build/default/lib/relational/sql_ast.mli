(** Abstract syntax of the small SQL-like DML. *)

type literal =
  | L_null
  | L_int of int
  | L_float of float
  | L_str of string
  | L_bool of bool

(** Scalar expressions: attributes, literals and arithmetic. *)
type sexpr =
  | E_attr of string
  | E_lit of literal
  | E_add of sexpr * sexpr
  | E_sub of sexpr * sexpr
  | E_mul of sexpr * sexpr
  | E_div of sexpr * sexpr
  | E_mod of sexpr * sexpr
  | E_neg of sexpr

type condition =
  | C_true
  | C_cmp of sexpr * Predicate.comparison * sexpr
  | C_is_null of string * bool  (** attr, negated? ([true] = IS NOT NULL) *)
  | C_and of condition * condition
  | C_or of condition * condition
  | C_not of condition

(** One item of a SELECT list. *)
type select_item =
  | Item_attr of string * string option  (** attribute, optional AS alias *)
  | Item_agg of string * string option * string option
      (** function name (count/sum/avg/min/max), argument ([None] = [*]),
          optional AS alias *)

type statement =
  | Create_table of {
      name : string;
      columns : (string * string) list;  (** (attr, domain name) *)
      key : string list;
    }
  | Drop_table of string
  | Insert of {
      table : string;
      columns : string list;  (** empty = schema order *)
      values : literal list;
    }
  | Delete of { table : string; where : condition }
  | Update of {
      table : string;
      assignments : (string * sexpr) list;
          (** right-hand sides may reference the tuple's old values *)
      where : condition;
    }
  | Select of {
      projection : select_item list option;  (** [None] = [*] *)
      from : (string * string option) list;  (** (table, alias) *)
      where : condition;
      group_by : string list;
      having : condition;  (** over the grouped output *)
      order_by : (string * bool) list;  (** (output attribute, ascending) *)
      limit : int option;
    }

val value_of_literal : literal -> Value.t
val pp_statement : Format.formatter -> statement -> unit
