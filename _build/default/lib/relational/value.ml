type t =
  | Null
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type domain =
  | DInt
  | DFloat
  | DStr
  | DBool

let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let is_null = function Null -> true | Bool _ | Int _ | Float _ | Str _ -> false

let domain_of = function
  | Null -> None
  | Int _ -> Some DInt
  | Float _ -> Some DFloat
  | Str _ -> Some DStr
  | Bool _ -> Some DBool

let conforms d v =
  match domain_of v with
  | None -> true
  | Some d' -> d = d'

let domain_name = function
  | DInt -> "int"
  | DFloat -> "float"
  | DStr -> "string"
  | DBool -> "bool"

let domain_of_name s =
  match String.lowercase_ascii s with
  | "int" | "integer" -> Some DInt
  | "float" | "real" | "double" -> Some DFloat
  | "string" | "str" | "text" | "varchar" -> Some DStr
  | "bool" | "boolean" -> Some DBool
  | _ -> None

(* Shortest float rendering that parses back to the same value. *)
let float_to_string f =
  let s15 = Printf.sprintf "%.15g" f in
  if float_of_string s15 = f then s15 else Printf.sprintf "%.17g" f

let pp ppf = function
  | Null -> Fmt.string ppf "null"
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.string ppf (float_to_string f)
  | Str s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b

let pp_plain ppf = function
  | Str s -> Fmt.string ppf s
  | v -> pp ppf v

let pp_domain ppf d = Fmt.string ppf (domain_name d)

let to_string v = Fmt.str "%a" pp v

let parse d s =
  let s' = String.trim s in
  if String.lowercase_ascii s' = "null" then Ok Null
  else
    match d with
    | DInt -> (
        match int_of_string_opt s' with
        | Some i -> Ok (Int i)
        | None -> Error (Fmt.str "not an int: %S" s))
    | DFloat -> (
        match float_of_string_opt s' with
        | Some f -> Ok (Float f)
        | None -> Error (Fmt.str "not a float: %S" s))
    | DBool -> (
        match bool_of_string_opt (String.lowercase_ascii s') with
        | Some b -> Ok (Bool b)
        | None -> Error (Fmt.str "not a bool: %S" s))
    | DStr ->
        let unquoted =
          let n = String.length s' in
          if n >= 2 && s'.[0] = '"' && s'.[n - 1] = '"' then
            String.sub s' 1 (n - 2)
          else s'
        in
        Ok (Str unquoted)
