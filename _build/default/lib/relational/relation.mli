(** Relation instances: a schema plus a set of tuples keyed by their
    primary-key values.

    The structure is persistent (immutable); all mutating operations
    return a new relation, which is what makes transactional rollback in
    {!Transaction} trivial. *)

type t

type error =
  | Duplicate_key of Value.t list
  | No_such_key of Value.t list
  | Nonconforming of string

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val empty : Schema.t -> t
val schema : t -> Schema.t
val name : t -> string
val cardinality : t -> int
val is_empty : t -> bool

val insert : t -> Tuple.t -> (t, error) result
(** Fails on nonconformance or duplicate key. Tuples are padded with
    [Null] for declared attributes left unbound (unless they are key
    attributes, which must be non-null). *)

val delete_key : t -> Value.t list -> (t, error) result
val delete_tuple : t -> Tuple.t -> (t, error) result
(** Delete by the key of the given tuple. *)

val replace : t -> old_key:Value.t list -> Tuple.t -> (t, error) result
(** Replace the tuple whose key is [old_key] by the new tuple (whose key
    may differ; the new key must not collide with a third tuple). *)

val lookup : t -> Value.t list -> Tuple.t option
val mem_key : t -> Value.t list -> bool
val mem_tuple : t -> Tuple.t -> bool
(** True when a tuple with the same key exists and is entirely equal on
    all declared attributes. *)

val find_matching : t -> Tuple.t -> Tuple.t option
(** Tuple with the same key values as the given (possibly partial)
    tuple. *)

val select : Predicate.t -> t -> Tuple.t list

(** {1 Secondary indexes}

    A relation may carry any number of secondary indexes, each over an
    attribute list. Indexes are maintained by {!insert}, {!delete_key}
    and {!replace}, and are consulted by {!lookup_eq} — the equality
    lookup instantiation and integrity maintenance use to follow
    connections. They are derived state: not persisted, not part of
    {!equal}. *)

val create_index : t -> string list -> (t, error) result
(** Build (or rebuild) an index over the given non-empty attribute list.
    Unknown attributes yield [Nonconforming]. *)

val has_index : t -> string list -> bool
(** Attribute order does not matter. *)

val indexes : t -> string list list

val lookup_eq : t -> (string * Value.t) list -> Tuple.t list
(** Tuples agreeing with all bindings ([Null] bindings match nothing,
    per the connection-matching rule). Uses an index over exactly the
    bound attributes when one exists, a scan otherwise. Results are in
    key order either way. *)

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val to_list : t -> Tuple.t list
(** In key order (deterministic). *)

val of_list : Schema.t -> Tuple.t list -> (t, error) result
val of_list_exn : Schema.t -> Tuple.t list -> t
val key_of : t -> Tuple.t -> Value.t list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
