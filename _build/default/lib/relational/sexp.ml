type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l

let rec equal a b =
  match a, b with
  | Atom x, Atom y -> String.equal x y
  | List x, List y -> List.equal equal x y
  | (Atom _ | List _), _ -> false

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '(' || c = ')'
         || c = '"' || c = ';' || Char.code c < 32)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let atom_to_string s = if needs_quoting s then escape s else s

(* Pretty printing: short lists on one line, long ones indented. *)
let rec width = function
  | Atom s -> String.length (atom_to_string s)
  | List l -> 2 + List.fold_left (fun acc e -> acc + width e + 1) 0 l

let rec render buf indent e =
  match e with
  | Atom s -> Buffer.add_string buf (atom_to_string s)
  | List l ->
      if width e <= 72 then begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i e ->
            if i > 0 then Buffer.add_char buf ' ';
            render buf indent e)
          l;
        Buffer.add_char buf ')'
      end
      else begin
        Buffer.add_char buf '(';
        List.iteri
          (fun i e ->
            if i > 0 then begin
              Buffer.add_char buf '\n';
              Buffer.add_string buf (String.make (indent + 1) ' ')
            end;
            render buf (indent + 1) e)
          l;
        Buffer.add_char buf ')'
      end

let to_string e =
  let buf = Buffer.create 256 in
  render buf 0 e;
  Buffer.contents buf

let pp ppf e = Fmt.string ppf (to_string e)

(* --- parsing --------------------------------------------------------- *)

let parse_all input =
  let n = String.length input in
  let rec skip_ws i =
    if i >= n then i
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | ';' ->
          let rec eol i = if i >= n || input.[i] = '\n' then i else eol (i + 1) in
          skip_ws (eol i)
      | _ -> i
  in
  let rec parse_one i =
    let i = skip_ws i in
    if i >= n then Error "sexp: unexpected end of input"
    else
      match input.[i] with
      | '(' -> parse_items (i + 1) []
      | ')' -> Error (Fmt.str "sexp: unexpected ')' at offset %d" i)
      | '"' -> parse_quoted (i + 1) (Buffer.create 16)
      | _ -> parse_bare i (Buffer.create 16)
  and parse_items i acc =
    let i = skip_ws i in
    if i >= n then Error "sexp: unterminated list"
    else if input.[i] = ')' then Ok (List (List.rev acc), i + 1)
    else
      match parse_one i with
      | Error e -> Error e
      | Ok (e, i) -> parse_items i (e :: acc)
  and parse_quoted i buf =
    if i >= n then Error "sexp: unterminated string"
    else
      match input.[i] with
      | '"' -> Ok (Atom (Buffer.contents buf), i + 1)
      | '\\' ->
          if i + 1 >= n then Error "sexp: dangling escape"
          else begin
            (match input.[i + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | c -> Buffer.add_char buf c);
            parse_quoted (i + 2) buf
          end
      | c ->
          Buffer.add_char buf c;
          parse_quoted (i + 1) buf
  and parse_bare i buf =
    if
      i >= n
      ||
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
      | _ -> false
    then Ok (Atom (Buffer.contents buf), i)
    else begin
      Buffer.add_char buf input.[i];
      parse_bare (i + 1) buf
    end
  in
  let rec go i acc =
    let i = skip_ws i in
    if i >= n then Ok (List.rev acc)
    else
      match parse_one i with
      | Error e -> Error e
      | Ok (e, i) -> go i (e :: acc)
  in
  go 0 []

let parse_many = parse_all

let parse input =
  match parse_all input with
  | Ok [ e ] -> Ok e
  | Ok [] -> Error "sexp: empty input"
  | Ok _ -> Error "sexp: expected a single expression"
  | Error e -> Error e

(* --- decoding helpers ------------------------------------------------ *)

let as_atom = function
  | Atom s -> Ok s
  | List _ -> Error "sexp: expected an atom"

let as_list = function
  | List l -> Ok l
  | Atom a -> Error (Fmt.str "sexp: expected a list, got atom %s" a)

let keyed_all k items =
  List.filter_map
    (function List (Atom k' :: rest) when k' = k -> Some rest | _ -> None)
    items

let keyed_opt k items =
  match keyed_all k items with [ rest ] -> Some rest | _ -> None

let keyed k items =
  match keyed_all k items with
  | [ rest ] -> Ok rest
  | [] -> Error (Fmt.str "sexp: missing (%s ...)" k)
  | _ -> Error (Fmt.str "sexp: duplicate (%s ...)" k)
